// Thread-local bump arena for per-solve temporaries.
//
// The sweep engine, serve scheduler, and incremental STA allocate the same
// short-lived scratch vectors (CG residuals, SpMM accumulators, dirty flags,
// kNN heaps) once per variant/request — thousands of malloc/free round trips
// per run. The arena turns each of those into a pointer bump against memory
// retained across solves.
//
// Usage (strictly LIFO):
//
//   util::ArenaFrame frame;                       // marks the high-water line
//   std::span<double> r = frame.alloc<double>(n); // 64B-aligned, uninitialized
//   std::span<double> z = frame.alloc_zero<double>(n);
//   ...                                           // frame dtor releases both
//
// Lifetime rules (see DESIGN.md §11):
//   * Allocations live until their frame is destroyed; frames nest LIFO.
//   * Spans must not outlive the frame or cross threads — every thread has
//     its own arena (`Arena::local()`), reached only through ArenaFrame.
//   * Only trivially-destructible element types: the arena never runs
//     destructors.
//
// Blocks are retained (and counted as `arena.bytes_reused` on the next pass)
// rather than freed, growing geometrically until a run's peak footprint is
// resident; fresh block mallocs count as `arena.bytes_allocated`.

#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "util/aligned.hpp"

namespace cirstag::util {

class Arena {
 public:
  /// This thread's arena (created on first use, freed at thread exit).
  static Arena& local();

  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Total bytes held in retained blocks.
  [[nodiscard]] std::size_t capacity() const {
    std::size_t c = 0;
    for (const auto& b : blocks_) c += b.size;
    return c;
  }

 private:
  friend class ArenaFrame;

  struct AlignedDelete {
    void operator()(std::byte* p) const {
      ::operator delete(p, std::align_val_t{kCacheLine});
    }
  };
  struct Block {
    std::unique_ptr<std::byte[], AlignedDelete> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };
  struct Mark {
    std::size_t block = 0;
    std::size_t used = 0;
  };

  [[nodiscard]] Mark mark() const { return {current_, cur_used()}; }
  void release(Mark m);
  /// 64-byte-aligned uninitialized bytes, valid until the enclosing frame
  /// releases past them.
  void* bump(std::size_t bytes);

  [[nodiscard]] std::size_t cur_used() const {
    return blocks_.empty() ? 0 : blocks_[current_].used;
  }

  std::vector<Block> blocks_;
  std::size_t current_ = 0;  ///< index of the block being bumped (if any)
  std::size_t depth_ = 0;    ///< live frames on this thread's arena
};

/// RAII scope over Arena::local(): everything allocated through the frame is
/// released (capacity retained) when the frame is destroyed.
class ArenaFrame {
 public:
  ArenaFrame();
  ~ArenaFrame();
  ArenaFrame(const ArenaFrame&) = delete;
  ArenaFrame& operator=(const ArenaFrame&) = delete;

  /// Uninitialized n-element span, 64-byte-aligned.
  template <typename T>
  [[nodiscard]] std::span<T> alloc(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T> &&
                  std::is_trivially_copyable_v<T>);
    return {static_cast<T*>(arena_.bump(n * sizeof(T))), n};
  }

  /// Zero-initialized n-element span, 64-byte-aligned.
  template <typename T>
  [[nodiscard]] std::span<T> alloc_zero(std::size_t n) {
    auto s = alloc<T>(n);
    std::fill(s.begin(), s.end(), T{});
    return s;
  }

 private:
  Arena& arena_;
  Arena::Mark mark_;
};

}  // namespace cirstag::util
