#include "util/csv.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace cirstag::util {

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void CsvWriter::add_row(const std::vector<std::string>& row) {
  if (row.size() != header_.size())
    throw std::invalid_argument("CsvWriter: row width mismatch");
  rows_.push_back(row);
}

void CsvWriter::add_row(const std::vector<double>& row) {
  std::vector<std::string> cells;
  cells.reserve(row.size());
  for (double v : row) {
    std::ostringstream os;
    os << v;
    cells.push_back(os.str());
  }
  add_row(cells);
}

std::string CsvWriter::to_string() const {
  std::ostringstream os;
  auto emit = [&os](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) os << ",";
      os << cells[i];
    }
    os << "\n";
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void CsvWriter::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("CsvWriter: cannot open " + path);
  out << to_string();
  if (!out) throw std::runtime_error("CsvWriter: write failed for " + path);
}

}  // namespace cirstag::util
