// Minimal aligned allocator so hot containers (Matrix storage, CSR arrays,
// arena blocks) start on cache-line / vector-register boundaries.

#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>

namespace cirstag::util {

inline constexpr std::size_t kCacheLine = 64;

/// std::allocator drop-in with a fixed over-alignment. Alignment must be a
/// power of two and a multiple of sizeof(void*).
template <typename T, std::size_t Align = kCacheLine>
struct AlignedAllocator {
  using value_type = T;
  static_assert(Align >= alignof(T));

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    void* p = ::operator new(n * sizeof(T), std::align_val_t{Align});
    return static_cast<T*>(p);
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Align});
  }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
};

}  // namespace cirstag::util
