#pragma once

#include <cstddef>
#include <span>
#include <vector>

/// Descriptive statistics and rank-correlation utilities used by the
/// experiment harnesses (Table I / Table II cells, Fig. 3/4 histograms,
/// ground-truth rank agreement).
namespace cirstag::util {

[[nodiscard]] double mean(std::span<const double> xs);
[[nodiscard]] double max_value(std::span<const double> xs);
[[nodiscard]] double min_value(std::span<const double> xs);
[[nodiscard]] double stdev(std::span<const double> xs);
[[nodiscard]] double median(std::span<const double> xs);

/// Linear-interpolated quantile, q in [0, 1].
[[nodiscard]] double quantile(std::span<const double> xs, double q);

/// Pearson linear correlation coefficient; 0 for degenerate inputs.
[[nodiscard]] double pearson(std::span<const double> xs,
                             std::span<const double> ys);

/// Spearman rank correlation (average ranks on ties).
[[nodiscard]] double spearman(std::span<const double> xs,
                              std::span<const double> ys);

/// Kendall tau-b rank correlation. O(n^2); fine for experiment sizes.
[[nodiscard]] double kendall_tau(std::span<const double> xs,
                                 std::span<const double> ys);

/// Coefficient of determination of predictions vs. ground truth.
[[nodiscard]] double r2_score(std::span<const double> truth,
                              std::span<const double> pred);

/// Ranks with ties averaged, 1-based (rank 1 = smallest value).
[[nodiscard]] std::vector<double> average_ranks(std::span<const double> xs);

/// Fixed-width histogram over [lo, hi]; values outside are clamped into the
/// first/last bin. Returns per-bin counts.
struct Histogram {
  double lo = 0.0;
  double hi = 1.0;
  std::vector<std::size_t> counts;

  [[nodiscard]] double bin_width() const;
  [[nodiscard]] double bin_center(std::size_t i) const;
};

[[nodiscard]] Histogram make_histogram(std::span<const double> xs, double lo,
                                       double hi, std::size_t bins);

/// Fraction of the top-k items (by score) shared between two score vectors.
/// Used to compare CirSTAG rankings against ground-truth sensitivity.
[[nodiscard]] double top_k_overlap(std::span<const double> a,
                                   std::span<const double> b, std::size_t k);

}  // namespace cirstag::util
