#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <unordered_set>

namespace cirstag::util {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double max_value(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

double min_value(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double stdev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size())
    throw std::invalid_argument("pearson: size mismatch");
  const std::size_t n = xs.size();
  if (n < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> average_ranks(std::span<const double> xs) {
  const std::size_t n = xs.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) ++j;
    // Average rank over the tie group [i, j], 1-based.
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

double spearman(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size())
    throw std::invalid_argument("spearman: size mismatch");
  const auto rx = average_ranks(xs);
  const auto ry = average_ranks(ys);
  return pearson(rx, ry);
}

double kendall_tau(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size())
    throw std::invalid_argument("kendall_tau: size mismatch");
  const std::size_t n = xs.size();
  if (n < 2) return 0.0;
  long long concordant = 0, discordant = 0, ties_x = 0, ties_y = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double dx = xs[i] - xs[j];
      const double dy = ys[i] - ys[j];
      if (dx == 0.0 && dy == 0.0) continue;
      if (dx == 0.0) { ++ties_x; continue; }
      if (dy == 0.0) { ++ties_y; continue; }
      if ((dx > 0) == (dy > 0)) ++concordant; else ++discordant;
    }
  }
  const double n0 = static_cast<double>(n) * (static_cast<double>(n) - 1) / 2.0;
  const double denom = std::sqrt((n0 - static_cast<double>(ties_x)) *
                                 (n0 - static_cast<double>(ties_y)));
  if (denom <= 0.0) return 0.0;
  return static_cast<double>(concordant - discordant) / denom;
}

double r2_score(std::span<const double> truth, std::span<const double> pred) {
  if (truth.size() != pred.size())
    throw std::invalid_argument("r2_score: size mismatch");
  if (truth.empty()) return 0.0;
  const double m = mean(truth);
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    ss_res += (truth[i] - pred[i]) * (truth[i] - pred[i]);
    ss_tot += (truth[i] - m) * (truth[i] - m);
  }
  if (ss_tot <= 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

double Histogram::bin_width() const {
  return counts.empty() ? 0.0 : (hi - lo) / static_cast<double>(counts.size());
}

double Histogram::bin_center(std::size_t i) const {
  return lo + (static_cast<double>(i) + 0.5) * bin_width();
}

Histogram make_histogram(std::span<const double> xs, double lo, double hi,
                         std::size_t bins) {
  if (bins == 0 || hi <= lo)
    throw std::invalid_argument("make_histogram: bad bin spec");
  Histogram h;
  h.lo = lo;
  h.hi = hi;
  h.counts.assign(bins, 0);
  const double width = (hi - lo) / static_cast<double>(bins);
  for (double x : xs) {
    auto idx = static_cast<long long>(std::floor((x - lo) / width));
    idx = std::clamp<long long>(idx, 0, static_cast<long long>(bins) - 1);
    ++h.counts[static_cast<std::size_t>(idx)];
  }
  return h;
}

double top_k_overlap(std::span<const double> a, std::span<const double> b,
                     std::size_t k) {
  if (a.size() != b.size())
    throw std::invalid_argument("top_k_overlap: size mismatch");
  k = std::min(k, a.size());
  if (k == 0) return 0.0;
  auto top_indices = [k](std::span<const double> xs) {
    std::vector<std::size_t> order(xs.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::partial_sort(order.begin(), order.begin() + static_cast<long>(k),
                      order.end(), [&](std::size_t p, std::size_t q) {
                        return xs[p] > xs[q];
                      });
    return std::unordered_set<std::size_t>(order.begin(),
                                           order.begin() + static_cast<long>(k));
  };
  const auto ta = top_indices(a);
  const auto tb = top_indices(b);
  std::size_t shared = 0;
  for (std::size_t idx : ta) shared += tb.count(idx);
  return static_cast<double>(shared) / static_cast<double>(k);
}

}  // namespace cirstag::util
