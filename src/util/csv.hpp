#pragma once

#include <string>
#include <vector>

namespace cirstag::util {

/// Minimal CSV writer used by benches to dump figure series alongside the
/// ASCII rendering (so plots can be regenerated externally if desired).
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void add_row(const std::vector<std::string>& row);
  void add_row(const std::vector<double>& row);

  /// Write to `path`; throws std::runtime_error on I/O failure.
  void save(const std::string& path) const;

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cirstag::util
