#include "util/ascii.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace cirstag::util {

AsciiTable::AsciiTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void AsciiTable::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size())
    throw std::invalid_argument("AsciiTable: row width mismatch");
  rows_.push_back(std::move(row));
}

std::string AsciiTable::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto rule = [&] {
    std::string s = "+";
    for (auto w : widths) s += std::string(w + 2, '-') + "+";
    s += "\n";
    return s;
  };
  auto line = [&](const std::vector<std::string>& row) {
    std::string s = "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      s += " " + row[c] + std::string(widths[c] - row[c].size(), ' ') + " |";
    }
    s += "\n";
    return s;
  };

  std::string out = rule() + line(header_) + rule();
  for (const auto& row : rows_) out += line(row);
  out += rule();
  return out;
}

std::string render_histogram(const Histogram& h, const std::string& title,
                             std::size_t max_bar_width) {
  std::ostringstream os;
  os << title << "\n";
  std::size_t peak = 1;
  for (auto c : h.counts) peak = std::max(peak, c);
  for (std::size_t i = 0; i < h.counts.size(); ++i) {
    const auto bar =
        h.counts[i] * max_bar_width / peak;
    os << std::setw(10) << std::fixed << std::setprecision(4)
       << h.bin_center(i) << " | " << std::string(bar, '#') << " "
       << h.counts[i] << "\n";
  }
  return os.str();
}

std::string render_histogram_pair(const Histogram& a, const std::string& label_a,
                                  const Histogram& b, const std::string& label_b,
                                  const std::string& title,
                                  std::size_t max_bar_width) {
  if (a.counts.size() != b.counts.size())
    throw std::invalid_argument("render_histogram_pair: bin count mismatch");
  std::ostringstream os;
  os << title << "\n";
  os << "  (" << label_a << " = '#', " << label_b << " = '*')\n";
  std::size_t peak = 1;
  for (auto c : a.counts) peak = std::max(peak, c);
  for (auto c : b.counts) peak = std::max(peak, c);
  for (std::size_t i = 0; i < a.counts.size(); ++i) {
    const auto bar_a = a.counts[i] * max_bar_width / peak;
    const auto bar_b = b.counts[i] * max_bar_width / peak;
    os << std::setw(10) << std::fixed << std::setprecision(4)
       << a.bin_center(i) << " | " << std::string(bar_a, '#')
       << std::string(max_bar_width - bar_a, ' ') << " | "
       << std::string(bar_b, '*') << std::string(max_bar_width - bar_b, ' ')
       << " | " << a.counts[i] << " / " << b.counts[i] << "\n";
  }
  return os.str();
}

std::string fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

}  // namespace cirstag::util
