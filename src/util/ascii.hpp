#pragma once

#include <string>
#include <vector>

#include "util/stats.hpp"

/// ASCII rendering of the paper's tables and figure-style histograms so every
/// bench binary can print Table/Figure reproductions directly to stdout.
namespace cirstag::util {

/// A simple column-aligned table with a header row.
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Render with box-drawing separators; pads each column to its widest cell.
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Render a histogram as horizontal bars (one line per bin).
[[nodiscard]] std::string render_histogram(const Histogram& h,
                                           const std::string& title,
                                           std::size_t max_bar_width = 60);

/// Render two overlaid histograms (e.g. unstable vs stable series of
/// Fig. 3/4) side by side, bin-aligned.
[[nodiscard]] std::string render_histogram_pair(const Histogram& a,
                                                const std::string& label_a,
                                                const Histogram& b,
                                                const std::string& label_b,
                                                const std::string& title,
                                                std::size_t max_bar_width = 30);

/// Format a double with fixed precision (helper for table cells).
[[nodiscard]] std::string fmt(double v, int precision = 4);

}  // namespace cirstag::util
