#include "util/arena.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace cirstag::util {

namespace {
/// Smallest block the arena mallocs; later blocks double.
constexpr std::size_t kMinBlockBytes = std::size_t{1} << 16;
}  // namespace

Arena& Arena::local() {
  static thread_local Arena arena;
  return arena;
}

void* Arena::bump(std::size_t bytes) {
  if (bytes == 0) return nullptr;
  // Round every bump to a cache line so the next span stays 64B-aligned.
  bytes = (bytes + (kCacheLine - 1)) & ~(kCacheLine - 1);
  static thread_local obs::Counter reused("arena.bytes_reused");
  static thread_local obs::Counter allocated("arena.bytes_allocated");
  while (true) {
    if (!blocks_.empty()) {
      Block& b = blocks_[current_];
      if (b.size - b.used >= bytes) {
        void* p = b.data.get() + b.used;
        b.used += bytes;
        reused.add(bytes);
        return p;
      }
      if (current_ + 1 < blocks_.size()) {
        ++current_;
        blocks_[current_].used = 0;
        continue;
      }
    }
    const std::size_t prev = blocks_.empty() ? 0 : blocks_.back().size;
    const std::size_t size = std::max({kMinBlockBytes, prev * 2, bytes});
    Block b;
    b.data.reset(static_cast<std::byte*>(
        ::operator new(size, std::align_val_t{kCacheLine})));
    b.size = size;
    b.used = bytes;
    allocated.add(size);
    blocks_.push_back(std::move(b));
    current_ = blocks_.size() - 1;
    return blocks_.back().data.get();
  }
}

void Arena::release(Mark m) {
  for (std::size_t i = m.block + 1; i <= current_ && i < blocks_.size(); ++i)
    blocks_[i].used = 0;
  if (!blocks_.empty()) blocks_[m.block].used = m.used;
  current_ = blocks_.empty() ? 0 : m.block;
}

ArenaFrame::ArenaFrame() : arena_(Arena::local()), mark_(arena_.mark()) {
  static thread_local obs::Counter frames("arena.frames");
  frames.add(1);
  ++arena_.depth_;
}

ArenaFrame::~ArenaFrame() {
  --arena_.depth_;
  arena_.release(mark_);
}

}  // namespace cirstag::util
