#include "core/manifold.hpp"

#include <algorithm>
#include <vector>

#include "graphs/components.hpp"
#include "obs/metrics.hpp"

namespace cirstag::core {

namespace {

/// Rescale all edge weights so the median weight becomes 1.
graphs::Graph normalize_median_weight(const graphs::Graph& g) {
  if (g.num_edges() == 0) return g;
  std::vector<double> weights;
  weights.reserve(g.num_edges());
  for (const auto& e : g.edges()) weights.push_back(e.weight);
  std::nth_element(weights.begin(), weights.begin() + weights.size() / 2,
                   weights.end());
  const double median = weights[weights.size() / 2];
  if (median <= 0.0) return g;
  graphs::Graph out(g.num_nodes());
  for (const auto& e : g.edges()) out.add_edge(e.u, e.v, e.weight / median);
  return out;
}

}  // namespace

namespace {

/// Shared tail of every manifold build: median normalization, component
/// bridging, PGM sparsification.
graphs::Graph finish_manifold(graphs::Graph knn, const ManifoldOptions& opts,
                              graphs::LaplacianSolverCache* cache) {
  static const obs::Counter builds("manifold.builds");
  static const obs::Counter knn_edges("manifold.knn_edges");
  static const obs::Counter final_edges("manifold.final_edges");
  builds.add();
  if (opts.normalize_weights) knn = normalize_median_weight(knn);
  knn = graphs::connect_components(knn, opts.bridge_weight);
  knn_edges.add(knn.num_edges());
  if (!opts.apply_sparsification) {
    final_edges.add(knn.num_edges());
    return knn;
  }
  graphs::SparsifyResult sparse =
      graphs::sparsify_pgm(knn, opts.sparsify, cache);
  final_edges.add(sparse.graph.num_edges());
  return std::move(sparse.graph);
}

}  // namespace

graphs::Graph build_manifold(const linalg::Matrix& embedding,
                             const ManifoldOptions& opts,
                             graphs::LaplacianSolverCache* cache) {
  return finish_manifold(graphs::build_knn_graph(embedding, opts.knn), opts,
                         cache);
}

ManifoldBaseline capture_manifold_baseline(const linalg::Matrix& embedding,
                                           const ManifoldOptions& opts,
                                           graphs::LaplacianSolverCache* cache) {
  ManifoldBaseline base;
  base.knn = graphs::capture_knn_baseline(embedding, opts.knn);
  base.manifold = finish_manifold(base.knn.graph, opts, cache);
  return base;
}

graphs::Graph build_manifold_delta(const ManifoldBaseline& baseline,
                                   const linalg::Matrix& embedding,
                                   std::span<const std::uint32_t> moved_rows,
                                   const ManifoldOptions& opts,
                                   graphs::LaplacianSolverCache* cache,
                                   graphs::KnnUpdateStats* stats) {
  return finish_manifold(graphs::update_knn_graph(baseline.knn, embedding,
                                                  moved_rows, opts.knn, stats),
                         opts, cache);
}

}  // namespace cirstag::core
