#include "core/stability.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>

#include "graphs/coarsen.hpp"
#include "graphs/effective_resistance.hpp"
#include "graphs/laplacian.hpp"
#include "linalg/multilevel_eigen.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/parallel_for.hpp"

namespace cirstag::core {

namespace {
/// Nodes/edges per parallel chunk for the score loops; each element is
/// independent, so parallel execution is bit-identical to serial.
constexpr std::size_t kScoreGrain = 256;
}  // namespace

std::vector<double> StabilityResult::scores_for_edges(
    const graphs::Graph& g) const {
  if (g.num_nodes() != weighted_subspace.rows())
    throw std::invalid_argument("scores_for_edges: node-count mismatch");
  std::vector<double> scores(g.num_edges(), 0.0);
  runtime::parallel_for(0, g.num_edges(), kScoreGrain, [&](std::size_t e) {
    const auto& ed = g.edge(e);
    scores[e] = pair_score(ed.u, ed.v);
  });
  return scores;
}

StabilityResult stability_scores(const graphs::Graph& manifold_x,
                                 const graphs::Graph& manifold_y,
                                 const StabilityOptions& opts,
                                 graphs::LaplacianSolverCache* cache) {
  if (manifold_x.num_nodes() != manifold_y.num_nodes())
    throw std::invalid_argument("stability_scores: manifold size mismatch");
  const std::size_t n = manifold_x.num_nodes();

  const linalg::SparseMatrix l_x = graphs::laplacian(manifold_x);
  const linalg::SparseMatrix l_y = graphs::laplacian(manifold_y);

  linalg::GeneralizedEigenOptions eopts;
  eopts.num_pairs = std::min(opts.eigensubspace_dim, n > 1 ? n - 1 : 1);
  eopts.iterations = opts.subspace_iterations;
  eopts.seed = opts.seed;
  eopts.ly_regularization = 1.0 / opts.sigma2;
  eopts.cg_tolerance = opts.cg_tolerance;
  eopts.cg_max_iterations = opts.cg_max_iterations;
  eopts.use_block_cg = opts.use_block_cg;
  if (opts.initial_subspace != nullptr) {
    eopts.initial_subspace = opts.initial_subspace;
    if (opts.warm_subspace_iterations > 0)
      eopts.iterations = opts.warm_subspace_iterations;
  }
  eopts.sweep_seed = opts.eigen_sweep_seed;
  eopts.sweep_capture = opts.eigen_sweep_capture;
  eopts.ritz_tolerance = opts.ritz_tolerance;

  // Build (or fetch) the (L_Y + I/σ²) solver through the shared path so the
  // rest of the pipeline can reuse it; same construction as the solver
  // generalized_eigen_sparse would build internally.
  graphs::SolverOptions sopts;
  sopts.regularization = eopts.ly_regularization;
  sopts.preconditioner = opts.preconditioner;
  sopts.cg.tolerance = eopts.cg_tolerance;
  sopts.cg.max_iterations = eopts.cg_max_iterations;
  // Deliberate iteration budget (see StabilityOptions::cg_max_iterations):
  // subspace iteration tolerates inexact inner solves, so hitting the cap
  // is normal and must not raise "unconverged" health warnings.
  sopts.cg.budget_bounded = true;
  // Phase 3a: DMD spectrum — the generalized eigenpairs of L_Y^+ L_X.
  std::shared_ptr<const linalg::LaplacianSolver> ly_solver;
  linalg::GeneralizedEigenResult eig;
  {
    const obs::TraceSpan span("phase.dmd", "pipeline");
    if (cache) {
      ly_solver = cache->solver(manifold_y, sopts);
    } else {
      ly_solver = std::make_shared<const linalg::LaplacianSolver>(
          graphs::make_laplacian_solver(manifold_y, sopts));
    }
    if (opts.initial_subspace == nullptr &&
        graphs::coarsen_engaged(opts.coarsen, n)) {
      // Multilevel path (DESIGN.md §12): one shared matching per level over
      // the edge union of both manifolds, coarsest-level solve, then
      // warm-started refinement sweeps up the hierarchy. The finest level
      // reuses the cached (L_Y + I/σ²) solver built above.
      const bool reuse = opts.hierarchy_reuse != nullptr &&
                         !opts.hierarchy_reuse->empty() &&
                         opts.hierarchy_reuse->maps[0].size() == n;
      graphs::CoarsenPairHierarchy hier;
      std::span<const std::vector<std::uint32_t>> maps;
      std::vector<linalg::SparseMatrix> lx_levels;
      std::vector<linalg::SparseMatrix> ly_levels;
      lx_levels.push_back(l_x);
      ly_levels.push_back(l_y);
      if (reuse) {
        // Hierarchy reuse (DESIGN.md §13): keep the captured baseline's
        // prolongation maps and redo only the Galerkin edge-weight
        // aggregation against this call's manifolds — fixed-aggregation AMG.
        // Deterministic: the maps are frozen and aggregate_graph is a pure
        // function of (graph, map).
        static const obs::Counter reuses("coarsen.hierarchy_reuses");
        reuses.add();
        maps = opts.hierarchy_reuse->maps;
        const graphs::Graph* px = &manifold_x;
        const graphs::Graph* py = &manifold_y;
        for (std::size_t l = 0; l < maps.size(); ++l) {
          const std::size_t nc =
              opts.hierarchy_reuse->x_levels[l].num_nodes();
          hier.x_levels.push_back(graphs::aggregate_graph(*px, maps[l], nc));
          hier.y_levels.push_back(graphs::aggregate_graph(*py, maps[l], nc));
          px = &hier.x_levels.back();
          py = &hier.y_levels.back();
        }
      } else {
        hier = graphs::coarsen_pair(manifold_x, manifold_y, opts.coarsen);
        maps = hier.maps;
      }
      lx_levels.reserve(maps.size() + 1);
      ly_levels.reserve(maps.size() + 1);
      for (std::size_t l = 0; l < maps.size(); ++l) {
        lx_levels.push_back(graphs::laplacian(hier.x_levels[l]));
        ly_levels.push_back(graphs::laplacian(hier.y_levels[l]));
      }
      linalg::MultilevelStats stats;
      eig = linalg::multilevel_generalized_eigen(
          lx_levels, ly_levels, maps, eopts, opts.coarsen.refine_sweeps,
          ly_solver.get(), &stats);
      static const obs::Gauge levels_gauge("coarsen.levels");
      static const obs::Gauge coarsest_gauge("coarsen.coarsest_n");
      levels_gauge.set(static_cast<double>(stats.levels));
      coarsest_gauge.set(static_cast<double>(stats.coarsest_n));
      if (opts.hierarchy_capture != nullptr && !reuse)
        *opts.hierarchy_capture = std::move(hier);
    } else {
      eig =
          linalg::generalized_eigen_sparse(l_x, l_y, eopts, ly_solver.get());
    }
  }

  // Phase 3b: edge/node stability scores from the weighted eigensubspace.
  const obs::TraceSpan span("phase.scores", "pipeline");
  static const obs::Counter score_runs("stability.score_runs");
  score_runs.add();

  StabilityResult out;
  out.subspace_sweeps = eig.sweeps_executed;
  out.eigenvalues = eig.values;
  out.raw_subspace = eig.vectors;
  const std::size_t s = eig.values.size();
  out.weighted_subspace = linalg::Matrix(n, s);
  std::vector<double> col_weight(s);
  for (std::size_t j = 0; j < s; ++j)
    col_weight[j] = std::sqrt(std::max(eig.values[j], 0.0));
  runtime::parallel_for(0, n, kScoreGrain, [&](std::size_t i) {
    for (std::size_t j = 0; j < s; ++j)
      out.weighted_subspace(i, j) = col_weight[j] * eig.vectors(i, j);
  });

  // Edge scores ‖V_sᵀ e_pq‖² on the input manifold.
  out.edge_scores.resize(manifold_x.num_edges());
  runtime::parallel_for(0, manifold_x.num_edges(), kScoreGrain,
                        [&](std::size_t e) {
    const auto& ed = manifold_x.edge(e);
    out.edge_scores[e] = out.weighted_subspace.row_distance2(ed.u, ed.v);
  });

  // Eq. 9: node score = mean incident edge score over G_X neighbors.
  out.node_scores.assign(n, 0.0);
  runtime::parallel_for(0, n, kScoreGrain, [&](std::size_t p) {
    const auto nbrs = manifold_x.neighbors(static_cast<graphs::NodeId>(p));
    if (nbrs.empty()) return;
    double acc = 0.0;
    for (const auto& inc : nbrs) acc += out.edge_scores[inc.edge];
    out.node_scores[p] = acc / static_cast<double>(nbrs.size());
  });
  return out;
}

std::vector<double> edge_dmd_ratios(const graphs::Graph& manifold_x,
                                    const graphs::Graph& manifold_y,
                                    double sigma2) {
  if (manifold_x.num_nodes() != manifold_y.num_nodes())
    throw std::invalid_argument("edge_dmd_ratios: manifold size mismatch");
  graphs::SolverOptions sopts;
  sopts.regularization = 1.0 / sigma2;
  const linalg::LaplacianSolver sx =
      graphs::make_laplacian_solver(manifold_x, sopts);
  const linalg::LaplacianSolver sy =
      graphs::make_laplacian_solver(manifold_y, sopts);

  std::vector<double> ratios(manifold_x.num_edges(), 0.0);
  runtime::parallel_for(0, manifold_x.num_edges(), 1, [&](std::size_t e) {
    const auto& ed = manifold_x.edge(e);
    const double dx = graphs::effective_resistance(sx, ed.u, ed.v);
    const double dy = graphs::effective_resistance(sy, ed.u, ed.v);
    ratios[e] = dx > 1e-300 ? dy / dx : 0.0;
  });
  return ratios;
}

}  // namespace cirstag::core
