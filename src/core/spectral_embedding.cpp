#include "core/spectral_embedding.hpp"

#include <cmath>
#include <stdexcept>

#include "graphs/laplacian.hpp"
#include "linalg/lanczos.hpp"

namespace cirstag::core {

linalg::Matrix spectral_embedding(const graphs::Graph& g,
                                  const SpectralEmbeddingOptions& opts) {
  return spectral_embedding_warm(g, opts, nullptr);
}

linalg::Matrix spectral_embedding_warm(const graphs::Graph& g,
                                       const SpectralEmbeddingOptions& opts,
                                       const linalg::Matrix* warm_basis) {
  const std::size_t n = g.num_nodes();
  if (n == 0) return {};
  const std::size_t m = std::min(opts.dimensions, n);

  // Warm start vector: equal mix of the baseline eigenbasis columns, which
  // biases the Krylov recurrence toward the wanted low-frequency subspace.
  std::vector<double> start;
  if (warm_basis != nullptr && warm_basis->rows() == n &&
      warm_basis->cols() > 0) {
    start.assign(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const auto row = warm_basis->row(i);
      for (const double v : row) start[i] += v;
    }
  }

  const linalg::SparseMatrix l_norm = graphs::normalized_laplacian(g);
  // Normalized-Laplacian spectrum lives in [0, 2].
  const linalg::EigenDecomposition eig = linalg::smallest_eigenpairs(
      l_norm, m, /*spectrum_upper_bound=*/2.0, opts.lanczos_subspace,
      opts.seed, start.empty() ? nullptr : &start);

  linalg::Matrix u(n, eig.values.size());
  for (std::size_t j = 0; j < eig.values.size(); ++j) {
    const double w = std::sqrt(std::abs(1.0 - eig.values[j]));
    for (std::size_t i = 0; i < n; ++i) u(i, j) = w * eig.vectors(i, j);
  }
  return u;
}

}  // namespace cirstag::core
