#include "core/spectral_embedding.hpp"

#include <cmath>
#include <stdexcept>

#include "graphs/coarsen.hpp"
#include "graphs/laplacian.hpp"
#include "linalg/lanczos.hpp"
#include "linalg/multilevel_eigen.hpp"
#include "obs/metrics.hpp"

namespace cirstag::core {

linalg::Matrix spectral_embedding(const graphs::Graph& g,
                                  const SpectralEmbeddingOptions& opts) {
  return spectral_embedding_warm(g, opts, nullptr);
}

linalg::Matrix spectral_embedding_warm(const graphs::Graph& g,
                                       const SpectralEmbeddingOptions& opts,
                                       const linalg::Matrix* warm_basis) {
  const std::size_t n = g.num_nodes();
  if (n == 0) return {};
  const std::size_t m = std::min(opts.dimensions, n);

  // Warm start vector: equal mix of the baseline eigenbasis columns, which
  // biases the Krylov recurrence toward the wanted low-frequency subspace.
  std::vector<double> start;
  if (warm_basis != nullptr && warm_basis->rows() == n &&
      warm_basis->cols() > 0) {
    start.assign(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const auto row = warm_basis->row(i);
      for (const double v : row) start[i] += v;
    }
  }

  const linalg::SparseMatrix l_norm = graphs::normalized_laplacian(g);
  // Normalized-Laplacian spectrum lives in [0, 2].
  linalg::EigenDecomposition eig;
  if (start.empty() && graphs::coarsen_engaged(opts.coarsen, n)) {
    // Multilevel path (DESIGN.md §12): coarsen, solve the coarsest level's
    // own normalized Laplacian, then Rayleigh-Ritz-refine up the hierarchy
    // against each finer level's operator. Engaged only above the auto
    // threshold and never on warm-started sweep variants.
    const graphs::CoarsenHierarchy hier =
        graphs::coarsen_graph(g, opts.coarsen);
    std::vector<linalg::SparseMatrix> coarse;
    std::vector<linalg::ProlongMap> maps;
    coarse.reserve(hier.levels.size());
    maps.reserve(hier.levels.size());
    for (const graphs::CoarsenLevel& level : hier.levels) {
      coarse.push_back(graphs::normalized_laplacian(level.graph));
      maps.push_back(level.map);
    }
    linalg::MultilevelSmallestOptions mopts;
    mopts.refine_sweeps = opts.coarsen.refine_sweeps;
    mopts.spectrum_upper_bound = 2.0;
    mopts.lanczos_subspace = opts.lanczos_subspace;
    mopts.seed = opts.seed;
    linalg::MultilevelStats stats;
    eig = linalg::multilevel_smallest_eigenpairs(l_norm, coarse, maps, m,
                                                 mopts, &stats);
    static const obs::Gauge levels_gauge("coarsen.levels");
    static const obs::Gauge coarsest_gauge("coarsen.coarsest_n");
    levels_gauge.set(static_cast<double>(stats.levels));
    coarsest_gauge.set(static_cast<double>(stats.coarsest_n));
  } else {
    eig = linalg::smallest_eigenpairs(
        l_norm, m, /*spectrum_upper_bound=*/2.0, opts.lanczos_subspace,
        opts.seed, start.empty() ? nullptr : &start);
  }

  linalg::Matrix u(n, eig.values.size());
  for (std::size_t j = 0; j < eig.values.size(); ++j) {
    const double w = std::sqrt(std::abs(1.0 - eig.values[j]));
    for (std::size_t i = 0; i < n; ++i) u(i, j) = w * eig.vectors(i, j);
  }
  return u;
}

}  // namespace cirstag::core
