#include "core/spectral_embedding.hpp"

#include <cmath>
#include <stdexcept>

#include "graphs/laplacian.hpp"
#include "linalg/lanczos.hpp"

namespace cirstag::core {

linalg::Matrix spectral_embedding(const graphs::Graph& g,
                                  const SpectralEmbeddingOptions& opts) {
  const std::size_t n = g.num_nodes();
  if (n == 0) return {};
  const std::size_t m = std::min(opts.dimensions, n);

  const linalg::SparseMatrix l_norm = graphs::normalized_laplacian(g);
  // Normalized-Laplacian spectrum lives in [0, 2].
  const linalg::EigenDecomposition eig = linalg::smallest_eigenpairs(
      l_norm, m, /*spectrum_upper_bound=*/2.0, opts.lanczos_subspace,
      opts.seed);

  linalg::Matrix u(n, eig.values.size());
  for (std::size_t j = 0; j < eig.values.size(); ++j) {
    const double w = std::sqrt(std::abs(1.0 - eig.values[j]));
    for (std::size_t i = 0; i < n; ++i) u(i, j) = w * eig.vectors(i, j);
  }
  return u;
}

}  // namespace cirstag::core
