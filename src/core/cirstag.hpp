#pragma once

#include <span>

#include "core/manifold.hpp"
#include "core/spectral_embedding.hpp"
#include "core/stability.hpp"
#include "graphs/graph.hpp"
#include "linalg/matrix.hpp"
#include "obs/health.hpp"
#include "obs/manifest.hpp"

namespace cirstag::core {

/// Full pipeline configuration (Algorithm 1).
struct CirStagConfig {
  SpectralEmbeddingOptions embedding;  ///< Phase 1 (input side)
  ManifoldOptions manifold;            ///< Phase 2 (both sides)
  StabilityOptions stability;          ///< Phase 3
  /// When false, skip the Phase-1 spectral dimensionality reduction and use
  /// the original input graph directly as the input manifold — the paper's
  /// Fig. 4 ablation, which degrades ranking quality.
  bool use_dimension_reduction = true;
  /// Weight of the (column-standardized) node features appended to the
  /// spectral coordinates when features are supplied to analyze(). This is
  /// how CirSTAG considers "both graph structure and node feature
  /// perturbations": input-manifold neighbors must agree on structure AND
  /// features, so a large output distance between them flags genuine
  /// mapping instability. 0 disables the feature channel.
  double feature_weight = 2.0;
  /// Width of the parallel runtime pool used by analyze(): 0 keeps the
  /// current global pool (CIRSTAG_THREADS env var or hardware concurrency
  /// on first use); any other value resizes the global pool. Scores are
  /// bit-identical at every setting — the runtime's chunked reductions fix
  /// chunk boundaries independent of thread count.
  std::size_t threads = 0;
  /// Share one Laplacian-solver cache across the manifold and stability
  /// phases so each distinct manifold is assembled/factored once per
  /// analyze(). Purely an assembly cache: scores are bit-identical with it
  /// on or off.
  bool use_solver_cache = true;
};

/// Wall-clock per phase (Fig. 5 scalability series), plus the summed busy
/// time of parallel runtime tasks inside each phase: busy/wall ≈ effective
/// parallel speedup, so the Fig. 5 benchmarks can report per-phase scaling.
struct PhaseTimings {
  double embedding_seconds = 0.0;
  double manifold_seconds = 0.0;
  double stability_seconds = 0.0;
  double embedding_busy_seconds = 0.0;
  double manifold_busy_seconds = 0.0;
  double stability_busy_seconds = 0.0;
  std::size_t threads = 1;  ///< pool width the analysis ran with
  [[nodiscard]] double total() const {
    return embedding_seconds + manifold_seconds + stability_seconds;
  }
  [[nodiscard]] double total_busy() const {
    return embedding_busy_seconds + manifold_busy_seconds +
           stability_busy_seconds;
  }
};

/// Everything CirSTAG produces for one (graph, GNN-embedding) pair.
struct CirStagReport {
  std::vector<double> node_scores;   ///< Eq. 9, per input-graph node
  std::vector<double> edge_scores;   ///< per manifold_x edge
  std::vector<double> eigenvalues;   ///< DMD spectrum (descending)
  /// √ζ-weighted eigensubspace V_s; lets callers score arbitrary node
  /// pairs — e.g. the original circuit's edges for topology studies.
  linalg::Matrix weighted_subspace;
  graphs::Graph manifold_x;
  graphs::Graph manifold_y;
  linalg::Matrix input_embedding;    ///< U_M (empty when reduction disabled)
  PhaseTimings timings;
  /// Numerical-health events recorded during this analyze() call (NaN/Inf
  /// sentinels, unconverged solves, Ritz residuals, …). health.ok() means
  /// nothing above info severity fired. Empty when the global HealthMonitor
  /// is disabled.
  obs::HealthReport health;
  /// FNV-1a checksums of each phase boundary's produced doubles — the run
  /// manifest's per-phase provenance (equal checksums certify bitwise-equal
  /// intermediates across thread counts / machines).
  obs::PhaseChecksums checksums;

  /// Design-wide mean of node_scores, cached at report assembly so localized
  /// queries (core::score_region / score_cone) answer without an O(n) scan
  /// over the whole design. Serial summation in node order — bit-equal to
  /// the scan it replaces. Negative = not cached (hand-built reports);
  /// queries then fall back to the scan.
  double node_score_mean = -1.0;

  /// Edge-stability score ‖V_sᵀ e_pq‖² for any node pair (p, q).
  [[nodiscard]] double pair_score(std::size_t p, std::size_t q) const {
    return weighted_subspace.row_distance2(p, q);
  }
};

/// Canonical design-mean of a node-score vector: strictly serial summation
/// in node order. CirStagReport::node_score_mean is always computed through
/// this, and so is the localized-query fallback scan, so cached and scanned
/// means are bit-equal.
[[nodiscard]] double mean_node_score(std::span<const double> scores);

/// Column standardization used by the Phase-1 feature augmentation: per-
/// column mean and multiplier (feature_weight / sd, or 0 for a constant
/// column, which is dropped to zero). analyze() refits these on every call;
/// the sweep engine's exact mode matches that, while its fast mode keeps
/// the baseline frame so untouched rows stay bitwise stable (see
/// SweepOptions::baseline_feature_frame).
struct FeatureColumnStats {
  std::vector<double> mean;
  std::vector<double> scale;
};

/// Fit mean/scale on the columns of `x` exactly as analyze() does.
[[nodiscard]] FeatureColumnStats fit_feature_stats(const linalg::Matrix& x,
                                                   double weight);

/// Apply fitted stats: out(r,c) = (x(r,c) - mean[c]) * scale[c], with
/// constant columns (scale 0) left at zero. Row-local: rows equal in `x`
/// produce equal output rows.
[[nodiscard]] linalg::Matrix apply_feature_stats(
    const linalg::Matrix& x, const FeatureColumnStats& stats);

/// Row-concatenation [u ‖ f] used by analyze() for the augmented input
/// embedding.
[[nodiscard]] linalg::Matrix augment_embedding(const linalg::Matrix& u,
                                               const linalg::Matrix& f);

/// CirSTAG: node/edge stability analysis of a black-box GNN on graph-based
/// manifolds (DAC 2025). Usage:
///
///   core::CirStag analyzer(config);
///   auto report = analyzer.analyze(input_graph, gnn_node_embeddings);
///   // report.node_scores[i] large  =>  node i is unstable/sensitive
///
/// `input_graph` is the circuit graph the GNN consumed (pins or gates);
/// `output_embedding` is the GNN's node-embedding matrix (rows = nodes).
class CirStag {
 public:
  explicit CirStag(CirStagConfig config = {}) : config_(std::move(config)) {}

  /// Structure-only analysis (no node features on the input side).
  [[nodiscard]] CirStagReport analyze(const graphs::Graph& input_graph,
                                      const linalg::Matrix& output_embedding) const;

  /// Full analysis with node features: the Phase-1 input embedding is
  /// [U_M ‖ feature_weight · standardize(node_features)], making the input
  /// manifold sensitive to both structure and features (the configuration
  /// the Case-A capacitance-perturbation study requires).
  [[nodiscard]] CirStagReport analyze(const graphs::Graph& input_graph,
                                      const linalg::Matrix& node_features,
                                      const linalg::Matrix& output_embedding) const;

  [[nodiscard]] const CirStagConfig& config() const { return config_; }

 private:
  CirStagConfig config_;
};

}  // namespace cirstag::core
