#pragma once

#include "graphs/graph.hpp"
#include "graphs/knn.hpp"
#include "graphs/sparsify.hpp"
#include "linalg/matrix.hpp"

namespace cirstag::core {

/// Options for CirSTAG Phase 2 (graph-based manifold construction via PGM).
struct ManifoldOptions {
  graphs::KnnGraphOptions knn;
  graphs::SparsifyOptions sparsify;
  /// Skip the spectral-sparsification refinement and use the raw kNN graph
  /// (ablation knob; the paper's full pipeline sparsifies).
  bool apply_sparsification = true;
  /// Weight used for bridges inserted to reconnect kNN components
  /// (relative to the post-normalization scale).
  double bridge_weight = 1e-3;
  /// Rescale edge weights so the median weight is 1. Stability scores are
  /// invariant to a global rescaling of each manifold, but the absolute
  /// scale of 1/dist² weights varies wildly across embeddings and would
  /// otherwise wreck the conditioning of the Laplacian solves in Phase 3.
  bool normalize_weights = true;
};

/// Build a graph-based manifold over embedding rows: kNN graph with
/// PGM-stationary weights w = 1/dist², reconnected if the kNN graph is
/// disconnected (effective resistance needs a connected support), then
/// refined by η-pruning spectral sparsification (Eq. 8).
///
/// `cache` (optional) is forwarded to the sparsifier's resistance sketch.
[[nodiscard]] graphs::Graph build_manifold(
    const linalg::Matrix& embedding, const ManifoldOptions& opts = {},
    graphs::LaplacianSolverCache* cache = nullptr);

/// Baseline of one manifold build kept for perturbation sweeps: the kNN
/// candidate lists (pre-normalization) plus the finished manifold, which is
/// byte-identical to build_manifold on the same inputs.
struct ManifoldBaseline {
  graphs::KnnBaseline knn;
  graphs::Graph manifold;
};

/// build_manifold that additionally captures the kNN baseline for later
/// build_manifold_delta calls.
[[nodiscard]] ManifoldBaseline capture_manifold_baseline(
    const linalg::Matrix& embedding, const ManifoldOptions& opts = {},
    graphs::LaplacianSolverCache* cache = nullptr);

/// Fast-mode manifold rebuild for an embedding whose rows moved only at
/// `moved_rows`: delta kNN re-query against the baseline lists (see
/// graphs::update_knn_graph for the documented approximation), then the
/// normal normalize/connect/sparsify tail. With empty `moved_rows` the kNN
/// stage reproduces the baseline graph exactly.
[[nodiscard]] graphs::Graph build_manifold_delta(
    const ManifoldBaseline& baseline, const linalg::Matrix& embedding,
    std::span<const std::uint32_t> moved_rows, const ManifoldOptions& opts = {},
    graphs::LaplacianSolverCache* cache = nullptr,
    graphs::KnnUpdateStats* stats = nullptr);

}  // namespace cirstag::core
