#pragma once

#include "graphs/graph.hpp"
#include "graphs/knn.hpp"
#include "graphs/sparsify.hpp"
#include "linalg/matrix.hpp"

namespace cirstag::core {

/// Options for CirSTAG Phase 2 (graph-based manifold construction via PGM).
struct ManifoldOptions {
  graphs::KnnGraphOptions knn;
  graphs::SparsifyOptions sparsify;
  /// Skip the spectral-sparsification refinement and use the raw kNN graph
  /// (ablation knob; the paper's full pipeline sparsifies).
  bool apply_sparsification = true;
  /// Weight used for bridges inserted to reconnect kNN components
  /// (relative to the post-normalization scale).
  double bridge_weight = 1e-3;
  /// Rescale edge weights so the median weight is 1. Stability scores are
  /// invariant to a global rescaling of each manifold, but the absolute
  /// scale of 1/dist² weights varies wildly across embeddings and would
  /// otherwise wreck the conditioning of the Laplacian solves in Phase 3.
  bool normalize_weights = true;
};

/// Build a graph-based manifold over embedding rows: kNN graph with
/// PGM-stationary weights w = 1/dist², reconnected if the kNN graph is
/// disconnected (effective resistance needs a connected support), then
/// refined by η-pruning spectral sparsification (Eq. 8).
///
/// `cache` (optional) is forwarded to the sparsifier's resistance sketch.
[[nodiscard]] graphs::Graph build_manifold(
    const linalg::Matrix& embedding, const ManifoldOptions& opts = {},
    graphs::LaplacianSolverCache* cache = nullptr);

}  // namespace cirstag::core
