#include "core/baselines.hpp"

#include <stdexcept>

namespace cirstag::core {

std::vector<double> random_scores(std::size_t n, linalg::Rng& rng) {
  std::vector<double> s(n);
  for (auto& v : s) v = rng.uniform();
  return s;
}

std::vector<double> degree_scores(const graphs::Graph& g) {
  std::vector<double> s(g.num_nodes());
  for (graphs::NodeId u = 0; u < g.num_nodes(); ++u)
    s[u] = g.weighted_degree(u);
  return s;
}

std::vector<double> feature_magnitude_scores(const linalg::Matrix& features,
                                             std::size_t column) {
  if (column >= features.cols())
    throw std::out_of_range("feature_magnitude_scores: column");
  std::vector<double> s(features.rows());
  for (std::size_t r = 0; r < features.rows(); ++r)
    s[r] = features(r, column);
  return s;
}

std::vector<double> embedding_roughness_scores(
    const graphs::Graph& g, const linalg::Matrix& output_embedding) {
  if (g.num_nodes() != output_embedding.rows())
    throw std::invalid_argument("embedding_roughness_scores: size mismatch");
  const std::size_t d = output_embedding.cols();
  std::vector<double> s(g.num_nodes(), 0.0);
  std::vector<double> mean(d);
  for (graphs::NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto nbrs = g.neighbors(u);
    if (nbrs.empty()) continue;
    std::fill(mean.begin(), mean.end(), 0.0);
    for (const auto& inc : nbrs) {
      const auto row = output_embedding.row(inc.neighbor);
      for (std::size_t c = 0; c < d; ++c) mean[c] += row[c];
    }
    const double inv = 1.0 / static_cast<double>(nbrs.size());
    const auto self = output_embedding.row(u);
    double acc = 0.0;
    for (std::size_t c = 0; c < d; ++c) {
      const double diff = self[c] - mean[c] * inv;
      acc += diff * diff;
    }
    s[u] = acc;
  }
  return s;
}

}  // namespace cirstag::core
