#include "core/query.hpp"

#include <algorithm>
#include <cstdint>
#include <stdexcept>

namespace cirstag::core {

std::vector<NodeScore> top_k_nodes(const CirStagReport& report,
                                   std::size_t k) {
  const auto& scores = report.node_scores;
  const std::size_t n = scores.size();
  k = std::min(k, n);
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::partial_sort(order.begin(), order.begin() + static_cast<long>(k),
                    order.end(), [&](std::size_t a, std::size_t b) {
                      if (scores[a] != scores[b]) return scores[a] > scores[b];
                      return a < b;
                    });
  std::vector<NodeScore> out;
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i)
    out.push_back({order[i], scores[order[i]]});
  return out;
}

RegionScore score_region(const CirStagReport& report,
                         std::span<const std::size_t> nodes) {
  const auto& scores = report.node_scores;
  RegionScore out;
  // The cached mean makes the query O(|region|) instead of O(n); it was
  // computed with the same serial summation order as the fallback scan, so
  // both paths return the same bits.
  out.design_mean = report.node_score_mean >= 0.0 ? report.node_score_mean
                                                  : mean_node_score(scores);
  if (nodes.empty()) return out;

  out.nodes.reserve(nodes.size());
  double sum = 0.0;
  for (const std::size_t id : nodes) {
    if (id >= scores.size())
      throw std::out_of_range("score_region: node " + std::to_string(id) +
                              " past node count " +
                              std::to_string(scores.size()));
    const double s = scores[id];
    out.nodes.push_back({id, s});
    sum += s;
    if (out.nodes.size() == 1 || s > out.max) {
      out.max = s;
      out.argmax = id;
    }
  }
  out.mean = sum / out.nodes.size();
  return out;
}

ConeRegion expand_cone(const graphs::Graph& g,
                       std::span<const std::size_t> seeds, std::size_t hops) {
  ConeRegion out;
  const std::size_t n = g.num_nodes();
  std::vector<std::uint8_t> seen(n, 0);
  std::vector<std::size_t> frontier;
  for (const std::size_t id : seeds) {
    if (id >= n)
      throw std::out_of_range("expand_cone: node " + std::to_string(id) +
                              " past node count " + std::to_string(n));
    if (seen[id]) continue;
    seen[id] = 1;
    frontier.push_back(id);
    out.nodes.push_back(id);
  }
  // Breadth-first over the undirected pin graph: each ring adds both fan-in
  // and fan-out of the previous ring, so `hops` rings cover the combined
  // fan-in/fan-out cone. Work is O(cone edges) — independent of design size.
  std::vector<std::size_t> next;
  for (std::size_t h = 0; h < hops && !frontier.empty(); ++h) {
    next.clear();
    for (const std::size_t u : frontier) {
      for (const auto& inc : g.neighbors(static_cast<graphs::NodeId>(u))) {
        if (seen[inc.neighbor]) continue;
        seen[inc.neighbor] = 1;
        next.push_back(inc.neighbor);
        out.nodes.push_back(inc.neighbor);
      }
    }
    frontier.swap(next);
  }
  std::sort(out.nodes.begin(), out.nodes.end());
  return out;
}

RegionScore score_cone(const CirStagReport& report, const graphs::Graph& g,
                       std::span<const std::size_t> seeds, std::size_t hops) {
  if (g.num_nodes() != report.node_scores.size())
    throw std::invalid_argument(
        "score_cone: graph node count != report node count");
  const ConeRegion cone = expand_cone(g, seeds, hops);
  return score_region(report, cone.nodes);
}

}  // namespace cirstag::core
