#include "core/query.hpp"

#include <algorithm>
#include <stdexcept>

namespace cirstag::core {

std::vector<NodeScore> top_k_nodes(const CirStagReport& report,
                                   std::size_t k) {
  const auto& scores = report.node_scores;
  const std::size_t n = scores.size();
  k = std::min(k, n);
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::partial_sort(order.begin(), order.begin() + static_cast<long>(k),
                    order.end(), [&](std::size_t a, std::size_t b) {
                      if (scores[a] != scores[b]) return scores[a] > scores[b];
                      return a < b;
                    });
  std::vector<NodeScore> out;
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i)
    out.push_back({order[i], scores[order[i]]});
  return out;
}

RegionScore score_region(const CirStagReport& report,
                         std::span<const std::size_t> nodes) {
  const auto& scores = report.node_scores;
  RegionScore out;
  double design_sum = 0.0;
  for (const double s : scores) design_sum += s;
  out.design_mean = scores.empty() ? 0.0 : design_sum / scores.size();
  if (nodes.empty()) return out;

  out.nodes.reserve(nodes.size());
  double sum = 0.0;
  for (const std::size_t id : nodes) {
    if (id >= scores.size())
      throw std::out_of_range("score_region: node " + std::to_string(id) +
                              " past node count " +
                              std::to_string(scores.size()));
    const double s = scores[id];
    out.nodes.push_back({id, s});
    sum += s;
    if (out.nodes.size() == 1 || s > out.max) {
      out.max = s;
      out.argmax = id;
    }
  }
  out.mean = sum / out.nodes.size();
  return out;
}

}  // namespace cirstag::core
