#pragma once

#include <vector>

#include "graphs/graph.hpp"
#include "linalg/matrix.hpp"
#include "linalg/rng.hpp"

namespace cirstag::core {

/// Baseline node-ranking heuristics CirSTAG is compared against in the
/// ground-truth validation experiments.

/// Uniform random scores.
[[nodiscard]] std::vector<double> random_scores(std::size_t n,
                                                linalg::Rng& rng);

/// Weighted degree centrality on the input graph.
[[nodiscard]] std::vector<double> degree_scores(const graphs::Graph& g);

/// Raw feature magnitude (e.g. pin capacitance column).
[[nodiscard]] std::vector<double> feature_magnitude_scores(
    const linalg::Matrix& features, std::size_t column);

/// One-step embedding-gradient proxy: ‖y_p - mean_{q∈N(p)} y_q‖² on the
/// output embedding over the input graph — a "GNN-aware but manifold-free"
/// baseline showing the value of the PGM/DMD machinery.
[[nodiscard]] std::vector<double> embedding_roughness_scores(
    const graphs::Graph& g, const linalg::Matrix& output_embedding);

}  // namespace cirstag::core
