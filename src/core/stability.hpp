#pragma once

#include "graphs/coarsen.hpp"
#include "graphs/graph.hpp"
#include "graphs/solver_cache.hpp"
#include "linalg/generalized_eigen.hpp"
#include "linalg/matrix.hpp"

namespace cirstag::core {

/// Options for CirSTAG Phase 3 (DMD-based stability scoring).
struct StabilityOptions {
  std::size_t eigensubspace_dim = 8;  ///< s
  /// Prior feature variance σ² of the PGM (Θ = L + I/σ²); its inverse
  /// regularizes both Laplacians.
  double sigma2 = 1e4;
  std::size_t subspace_iterations = 25;
  /// CG budget for the inner (L_Y + I/σ²)⁻¹ applications. Subspace
  /// iteration tolerates inexact solves, and the final Rayleigh-Ritz
  /// projection is exact on the converged subspace, so a bounded iteration
  /// count keeps Phase 3 near-linear without hurting the ranking.
  double cg_tolerance = 1e-7;
  std::size_t cg_max_iterations = 400;
  std::uint64_t seed = 99;
  /// Preconditioner for the inner L_Y solves (jacobi reproduces the
  /// historical iterates bit-for-bit; spanning_tree converges faster).
  graphs::SolverPreconditioner preconditioner =
      graphs::SolverPreconditioner::jacobi;
  /// Solve all subspace columns per sweep in one blocked CG call
  /// (bit-identical per column; see GeneralizedEigenOptions::use_block_cg).
  bool use_block_cg = true;
  /// Optional eigensolver warm start (perturbation sweeps): seed the
  /// subspace iteration with these columns (a converged baseline subspace,
  /// see StabilityResult::raw_subspace) instead of the random init. Changes
  /// results at convergence-tolerance level — bit-exact paths leave it null.
  const linalg::Matrix* initial_subspace = nullptr;
  /// Sweep count used when `initial_subspace` is set (0 = keep
  /// subspace_iterations). Caution: on near-degenerate spectra the warm
  /// subspace converges no faster than the random init, so reducing the
  /// sweep count moves the scores — prefer `eigen_sweep_seed`.
  std::size_t warm_subspace_iterations = 0;
  /// Per-sweep CG warm start from a nearby problem's captured sweep
  /// solutions (see GeneralizedEigenOptions::sweep_seed): accelerates each
  /// sweep without changing the iterate trajectory beyond cg_tolerance.
  /// Bit-exact paths leave both null.
  const std::vector<linalg::Matrix>* eigen_sweep_seed = nullptr;
  /// Capture this run's per-sweep solution blocks as the seed for
  /// subsequent nearby runs (GeneralizedEigenOptions::sweep_capture).
  std::vector<linalg::Matrix>* eigen_sweep_capture = nullptr;
  /// Adaptive subspace-iteration early stop: finish once the sorted
  /// Rayleigh quotients change by ≤ ritz_tolerance·ρ_max between sweeps
  /// (see GeneralizedEigenOptions::ritz_tolerance). Deterministic and
  /// thread-count invariant; the executed count lands in
  /// StabilityResult::subspace_sweeps. 0 = fixed `subspace_iterations`
  /// count, the bit-exact historical behaviour.
  double ritz_tolerance = 0.0;
  /// Multilevel coarsening policy (DESIGN.md §12): coarsen both manifolds
  /// through one shared matching, solve the generalized problem at the
  /// coarsest level, refine upward. The default `automatic` engages only at
  /// coarsen.auto_threshold nodes and above; warm-started sweep variants
  /// (initial_subspace set) always take the exact path.
  graphs::CoarsenOptions coarsen;
  /// Capture slot for the pair hierarchy the multilevel path builds: when
  /// set and the multilevel path runs, the hierarchy is moved here after the
  /// solve so a sweep engine can reuse it across variants (DESIGN.md §13).
  /// Left untouched when the multilevel path does not engage.
  graphs::CoarsenPairHierarchy* hierarchy_capture = nullptr;
  /// Reuse a previously captured hierarchy instead of re-matching: the
  /// baseline's prolongation maps are kept verbatim and only the Galerkin
  /// edge-weight aggregation is recomputed for THIS call's manifolds (valid
  /// for any edge set over the same node set — sweep variants perturb
  /// weights/edges, never the node count). Ignored unless the multilevel
  /// path engages and the map's fine dimension matches; each use bumps the
  /// deterministic coarsen.hierarchy_reuses counter.
  const graphs::CoarsenPairHierarchy* hierarchy_reuse = nullptr;
};

/// Phase-3 output: the DMD spectrum and per-edge/per-node stability scores.
struct StabilityResult {
  /// Largest s generalized eigenvalues ζ of L_Y^+ L_X (descending) —
  /// upper bounds on the squared distance-mapping distortion.
  std::vector<double> eigenvalues;
  /// Weighted eigensubspace V_s = [v_1 √ζ_1, ..., v_s √ζ_s].
  linalg::Matrix weighted_subspace;
  /// Unweighted converged eigenvectors (columns) — the warm-start seed for
  /// nearby problems (StabilityOptions::initial_subspace).
  linalg::Matrix raw_subspace;
  /// ‖V_sᵀ e_pq‖² for every edge of the input manifold G_X.
  std::vector<double> edge_scores;
  /// Eq. 9 node scores: neighbor-average of incident edge scores over G_X.
  std::vector<double> node_scores;
  /// Subspace sweeps the eigensolver executed (< subspace_iterations when
  /// ritz_tolerance stopped early). Deterministic — usable as a locked
  /// perf-regression metric.
  std::size_t subspace_sweeps = 0;

  /// Stability score ‖V_sᵀ e_pq‖² of an arbitrary node pair — the paper's
  /// edge-stability measure evaluated on any candidate edge (e.g. the edges
  /// of the original circuit rather than the manifold).
  [[nodiscard]] double pair_score(std::size_t p, std::size_t q) const {
    return weighted_subspace.row_distance2(p, q);
  }

  /// Scores for every edge of an arbitrary graph over the same node set
  /// (e.g. the original circuit graph for Case-B edge selection).
  [[nodiscard]] std::vector<double> scores_for_edges(
      const graphs::Graph& g) const;
};

/// Compute CirSTAG stability scores from the input/output manifolds.
///
/// Implements Algorithm 1 steps 6-11: Laplacians of both manifolds, top-s
/// generalized eigenpairs of L_Y^+ L_X, the √ζ-weighted eigensubspace
/// embedding, and edge/node scores. A large score marks a node whose
/// neighborhood the GNN stretches the most — the local Lipschitz surrogate.
///
/// `cache` (optional) supplies/keeps the (L_Y + I/σ²) solver so it is shared
/// with other phases operating on the same manifold; results are identical
/// with or without it.
[[nodiscard]] StabilityResult stability_scores(
    const graphs::Graph& manifold_x, const graphs::Graph& manifold_y,
    const StabilityOptions& opts = {},
    graphs::LaplacianSolverCache* cache = nullptr);

/// Direct per-edge DMD ratios δ(p,q) = d_Y(p,q)/d_X(p,q) using effective-
/// resistance distances on both manifolds (diagnostic / validation of the
/// eigensubspace scores; O(edges) solves, use on small graphs).
[[nodiscard]] std::vector<double> edge_dmd_ratios(
    const graphs::Graph& manifold_x, const graphs::Graph& manifold_y,
    double sigma2 = 1e4);

}  // namespace cirstag::core
