#pragma once

#include <memory>
#include <span>
#include <vector>

#include "circuit/netlist.hpp"
#include "circuit/sta.hpp"
#include "core/cirstag.hpp"
#include "gnn/timing_gnn.hpp"
#include "graphs/knn.hpp"
#include "graphs/solver_cache.hpp"

namespace cirstag::core {

/// One capacitance edit of a Case-A sweep variant.
struct CapScaling {
  circuit::PinId pin = 0;
  double factor = 1.0;
};

/// One variant of a perturbation sweep.
///
/// Case A (capacitance): leave the pointers null and list `cap_scalings`;
/// the engine derives the perturbed netlist, pin features, GNN forward and
/// (optionally) incremental STA itself.
///
/// Case B (topology): set `input_graph` and `output_embedding` (plus
/// optionally `node_features`) to the perturbed circuit view; the engine
/// runs the analysis pipeline on them with cross-variant reuse. Pointers
/// must stay valid for the duration of run().
struct SweepVariant {
  std::vector<CapScaling> cap_scalings;             ///< Case A
  const graphs::Graph* input_graph = nullptr;       ///< Case B
  const linalg::Matrix* node_features = nullptr;    ///< Case B (optional)
  const linalg::Matrix* output_embedding = nullptr; ///< Case B
};

/// Documented fast-mode drift bound: the relative L2 distance
/// ‖s_fast − s_naive‖₂ / ‖s_naive‖₂ between a fast variant's node-score
/// vector and the naive per-variant analyze() loop's stays below this
/// bound (validated on Case-A and Case-B sweeps in test_sweep.cpp).
/// The drift is entirely the Phase-3 adaptive early stop
/// (fast_ritz_tolerance): measured across 120..1500-gate Case-A circuits
/// and their perturbed variants, the spanning-tree preconditioner and the
/// relaxed CG tolerance each contribute ≤ 1e-4 while stopping the subspace
/// iteration at Ritz stability 1e-3 contributes up to ~5.7e-2 (a fixed
/// sweep cut, by contrast, drifts unboundedly on small-eigengap manifolds
/// — 0.26 observed — which is why the stop is adaptive). Top-50 ranking
/// overlap with the naive loop stays ≥ 0.98. The bound carries ~1.4x
/// margin over the worst observed value. Exact mode has zero drift by
/// construction.
inline constexpr double kFastScoreDriftTolerance = 0.08;

struct SweepOptions {
  /// Pipeline configuration shared by the baseline and every variant.
  CirStagConfig config;
  /// Restrict reuse to provably bit-identical caches (shared solver cache,
  /// incremental STA/GNN with equality pruning, spectral reuse on an
  /// unchanged input graph): every variant report is then byte-identical to
  /// CirStag::analyze on that variant. Fast mode (false) additionally
  /// delta-re-queries the kNN graph of any side where only a minority of
  /// embedding rows moved bitwise, and accelerates Phase 3 with the
  /// spanning-tree preconditioner, a relaxed CG tolerance and an adaptive
  /// Ritz early stop — still deterministic at any thread count, but node
  /// scores drift from the naive loop by up to kFastScoreDriftTolerance
  /// (relative L2), all of it from the early stop.
  bool exact = false;
  /// Fast mode: Phase-3 CG tolerance override (0 keeps the config's, 1e-7
  /// by default). Subspace iteration tolerates inexact inner solves and the
  /// Rayleigh-Ritz projection is exact on the converged subspace, so 1e-5
  /// leaves mid-size node scores within ~1e-3 relative L2 of the tight
  /// solves while cutting Phase-3 CG iterations by ~25%.
  double fast_cg_tolerance = 1e-5;
  /// Fast mode: Phase-3 adaptive early stop — finish the subspace iteration
  /// once the sorted Rayleigh quotients move by less than this fraction of
  /// the largest between consecutive sweeps (config's subspace_iterations
  /// stays the hard budget; 0 disables the stop). Unlike a fixed truncated
  /// sweep count, whose drift is set by the data-dependent eigengap and was
  /// measured anywhere from 3e-3 to 0.26 at 10 sweeps, the adaptive stop
  /// runs exactly as long as the spectrum requires (9-19 of 25 sweeps
  /// across 120..1500-gate circuits at the default). It keeps the
  /// deterministic cold start, so the iterate trajectory tracks the naive
  /// loop's for the sweeps that do run. This is the one fast-mode lever
  /// that moves scores measurably — the whole drift budget, worst observed
  /// 5.7e-2 at 1e-3, ranking nearly intact at top-50 overlap ≥ 0.98.
  double fast_ritz_tolerance = 1e-3;
  /// Fast mode, Case A: standardize each variant's pin features with the
  /// baseline's column stats instead of refitting per variant (analyze()'s
  /// behavior), keeping untouched pins' augmented rows bitwise identical so
  /// the input-side kNN delta engages on the touched cone only. Off by
  /// default — measured catastrophic: the frames differ only by a tiny
  /// mean/scale shift, but the sparsifier thresholds η = w·R_eff over ~20k
  /// edges, single flipped manifold edges move node scores by ~1e-1
  /// relative L2 (the (L_Y+εI)⁻¹ near-nullspace amplifies them), and the
  /// frame shift flips several — ~0.57 drift and top-50 overlap down to
  /// ~0.6 on a mid-size sweep, for a ~10% time win. Enable only for
  /// experiments on manifold reuse.
  bool baseline_feature_frame = false;
  /// Fast mode: embedding rows whose relative L2 movement from the baseline
  /// is at or below this threshold count as unmoved for the kNN delta
  /// re-query (their baseline neighbor lists are reused verbatim). 0 =
  /// exact row comparison. GNN output perturbations attenuate with DAG
  /// distance (most rows of a mid-size Case-A variant move by ~1e-9..1e-6),
  /// so a small tolerance makes the delta engage on sweeps whose cones span
  /// the whole design — but the same edge-flip amplification documented on
  /// baseline_feature_frame applies: at 1e-5 the delta's one-sided-neighbor
  /// approximation drifts scores by ~0.5 relative L2 on a mid-size sweep.
  /// Keep 0 unless the sweep's cones are genuinely shallow (the tested
  /// regime where the delta is exact-modulo-one-sided edges and saves real
  /// time).
  double moved_row_tolerance = 0.0;
  /// Aggressive Phase-3 shortcut (fast mode only): > 0 seeds the subspace
  /// iteration with the baseline eigenbasis and truncates it to this many
  /// sweeps, instead of the default per-sweep CG seeding. Off (0) by
  /// default: on the near-degenerate spectra these manifolds produce, a
  /// warm subspace converges no faster than the cold start (the rate is
  /// set by the eigengap), so any count below
  /// config.stability.subspace_iterations drifts well past
  /// kFastScoreDriftTolerance — enable only when raw speed matters more
  /// than closeness to the naive loop.
  std::size_t warm_subspace_iterations = 0;
  /// Fast mode, Case B only: seed the variant's Lanczos recurrence with the
  /// baseline eigenbasis instead of the deterministic random start. Off by
  /// default — on topology edits the warm subspace can rotate relative to
  /// the cold solve and push the score drift well past
  /// kFastScoreDriftTolerance; enable only when raw speed matters more
  /// than closeness to the naive loop.
  bool warm_spectral = false;
  /// Fast mode: offer the baseline's captured per-sweep CG solution blocks
  /// as initial guesses for each variant's Phase-3 sweeps (adopted per
  /// column only when the seed's true residual beats the own-chain guess).
  /// Off by default: under the relaxed fast_cg_tolerance an adopted seed
  /// parks the solve at a different point of the tolerance ball than the
  /// cold chain, and on the ill-conditioned (L_Y + I/σ²) systems that
  /// ambiguity amplifies into ~4e-2 extra score drift — while saving no
  /// measurable time (past the first sweep the own-chain guess is already
  /// closer than any cross-variant seed; see DESIGN.md §9).
  bool warm_sweep_cg = false;
  /// Fast mode: seed each variant's resistance-sketch CG solves with the
  /// baseline sketch solutions. Off by default — measured on a mid-size
  /// sweep, the warm start saves no wall-clock (the sketch's bounded-budget
  /// Jacobi solves are already cheap) while the perturbed CG trajectory
  /// flips marginal sparsifier keep/drop decisions, moving node scores by
  /// ~8e-2 relative L2. Enable only for experiments on sketch reuse.
  bool warm_sketch = false;
  /// Fast mode: run the Phase-3 subspace-sweep CG solves with the
  /// spanning-tree preconditioner instead of the config's (Jacobi by
  /// default, kept there for bit-compatibility with the historical
  /// iterates). Every solve still converges to the same cg_tolerance and
  /// Phase 3 makes no discrete decisions, so scores track the naive loop
  /// at tolerance level (~4e-4 relative L2 mid-size) while the stability
  /// phase runs ~2.5x faster. Deliberately NOT applied to the
  /// resistance-sketch solves: the sparsifier ranks edges by sketched
  /// η = w·R_eff and thresholds them, so any trajectory change there flips
  /// marginal edges and costs ~8e-2 drift for no measured time win.
  bool tree_preconditioner = true;
  /// Run incremental STA per Case-A variant (worst arrival + cone stats).
  bool with_sta = true;
  /// Fast mode: after each variant, re-run the naive per-variant analyze()
  /// and record the measured relative-L2 node-score drift in
  /// SweepVariantStats::audited_drift, raising a health event (error past
  /// kFastScoreDriftTolerance, info otherwise). Roughly doubles the sweep's
  /// cost — a validation tool, not a production setting. No effect in exact
  /// mode (drift is zero by construction there).
  bool audit_drift = false;
};

/// Per-variant reuse accounting.
struct SweepVariantStats {
  circuit::IncrementalStaStats sta;   ///< Case A, when with_sta
  gnn::GnnIncrementalStats gnn;       ///< Case A
  graphs::KnnUpdateStats knn_x;       ///< fast Case A
  graphs::KnnUpdateStats knn_y;       ///< fast Case A
  bool spectral_reused = false;       ///< input embedding taken from baseline
  bool eigen_warm_started = false;
  /// Phase-3 subspace sweeps executed (< the config budget when the fast
  /// mode's adaptive Ritz stop converged early). Deterministic.
  std::size_t subspace_sweeps = 0;
  /// Measured fast-vs-naive node-score drift (relative L2) when
  /// SweepOptions::audit_drift is set; -1 when not audited.
  double audited_drift = -1.0;
};

/// Result of one variant: the full CirSTAG report plus the Case-A side
/// products (GNN arrival predictions, incremental-STA worst arrival).
struct SweepVariantResult {
  CirStagReport report;
  std::vector<double> prediction;  ///< Case A; empty for Case B
  double worst_arrival = 0.0;      ///< Case A, when with_sta
  SweepVariantStats stats;
};

/// Aggregated sweep-level reuse stats (also exported as sweep.* metrics).
struct SweepStats {
  std::size_t variants = 0;
  double baseline_seconds = 0.0;  ///< baseline capture (ctor)
  double sweep_seconds = 0.0;     ///< last run() wall-clock
  double avg_sta_cone_fraction = 1.0;
  double avg_gnn_row_fraction = 1.0;
  double avg_knn_requery_fraction = 1.0;
  /// Mean executed / budgeted Phase-3 sweeps — the fraction of eigensolver
  /// work the adaptive Ritz stop left standing (1.0 in exact mode).
  double avg_subspace_sweep_fraction = 1.0;
  std::size_t eigen_warm_starts = 0;
  std::size_t solver_cache_hits = 0;  ///< cross-variant cache hits in run()
};

/// The warm baseline state of a Case-A SweepEngine — everything expensive
/// the constructor computes (spectral embedding, manifolds, Phase-3
/// eigensolve, coarsening hierarchy, preconditioner factorization), exported
/// for binary snapshots (io/snapshot) and re-adopted by the restoring
/// constructor, which then skips the eigensolves entirely (eigen.runs == 0).
/// Cheap derived state (pin graph, feature matrix, GNN forward snapshot,
/// incremental-STA baseline) is deliberately absent: the restore path
/// recomputes it deterministically from the netlist and trained model.
struct SweepBaselineState {
  CirStagReport baseline;          ///< full baseline report (incl. manifolds)
  linalg::Matrix u0;               ///< baseline spectral embedding
  linalg::Matrix raw_subspace0;    ///< baseline eigenbasis (warm starts)
  ManifoldBaseline mx;             ///< input-side kNN baseline (fast mode)
  ManifoldBaseline my;             ///< output-side kNN baseline (fast mode)
  graphs::CoarsenPairHierarchy hier0;  ///< baseline pair hierarchy (if any)
  graphs::GraphFingerprint hier_key;   ///< capture-time manifold_x key
  /// Factored spanning-tree preconditioner of the variant-phase
  /// (L_Y + I/σ²) solver; empty when the options select Jacobi. Restore
  /// pre-seeds the engine's solver cache with it so the first variant skips
  /// the Kruskal + BFS + LDLᵀ build.
  linalg::TreeFactorization variant_tree;
  double baseline_seconds = 0.0;   ///< original baseline-capture wall time
};

/// Batched perturbation-sweep engine: analyzes one baseline circuit plus N
/// perturbed variants while sharing work across them — shared Laplacian
/// solver cache, incremental STA (fanout-cone re-timing), incremental GNN
/// forward (changed-row re-propagation), spectral-embedding reuse, and (in
/// fast mode) kNN delta re-queries plus eigensolver/CG warm starts seeded
/// from the baseline only, so cross-variant parallelism stays deterministic.
///
/// Typical Case-A use:
///
///   gnn::TimingGnn model(netlist);  model.train();
///   SweepEngine engine(netlist, model, opts);
///   auto results = engine.run(variants);   // one CirStagReport per variant
class SweepEngine {
 public:
  /// Case-A capable engine over a netlist and its trained timing GNN (also
  /// accepts Case-B variants over the same pin set). Runs and captures the
  /// baseline analysis (byte-identical to CirStag::analyze on the
  /// unperturbed circuit).
  SweepEngine(const circuit::Netlist& netlist, gnn::TimingGnn& model,
              SweepOptions opts = {});

  /// Graph-mode engine: baseline from an explicit (graph, features,
  /// embedding) triplet — the Case-B form used with non-pin node sets
  /// (e.g. gate graphs). Only Case-B variants are accepted by run().
  /// `node_features` may be empty.
  SweepEngine(const graphs::Graph& input_graph,
              const linalg::Matrix& node_features,
              const linalg::Matrix& output_embedding, SweepOptions opts = {});

  /// Restoring Case-A constructor (io/snapshot): adopt a previously exported
  /// baseline instead of recomputing it. Rebuilds only the cheap derived
  /// state (pin graph, features, one GNN forward, one STA traversal) — no
  /// spectral embedding, no Phase-3 eigensolve, no GNN training. `opts` must
  /// match the exporting engine's for the adopted warm state to be valid;
  /// shape mismatches between `state` and the netlist/model throw
  /// std::invalid_argument.
  SweepEngine(const circuit::Netlist& netlist, gnn::TimingGnn& model,
              SweepOptions opts, SweepBaselineState state);

  /// Export the warm baseline for a binary snapshot. Non-const because the
  /// variant-phase solver (whose tree factorization rides along) is built
  /// through the shared cache if no variant has demanded it yet.
  [[nodiscard]] SweepBaselineState export_baseline_state();

  [[nodiscard]] const CirStagReport& baseline() const { return baseline_; }
  [[nodiscard]] const circuit::TimingReport& baseline_timing() const;
  [[nodiscard]] const SweepOptions& options() const { return opts_; }
  /// The pin-level connectivity graph (empty in graph mode) — the cone
  /// topology behind localized score-region queries (core::score_cone).
  [[nodiscard]] const graphs::Graph& pin_graph() const { return pin_graph_; }

  /// Analyze every variant (cross-variant parallel on the deterministic
  /// runtime; results are bit-identical at any thread count).
  [[nodiscard]] std::vector<SweepVariantResult> run(
      std::span<const SweepVariant> variants);

  /// GNN-only Case-A fast path: arrival predictions for scaling the listed
  /// pins' capacitances by `factor`, skipping the manifold/stability phases.
  /// Byte-identical to model.predict(perturbed_pin_features(...)) in both
  /// modes (the incremental forward is exact).
  [[nodiscard]] std::vector<double> predict_case_a(
      std::span<const std::size_t> pins, double factor) const;

  /// Stats of the baseline capture plus the most recent run().
  [[nodiscard]] const SweepStats& stats() const { return stats_; }

 private:
  void build_baseline(const graphs::Graph& input_graph,
                      const linalg::Matrix& node_features,
                      const linalg::Matrix& output_embedding);
  /// The exact SolverOptions finish_variant's stability_scores call will key
  /// the variant-phase (L_Y + I/σ²) solver under — shared by the snapshot
  /// export (which serializes that solver's tree factorization) and the
  /// restore path (which pre-seeds the cache under the same key).
  [[nodiscard]] graphs::SolverOptions variant_solver_options() const;
  SweepVariantResult run_variant(const SweepVariant& v, std::size_t index);
  SweepVariantResult run_case_a(const SweepVariant& v, std::size_t index);
  SweepVariantResult run_case_b(const SweepVariant& v, std::size_t index);
  /// audit_drift support: re-analyze the variant with the naive per-variant
  /// pipeline (no cross-variant reuse, no fast-mode Phase-3 levers) and
  /// record the measured node-score drift on `out` plus a health event.
  void audit_variant_drift(SweepVariantResult& out,
                           const graphs::Graph& input_graph,
                           const linalg::Matrix* node_features,
                           const linalg::Matrix& output_embedding,
                           std::size_t index) const;
  /// Manifold/stability tail shared by both cases; `index` keys the
  /// per-variant warm-start tags. In fast mode each side's kNN graph is
  /// delta-re-queried when only a minority of its embedding rows moved
  /// relative to the captured baseline, else fully rebuilt.
  void finish_variant(SweepVariantResult& out, linalg::Matrix input_embedding,
                      const graphs::Graph* input_graph,
                      const linalg::Matrix& output_embedding,
                      std::size_t index);

  SweepOptions opts_;

  // Case-A state (null/empty in graph mode).
  const circuit::Netlist* netlist_ = nullptr;
  gnn::TimingGnn* model_ = nullptr;
  graphs::Graph pin_graph_;
  linalg::Matrix features0_;
  FeatureColumnStats stats0_;  ///< baseline standardization frame (Case A)
  gnn::GnnSnapshot snap_;
  std::unique_ptr<circuit::IncrementalSta> sta_;

  // Baseline artifacts shared by every variant.
  linalg::Matrix u0_;                 ///< baseline spectral embedding
  linalg::Matrix raw_subspace0_;      ///< baseline eigenbasis (warm start)
  /// Baseline Phase-3 per-sweep CG solution blocks (fast mode): sweep-k CG
  /// seeds for every variant. subspace_iterations × n × eigensubspace_dim
  /// doubles — freed with the engine.
  std::vector<linalg::Matrix> sweep_blocks0_;
  ManifoldBaseline mx_base_;          ///< input-side kNN baseline (fast)
  ManifoldBaseline my_base_;          ///< output-side kNN baseline (fast)
  /// Baseline Phase-3 pair hierarchy, captured when the multilevel path
  /// engaged at baseline time; fast-mode variants whose manifolds keep the
  /// baseline node set re-enter multilevel_eigen with these prolongation
  /// maps and only re-aggregate edge weights (counter
  /// coarsen.hierarchy_reuses; DESIGN.md §13). Exact mode never reuses —
  /// its contract is byte-identity with the naive per-variant analyze().
  graphs::CoarsenPairHierarchy hier0_;
  /// Fingerprint of the baseline manifold_x at capture time — the cache
  /// key: reuse requires the variant manifold to share the node set
  /// (`nodes` must match; edge content may differ, that is the point).
  graphs::GraphFingerprint hier_key_;
  linalg::Matrix warm_x_block_;       ///< baseline sketch solutions (fast)
  linalg::Matrix warm_y_block_;
  CirStagReport baseline_;
  circuit::TimingReport baseline_timing_;

  graphs::LaplacianSolverCache cache_;
  SweepStats stats_;
};

}  // namespace cirstag::core
