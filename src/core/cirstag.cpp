#include "core/cirstag.hpp"

#include <cmath>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"
#include "runtime/thread_pool.hpp"

namespace cirstag::core {

double mean_node_score(std::span<const double> scores) {
  if (scores.empty()) return 0.0;
  double sum = 0.0;
  for (const double s : scores) sum += s;
  return sum / static_cast<double>(scores.size());
}

namespace {

/// FNV-1a over a graph's defining content (counts, endpoints, weight bits) —
/// the manifest's phase checksum for graph-valued phase outputs.
std::uint64_t checksum_graph(const graphs::Graph& g) {
  std::uint64_t h = obs::kFnv1aOffset;
  h = obs::fnv1a_u64(h, g.num_nodes());
  h = obs::fnv1a_u64(h, g.num_edges());
  for (const graphs::Edge& e : g.edges()) {
    h = obs::fnv1a_u64(h, e.u);
    h = obs::fnv1a_u64(h, e.v);
    h = obs::fnv1a_double(h, e.weight);
  }
  return h;
}

std::uint64_t checksum_matrix(const linalg::Matrix& m) {
  std::uint64_t h = obs::kFnv1aOffset;
  h = obs::fnv1a_u64(h, m.rows());
  h = obs::fnv1a_u64(h, m.cols());
  return obs::fnv1a_doubles(m.data(), h);
}

/// NaN/Inf sentinel over a graph's edge weights (no allocation; skipped
/// entirely when the health monitor is off).
void check_graph_finite(const char* where, const graphs::Graph& g) {
  if (!obs::HealthMonitor::global().enabled()) return;
  std::size_t bad = 0;
  for (const graphs::Edge& e : g.edges())
    if (!std::isfinite(e.weight)) ++bad;
  if (bad == 0) return;
  obs::record_health_event(
      "sentinel.nonfinite",
      std::string(where) + ": " + std::to_string(bad) + " of " +
          std::to_string(g.num_edges()) + " edge weights non-finite",
      static_cast<double>(bad), 0.0, obs::HealthSeverity::error);
}

}  // namespace

FeatureColumnStats fit_feature_stats(const linalg::Matrix& x, double weight) {
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  FeatureColumnStats stats;
  stats.mean.assign(d, 0.0);
  stats.scale.assign(d, 0.0);
  for (std::size_t c = 0; c < d; ++c) {
    double mean = 0.0;
    for (std::size_t r = 0; r < n; ++r) mean += x(r, c);
    mean /= static_cast<double>(n);
    double var = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      const double dd = x(r, c) - mean;
      var += dd * dd;
    }
    const double sd = std::sqrt(var / static_cast<double>(n));
    if (sd <= 1e-12) continue;  // constant column carries no information
    stats.mean[c] = mean;
    stats.scale[c] = weight / sd;
  }
  return stats;
}

linalg::Matrix apply_feature_stats(const linalg::Matrix& x,
                                   const FeatureColumnStats& stats) {
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  if (stats.mean.size() != d || stats.scale.size() != d)
    throw std::invalid_argument("apply_feature_stats: dimension mismatch");
  linalg::Matrix out(n, d);
  for (std::size_t c = 0; c < d; ++c) {
    const double scale = stats.scale[c];
    if (scale == 0.0) continue;  // constant column: stays zero
    const double mean = stats.mean[c];
    for (std::size_t r = 0; r < n; ++r) out(r, c) = (x(r, c) - mean) * scale;
  }
  return out;
}

linalg::Matrix augment_embedding(const linalg::Matrix& u,
                                 const linalg::Matrix& f) {
  if (u.rows() != f.rows())
    throw std::invalid_argument("augment_embedding: row-count mismatch");
  linalg::Matrix out(u.rows(), u.cols() + f.cols());
  for (std::size_t r = 0; r < u.rows(); ++r) {
    auto dst = out.row(r);
    const auto su = u.row(r);
    const auto sf = f.row(r);
    for (std::size_t c = 0; c < su.size(); ++c) dst[c] = su[c];
    for (std::size_t c = 0; c < sf.size(); ++c) dst[su.size() + c] = sf[c];
  }
  return out;
}

CirStagReport CirStag::analyze(const graphs::Graph& input_graph,
                               const linalg::Matrix& output_embedding) const {
  return analyze(input_graph, linalg::Matrix{}, output_embedding);
}

CirStagReport CirStag::analyze(const graphs::Graph& input_graph,
                               const linalg::Matrix& node_features,
                               const linalg::Matrix& output_embedding) const {
  if (input_graph.num_nodes() != output_embedding.rows())
    throw std::invalid_argument(
        "CirStag::analyze: graph nodes != embedding rows");
  if (input_graph.num_nodes() == 0)
    throw std::invalid_argument("CirStag::analyze: empty graph");
  if (!node_features.empty() &&
      node_features.rows() != input_graph.num_nodes())
    throw std::invalid_argument(
        "CirStag::analyze: graph nodes != feature rows");

  if (config_.threads != 0) runtime::set_global_threads(config_.threads);

  static const obs::Counter analyze_runs("pipeline.analyze_runs");
  static const obs::Gauge nodes_gauge("pipeline.nodes");
  analyze_runs.add();
  nodes_gauge.set(static_cast<double>(input_graph.num_nodes()));

  // Health events recorded from here until the end of the call belong to
  // this run's report.
  const std::uint64_t health_begin = obs::HealthMonitor::global().next_index();

  CirStagReport report;
  report.checksums.input_graph = checksum_graph(input_graph);
  check_graph_finite("analyze.input_graph", input_graph);
  obs::health_check_finite("analyze.output_embedding", output_embedding.data());
  report.timings.threads = runtime::global_pool().num_threads();
  obs::WallTimer timer;
  runtime::TaskTimer task_timer;

  // Phase 1: input spectral embedding (Eq. 4), optionally augmented with
  // the standardized node features so the input manifold reflects both
  // structure and feature proximity. The GNN's own embeddings are the
  // output side; they are already low-dimensional.
  if (config_.use_dimension_reduction) {
    const obs::TraceSpan span("phase.embedding", "pipeline");
    const runtime::ScopedTaskTimer scope(task_timer);
    const linalg::Matrix u =
        spectral_embedding(input_graph, config_.embedding);
    if (!node_features.empty() && config_.feature_weight > 0.0) {
      const linalg::Matrix f = apply_feature_stats(
          node_features,
          fit_feature_stats(node_features, config_.feature_weight));
      report.input_embedding = augment_embedding(u, f);
    } else {
      report.input_embedding = u;
    }
  }
  report.checksums.embedding = checksum_matrix(report.input_embedding);
  obs::health_check_finite("phase.embedding", report.input_embedding.data());
  report.timings.embedding_seconds = timer.elapsed_seconds();
  report.timings.embedding_busy_seconds = task_timer.busy_seconds();
  task_timer.reset();
  timer.reset();

  // Cross-phase solver cache: the resistance sketches of Phase 2 and the
  // L_Y solver of Phase 3 key their solvers here, so a manifold reused
  // across phases is assembled once.
  graphs::LaplacianSolverCache solver_cache;
  graphs::LaplacianSolverCache* cache =
      config_.use_solver_cache ? &solver_cache : nullptr;

  // Phase 2: kNN + PGM sparsification on both sides. Without dimension
  // reduction the raw input graph itself serves as the input manifold
  // (Fig. 4 ablation).
  {
    const runtime::ScopedTaskTimer scope(task_timer);
    {
      const obs::TraceSpan span("phase.manifold_x", "pipeline");
      if (config_.use_dimension_reduction) {
        report.manifold_x =
            build_manifold(report.input_embedding, config_.manifold, cache);
      } else {
        report.manifold_x = input_graph;
      }
    }
    {
      const obs::TraceSpan span("phase.manifold_y", "pipeline");
      report.manifold_y =
          build_manifold(output_embedding, config_.manifold, cache);
    }
  }
  static const obs::Gauge mx_edges("pipeline.manifold_x_edges");
  static const obs::Gauge my_edges("pipeline.manifold_y_edges");
  mx_edges.set(static_cast<double>(report.manifold_x.num_edges()));
  my_edges.set(static_cast<double>(report.manifold_y.num_edges()));
  report.checksums.manifold_x = checksum_graph(report.manifold_x);
  report.checksums.manifold_y = checksum_graph(report.manifold_y);
  check_graph_finite("phase.manifold_x", report.manifold_x);
  check_graph_finite("phase.manifold_y", report.manifold_y);
  report.timings.manifold_seconds = timer.elapsed_seconds();
  report.timings.manifold_busy_seconds = task_timer.busy_seconds();
  task_timer.reset();
  timer.reset();

  // Phase 3: DMD spectrum + stability scores (Algorithm 1, steps 6-11).
  StabilityResult stab;
  {
    const runtime::ScopedTaskTimer scope(task_timer);
    stab = stability_scores(report.manifold_x, report.manifold_y,
                            config_.stability, cache);
  }
  report.timings.stability_seconds = timer.elapsed_seconds();
  report.timings.stability_busy_seconds = task_timer.busy_seconds();

  report.node_scores = std::move(stab.node_scores);
  report.edge_scores = std::move(stab.edge_scores);
  report.eigenvalues = std::move(stab.eigenvalues);
  report.weighted_subspace = std::move(stab.weighted_subspace);
  report.node_score_mean = mean_node_score(report.node_scores);

  report.checksums.eigenvalues =
      obs::fnv1a_doubles(report.eigenvalues);
  report.checksums.node_scores = obs::fnv1a_doubles(report.node_scores);
  report.checksums.edge_scores = obs::fnv1a_doubles(report.edge_scores);
  obs::health_check_finite("phase.dmd.eigenvalues", report.eigenvalues);
  obs::health_check_finite("phase.scores.node_scores", report.node_scores);
  obs::health_check_finite("phase.scores.edge_scores", report.edge_scores);

  report.health = obs::HealthMonitor::global().collect_since(health_begin);
  return report;
}

}  // namespace cirstag::core
