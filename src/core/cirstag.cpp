#include "core/cirstag.hpp"

#include <cmath>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"
#include "runtime/thread_pool.hpp"

namespace cirstag::core {

FeatureColumnStats fit_feature_stats(const linalg::Matrix& x, double weight) {
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  FeatureColumnStats stats;
  stats.mean.assign(d, 0.0);
  stats.scale.assign(d, 0.0);
  for (std::size_t c = 0; c < d; ++c) {
    double mean = 0.0;
    for (std::size_t r = 0; r < n; ++r) mean += x(r, c);
    mean /= static_cast<double>(n);
    double var = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      const double dd = x(r, c) - mean;
      var += dd * dd;
    }
    const double sd = std::sqrt(var / static_cast<double>(n));
    if (sd <= 1e-12) continue;  // constant column carries no information
    stats.mean[c] = mean;
    stats.scale[c] = weight / sd;
  }
  return stats;
}

linalg::Matrix apply_feature_stats(const linalg::Matrix& x,
                                   const FeatureColumnStats& stats) {
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  if (stats.mean.size() != d || stats.scale.size() != d)
    throw std::invalid_argument("apply_feature_stats: dimension mismatch");
  linalg::Matrix out(n, d);
  for (std::size_t c = 0; c < d; ++c) {
    const double scale = stats.scale[c];
    if (scale == 0.0) continue;  // constant column: stays zero
    const double mean = stats.mean[c];
    for (std::size_t r = 0; r < n; ++r) out(r, c) = (x(r, c) - mean) * scale;
  }
  return out;
}

linalg::Matrix augment_embedding(const linalg::Matrix& u,
                                 const linalg::Matrix& f) {
  if (u.rows() != f.rows())
    throw std::invalid_argument("augment_embedding: row-count mismatch");
  linalg::Matrix out(u.rows(), u.cols() + f.cols());
  for (std::size_t r = 0; r < u.rows(); ++r) {
    auto dst = out.row(r);
    const auto su = u.row(r);
    const auto sf = f.row(r);
    for (std::size_t c = 0; c < su.size(); ++c) dst[c] = su[c];
    for (std::size_t c = 0; c < sf.size(); ++c) dst[su.size() + c] = sf[c];
  }
  return out;
}

CirStagReport CirStag::analyze(const graphs::Graph& input_graph,
                               const linalg::Matrix& output_embedding) const {
  return analyze(input_graph, linalg::Matrix{}, output_embedding);
}

CirStagReport CirStag::analyze(const graphs::Graph& input_graph,
                               const linalg::Matrix& node_features,
                               const linalg::Matrix& output_embedding) const {
  if (input_graph.num_nodes() != output_embedding.rows())
    throw std::invalid_argument(
        "CirStag::analyze: graph nodes != embedding rows");
  if (input_graph.num_nodes() == 0)
    throw std::invalid_argument("CirStag::analyze: empty graph");
  if (!node_features.empty() &&
      node_features.rows() != input_graph.num_nodes())
    throw std::invalid_argument(
        "CirStag::analyze: graph nodes != feature rows");

  if (config_.threads != 0) runtime::set_global_threads(config_.threads);

  static const obs::Counter analyze_runs("pipeline.analyze_runs");
  static const obs::Gauge nodes_gauge("pipeline.nodes");
  analyze_runs.add();
  nodes_gauge.set(static_cast<double>(input_graph.num_nodes()));

  CirStagReport report;
  report.timings.threads = runtime::global_pool().num_threads();
  obs::WallTimer timer;
  runtime::TaskTimer task_timer;

  // Phase 1: input spectral embedding (Eq. 4), optionally augmented with
  // the standardized node features so the input manifold reflects both
  // structure and feature proximity. The GNN's own embeddings are the
  // output side; they are already low-dimensional.
  if (config_.use_dimension_reduction) {
    const obs::TraceSpan span("phase.embedding", "pipeline");
    const runtime::ScopedTaskTimer scope(task_timer);
    const linalg::Matrix u =
        spectral_embedding(input_graph, config_.embedding);
    if (!node_features.empty() && config_.feature_weight > 0.0) {
      const linalg::Matrix f = apply_feature_stats(
          node_features,
          fit_feature_stats(node_features, config_.feature_weight));
      report.input_embedding = augment_embedding(u, f);
    } else {
      report.input_embedding = u;
    }
  }
  report.timings.embedding_seconds = timer.elapsed_seconds();
  report.timings.embedding_busy_seconds = task_timer.busy_seconds();
  task_timer.reset();
  timer.reset();

  // Cross-phase solver cache: the resistance sketches of Phase 2 and the
  // L_Y solver of Phase 3 key their solvers here, so a manifold reused
  // across phases is assembled once.
  graphs::LaplacianSolverCache solver_cache;
  graphs::LaplacianSolverCache* cache =
      config_.use_solver_cache ? &solver_cache : nullptr;

  // Phase 2: kNN + PGM sparsification on both sides. Without dimension
  // reduction the raw input graph itself serves as the input manifold
  // (Fig. 4 ablation).
  {
    const runtime::ScopedTaskTimer scope(task_timer);
    {
      const obs::TraceSpan span("phase.manifold_x", "pipeline");
      if (config_.use_dimension_reduction) {
        report.manifold_x =
            build_manifold(report.input_embedding, config_.manifold, cache);
      } else {
        report.manifold_x = input_graph;
      }
    }
    {
      const obs::TraceSpan span("phase.manifold_y", "pipeline");
      report.manifold_y =
          build_manifold(output_embedding, config_.manifold, cache);
    }
  }
  static const obs::Gauge mx_edges("pipeline.manifold_x_edges");
  static const obs::Gauge my_edges("pipeline.manifold_y_edges");
  mx_edges.set(static_cast<double>(report.manifold_x.num_edges()));
  my_edges.set(static_cast<double>(report.manifold_y.num_edges()));
  report.timings.manifold_seconds = timer.elapsed_seconds();
  report.timings.manifold_busy_seconds = task_timer.busy_seconds();
  task_timer.reset();
  timer.reset();

  // Phase 3: DMD spectrum + stability scores (Algorithm 1, steps 6-11).
  StabilityResult stab;
  {
    const runtime::ScopedTaskTimer scope(task_timer);
    stab = stability_scores(report.manifold_x, report.manifold_y,
                            config_.stability, cache);
  }
  report.timings.stability_seconds = timer.elapsed_seconds();
  report.timings.stability_busy_seconds = task_timer.busy_seconds();

  report.node_scores = std::move(stab.node_scores);
  report.edge_scores = std::move(stab.edge_scores);
  report.eigenvalues = std::move(stab.eigenvalues);
  report.weighted_subspace = std::move(stab.weighted_subspace);
  return report;
}

}  // namespace cirstag::core
