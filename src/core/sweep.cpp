#include "core/sweep.hpp"

#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "circuit/perturb.hpp"
#include "circuit/views.hpp"
#include "graphs/laplacian.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"
#include "runtime/parallel_for.hpp"
#include "runtime/thread_pool.hpp"

namespace cirstag::core {

namespace {

/// Rows of `a` whose relative L2 distance from the same row of `b` exceeds
/// `tolerance` (same shape assumed). Tolerance 0 degenerates to an exact
/// inequality test.
std::vector<std::uint32_t> changed_rows(const linalg::Matrix& a,
                                        const linalg::Matrix& b,
                                        double tolerance) {
  std::vector<std::uint32_t> out;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const auto ra = a.row(r);
    const auto rb = b.row(r);
    double d2 = 0.0, n2 = 0.0;
    for (std::size_t c = 0; c < ra.size(); ++c) {
      const double d = ra[c] - rb[c];
      d2 += d * d;
      n2 += rb[c] * rb[c];
    }
    const bool moved =
        tolerance <= 0.0 ? d2 > 0.0 : d2 > tolerance * tolerance * n2;
    if (moved) out.push_back(static_cast<std::uint32_t>(r));
  }
  return out;
}

}  // namespace

SweepEngine::SweepEngine(const circuit::Netlist& netlist, gnn::TimingGnn& model,
                         SweepOptions opts)
    : opts_(std::move(opts)), netlist_(&netlist), model_(&model) {
  if (!netlist.finalized())
    throw std::invalid_argument("SweepEngine: netlist must be finalized");
  if (opts_.config.threads != 0)
    runtime::set_global_threads(opts_.config.threads);
  const obs::TraceSpan span("sweep.baseline", "sweep");
  obs::WallTimer timer;

  pin_graph_ = circuit::pin_graph(netlist);
  features0_ = circuit::pin_features(netlist);
  snap_ = model.snapshot(features0_);
  if (opts_.with_sta)
    sta_ = std::make_unique<circuit::IncrementalSta>(netlist);
  baseline_timing_ =
      sta_ ? sta_->baseline_report() : circuit::run_sta(netlist);

  build_baseline(pin_graph_, features0_,
                 snap_.layer_outputs.empty() ? snap_.std_features
                                             : snap_.layer_outputs.back());
  stats_.baseline_seconds = timer.elapsed_seconds();
}

SweepEngine::SweepEngine(const graphs::Graph& input_graph,
                         const linalg::Matrix& node_features,
                         const linalg::Matrix& output_embedding,
                         SweepOptions opts)
    : opts_(std::move(opts)) {
  if (opts_.config.threads != 0)
    runtime::set_global_threads(opts_.config.threads);
  const obs::TraceSpan span("sweep.baseline", "sweep");
  obs::WallTimer timer;
  features0_ = node_features;
  build_baseline(input_graph, node_features, output_embedding);
  stats_.baseline_seconds = timer.elapsed_seconds();
}

SweepEngine::SweepEngine(const circuit::Netlist& netlist, gnn::TimingGnn& model,
                         SweepOptions opts, SweepBaselineState state)
    : opts_(std::move(opts)), netlist_(&netlist), model_(&model) {
  if (!netlist.finalized())
    throw std::invalid_argument("SweepEngine: netlist must be finalized");
  if (opts_.config.threads != 0)
    runtime::set_global_threads(opts_.config.threads);
  const obs::TraceSpan span("sweep.restore", "sweep");
  static const obs::Counter restores("sweep.baseline_restores");
  restores.add();
  obs::WallTimer timer;

  // Cheap derived state — recomputed, not serialized: the pin graph and
  // feature matrix are pure functions of the netlist, the GNN snapshot is
  // one forward pass on the already-trained model, and the incremental-STA
  // baseline is one levelized traversal. None of them touch an eigensolver.
  pin_graph_ = circuit::pin_graph(netlist);
  features0_ = circuit::pin_features(netlist);
  snap_ = model.snapshot(features0_);
  if (opts_.with_sta)
    sta_ = std::make_unique<circuit::IncrementalSta>(netlist);
  baseline_timing_ =
      sta_ ? sta_->baseline_report() : circuit::run_sta(netlist);

  // Adopt the warm state after shape validation against this netlist/model.
  const std::size_t n = pin_graph_.num_nodes();
  const CirStagConfig& cfg = opts_.config;
  if (state.baseline.node_scores.size() != n)
    throw std::invalid_argument(
        "SweepEngine: snapshot node scores do not match the netlist (" +
        std::to_string(state.baseline.node_scores.size()) + " vs " +
        std::to_string(n) + " pins)");
  if (cfg.use_dimension_reduction && state.u0.rows() != n)
    throw std::invalid_argument(
        "SweepEngine: snapshot spectral embedding does not match the netlist");
  if (state.baseline.manifold_x.num_nodes() != n ||
      state.baseline.manifold_y.num_nodes() != n)
    throw std::invalid_argument(
        "SweepEngine: snapshot manifolds do not match the netlist");
  baseline_.timings.threads = runtime::global_pool().num_threads();
  if (cfg.use_dimension_reduction && !features0_.empty() &&
      cfg.feature_weight > 0.0)
    stats0_ = fit_feature_stats(features0_, cfg.feature_weight);
  u0_ = std::move(state.u0);
  raw_subspace0_ = std::move(state.raw_subspace0);
  mx_base_ = std::move(state.mx);
  my_base_ = std::move(state.my);
  hier0_ = std::move(state.hier0);
  hier_key_ = state.hier_key;
  baseline_ = std::move(state.baseline);

  // Pre-seed the solver cache with the variant-phase (L_Y + I/σ²) solver,
  // reattaching the snapshot's factored spanning-tree preconditioner so the
  // first variant skips the Kruskal + BFS + LDLᵀ build too. The Laplacian
  // assembly itself is O(m) and recomputed here.
  if (!state.variant_tree.empty()) {
    const graphs::SolverOptions vopts = variant_solver_options();
    if (state.variant_tree.dimension() == n) {
      auto solver = std::make_shared<const linalg::LaplacianSolver>(
          graphs::laplacian(baseline_.manifold_y), vopts.regularization,
          vopts.cg, std::move(state.variant_tree));
      cache_.insert(baseline_.manifold_y, vopts, std::move(solver));
    }
  }
  stats_.baseline_seconds = timer.elapsed_seconds();
}

graphs::SolverOptions SweepEngine::variant_solver_options() const {
  // Mirrors finish_variant's StabilityOptions overrides plus the
  // SolverOptions construction inside stability_scores — one place to keep
  // the snapshot export/restore key honest.
  const StabilityOptions& st = opts_.config.stability;
  const bool fast = !opts_.exact;
  graphs::SolverOptions s;
  s.regularization = 1.0 / st.sigma2;
  s.preconditioner = fast && opts_.tree_preconditioner
                         ? graphs::SolverPreconditioner::spanning_tree
                         : st.preconditioner;
  s.cg.tolerance = fast && opts_.fast_cg_tolerance > 0.0
                       ? opts_.fast_cg_tolerance
                       : st.cg_tolerance;
  s.cg.max_iterations = st.cg_max_iterations;
  s.cg.budget_bounded = true;
  return s;
}

SweepBaselineState SweepEngine::export_baseline_state() {
  if (netlist_ == nullptr)
    throw std::logic_error(
        "SweepEngine: snapshot export needs a Case-A engine");
  SweepBaselineState state;
  state.baseline = baseline_;
  state.u0 = u0_;
  state.raw_subspace0 = raw_subspace0_;
  state.mx = mx_base_;
  state.my = my_base_;
  state.hier0 = hier0_;
  state.hier_key = hier_key_;
  state.baseline_seconds = stats_.baseline_seconds;
  // Export the variant-phase solver's tree factorization (builds through
  // the shared cache when no variant has demanded it yet — snapshot-write
  // time, so the one-off cost is fine).
  const graphs::SolverOptions vopts = variant_solver_options();
  if (vopts.preconditioner == graphs::SolverPreconditioner::spanning_tree) {
    const auto solver = cache_.solver(baseline_.manifold_y, vopts);
    if (solver->has_tree_preconditioner()) {
      const linalg::TreeFactorization& t = solver->tree();
      state.variant_tree = linalg::TreeFactorization::from_state(
          {t.parent().begin(), t.parent().end()},
          {t.order().begin(), t.order().end()},
          {t.multipliers().begin(), t.multipliers().end()},
          {t.inv_diag().begin(), t.inv_diag().end()});
    }
  }
  return state;
}

const circuit::TimingReport& SweepEngine::baseline_timing() const {
  if (netlist_ == nullptr)
    throw std::logic_error("SweepEngine: no netlist (graph-mode engine)");
  return baseline_timing_;
}

void SweepEngine::build_baseline(const graphs::Graph& input_graph,
                                 const linalg::Matrix& node_features,
                                 const linalg::Matrix& output_embedding) {
  static const obs::Counter baselines("sweep.baselines");
  baselines.add();
  const CirStagConfig& cfg = opts_.config;
  if (input_graph.num_nodes() != output_embedding.rows())
    throw std::invalid_argument("SweepEngine: graph nodes != embedding rows");

  baseline_.timings.threads = runtime::global_pool().num_threads();
  obs::WallTimer timer;

  // Phase 1 — same construction as CirStag::analyze. The fitted stats are
  // kept: fast Case-A variants standardize in this baseline frame so that
  // untouched pins' augmented rows stay bitwise identical to the baseline's
  // (see SweepOptions::baseline_feature_frame).
  linalg::Matrix x_emb;
  if (cfg.use_dimension_reduction) {
    u0_ = spectral_embedding(input_graph, cfg.embedding);
    if (!node_features.empty() && cfg.feature_weight > 0.0) {
      stats0_ = fit_feature_stats(node_features, cfg.feature_weight);
      const linalg::Matrix f0 = apply_feature_stats(node_features, stats0_);
      x_emb = augment_embedding(u0_, f0);
    } else {
      x_emb = u0_;
    }
  }
  baseline_.input_embedding = x_emb;
  baseline_.timings.embedding_seconds = timer.elapsed_seconds();
  timer.reset();

  graphs::LaplacianSolverCache* cache =
      cfg.use_solver_cache ? &cache_ : nullptr;

  // Phase 2 — in fast mode capture kNN baselines and store the resistance
  // sketch's solutions, both of which seed every variant later. The warm
  // tag is a pure side effect on the baseline itself: the sketch's own
  // take_warm_block finds an empty store and solves cold, bit-identical to
  // the untagged path.
  const bool fast = !opts_.exact;
  ManifoldOptions mo_x = cfg.manifold;
  ManifoldOptions mo_y = cfg.manifold;
  if (fast && opts_.warm_sketch) {
    mo_x.sparsify.resistance.warm_start_tag = "sweep/base/x";
    mo_y.sparsify.resistance.warm_start_tag = "sweep/base/y";
  }
  if (cfg.use_dimension_reduction) {
    if (fast) {
      mx_base_ = capture_manifold_baseline(x_emb, mo_x, cache);
      baseline_.manifold_x = mx_base_.manifold;
    } else {
      baseline_.manifold_x = build_manifold(x_emb, mo_x, cache);
    }
  } else {
    baseline_.manifold_x = input_graph;
  }
  if (fast) {
    my_base_ = capture_manifold_baseline(output_embedding, mo_y, cache);
    baseline_.manifold_y = my_base_.manifold;
  } else {
    baseline_.manifold_y = build_manifold(output_embedding, mo_y, cache);
  }
  baseline_.timings.manifold_seconds = timer.elapsed_seconds();
  timer.reset();

  // Phase 3 — keep the converged eigenbasis plus (fast mode) the per-sweep
  // CG solution blocks as the variants' warm starts. The baseline runs the
  // config's own trajectory (preconditioner, tolerance, sweep count) so the
  // captured report stays byte-identical to CirStag::analyze in both modes.
  StabilityOptions so = cfg.stability;
  if (fast && opts_.warm_sweep_cg) so.eigen_sweep_capture = &sweep_blocks0_;
  // Capture the multilevel pair hierarchy (when the path engages) so fast
  // variants can reuse its prolongation maps instead of re-matching.
  so.hierarchy_capture = &hier0_;
  StabilityResult stab = stability_scores(baseline_.manifold_x,
                                          baseline_.manifold_y, so, cache);
  if (!hier0_.empty()) hier_key_ = baseline_.manifold_x.fingerprint();
  baseline_.timings.stability_seconds = timer.elapsed_seconds();
  raw_subspace0_ = std::move(stab.raw_subspace);
  baseline_.node_scores = std::move(stab.node_scores);
  baseline_.edge_scores = std::move(stab.edge_scores);
  baseline_.eigenvalues = std::move(stab.eigenvalues);
  baseline_.weighted_subspace = std::move(stab.weighted_subspace);
  baseline_.node_score_mean = mean_node_score(baseline_.node_scores);

  // Claim the baseline sketch solutions for per-variant seeding.
  if (fast && opts_.warm_sketch) {
    const std::size_t n = input_graph.num_nodes();
    const std::size_t k = cfg.manifold.sparsify.resistance.num_probes;
    cache_.take_warm_block("sweep/base/x", n, k, warm_x_block_);
    cache_.take_warm_block("sweep/base/y", n, k, warm_y_block_);
  }
}

std::vector<SweepVariantResult> SweepEngine::run(
    std::span<const SweepVariant> variants) {
  const obs::TraceSpan span("sweep.run", "sweep");
  static const obs::Counter runs("sweep.runs");
  static const obs::Counter variant_count("sweep.variants");
  static const obs::Counter exact_count("sweep.variants_exact");
  runs.add();
  variant_count.add(variants.size());
  if (opts_.exact) exact_count.add(variants.size());

  obs::WallTimer timer;
  const std::size_t cache_hits_before = cache_.hits();

  std::vector<SweepVariantResult> results(variants.size());
  // One task per variant: inner phases' nested parallel_for calls run
  // serially inline, so per-variant results are bit-identical at any pool
  // width, and all warm data is seeded from the baseline only — sibling
  // variants never feed each other.
  runtime::parallel_for(0, variants.size(), 1, [&](std::size_t i) {
    results[i] = run_variant(variants[i], i);
  });

  stats_.sweep_seconds = timer.elapsed_seconds();
  stats_.variants = results.size();
  stats_.solver_cache_hits = cache_.hits() - cache_hits_before;
  stats_.eigen_warm_starts = 0;
  double sta_sum = 0.0, gnn_sum = 0.0, knn_sum = 0.0, sweep_sum = 0.0;
  std::size_t sta_n = 0, gnn_n = 0, knn_n = 0, sweep_n = 0;
  const double sweep_budget =
      static_cast<double>(opts_.config.stability.subspace_iterations);
  for (const SweepVariantResult& r : results) {
    if (r.stats.subspace_sweeps > 0 && sweep_budget > 0.0) {
      sweep_sum += static_cast<double>(r.stats.subspace_sweeps) / sweep_budget;
      ++sweep_n;
    }
    if (r.stats.sta.total_gates > 0) {
      sta_sum += r.stats.sta.cone_fraction();
      ++sta_n;
    }
    if (r.stats.gnn.total_rows > 0) {
      gnn_sum += r.stats.gnn.row_fraction();
      ++gnn_n;
    }
    for (const graphs::KnnUpdateStats* k : {&r.stats.knn_x, &r.stats.knn_y}) {
      if (k->total_points > 0) {
        knn_sum += static_cast<double>(k->requeried_points) /
                   static_cast<double>(k->total_points);
        ++knn_n;
      }
    }
    if (r.stats.eigen_warm_started) ++stats_.eigen_warm_starts;
  }
  stats_.avg_sta_cone_fraction = sta_n ? sta_sum / sta_n : 1.0;
  stats_.avg_gnn_row_fraction = gnn_n ? gnn_sum / gnn_n : 1.0;
  stats_.avg_knn_requery_fraction = knn_n ? knn_sum / knn_n : 1.0;
  stats_.avg_subspace_sweep_fraction = sweep_n ? sweep_sum / sweep_n : 1.0;

  static const obs::Gauge g_sta("sweep.sta_cone_fraction");
  static const obs::Gauge g_gnn("sweep.gnn_row_fraction");
  static const obs::Gauge g_knn("sweep.knn_requery_fraction");
  static const obs::Gauge g_sweeps("sweep.subspace_sweep_fraction");
  static const obs::Gauge g_hits("sweep.solver_cache_hits");
  static const obs::Counter warm_eig("sweep.eigen_warm_starts");
  g_sta.set(stats_.avg_sta_cone_fraction);
  g_gnn.set(stats_.avg_gnn_row_fraction);
  g_knn.set(stats_.avg_knn_requery_fraction);
  g_sweeps.set(stats_.avg_subspace_sweep_fraction);
  g_hits.set(static_cast<double>(stats_.solver_cache_hits));
  warm_eig.add(stats_.eigen_warm_starts);
  return results;
}

SweepVariantResult SweepEngine::run_variant(const SweepVariant& v,
                                            std::size_t index) {
  if (v.input_graph != nullptr || v.output_embedding != nullptr)
    return run_case_b(v, index);
  return run_case_a(v, index);
}

SweepVariantResult SweepEngine::run_case_a(const SweepVariant& v,
                                           std::size_t index) {
  if (netlist_ == nullptr || model_ == nullptr)
    throw std::invalid_argument(
        "SweepEngine: Case-A variant on a graph-mode engine");
  const obs::TraceSpan span("sweep.variant_a", "sweep");
  SweepVariantResult out;

  // Perturbed netlist + the physically-consistent feature view (net loads
  // move together with the caps — the Table-I protocol).
  circuit::Netlist nlv = *netlist_;
  std::vector<circuit::PinId> touched;
  touched.reserve(v.cap_scalings.size());
  for (const CapScaling& cs : v.cap_scalings) {
    nlv.scale_pin_capacitance(cs.pin, cs.factor);
    touched.push_back(cs.pin);
  }
  const linalg::Matrix fv = circuit::pin_features(nlv);

  if (opts_.with_sta && sta_) {
    const circuit::TimingReport rep = sta_->run(nlv, touched, &out.stats.sta);
    out.worst_arrival = rep.worst_arrival;
  }

  // Incremental GNN forward (bit-identical to a full forward).
  gnn::GnnIncrementalResult inc =
      model_->forward_incremental(snap_, fv, &out.stats.gnn);
  out.prediction = std::move(inc.prediction);

  // Input side: the pin graph is untouched by capacitance edits, so the
  // baseline spectral embedding is reused verbatim in both modes; only the
  // feature channel moves. Exact mode refits the column stats on the
  // variant (analyze()'s own behavior). Fast mode standardizes in the
  // baseline frame by default: a refit would move every standardized row
  // and disable the input-side kNN delta, while the frames differ only by
  // a mean shift (invisible to kNN distances) and a tiny scale ratio.
  linalg::Matrix x_emb;
  const CirStagConfig& cfg = opts_.config;
  const bool fast = !opts_.exact;
  if (cfg.use_dimension_reduction) {
    out.stats.spectral_reused = true;
    if (!fv.empty() && cfg.feature_weight > 0.0) {
      const linalg::Matrix f =
          fast && opts_.baseline_feature_frame
              ? apply_feature_stats(fv, stats0_)
              : apply_feature_stats(fv,
                                    fit_feature_stats(fv, cfg.feature_weight));
      x_emb = augment_embedding(u0_, f);
    } else {
      x_emb = u0_;
    }
  }

  finish_variant(out, std::move(x_emb), &pin_graph_, inc.embedding, index);
  if (!opts_.exact && opts_.audit_drift)
    audit_variant_drift(out, pin_graph_, &fv, inc.embedding, index);
  return out;
}

SweepVariantResult SweepEngine::run_case_b(const SweepVariant& v,
                                           std::size_t index) {
  if (v.input_graph == nullptr || v.output_embedding == nullptr)
    throw std::invalid_argument(
        "SweepEngine: Case-B variant needs input_graph and output_embedding");
  const obs::TraceSpan span("sweep.variant_b", "sweep");
  SweepVariantResult out;
  const CirStagConfig& cfg = opts_.config;
  const graphs::Graph& g = *v.input_graph;
  if (g.num_nodes() != v.output_embedding->rows())
    throw std::invalid_argument(
        "SweepEngine: variant graph nodes != embedding rows");

  linalg::Matrix x_emb;
  if (cfg.use_dimension_reduction) {
    // The topology changed, so the spectrum must be recomputed; with
    // warm_spectral the fast mode seeds the Krylov recurrence with the
    // baseline eigenbasis. Feature stats are refit per variant (analyze()'s
    // behavior) in both modes.
    const bool warm = !opts_.exact && opts_.warm_spectral && !u0_.empty();
    const linalg::Matrix u =
        warm ? spectral_embedding_warm(g, cfg.embedding, &u0_)
             : spectral_embedding(g, cfg.embedding);
    const linalg::Matrix* feats = v.node_features;
    if (feats != nullptr && !feats->empty() && cfg.feature_weight > 0.0) {
      const linalg::Matrix f = apply_feature_stats(
          *feats, fit_feature_stats(*feats, cfg.feature_weight));
      x_emb = augment_embedding(u, f);
    } else {
      x_emb = u;
    }
  }

  finish_variant(out, std::move(x_emb), &g, *v.output_embedding, index);
  if (!opts_.exact && opts_.audit_drift)
    audit_variant_drift(out, g, v.node_features, *v.output_embedding, index);
  return out;
}

void SweepEngine::audit_variant_drift(SweepVariantResult& out,
                                      const graphs::Graph& input_graph,
                                      const linalg::Matrix* node_features,
                                      const linalg::Matrix& output_embedding,
                                      std::size_t index) const {
  // The reference is the naive per-variant loop: a fresh CirStag::analyze
  // with the sweep's own config. threads is zeroed because the audit runs
  // inside run()'s parallel region — resizing the global pool from a worker
  // would tear down the pool mid-flight; the nested analyze simply runs
  // serially inline like every nested parallel region.
  CirStagConfig naive_cfg = opts_.config;
  naive_cfg.threads = 0;
  const CirStag naive(naive_cfg);
  const CirStagReport ref =
      node_features != nullptr && !node_features->empty()
          ? naive.analyze(input_graph, *node_features, output_embedding)
          : naive.analyze(input_graph, output_embedding);

  const std::vector<double>& fast_scores = out.report.node_scores;
  const std::vector<double>& ref_scores = ref.node_scores;
  double diff2 = 0.0, ref2 = 0.0;
  const std::size_t n = std::min(fast_scores.size(), ref_scores.size());
  for (std::size_t i = 0; i < n; ++i) {
    const double d = fast_scores[i] - ref_scores[i];
    diff2 += d * d;
    ref2 += ref_scores[i] * ref_scores[i];
  }
  const double drift =
      ref2 > 0.0 ? std::sqrt(diff2 / ref2) : std::sqrt(diff2);
  out.stats.audited_drift = drift;

  static const obs::Counter audits("sweep.drift_audits");
  audits.add();
  const bool over = drift > kFastScoreDriftTolerance ||
                    fast_scores.size() != ref_scores.size();
  obs::record_health_event(
      "sweep.drift",
      "variant " + std::to_string(index) +
          ": fast-vs-naive node-score drift " + std::to_string(drift) +
          " (documented bound " + std::to_string(kFastScoreDriftTolerance) +
          ")",
      drift, kFastScoreDriftTolerance,
      over ? obs::HealthSeverity::error : obs::HealthSeverity::info);
}

void SweepEngine::finish_variant(SweepVariantResult& out,
                                 linalg::Matrix input_embedding,
                                 const graphs::Graph* input_graph,
                                 const linalg::Matrix& output_embedding,
                                 std::size_t index) {
  const CirStagConfig& cfg = opts_.config;
  const bool fast = !opts_.exact;
  graphs::LaplacianSolverCache* cache =
      cfg.use_solver_cache ? &cache_ : nullptr;
  CirStagReport& report = out.report;
  report.timings.threads = runtime::global_pool().num_threads();
  obs::WallTimer timer;
  report.input_embedding = std::move(input_embedding);

  // Adaptive kNN delta (fast mode): each side re-queries only around the
  // rows that moved relative to the captured baseline — worthwhile only
  // when a minority moved, otherwise a full build is both faster and free
  // of the delta's one-sided-neighbor approximation. Rows below
  // moved_row_tolerance count as unmoved: GNN-output perturbations
  // attenuate with DAG distance and the baseline feature frame keeps
  // untouched input rows bitwise stable, so the genuinely-moved sets are
  // the perturbation cones, not the whole embedding.
  std::vector<std::uint32_t> moved_x, moved_y;
  bool delta_x = false, delta_y = false;
  if (fast) {
    const double tol = opts_.moved_row_tolerance;
    const linalg::Matrix& x = report.input_embedding;
    if (!x.empty() && mx_base_.knn.points.rows() == x.rows() &&
        mx_base_.knn.points.cols() == x.cols()) {
      moved_x = changed_rows(x, mx_base_.knn.points, tol);
      delta_x = moved_x.size() * 2 < x.rows();
    }
    if (my_base_.knn.points.rows() == output_embedding.rows() &&
        my_base_.knn.points.cols() == output_embedding.cols()) {
      moved_y = changed_rows(output_embedding, my_base_.knn.points, tol);
      delta_y = moved_y.size() * 2 < output_embedding.rows();
    }
  }

  // Per-variant warm-start tags, seeded from the baseline sketch only so
  // concurrent variants stay independent (and deterministic).
  ManifoldOptions mo_x = cfg.manifold;
  ManifoldOptions mo_y = cfg.manifold;
  std::string tag_x, tag_y;
  if (fast && opts_.warm_sketch && cache != nullptr) {
    if (!warm_x_block_.empty()) {
      tag_x = "sweep/x/v" + std::to_string(index);
      cache_.store_warm_block(tag_x, warm_x_block_);
      mo_x.sparsify.resistance.warm_start_tag = tag_x;
    }
    if (!warm_y_block_.empty()) {
      tag_y = "sweep/y/v" + std::to_string(index);
      cache_.store_warm_block(tag_y, warm_y_block_);
      mo_y.sparsify.resistance.warm_start_tag = tag_y;
    }
  }

  // Phase 2.
  if (report.input_embedding.empty()) {
    report.manifold_x = input_graph != nullptr ? *input_graph : graphs::Graph();
  } else if (delta_x) {
    report.manifold_x =
        build_manifold_delta(mx_base_, report.input_embedding, moved_x, mo_x,
                             cache, &out.stats.knn_x);
  } else {
    report.manifold_x = build_manifold(report.input_embedding, mo_x, cache);
  }
  if (delta_y) {
    report.manifold_y = build_manifold_delta(my_base_, output_embedding,
                                             moved_y, mo_y, cache,
                                             &out.stats.knn_y);
  } else {
    report.manifold_y = build_manifold(output_embedding, mo_y, cache);
  }
  report.timings.manifold_seconds = timer.elapsed_seconds();
  timer.reset();

  // Drop the variant's own stored sketch solutions: the next variant seeds
  // from the baseline block again, keeping results order-independent.
  if (!tag_x.empty() || !tag_y.empty()) {
    linalg::Matrix dropped;
    const std::size_t k = cfg.manifold.sparsify.resistance.num_probes;
    if (!tag_x.empty())
      cache_.take_warm_block(tag_x, report.manifold_x.num_nodes(), k, dropped);
    if (!tag_y.empty())
      cache_.take_warm_block(tag_y, report.manifold_y.num_nodes(), k, dropped);
  }

  // Phase 3 — accelerated in fast mode by three levers that each keep the
  // cold deterministic start: the spanning-tree preconditioner for the
  // inner solves and a relaxed CG tolerance (measured drift ≤ 1e-4 each —
  // Phase 3 makes no discrete decisions, so trajectory changes stay at
  // tolerance level), plus the adaptive Ritz early stop (the whole drift
  // budget; see SweepOptions::fast_ritz_tolerance). With
  // warm_sweep_cg the baseline's captured sweep-k CG solutions are offered
  // as per-sweep seeds, adopted per column only when their true residual
  // beats the own-chain guess. (Measured: across variants the converged
  // solutions genuinely differ — near-nullspace components of (L_Y+εI)⁻¹
  // amplify tiny manifold deltas — so adoption is rare and the seeds save
  // nothing; the residual check is what makes offering them safe.) Opting
  // into warm_subspace_iterations instead seeds the subspace itself with
  // the baseline eigenbasis and cuts the sweep count below the settled
  // regime — faster still, but on near-degenerate spectra that truncated
  // warm trajectory drifts well past kFastScoreDriftTolerance; the sweep
  // seeds are withheld there since they belong to a different (cold-start)
  // trajectory.
  StabilityOptions so = cfg.stability;
  if (fast) {
    if (opts_.tree_preconditioner)
      so.preconditioner = graphs::SolverPreconditioner::spanning_tree;
    if (opts_.fast_cg_tolerance > 0.0)
      so.cg_tolerance = opts_.fast_cg_tolerance;
    if (opts_.fast_ritz_tolerance > 0.0)
      so.ritz_tolerance = opts_.fast_ritz_tolerance;
  }
  if (fast && report.manifold_x.num_nodes() == baseline_.manifold_x.num_nodes()) {
    if (opts_.warm_subspace_iterations > 0 && raw_subspace0_.cols() > 0) {
      so.initial_subspace = &raw_subspace0_;
      so.warm_subspace_iterations = opts_.warm_subspace_iterations;
      out.stats.eigen_warm_started = true;
    } else if (!sweep_blocks0_.empty()) {
      so.eigen_sweep_seed = &sweep_blocks0_;
      out.stats.eigen_warm_started = true;
    }
  }
  // Hierarchy reuse (fast mode, DESIGN.md §13): variants perturb manifold
  // weights/edges but keep the node set, so the baseline's captured
  // prolongation maps stay valid — the multilevel path then only
  // re-aggregates edge weights through them (Galerkin) instead of
  // re-matching every level. Keyed by the capture-time fingerprint's node
  // count; exact mode stays on the fresh-matching path for byte-identity
  // with the naive loop.
  if (fast && !hier0_.empty() &&
      report.manifold_x.fingerprint().nodes == hier_key_.nodes)
    so.hierarchy_reuse = &hier0_;
  StabilityResult stab =
      stability_scores(report.manifold_x, report.manifold_y, so, cache);
  report.timings.stability_seconds = timer.elapsed_seconds();
  out.stats.subspace_sweeps = stab.subspace_sweeps;
  report.node_scores = std::move(stab.node_scores);
  report.edge_scores = std::move(stab.edge_scores);
  report.eigenvalues = std::move(stab.eigenvalues);
  report.weighted_subspace = std::move(stab.weighted_subspace);
  report.node_score_mean = mean_node_score(report.node_scores);
}

std::vector<double> SweepEngine::predict_case_a(
    std::span<const std::size_t> pins, double factor) const {
  if (netlist_ == nullptr || model_ == nullptr)
    throw std::logic_error("SweepEngine: predict_case_a needs a netlist");
  const linalg::Matrix fv =
      circuit::perturbed_pin_features(*netlist_, pins, factor);
  return model_->forward_incremental(snap_, fv).prediction;
}

}  // namespace cirstag::core
