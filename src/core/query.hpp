#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/cirstag.hpp"

namespace cirstag::core {

/// Read-only query helpers over a completed CirStagReport.
///
/// These are the serving layer's shared-state entry points: many scheduler
/// workers answer `top-k` / `score-region` requests against the *same*
/// resident baseline report concurrently, so every function here takes the
/// report by const reference, touches only immutable members, and allocates
/// all scratch locally — safe to call from any number of threads without
/// synchronization (there is no mutable shared state to protect).

/// One ranked node.
struct NodeScore {
  std::size_t node = 0;
  double score = 0.0;
};

/// The k highest-scoring (most unstable) nodes, descending by score with
/// node id as the deterministic tie-break. k past the node count clamps.
[[nodiscard]] std::vector<NodeScore> top_k_nodes(const CirStagReport& report,
                                                 std::size_t k);

/// Aggregate stability of a node subset (a timing cone, a placement region,
/// a module) against the whole-design score distribution.
struct RegionScore {
  std::vector<NodeScore> nodes;   ///< per queried node, input order
  double mean = 0.0;
  double max = 0.0;
  std::size_t argmax = 0;         ///< node id attaining `max`
  /// Mean node score over the whole design — the baseline the region's mean
  /// is judged against (ratio > 1: region less stable than average).
  double design_mean = 0.0;
};

/// Score a node subset. Throws std::out_of_range when any id is past the
/// report's node count; empty input yields an all-zero result. Cost is
/// O(|nodes|) when the report carries its cached node_score_mean (every
/// pipeline-produced report does); the whole-design scan runs only as a
/// fallback for hand-assembled reports.
[[nodiscard]] RegionScore score_region(const CirStagReport& report,
                                       std::span<const std::size_t> nodes);

/// The hop-bounded combined fan-in/fan-out cone of a seed set, as sorted
/// node ids. Deterministic: BFS ring by ring, then sorted ascending.
struct ConeRegion {
  std::vector<std::size_t> nodes;
};

/// Expand seeds `hops` rings outward over the (undirected) graph. Throws
/// std::out_of_range on a seed past the node count. hops == 0 returns the
/// deduplicated seeds themselves.
[[nodiscard]] ConeRegion expand_cone(const graphs::Graph& g,
                                     std::span<const std::size_t> seeds,
                                     std::size_t hops);

/// Score the fan-in/fan-out cone of a seed set against the cached global
/// embedding: expand_cone + score_region, O(cone) total — the sub-linear
/// localized-query path behind the serve layer's `score-region` endpoint
/// when a request carries a hop count.
[[nodiscard]] RegionScore score_cone(const CirStagReport& report,
                                     const graphs::Graph& g,
                                     std::span<const std::size_t> seeds,
                                     std::size_t hops);

}  // namespace cirstag::core
