#pragma once

#include "graphs/coarsen.hpp"
#include "graphs/graph.hpp"
#include "linalg/matrix.hpp"

namespace cirstag::core {

/// Options for CirSTAG Phase 1 (input-side spectral embedding).
struct SpectralEmbeddingOptions {
  std::size_t dimensions = 16;     ///< M, number of eigenpairs
  std::size_t lanczos_subspace = 0;  ///< 0 = auto
  std::uint64_t seed = 5;
  /// Multilevel coarsening policy (DESIGN.md §12). The default `automatic`
  /// engages only at coarsen.auto_threshold nodes and above, so small graphs
  /// keep the exact Lanczos path byte for byte; warm-started sweep variants
  /// always use the exact path regardless.
  graphs::CoarsenOptions coarsen;
};

/// Weighted spectral (Laplacian-eigenmap) embedding of a graph, Eq. 4:
///
///   U_M = [ sqrt|1-λ̃_1| ũ_1, ..., sqrt|1-λ̃_M| ũ_M ]
///
/// where (λ̃_i, ũ_i) are the M smallest eigenpairs of the symmetric
/// normalized Laplacian. Rows are per-node coordinates on the input
/// manifold; the sqrt|1-λ| weighting emphasizes smooth (low-frequency)
/// structure, which is what makes the downstream kNN manifold faithful to
/// the circuit's global topology.
[[nodiscard]] linalg::Matrix spectral_embedding(
    const graphs::Graph& g, const SpectralEmbeddingOptions& opts = {});

/// Spectral embedding with an optional Lanczos warm start: when `warm_basis`
/// is non-null with matching row count, the initial Krylov vector is the
/// normalized column sum of the baseline basis instead of a random draw —
/// the perturbation-sweep fast path for variants whose graph changed only
/// locally. Changes results at tolerance level; a null `warm_basis` is
/// exactly spectral_embedding(g, opts).
[[nodiscard]] linalg::Matrix spectral_embedding_warm(
    const graphs::Graph& g, const SpectralEmbeddingOptions& opts,
    const linalg::Matrix* warm_basis);

}  // namespace cirstag::core
