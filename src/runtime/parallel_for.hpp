#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "runtime/thread_pool.hpp"

namespace cirstag::runtime {

/// Deterministic chunk decomposition of [begin, end): chunk c covers
/// [begin + c*grain, begin + (c+1)*grain) clipped to end. The chunk size is
/// a fixed function of `grain` alone — NOT of the pool width — which is the
/// heart of the determinism contract: per-chunk work (and any per-chunk
/// floating-point partials) is identical whether the pool has 1 or 64 lanes;
/// only the thread a chunk lands on varies.
[[nodiscard]] inline std::size_t chunk_count(std::size_t begin,
                                             std::size_t end,
                                             std::size_t grain) {
  if (end <= begin) return 0;
  if (grain == 0) grain = 1;
  return (end - begin + grain - 1) / grain;
}

/// Run chunk_body(chunk_begin, chunk_end) over the deterministic chunk
/// decomposition of [begin, end) on `pool`. Blocks until complete;
/// exceptions from chunk bodies propagate to the caller.
void parallel_for_chunks(
    ThreadPool& pool, std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& chunk_body);

/// parallel_for_chunks on the global pool.
void parallel_for_chunks(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& chunk_body);

/// Per-index convenience: body(i) for every i in [begin, end), chunked by
/// `grain`. Iterations must be independent (no cross-index writes).
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  std::size_t grain,
                  const std::function<void(std::size_t)>& body);

/// parallel_for on the global pool.
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t)>& body);

/// Deterministic parallel reduction: chunk_fn(chunk_begin, chunk_end)
/// produces one partial per fixed-size chunk (computed in parallel), then the
/// partials are combined *serially in ascending chunk order*:
///
///   result = combine(...combine(combine(init, p_0), p_1)..., p_{C-1})
///
/// Because the chunk boundaries and the fold order are independent of the
/// pool width, the result is bit-identical across thread counts even for
/// non-associative floating-point combines.
template <typename T>
[[nodiscard]] T parallel_reduce(
    ThreadPool& pool, std::size_t begin, std::size_t end, std::size_t grain,
    T init, const std::function<T(std::size_t, std::size_t)>& chunk_fn,
    const std::function<T(T, T)>& combine) {
  if (grain == 0) grain = 1;
  const std::size_t chunks = chunk_count(begin, end, grain);
  if (chunks == 0) return init;
  std::vector<T> partials(chunks);
  pool.run(chunks, [&](std::size_t c) {
    const std::size_t lo = begin + c * grain;
    const std::size_t hi = lo + grain < end ? lo + grain : end;
    partials[c] = chunk_fn(lo, hi);
  });
  T acc = std::move(init);
  for (std::size_t c = 0; c < chunks; ++c)
    acc = combine(std::move(acc), std::move(partials[c]));
  return acc;
}

/// parallel_reduce on the global pool.
template <typename T>
[[nodiscard]] T parallel_reduce(
    std::size_t begin, std::size_t end, std::size_t grain, T init,
    const std::function<T(std::size_t, std::size_t)>& chunk_fn,
    const std::function<T(T, T)>& combine) {
  return parallel_reduce<T>(global_pool(), begin, end, grain, std::move(init),
                            chunk_fn, combine);
}

}  // namespace cirstag::runtime
