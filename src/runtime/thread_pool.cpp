#include "runtime/thread_pool.hpp"

#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace cirstag::runtime {

namespace {

thread_local bool t_in_parallel_region = false;
// Per-thread, not process-wide: with the serve daemon several threads
// orchestrate pipelines concurrently, and a shared slot lets thread A's
// run() capture a TaskTimer living on thread B's stack — a dangling
// pointer once B's frame unwinds. Scope save/restore needs no atomics
// when the slot is thread-local.
thread_local TaskTimer* t_active_timer = nullptr;

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::uint64_t ns_since(Clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0)
          .count());
}

/// Pool-wide counters; worker time spent parked waiting for work vs.
/// executing tasks. Reads clocks already taken for TaskTimer where possible.
const obs::Counter& pool_idle_ns() {
  static const obs::Counter c("runtime.pool.idle_ns");
  return c;
}
const obs::Counter& pool_busy_ns() {
  static const obs::Counter c("runtime.pool.busy_ns");
  return c;
}

}  // namespace

ScopedTaskTimer::ScopedTaskTimer(TaskTimer& timer) : previous_(t_active_timer) {
  t_active_timer = &timer;
}

ScopedTaskTimer::~ScopedTaskTimer() { t_active_timer = previous_; }

TaskTimer* active_task_timer() { return t_active_timer; }

std::size_t default_thread_count() {
  if (const char* env = std::getenv("CIRSTAG_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

bool ThreadPool::in_parallel_region() { return t_in_parallel_region; }

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = default_thread_count();
  workers_.reserve(num_threads - 1);
  for (std::size_t i = 0; i + 1 < num_threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    const auto idle_start = Clock::now();
    // Parked workers are invisible to the sampling profiler: waiting for a
    // job is not wall time spent, and sampling it as "(idle)" would cap the
    // attribution fraction at 1/num_threads on an idle pool.
    obs::set_current_thread_parked(true);
    cv_work_.wait(lock, [&] { return stop_ || generation_ != seen; });
    obs::set_current_thread_parked(false);
    pool_idle_ns().add(ns_since(idle_start));
    if (stop_) return;
    seen = generation_;
    Job* job = job_;
    if (job == nullptr) continue;  // job already finished; stay parked
    ++attached_;
    lock.unlock();
    drain(*job, /*install_prefix=*/true);
    lock.lock();
    if (--attached_ == 0) cv_done_.notify_all();
  }
}

void ThreadPool::drain(Job& job, bool install_prefix) {
  static const std::vector<const char*> kNoPrefix;
  const obs::SpanStackPrefix prefix(install_prefix ? job.span_prefix
                                                   : kNoPrefix);
  // Mirror of the span-prefix handoff for request attribution: the
  // submitting thread's own binding is already installed, only workers
  // adopt it. A default (nullptr) ref makes this a no-op.
  const obs::ScopedRequestBinding binding(
      install_prefix ? job.request_ref : obs::RequestRef{});
  t_in_parallel_region = true;
  double busy = 0.0;
  std::size_t executed = 0;
  for (;;) {
    const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.num_tasks) break;
    if (!job.cancel.load(std::memory_order_relaxed)) {
      const auto t0 = Clock::now();
      try {
        (*job.task)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!job.error) job.error = std::current_exception();
        job.cancel.store(true, std::memory_order_relaxed);
      }
      busy += seconds_since(t0);
      ++executed;
    }
    if (job.done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        job.num_tasks) {
      std::lock_guard<std::mutex> lock(mutex_);
      cv_done_.notify_all();
    }
  }
  t_in_parallel_region = false;
  if (job.timer != nullptr && executed > 0) job.timer->add(busy, executed);
  if (executed > 0) {
    static const obs::Counter claimed("runtime.pool.tasks");
    claimed.add(executed);
    pool_busy_ns().add(static_cast<std::uint64_t>(busy * 1e9));
  }
}

void ThreadPool::run_serial(std::size_t num_tasks,
                            const std::function<void(std::size_t)>& task,
                            TaskTimer* timer) {
  const bool outer = !t_in_parallel_region;
  if (!outer) timer = nullptr;  // nested time is already inside the outer task
  t_in_parallel_region = true;
  double busy = 0.0;
  try {
    for (std::size_t i = 0; i < num_tasks; ++i) {
      const auto t0 = Clock::now();
      task(i);
      busy += seconds_since(t0);
    }
  } catch (...) {
    if (outer) t_in_parallel_region = false;
    if (timer != nullptr) timer->add(busy, num_tasks);
    throw;
  }
  if (outer) t_in_parallel_region = false;
  if (timer != nullptr && num_tasks > 0) timer->add(busy, num_tasks);
}

void ThreadPool::run(std::size_t num_tasks,
                     const std::function<void(std::size_t)>& task) {
  if (num_tasks == 0) return;
  TaskTimer* timer = active_task_timer();
  if (workers_.empty() || num_tasks == 1 || t_in_parallel_region) {
    static const obs::Counter serial_runs("runtime.pool.serial_runs");
    static const obs::Counter serial_tasks("runtime.pool.serial_tasks");
    serial_runs.add();
    serial_tasks.add(num_tasks);
    run_serial(num_tasks, task, timer);
    return;
  }
  static const obs::Counter runs("runtime.pool.runs");
  static const obs::Counter submitted("runtime.pool.submitted_tasks");
  runs.add();
  submitted.add(num_tasks);

  std::lock_guard<std::mutex> run_lock(run_mutex_);
  Job job;
  job.task = &task;
  job.num_tasks = num_tasks;
  job.timer = timer;
  if (obs::span_stacks_enabled()) job.span_prefix = obs::current_span_path();
  job.request_ref = obs::current_request_ref();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &job;
    ++generation_;
  }
  cv_work_.notify_all();
  // The calling thread is one of the lanes; its own span stack already
  // carries the prefix, so only workers install it.
  drain(job, /*install_prefix=*/false);

  std::unique_lock<std::mutex> lock(mutex_);
  cv_done_.wait(lock, [&] {
    return job.done.load(std::memory_order_acquire) >= num_tasks &&
           attached_ == 0;
  });
  job_ = nullptr;
  if (job.error) std::rethrow_exception(job.error);
}

namespace {
std::mutex g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool;
}  // namespace

ThreadPool& global_pool() {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  if (!g_pool) g_pool = std::make_unique<ThreadPool>();
  return *g_pool;
}

void set_global_threads(std::size_t num_threads) {
  const std::size_t resolved =
      num_threads == 0 ? default_thread_count() : num_threads;
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  if (g_pool && g_pool->num_threads() == resolved) return;
  g_pool.reset();  // join old workers before spawning the replacement
  g_pool = std::make_unique<ThreadPool>(resolved);
}

}  // namespace cirstag::runtime
