#include "runtime/parallel_for.hpp"

namespace cirstag::runtime {

void parallel_for_chunks(
    ThreadPool& pool, std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& chunk_body) {
  if (grain == 0) grain = 1;
  const std::size_t chunks = chunk_count(begin, end, grain);
  if (chunks == 0) return;
  if (chunks == 1) {  // skip the dispatch machinery for a single chunk
    chunk_body(begin, end);
    return;
  }
  pool.run(chunks, [&](std::size_t c) {
    const std::size_t lo = begin + c * grain;
    const std::size_t hi = lo + grain < end ? lo + grain : end;
    chunk_body(lo, hi);
  });
}

void parallel_for_chunks(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& chunk_body) {
  parallel_for_chunks(global_pool(), begin, end, grain, chunk_body);
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  std::size_t grain,
                  const std::function<void(std::size_t)>& body) {
  parallel_for_chunks(pool, begin, end, grain,
                      [&](std::size_t lo, std::size_t hi) {
                        for (std::size_t i = lo; i < hi; ++i) body(i);
                      });
}

void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t)>& body) {
  parallel_for(global_pool(), begin, end, grain, body);
}

}  // namespace cirstag::runtime
