#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/request.hpp"

namespace cirstag::runtime {

/// Accumulates the busy time of parallel tasks (sum over all workers), so a
/// phase can report busy/wall ≈ effective parallel speedup (Fig. 5 series).
/// All methods are thread-safe.
class TaskTimer {
 public:
  void add(double seconds, std::size_t tasks) {
    busy_ns_.fetch_add(static_cast<std::uint64_t>(seconds * 1e9),
                       std::memory_order_relaxed);
    tasks_.fetch_add(tasks, std::memory_order_relaxed);
  }
  [[nodiscard]] double busy_seconds() const {
    return static_cast<double>(busy_ns_.load(std::memory_order_relaxed)) * 1e-9;
  }
  [[nodiscard]] std::size_t tasks() const {
    return tasks_.load(std::memory_order_relaxed);
  }
  void reset() {
    busy_ns_.store(0, std::memory_order_relaxed);
    tasks_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> busy_ns_{0};
  std::atomic<std::uint64_t> tasks_{0};
};

/// Installs `timer` as this thread's active task timer for the scope;
/// every ThreadPool::run submitted from this thread while it is installed
/// accounts its tasks' busy time into it. The slot is thread-local on
/// purpose: orchestration threads (CLI pipeline, serve scheduler lanes)
/// run concurrently, and each must attribute only its own parallel
/// regions — a shared slot would let one thread capture a timer living on
/// another thread's stack.
class ScopedTaskTimer {
 public:
  explicit ScopedTaskTimer(TaskTimer& timer);
  ~ScopedTaskTimer();
  ScopedTaskTimer(const ScopedTaskTimer&) = delete;
  ScopedTaskTimer& operator=(const ScopedTaskTimer&) = delete;

 private:
  TaskTimer* previous_;
};

/// The calling thread's currently installed TaskTimer (nullptr when none).
[[nodiscard]] TaskTimer* active_task_timer();

/// Fixed-size thread pool (no work stealing): `num_threads` total execution
/// lanes, of which one is the calling thread — a pool of width 1 spawns no
/// workers and runs everything inline.
///
/// run(n, task) executes task(0..n-1) across the lanes and blocks until all
/// complete. Tasks are claimed from a shared atomic counter, so the
/// *assignment* of tasks to threads is nondeterministic — determinism is the
/// job of the chunked parallel_for/parallel_reduce layer on top, which fixes
/// chunk boundaries and reduction order independent of the pool width.
///
/// The first exception thrown by any task is captured, remaining unclaimed
/// tasks are cancelled, and the exception is rethrown on the calling thread.
///
/// Nested run() calls issued from inside a task execute serially inline on
/// the claiming thread (no deadlock, no oversubscription). Concurrent run()
/// calls from distinct external threads are serialized.
class ThreadPool {
 public:
  /// `num_threads` = 0 resolves via default_thread_count() (CIRSTAG_THREADS
  /// env var, else hardware concurrency).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution lanes (spawned workers + the calling thread).
  [[nodiscard]] std::size_t num_threads() const { return workers_.size() + 1; }

  /// Execute task(i) for i in [0, num_tasks); blocks until done.
  void run(std::size_t num_tasks,
           const std::function<void(std::size_t)>& task);

  /// True while the current thread is executing inside a pool task (used to
  /// divert nested parallel regions to the serial inline path).
  [[nodiscard]] static bool in_parallel_region();

 private:
  struct Job {
    const std::function<void(std::size_t)>* task = nullptr;
    std::size_t num_tasks = 0;
    TaskTimer* timer = nullptr;
    /// Submitting thread's span path (profiler attribution): workers push
    /// these names while draining, so their samples fold under the phase
    /// that launched the parallel region. Empty when span stacks are off.
    std::vector<const char*> span_prefix;
    /// Submitting thread's request binding (request attribution): workers
    /// install it while draining, so solver spans from pooled tasks land in
    /// the request's span tree. ctx == nullptr when the submitter is
    /// unbound — the common (non-serving) case, where this costs one TLS
    /// read at submit and nothing per task.
    obs::RequestRef request_ref;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::atomic<bool> cancel{false};
    std::exception_ptr error;  // guarded by the pool mutex
  };

  void worker_loop();
  /// `install_prefix` is true only on the worker path — the submitting
  /// thread's own stack already holds job.span_prefix.
  void drain(Job& job, bool install_prefix);
  void run_serial(std::size_t num_tasks,
                  const std::function<void(std::size_t)>& task,
                  TaskTimer* timer);

  std::vector<std::thread> workers_;
  std::mutex run_mutex_;  // serializes external run() calls
  std::mutex mutex_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  Job* job_ = nullptr;          // guarded by mutex_
  std::uint64_t generation_ = 0;  // guarded by mutex_
  std::size_t attached_ = 0;      // workers inside drain(); guarded by mutex_
  bool stop_ = false;             // guarded by mutex_
};

/// Thread count used when a pool is created with num_threads = 0: the
/// CIRSTAG_THREADS environment variable if set to a positive integer,
/// otherwise std::thread::hardware_concurrency() (minimum 1).
[[nodiscard]] std::size_t default_thread_count();

/// The process-wide pool used by the free-function parallel_for overloads.
/// Created lazily on first use.
[[nodiscard]] ThreadPool& global_pool();

/// Replace the global pool with one of `num_threads` lanes (0 = auto).
/// No-op when the pool already has that width. Not safe to call while a
/// parallel region is running on the global pool.
void set_global_threads(std::size_t num_threads);

}  // namespace cirstag::runtime
