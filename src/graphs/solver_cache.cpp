#include "graphs/solver_cache.hpp"

#include <algorithm>
#include <bit>
#include <utility>

#include "graphs/laplacian.hpp"
#include "graphs/spanning_tree.hpp"
#include "linalg/tree_precond.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"

namespace cirstag::graphs {

namespace {
const obs::Counter& cache_hits() {
  static const obs::Counter c("solver_cache.hits");
  return c;
}
const obs::Counter& cache_misses() {
  static const obs::Counter c("solver_cache.misses");
  return c;
}
const obs::Counter& cache_evictions() {
  static const obs::Counter c("solver_cache.evictions");
  return c;
}
}  // namespace

linalg::LaplacianSolver make_laplacian_solver(const Graph& g,
                                              const SolverOptions& opts) {
  linalg::SparseMatrix lap = laplacian(g);
  if (opts.preconditioner == SolverPreconditioner::spanning_tree) {
    const std::vector<EdgeId> tree = max_weight_spanning_forest(g);
    const RootedForest forest = rooted_forest(g, tree);
    auto fact = linalg::TreeFactorization::build(
        forest.parent, forest.parent_weight, forest.order,
        opts.regularization);
    if (fact.empty()) {
      // LaplacianSolver silently substitutes Jacobi for an empty
      // factorization; surface the substitution so a run that asked for the
      // tree preconditioner can see it did not get it.
      obs::record_health_event(
          "solver.tree_precond_fallback",
          "spanning-tree preconditioner unavailable (empty factorization, " +
              std::to_string(g.num_nodes()) + " nodes); using Jacobi",
          static_cast<double>(g.num_nodes()), 0.0,
          obs::HealthSeverity::warning);
    }
    return linalg::LaplacianSolver(std::move(lap), opts.regularization,
                                   opts.cg, std::move(fact));
  }
  return linalg::LaplacianSolver(std::move(lap), opts.regularization, opts.cg);
}

std::shared_ptr<const linalg::LaplacianSolver> LaplacianSolverCache::solver(
    const Graph& g, const SolverOptions& opts) {
  const Key key{g.fingerprint(),       opts.regularization,
                std::bit_cast<std::uint64_t>(opts.cg.tolerance),
                opts.cg.max_iterations, opts.preconditioner,
                opts.cg.budget_bounded};
  {
    std::lock_guard lock(mutex_);
    for (Entry& e : entries_) {
      if (e.key == key) {
        e.last_used = ++clock_;
        ++hits_;
        cache_hits().add();
        return e.solver;
      }
    }
    ++misses_;
    cache_misses().add();
  }
  // Build outside the lock — factorization is the expensive part and other
  // threads may be hitting unrelated entries meanwhile.
  auto built = std::make_shared<const linalg::LaplacianSolver>(
      make_laplacian_solver(g, opts));
  std::lock_guard lock(mutex_);
  // A racing builder may have inserted the same key; prefer the existing
  // entry so concurrent callers converge on one solver object.
  for (Entry& e : entries_) {
    if (e.key == key) {
      e.last_used = ++clock_;
      return e.solver;
    }
  }
  if (entries_.size() >= capacity_) {
    auto lru = std::min_element(
        entries_.begin(), entries_.end(),
        [](const Entry& a, const Entry& b) { return a.last_used < b.last_used; });
    entries_.erase(lru);
    cache_evictions().add();
  }
  entries_.push_back({key, built, ++clock_});
  return built;
}

void LaplacianSolverCache::insert(
    const Graph& g, const SolverOptions& opts,
    std::shared_ptr<const linalg::LaplacianSolver> prebuilt) {
  if (prebuilt == nullptr) return;
  const Key key{g.fingerprint(),       opts.regularization,
                std::bit_cast<std::uint64_t>(opts.cg.tolerance),
                opts.cg.max_iterations, opts.preconditioner,
                opts.cg.budget_bounded};
  std::lock_guard lock(mutex_);
  for (Entry& e : entries_)
    if (e.key == key) return;  // keep the resident object
  if (entries_.size() >= capacity_) {
    auto lru = std::min_element(entries_.begin(), entries_.end(),
                                [](const Entry& a, const Entry& b) {
                                  return a.last_used < b.last_used;
                                });
    entries_.erase(lru);
    cache_evictions().add();
  }
  entries_.push_back({key, std::move(prebuilt), ++clock_});
}

bool LaplacianSolverCache::take_warm_block(const std::string& tag,
                                           std::size_t rows, std::size_t cols,
                                           linalg::Matrix& out) {
  static const obs::Counter warm_hits("solver_cache.warm_start_hits");
  static const obs::Counter warm_misses("solver_cache.warm_start_misses");
  std::lock_guard lock(mutex_);
  for (auto it = warm_.begin(); it != warm_.end(); ++it) {
    if (it->tag != tag) continue;
    if (it->block.rows() != rows || it->block.cols() != cols) {
      warm_.erase(it);  // shape changed (e.g. pruned graph) — stale
      warm_misses.add();
      return false;
    }
    out = std::move(it->block);
    warm_.erase(it);
    warm_hits.add();
    return true;
  }
  warm_misses.add();
  return false;
}

void LaplacianSolverCache::store_warm_block(const std::string& tag,
                                            linalg::Matrix block) {
  static const obs::Counter warm_stores("solver_cache.warm_start_stores");
  warm_stores.add();
  std::lock_guard lock(mutex_);
  for (auto& e : warm_) {
    if (e.tag == tag) {
      e.block = std::move(block);
      return;
    }
  }
  warm_.push_back({tag, std::move(block)});
}

std::size_t LaplacianSolverCache::hits() const {
  std::lock_guard lock(mutex_);
  return hits_;
}

std::size_t LaplacianSolverCache::misses() const {
  std::lock_guard lock(mutex_);
  return misses_;
}

std::size_t LaplacianSolverCache::size() const {
  std::lock_guard lock(mutex_);
  return entries_.size();
}

void LaplacianSolverCache::clear() {
  std::lock_guard lock(mutex_);
  entries_.clear();
  warm_.clear();
  hits_ = misses_ = 0;
}

}  // namespace cirstag::graphs
