#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "graphs/graph.hpp"
#include "linalg/cg.hpp"
#include "linalg/matrix.hpp"

namespace cirstag::graphs {

/// Preconditioner used by the Laplacian solvers built from graphs.
enum class SolverPreconditioner : std::uint8_t {
  jacobi,         ///< diagonal scaling (the historical default)
  spanning_tree,  ///< max-weight spanning-forest LDLᵀ (combinatorial)
};

/// Everything that determines a graph's Laplacian solver besides the graph
/// itself. Part of the cache key: two call sites with equal options share a
/// cached solver.
struct SolverOptions {
  double regularization = 0.0;
  SolverPreconditioner preconditioner = SolverPreconditioner::jacobi;
  linalg::CgOptions cg;
};

/// Assemble a LaplacianSolver for `g`: Laplacian + requested preconditioner
/// (spanning-tree kind runs Kruskal + BFS orientation + LDLᵀ, all O(m log m)
/// once — the point of caching it).
[[nodiscard]] linalg::LaplacianSolver make_laplacian_solver(
    const Graph& g, const SolverOptions& opts = {});

/// Cross-phase cache of Laplacian solvers, keyed on graph content fingerprint
/// plus solver options. Shared by the sparsifier's resistance sketches, the
/// SGL pruning loop, and the stability stage so each distinct manifold is
/// assembled/factored once per run.
///
/// The cache is purely an assembly cache: a cached solver is the same object
/// `make_laplacian_solver` would build, so results are bit-identical with the
/// cache on or off. Warm-start blocks (previous-iteration solutions, used by
/// opt-in warm starting) live in a separate keyed store because they DO
/// change results at tolerance level.
///
/// Thread-safe; solvers are immutable after construction and returned as
/// shared_ptr so entries may be evicted while still in use.
class LaplacianSolverCache {
 public:
  explicit LaplacianSolverCache(std::size_t capacity = 16)
      : capacity_(capacity ? capacity : 1) {}

  /// Solver for (g, opts) — builds and inserts on miss, reuses on hit.
  /// Mutating `g` after the call changes its fingerprint, so stale entries
  /// are never returned (they age out by LRU eviction).
  [[nodiscard]] std::shared_ptr<const linalg::LaplacianSolver> solver(
      const Graph& g, const SolverOptions& opts = {});

  /// Pre-seed the cache with an externally assembled solver for (g, opts) —
  /// the snapshot-restore path, which carries the factored spanning-tree
  /// preconditioner in the snapshot instead of re-running Kruskal + LDLᵀ.
  /// The caller asserts `prebuilt` equals what make_laplacian_solver(g,
  /// opts) would produce; an existing entry for the key is left untouched.
  void insert(const Graph& g, const SolverOptions& opts,
              std::shared_ptr<const linalg::LaplacianSolver> prebuilt);

  /// Move out the warm-start block stored under `tag`, if any and if its
  /// shape matches (rows, cols); returns false and leaves `out` untouched
  /// otherwise.
  bool take_warm_block(const std::string& tag, std::size_t rows,
                       std::size_t cols, linalg::Matrix& out);

  /// Store solutions under `tag` for the next take_warm_block.
  void store_warm_block(const std::string& tag, linalg::Matrix block);

  [[nodiscard]] std::size_t hits() const;
  [[nodiscard]] std::size_t misses() const;
  [[nodiscard]] std::size_t size() const;

  void clear();

 private:
  struct Key {
    GraphFingerprint graph;
    double regularization = 0.0;
    std::uint64_t tolerance_bits = 0;
    std::uint64_t max_iterations = 0;
    SolverPreconditioner preconditioner = SolverPreconditioner::jacobi;
    /// Part of the key so a budget-bounded caller (health events suppressed)
    /// never shares a solver object with one that wants them reported.
    bool budget_bounded = false;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct Entry {
    Key key;
    std::shared_ptr<const linalg::LaplacianSolver> solver;
    std::uint64_t last_used = 0;
  };
  struct WarmEntry {
    std::string tag;
    linalg::Matrix block;
  };

  mutable std::mutex mutex_;
  std::vector<Entry> entries_;       // small N: linear scan beats hashing
  std::vector<WarmEntry> warm_;
  std::size_t capacity_;
  std::uint64_t clock_ = 0;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace cirstag::graphs
