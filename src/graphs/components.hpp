#pragma once

#include <vector>

#include "graphs/graph.hpp"

namespace cirstag::graphs {

/// Per-node component labels (0-based, BFS order) and component count.
struct ComponentLabels {
  std::vector<std::size_t> label;
  std::size_t count = 0;
};

[[nodiscard]] ComponentLabels connected_components(const Graph& g);

[[nodiscard]] bool is_connected(const Graph& g);

/// Minimum edges connecting consecutive components (by lowest-id node),
/// used to restore connectivity after pruning. Returns the augmented graph.
[[nodiscard]] Graph connect_components(const Graph& g, double bridge_weight);

/// BFS hop distances from `source` (SIZE_MAX for unreachable nodes).
[[nodiscard]] std::vector<std::size_t> bfs_distances(const Graph& g,
                                                     NodeId source);

}  // namespace cirstag::graphs
