#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace cirstag::graphs {

/// A neighbor hit: point index and squared Euclidean distance.
struct Neighbor {
  std::size_t index = 0;
  double distance2 = 0.0;
};

/// Static KD-tree over the rows of a point matrix (N points in R^d).
///
/// Exact k-nearest-neighbor queries; median-split construction is
/// O(N log N), matching the paper's kNN-stage complexity claim. Suited to
/// the low-dimensional embeddings (d ~ 4..64) CirSTAG produces in Phase 1.
class KdTree {
 public:
  /// Builds the tree over `points` (copied). Throws if empty.
  explicit KdTree(const linalg::Matrix& points);

  /// The k nearest neighbors of `query_index`'s own point, excluding itself,
  /// sorted by ascending distance.
  [[nodiscard]] std::vector<Neighbor> knn_of_point(std::size_t query_index,
                                                   std::size_t k) const;

  /// The k nearest stored points to an arbitrary query vector.
  [[nodiscard]] std::vector<Neighbor> knn(std::span<const double> query,
                                          std::size_t k,
                                          std::size_t exclude_index) const;

  [[nodiscard]] std::size_t size() const { return points_.rows(); }
  [[nodiscard]] std::size_t dims() const { return points_.cols(); }

 private:
  struct Node {
    std::size_t point = 0;      // index into points_
    std::size_t axis = 0;
    std::int64_t left = -1;     // node indices, -1 = leaf side empty
    std::int64_t right = -1;
  };

  std::int64_t build(std::vector<std::size_t>& idx, std::size_t lo,
                     std::size_t hi, std::size_t depth);

  linalg::Matrix points_;
  std::vector<Node> nodes_;
  std::int64_t root_ = -1;
};

}  // namespace cirstag::graphs
