#include "graphs/effective_resistance.hpp"

#include <cmath>
#include <stdexcept>

#include "graphs/laplacian.hpp"
#include "linalg/rng.hpp"
#include "linalg/vector_ops.hpp"
#include "runtime/parallel_for.hpp"

namespace cirstag::graphs {

namespace {
/// Edges per chunk for the per-edge distance loops (cheap, memory bound).
constexpr std::size_t kEdgeGrain = 512;
}  // namespace

double effective_resistance(const linalg::LaplacianSolver& solver, NodeId u,
                            NodeId v) {
  const std::size_t n = solver.dimension();
  if (u >= n || v >= n)
    throw std::out_of_range("effective_resistance: node out of range");
  if (u == v) return 0.0;
  std::vector<double> b(n, 0.0);
  b[u] = 1.0;
  b[v] = -1.0;
  const std::vector<double> x = solver.solve(b);
  return x[u] - x[v];
}

std::vector<double> edge_effective_resistances(
    const Graph& g, const ResistanceSketchOptions& opts) {
  const std::size_t n = g.num_nodes();
  const std::size_t m = g.num_edges();
  if (m == 0) return {};

  linalg::CgOptions cg;
  cg.tolerance = opts.cg_tolerance;
  cg.max_iterations = opts.cg_max_iterations;
  linalg::LaplacianSolver solver(laplacian(g), /*regularization=*/0.0, cg);

  linalg::Rng rng(opts.seed);
  const std::size_t k = std::max<std::size_t>(1, opts.num_probes);
  const double inv_sqrt_k = 1.0 / std::sqrt(static_cast<double>(k));

  // Probe vectors y_i = B^T W^{1/2} q_i, q_i Rademacher over edges. Drawn
  // serially from the single seed stream so the sketch is identical to the
  // historical serial implementation at every thread count.
  std::vector<std::vector<double>> probes(k, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < k; ++i) {
    std::vector<double>& y = probes[i];
    for (std::size_t e = 0; e < m; ++e) {
      const Edge& ed = g.edge(e);
      const double q = rng.rademacher() * inv_sqrt_k * std::sqrt(ed.weight);
      y[ed.u] += q;
      y[ed.v] -= q;
    }
  }

  // Z rows: z_i = L^+ y_i — k independent CG solves, one task each.
  std::vector<std::vector<double>> z_rows(k);
  runtime::parallel_for(0, k, 1, [&](std::size_t i) {
    z_rows[i] = solver.solve(probes[i]);
  });

  std::vector<double> r(m, 0.0);
  runtime::parallel_for_chunks(0, m, kEdgeGrain,
                               [&](std::size_t lo, std::size_t hi) {
    for (std::size_t e = lo; e < hi; ++e) {
      const Edge& ed = g.edge(e);
      double s = 0.0;
      for (std::size_t i = 0; i < k; ++i) {
        const double d = z_rows[i][ed.u] - z_rows[i][ed.v];
        s += d * d;
      }
      r[e] = s;
    }
  });
  return r;
}

std::vector<double> edge_effective_resistances_exact(const Graph& g) {
  linalg::LaplacianSolver solver(laplacian(g));
  std::vector<double> r(g.num_edges(), 0.0);
  runtime::parallel_for(0, g.num_edges(), 1, [&](std::size_t e) {
    const Edge& ed = g.edge(e);
    r[e] = effective_resistance(solver, ed.u, ed.v);
  });
  return r;
}

}  // namespace cirstag::graphs
