#include "graphs/effective_resistance.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>

#include "graphs/laplacian.hpp"
#include "linalg/matrix.hpp"
#include "linalg/rng.hpp"
#include "linalg/vector_ops.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/parallel_for.hpp"

namespace cirstag::graphs {

namespace {
/// Edges per chunk for the per-edge distance loops (cheap, memory bound).
constexpr std::size_t kEdgeGrain = 512;

/// Fetch the solver from the cache (if any) or build a one-shot instance.
std::shared_ptr<const linalg::LaplacianSolver> obtain_solver(
    const Graph& g, const SolverOptions& sopts, LaplacianSolverCache* cache,
    bool* was_hit) {
  if (cache) {
    const std::size_t before = cache->hits();
    auto solver = cache->solver(g, sopts);
    if (was_hit) *was_hit = cache->hits() > before;
    return solver;
  }
  if (was_hit) *was_hit = false;
  return std::make_shared<const linalg::LaplacianSolver>(
      make_laplacian_solver(g, sopts));
}
}  // namespace

double effective_resistance(const linalg::LaplacianSolver& solver, NodeId u,
                            NodeId v) {
  const std::size_t n = solver.dimension();
  if (u >= n || v >= n)
    throw std::out_of_range("effective_resistance: node out of range");
  if (u == v) return 0.0;
  std::vector<double> b(n, 0.0);
  b[u] = 1.0;
  b[v] = -1.0;
  const std::vector<double> x = solver.solve(b);
  return x[u] - x[v];
}

std::vector<double> edge_effective_resistances(
    const Graph& g, const ResistanceSketchOptions& opts,
    LaplacianSolverCache* cache, ResistanceSketchStats* stats) {
  const std::size_t n = g.num_nodes();
  const std::size_t m = g.num_edges();
  if (stats) *stats = {};
  if (m == 0) return {};
  const obs::TraceSpan trace_span("sketch.reff", "graphs");

  SolverOptions sopts;
  sopts.preconditioner = opts.preconditioner;
  sopts.cg.tolerance = opts.cg_tolerance;
  sopts.cg.max_iterations = opts.cg_max_iterations;
  // The sketch's JL error (~1/sqrt(k)) dwarfs a tighter solve, so hitting
  // the iteration cap here is the intended budget, not a health problem.
  sopts.cg.budget_bounded = true;
  bool cache_hit = false;
  auto solver = obtain_solver(g, sopts, cache, &cache_hit);

  linalg::Rng rng(opts.seed);
  const std::size_t k = std::max<std::size_t>(1, opts.num_probes);
  const double inv_sqrt_k = 1.0 / std::sqrt(static_cast<double>(k));

  // Probe vectors y_i = B^T W^{1/2} q_i, q_i Rademacher over edges, stored
  // as columns of Y. Drawn serially from the single seed stream (probe-major,
  // the historical order) so the sketch is identical to the serial
  // implementation at every thread count and under either solve path.
  linalg::Matrix probes(n, k);
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t e = 0; e < m; ++e) {
      const Edge& ed = g.edge(e);
      const double q = rng.rademacher() * inv_sqrt_k * std::sqrt(ed.weight);
      probes(ed.u, i) += q;
      probes(ed.v, i) -= q;
    }
  }

  // Z columns: z_i = L^+ y_i.
  linalg::Matrix z(n, k);
  std::size_t iterations = 0;
  bool warm_started = false;
  if (opts.use_block_cg) {
    linalg::Matrix guess;
    const bool have_guess =
        cache && !opts.warm_start_tag.empty() &&
        cache->take_warm_block(opts.warm_start_tag, n, k, guess);
    warm_started = have_guess;
    linalg::BlockSolveStats bstats;
    z = solver->solve_block(probes, have_guess ? &guess : nullptr, &bstats);
    iterations = bstats.total_iterations;
  } else {
    // Historical path: one CG task per probe.
    const std::size_t before = solver->cumulative_iterations();
    runtime::parallel_for(0, k, 1, [&](std::size_t i) {
      std::vector<double> y(n);
      for (std::size_t r = 0; r < n; ++r) y[r] = probes(r, i);
      const std::vector<double> x = solver->solve(y);
      for (std::size_t r = 0; r < n; ++r) z(r, i) = x[r];
    });
    iterations = solver->cumulative_iterations() - before;
  }

  std::vector<double> r(m, 0.0);
  runtime::parallel_for_chunks(0, m, kEdgeGrain,
                               [&](std::size_t lo, std::size_t hi) {
    for (std::size_t e = lo; e < hi; ++e) {
      const Edge& ed = g.edge(e);
      const auto zu = z.row(ed.u);
      const auto zv = z.row(ed.v);
      double s = 0.0;
      for (std::size_t i = 0; i < k; ++i) {
        const double d = zu[i] - zv[i];
        s += d * d;
      }
      r[e] = s;
    }
  });

  if (cache && !opts.warm_start_tag.empty())
    cache->store_warm_block(opts.warm_start_tag, std::move(z));
  static const obs::Counter sketch_runs("sketch.runs");
  static const obs::Counter sketch_iters("sketch.cg_iterations");
  static const obs::Counter sketch_cache_hits("sketch.cache_hits");
  static const obs::Counter sketch_warm_starts("sketch.warm_starts");
  sketch_runs.add();
  sketch_iters.add(iterations);
  if (cache_hit) sketch_cache_hits.add();
  if (warm_started) sketch_warm_starts.add();
  if (stats) {
    stats->cg_iterations = iterations;
    stats->cache_hit = cache_hit;
    stats->used_block_cg = opts.use_block_cg;
    stats->warm_started = warm_started;
  }
  return r;
}

std::vector<double> edge_effective_resistances_exact(
    const Graph& g, const ExactResistanceOptions& opts) {
  SolverOptions sopts;
  sopts.preconditioner = opts.preconditioner;
  sopts.cg = opts.cg;
  const linalg::LaplacianSolver solver = make_laplacian_solver(g, sopts);
  const std::size_t n = g.num_nodes();
  const std::size_t m = g.num_edges();
  std::vector<double> r(m, 0.0);
  const std::size_t grain = std::max<std::size_t>(1, opts.chunk_grain);
  runtime::parallel_for_chunks(0, m, grain,
                               [&](std::size_t lo, std::size_t hi) {
    std::vector<double> b(n, 0.0);
    std::vector<double> prev;  // previous edge's solution in this chunk
    for (std::size_t e = lo; e < hi; ++e) {
      const Edge& ed = g.edge(e);
      b[ed.u] = 1.0;
      b[ed.v] = -1.0;
      std::vector<double> x =
          (opts.warm_start && !prev.empty())
              ? solver.solve(b, prev)
              : solver.solve(b);
      r[e] = x[ed.u] - x[ed.v];
      b[ed.u] = 0.0;
      b[ed.v] = 0.0;
      if (opts.warm_start) prev = std::move(x);
    }
  });
  return r;
}

}  // namespace cirstag::graphs
