#include "graphs/spanning_tree.hpp"

#include <algorithm>
#include <numeric>

namespace cirstag::graphs {

UnionFind::UnionFind(std::size_t n) : parent_(n), rank_(n, 0) {
  std::iota(parent_.begin(), parent_.end(), std::size_t{0});
}

std::size_t UnionFind::find(std::size_t x) {
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];
    x = parent_[x];
  }
  return x;
}

bool UnionFind::unite(std::size_t a, std::size_t b) {
  a = find(a);
  b = find(b);
  if (a == b) return false;
  if (rank_[a] < rank_[b]) std::swap(a, b);
  parent_[b] = a;
  if (rank_[a] == rank_[b]) ++rank_[a];
  return true;
}

namespace {

std::vector<EdgeId> kruskal(const Graph& g, bool maximize) {
  std::vector<EdgeId> order(g.num_edges());
  std::iota(order.begin(), order.end(), EdgeId{0});
  std::sort(order.begin(), order.end(), [&](EdgeId a, EdgeId b) {
    const double wa = g.edge(a).weight;
    const double wb = g.edge(b).weight;
    return maximize ? wa > wb : wa < wb;
  });
  UnionFind uf(g.num_nodes());
  std::vector<EdgeId> tree;
  tree.reserve(g.num_nodes() > 0 ? g.num_nodes() - 1 : 0);
  for (EdgeId e : order) {
    const Edge& ed = g.edge(e);
    if (uf.unite(ed.u, ed.v)) tree.push_back(e);
  }
  return tree;
}

}  // namespace

std::vector<EdgeId> max_weight_spanning_forest(const Graph& g) {
  return kruskal(g, /*maximize=*/true);
}

std::vector<EdgeId> min_weight_spanning_forest(const Graph& g) {
  return kruskal(g, /*maximize=*/false);
}

RootedForest rooted_forest(const Graph& g,
                           std::span<const EdgeId> tree_edges) {
  const std::size_t n = g.num_nodes();
  RootedForest f;
  f.parent.resize(n);
  std::iota(f.parent.begin(), f.parent.end(), std::uint32_t{0});
  f.parent_weight.assign(n, 0.0);
  f.order.reserve(n);

  std::vector<std::uint8_t> in_tree(g.num_edges(), 0);
  for (EdgeId e : tree_edges) in_tree[e] = 1;

  std::vector<std::uint8_t> visited(n, 0);
  std::vector<std::uint32_t> queue;
  queue.reserve(n);
  for (std::uint32_t root = 0; root < n; ++root) {
    if (visited[root]) continue;
    visited[root] = 1;
    queue.clear();
    queue.push_back(root);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const std::uint32_t u = queue[head];
      f.order.push_back(u);
      for (const Incidence& inc : g.neighbors(u)) {
        if (!in_tree[inc.edge] || visited[inc.neighbor]) continue;
        visited[inc.neighbor] = 1;
        f.parent[inc.neighbor] = u;
        f.parent_weight[inc.neighbor] = g.edge(inc.edge).weight;
        queue.push_back(inc.neighbor);
      }
    }
  }
  return f;
}

}  // namespace cirstag::graphs
