#include "graphs/sparsify.hpp"

#include <algorithm>
#include <numeric>

#include "graphs/spanning_tree.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/stats.hpp"

namespace cirstag::graphs {

SparsifyResult sparsify_pgm(const Graph& g, const SparsifyOptions& opts,
                            LaplacianSolverCache* cache) {
  SparsifyResult out;
  const std::size_t m = g.num_edges();
  if (m == 0) {
    out.graph = g;
    return out;
  }
  const obs::TraceSpan trace_span("sparsify.pgm", "graphs");

  const std::vector<double> r_eff =
      edge_effective_resistances(g, opts.resistance, cache);

  out.eta.resize(m);
  for (std::size_t e = 0; e < m; ++e)
    out.eta[e] = g.edge(e).weight * r_eff[e];

  const std::vector<EdgeId> tree = max_weight_spanning_forest(g);
  out.tree_edges = tree.size();
  std::vector<bool> in_tree(m, false);
  for (EdgeId e : tree) in_tree[e] = true;

  std::vector<EdgeId> offtree;
  offtree.reserve(m - tree.size());
  for (EdgeId e = 0; e < m; ++e)
    if (!in_tree[e]) offtree.push_back(e);

  // LRD bound: drop off-tree edges closing cycles of large effective
  // resistance (relative to the mean edge resistance).
  if (opts.lrd_resistance_multiple > 0.0 && !offtree.empty()) {
    const double mean_r = util::mean(r_eff);
    const double bound = opts.lrd_resistance_multiple * mean_r;
    std::erase_if(offtree, [&](EdgeId e) { return r_eff[e] > bound; });
  }

  // Rank remaining off-tree edges by η descending; keep the top fraction
  // plus anything above the absolute threshold.
  std::sort(offtree.begin(), offtree.end(),
            [&](EdgeId a, EdgeId b) { return out.eta[a] > out.eta[b]; });
  const auto frac = std::clamp(opts.offtree_keep_fraction, 0.0, 1.0);
  std::size_t keep_count = static_cast<std::size_t>(
      frac * static_cast<double>(offtree.size()) + 0.5);
  if (opts.eta_threshold > 0.0) {
    while (keep_count < offtree.size() &&
           out.eta[offtree[keep_count]] >= opts.eta_threshold)
      ++keep_count;
  }

  out.kept_edges = tree;
  out.kept_edges.insert(out.kept_edges.end(), offtree.begin(),
                        offtree.begin() + static_cast<long>(keep_count));
  std::sort(out.kept_edges.begin(), out.kept_edges.end());
  out.graph = g.edge_subgraph(out.kept_edges);
  static const obs::Counter runs("sparsify.runs");
  static const obs::Counter input_edges("sparsify.input_edges");
  static const obs::Counter kept_edges("sparsify.kept_edges");
  static const obs::Counter tree_edges("sparsify.tree_edges");
  runs.add();
  input_edges.add(m);
  kept_edges.add(out.kept_edges.size());
  tree_edges.add(out.tree_edges);
  return out;
}

}  // namespace cirstag::graphs
