#pragma once

#include <vector>

#include "graphs/graph.hpp"

namespace cirstag::graphs {

/// Union-find (disjoint set) with path compression + union by rank.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n);
  std::size_t find(std::size_t x);
  /// Returns true if the two sets were merged (were previously disjoint).
  bool unite(std::size_t a, std::size_t b);

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::uint8_t> rank_;
};

/// Maximum-weight spanning forest via Kruskal; returns chosen edge ids.
///
/// In the PGM-sparsification pipeline this plays the role of the
/// low-stretch spanning tree (LSST) of the short-cycle/LRD decomposition:
/// high-weight edges correspond to small data distances (w = 1/dist), so the
/// max-weight tree is the minimum-data-distance backbone — a good low-stretch
/// proxy for kNN graphs whose weights are inverse distances.
[[nodiscard]] std::vector<EdgeId> max_weight_spanning_forest(const Graph& g);

/// Minimum-weight spanning forest (Kruskal, ascending weights).
[[nodiscard]] std::vector<EdgeId> min_weight_spanning_forest(const Graph& g);

}  // namespace cirstag::graphs
