#pragma once

#include <span>
#include <vector>

#include "graphs/graph.hpp"

namespace cirstag::graphs {

/// Union-find (disjoint set) with path compression + union by rank.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n);
  std::size_t find(std::size_t x);
  /// Returns true if the two sets were merged (were previously disjoint).
  bool unite(std::size_t a, std::size_t b);

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::uint8_t> rank_;
};

/// Maximum-weight spanning forest via Kruskal; returns chosen edge ids.
///
/// In the PGM-sparsification pipeline this plays the role of the
/// low-stretch spanning tree (LSST) of the short-cycle/LRD decomposition:
/// high-weight edges correspond to small data distances (w = 1/dist), so the
/// max-weight tree is the minimum-data-distance backbone — a good low-stretch
/// proxy for kNN graphs whose weights are inverse distances.
[[nodiscard]] std::vector<EdgeId> max_weight_spanning_forest(const Graph& g);

/// Minimum-weight spanning forest (Kruskal, ascending weights).
[[nodiscard]] std::vector<EdgeId> min_weight_spanning_forest(const Graph& g);

/// A spanning forest oriented away from per-component roots — the input
/// format of `linalg::TreeFactorization` (fill-free LDLᵀ on trees).
struct RootedForest {
  /// parent[u] == u for roots/isolated nodes; the tree edge otherwise.
  std::vector<std::uint32_t> parent;
  /// Weight of the edge (u, parent[u]); 0 for roots.
  std::vector<double> parent_weight;
  /// Topological order, roots first: parent[order[i]] appears before
  /// order[i]. Exactly the elimination order the tree factorization wants
  /// (reversed) and its solve sweeps want (forward).
  std::vector<std::uint32_t> order;
};

/// Orient the forest given by `tree_edges` (e.g. from
/// max_weight_spanning_forest) away from the lowest-id node of each
/// component. Deterministic: BFS visits neighbors in adjacency order
/// restricted to tree edges.
[[nodiscard]] RootedForest rooted_forest(const Graph& g,
                                         std::span<const EdgeId> tree_edges);

}  // namespace cirstag::graphs
