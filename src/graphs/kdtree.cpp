#include "graphs/kdtree.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

#include "kernels/kernels.hpp"

namespace cirstag::graphs {

KdTree::KdTree(const linalg::Matrix& points) : points_(points) {
  if (points_.rows() == 0 || points_.cols() == 0)
    throw std::invalid_argument("KdTree: empty point set");
  std::vector<std::size_t> idx(points_.rows());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  nodes_.reserve(points_.rows());
  root_ = build(idx, 0, idx.size(), 0);
}

std::int64_t KdTree::build(std::vector<std::size_t>& idx, std::size_t lo,
                           std::size_t hi, std::size_t depth) {
  if (lo >= hi) return -1;
  const std::size_t axis = depth % points_.cols();
  const std::size_t mid = (lo + hi) / 2;
  std::nth_element(idx.begin() + static_cast<long>(lo),
                   idx.begin() + static_cast<long>(mid),
                   idx.begin() + static_cast<long>(hi),
                   [&](std::size_t a, std::size_t b) {
                     return points_(a, axis) < points_(b, axis);
                   });
  Node node;
  node.point = idx[mid];
  node.axis = axis;
  const auto self = static_cast<std::int64_t>(nodes_.size());
  nodes_.push_back(node);
  const std::int64_t left = build(idx, lo, mid, depth + 1);
  const std::int64_t right = build(idx, mid + 1, hi, depth + 1);
  nodes_[static_cast<std::size_t>(self)].left = left;
  nodes_[static_cast<std::size_t>(self)].right = right;
  return self;
}

namespace {

struct HeapEntry {
  double distance2;
  std::size_t index;
  bool operator<(const HeapEntry& other) const {
    return distance2 < other.distance2;  // max-heap on distance
  }
};

}  // namespace

std::vector<Neighbor> KdTree::knn(std::span<const double> query, std::size_t k,
                                  std::size_t exclude_index) const {
  if (query.size() != points_.cols())
    throw std::invalid_argument("KdTree::knn: query dimension mismatch");
  if (k == 0) return {};

  std::priority_queue<HeapEntry> best;  // max-heap of current k best

  // Canonical 4-lane distance kernel — the same reduction as
  // Matrix::row_distance2, so tree hits and exact re-ranks agree bit for bit.
  auto dist2 = [&](std::size_t p) {
    const auto row = points_.row(p);
    return kernels::distance2(row.data(), query.data(), row.size());
  };

  // Iterative DFS with pruning. A balanced tree (median splits) bounds the
  // live stack by its depth; reserving once keeps the loop allocation-free.
  std::vector<std::int64_t> stack;
  stack.reserve(64);
  stack.push_back(root_);
  while (!stack.empty()) {
    const std::int64_t ni = stack.back();
    stack.pop_back();
    if (ni < 0) continue;
    const Node& node = nodes_[static_cast<std::size_t>(ni)];

    if (node.point != exclude_index) {
      const double d2 = dist2(node.point);
      if (best.size() < k) {
        best.push({d2, node.point});
      } else if (d2 < best.top().distance2) {
        best.pop();
        best.push({d2, node.point});
      }
    }

    const double delta = query[node.axis] - points_(node.point, node.axis);
    const std::int64_t near_side = delta <= 0 ? node.left : node.right;
    const std::int64_t far_side = delta <= 0 ? node.right : node.left;
    const double worst = best.size() < k
                             ? std::numeric_limits<double>::infinity()
                             : best.top().distance2;
    // Push far side first so the near side is explored first (LIFO).
    if (delta * delta < worst) stack.push_back(far_side);
    stack.push_back(near_side);
  }

  std::vector<Neighbor> out(best.size());
  for (std::size_t i = out.size(); i-- > 0;) {
    out[i] = {best.top().index, best.top().distance2};
    best.pop();
  }
  return out;
}

std::vector<Neighbor> KdTree::knn_of_point(std::size_t query_index,
                                           std::size_t k) const {
  if (query_index >= points_.rows())
    throw std::out_of_range("KdTree::knn_of_point");
  return knn(points_.row(query_index), k, query_index);
}

}  // namespace cirstag::graphs
