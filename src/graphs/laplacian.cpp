#include "graphs/laplacian.hpp"

#include <cmath>

namespace cirstag::graphs {

using linalg::SparseMatrix;
using linalg::Triplet;

SparseMatrix laplacian(const Graph& g) {
  const std::size_t n = g.num_nodes();
  std::vector<Triplet> trips;
  trips.reserve(g.num_edges() * 4);
  for (const auto& e : g.edges()) {
    trips.push_back({e.u, e.u, e.weight});
    trips.push_back({e.v, e.v, e.weight});
    trips.push_back({e.u, e.v, -e.weight});
    trips.push_back({e.v, e.u, -e.weight});
  }
  return SparseMatrix::from_triplets(n, n, std::move(trips));
}

SparseMatrix adjacency(const Graph& g) {
  const std::size_t n = g.num_nodes();
  std::vector<Triplet> trips;
  trips.reserve(g.num_edges() * 2);
  for (const auto& e : g.edges()) {
    trips.push_back({e.u, e.v, e.weight});
    trips.push_back({e.v, e.u, e.weight});
  }
  return SparseMatrix::from_triplets(n, n, std::move(trips));
}

SparseMatrix normalized_laplacian(const Graph& g) {
  const std::size_t n = g.num_nodes();
  std::vector<double> deg(n, 0.0);
  for (const auto& e : g.edges()) {
    deg[e.u] += e.weight;
    deg[e.v] += e.weight;
  }
  std::vector<double> inv_sqrt(n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    inv_sqrt[i] = deg[i] > 0.0 ? 1.0 / std::sqrt(deg[i]) : 0.0;

  std::vector<Triplet> trips;
  trips.reserve(g.num_edges() * 2 + n);
  for (std::size_t i = 0; i < n; ++i) trips.push_back({i, i, 1.0});
  for (const auto& e : g.edges()) {
    const double v = -e.weight * inv_sqrt[e.u] * inv_sqrt[e.v];
    trips.push_back({e.u, e.v, v});
    trips.push_back({e.v, e.u, v});
  }
  return SparseMatrix::from_triplets(n, n, std::move(trips));
}

SparseMatrix gcn_norm_adjacency(const Graph& g) {
  const std::size_t n = g.num_nodes();
  std::vector<double> deg(n, 1.0);  // +1 self-loop
  for (const auto& e : g.edges()) {
    deg[e.u] += e.weight;
    deg[e.v] += e.weight;
  }
  std::vector<double> inv_sqrt(n);
  for (std::size_t i = 0; i < n; ++i) inv_sqrt[i] = 1.0 / std::sqrt(deg[i]);

  std::vector<Triplet> trips;
  trips.reserve(g.num_edges() * 2 + n);
  for (std::size_t i = 0; i < n; ++i)
    trips.push_back({i, i, inv_sqrt[i] * inv_sqrt[i]});
  for (const auto& e : g.edges()) {
    const double v = e.weight * inv_sqrt[e.u] * inv_sqrt[e.v];
    trips.push_back({e.u, e.v, v});
    trips.push_back({e.v, e.u, v});
  }
  return SparseMatrix::from_triplets(n, n, std::move(trips));
}

}  // namespace cirstag::graphs
