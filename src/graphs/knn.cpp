#include "graphs/knn.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>
#include <vector>

#include "graphs/kdtree.hpp"
#include "linalg/rng.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/parallel_for.hpp"

namespace cirstag::graphs {

namespace {

/// Query points per parallel chunk. Each query is independent and writes
/// only its own result slot, so parallel construction is bit-identical to
/// the serial loop at any thread count.
constexpr std::size_t kKnnQueryGrain = 32;

/// Neighbor candidates for the selected points (all of them when `subset`
/// is null): exact, or approximate via a KD-tree over a JL projection with
/// exact full-dimension re-ranking. Non-selected slots stay empty.
std::vector<std::vector<Neighbor>> all_knn(
    const linalg::Matrix& points, std::size_t k, const KnnGraphOptions& opts,
    const std::vector<std::uint32_t>* subset = nullptr) {
  const std::size_t n = points.rows();
  const std::size_t d = points.cols();
  std::vector<std::vector<Neighbor>> result(n);
  const std::size_t num_queries = subset ? subset->size() : n;
  auto query_point = [&](std::size_t q) {
    return subset ? static_cast<std::size_t>((*subset)[q]) : q;
  };

  const bool approximate = opts.search_dims > 0 && opts.search_dims < d;
  if (!approximate) {
    const KdTree tree(points);
    runtime::parallel_for(0, num_queries, kKnnQueryGrain, [&](std::size_t q) {
      const std::size_t i = query_point(q);
      result[i] = tree.knn_of_point(i, k);
    });
    return result;
  }

  // JL projection: distances are approximately preserved, so the candidate
  // pool found in the projected space almost surely contains the true
  // neighbors, which the exact re-rank below then orders correctly.
  linalg::Rng proj_rng(opts.projection_seed);
  const linalg::Matrix projection = linalg::Matrix::random_normal(
      d, opts.search_dims, proj_rng, 0.0,
      1.0 / std::sqrt(static_cast<double>(opts.search_dims)));
  const linalg::Matrix reduced = linalg::matmul(points, projection);
  const KdTree tree(reduced);
  const std::size_t pool = std::min(n - 1, k * std::max<std::size_t>(
                                               opts.oversample, 1));
  runtime::parallel_for(0, num_queries, kKnnQueryGrain, [&](std::size_t q) {
    const std::size_t i = query_point(q);
    std::vector<Neighbor> candidates = tree.knn_of_point(i, pool);
    for (auto& c : candidates) c.distance2 = points.row_distance2(i, c.index);
    std::sort(candidates.begin(), candidates.end(),
              [](const Neighbor& a, const Neighbor& b) {
                return a.distance2 < b.distance2;
              });
    candidates.resize(std::min(k, candidates.size()));
    result[i] = std::move(candidates);
  });
  return result;
}

/// Assemble the undirected graph from per-point candidate lists: median
/// relative floor, symmetric dedup, w = 1/(d² + floor). Shared by the full
/// build and the delta update so both produce the same graph for the same
/// lists.
Graph assemble_knn_graph(const std::vector<std::vector<Neighbor>>& hits,
                         std::size_t n, std::size_t k,
                         const KnnGraphOptions& opts) {
  Graph g(n);

  std::vector<std::pair<NodeId, NodeId>> pairs;
  std::vector<double> dists;
  pairs.reserve(n * k);
  dists.reserve(n * k);
  for (std::size_t i = 0; i < n; ++i) {
    for (const Neighbor& nb : hits[i]) {
      const auto u = static_cast<NodeId>(std::min(i, nb.index));
      const auto v = static_cast<NodeId>(std::max(i, nb.index));
      pairs.emplace_back(u, v);
      dists.push_back(nb.distance2);
    }
  }

  // Relative floor: a fraction of the median kNN squared distance, so the
  // weight dynamic range stays bounded even with coincident points.
  double floor = opts.distance_floor;
  if (opts.relative_floor > 0.0 && !dists.empty()) {
    std::vector<double> sorted = dists;
    std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                     sorted.end());
    floor = std::max(floor, opts.relative_floor * sorted[sorted.size() / 2]);
  }

  // Deduplicate symmetric hits (i->j and j->i yield the same pair).
  std::vector<std::size_t> order(pairs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return pairs[a] < pairs[b];
  });
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (i > 0 && pairs[order[i]] == pairs[order[i - 1]]) continue;
    const auto [u, v] = pairs[order[i]];
    const double w = 1.0 / (dists[order[i]] + floor);
    g.add_edge(u, v, w);
  }
  static const obs::Counter builds("knn.builds");
  static const obs::Counter edges("knn.edges");
  builds.add();
  edges.add(g.num_edges());
  return g;
}

}  // namespace

Graph build_knn_graph(const linalg::Matrix& points,
                      const KnnGraphOptions& opts) {
  const std::size_t n = points.rows();
  if (n < 2) return Graph(n);
  const obs::TraceSpan trace_span("knn.build", "graphs");

  const std::size_t k = std::min(opts.k, n - 1);
  const auto hits = all_knn(points, k, opts);
  return assemble_knn_graph(hits, n, k, opts);
}

KnnBaseline capture_knn_baseline(const linalg::Matrix& points,
                                 const KnnGraphOptions& opts) {
  const obs::TraceSpan trace_span("knn.capture_baseline", "graphs");
  KnnBaseline base;
  base.points = points;
  const std::size_t n = points.rows();
  if (n < 2) {
    base.graph = Graph(n);
    base.hits.assign(n, {});
    return base;
  }
  base.k = std::min(opts.k, n - 1);
  base.hits = all_knn(points, base.k, opts);
  base.graph = assemble_knn_graph(base.hits, n, base.k, opts);
  return base;
}

Graph update_knn_graph(const KnnBaseline& baseline,
                       const linalg::Matrix& points,
                       std::span<const std::uint32_t> moved_rows,
                       const KnnGraphOptions& opts, KnnUpdateStats* stats) {
  const std::size_t n = points.rows();
  if (n != baseline.points.rows() || points.cols() != baseline.points.cols())
    throw std::invalid_argument("update_knn_graph: point-matrix shape differs");
  if (n < 2) return Graph(n);
  const std::size_t k = std::min(opts.k, n - 1);
  if (k != baseline.k)
    throw std::invalid_argument("update_knn_graph: k differs from baseline");

  const obs::TraceSpan trace_span("knn.delta_update", "graphs");
  static const obs::Counter updates("knn.delta_updates");
  static const obs::Counter requeries("knn.requeried_points");
  updates.add();

  // Re-query set: the moved points plus every point whose baseline list
  // references a moved point (its distances — possibly its membership —
  // changed).
  std::vector<char> moved(n, 0);
  for (const std::uint32_t r : moved_rows) moved[r] = 1;
  std::vector<std::uint32_t> requery;
  for (std::size_t i = 0; i < n; ++i) {
    bool affected = moved[i] != 0;
    if (!affected)
      for (const Neighbor& nb : baseline.hits[i])
        if (moved[nb.index]) { affected = true; break; }
    if (affected) requery.push_back(static_cast<std::uint32_t>(i));
  }

  std::vector<std::vector<Neighbor>> hits = baseline.hits;
  if (!requery.empty()) {
    auto fresh = all_knn(points, k, opts, &requery);
    for (const std::uint32_t i : requery) hits[i] = std::move(fresh[i]);
  }

  requeries.add(requery.size());
  if (stats) {
    stats->requeried_points = requery.size();
    stats->total_points = n;
  }
  return assemble_knn_graph(hits, n, k, opts);
}

}  // namespace cirstag::graphs
