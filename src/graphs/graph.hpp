#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace cirstag::graphs {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;

/// One undirected weighted edge.
struct Edge {
  NodeId u = 0;
  NodeId v = 0;
  double weight = 1.0;
};

/// (neighbor, edge index) pair in a node's adjacency list.
struct Incidence {
  NodeId neighbor = 0;
  EdgeId edge = 0;
};

/// Content fingerprint of a graph: node/edge counts plus a 64-bit hash over
/// the ordered edge stream (endpoints and weight bits). Two graphs with
/// equal fingerprints have the same Laplacian, so the fingerprint is the
/// cache key of the Laplacian solver cache — identity survives copies and
/// is invalidated by any mutation (a "revision" in cache terms).
struct GraphFingerprint {
  std::uint64_t hash = 0;
  std::uint64_t nodes = 0;
  std::uint64_t edges = 0;
  friend bool operator==(const GraphFingerprint&,
                         const GraphFingerprint&) = default;
};

/// Undirected weighted graph stored as an edge list plus adjacency lists.
///
/// The common currency of the library: circuit connectivity graphs, kNN
/// graphs, and PGM manifolds are all `Graph`s. Parallel edges are allowed at
/// this level (Laplacian assembly sums them); self-loops are rejected.
class Graph {
 public:
  Graph() = default;
  explicit Graph(std::size_t num_nodes) : adjacency_(num_nodes) {}

  [[nodiscard]] std::size_t num_nodes() const { return adjacency_.size(); }
  [[nodiscard]] std::size_t num_edges() const { return edges_.size(); }

  /// Add an undirected edge; returns its EdgeId. Throws on self-loops or
  /// out-of-range endpoints or non-positive weight.
  EdgeId add_edge(NodeId u, NodeId v, double weight = 1.0);

  /// Append `count` isolated nodes; returns the id of the first new node.
  NodeId add_nodes(std::size_t count = 1);

  [[nodiscard]] const Edge& edge(EdgeId e) const { return edges_[e]; }
  [[nodiscard]] std::span<const Edge> edges() const { return edges_; }

  /// Reweight an existing edge (weight must stay positive).
  void set_weight(EdgeId e, double weight);

  [[nodiscard]] std::span<const Incidence> neighbors(NodeId u) const {
    return adjacency_[u];
  }

  [[nodiscard]] std::size_t degree(NodeId u) const {
    return adjacency_[u].size();
  }

  /// Sum of incident edge weights.
  [[nodiscard]] double weighted_degree(NodeId u) const;

  /// Total edge weight.
  [[nodiscard]] double total_weight() const;

  /// Subgraph keeping only the listed edges (same node set).
  [[nodiscard]] Graph edge_subgraph(std::span<const EdgeId> keep) const;

  /// Content fingerprint (see GraphFingerprint). Lazily computed and cached;
  /// any mutation invalidates the cache, so repeated lookups on a stable
  /// graph — the solver-cache hot path — cost one comparison, not a rehash.
  [[nodiscard]] const GraphFingerprint& fingerprint() const;

 private:
  std::vector<Edge> edges_;
  std::vector<std::vector<Incidence>> adjacency_;
  mutable GraphFingerprint fingerprint_;
  mutable bool fingerprint_valid_ = false;
};

}  // namespace cirstag::graphs
