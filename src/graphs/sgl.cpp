#include "graphs/sgl.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "graphs/laplacian.hpp"
#include "graphs/spanning_tree.hpp"
#include "linalg/dense_eigen.hpp"

namespace cirstag::graphs {

namespace {

/// ‖Xᵀ e_pq‖² per edge — the data-distance term of the gradient.
std::vector<double> edge_data_distances(const Graph& g,
                                        const linalg::Matrix& data) {
  std::vector<double> d(g.num_edges(), 0.0);
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    const auto& ed = g.edge(e);
    d[e] = data.row_distance2(ed.u, ed.v);
  }
  return d;
}

}  // namespace

double pgm_objective(const Graph& g, const linalg::Matrix& data,
                     double sigma2) {
  const std::size_t n = g.num_nodes();
  if (data.rows() != n)
    throw std::invalid_argument("pgm_objective: data row mismatch");

  linalg::Matrix theta = laplacian(g).to_dense();
  for (std::size_t i = 0; i < n; ++i) theta(i, i) += 1.0 / sigma2;

  const linalg::Matrix chol = linalg::cholesky(theta);
  double logdet = 0.0;
  for (std::size_t i = 0; i < n; ++i) logdet += 2.0 * std::log(chol(i, i));

  // Tr(XᵀΘX) = Tr(XᵀX)/σ² + Σ w ‖Xᵀe_pq‖².
  double trace = 0.0;
  for (double v : data.data()) trace += v * v;
  trace /= sigma2;
  for (const auto& e : g.edges())
    trace += e.weight * data.row_distance2(e.u, e.v);

  const double m = static_cast<double>(std::max<std::size_t>(data.cols(), 1));
  return logdet - trace / m;
}

SglResult learn_pgm_sgl(const Graph& initial, const linalg::Matrix& data,
                        const SglOptions& opts, LaplacianSolverCache* cache) {
  if (data.rows() != initial.num_nodes())
    throw std::invalid_argument("learn_pgm_sgl: data row mismatch");

  SglResult res;
  res.graph = initial;
  const std::vector<double> d_data = edge_data_distances(res.graph, data);
  const double m = static_cast<double>(std::max<std::size_t>(data.cols(), 1));

  // Chain probe solutions across sweeps when asked: each iteration's sketch
  // reads the block stored by the previous one under this tag.
  ResistanceSketchOptions sketch_opts = opts.resistance;
  if (opts.warm_start_probes && cache && sketch_opts.warm_start_tag.empty())
    sketch_opts.warm_start_tag = "sgl/probes";

  for (std::size_t it = 0; it < opts.iterations; ++it) {
    if (opts.track_objective)
      res.objective_history.push_back(
          pgm_objective(res.graph, data, opts.sigma2));

    const std::vector<double> r_eff =
        edge_effective_resistances(res.graph, sketch_opts, cache);
    for (std::size_t e = 0; e < res.graph.num_edges(); ++e) {
      // ∂F/∂w = R_eff − D_data/M; scale the step by the current weight so
      // updates are relative (weights span orders of magnitude).
      const double grad = r_eff[e] - d_data[e] / m;
      const double w = res.graph.edge(e).weight;
      const double updated =
          std::max(opts.weight_floor, w * (1.0 + opts.step_size * grad * w));
      res.graph.set_weight(e, updated);
    }
  }
  if (opts.track_objective)
    res.objective_history.push_back(
        pgm_objective(res.graph, data, opts.sigma2));

  // Prune collapsed edges, preserving a spanning forest.
  std::vector<double> weights;
  weights.reserve(res.graph.num_edges());
  for (const auto& e : res.graph.edges()) weights.push_back(e.weight);
  if (!weights.empty()) {
    std::nth_element(weights.begin(), weights.begin() + weights.size() / 2,
                     weights.end());
    const double cutoff =
        opts.prune_fraction_of_median * weights[weights.size() / 2];
    const std::vector<EdgeId> tree = max_weight_spanning_forest(res.graph);
    std::vector<bool> keep(res.graph.num_edges(), false);
    for (EdgeId e : tree) keep[e] = true;
    std::vector<EdgeId> kept;
    for (EdgeId e = 0; e < res.graph.num_edges(); ++e) {
      if (keep[e] || res.graph.edge(e).weight >= cutoff) kept.push_back(e);
      else ++res.edges_pruned;
    }
    res.graph = res.graph.edge_subgraph(kept);
  }
  return res;
}

}  // namespace cirstag::graphs
