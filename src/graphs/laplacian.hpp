#pragma once

#include "graphs/graph.hpp"
#include "linalg/sparse.hpp"

namespace cirstag::graphs {

/// Combinatorial Laplacian L = D - A (parallel edges summed).
[[nodiscard]] linalg::SparseMatrix laplacian(const Graph& g);

/// Symmetric normalized Laplacian L_norm = I - D^{-1/2} A D^{-1/2}.
/// Isolated nodes contribute an identity row (eigenvalue 1 convention is
/// avoided by construction: they yield L_norm row = 1 on the diagonal).
[[nodiscard]] linalg::SparseMatrix normalized_laplacian(const Graph& g);

/// Weighted adjacency matrix A.
[[nodiscard]] linalg::SparseMatrix adjacency(const Graph& g);

/// GCN-style propagation operator D̂^{-1/2} (A + I) D̂^{-1/2}.
[[nodiscard]] linalg::SparseMatrix gcn_norm_adjacency(const Graph& g);

}  // namespace cirstag::graphs
