#pragma once

#include "graphs/effective_resistance.hpp"
#include "graphs/graph.hpp"
#include "linalg/matrix.hpp"

namespace cirstag::graphs {

/// Options for iterative SGL-style PGM learning (the baseline of [15], [30]
/// that CirSTAG's one-shot spectral sparsification replaces).
struct SglOptions {
  std::size_t iterations = 30;
  /// Step size of the projected gradient ascent on F(Θ) (Eq. 6).
  double step_size = 0.2;
  /// Prior feature variance σ² (Θ = L + I/σ²).
  double sigma2 = 1e4;
  /// Minimum admissible edge weight (projection floor).
  double weight_floor = 1e-6;
  /// After convergence, prune edges whose weight fell below this fraction
  /// of the median weight (keeping a spanning forest for connectivity).
  double prune_fraction_of_median = 0.05;
  /// Track the exact objective per iteration (dense logdet, O(n³) — only
  /// sensible for graphs up to a few hundred nodes).
  bool track_objective = false;
  /// Seed each iteration's probe solves from the previous iteration's
  /// solutions (requires a cache). The weights move little per sweep, so the
  /// guesses are close and CG converges in a fraction of the iterations.
  /// Changes results at CG-tolerance level, hence opt-in.
  bool warm_start_probes = false;
  ResistanceSketchOptions resistance;
};

/// Result of the iterative learning loop.
struct SglResult {
  Graph graph;
  /// F(Θ) per iteration when track_objective is set (else empty).
  std::vector<double> objective_history;
  std::size_t edges_pruned = 0;
};

/// Maximum-likelihood PGM learning by projected gradient ascent (Eqs. 6–7):
///
///   ∂F/∂w_pq = R_eff(p,q) − ‖Xᵀe_pq‖²
///
/// Each iteration re-estimates all effective resistances (a JL sketch with
/// O(probes) Laplacian solves) and moves every edge weight along the
/// gradient, projecting onto w ≥ floor. This converges to the stationarity
/// condition w_pq = 1/D_pq^data but needs many sweeps — the superlinear
/// behaviour the paper's Phase-2 sparsifier avoids; kept here as the
/// reference baseline for the ablation benches.
/// `cache` (optional) hosts the per-iteration Laplacian solvers and the
/// warm-start solution blocks. With `warm_start_probes` off the result is
/// bit-identical with or without a cache.
[[nodiscard]] SglResult learn_pgm_sgl(const Graph& initial,
                                      const linalg::Matrix& data,
                                      const SglOptions& opts = {},
                                      LaplacianSolverCache* cache = nullptr);

/// Exact PGM objective F(Θ) = logdet(Θ) − (1/M)·Tr(XᵀΘX) via dense
/// Cholesky — test oracle and objective tracker (O(n³)).
[[nodiscard]] double pgm_objective(const Graph& g, const linalg::Matrix& data,
                                   double sigma2);

}  // namespace cirstag::graphs
