#pragma once

#include <vector>

#include "graphs/effective_resistance.hpp"
#include "graphs/graph.hpp"

namespace cirstag::graphs {

/// Options for PGM-style spectral sparsification (CirSTAG Phase 2).
struct SparsifyOptions {
  /// Fraction of off-tree edges to keep, ranked by spectral distortion
  /// η_pq = w_pq · R_eff(p,q) (largest kept). 0 keeps only the spanning
  /// forest; 1 keeps everything.
  double offtree_keep_fraction = 0.10;
  /// Alternative absolute bound: keep off-tree edges with η above this
  /// threshold regardless of fraction (set <= 0 to disable).
  double eta_threshold = 0.0;
  /// Resistance-diameter bound of the LRD decomposition: off-tree edges whose
  /// effective resistance exceeds this multiple of the mean edge resistance
  /// are always pruned (they close "long" cycles). 0 disables.
  double lrd_resistance_multiple = 0.0;
  ResistanceSketchOptions resistance;
};

/// Result of sparsification: the sparsified graph plus diagnostics.
struct SparsifyResult {
  Graph graph;
  std::vector<EdgeId> kept_edges;    ///< ids into the *input* graph
  std::vector<double> eta;           ///< per-input-edge distortion score
  std::size_t tree_edges = 0;
};

/// Spectrum-preserving graph sparsification via effective-resistance
/// distortion pruning (paper Eq. 8, standing in for SGL's iterative PGM
/// learning). Keeps a maximum-weight spanning forest for connectivity, then
/// retains the off-tree edges with the largest η_pq = w_pq · R_eff(p,q):
/// those are exactly the edges whose removal would most perturb
/// log det(Θ) relative to the data-fit term (Eqs. 6–7).
///
/// `cache` (optional) is threaded through to the resistance sketch so the
/// Laplacian solver for `g` is shared with other phases of the pipeline.
[[nodiscard]] SparsifyResult sparsify_pgm(const Graph& g,
                                          const SparsifyOptions& opts = {},
                                          LaplacianSolverCache* cache = nullptr);

}  // namespace cirstag::graphs
