#pragma once

#include <span>
#include <vector>

#include "graphs/graph.hpp"
#include "graphs/kdtree.hpp"
#include "linalg/matrix.hpp"

namespace cirstag::graphs {

/// Options for the initial dense manifold graph (CirSTAG Phase 2a).
struct KnnGraphOptions {
  std::size_t k = 10;
  /// Absolute floor added to squared distances before inversion so
  /// coincident points get a large-but-finite weight.
  double distance_floor = 1e-12;
  /// Relative floor as a fraction of the median kNN squared distance.
  /// Structurally-equivalent circuit nodes embed to (nearly) identical
  /// coordinates; without a relative floor their edges would get weights
  /// orders of magnitude above everything else and dominate the PGM
  /// spectrum. 0 disables.
  double relative_floor = 0.01;
  /// Approximate search: the KD-tree indexes a `search_dims`-dimensional
  /// Johnson–Lindenstrauss random projection of the points (where KD
  /// pruning is effective), retrieves `k * oversample` candidates, and
  /// re-ranks them with exact full-dimension distances.
  /// 0 = exact search in full dimension.
  std::size_t search_dims = 8;
  std::size_t oversample = 6;
  std::uint64_t projection_seed = 909;
};

/// Build the mutual kNN graph over the rows of `points`.
///
/// Edge weights follow the PGM stationarity condition (Eq. 7):
/// ∂F2/∂w_pq = D_pq^data = 1/w_pq, i.e. w_pq = 1 / ||x_p - x_q||².
/// An undirected edge appears once even if the relation holds both ways.
[[nodiscard]] Graph build_knn_graph(const linalg::Matrix& points,
                                    const KnnGraphOptions& opts = {});

/// Frozen result of one kNN build: the points, every point's candidate
/// list, and the assembled graph. The baseline that update_knn_graph
/// patches for perturbation-sweep variants.
struct KnnBaseline {
  linalg::Matrix points;
  std::vector<std::vector<Neighbor>> hits;  ///< per-point nearest neighbors
  Graph graph;                              ///< == build_knn_graph(points)
  std::size_t k = 0;
};

/// Reuse accounting of one update_knn_graph call.
struct KnnUpdateStats {
  std::size_t requeried_points = 0;  ///< points whose kNN query re-ran
  std::size_t total_points = 0;
};

/// Run the full kNN build once and keep the per-point candidate lists;
/// `baseline.graph` is byte-identical to build_knn_graph(points, opts).
[[nodiscard]] KnnBaseline capture_knn_baseline(const linalg::Matrix& points,
                                               const KnnGraphOptions& opts = {});

/// Delta kNN re-query for a variant whose rows differ from the baseline
/// only at `moved_rows`: re-queries the moved points plus every point whose
/// baseline list references a moved point, reusing all other lists, then
/// reassembles the graph (including the median relative floor) from the
/// merged lists.
///
/// Approximation (fast sweep mode only): a stationary point that would
/// newly pick up a moved point as a neighbor is caught when the moved
/// point's fresh list names it (the undirected union), but not when the
/// relation is one-sided — those few edges can differ from a full rebuild.
/// With an empty `moved_rows` the result is byte-identical to the baseline
/// graph.
[[nodiscard]] Graph update_knn_graph(const KnnBaseline& baseline,
                                     const linalg::Matrix& points,
                                     std::span<const std::uint32_t> moved_rows,
                                     const KnnGraphOptions& opts = {},
                                     KnnUpdateStats* stats = nullptr);

}  // namespace cirstag::graphs
