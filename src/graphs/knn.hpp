#pragma once

#include "graphs/graph.hpp"
#include "linalg/matrix.hpp"

namespace cirstag::graphs {

/// Options for the initial dense manifold graph (CirSTAG Phase 2a).
struct KnnGraphOptions {
  std::size_t k = 10;
  /// Absolute floor added to squared distances before inversion so
  /// coincident points get a large-but-finite weight.
  double distance_floor = 1e-12;
  /// Relative floor as a fraction of the median kNN squared distance.
  /// Structurally-equivalent circuit nodes embed to (nearly) identical
  /// coordinates; without a relative floor their edges would get weights
  /// orders of magnitude above everything else and dominate the PGM
  /// spectrum. 0 disables.
  double relative_floor = 0.01;
  /// Approximate search: the KD-tree indexes a `search_dims`-dimensional
  /// Johnson–Lindenstrauss random projection of the points (where KD
  /// pruning is effective), retrieves `k * oversample` candidates, and
  /// re-ranks them with exact full-dimension distances.
  /// 0 = exact search in full dimension.
  std::size_t search_dims = 8;
  std::size_t oversample = 6;
  std::uint64_t projection_seed = 909;
};

/// Build the mutual kNN graph over the rows of `points`.
///
/// Edge weights follow the PGM stationarity condition (Eq. 7):
/// ∂F2/∂w_pq = D_pq^data = 1/w_pq, i.e. w_pq = 1 / ||x_p - x_q||².
/// An undirected edge appears once even if the relation holds both ways.
[[nodiscard]] Graph build_knn_graph(const linalg::Matrix& points,
                                    const KnnGraphOptions& opts = {});

}  // namespace cirstag::graphs
