#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graphs/graph.hpp"

namespace cirstag::graphs {

/// Multilevel spectral coarsening (DESIGN.md §12).
///
/// A hierarchy of successively smaller graphs built by deterministic
/// heavy-edge matching. Each level's prolongation P is piecewise constant
/// (every fine node belongs to exactly one aggregate), so the Galerkin
/// coarse operator Pᵀ L P of a combinatorial Laplacian is again the
/// Laplacian of a graph — the aggregated graph produced here, with
/// intra-aggregate edges collapsed and inter-aggregate parallel edges
/// summed. The eigensolvers in linalg/multilevel_eigen.hpp solve at the
/// coarsest level and Rayleigh-Ritz-refine back up the hierarchy.
///
/// Everything in this header is a pure function of the input graph:
/// hierarchies are bit-identical across thread counts and SIMD modes, which
/// is what lets the multilevel pipeline keep the repo's byte-determinism
/// contract. Construction is parallel internally (a fixed-chunk
/// propose/resolve matching scheme plus a chunked Galerkin triplet fill on
/// runtime::parallel_for_chunks), but every parallel stage reproduces the
/// historical serial output byte for byte — see heavy_edge_matching.

/// Coarsening policy of a pipeline phase.
enum class CoarsenMode {
  off,        ///< never coarsen — the historical byte-exact path
  automatic,  ///< coarsen when the graph has >= auto_threshold nodes
};

struct CoarsenOptions {
  CoarsenMode mode = CoarsenMode::automatic;
  /// `automatic` engages only at or above this node count, so every small
  /// graph (all the repo's locked manifests and tests) keeps the exact
  /// single-level path byte for byte.
  std::size_t auto_threshold = 20000;
  /// Hierarchy depth cap (the CLI's --coarsen-levels).
  std::size_t max_levels = 12;
  /// Stop coarsening once a level has at most this many nodes; the coarsest
  /// eigenproblem is solved directly there.
  std::size_t coarsest_target = 1024;
  /// Stop when a matching round shrinks the graph by less than this factor
  /// (num_coarse > min_shrink * n means matching stagnated — e.g. a star
  /// graph — and further rounds would only burn time).
  double min_shrink = 0.9;
  /// Subspace-iteration sweeps spent re-converging the interpolated
  /// eigenvectors on each finer level (consumed by linalg/multilevel_eigen;
  /// housed here so one knob configures both pipeline phases). Eight sweeps
  /// keep the finest-level residual inside the documented drift bound while
  /// staying far cheaper than a full single-level solve.
  std::size_t refine_sweeps = 8;
};

/// Whether the options engage coarsening for a graph of `num_nodes` nodes.
[[nodiscard]] bool coarsen_engaged(const CoarsenOptions& opts,
                                   std::size_t num_nodes);

/// One deterministic heavy-edge matching round: visit nodes in ascending id
/// order; an unmatched node pairs with its heaviest unmatched neighbor
/// (summing parallel edges; ties broken toward the smallest neighbor id), or
/// becomes a singleton aggregate. Aggregate ids are assigned in visit order.
/// Returns the fine-node -> aggregate map and writes the aggregate count.
///
/// Internally parallel, externally serial-equivalent: a parallel propose
/// phase computes every node's heaviest neighbor over ALL neighbors
/// (match-state-independent, so chunks are embarrassingly parallel), then a
/// serial resolve pass walks nodes in ascending order. When a node's
/// proposed partner is still unmatched it provably equals the serial greedy
/// choice (the unmatched argmax is dominated by the global argmax, and the
/// smallest-id tie-break agrees); otherwise the resolve pass falls back to
/// the exact historical serial scan for that node. The result is therefore
/// bit-identical to the original strictly-serial algorithm at every thread
/// count and SIMD mode.
[[nodiscard]] std::vector<std::uint32_t> heavy_edge_matching(
    const Graph& g, std::size_t& num_coarse);

/// Aggregate a graph under a node map: the Galerkin triple product Pᵀ L P
/// realized combinatorially. Intra-aggregate edges vanish; inter-aggregate
/// edges are summed per coarse pair in a fixed (sorted, insertion-stable)
/// order so the coarse weights are bit-reproducible.
[[nodiscard]] Graph aggregate_graph(const Graph& g,
                                    std::span<const std::uint32_t> map,
                                    std::size_t num_coarse);

/// One hierarchy level: the coarse graph plus the map from the previous
/// (finer) level's nodes into it.
struct CoarsenLevel {
  Graph graph;
  std::vector<std::uint32_t> map;  ///< finer-level node -> aggregate id
};

/// levels[0] coarsens the original graph; levels[l] coarsens
/// levels[l-1].graph. Empty when no round met the shrink/size criteria.
struct CoarsenHierarchy {
  std::vector<CoarsenLevel> levels;
  [[nodiscard]] bool empty() const { return levels.empty(); }
  [[nodiscard]] std::size_t coarsest_n() const {
    return levels.empty() ? 0 : levels.back().graph.num_nodes();
  }
};

/// Full single-graph hierarchy (Phase-1 embedding path).
[[nodiscard]] CoarsenHierarchy coarsen_graph(const Graph& g,
                                             const CoarsenOptions& opts);

/// Pair hierarchy for the Phase-3 generalized eigenproblem: one matching per
/// level, computed on the edge-weight union of both graphs, so a single
/// prolongation serves L_X and L_Y (the generalized Rayleigh quotient needs
/// both operators projected through the same P). x_levels/y_levels hold the
/// per-level aggregations of each side; maps[l] maps level-l nodes (l = 0 is
/// the original node set) to level l+1 aggregates.
struct CoarsenPairHierarchy {
  std::vector<std::vector<std::uint32_t>> maps;
  std::vector<Graph> x_levels;
  std::vector<Graph> y_levels;
  [[nodiscard]] bool empty() const { return maps.empty(); }
  [[nodiscard]] std::size_t coarsest_n() const {
    return x_levels.empty() ? 0 : x_levels.back().num_nodes();
  }
};

[[nodiscard]] CoarsenPairHierarchy coarsen_pair(const Graph& x,
                                                const Graph& y,
                                                const CoarsenOptions& opts);

}  // namespace cirstag::graphs
