#include "graphs/components.hpp"

#include <limits>
#include <queue>

namespace cirstag::graphs {

ComponentLabels connected_components(const Graph& g) {
  const std::size_t n = g.num_nodes();
  ComponentLabels out;
  out.label.assign(n, std::numeric_limits<std::size_t>::max());
  std::queue<NodeId> frontier;
  for (NodeId start = 0; start < n; ++start) {
    if (out.label[start] != std::numeric_limits<std::size_t>::max()) continue;
    out.label[start] = out.count;
    frontier.push(start);
    while (!frontier.empty()) {
      const NodeId u = frontier.front();
      frontier.pop();
      for (const auto& inc : g.neighbors(u)) {
        if (out.label[inc.neighbor] == std::numeric_limits<std::size_t>::max()) {
          out.label[inc.neighbor] = out.count;
          frontier.push(inc.neighbor);
        }
      }
    }
    ++out.count;
  }
  return out;
}

bool is_connected(const Graph& g) {
  if (g.num_nodes() == 0) return true;
  return connected_components(g).count == 1;
}

Graph connect_components(const Graph& g, double bridge_weight) {
  const auto comps = connected_components(g);
  Graph out = g;
  if (comps.count <= 1) return out;
  // Representative = first node seen with each label.
  std::vector<NodeId> rep(comps.count, 0);
  std::vector<bool> seen(comps.count, false);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const std::size_t c = comps.label[u];
    if (!seen[c]) {
      seen[c] = true;
      rep[c] = u;
    }
  }
  for (std::size_t c = 1; c < comps.count; ++c)
    out.add_edge(rep[c - 1], rep[c], bridge_weight);
  return out;
}

std::vector<std::size_t> bfs_distances(const Graph& g, NodeId source) {
  const auto unreachable = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> dist(g.num_nodes(), unreachable);
  std::queue<NodeId> frontier;
  dist[source] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (const auto& inc : g.neighbors(u)) {
      if (dist[inc.neighbor] == unreachable) {
        dist[inc.neighbor] = dist[u] + 1;
        frontier.push(inc.neighbor);
      }
    }
  }
  return dist;
}

}  // namespace cirstag::graphs
