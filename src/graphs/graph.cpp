#include "graphs/graph.hpp"

#include <bit>
#include <stdexcept>

namespace cirstag::graphs {

namespace {

// FNV-1a, 64-bit. Deterministic across platforms and runs — fingerprints may
// end up in cache keys that outlive the process image, so no std::hash.
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x00000100000001b3ULL;

inline std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t word) {
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (word >> (8 * byte)) & 0xffULL;
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

EdgeId Graph::add_edge(NodeId u, NodeId v, double weight) {
  if (u >= num_nodes() || v >= num_nodes())
    throw std::out_of_range("Graph::add_edge: node out of range");
  if (u == v) throw std::invalid_argument("Graph::add_edge: self-loop");
  if (!(weight > 0.0))
    throw std::invalid_argument("Graph::add_edge: weight must be positive");
  const auto id = static_cast<EdgeId>(edges_.size());
  edges_.push_back({u, v, weight});
  adjacency_[u].push_back({v, id});
  adjacency_[v].push_back({u, id});
  fingerprint_valid_ = false;
  return id;
}

NodeId Graph::add_nodes(std::size_t count) {
  const auto first = static_cast<NodeId>(adjacency_.size());
  adjacency_.resize(adjacency_.size() + count);
  fingerprint_valid_ = false;
  return first;
}

void Graph::set_weight(EdgeId e, double weight) {
  if (e >= edges_.size()) throw std::out_of_range("Graph::set_weight");
  if (!(weight > 0.0))
    throw std::invalid_argument("Graph::set_weight: weight must be positive");
  edges_[e].weight = weight;
  fingerprint_valid_ = false;
}

double Graph::weighted_degree(NodeId u) const {
  double s = 0.0;
  for (const auto& inc : adjacency_[u]) s += edges_[inc.edge].weight;
  return s;
}

double Graph::total_weight() const {
  double s = 0.0;
  for (const auto& e : edges_) s += e.weight;
  return s;
}

const GraphFingerprint& Graph::fingerprint() const {
  if (!fingerprint_valid_) {
    std::uint64_t h = fnv_mix(kFnvOffset, num_nodes());
    for (const Edge& e : edges_) {
      h = fnv_mix(h, e.u);
      h = fnv_mix(h, e.v);
      h = fnv_mix(h, std::bit_cast<std::uint64_t>(e.weight));
    }
    fingerprint_ = {h, num_nodes(), num_edges()};
    fingerprint_valid_ = true;
  }
  return fingerprint_;
}

Graph Graph::edge_subgraph(std::span<const EdgeId> keep) const {
  Graph g(num_nodes());
  for (EdgeId e : keep) {
    const Edge& ed = edges_.at(e);
    g.add_edge(ed.u, ed.v, ed.weight);
  }
  return g;
}

}  // namespace cirstag::graphs
