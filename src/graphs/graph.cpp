#include "graphs/graph.hpp"

#include <stdexcept>

namespace cirstag::graphs {

EdgeId Graph::add_edge(NodeId u, NodeId v, double weight) {
  if (u >= num_nodes() || v >= num_nodes())
    throw std::out_of_range("Graph::add_edge: node out of range");
  if (u == v) throw std::invalid_argument("Graph::add_edge: self-loop");
  if (!(weight > 0.0))
    throw std::invalid_argument("Graph::add_edge: weight must be positive");
  const auto id = static_cast<EdgeId>(edges_.size());
  edges_.push_back({u, v, weight});
  adjacency_[u].push_back({v, id});
  adjacency_[v].push_back({u, id});
  return id;
}

NodeId Graph::add_nodes(std::size_t count) {
  const auto first = static_cast<NodeId>(adjacency_.size());
  adjacency_.resize(adjacency_.size() + count);
  return first;
}

void Graph::set_weight(EdgeId e, double weight) {
  if (e >= edges_.size()) throw std::out_of_range("Graph::set_weight");
  if (!(weight > 0.0))
    throw std::invalid_argument("Graph::set_weight: weight must be positive");
  edges_[e].weight = weight;
}

double Graph::weighted_degree(NodeId u) const {
  double s = 0.0;
  for (const auto& inc : adjacency_[u]) s += edges_[inc.edge].weight;
  return s;
}

double Graph::total_weight() const {
  double s = 0.0;
  for (const auto& e : edges_) s += e.weight;
  return s;
}

Graph Graph::edge_subgraph(std::span<const EdgeId> keep) const {
  Graph g(num_nodes());
  for (EdgeId e : keep) {
    const Edge& ed = edges_.at(e);
    g.add_edge(ed.u, ed.v, ed.weight);
  }
  return g;
}

}  // namespace cirstag::graphs
