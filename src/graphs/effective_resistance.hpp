#pragma once

#include <vector>

#include "graphs/graph.hpp"
#include "linalg/cg.hpp"

namespace cirstag::graphs {

/// Exact effective resistance between two nodes via a Laplacian solve:
/// R_eff(u,v) = (e_u - e_v)^T L^+ (e_u - e_v). The graph must be connected
/// (or u, v in the same component).
[[nodiscard]] double effective_resistance(const linalg::LaplacianSolver& solver,
                                          NodeId u, NodeId v);

/// Options for the sketched all-edges effective-resistance estimator.
struct ResistanceSketchOptions {
  std::size_t num_probes = 24;   ///< JL dimension k (error ~ 1/sqrt(k))
  /// Solver budget per probe. The JL sketch itself carries ~1/sqrt(k)
  /// relative error, so tight CG tolerances buy nothing; a bounded
  /// iteration count keeps the sketch near-linear on ill-conditioned
  /// weighted kNN graphs.
  double cg_tolerance = 1e-6;
  std::size_t cg_max_iterations = 300;
  std::uint64_t seed = 7;
};

/// Approximate effective resistance of every edge of `g` simultaneously
/// using the Spielman–Srivastava Johnson–Lindenstrauss sketch:
///   Z = Q W^{1/2} B L^+,  R_eff(u,v) ≈ ||Z(e_u - e_v)||²,
/// computed with `num_probes` Laplacian solves. This is the near-linear
/// R_eff engine backing the paper's η = w·R_eff pruning criterion (Eq. 8)
/// and LRD decomposition.
[[nodiscard]] std::vector<double> edge_effective_resistances(
    const Graph& g, const ResistanceSketchOptions& opts = {});

/// Exact per-edge effective resistances (one solve per edge); quadratic-ish,
/// used as a test oracle and for small graphs.
[[nodiscard]] std::vector<double> edge_effective_resistances_exact(
    const Graph& g);

}  // namespace cirstag::graphs
