#pragma once

#include <string>
#include <vector>

#include "graphs/graph.hpp"
#include "graphs/solver_cache.hpp"
#include "linalg/cg.hpp"

namespace cirstag::graphs {

/// Exact effective resistance between two nodes via a Laplacian solve:
/// R_eff(u,v) = (e_u - e_v)^T L^+ (e_u - e_v). The graph must be connected
/// (or u, v in the same component).
[[nodiscard]] double effective_resistance(const linalg::LaplacianSolver& solver,
                                          NodeId u, NodeId v);

/// Options for the sketched all-edges effective-resistance estimator.
struct ResistanceSketchOptions {
  std::size_t num_probes = 24;   ///< JL dimension k (error ~ 1/sqrt(k))
  /// Solver budget per probe. The JL sketch itself carries ~1/sqrt(k)
  /// relative error, so tight CG tolerances buy nothing; a bounded
  /// iteration count keeps the sketch near-linear on ill-conditioned
  /// weighted kNN graphs.
  double cg_tolerance = 1e-6;
  std::size_t cg_max_iterations = 300;
  std::uint64_t seed = 7;
  /// Preconditioner for the probe solves. Jacobi reproduces the historical
  /// iterates bit-for-bit; spanning_tree typically converges in far fewer
  /// iterations but follows a different (equally valid) iterate path.
  SolverPreconditioner preconditioner = SolverPreconditioner::jacobi;
  /// Solve all probes in one blocked CG call (one CSR traversal per
  /// iteration serves every probe). Bit-identical to the per-probe path at
  /// every thread count; off = the historical one-task-per-probe solves.
  bool use_block_cg = true;
  /// Non-empty + a cache: seed the probe solves from the solutions stored
  /// under this tag by the previous sketch (e.g. the prior SGL pruning
  /// iteration) and store this sketch's solutions back. Changes results at
  /// CG-tolerance level, hence opt-in.
  std::string warm_start_tag;
};

/// Diagnostics from one sketch run (all optional to consume).
struct ResistanceSketchStats {
  std::size_t cg_iterations = 0;  ///< Σ iterations across probe solves
  bool cache_hit = false;         ///< solver came from the cache
  bool used_block_cg = false;
  bool warm_started = false;
};

/// Approximate effective resistance of every edge of `g` simultaneously
/// using the Spielman–Srivastava Johnson–Lindenstrauss sketch:
///   Z = Q W^{1/2} B L^+,  R_eff(u,v) ≈ ||Z(e_u - e_v)||²,
/// computed with `num_probes` Laplacian solves. This is the near-linear
/// R_eff engine backing the paper's η = w·R_eff pruning criterion (Eq. 8)
/// and LRD decomposition.
///
/// `cache` (optional) reuses/persists the Laplacian solver across calls with
/// the same graph and solver options — the cross-phase solver cache.
[[nodiscard]] std::vector<double> edge_effective_resistances(
    const Graph& g, const ResistanceSketchOptions& opts = {},
    LaplacianSolverCache* cache = nullptr,
    ResistanceSketchStats* stats = nullptr);

/// Options for the exact per-edge solver (satellite of the sketch).
struct ExactResistanceOptions {
  linalg::CgOptions cg;  ///< defaults: 1e-10 tolerance, 2000 iterations
  SolverPreconditioner preconditioner = SolverPreconditioner::jacobi;
  /// Chain each solve from the previous edge's solution within a chunk —
  /// consecutive edges share endpoints in kNN graphs, so the guesses are
  /// close. Chunk boundaries are fixed by `chunk_grain` alone, keeping
  /// results thread-count independent.
  bool warm_start = true;
  std::size_t chunk_grain = 32;
};

/// Exact per-edge effective resistances (one solve per edge); quadratic-ish,
/// used as a test oracle and for small graphs.
[[nodiscard]] std::vector<double> edge_effective_resistances_exact(
    const Graph& g, const ExactResistanceOptions& opts = {});

}  // namespace cirstag::graphs
