#include "graphs/coarsen.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace cirstag::graphs {

bool coarsen_engaged(const CoarsenOptions& opts, std::size_t num_nodes) {
  if (opts.mode == CoarsenMode::off) return false;
  if (opts.max_levels == 0) return false;
  return num_nodes >= opts.auto_threshold &&
         num_nodes > opts.coarsest_target;
}

std::vector<std::uint32_t> heavy_edge_matching(const Graph& g,
                                               std::size_t& num_coarse) {
  const std::size_t n = g.num_nodes();
  constexpr std::uint32_t kUnmatched = 0xffffffffu;
  std::vector<std::uint32_t> map(n, kUnmatched);
  // Per-neighbor weight accumulation scratch (parallel edges sum); the
  // touched list keeps the reset O(deg) so the whole pass is O(edges).
  std::vector<double> accum(n, 0.0);
  std::vector<NodeId> touched;
  std::uint32_t next = 0;
  for (std::size_t u = 0; u < n; ++u) {
    if (map[u] != kUnmatched) continue;
    touched.clear();
    for (const Incidence& inc : g.neighbors(static_cast<NodeId>(u))) {
      if (map[inc.neighbor] != kUnmatched) continue;  // partner taken
      if (accum[inc.neighbor] == 0.0) touched.push_back(inc.neighbor);
      accum[inc.neighbor] += g.edge(inc.edge).weight;
    }
    NodeId best = kUnmatched;
    double best_w = 0.0;
    for (const NodeId v : touched) {
      // Heaviest aggregate weight; ties resolve toward the smallest id so
      // the matching is a pure function of the edge stream.
      if (accum[v] > best_w || (accum[v] == best_w && v < best)) {
        best = v;
        best_w = accum[v];
      }
      accum[v] = 0.0;
    }
    map[u] = next;
    if (best != kUnmatched) map[best] = next;
    ++next;
  }
  num_coarse = next;
  return map;
}

Graph aggregate_graph(const Graph& g, std::span<const std::uint32_t> map,
                      std::size_t num_coarse) {
  if (map.size() != g.num_nodes())
    throw std::invalid_argument("aggregate_graph: map size != node count");
  struct Triplet {
    std::uint32_t a;
    std::uint32_t b;
    double w;
  };
  std::vector<Triplet> triplets;
  triplets.reserve(g.num_edges());
  for (const Edge& e : g.edges()) {
    const std::uint32_t a = map[e.u];
    const std::uint32_t b = map[e.v];
    if (a >= num_coarse || b >= num_coarse)
      throw std::invalid_argument("aggregate_graph: map entry out of range");
    if (a == b) continue;  // intra-aggregate edge: Pᵀ L P drops it
    triplets.push_back({std::min(a, b), std::max(a, b), e.weight});
  }
  // stable_sort keeps insertion order within equal coarse pairs, so the
  // weight summation order — and therefore the coarse weight bits — is a
  // fixed function of the fine edge stream.
  std::stable_sort(triplets.begin(), triplets.end(),
                   [](const Triplet& l, const Triplet& r) {
                     return l.a != r.a ? l.a < r.a : l.b < r.b;
                   });
  Graph coarse(num_coarse);
  std::size_t i = 0;
  while (i < triplets.size()) {
    std::size_t j = i;
    double w = 0.0;
    while (j < triplets.size() && triplets[j].a == triplets[i].a &&
           triplets[j].b == triplets[i].b) {
      w += triplets[j].w;
      ++j;
    }
    coarse.add_edge(triplets[i].a, triplets[i].b, w);
    i = j;
  }
  return coarse;
}

namespace {

/// Shared stop logic of both hierarchy builders: keep coarsening while the
/// current level is above target, rounds keep shrinking, and the depth cap
/// has room.
bool another_round(const CoarsenOptions& opts, std::size_t current_n,
                   std::size_t levels_built) {
  return current_n > opts.coarsest_target && levels_built < opts.max_levels;
}

bool round_productive(const CoarsenOptions& opts, std::size_t fine_n,
                      std::size_t coarse_n) {
  return coarse_n < fine_n &&
         static_cast<double>(coarse_n) <
             opts.min_shrink * static_cast<double>(fine_n);
}

}  // namespace

CoarsenHierarchy coarsen_graph(const Graph& g, const CoarsenOptions& opts) {
  static const obs::Counter rounds("coarsen.matching_rounds");
  CoarsenHierarchy out;
  const Graph* current = &g;
  while (another_round(opts, current->num_nodes(), out.levels.size())) {
    std::size_t num_coarse = 0;
    std::vector<std::uint32_t> map = heavy_edge_matching(*current, num_coarse);
    rounds.add();
    if (!round_productive(opts, current->num_nodes(), num_coarse)) break;
    CoarsenLevel level;
    level.graph = aggregate_graph(*current, map, num_coarse);
    level.map = std::move(map);
    out.levels.push_back(std::move(level));
    current = &out.levels.back().graph;
  }
  return out;
}

CoarsenPairHierarchy coarsen_pair(const Graph& x, const Graph& y,
                                  const CoarsenOptions& opts) {
  if (x.num_nodes() != y.num_nodes())
    throw std::invalid_argument("coarsen_pair: node-count mismatch");
  static const obs::Counter rounds("coarsen.matching_rounds");
  CoarsenPairHierarchy out;

  // The matching runs on the edge-weight union of both sides so one P
  // respects the connectivity of L_X and L_Y alike.
  const auto make_union = [](const Graph& a, const Graph& b) {
    Graph u(a.num_nodes());
    for (const Edge& e : a.edges()) u.add_edge(e.u, e.v, e.weight);
    for (const Edge& e : b.edges()) u.add_edge(e.u, e.v, e.weight);
    return u;
  };

  Graph combined = make_union(x, y);
  const Graph* cx = &x;
  const Graph* cy = &y;
  while (another_round(opts, combined.num_nodes(), out.maps.size())) {
    std::size_t num_coarse = 0;
    std::vector<std::uint32_t> map = heavy_edge_matching(combined, num_coarse);
    rounds.add();
    if (!round_productive(opts, combined.num_nodes(), num_coarse)) break;
    out.x_levels.push_back(aggregate_graph(*cx, map, num_coarse));
    out.y_levels.push_back(aggregate_graph(*cy, map, num_coarse));
    combined = aggregate_graph(combined, map, num_coarse);
    out.maps.push_back(std::move(map));
    cx = &out.x_levels.back();
    cy = &out.y_levels.back();
  }
  return out;
}

}  // namespace cirstag::graphs
