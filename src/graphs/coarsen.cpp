#include "graphs/coarsen.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "runtime/parallel_for.hpp"

namespace cirstag::graphs {

namespace {

constexpr std::uint32_t kUnmatched = 0xffffffffu;

/// Fixed chunk sizes for the parallel stages. Like every other grain in the
/// repo these are functions of nothing but the constant itself — chunk
/// boundaries never depend on the pool width, so per-chunk work is identical
/// at any thread count (runtime/parallel_for.hpp's determinism contract).
constexpr std::size_t kProposeGrain = 1024;
constexpr std::size_t kTripletGrain = 8192;

/// Heaviest neighbor of u over ALL neighbors, ignoring match state: parallel
/// edges sum in incidence order (the same order the serial scan accumulates
/// them, so the per-neighbor doubles are bit-identical), and the winner is
/// the (max weight, then min id) selection — an order-independent reduction.
/// `accum` is caller-provided size-n scratch that must be all-zero on entry
/// and is restored to all-zero on exit.
NodeId propose_partner(const Graph& g, NodeId u, std::vector<double>& accum,
                       std::vector<NodeId>& touched) {
  touched.clear();
  for (const Incidence& inc : g.neighbors(u)) {
    if (accum[inc.neighbor] == 0.0) touched.push_back(inc.neighbor);
    accum[inc.neighbor] += g.edge(inc.edge).weight;
  }
  NodeId best = kUnmatched;
  double best_w = 0.0;
  for (const NodeId v : touched) {
    if (accum[v] > best_w || (accum[v] == best_w && v < best)) {
      best = v;
      best_w = accum[v];
    }
    accum[v] = 0.0;
  }
  return best;
}

/// The historical serial inner scan: heaviest currently-unmatched neighbor
/// of u (parallel edges summed in incidence order, ties toward the smallest
/// id). Used by the resolve pass when the proposed partner was already
/// taken. Scratch contract matches propose_partner.
NodeId serial_partner(const Graph& g, NodeId u,
                      std::span<const std::uint32_t> map,
                      std::vector<double>& accum,
                      std::vector<NodeId>& touched) {
  touched.clear();
  for (const Incidence& inc : g.neighbors(u)) {
    if (map[inc.neighbor] != kUnmatched) continue;  // partner taken
    if (accum[inc.neighbor] == 0.0) touched.push_back(inc.neighbor);
    accum[inc.neighbor] += g.edge(inc.edge).weight;
  }
  NodeId best = kUnmatched;
  double best_w = 0.0;
  for (const NodeId v : touched) {
    // Heaviest aggregate weight; ties resolve toward the smallest id so
    // the matching is a pure function of the edge stream.
    if (accum[v] > best_w || (accum[v] == best_w && v < best)) {
      best = v;
      best_w = accum[v];
    }
    accum[v] = 0.0;
  }
  return best;
}

}  // namespace

bool coarsen_engaged(const CoarsenOptions& opts, std::size_t num_nodes) {
  if (opts.mode == CoarsenMode::off) return false;
  if (opts.max_levels == 0) return false;
  return num_nodes >= opts.auto_threshold &&
         num_nodes > opts.coarsest_target;
}

std::vector<std::uint32_t> heavy_edge_matching(const Graph& g,
                                               std::size_t& num_coarse) {
  const std::size_t n = g.num_nodes();
  std::vector<std::uint32_t> map(n, kUnmatched);

  // Propose phase (parallel): candidate[u] = heaviest neighbor of u over all
  // neighbors. Per-node results are independent of each other and of match
  // state, so chunking is free of cross-chunk effects; each worker thread
  // keeps its own O(n) accumulation scratch (allocated once per thread,
  // cleared per node via the touched list, so the pass stays O(edges)).
  std::vector<NodeId> candidate(n, kUnmatched);
  runtime::parallel_for_chunks(
      0, n, kProposeGrain, [&](std::size_t lo, std::size_t hi) {
        static thread_local std::vector<double> accum;
        static thread_local std::vector<NodeId> touched;
        if (accum.size() < n) accum.assign(n, 0.0);
        for (std::size_t u = lo; u < hi; ++u)
          candidate[u] =
              propose_partner(g, static_cast<NodeId>(u), accum, touched);
      });

  // Resolve phase (serial, ascending id): when u is still unmatched and its
  // proposed partner is too, the proposal IS the serial greedy choice — the
  // unmatched argmax cannot beat the global argmax, and the proposal being
  // unmatched means the global argmax is attained inside the unmatched set
  // with the same smallest-id tie-break. Any earlier-taken proposal falls
  // back to the exact serial scan, so by induction the whole map matches the
  // historical serial algorithm bit for bit.
  std::vector<double> accum(n, 0.0);
  std::vector<NodeId> touched;
  std::uint32_t next = 0;
  for (std::size_t u = 0; u < n; ++u) {
    if (map[u] != kUnmatched) continue;
    NodeId best = candidate[u];
    if (best != kUnmatched && map[best] != kUnmatched)
      best = serial_partner(g, static_cast<NodeId>(u), map, accum, touched);
    map[u] = next;
    if (best != kUnmatched) map[best] = next;
    ++next;
  }
  num_coarse = next;
  return map;
}

Graph aggregate_graph(const Graph& g, std::span<const std::uint32_t> map,
                      std::size_t num_coarse) {
  if (map.size() != g.num_nodes())
    throw std::invalid_argument("aggregate_graph: map size != node count");
  struct Triplet {
    std::uint32_t a;
    std::uint32_t b;
    double w;
  };
  // Classify phase (parallel): each edge writes its (sorted coarse pair,
  // weight) triplet — or an intra-aggregate tombstone — into its own slot,
  // so chunks never contend and the slot order is the fine edge order.
  const std::span<const Edge> edges = g.edges();
  const std::size_t m = edges.size();
  std::vector<Triplet> slots(m);
  std::atomic<bool> out_of_range{false};
  runtime::parallel_for_chunks(
      0, m, kTripletGrain, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          const Edge& e = edges[i];
          const std::uint32_t a = map[e.u];
          const std::uint32_t b = map[e.v];
          if (a >= num_coarse || b >= num_coarse) {
            out_of_range.store(true, std::memory_order_relaxed);
            slots[i] = {kUnmatched, kUnmatched, 0.0};
            continue;
          }
          if (a == b) {
            // Intra-aggregate edge: Pᵀ L P drops it.
            slots[i] = {kUnmatched, kUnmatched, 0.0};
            continue;
          }
          slots[i] = {std::min(a, b), std::max(a, b), e.weight};
        }
      });
  if (out_of_range.load())
    throw std::invalid_argument("aggregate_graph: map entry out of range");
  // Compact + sort (parallel): per-chunk compact preserving edge order and a
  // local stable sort, then a pairwise stable merge tree. Chunk boundaries
  // are a function of kTripletGrain alone, and a stable sort's output is the
  // unique stability-preserving permutation of its input, so the final
  // triplet sequence — and with it the weight summation order and the coarse
  // weight bits — is byte-identical to the historical serial compact +
  // std::stable_sort at every thread count, while the O(m log m) comparison
  // work runs on all cores.
  const auto less = [](const Triplet& l, const Triplet& r) {
    return l.a != r.a ? l.a < r.a : l.b < r.b;
  };
  const std::size_t num_runs =
      m == 0 ? 0 : (m + kTripletGrain - 1) / kTripletGrain;
  std::vector<std::vector<Triplet>> runs(num_runs);
  runtime::parallel_for_chunks(
      0, m, kTripletGrain, [&](std::size_t lo, std::size_t hi) {
        std::vector<Triplet>& run = runs[lo / kTripletGrain];
        run.reserve(hi - lo);
        for (std::size_t i = lo; i < hi; ++i)
          if (slots[i].a != kUnmatched) run.push_back(slots[i]);
        std::stable_sort(run.begin(), run.end(), less);
      });
  while (runs.size() > 1) {
    // std::merge takes from the left range on ties, so every tree level
    // preserves fine-edge order within equal coarse pairs.
    const std::size_t pairs = runs.size() / 2;
    std::vector<std::vector<Triplet>> next((runs.size() + 1) / 2);
    runtime::parallel_for_chunks(
        0, pairs, 1, [&](std::size_t lo, std::size_t hi) {
          for (std::size_t p = lo; p < hi; ++p) {
            std::vector<Triplet>& out = next[p];
            out.resize(runs[2 * p].size() + runs[2 * p + 1].size());
            std::merge(runs[2 * p].begin(), runs[2 * p].end(),
                       runs[2 * p + 1].begin(), runs[2 * p + 1].end(),
                       out.begin(), less);
          }
        });
    if (runs.size() % 2) next.back() = std::move(runs.back());
    runs = std::move(next);
  }
  const std::vector<Triplet> triplets =
      runs.empty() ? std::vector<Triplet>{} : std::move(runs.front());
  Graph coarse(num_coarse);
  std::size_t i = 0;
  while (i < triplets.size()) {
    std::size_t j = i;
    double w = 0.0;
    while (j < triplets.size() && triplets[j].a == triplets[i].a &&
           triplets[j].b == triplets[i].b) {
      w += triplets[j].w;
      ++j;
    }
    coarse.add_edge(triplets[i].a, triplets[i].b, w);
    i = j;
  }
  return coarse;
}

namespace {

/// Shared stop logic of both hierarchy builders: keep coarsening while the
/// current level is above target, rounds keep shrinking, and the depth cap
/// has room.
bool another_round(const CoarsenOptions& opts, std::size_t current_n,
                   std::size_t levels_built) {
  return current_n > opts.coarsest_target && levels_built < opts.max_levels;
}

bool round_productive(const CoarsenOptions& opts, std::size_t fine_n,
                      std::size_t coarse_n) {
  return coarse_n < fine_n &&
         static_cast<double>(coarse_n) <
             opts.min_shrink * static_cast<double>(fine_n);
}

}  // namespace

CoarsenHierarchy coarsen_graph(const Graph& g, const CoarsenOptions& opts) {
  static const obs::Counter rounds("coarsen.matching_rounds");
  CoarsenHierarchy out;
  const Graph* current = &g;
  while (another_round(opts, current->num_nodes(), out.levels.size())) {
    std::size_t num_coarse = 0;
    std::vector<std::uint32_t> map = heavy_edge_matching(*current, num_coarse);
    rounds.add();
    if (!round_productive(opts, current->num_nodes(), num_coarse)) break;
    CoarsenLevel level;
    level.graph = aggregate_graph(*current, map, num_coarse);
    level.map = std::move(map);
    out.levels.push_back(std::move(level));
    current = &out.levels.back().graph;
  }
  return out;
}

CoarsenPairHierarchy coarsen_pair(const Graph& x, const Graph& y,
                                  const CoarsenOptions& opts) {
  if (x.num_nodes() != y.num_nodes())
    throw std::invalid_argument("coarsen_pair: node-count mismatch");
  static const obs::Counter rounds("coarsen.matching_rounds");
  CoarsenPairHierarchy out;

  // The matching runs on the edge-weight union of both sides so one P
  // respects the connectivity of L_X and L_Y alike.
  const auto make_union = [](const Graph& a, const Graph& b) {
    Graph u(a.num_nodes());
    for (const Edge& e : a.edges()) u.add_edge(e.u, e.v, e.weight);
    for (const Edge& e : b.edges()) u.add_edge(e.u, e.v, e.weight);
    return u;
  };

  Graph combined = make_union(x, y);
  const Graph* cx = &x;
  const Graph* cy = &y;
  while (another_round(opts, combined.num_nodes(), out.maps.size())) {
    std::size_t num_coarse = 0;
    std::vector<std::uint32_t> map = heavy_edge_matching(combined, num_coarse);
    rounds.add();
    if (!round_productive(opts, combined.num_nodes(), num_coarse)) break;
    out.x_levels.push_back(aggregate_graph(*cx, map, num_coarse));
    out.y_levels.push_back(aggregate_graph(*cy, map, num_coarse));
    combined = aggregate_graph(combined, map, num_coarse);
    out.maps.push_back(std::move(map));
    cx = &out.x_levels.back();
    cy = &out.y_levels.back();
  }
  return out;
}

}  // namespace cirstag::graphs
