#include "io/snapshot.hpp"

#include <cstring>
#include <fstream>
#include <span>
#include <type_traits>
#include <utility>

#include "obs/health.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"

namespace cirstag::io {

namespace {

constexpr char kMagic[8] = {'C', 'S', 'T', 'G', 'S', 'N', 'A', 'P'};
constexpr std::uint32_t kEndianProbe = 0x01020304u;
constexpr std::size_t kHeaderBytes = 64;
constexpr std::size_t kAlignment = 64;

// Section ids (the table is id-keyed, so future versions can append
// sections without disturbing existing readers).
enum SectionId : std::uint64_t {
  kSectionMeta = 1,
  kSectionNetlist = 2,
  kSectionGnn = 3,
  kSectionSweep = 4,
};

const obs::Counter& snapshot_writes() {
  static const obs::Counter c("snapshot.writes");
  return c;
}
const obs::Counter& snapshot_reads() {
  static const obs::Counter c("snapshot.reads");
  return c;
}
const obs::Counter& snapshot_read_failures() {
  static const obs::Counter c("snapshot.read_failures");
  return c;
}

[[noreturn]] void fail(const std::string& path, const std::string& reason) {
  snapshot_read_failures().add();
  obs::record_health_event("snapshot.corrupt",
                           "snapshot '" + path + "': " + reason, 0.0, 0.0,
                           obs::HealthSeverity::error);
  throw SnapshotError("snapshot '" + path + "': " + reason);
}

// --- byte-stream primitives -------------------------------------------------
// Scalars and arrays are written field-by-field (never whole structs, so
// padding bytes cannot leak) in host byte order; the header's endianness
// probe keeps cross-endian files out.

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { raw(&v, sizeof v); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void f64(double v) { raw(&v, sizeof v); }

  template <class T>
  void array(std::span<const T> values) {
    static_assert(std::is_trivially_copyable_v<T>);
    u64(values.size());
    raw(values.data(), values.size() * sizeof(T));
  }

  void raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return buf_; }

 private:
  std::vector<std::uint8_t> buf_;
};

class ByteReader {
 public:
  ByteReader(std::span<const std::uint8_t> data, std::string path,
             std::string section)
      : data_(data), path_(std::move(path)), section_(std::move(section)) {}

  std::uint8_t u8() {
    std::uint8_t v = 0;
    raw(&v, sizeof v);
    return v;
  }
  std::uint16_t u16() {
    std::uint16_t v = 0;
    raw(&v, sizeof v);
    return v;
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    raw(&v, sizeof v);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    raw(&v, sizeof v);
    return v;
  }
  double f64() {
    double v = 0.0;
    raw(&v, sizeof v);
    return v;
  }

  template <class T>
  std::vector<T> array() {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::uint64_t count = u64();
    // Overflow-safe bound: the count must fit in the remaining bytes.
    if (count > (data_.size() - pos_) / sizeof(T))
      truncated("array of " + std::to_string(count) + " elements");
    std::vector<T> out(count);
    raw(out.data(), count * sizeof(T));
    return out;
  }

  void raw(void* out, std::size_t n) {
    if (n > data_.size() - pos_) truncated(std::to_string(n) + " bytes");
    std::memcpy(out, data_.data() + pos_, n);
    pos_ += n;
  }

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

 private:
  [[noreturn]] void truncated(const std::string& what) {
    fail(path_, "truncated " + section_ + " section (need " + what + ", " +
                    std::to_string(remaining()) + " bytes left)");
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  std::string path_;
  std::string section_;
};

// --- composite writers/readers ----------------------------------------------

void write_matrix(ByteWriter& w, const linalg::Matrix& m) {
  w.u64(m.rows());
  w.u64(m.cols());
  w.raw(m.data().data(), m.data().size() * sizeof(double));
}

linalg::Matrix read_matrix(ByteReader& r, const std::string& path) {
  const std::uint64_t rows = r.u64();
  const std::uint64_t cols = r.u64();
  if (cols > r.remaining() / sizeof(double) ||
      (cols != 0 && rows > r.remaining() / (cols * sizeof(double))))
    fail(path, "matrix dimensions exceed file size");
  linalg::Matrix m(rows, cols);
  r.raw(m.data().data(), rows * cols * sizeof(double));
  return m;
}

void write_graph(ByteWriter& w, const graphs::Graph& g) {
  w.u64(g.num_nodes());
  w.u64(g.num_edges());
  for (const graphs::Edge& e : g.edges()) {
    w.u32(e.u);
    w.u32(e.v);
    w.f64(e.weight);
  }
}

graphs::Graph read_graph(ByteReader& r, const std::string& path) {
  const std::uint64_t n = r.u64();
  const std::uint64_t m = r.u64();
  if (m > r.remaining() / 16) fail(path, "graph edge count exceeds file size");
  graphs::Graph g(n);
  for (std::uint64_t e = 0; e < m; ++e) {
    const std::uint32_t u = r.u32();
    const std::uint32_t v = r.u32();
    const double w = r.f64();
    // add_edge validates endpoints, self-loops, and weight positivity —
    // corrupt content surfaces as a clean failure here.
    g.add_edge(u, v, w);
  }
  return g;
}

void write_knn_baseline(ByteWriter& w, const graphs::KnnBaseline& b) {
  write_matrix(w, b.points);
  w.u64(b.k);
  w.u64(b.hits.size());
  for (const std::vector<graphs::Neighbor>& list : b.hits) {
    w.u64(list.size());
    for (const graphs::Neighbor& nb : list) {
      w.u64(nb.index);
      w.f64(nb.distance2);
    }
  }
  write_graph(w, b.graph);
}

graphs::KnnBaseline read_knn_baseline(ByteReader& r, const std::string& path) {
  graphs::KnnBaseline b;
  b.points = read_matrix(r, path);
  b.k = r.u64();
  const std::uint64_t lists = r.u64();
  if (lists > r.remaining() / 8) fail(path, "kNN list count exceeds file size");
  b.hits.resize(lists);
  for (std::uint64_t i = 0; i < lists; ++i) {
    const std::uint64_t count = r.u64();
    if (count > r.remaining() / 16)
      fail(path, "kNN neighbor count exceeds file size");
    b.hits[i].resize(count);
    for (std::uint64_t j = 0; j < count; ++j) {
      b.hits[i][j].index = r.u64();
      b.hits[i][j].distance2 = r.f64();
      if (b.hits[i][j].index >= b.points.rows())
        fail(path, "kNN neighbor index out of range");
    }
  }
  b.graph = read_graph(r, path);
  return b;
}

void write_report(ByteWriter& w, const core::CirStagReport& rep) {
  w.array<double>(rep.node_scores);
  w.array<double>(rep.edge_scores);
  w.array<double>(rep.eigenvalues);
  write_matrix(w, rep.weighted_subspace);
  write_graph(w, rep.manifold_x);
  write_graph(w, rep.manifold_y);
  write_matrix(w, rep.input_embedding);
  w.f64(rep.timings.embedding_seconds);
  w.f64(rep.timings.manifold_seconds);
  w.f64(rep.timings.stability_seconds);
  w.f64(rep.timings.embedding_busy_seconds);
  w.f64(rep.timings.manifold_busy_seconds);
  w.f64(rep.timings.stability_busy_seconds);
  w.u64(rep.timings.threads);
  w.u64(rep.checksums.input_graph);
  w.u64(rep.checksums.embedding);
  w.u64(rep.checksums.manifold_x);
  w.u64(rep.checksums.manifold_y);
  w.u64(rep.checksums.eigenvalues);
  w.u64(rep.checksums.node_scores);
  w.u64(rep.checksums.edge_scores);
  w.f64(rep.node_score_mean);
  // HealthReport is deliberately not serialized: restored circuits start
  // with a clean health ledger (events belong to the run that raised them).
}

core::CirStagReport read_report(ByteReader& r, const std::string& path) {
  core::CirStagReport rep;
  rep.node_scores = r.array<double>();
  rep.edge_scores = r.array<double>();
  rep.eigenvalues = r.array<double>();
  rep.weighted_subspace = read_matrix(r, path);
  rep.manifold_x = read_graph(r, path);
  rep.manifold_y = read_graph(r, path);
  rep.input_embedding = read_matrix(r, path);
  rep.timings.embedding_seconds = r.f64();
  rep.timings.manifold_seconds = r.f64();
  rep.timings.stability_seconds = r.f64();
  rep.timings.embedding_busy_seconds = r.f64();
  rep.timings.manifold_busy_seconds = r.f64();
  rep.timings.stability_busy_seconds = r.f64();
  rep.timings.threads = r.u64();
  rep.checksums.input_graph = r.u64();
  rep.checksums.embedding = r.u64();
  rep.checksums.manifold_x = r.u64();
  rep.checksums.manifold_y = r.u64();
  rep.checksums.eigenvalues = r.u64();
  rep.checksums.node_scores = r.u64();
  rep.checksums.edge_scores = r.u64();
  rep.node_score_mean = r.f64();
  return rep;
}

// --- section payloads -------------------------------------------------------

std::vector<std::uint8_t> build_meta_section(const SnapshotMeta& meta) {
  ByteWriter w;
  w.u8(meta.exact ? 1 : 0);
  w.f64(meta.train_r2);
  return w.bytes();
}

std::vector<std::uint8_t> build_netlist_section(
    const circuit::Netlist& nl) {
  ByteWriter w;
  w.u64(nl.num_pins());
  for (const circuit::Pin& p : nl.pins()) {
    w.u8(static_cast<std::uint8_t>(p.kind));
    w.u32(p.gate);
    w.u32(p.net);
    w.f64(p.capacitance);
  }
  w.u64(nl.num_gates());
  for (const circuit::Gate& g : nl.gates()) {
    w.u16(g.type);
    w.u32(g.module_label);
    w.u32(g.output);
    w.array<circuit::PinId>(g.inputs);
  }
  w.u64(nl.num_nets());
  for (const circuit::Net& n : nl.nets()) {
    w.u32(n.driver);
    w.f64(n.wire_resistance);
    w.f64(n.wire_capacitance);
    w.array<circuit::PinId>(n.sinks);
  }
  w.array<circuit::PinId>(nl.primary_inputs());
  w.array<circuit::PinId>(nl.primary_outputs());
  return w.bytes();
}

std::vector<std::uint8_t> build_gnn_section(gnn::TimingGnn& model) {
  ByteWriter w;
  const gnn::TimingGnnOptions& o = model.options();
  w.u64(o.hidden_dim);
  w.u64(o.num_conv_layers);
  w.u8(o.use_dag_propagation ? 1 : 0);
  w.u64(o.epochs);
  w.f64(o.learning_rate);
  w.f64(o.grad_clip);
  w.u64(o.seed);
  const std::vector<gnn::Param*> params = model.trainable_params();
  w.u64(params.size());
  for (const gnn::Param* p : params) write_matrix(w, p->value);
  w.array<double>(model.feature_scaler().mean());
  w.array<double>(model.feature_scaler().inv_std());
  w.f64(model.target_mean());
  w.f64(model.target_scale());
  return w.bytes();
}

std::vector<std::uint8_t> build_sweep_section(
    const core::SweepBaselineState& s) {
  ByteWriter w;
  write_report(w, s.baseline);
  write_matrix(w, s.u0);
  write_matrix(w, s.raw_subspace0);
  const bool has_knn = s.mx.knn.points.rows() > 0 || s.my.knn.points.rows() > 0;
  w.u8(has_knn ? 1 : 0);
  if (has_knn) {
    write_knn_baseline(w, s.mx.knn);
    write_graph(w, s.mx.manifold);
    write_knn_baseline(w, s.my.knn);
    write_graph(w, s.my.manifold);
  }
  w.u64(s.hier0.maps.size());
  for (std::size_t l = 0; l < s.hier0.maps.size(); ++l) {
    w.array<std::uint32_t>(s.hier0.maps[l]);
    write_graph(w, s.hier0.x_levels[l]);
    write_graph(w, s.hier0.y_levels[l]);
  }
  w.u64(s.hier_key.hash);
  w.u64(s.hier_key.nodes);
  w.u64(s.hier_key.edges);
  w.u8(s.variant_tree.empty() ? 0 : 1);
  if (!s.variant_tree.empty()) {
    w.array<std::uint32_t>(s.variant_tree.parent());
    w.array<std::uint32_t>(s.variant_tree.order());
    w.array<double>(s.variant_tree.multipliers());
    w.array<double>(s.variant_tree.inv_diag());
  }
  w.f64(s.baseline_seconds);
  return w.bytes();
}

// --- header/table assembly --------------------------------------------------

std::uint64_t checksum_bytes(std::span<const std::uint8_t> bytes) {
  std::uint64_t h = obs::kFnv1aOffset;
  for (const std::uint8_t b : bytes) h = obs::fnv1a_byte(h, b);
  return h;
}

void put_u32(std::uint8_t* out, std::uint32_t v) {
  std::memcpy(out, &v, sizeof v);
}
void put_u64(std::uint8_t* out, std::uint64_t v) {
  std::memcpy(out, &v, sizeof v);
}

}  // namespace

void write_snapshot(const std::string& path, gnn::TimingGnn& model,
                    core::SweepEngine& engine, const SnapshotMeta& meta) {
  const core::SweepBaselineState state = engine.export_baseline_state();

  struct Section {
    std::uint64_t id;
    std::vector<std::uint8_t> payload;
    std::uint64_t offset = 0;
  };
  std::vector<Section> sections;
  sections.push_back({kSectionMeta, build_meta_section(meta)});
  sections.push_back({kSectionNetlist, build_netlist_section(model.netlist())});
  sections.push_back({kSectionGnn, build_gnn_section(model)});
  sections.push_back({kSectionSweep, build_sweep_section(state)});

  // Section table sits right after the header; payloads are 64-byte aligned.
  const std::size_t table_bytes = sections.size() * 24;
  std::uint64_t cursor = kHeaderBytes + table_bytes;
  for (Section& s : sections) {
    cursor = (cursor + kAlignment - 1) / kAlignment * kAlignment;
    s.offset = cursor;
    cursor += s.payload.size();
  }
  const std::uint64_t file_size = cursor;

  std::vector<std::uint8_t> file(file_size, 0);
  std::uint8_t* table = file.data() + kHeaderBytes;
  for (const Section& s : sections) {
    put_u64(table, s.id);
    put_u64(table + 8, s.offset);
    put_u64(table + 16, s.payload.size());
    table += 24;
    std::memcpy(file.data() + s.offset, s.payload.data(), s.payload.size());
  }

  std::memcpy(file.data(), kMagic, sizeof kMagic);
  put_u32(file.data() + 8, kEndianProbe);
  put_u32(file.data() + 12, kSnapshotFormatVersion);
  put_u64(file.data() + 16,
          checksum_bytes({file.data() + kHeaderBytes,
                          file.size() - kHeaderBytes}));
  put_u64(file.data() + 24, file_size);
  put_u64(file.data() + 32, sections.size());

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out)
    throw SnapshotError("snapshot '" + path + "': cannot open for writing");
  out.write(reinterpret_cast<const char*>(file.data()),
            static_cast<std::streamsize>(file.size()));
  if (!out)
    throw SnapshotError("snapshot '" + path + "': write failed");
  snapshot_writes().add();
  static const obs::Gauge bytes_gauge("snapshot.bytes");
  bytes_gauge.set(static_cast<double>(file.size()));
}

SnapshotData read_snapshot(const std::string& path,
                           const circuit::CellLibrary& lib) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) fail(path, "cannot open");
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> file(static_cast<std::size_t>(size));
  if (!in.read(reinterpret_cast<char*>(file.data()), size))
    fail(path, "read failed");

  if (file.size() < kHeaderBytes) fail(path, "truncated header");
  if (std::memcmp(file.data(), kMagic, sizeof kMagic) != 0)
    fail(path, "bad magic (not a cirstag snapshot)");
  std::uint32_t probe = 0;
  std::memcpy(&probe, file.data() + 8, sizeof probe);
  if (probe != kEndianProbe)
    fail(path, "endianness mismatch (written on a different-endian host)");
  std::uint32_t version = 0;
  std::memcpy(&version, file.data() + 12, sizeof version);
  if (version != kSnapshotFormatVersion)
    fail(path, "unsupported format version " + std::to_string(version) +
                   " (expected " + std::to_string(kSnapshotFormatVersion) +
                   ")");
  std::uint64_t stored_checksum = 0, stored_size = 0, section_count = 0;
  std::memcpy(&stored_checksum, file.data() + 16, 8);
  std::memcpy(&stored_size, file.data() + 24, 8);
  std::memcpy(&section_count, file.data() + 32, 8);
  if (stored_size != file.size())
    fail(path, "file size mismatch (header says " +
                   std::to_string(stored_size) + ", file has " +
                   std::to_string(file.size()) + " bytes)");
  const std::uint64_t actual_checksum = checksum_bytes(
      {file.data() + kHeaderBytes, file.size() - kHeaderBytes});
  if (actual_checksum != stored_checksum)
    fail(path, "checksum mismatch (corrupt payload)");
  if (section_count > (file.size() - kHeaderBytes) / 24)
    fail(path, "section table exceeds file size");

  // Parse the section table into bounded payload spans.
  std::span<const std::uint8_t> meta_span, netlist_span, gnn_span, sweep_span;
  for (std::uint64_t i = 0; i < section_count; ++i) {
    const std::uint8_t* entry = file.data() + kHeaderBytes + i * 24;
    std::uint64_t id = 0, offset = 0, length = 0;
    std::memcpy(&id, entry, 8);
    std::memcpy(&offset, entry + 8, 8);
    std::memcpy(&length, entry + 16, 8);
    if (offset > file.size() || length > file.size() - offset)
      fail(path, "section " + std::to_string(id) + " out of bounds");
    const std::span<const std::uint8_t> payload{file.data() + offset, length};
    switch (id) {
      case kSectionMeta: meta_span = payload; break;
      case kSectionNetlist: netlist_span = payload; break;
      case kSectionGnn: gnn_span = payload; break;
      case kSectionSweep: sweep_span = payload; break;
      default: break;  // unknown sections are skippable by design
    }
  }
  if (meta_span.empty() || netlist_span.empty() || gnn_span.empty() ||
      sweep_span.empty())
    fail(path, "missing required section");

  SnapshotData data{.netlist = circuit::Netlist(lib)};
  try {
    {
      ByteReader r(meta_span, path, "meta");
      data.meta.exact = r.u8() != 0;
      data.meta.train_r2 = r.f64();
    }
    {
      ByteReader r(netlist_span, path, "netlist");
      const std::uint64_t np = r.u64();
      if (np > netlist_span.size() / 17)
        fail(path, "pin count exceeds section size");
      std::vector<circuit::Pin> pins(np);
      for (circuit::Pin& p : pins) {
        const std::uint8_t kind = r.u8();
        if (kind > static_cast<std::uint8_t>(circuit::PinKind::CellOutput))
          fail(path, "invalid pin kind");
        p.kind = static_cast<circuit::PinKind>(kind);
        p.gate = r.u32();
        p.net = r.u32();
        p.capacitance = r.f64();
      }
      const std::uint64_t ng = r.u64();
      if (ng > netlist_span.size() / 18)
        fail(path, "gate count exceeds section size");
      std::vector<circuit::Gate> gates(ng);
      for (circuit::Gate& g : gates) {
        g.type = r.u16();
        g.module_label = r.u32();
        g.output = r.u32();
        g.inputs = r.array<circuit::PinId>();
      }
      const std::uint64_t nn = r.u64();
      if (nn > netlist_span.size() / 28)
        fail(path, "net count exceeds section size");
      std::vector<circuit::Net> nets(nn);
      for (circuit::Net& n : nets) {
        n.driver = r.u32();
        n.wire_resistance = r.f64();
        n.wire_capacitance = r.f64();
        n.sinks = r.array<circuit::PinId>();
      }
      std::vector<circuit::PinId> pis = r.array<circuit::PinId>();
      std::vector<circuit::PinId> pos = r.array<circuit::PinId>();
      // from_parts range-checks every cross-reference and finalize()
      // re-validates connectivity/acyclicity — corrupt structure that
      // survived the checksum still fails cleanly here.
      data.netlist = circuit::Netlist::from_parts(
          lib, std::move(pins), std::move(gates), std::move(nets),
          std::move(pis), std::move(pos));
    }
    {
      ByteReader r(gnn_span, path, "gnn");
      data.gnn_options.hidden_dim = r.u64();
      data.gnn_options.num_conv_layers = r.u64();
      data.gnn_options.use_dag_propagation = r.u8() != 0;
      data.gnn_options.epochs = r.u64();
      data.gnn_options.learning_rate = r.f64();
      data.gnn_options.grad_clip = r.f64();
      data.gnn_options.seed = r.u64();
      const std::uint64_t params = r.u64();
      if (params > gnn_span.size() / 16)
        fail(path, "parameter count exceeds section size");
      data.gnn_params.reserve(params);
      for (std::uint64_t i = 0; i < params; ++i)
        data.gnn_params.push_back(read_matrix(r, path));
      data.scaler_mean = r.array<double>();
      data.scaler_inv_std = r.array<double>();
      data.target_mean = r.f64();
      data.target_scale = r.f64();
    }
    {
      ByteReader r(sweep_span, path, "sweep");
      core::SweepBaselineState& s = data.state;
      s.baseline = read_report(r, path);
      s.u0 = read_matrix(r, path);
      s.raw_subspace0 = read_matrix(r, path);
      if (r.u8() != 0) {
        s.mx.knn = read_knn_baseline(r, path);
        s.mx.manifold = read_graph(r, path);
        s.my.knn = read_knn_baseline(r, path);
        s.my.manifold = read_graph(r, path);
      }
      const std::uint64_t levels = r.u64();
      if (levels > sweep_span.size() / 24)
        fail(path, "hierarchy level count exceeds section size");
      for (std::uint64_t l = 0; l < levels; ++l) {
        s.hier0.maps.push_back(r.array<std::uint32_t>());
        s.hier0.x_levels.push_back(read_graph(r, path));
        s.hier0.y_levels.push_back(read_graph(r, path));
      }
      s.hier_key.hash = r.u64();
      s.hier_key.nodes = r.u64();
      s.hier_key.edges = r.u64();
      if (r.u8() != 0) {
        std::vector<std::uint32_t> parent = r.array<std::uint32_t>();
        std::vector<std::uint32_t> order = r.array<std::uint32_t>();
        std::vector<double> mult = r.array<double>();
        std::vector<double> inv_diag = r.array<double>();
        s.variant_tree = linalg::TreeFactorization::from_state(
            std::move(parent), std::move(order), std::move(mult),
            std::move(inv_diag));
      }
      s.baseline_seconds = r.f64();
    }
  } catch (const SnapshotError&) {
    throw;
  } catch (const std::exception& e) {
    // Structural validation inside Netlist/Graph/TreeFactorization throws
    // std::invalid_argument & friends; surface them as snapshot corruption.
    fail(path, e.what());
  }
  snapshot_reads().add();
  return data;
}

std::unique_ptr<gnn::TimingGnn> restore_model(const circuit::Netlist& netlist,
                                              const SnapshotData& data) {
  auto model = std::make_unique<gnn::TimingGnn>(netlist, data.gnn_options);
  try {
    model->restore_trained_state(data.gnn_params, data.scaler_mean,
                                 data.scaler_inv_std, data.target_mean,
                                 data.target_scale);
  } catch (const std::exception& e) {
    throw SnapshotError(std::string("snapshot model restore: ") + e.what());
  }
  return model;
}

}  // namespace cirstag::io
