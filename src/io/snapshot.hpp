#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "circuit/cell_library.hpp"
#include "circuit/netlist.hpp"
#include "core/sweep.hpp"
#include "gnn/timing_gnn.hpp"
#include "linalg/matrix.hpp"

namespace cirstag::io {

/// Binary circuit-snapshot format (DESIGN.md §13): one versioned,
/// checksummed container holding everything expensive about a resident
/// circuit — the finalized netlist, the trained GNN weights, and the sweep
/// engine's warm baseline (spectral embedding, manifolds, Phase-3 report and
/// eigenbasis, coarsening hierarchy, factored spanning-tree preconditioner).
/// Restoring a snapshot re-trains nothing and re-solves nothing: the restore
/// path runs zero eigensolves (`eigen.runs` stays 0) and zero training
/// epochs (`gnn.train_epochs` stays 0); only the cheap derived state (pin
/// graph, one GNN forward, one STA traversal) is recomputed.
///
/// On-disk layout: a 64-byte header (magic, native-endianness probe, format
/// version, FNV-1a payload checksum, file size, section count), then a
/// section table and 64-byte-aligned section payloads. Numeric arrays are
/// stored in host byte order for zero-transform bulk I/O; the endianness
/// probe rejects files written on a different-endianness host cleanly
/// instead of deserializing garbage. Every malformed input — truncation,
/// flipped bits, wrong magic/version/endianness, out-of-range
/// cross-references — throws SnapshotError after recording a
/// "snapshot.corrupt" health event; a corrupt file can never crash the
/// reader or produce a half-restored circuit.

inline constexpr std::uint32_t kSnapshotFormatVersion = 1;

/// Every snapshot failure mode (I/O, corruption, shape mismatch).
class SnapshotError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Snapshot-level metadata carried alongside the state sections.
struct SnapshotMeta {
  /// SweepOptions::exact of the exporting engine — the restore path builds
  /// its engine in the same mode so the adopted warm state stays valid.
  bool exact = true;
  double train_r2 = 0.0;  ///< training diagnostic, surfaced by /health
};

/// Everything read back from a snapshot file, in address-stable-free form:
/// the caller first moves `netlist` to its final home, then builds the model
/// against that address with restore_model(), then hands `state` to
/// SweepEngine's restoring constructor.
struct SnapshotData {
  circuit::Netlist netlist;  ///< finalized
  gnn::TimingGnnOptions gnn_options;
  std::vector<linalg::Matrix> gnn_params;
  std::vector<double> scaler_mean;
  std::vector<double> scaler_inv_std;
  double target_mean = 0.0;
  double target_scale = 1.0;
  core::SweepBaselineState state;
  SnapshotMeta meta;
};

/// Serialize a trained model + warm sweep engine to `path`. `model` and
/// `engine` must be built over the same netlist; non-const because the
/// export may build the variant-phase solver through the engine's cache.
/// Throws SnapshotError on I/O failure.
void write_snapshot(const std::string& path, gnn::TimingGnn& model,
                    core::SweepEngine& engine, const SnapshotMeta& meta);

/// Read and validate a snapshot. `lib` must outlive the returned netlist
/// (serve keeps a static standard library for exactly this reason).
/// Throws SnapshotError on any corruption or I/O failure.
[[nodiscard]] SnapshotData read_snapshot(const std::string& path,
                                         const circuit::CellLibrary& lib);

/// Construct a TimingGnn over `netlist` (which must be the restored
/// netlist, at its final address) and load the snapshot's trained state
/// into it — no training runs. Throws SnapshotError on shape mismatch.
[[nodiscard]] std::unique_ptr<gnn::TimingGnn> restore_model(
    const circuit::Netlist& netlist, const SnapshotData& data);

}  // namespace cirstag::io
