#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/rng.hpp"
#include "util/aligned.hpp"

namespace cirstag::linalg {

/// Dense row-major matrix of doubles.
///
/// Used for embedding matrices (N x M), GNN activations/weights, and small
/// Rayleigh-Ritz projections. Deliberately minimal: value semantics, bounds
/// unchecked in release (asserted in debug via at()).
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Bounds-checked access; throws std::out_of_range.
  double& at(std::size_t r, std::size_t c);
  [[nodiscard]] double at(std::size_t r, std::size_t c) const;

  [[nodiscard]] std::span<double> row(std::size_t r) {
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const double> row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }

  [[nodiscard]] std::vector<double> col(std::size_t c) const;
  void set_col(std::size_t c, std::span<const double> v);

  [[nodiscard]] std::span<double> data() { return data_; }
  [[nodiscard]] std::span<const double> data() const { return data_; }

  void fill(double v);

  /// Every entry drawn i.i.d. N(mean, stddev) — GNN weight init.
  static Matrix random_normal(std::size_t rows, std::size_t cols, Rng& rng,
                              double mean = 0.0, double stddev = 1.0);

  /// Glorot/Xavier uniform init in [-limit, limit], limit = sqrt(6/(in+out)).
  static Matrix glorot(std::size_t in_dim, std::size_t out_dim, Rng& rng);

  static Matrix identity(std::size_t n);

  [[nodiscard]] Matrix transposed() const;

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double s);

  /// Frobenius norm.
  [[nodiscard]] double frobenius_norm() const;

  /// Squared Euclidean distance between rows r1 and r2 (embedding distance).
  [[nodiscard]] double row_distance2(std::size_t r1, std::size_t r2) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  // 64-byte-aligned so the SIMD kernel layer sees cache-line-aligned rows
  // whenever cols is a multiple of 8.
  std::vector<double, util::AlignedAllocator<double>> data_;
};

/// C = A * B
[[nodiscard]] Matrix matmul(const Matrix& a, const Matrix& b);

/// C = A^T * B
[[nodiscard]] Matrix matmul_at_b(const Matrix& a, const Matrix& b);

/// C = A * B^T
[[nodiscard]] Matrix matmul_a_bt(const Matrix& a, const Matrix& b);

/// y = A * x
[[nodiscard]] std::vector<double> matvec(const Matrix& a,
                                         std::span<const double> x);

}  // namespace cirstag::linalg
