#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"
#include "util/aligned.hpp"

namespace cirstag::linalg {

/// One (row, col, value) entry used to assemble a sparse matrix.
struct Triplet {
  std::size_t row = 0;
  std::size_t col = 0;
  double value = 0.0;
};

/// Compressed-sparse-row matrix of doubles.
///
/// The workhorse for Laplacians and normalized adjacency operators: built
/// once from triplets (duplicates summed), then used for mat-vecs inside CG,
/// Lanczos, and GNN message passing.
class SparseMatrix {
 public:
  SparseMatrix() = default;

  /// Assemble from triplets; duplicate (row, col) entries are summed and
  /// explicit zeros dropped.
  static SparseMatrix from_triplets(std::size_t rows, std::size_t cols,
                                    std::vector<Triplet> triplets);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t nnz() const { return values_.size(); }

  /// y = A x
  [[nodiscard]] std::vector<double> multiply(std::span<const double> x) const;

  /// y += alpha * A x
  void multiply_add(std::span<const double> x, std::span<double> y,
                    double alpha = 1.0) const;

  /// Y += alpha * A X — multi-vector SpMV, the block-CG workhorse. One CSR
  /// traversal is amortized across all columns of X (contiguous row-major
  /// blocks, row-partitioned over the parallel runtime). Each (row, column)
  /// output accumulates in exactly the order of the single-vector kernel, so
  /// column j of the result is bit-identical to multiply_add(X.col(j), ...).
  void multiply_add(const Matrix& x, Matrix& y, double alpha = 1.0) const;

  /// Dense product A * B (B dense, result dense). Used by GNN layers.
  [[nodiscard]] Matrix multiply(const Matrix& b) const;

  /// A^T as a new CSR matrix.
  [[nodiscard]] SparseMatrix transposed() const;

  /// Main-diagonal entries (zero where absent); Jacobi preconditioner.
  [[nodiscard]] std::vector<double> diagonal() const;

  /// Entry lookup; O(row nnz). Returns 0 for absent entries.
  [[nodiscard]] double coeff(std::size_t row, std::size_t col) const;

  /// Row access for iteration: column indices and values of row r.
  [[nodiscard]] std::span<const std::uint32_t> row_indices(std::size_t r) const;
  [[nodiscard]] std::span<const double> row_values(std::size_t r) const;

  [[nodiscard]] Matrix to_dense() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  // SoA layout tuned for the SIMD kernels (kernels/kernels.hpp): 32-bit
  // column indices halve index bandwidth and feed vpgatherdd-style loads;
  // 64-byte alignment keeps the value/index streams on cache-line starts.
  std::vector<std::size_t> row_ptr_;  // size rows_+1
  std::vector<std::uint32_t, util::AlignedAllocator<std::uint32_t>> col_idx_;
  std::vector<double, util::AlignedAllocator<double>> values_;
};

}  // namespace cirstag::linalg
