#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "linalg/cg.hpp"
#include "linalg/matrix.hpp"

namespace cirstag::linalg {

/// Abstract symmetric operator on a block of vectors: apply(X, Y) computes
/// Y = A X column-wise (X, Y row-major n×k with columns as the vectors).
using BlockLinearOperator = std::function<void(const Matrix&, Matrix&)>;

/// Per-column convergence report from a block-CG run.
struct BlockCgResult {
  Matrix solutions;                      ///< n×k, one solution per column
  std::vector<double> residuals;         ///< final relative residual per column
  std::vector<std::size_t> iterations;   ///< CG iterations per column
  std::vector<std::uint8_t> converged;   ///< per column
  std::vector<std::uint8_t> breakdown;   ///< pᵀAp ≤ 0 encountered
  std::size_t total_iterations = 0;      ///< Σ per-column iterations

  [[nodiscard]] bool all_converged() const {
    for (auto c : converged)
      if (!c) return false;
    return true;
  }
};

/// Multi-RHS (blocked) preconditioned conjugate gradient.
///
/// Runs k standard single-vector CG recurrences in lockstep: every iteration
/// performs ONE blocked operator application (amortizing each CSR traversal
/// across all k right-hand sides), while all scalar recurrences (α_j, β_j,
/// residual tests) are tracked per column. Columns that converge — or break
/// down — retire early: their solution, residual, and iterate state freeze
/// while the remaining columns keep iterating.
///
/// Determinism / equivalence contract: column j of the result is
/// BIT-IDENTICAL to `conjugate_gradient(op_j, b.col(j), ...)` with the same
/// options, preconditioner, and initial guess, at every thread count. This
/// holds because per-column reductions accumulate serially in row order
/// (matching the single-vector kernels) and the blocked operator applies
/// each column in the single-vector accumulation order.
///
/// `precond` may be empty (identity). `initial_guess` (nullptr = zero start)
/// warm-starts every column.
[[nodiscard]] BlockCgResult block_conjugate_gradient(
    const BlockLinearOperator& op, const Matrix& b,
    const BlockLinearOperator& precond = {}, const CgOptions& opts = {},
    const Matrix* initial_guess = nullptr);

}  // namespace cirstag::linalg
