#pragma once

#include <atomic>
#include <functional>
#include <span>
#include <vector>

#include "linalg/sparse.hpp"

namespace cirstag::linalg {

/// Abstract symmetric linear operator: apply(x, y) computes y = A x.
using LinearOperator =
    std::function<void(std::span<const double>, std::span<double>)>;

/// Options for the (preconditioned) conjugate-gradient solver.
struct CgOptions {
  double tolerance = 1e-10;       ///< relative residual target ||r||/||b||
  std::size_t max_iterations = 2000;
  /// Project iterates orthogonal to the all-ones vector. Required when
  /// solving singular Laplacian systems L x = b with 1^T b = 0.
  bool deflate_constant = false;
};

/// Convergence report from a CG run.
struct CgResult {
  std::vector<double> solution;
  double residual = 0.0;          ///< final relative residual
  std::size_t iterations = 0;
  bool converged = false;
};

/// Preconditioned conjugate gradient for SPD (or PSD-with-deflation) systems.
/// `precond` may be empty (identity). The operator must be symmetric.
/// `initial_guess` (if non-empty) warm-starts the iteration — crucial for
/// the repeated nearby solves inside subspace iteration.
[[nodiscard]] CgResult conjugate_gradient(
    const LinearOperator& op, std::span<const double> b, std::size_t n,
    const LinearOperator& precond = {}, const CgOptions& opts = {},
    std::span<const double> initial_guess = {});

/// Convenience solver for graph-Laplacian systems.
///
/// Wraps a Laplacian (or regularized Laplacian Θ = L + I/σ²) with a Jacobi
/// preconditioner; for the singular pure-Laplacian case, right-hand sides
/// and iterates are deflated against the constant vector (valid on connected
/// graphs). Used for effective-resistance computation and for applying
/// L_Y^+ inside the generalized eigensolver.
class LaplacianSolver {
 public:
  /// `regularization` is added to the diagonal (0 keeps L singular and
  /// enables constant-deflation instead).
  explicit LaplacianSolver(SparseMatrix laplacian, double regularization = 0.0,
                           CgOptions opts = {});

  /// Solve (L + regularization*I) x = b, optionally warm-started.
  /// Thread-safe: independent solves may run concurrently on one solver
  /// (the probe-parallel resistance sketch and edge-parallel DMD ratios
  /// rely on this); last_residual() then reports one of the recent solves.
  [[nodiscard]] std::vector<double> solve(
      std::span<const double> b,
      std::span<const double> initial_guess = {}) const;

  [[nodiscard]] const SparseMatrix& matrix() const { return laplacian_; }
  [[nodiscard]] double regularization() const { return regularization_; }
  [[nodiscard]] std::size_t dimension() const { return laplacian_.rows(); }

  /// Relative residual of the last solve (diagnostics).
  [[nodiscard]] double last_residual() const {
    return last_residual_.load(std::memory_order_relaxed);
  }

 private:
  SparseMatrix laplacian_;
  double regularization_;
  CgOptions opts_;
  std::vector<double> inv_diag_;  // Jacobi preconditioner
  mutable std::atomic<double> last_residual_{0.0};
};

}  // namespace cirstag::linalg
