#pragma once

#include <atomic>
#include <functional>
#include <span>
#include <vector>

#include "linalg/sparse.hpp"
#include "linalg/tree_precond.hpp"

namespace cirstag::linalg {

/// Abstract symmetric linear operator: apply(x, y) computes y = A x.
using LinearOperator =
    std::function<void(std::span<const double>, std::span<double>)>;

/// Options for the (preconditioned) conjugate-gradient solver.
struct CgOptions {
  double tolerance = 1e-10;       ///< relative residual target ||r||/||b||
  std::size_t max_iterations = 2000;
  /// Project iterates orthogonal to the all-ones vector. Required when
  /// solving singular Laplacian systems L x = b with 1^T b = 0.
  bool deflate_constant = false;
  /// The caller caps iterations deliberately and tolerates an unconverged
  /// result (the resistance sketch, whose JL error dwarfs a tighter solve;
  /// the Phase-3 subspace iteration, which tolerates inexact inner solves).
  /// Suppresses the "cg.unconverged" health event — hitting the cap is the
  /// design, not a numerical problem — unless the final residual exceeds
  /// kBudgetResidualAlarm, i.e. the budget assumption itself broke down.
  /// Breakdowns still report.
  bool budget_bounded = false;
};

/// Residual past which even a budget-bounded solve reports "unconverged":
/// a deliberate budget trims tail precision (the Phase-3 inner solves start
/// from a random subspace and legitimately land around 1e-2 on their first
/// sweeps); a residual still above 10% after the full budget means the
/// solve made no useful progress at all.
inline constexpr double kBudgetResidualAlarm = 1e-1;

/// Convergence report from a CG run.
struct CgResult {
  std::vector<double> solution;
  double residual = 0.0;          ///< final relative residual
  std::size_t iterations = 0;
  bool converged = false;
  /// The iteration hit an indefinite direction (pᵀAp ≤ 0) and stopped early;
  /// `residual` still reports the true relative residual at that point.
  bool breakdown = false;
};

/// Preconditioned conjugate gradient for SPD (or PSD-with-deflation) systems.
/// `precond` may be empty (identity). The operator must be symmetric.
/// `initial_guess` (if non-empty) warm-starts the iteration — crucial for
/// the repeated nearby solves inside subspace iteration.
[[nodiscard]] CgResult conjugate_gradient(
    const LinearOperator& op, std::span<const double> b, std::size_t n,
    const LinearOperator& precond = {}, const CgOptions& opts = {},
    std::span<const double> initial_guess = {});

/// Aggregate report from a multi-RHS LaplacianSolver::solve_block call.
struct BlockSolveStats {
  std::size_t total_iterations = 0;  ///< Σ per-column CG iterations
  std::size_t max_iterations = 0;    ///< slowest column
  bool all_converged = false;
};

/// Convenience solver for graph-Laplacian systems.
///
/// Wraps a Laplacian (or regularized Laplacian Θ = L + I/σ²) with a
/// preconditioner — Jacobi by default, or an O(n) spanning-tree LDLᵀ solve
/// when a `TreeFactorization` is supplied; for the singular pure-Laplacian
/// case, right-hand sides and iterates are deflated against the constant
/// vector (valid on connected graphs). Used for effective-resistance
/// computation and for applying L_Y^+ inside the generalized eigensolver.
class LaplacianSolver {
 public:
  /// `regularization` is added to the diagonal (0 keeps L singular and
  /// enables constant-deflation instead).
  explicit LaplacianSolver(SparseMatrix laplacian, double regularization = 0.0,
                           CgOptions opts = {});

  /// As above, with a combinatorial (spanning-tree) preconditioner replacing
  /// Jacobi. `tree` must factor a spanning forest of the same graph with
  /// diag_shift equal to `regularization`; an empty factorization falls back
  /// to Jacobi.
  LaplacianSolver(SparseMatrix laplacian, double regularization,
                  CgOptions opts, TreeFactorization tree);

  /// Movable despite the atomic diagnostics counters (move is not expected
  /// to race with solves; counters transfer by value).
  LaplacianSolver(LaplacianSolver&& other) noexcept
      : laplacian_(std::move(other.laplacian_)),
        regularization_(other.regularization_),
        opts_(other.opts_),
        inv_diag_(std::move(other.inv_diag_)),
        tree_(std::move(other.tree_)),
        last_residual_(
            other.last_residual_.load(std::memory_order_relaxed)),
        cumulative_iterations_(
            other.cumulative_iterations_.load(std::memory_order_relaxed)) {}
  LaplacianSolver& operator=(LaplacianSolver&&) = delete;

  /// Solve (L + regularization*I) x = b, optionally warm-started.
  /// Thread-safe: independent solves may run concurrently on one solver
  /// (the probe-parallel resistance sketch and edge-parallel DMD ratios
  /// rely on this); last_residual() then reports one of the recent solves.
  [[nodiscard]] std::vector<double> solve(
      std::span<const double> b,
      std::span<const double> initial_guess = {}) const;

  /// Solve all k columns of `rhs` simultaneously with blocked CG: one CSR
  /// traversal per iteration serves every right-hand side, and converged
  /// columns retire early. Column j of the result is bit-identical to
  /// solve(rhs.col(j), guess.col(j)) at every thread count (see
  /// block_conjugate_gradient). `initial_guess` may be nullptr.
  [[nodiscard]] Matrix solve_block(const Matrix& rhs,
                                   const Matrix* initial_guess = nullptr,
                                   BlockSolveStats* stats = nullptr) const;

  [[nodiscard]] const SparseMatrix& matrix() const { return laplacian_; }
  [[nodiscard]] double regularization() const { return regularization_; }
  [[nodiscard]] std::size_t dimension() const { return laplacian_.rows(); }
  [[nodiscard]] const CgOptions& options() const { return opts_; }
  [[nodiscard]] bool has_tree_preconditioner() const { return !tree_.empty(); }
  /// The combinatorial preconditioner's factorization (empty when Jacobi) —
  /// exported state for binary snapshots (io/snapshot).
  [[nodiscard]] const TreeFactorization& tree() const { return tree_; }

  /// Relative residual of the last solve (diagnostics).
  [[nodiscard]] double last_residual() const {
    return last_residual_.load(std::memory_order_relaxed);
  }

  /// Total CG iterations across every solve()/solve_block() on this solver —
  /// the per-row iteration counts behind the bench_micro solver benches.
  [[nodiscard]] std::size_t cumulative_iterations() const {
    return cumulative_iterations_.load(std::memory_order_relaxed);
  }

 private:
  SparseMatrix laplacian_;
  double regularization_;
  CgOptions opts_;
  std::vector<double> inv_diag_;  // Jacobi preconditioner
  TreeFactorization tree_;        // combinatorial preconditioner (optional)
  mutable std::atomic<double> last_residual_{0.0};
  mutable std::atomic<std::size_t> cumulative_iterations_{0};
};

}  // namespace cirstag::linalg
