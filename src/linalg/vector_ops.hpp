#pragma once

#include <cmath>
#include <span>
#include <stdexcept>
#include <vector>

#include "kernels/kernels.hpp"

/// Free-function BLAS-1 style helpers over std::vector<double>.
///
/// All of these forward to the runtime-dispatched kernel layer
/// (kernels/kernels.hpp): reductions use the canonical fixed-shape lane tree
/// and updates contract with fma, so results are bit-identical across the
/// scalar and AVX2 paths and across thread counts.
namespace cirstag::linalg {

using Vector = std::vector<double>;

inline double dot(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) throw std::invalid_argument("dot: size mismatch");
  return kernels::dot(a.data(), b.data(), a.size());
}

inline double norm2(std::span<const double> a) {
  return std::sqrt(kernels::dot_self(a.data(), a.size()));
}

/// y += alpha * x
inline void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  if (x.size() != y.size()) throw std::invalid_argument("axpy: size mismatch");
  kernels::axpy(alpha, x.data(), y.data(), x.size());
}

inline void scale(double alpha, std::span<double> x) {
  kernels::scale(alpha, x.data(), x.size());
}

/// Remove the component of x along the (unnormalized) all-ones direction.
/// Laplacian systems are singular with nullspace span{1}; projecting both the
/// right-hand side and iterates keeps CG well-posed on connected graphs.
inline void deflate_constant(std::span<double> x) {
  if (x.empty()) return;
  const double m =
      kernels::sum(x.data(), x.size()) / static_cast<double>(x.size());
  kernels::sub_scalar(m, x.data(), x.size());
}

inline Vector zeros(std::size_t n) { return Vector(n, 0.0); }

}  // namespace cirstag::linalg
