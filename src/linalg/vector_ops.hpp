#pragma once

#include <cmath>
#include <span>
#include <stdexcept>
#include <vector>

/// Free-function BLAS-1 style helpers over std::vector<double>.
namespace cirstag::linalg {

using Vector = std::vector<double>;

inline double dot(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) throw std::invalid_argument("dot: size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

inline double norm2(std::span<const double> a) { return std::sqrt(dot(a, a)); }

/// y += alpha * x
inline void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  if (x.size() != y.size()) throw std::invalid_argument("axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

inline void scale(double alpha, std::span<double> x) {
  for (auto& v : x) v *= alpha;
}

/// Remove the component of x along the (unnormalized) all-ones direction.
/// Laplacian systems are singular with nullspace span{1}; projecting both the
/// right-hand side and iterates keeps CG well-posed on connected graphs.
inline void deflate_constant(std::span<double> x) {
  if (x.empty()) return;
  double m = 0.0;
  for (double v : x) m += v;
  m /= static_cast<double>(x.size());
  for (auto& v : x) v -= m;
}

inline Vector zeros(std::size_t n) { return Vector(n, 0.0); }

}  // namespace cirstag::linalg
