#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "linalg/dense_eigen.hpp"
#include "linalg/generalized_eigen.hpp"
#include "linalg/sparse.hpp"

namespace cirstag::linalg {

/// Multilevel eigensolvers over a coarsening hierarchy (DESIGN.md §12).
///
/// The hierarchy itself is built by graphs/coarsen.hpp; this layer only sees
/// the per-level operators (sparse symmetric matrices) and the
/// piecewise-constant prolongation maps between levels, keeping the
/// graphs -> linalg dependency direction intact. Both solvers follow the
/// same V-shape: solve the coarsest problem directly with the existing
/// machinery (Lanczos / generalized subspace iteration), then per finer
/// level interpolate the eigenvectors through the map and re-converge them
/// with a few Rayleigh-Ritz-projected subspace-iteration sweeps. Refinement
/// touches each level's operator only through SpMV / CG applications, so
/// results keep the repo's bit-identity contract across thread counts and
/// SIMD modes; accuracy relative to the single-level solver is bounded by
/// kMultilevelResidualBound and watched by the health monitor.

/// Fine-row -> coarse-row aggregate map (the columns of a piecewise-constant
/// prolongation P: prolong(V)(i, j) = V(map[i], j)).
using ProlongMap = std::vector<std::uint32_t>;

/// Deterministic per-run hierarchy statistics, mirrored into the obs
/// registry by the callers (gauges coarsen.levels / coarsen.coarsest_n,
/// counter eigen.ritz_refine_sweeps) and gated by the CI scale smoke.
struct MultilevelStats {
  std::size_t levels = 0;              ///< coarse levels below the fine one
  std::size_t coarsest_n = 0;          ///< rows of the directly-solved level
  std::size_t ritz_refine_sweeps = 0;  ///< refinement sweeps, all levels
};

/// Documented accuracy contract of the multilevel mode. Standard path: the
/// spectrum-relative residual ‖A u − θ u‖ / b (b = spectrum upper bound) of
/// every returned Ritz pair stays below kMultilevelResidualBound.
/// Generalized path: the pencil residual ‖L_X u − θ (L_Y + εI) u‖ / ‖L_X u‖
/// stays below kMultilevelPencilResidualBound — looser because warm subspace
/// iteration with a fixed sweep budget leaves the trailing pairs of the
/// block only partially converged (the exact single-level solver's own Ritz
/// early stop accepts residuals of the same order). A violation records a
/// warning-severity eigen.multilevel_residual health event (the CI health
/// gate fails only on error severity, so a drifting hierarchy is visible
/// before it is fatal).
inline constexpr double kMultilevelResidualBound = 0.1;
inline constexpr double kMultilevelPencilResidualBound = 0.5;

struct MultilevelSmallestOptions {
  /// Subspace-iteration sweeps per refinement level (shifted power sweeps
  /// on b·I − A followed by one dense Rayleigh-Ritz projection). Mid-
  /// spectrum contamination damps by roughly (b − λ)/b per sweep, so ~8
  /// sweeps reduce it below the documented residual bound.
  std::size_t refine_sweeps = 8;
  /// Upper bound b >= λ_max(A) of the fine spectrum (2.0 for normalized
  /// Laplacians); the refinement operator is b·I − A.
  double spectrum_upper_bound = 2.0;
  std::size_t lanczos_subspace = 0;  ///< coarsest-level Krylov cap (0 = auto)
  std::uint64_t seed = 5;            ///< rank-repair draws during refinement
};

/// Smallest-k eigenpairs of `fine` through the hierarchy. `coarse[l]` is the
/// operator l+1 levels below the fine one; `maps[0]` maps fine rows into
/// coarse[0], `maps[l]` maps coarse[l-1] rows into coarse[l]. The coarsest
/// level is solved by linalg::smallest_eigenpairs (the existing Lanczos).
/// Values ascending, like smallest_eigenpairs. Pass empty spans to fall
/// through to the exact single-level solver.
[[nodiscard]] EigenDecomposition multilevel_smallest_eigenpairs(
    const SparseMatrix& fine, std::span<const SparseMatrix> coarse,
    std::span<const ProlongMap> maps, std::size_t k,
    const MultilevelSmallestOptions& opts, MultilevelStats* stats = nullptr);

/// Generalized problem L_X v = ζ L_Y v through a shared pair hierarchy:
/// lx[0]/ly[0] are the finest operators, lx.back()/ly.back() the coarsest;
/// maps[l] maps level-l rows into level l+1. The coarsest level runs
/// generalized_eigen_sparse with the caller's full iteration budget; each
/// finer level re-enters it warm (initial_subspace = the prolonged
/// eigenvectors) for `refine_sweeps` sweeps, reusing all of its Ritz
/// machinery. `finest_solver` (optional) is the prebuilt (L_Y + εI) solver
/// for the finest level — e.g. the pipeline's cached solver — under the
/// same contract as generalized_eigen_sparse's external_solver.
[[nodiscard]] GeneralizedEigenResult multilevel_generalized_eigen(
    std::span<const SparseMatrix> lx, std::span<const SparseMatrix> ly,
    std::span<const ProlongMap> maps, const GeneralizedEigenOptions& opts,
    std::size_t refine_sweeps, const LaplacianSolver* finest_solver = nullptr,
    MultilevelStats* stats = nullptr);

}  // namespace cirstag::linalg
