#include "linalg/dense_eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace cirstag::linalg {

namespace {

void sort_ascending(EigenDecomposition& d) {
  const std::size_t n = d.values.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return d.values[a] < d.values[b];
  });
  std::vector<double> vals(n);
  Matrix vecs(d.vectors.rows(), n);
  for (std::size_t j = 0; j < n; ++j) {
    vals[j] = d.values[order[j]];
    for (std::size_t i = 0; i < d.vectors.rows(); ++i)
      vecs(i, j) = d.vectors(i, order[j]);
  }
  d.values = std::move(vals);
  d.vectors = std::move(vecs);
}

}  // namespace

EigenDecomposition jacobi_eigen(const Matrix& a, int max_sweeps, double tol) {
  if (a.rows() != a.cols())
    throw std::invalid_argument("jacobi_eigen: matrix not square");
  const std::size_t n = a.rows();
  Matrix m = a;           // working copy, diagonalized in place
  Matrix v = Matrix::identity(n);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p < n; ++p)
      for (std::size_t q = p + 1; q < n; ++q) off += m(p, q) * m(p, q);
    if (std::sqrt(off) < tol) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = m(p, q);
        if (std::abs(apq) < 1e-300) continue;
        const double app = m(p, p);
        const double aqq = m(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (std::size_t k = 0; k < n; ++k) {
          const double mkp = m(k, p);
          const double mkq = m(k, q);
          m(k, p) = c * mkp - s * mkq;
          m(k, q) = s * mkp + c * mkq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double mpk = m(p, k);
          const double mqk = m(q, k);
          m(p, k) = c * mpk - s * mqk;
          m(q, k) = s * mpk + c * mqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  EigenDecomposition d;
  d.values.resize(n);
  for (std::size_t i = 0; i < n; ++i) d.values[i] = m(i, i);
  d.vectors = std::move(v);
  sort_ascending(d);
  return d;
}

EigenDecomposition tridiagonal_eigen(std::vector<double> diag,
                                     std::vector<double> offdiag) {
  const std::size_t n = diag.size();
  if (n == 0) return {};
  if (offdiag.size() + 1 != n)
    throw std::invalid_argument("tridiagonal_eigen: offdiag size must be n-1");

  // EISPACK tql2, adapted: e[i] couples i-1 and i after the shift below.
  std::vector<double> d = std::move(diag);
  std::vector<double> e(n, 0.0);
  for (std::size_t i = 1; i < n; ++i) e[i - 1] = offdiag[i - 1];
  e[n - 1] = 0.0;
  Matrix z = Matrix::identity(n);

  for (std::size_t l = 0; l < n; ++l) {
    std::size_t iter = 0;
    std::size_t m;
    do {
      for (m = l; m + 1 < n; ++m) {
        const double dd = std::abs(d[m]) + std::abs(d[m + 1]);
        if (std::abs(e[m]) <= 1e-15 * dd) break;
      }
      if (m != l) {
        if (iter++ == 50)
          throw std::runtime_error("tridiagonal_eigen: too many iterations");
        double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
        double r = std::hypot(g, 1.0);
        g = d[m] - d[l] + e[l] / (g + (g >= 0 ? std::abs(r) : -std::abs(r)));
        double s = 1.0, c = 1.0, p = 0.0;
        for (std::size_t i = m; i-- > l;) {
          double f = s * e[i];
          const double b = c * e[i];
          r = std::hypot(f, g);
          e[i + 1] = r;
          if (r == 0.0) {
            d[i + 1] -= p;
            e[m] = 0.0;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[i + 1] - p;
          r = (d[i] - g) * s + 2.0 * c * b;
          p = s * r;
          d[i + 1] = g + p;
          g = c * r - b;
          for (std::size_t k = 0; k < n; ++k) {
            f = z(k, i + 1);
            z(k, i + 1) = s * z(k, i) + c * f;
            z(k, i) = c * z(k, i) - s * f;
          }
        }
        if (r == 0.0 && m - l > 1) continue;
        d[l] -= p;
        e[l] = g;
        e[m] = 0.0;
      }
    } while (m != l);
  }

  EigenDecomposition out;
  out.values = std::move(d);
  out.vectors = std::move(z);
  sort_ascending(out);
  return out;
}

Matrix cholesky(const Matrix& a) {
  if (a.rows() != a.cols())
    throw std::invalid_argument("cholesky: matrix not square");
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      if (i == j) {
        if (s <= 0.0)
          throw std::runtime_error("cholesky: matrix not positive definite");
        l(i, j) = std::sqrt(s);
      } else {
        l(i, j) = s / l(j, j);
      }
    }
  }
  return l;
}

std::vector<double> cholesky_solve(const Matrix& chol_lower,
                                   std::span<const double> b) {
  const std::size_t n = chol_lower.rows();
  if (b.size() != n)
    throw std::invalid_argument("cholesky_solve: size mismatch");
  std::vector<double> y(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= chol_lower(i, k) * y[k];
    y[i] = s / chol_lower(i, i);
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double s = y[i];
    for (std::size_t k = i + 1; k < n; ++k) s -= chol_lower(k, i) * x[k];
    x[i] = s / chol_lower(i, i);
  }
  return x;
}

EigenDecomposition generalized_eigen_dense(const Matrix& a, const Matrix& b) {
  if (a.rows() != a.cols() || b.rows() != b.cols() || a.rows() != b.rows())
    throw std::invalid_argument("generalized_eigen_dense: shape mismatch");
  const std::size_t n = a.rows();
  const Matrix l = cholesky(b);

  // C = L^{-1} A L^{-T}: solve column-by-column.
  // First W = L^{-1} A (forward substitution on each column of A).
  Matrix w(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      double s = a(i, j);
      for (std::size_t k = 0; k < i; ++k) s -= l(i, k) * w(k, j);
      w(i, j) = s / l(i, i);
    }
  }
  // Then C = W L^{-T}: for each row of W, forward-substitute against L
  // (since (L^{-T}) applied from the right is a forward solve on rows).
  Matrix c(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double s = w(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l(j, k) * c(i, k);
      c(i, j) = s / l(j, j);
    }
  }

  EigenDecomposition std_eig = jacobi_eigen(c);

  // Back-substitute eigenvectors: v = L^{-T} u.
  Matrix vecs(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    std::vector<double> u = std_eig.vectors.col(j);
    std::vector<double> v(n, 0.0);
    for (std::size_t i = n; i-- > 0;) {
      double s = u[i];
      for (std::size_t k = i + 1; k < n; ++k) s -= l(k, i) * v[k];
      v[i] = s / l(i, i);
    }
    vecs.set_col(j, v);
  }
  std_eig.vectors = std::move(vecs);
  return std_eig;
}

}  // namespace cirstag::linalg
