#include "linalg/cg.hpp"

#include <cmath>
#include <stdexcept>

#include "kernels/kernels.hpp"
#include "linalg/block_cg.hpp"
#include "linalg/vector_ops.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "runtime/parallel_for.hpp"
#include "util/arena.hpp"

namespace cirstag::linalg {

namespace {

/// One observation per finished solve; instrumentation only reads the
/// result, so iterates are untouched.
void record_cg_metrics(const CgResult& result, const CgOptions& opts) {
  static const obs::Counter solves("cg.solves");
  static const obs::Counter iterations("cg.iterations");
  static const obs::Counter breakdowns("cg.breakdowns");
  static const obs::Counter unconverged("cg.unconverged");
  static const obs::Histogram iters_per_solve(
      "cg.iterations_per_solve",
      {1, 3, 10, 30, 100, 300, 1000, 3000, 10000});
  solves.add();
  iterations.add(result.iterations);
  if (result.breakdown) breakdowns.add();
  if (!result.converged) unconverged.add();
  iters_per_solve.observe(static_cast<double>(result.iterations));
  // Residual history as a distribution: where solves actually land relative
  // to their tolerance, aggregated across the run.
  static const obs::Histogram final_residuals(
      "cg.final_relative_residual",
      {1e-12, 1e-10, 1e-8, 1e-6, 1e-4, 1e-2, 1.0});
  final_residuals.observe(result.residual);
  if (result.breakdown) {
    obs::record_health_event(
        "cg.breakdown",
        "CG hit an indefinite direction (p'Ap <= 0) after " +
            std::to_string(result.iterations) + " iterations",
        result.residual, opts.tolerance, obs::HealthSeverity::warning);
  } else if (!result.converged &&
             (!opts.budget_bounded ||
              result.residual > kBudgetResidualAlarm)) {
    obs::record_health_event(
        "cg.unconverged",
        "CG stopped at max_iterations=" +
            std::to_string(opts.max_iterations) + " with relative residual " +
            std::to_string(result.residual),
        result.residual, opts.tolerance, obs::HealthSeverity::warning);
  }
}

}  // namespace

namespace {

CgResult conjugate_gradient_impl(const LinearOperator& op,
                                 std::span<const double> b, std::size_t n,
                                 const LinearOperator& precond,
                                 const CgOptions& opts,
                                 std::span<const double> initial_guess) {
  if (b.size() != n)
    throw std::invalid_argument("conjugate_gradient: size mismatch");
  if (!initial_guess.empty() && initial_guess.size() != n)
    throw std::invalid_argument("conjugate_gradient: bad initial guess size");

  CgResult result;
  result.solution.assign(n, 0.0);

  // Per-solve temporaries come from the thread-local arena: a solve is a
  // strict LIFO scope, so repeated solves reuse the same cache-hot block
  // instead of hitting the heap four times per call.
  util::ArenaFrame frame;
  std::span<double> r = frame.alloc<double>(n);
  std::copy(b.begin(), b.end(), r.begin());
  if (opts.deflate_constant) deflate_constant(r);
  const double bnorm = norm2(r);
  if (bnorm == 0.0) {
    result.converged = true;
    return result;
  }
  if (!initial_guess.empty()) {
    result.solution.assign(initial_guess.begin(), initial_guess.end());
    if (opts.deflate_constant) deflate_constant(result.solution);
    std::span<double> ax = frame.alloc_zero<double>(n);
    op(result.solution, ax);
    if (opts.deflate_constant) deflate_constant(ax);
    axpy(-1.0, ax, r);
  }

  std::span<double> z = frame.alloc_zero<double>(n);
  auto apply_precond = [&](std::span<const double> in, std::span<double> out) {
    if (precond) {
      precond(in, out);
    } else {
      std::copy(in.begin(), in.end(), out.begin());
    }
    if (opts.deflate_constant) deflate_constant(out);
  };

  apply_precond(r, z);
  std::span<double> p = frame.alloc<double>(n);
  std::copy(z.begin(), z.end(), p.begin());
  std::span<double> ap = frame.alloc_zero<double>(n);
  double rz = dot(r, z);

  for (std::size_t it = 0; it < opts.max_iterations; ++it) {
    std::fill(ap.begin(), ap.end(), 0.0);
    op(p, ap);
    if (opts.deflate_constant) deflate_constant(ap);
    const double pap = dot(p, ap);
    if (pap <= 0.0) {
      // Operator numerically indefinite along p: stop, but report the true
      // residual so callers never see a stale 0.0 with converged=false.
      result.breakdown = true;
      break;
    }
    const double alpha = rz / pap;
    axpy(alpha, p, result.solution);
    axpy(-alpha, ap, r);
    result.iterations = it + 1;
    const double rnorm = norm2(r);
    if (rnorm / bnorm < opts.tolerance) {
      result.converged = true;
      result.residual = rnorm / bnorm;
      if (opts.deflate_constant) deflate_constant(result.solution);
      return result;
    }
    apply_precond(r, z);
    const double rz_new = dot(r, z);
    const double beta = rz_new / rz;
    rz = rz_new;
    // Contracted direction update — the scalar twin of xpby_cols, so
    // solve_block stays bit-identical to per-column solve().
    kernels::xpby(beta, z.data(), p.data(), n);
  }

  result.residual = norm2(r) / bnorm;
  if (opts.deflate_constant) deflate_constant(result.solution);
  return result;
}

}  // namespace

CgResult conjugate_gradient(const LinearOperator& op, std::span<const double> b,
                            std::size_t n, const LinearOperator& precond,
                            const CgOptions& opts,
                            std::span<const double> initial_guess) {
  CgResult result =
      conjugate_gradient_impl(op, b, n, precond, opts, initial_guess);
  record_cg_metrics(result, opts);
  return result;
}

LaplacianSolver::LaplacianSolver(SparseMatrix laplacian, double regularization,
                                 CgOptions opts)
    : LaplacianSolver(std::move(laplacian), regularization, opts,
                      TreeFactorization{}) {}

LaplacianSolver::LaplacianSolver(SparseMatrix laplacian, double regularization,
                                 CgOptions opts, TreeFactorization tree)
    : laplacian_(std::move(laplacian)),
      regularization_(regularization),
      opts_(opts),
      tree_(std::move(tree)) {
  if (laplacian_.rows() != laplacian_.cols())
    throw std::invalid_argument("LaplacianSolver: matrix not square");
  if (!tree_.empty() && tree_.dimension() != laplacian_.rows())
    throw std::invalid_argument("LaplacianSolver: tree dimension mismatch");
  opts_.deflate_constant = (regularization_ == 0.0);
  inv_diag_ = laplacian_.diagonal();
  for (auto& d : inv_diag_) {
    d += regularization_;
    d = (d > 1e-300) ? 1.0 / d : 1.0;
  }
}

std::vector<double> LaplacianSolver::solve(
    std::span<const double> b, std::span<const double> initial_guess) const {
  const std::size_t n = dimension();
  auto op = [this](std::span<const double> x, std::span<double> y) {
    laplacian_.multiply_add(x, y);
    if (regularization_ != 0.0) axpy(regularization_, x, y);
  };
  auto precond = [this](std::span<const double> x, std::span<double> y) {
    if (!tree_.empty()) {
      tree_.apply(x, y);
    } else {
      for (std::size_t i = 0; i < x.size(); ++i) y[i] = inv_diag_[i] * x[i];
    }
  };
  CgResult res = conjugate_gradient(op, b, n, precond, opts_, initial_guess);
  last_residual_.store(res.residual, std::memory_order_relaxed);
  cumulative_iterations_.fetch_add(res.iterations, std::memory_order_relaxed);
  static const obs::Counter solves("laplacian_solver.solves");
  static const obs::Counter iterations("laplacian_solver.iterations");
  solves.add();
  iterations.add(res.iterations);
  return std::move(res.solution);
}

Matrix LaplacianSolver::solve_block(const Matrix& rhs,
                                    const Matrix* initial_guess,
                                    BlockSolveStats* stats) const {
  if (rhs.rows() != dimension())
    throw std::invalid_argument("LaplacianSolver::solve_block: size mismatch");
  const std::size_t k = rhs.cols();
  auto op = [this](const Matrix& x, Matrix& y) {
    laplacian_.multiply_add(x, y);
    // Contracted exactly like the single-vector operator's axpy — elementwise
    // fma has no reduction shape, so one flat call covers all columns.
    if (regularization_ != 0.0)
      kernels::axpy(regularization_, x.data().data(), y.data().data(),
                    x.rows() * x.cols());
  };
  BlockLinearOperator precond;
  if (!tree_.empty()) {
    precond = [this](const Matrix& x, Matrix& y) {
      // Columns are independent O(n) tree solves — parallel across columns,
      // each column's sweep identical to the single-vector apply.
      runtime::parallel_for(0, x.cols(), 1, [&](std::size_t j) {
        const std::size_t n = x.rows();
        util::ArenaFrame frame;  // each worker bumps its own thread-local arena
        std::span<double> in = frame.alloc<double>(n);
        std::span<double> out = frame.alloc<double>(n);
        for (std::size_t i = 0; i < n; ++i) in[i] = x(i, j);
        tree_.apply(in, out);
        for (std::size_t i = 0; i < n; ++i) y(i, j) = out[i];
      });
    };
  } else {
    precond = [this](const Matrix& x, Matrix& y) {
      kernels::table().diag_scale_cols(inv_diag_.data(), x.data().data(),
                                       y.data().data(), x.rows(), x.cols());
    };
  }

  BlockCgResult res =
      block_conjugate_gradient(op, rhs, precond, opts_, initial_guess);
  double worst = 0.0;
  std::size_t slowest = 0;
  for (std::size_t j = 0; j < k; ++j) {
    worst = std::max(worst, res.residuals[j]);
    slowest = std::max(slowest, res.iterations[j]);
  }
  last_residual_.store(worst, std::memory_order_relaxed);
  cumulative_iterations_.fetch_add(res.total_iterations,
                                   std::memory_order_relaxed);
  static const obs::Counter block_solves("laplacian_solver.block_solves");
  static const obs::Counter iterations("laplacian_solver.iterations");
  block_solves.add();
  iterations.add(res.total_iterations);
  if (!res.all_converged() &&
      (!opts_.budget_bounded || worst > kBudgetResidualAlarm)) {
    std::size_t stalled = 0;
    for (const bool c : res.converged)
      if (!c) ++stalled;
    obs::record_health_event(
        "block_cg.unconverged",
        std::to_string(stalled) + " of " + std::to_string(k) +
            " block-CG columns stopped at max_iterations=" +
            std::to_string(opts_.max_iterations) + "; worst relative residual " +
            std::to_string(worst),
        worst, opts_.tolerance, obs::HealthSeverity::warning);
  }
  if (stats) {
    stats->total_iterations = res.total_iterations;
    stats->max_iterations = slowest;
    stats->all_converged = res.all_converged();
  }
  return std::move(res.solutions);
}

}  // namespace cirstag::linalg
