#include "linalg/cg.hpp"

#include <cmath>
#include <stdexcept>

#include "linalg/vector_ops.hpp"

namespace cirstag::linalg {

CgResult conjugate_gradient(const LinearOperator& op, std::span<const double> b,
                            std::size_t n, const LinearOperator& precond,
                            const CgOptions& opts,
                            std::span<const double> initial_guess) {
  if (b.size() != n)
    throw std::invalid_argument("conjugate_gradient: size mismatch");
  if (!initial_guess.empty() && initial_guess.size() != n)
    throw std::invalid_argument("conjugate_gradient: bad initial guess size");

  CgResult result;
  result.solution.assign(n, 0.0);

  std::vector<double> r(b.begin(), b.end());
  if (opts.deflate_constant) deflate_constant(r);
  const double bnorm = norm2(r);
  if (bnorm == 0.0) {
    result.converged = true;
    return result;
  }
  if (!initial_guess.empty()) {
    result.solution.assign(initial_guess.begin(), initial_guess.end());
    if (opts.deflate_constant) deflate_constant(result.solution);
    std::vector<double> ax(n, 0.0);
    op(result.solution, ax);
    if (opts.deflate_constant) deflate_constant(ax);
    axpy(-1.0, ax, r);
  }

  std::vector<double> z(n, 0.0);
  auto apply_precond = [&](std::span<const double> in, std::span<double> out) {
    if (precond) {
      precond(in, out);
    } else {
      std::copy(in.begin(), in.end(), out.begin());
    }
    if (opts.deflate_constant) deflate_constant(out);
  };

  apply_precond(r, z);
  std::vector<double> p = z;
  std::vector<double> ap(n, 0.0);
  double rz = dot(r, z);

  for (std::size_t it = 0; it < opts.max_iterations; ++it) {
    std::fill(ap.begin(), ap.end(), 0.0);
    op(p, ap);
    if (opts.deflate_constant) deflate_constant(ap);
    const double pap = dot(p, ap);
    if (pap <= 0.0) break;  // operator numerically indefinite along p
    const double alpha = rz / pap;
    axpy(alpha, p, result.solution);
    axpy(-alpha, ap, r);
    result.iterations = it + 1;
    const double rnorm = norm2(r);
    if (rnorm / bnorm < opts.tolerance) {
      result.converged = true;
      result.residual = rnorm / bnorm;
      if (opts.deflate_constant) deflate_constant(result.solution);
      return result;
    }
    apply_precond(r, z);
    const double rz_new = dot(r, z);
    const double beta = rz_new / rz;
    rz = rz_new;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }

  result.residual = norm2(r) / bnorm;
  if (opts.deflate_constant) deflate_constant(result.solution);
  return result;
}

LaplacianSolver::LaplacianSolver(SparseMatrix laplacian, double regularization,
                                 CgOptions opts)
    : laplacian_(std::move(laplacian)),
      regularization_(regularization),
      opts_(opts) {
  if (laplacian_.rows() != laplacian_.cols())
    throw std::invalid_argument("LaplacianSolver: matrix not square");
  opts_.deflate_constant = (regularization_ == 0.0);
  inv_diag_ = laplacian_.diagonal();
  for (auto& d : inv_diag_) {
    d += regularization_;
    d = (d > 1e-300) ? 1.0 / d : 1.0;
  }
}

std::vector<double> LaplacianSolver::solve(
    std::span<const double> b, std::span<const double> initial_guess) const {
  const std::size_t n = dimension();
  auto op = [this](std::span<const double> x, std::span<double> y) {
    laplacian_.multiply_add(x, y);
    if (regularization_ != 0.0) axpy(regularization_, x, y);
  };
  auto precond = [this](std::span<const double> x, std::span<double> y) {
    for (std::size_t i = 0; i < x.size(); ++i) y[i] = inv_diag_[i] * x[i];
  };
  CgResult res = conjugate_gradient(op, b, n, precond, opts_, initial_guess);
  last_residual_.store(res.residual, std::memory_order_relaxed);
  return std::move(res.solution);
}

}  // namespace cirstag::linalg
