#include "linalg/lanczos.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "linalg/vector_ops.hpp"
#include "obs/metrics.hpp"

namespace cirstag::linalg {

EigenDecomposition lanczos_eigen(const LinearOperator& op, std::size_t n,
                                 const LanczosOptions& opts) {
  if (n == 0) return {};
  const std::size_t k = std::min(opts.num_eigenpairs, n);
  std::size_t m = opts.max_subspace ? opts.max_subspace : (4 * k + 32);
  m = std::min(m, n);

  Rng rng(opts.seed);
  std::vector<std::vector<double>> basis;  // orthonormal Lanczos vectors
  basis.reserve(m);

  std::vector<double> v(n);
  const bool warm = opts.start_vector != nullptr &&
                    opts.start_vector->size() == n &&
                    norm2(*opts.start_vector) > 1e-12;
  if (warm) {
    v = *opts.start_vector;
  } else {
    for (auto& x : v) x = rng.normal();
  }
  scale(1.0 / norm2(v), v);
  basis.push_back(v);

  std::vector<double> alpha;  // T diagonal
  std::vector<double> beta;   // T off-diagonal

  std::vector<double> w(n, 0.0);
  for (std::size_t j = 0; j < m; ++j) {
    std::fill(w.begin(), w.end(), 0.0);
    op(basis[j], w);
    const double a = dot(w, basis[j]);
    alpha.push_back(a);
    // w -= a * v_j  (and beta_{j-1} * v_{j-1}, folded into reorth below)
    // Full reorthogonalization against all previous basis vectors, twice,
    // which keeps orthogonality to machine precision at these sizes.
    for (int pass = 0; pass < 2; ++pass) {
      for (const auto& q : basis) {
        const double c = dot(w, q);
        axpy(-c, q, w);
      }
    }
    const double b = norm2(w);
    if (j + 1 == m) break;
    if (b < 1e-12) {
      // Invariant subspace found; restart with a random orthogonal vector.
      std::vector<double> fresh(n);
      for (auto& x : fresh) x = rng.normal();
      for (int pass = 0; pass < 2; ++pass) {
        for (const auto& q : basis) {
          const double c = dot(fresh, q);
          axpy(-c, q, fresh);
        }
      }
      const double fn = norm2(fresh);
      if (fn < 1e-12) break;  // space exhausted
      scale(1.0 / fn, fresh);
      static const obs::Counter restarts("lanczos.restarts");
      restarts.add();
      beta.push_back(0.0);
      basis.push_back(std::move(fresh));
    } else {
      scale(1.0 / b, w);
      beta.push_back(b);
      basis.push_back(w);
    }
  }

  const std::size_t dim = alpha.size();
  beta.resize(dim > 0 ? dim - 1 : 0);
  EigenDecomposition tri = tridiagonal_eigen(alpha, beta);

  // Select the wanted end of the Ritz spectrum.
  std::vector<std::size_t> pick(tri.values.size());
  for (std::size_t i = 0; i < pick.size(); ++i) pick[i] = i;
  if (!opts.want_smallest) std::reverse(pick.begin(), pick.end());
  pick.resize(std::min(k, pick.size()));

  EigenDecomposition out;
  out.values.resize(pick.size());
  out.vectors = Matrix(n, pick.size());
  for (std::size_t j = 0; j < pick.size(); ++j) {
    out.values[j] = tri.values[pick[j]];
    // Ritz vector = sum_i basis[i] * S(i, pick[j])
    std::vector<double> ritz(n, 0.0);
    for (std::size_t i = 0; i < dim; ++i)
      axpy(tri.vectors(i, pick[j]), basis[i], ritz);
    const double nn = norm2(ritz);
    if (nn > 0) scale(1.0 / nn, ritz);
    out.vectors.set_col(j, ritz);
  }
  return out;
}

EigenDecomposition smallest_eigenpairs(const SparseMatrix& a, std::size_t k,
                                       double spectrum_upper_bound,
                                       std::size_t max_subspace,
                                       std::uint64_t seed,
                                       const std::vector<double>* start_vector) {
  if (a.rows() != a.cols())
    throw std::invalid_argument("smallest_eigenpairs: matrix not square");
  const std::size_t n = a.rows();
  const double shift = spectrum_upper_bound;

  // Lanczos converges fastest at the dominant end; run it on (shift*I - A)
  // whose largest eigenvalues correspond to the smallest eigenvalues of A.
  auto op = [&a, shift](std::span<const double> x, std::span<double> y) {
    for (std::size_t i = 0; i < x.size(); ++i) y[i] = shift * x[i];
    a.multiply_add(x, y, -1.0);
  };

  LanczosOptions opts;
  opts.num_eigenpairs = k;
  opts.max_subspace = max_subspace;
  opts.want_smallest = false;  // largest of (shift*I - A)
  opts.seed = seed;
  opts.start_vector = start_vector;
  EigenDecomposition shifted = lanczos_eigen(op, n, opts);

  for (auto& v : shifted.values) v = shift - v;  // map back to eigenvalues of A
  return shifted;  // ascending in A's eigenvalues by construction
}

}  // namespace cirstag::linalg
