#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace cirstag::linalg {

/// Result of a symmetric eigendecomposition: `values[i]` ascending, with the
/// corresponding eigenvector in column i of `vectors`.
struct EigenDecomposition {
  std::vector<double> values;
  Matrix vectors;  // n x n (or n x k), column i <-> values[i]
};

/// Cyclic Jacobi eigensolver for a dense symmetric matrix.
///
/// Robust and adequate for the small matrices CirSTAG needs it for
/// (Rayleigh-Ritz projections, test oracles). Throws if `a` is not square.
[[nodiscard]] EigenDecomposition jacobi_eigen(const Matrix& a,
                                              int max_sweeps = 64,
                                              double tol = 1e-12);

/// Eigendecomposition of a symmetric tridiagonal matrix via QL with implicit
/// shifts (EISPACK tql2). `diag` has n entries, `offdiag` n-1 entries
/// (offdiag[i] couples i and i+1). Used on the Lanczos projection.
[[nodiscard]] EigenDecomposition tridiagonal_eigen(
    std::vector<double> diag, std::vector<double> offdiag);

/// Cholesky factor (lower triangular) of a symmetric positive-definite dense
/// matrix; throws std::runtime_error if a pivot is non-positive.
[[nodiscard]] Matrix cholesky(const Matrix& a);

/// Solve L y = b then L^T x = y given a lower-triangular Cholesky factor.
[[nodiscard]] std::vector<double> cholesky_solve(const Matrix& chol_lower,
                                                 std::span<const double> b);

/// Generalized symmetric-definite eigenproblem A v = λ B v for small dense
/// matrices (B positive definite), via B = LL^T reduction to standard form.
/// Eigenvalues ascending.
[[nodiscard]] EigenDecomposition generalized_eigen_dense(const Matrix& a,
                                                         const Matrix& b);

}  // namespace cirstag::linalg
