#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

namespace cirstag::linalg {

/// Deterministic pseudo-random source used throughout the library.
///
/// Every stochastic component (synthetic circuit generation, GNN weight
/// initialization, JL sketching, perturbation sampling) takes an explicit Rng
/// so experiments are reproducible from a single seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eedULL) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Standard normal (optionally scaled/shifted).
  double normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t randint(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform index in [0, n).
  std::size_t index(std::size_t n) {
    return static_cast<std::size_t>(randint(0, static_cast<std::int64_t>(n) - 1));
  }

  /// +1 or -1 with equal probability (Rademacher), for JL sketching.
  double rademacher() { return randint(0, 1) == 0 ? -1.0 : 1.0; }

  /// Bernoulli trial.
  bool chance(double p) { return uniform() < p; }

  template <typename T>
  void shuffle(std::vector<T>& xs) {
    std::shuffle(xs.begin(), xs.end(), engine_);
  }

  /// k distinct indices sampled uniformly from [0, n) without replacement.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k) {
    std::vector<std::size_t> all(n);
    for (std::size_t i = 0; i < n; ++i) all[i] = i;
    shuffle(all);
    all.resize(std::min(k, n));
    return all;
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace cirstag::linalg
