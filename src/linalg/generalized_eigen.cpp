#include "linalg/generalized_eigen.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>

#include "linalg/rng.hpp"
#include "linalg/vector_ops.hpp"
#include "obs/metrics.hpp"

namespace cirstag::linalg {

namespace {

/// Modified Gram-Schmidt orthonormalization of the columns of v (in place).
/// Columns that collapse numerically are replaced with fresh random vectors
/// (deflated and re-orthogonalized) so the subspace keeps full rank.
void orthonormalize_columns(Matrix& v, Rng& rng) {
  const std::size_t s = v.cols();
  for (std::size_t j = 0; j < s; ++j) {
    std::vector<double> col = v.col(j);
    for (int attempt = 0; attempt < 3; ++attempt) {
      for (std::size_t i = 0; i < j; ++i) {
        const std::vector<double> prev = v.col(i);
        const double c = dot(col, prev);
        axpy(-c, prev, col);
      }
      const double nn = norm2(col);
      if (nn > 1e-10) {
        scale(1.0 / nn, col);
        break;
      }
      for (auto& x : col) x = rng.normal();
      deflate_constant(col);
    }
    v.set_col(j, col);
  }
}

}  // namespace

GeneralizedEigenResult generalized_eigen_sparse(
    const SparseMatrix& l_x, const SparseMatrix& l_y,
    const GeneralizedEigenOptions& opts,
    const LaplacianSolver* external_solver) {
  if (l_x.rows() != l_x.cols() || l_y.rows() != l_y.cols() ||
      l_x.rows() != l_y.rows())
    throw std::invalid_argument("generalized_eigen_sparse: shape mismatch");
  const std::size_t n = l_x.rows();
  const std::size_t s = std::min(opts.num_pairs, n > 1 ? n - 1 : n);
  if (s == 0) return {};

  static const obs::Counter eigen_runs("eigen.runs");
  static const obs::Counter subspace_iterations("eigen.subspace_iterations");
  eigen_runs.add();
  subspace_iterations.add(opts.iterations);

  CgOptions cg_opts;
  cg_opts.tolerance = opts.cg_tolerance;
  cg_opts.max_iterations = opts.cg_max_iterations;
  std::optional<LaplacianSolver> own_solver;
  if (external_solver) {
    if (external_solver->dimension() != n)
      throw std::invalid_argument(
          "generalized_eigen_sparse: external solver dimension mismatch");
  } else {
    own_solver.emplace(l_y, opts.ly_regularization, cg_opts);
  }
  const LaplacianSolver& solver =
      external_solver ? *external_solver : *own_solver;

  Rng rng(opts.seed);
  Matrix v(n, s);
  for (std::size_t j = 0; j < s; ++j) {
    std::vector<double> col(n);
    for (auto& x : col) x = rng.normal();
    deflate_constant(col);
    v.set_col(j, col);
  }
  orthonormalize_columns(v, rng);

  std::vector<double> tmp(n, 0.0);
  // Warm starts: as the subspace converges, consecutive solves for the same
  // column are nearby, so seeding CG with the previous solution cuts the
  // iteration count dramatically on large manifolds.
  if (opts.use_block_cg) {
    // Blocked sweep: one multi-RHS SpMV + one block-CG call serve all s
    // columns. Each column's iterate sequence — including the post-solve
    // deflation — is bit-identical to the scalar loop below.
    Matrix warm;
    for (std::size_t it = 0; it < opts.iterations; ++it) {
      Matrix rhs(n, s);
      l_x.multiply_add(v, rhs);
      Matrix z = solver.solve_block(rhs, warm.empty() ? nullptr : &warm);
      Matrix w(n, s);
      for (std::size_t j = 0; j < s; ++j) {
        std::vector<double> sol = z.col(j);
        deflate_constant(sol);
        w.set_col(j, sol);
      }
      warm = w;
      orthonormalize_columns(w, rng);
      v = std::move(w);
    }
  } else {
    std::vector<std::vector<double>> warm(s);
    for (std::size_t it = 0; it < opts.iterations; ++it) {
      Matrix w(n, s);
      for (std::size_t j = 0; j < s; ++j) {
        const std::vector<double> col = v.col(j);
        std::fill(tmp.begin(), tmp.end(), 0.0);
        l_x.multiply_add(col, tmp);
        std::vector<double> sol = solver.solve(tmp, warm[j]);
        deflate_constant(sol);
        warm[j] = sol;
        w.set_col(j, sol);
      }
      orthonormalize_columns(w, rng);
      v = std::move(w);
    }
  }

  // Rayleigh-Ritz: project both Laplacians onto the converged subspace and
  // solve the small generalized problem exactly.
  Matrix lx_v = l_x.multiply(v);
  Matrix ly_v = l_y.multiply(v);
  Matrix a_small = matmul_at_b(v, lx_v);  // s x s
  Matrix b_small = matmul_at_b(v, ly_v);  // s x s
  // Symmetrize against round-off and regularize B like the solver does.
  for (std::size_t i = 0; i < s; ++i) {
    for (std::size_t j = i + 1; j < s; ++j) {
      const double am = 0.5 * (a_small(i, j) + a_small(j, i));
      a_small(i, j) = a_small(j, i) = am;
      const double bm = 0.5 * (b_small(i, j) + b_small(j, i));
      b_small(i, j) = b_small(j, i) = bm;
    }
    b_small(i, i) += opts.ly_regularization;
  }

  EigenDecomposition small = generalized_eigen_dense(a_small, b_small);

  GeneralizedEigenResult out;
  out.values.resize(s);
  out.vectors = Matrix(n, s);
  // small.values ascending -> emit descending.
  for (std::size_t j = 0; j < s; ++j) {
    const std::size_t src = s - 1 - j;
    out.values[j] = small.values[src];
    std::vector<double> vec(n, 0.0);
    for (std::size_t i = 0; i < s; ++i)
      axpy(small.vectors(i, src), v.col(i), vec);
    const double nn = norm2(vec);
    if (nn > 0) scale(1.0 / nn, vec);
    out.vectors.set_col(j, vec);
  }
  return out;
}

}  // namespace cirstag::linalg
