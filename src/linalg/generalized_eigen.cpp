#include "linalg/generalized_eigen.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <optional>
#include <stdexcept>

#include "linalg/rng.hpp"
#include "linalg/vector_ops.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"

namespace cirstag::linalg {

namespace {

/// Modified Gram-Schmidt orthonormalization of the columns of v (in place).
/// Columns that collapse numerically are replaced with fresh random vectors
/// (deflated and re-orthogonalized) so the subspace keeps full rank.
void orthonormalize_columns(Matrix& v, Rng& rng) {
  const std::size_t s = v.cols();
  for (std::size_t j = 0; j < s; ++j) {
    std::vector<double> col = v.col(j);
    for (int attempt = 0; attempt < 3; ++attempt) {
      for (std::size_t i = 0; i < j; ++i) {
        const std::vector<double> prev = v.col(i);
        const double c = dot(col, prev);
        axpy(-c, prev, col);
      }
      const double nn = norm2(col);
      if (nn > 1e-10) {
        scale(1.0 / nn, col);
        break;
      }
      for (auto& x : col) x = rng.normal();
      deflate_constant(col);
    }
    v.set_col(j, col);
  }
}

/// Per-column squared residuals ‖b_j − (L_Y + εI) x_j‖² of a candidate
/// initial-guess block against the sweep's right-hand sides. Accumulation
/// order (rows ascending per column) matches a per-column scalar loop, so
/// the block and scalar sweep paths make identical seed decisions.
std::vector<double> block_residual2(const SparseMatrix& l_y, double eps,
                                    const Matrix& x, const Matrix& rhs) {
  const std::size_t n = x.rows();
  const std::size_t s = x.cols();
  Matrix ax(n, s);
  l_y.multiply_add(x, ax);
  std::vector<double> r2(s, 0.0);
  for (std::size_t j = 0; j < s; ++j) {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double r = rhs(i, j) - ax(i, j) - eps * x(i, j);
      acc += r * r;
    }
    r2[j] = acc;
  }
  return r2;
}

/// ‖b_j‖² per column — the residual of the zero (cold) initial guess.
std::vector<double> rhs_norm2(const Matrix& rhs) {
  std::vector<double> r2(rhs.cols(), 0.0);
  for (std::size_t j = 0; j < rhs.cols(); ++j) {
    double acc = 0.0;
    for (std::size_t i = 0; i < rhs.rows(); ++i) acc += rhs(i, j) * rhs(i, j);
    r2[j] = acc;
  }
  return r2;
}

/// Tracks the sorted Rayleigh quotients ρ_j = v_jᵀ(Mv)_j across sweeps and
/// signals convergence once they stabilize (GeneralizedEigenOptions::
/// ritz_tolerance). Sorting makes the comparison robust to column swaps
/// inside near-degenerate clusters; the fixed sequential accumulation order
/// keeps the decision thread-count invariant.
class RitzStop {
 public:
  RitzStop(double tolerance, std::size_t min_iterations)
      : tolerance_(tolerance), min_iterations_(min_iterations) {}

  /// `v` = the orthonormal iterate the sweep started from, `w` = M·v
  /// (deflated, pre-orthonormalization). Returns true when the iteration may
  /// stop after this sweep (`it` is 0-based).
  bool converged(const Matrix& v, const Matrix& w, std::size_t it) {
    if (tolerance_ <= 0.0) return false;
    const std::size_t s = v.cols();
    std::vector<double> rho(s, 0.0);
    for (std::size_t j = 0; j < s; ++j) {
      double acc = 0.0;
      for (std::size_t i = 0; i < v.rows(); ++i) acc += v(i, j) * w(i, j);
      rho[j] = acc;
    }
    std::sort(rho.begin(), rho.end(), std::greater<>());
    bool stable = false;
    if (!prev_.empty()) {
      const double scale = std::max(std::abs(rho[0]), 1e-300);
      double worst = 0.0;
      for (std::size_t j = 0; j < s; ++j)
        worst = std::max(worst, std::abs(rho[j] - prev_[j]));
      stable = worst <= tolerance_ * scale;
    }
    prev_ = std::move(rho);
    return stable && it + 1 >= min_iterations_;
  }

 private:
  double tolerance_;
  std::size_t min_iterations_;
  std::vector<double> prev_;
};

}  // namespace

GeneralizedEigenResult generalized_eigen_sparse(
    const SparseMatrix& l_x, const SparseMatrix& l_y,
    const GeneralizedEigenOptions& opts,
    const LaplacianSolver* external_solver) {
  if (l_x.rows() != l_x.cols() || l_y.rows() != l_y.cols() ||
      l_x.rows() != l_y.rows())
    throw std::invalid_argument("generalized_eigen_sparse: shape mismatch");
  const std::size_t n = l_x.rows();
  const std::size_t s = std::min(opts.num_pairs, n > 1 ? n - 1 : n);
  if (s == 0) return {};

  static const obs::Counter eigen_runs("eigen.runs");
  static const obs::Counter subspace_iterations("eigen.subspace_iterations");
  static const obs::Counter early_stops("eigen.ritz_early_stops");
  eigen_runs.add();

  CgOptions cg_opts;
  cg_opts.tolerance = opts.cg_tolerance;
  cg_opts.max_iterations = opts.cg_max_iterations;
  // The iteration cap is a deliberate budget here: subspace iteration
  // tolerates inexact inner solves, and the Rayleigh-Ritz projection is
  // exact on the converged subspace. Hitting the cap near the tolerance is
  // normal operation, not a health problem (kBudgetResidualAlarm still
  // flags solves that made no progress).
  cg_opts.budget_bounded = true;
  std::optional<LaplacianSolver> own_solver;
  if (external_solver) {
    if (external_solver->dimension() != n)
      throw std::invalid_argument(
          "generalized_eigen_sparse: external solver dimension mismatch");
  } else {
    own_solver.emplace(l_y, opts.ly_regularization, cg_opts);
  }
  const LaplacianSolver& solver =
      external_solver ? *external_solver : *own_solver;

  static const obs::Counter warm_inits("eigen.warm_subspace_starts");
  Rng rng(opts.seed);
  Matrix v(n, s);
  const bool warm = opts.initial_subspace != nullptr &&
                    opts.initial_subspace->rows() == n &&
                    opts.initial_subspace->cols() >= s;
  if (warm) {
    // Warm start from a baseline eigenbasis: deflate + re-orthonormalize the
    // provided columns. The rng stream stays aligned with the cold path so
    // any rank-repair draws inside orthonormalize_columns are reproducible.
    warm_inits.add();
    for (std::size_t j = 0; j < s; ++j) {
      std::vector<double> col = opts.initial_subspace->col(j);
      deflate_constant(col);
      v.set_col(j, col);
    }
  } else {
    for (std::size_t j = 0; j < s; ++j) {
      std::vector<double> col(n);
      for (auto& x : col) x = rng.normal();
      deflate_constant(col);
      v.set_col(j, col);
    }
  }
  orthonormalize_columns(v, rng);

  static const obs::Counter seeded_columns("eigen.sweep_seeded_columns");
  // Per-sweep cross-run seed: columns of (*opts.sweep_seed)[it] replace the
  // own-chain CG guess wherever their true residual is smaller.
  const auto seed_block = [&](std::size_t it) -> const Matrix* {
    if (opts.sweep_seed == nullptr || it >= opts.sweep_seed->size())
      return nullptr;
    const Matrix& cand = (*opts.sweep_seed)[it];
    if (cand.rows() != n || cand.cols() != s) return nullptr;
    return &cand;
  };

  RitzStop ritz_stop(opts.ritz_tolerance, opts.min_iterations);
  std::size_t executed = 0;

  // Warm starts: as the subspace converges, consecutive solves for the same
  // column are nearby, so seeding CG with the previous solution cuts the
  // iteration count dramatically on large manifolds.
  if (opts.use_block_cg) {
    // Blocked sweep: one multi-RHS SpMV + one block-CG call serve all s
    // columns. Each column's iterate sequence — including the post-solve
    // deflation — is bit-identical to the scalar loop below.
    Matrix warm;
    for (std::size_t it = 0; it < opts.iterations; ++it) {
      Matrix rhs(n, s);
      l_x.multiply_add(v, rhs);
      const Matrix* guess = warm.empty() ? nullptr : &warm;
      Matrix mixed;
      if (const Matrix* cand = seed_block(it)) {
        const std::vector<double> cand_r2 =
            block_residual2(l_y, opts.ly_regularization, *cand, rhs);
        const std::vector<double> own_r2 =
            warm.empty() ? rhs_norm2(rhs)
                         : block_residual2(l_y, opts.ly_regularization, warm,
                                           rhs);
        std::size_t adopted = 0;
        for (std::size_t j = 0; j < s; ++j)
          if (cand_r2[j] < own_r2[j]) ++adopted;
        if (adopted > 0) {
          mixed = warm.empty() ? Matrix(n, s) : warm;
          for (std::size_t j = 0; j < s; ++j)
            if (cand_r2[j] < own_r2[j]) mixed.set_col(j, cand->col(j));
          guess = &mixed;
          seeded_columns.add(adopted);
        }
      }
      Matrix z = solver.solve_block(rhs, guess);
      Matrix w(n, s);
      for (std::size_t j = 0; j < s; ++j) {
        std::vector<double> sol = z.col(j);
        deflate_constant(sol);
        w.set_col(j, sol);
      }
      warm = w;
      if (opts.sweep_capture) opts.sweep_capture->push_back(warm);
      const bool stop = ritz_stop.converged(v, warm, it);
      orthonormalize_columns(w, rng);
      v = std::move(w);
      ++executed;
      if (stop) {
        early_stops.add();
        break;
      }
    }
  } else {
    std::vector<std::vector<double>> warm(s);
    for (std::size_t it = 0; it < opts.iterations; ++it) {
      Matrix w(n, s);
      Matrix rhs(n, s);
      l_x.multiply_add(v, rhs);
      std::vector<double> cand_r2, own_r2;
      const Matrix* cand = seed_block(it);
      if (cand != nullptr) {
        cand_r2 = block_residual2(l_y, opts.ly_regularization, *cand, rhs);
        own_r2.resize(s);
        for (std::size_t j = 0; j < s; ++j) {
          const std::vector<double> b = rhs.col(j);
          if (warm[j].empty()) {
            own_r2[j] = dot(b, b);
          } else {
            Matrix wj(n, 1);
            wj.set_col(0, warm[j]);
            Matrix bj(n, 1);
            bj.set_col(0, b);
            own_r2[j] =
                block_residual2(l_y, opts.ly_regularization, wj, bj)[0];
          }
        }
      }
      for (std::size_t j = 0; j < s; ++j) {
        const std::vector<double> col = rhs.col(j);
        const bool use_seed = cand != nullptr && cand_r2[j] < own_r2[j];
        if (use_seed) seeded_columns.add();
        std::vector<double> sol =
            solver.solve(col, use_seed ? cand->col(j) : warm[j]);
        deflate_constant(sol);
        warm[j] = sol;
        w.set_col(j, sol);
      }
      if (opts.sweep_capture) opts.sweep_capture->push_back(w);
      const bool stop = ritz_stop.converged(v, w, it);
      orthonormalize_columns(w, rng);
      v = std::move(w);
      ++executed;
      if (stop) {
        early_stops.add();
        break;
      }
    }
  }
  subspace_iterations.add(executed);

  // Rayleigh-Ritz: project both Laplacians onto the converged subspace and
  // solve the small generalized problem exactly.
  Matrix lx_v = l_x.multiply(v);
  Matrix ly_v = l_y.multiply(v);
  Matrix a_small = matmul_at_b(v, lx_v);  // s x s
  Matrix b_small = matmul_at_b(v, ly_v);  // s x s
  // Symmetrize against round-off and regularize B like the solver does.
  for (std::size_t i = 0; i < s; ++i) {
    for (std::size_t j = i + 1; j < s; ++j) {
      const double am = 0.5 * (a_small(i, j) + a_small(j, i));
      a_small(i, j) = a_small(j, i) = am;
      const double bm = 0.5 * (b_small(i, j) + b_small(j, i));
      b_small(i, j) = b_small(j, i) = bm;
    }
    b_small(i, i) += opts.ly_regularization;
  }

  EigenDecomposition small = generalized_eigen_dense(a_small, b_small);

  // Numerical health: residuals of the Ritz pairs, r_j = L_x u_j - θ_j (L_y
  // + εI) u_j with u_j = V c_j, computed entirely from the already-produced
  // lx_v / ly_v / V blocks (read-only, O(n s²), skipped when the monitor is
  // off). Large residuals mean the subspace had not converged at the
  // iteration cap and the spectrum is approximate.
  if (obs::HealthMonitor::global().enabled()) {
    double max_rel = 0.0;
    for (std::size_t j = 0; j < s; ++j) {
      const double theta = small.values[j];
      double r2 = 0.0, a2 = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        double ax = 0.0, bx = 0.0;
        for (std::size_t c = 0; c < s; ++c) {
          const double coeff = small.vectors(c, j);
          ax += lx_v(i, c) * coeff;
          bx += (ly_v(i, c) + opts.ly_regularization * v(i, c)) * coeff;
        }
        const double r = ax - theta * bx;
        r2 += r * r;
        a2 += ax * ax;
      }
      const double rel = a2 > 0.0 ? std::sqrt(r2 / a2) : std::sqrt(r2);
      max_rel = std::max(max_rel, rel);
    }
    static const obs::Gauge max_ritz("eigen.max_ritz_residual");
    max_ritz.set(max_rel);
    obs::record_health_event(
        "eigen.ritz_residual",
        "max relative Ritz residual across " + std::to_string(s) +
            " pairs after " + std::to_string(executed) +
            " subspace iterations",
        max_rel, 0.0, obs::HealthSeverity::info);
  }

  GeneralizedEigenResult out;
  out.sweeps_executed = executed;
  out.values.resize(s);
  out.vectors = Matrix(n, s);
  // small.values ascending -> emit descending.
  for (std::size_t j = 0; j < s; ++j) {
    const std::size_t src = s - 1 - j;
    out.values[j] = small.values[src];
    std::vector<double> vec(n, 0.0);
    for (std::size_t i = 0; i < s; ++i)
      axpy(small.vectors(i, src), v.col(i), vec);
    const double nn = norm2(vec);
    if (nn > 0) scale(1.0 / nn, vec);
    out.vectors.set_col(j, vec);
  }
  return out;
}

}  // namespace cirstag::linalg
