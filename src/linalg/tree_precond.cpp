#include "linalg/tree_precond.hpp"

#include <stdexcept>

namespace cirstag::linalg {

TreeFactorization TreeFactorization::build(
    std::span<const std::uint32_t> parent,
    std::span<const double> parent_weight,
    std::span<const std::uint32_t> order, double diag_shift) {
  const std::size_t n = parent.size();
  if (parent_weight.size() != n || order.size() != n)
    throw std::invalid_argument("TreeFactorization::build: size mismatch");

  TreeFactorization f;
  f.parent_.assign(parent.begin(), parent.end());
  f.order_.assign(order.begin(), order.end());
  f.multiplier_.assign(n, 0.0);

  // Unfactored diagonal: weighted forest degree plus the shift.
  std::vector<double> diag(n, diag_shift);
  std::vector<double> degree(n, 0.0);
  for (std::size_t u = 0; u < n; ++u) {
    const std::uint32_t p = parent[u];
    if (p >= n) throw std::out_of_range("TreeFactorization::build: parent");
    if (p == u) continue;
    const double w = parent_weight[u];
    if (!(w > 0.0))
      throw std::invalid_argument(
          "TreeFactorization::build: non-positive edge weight");
    diag[u] += w;
    diag[p] += w;
    degree[u] += w;
    degree[p] += w;
  }

  // Leaf-to-root elimination (no fill on a forest).
  for (std::size_t i = n; i-- > 0;) {
    const std::uint32_t u = f.order_[i];
    const std::uint32_t p = f.parent_[u];
    if (p == u) continue;
    const double w = parent_weight[u];
    const double l = -w / diag[u];
    f.multiplier_[u] = l;
    diag[p] += l * w;  // d_p -= w² / d_u
  }

  // Roots of a shift-free forest have an exactly-zero pivot (the constant
  // nullspace). Clamp them: with deflated right-hand sides the root equation
  // is 0 = 0, and the CG driver re-deflates after every apply, so any
  // positive pivot yields the same preconditioned iteration.
  f.inv_diag_.assign(n, 1.0);
  for (std::size_t u = 0; u < n; ++u) {
    const double floor_u = 1e-12 * (degree[u] > 0.0 ? degree[u] : 1.0);
    f.inv_diag_[u] = diag[u] > floor_u ? 1.0 / diag[u] : 1.0;
  }
  return f;
}

TreeFactorization TreeFactorization::from_state(
    std::vector<std::uint32_t> parent, std::vector<std::uint32_t> order,
    std::vector<double> multipliers, std::vector<double> inv_diag) {
  const std::size_t n = inv_diag.size();
  if (parent.size() != n || order.size() != n || multipliers.size() != n)
    throw std::invalid_argument(
        "TreeFactorization::from_state: array length mismatch");
  for (std::size_t u = 0; u < n; ++u)
    if (parent[u] >= n || order[u] >= n)
      throw std::invalid_argument(
          "TreeFactorization::from_state: index out of range");
  TreeFactorization f;
  f.parent_ = std::move(parent);
  f.order_ = std::move(order);
  f.multiplier_ = std::move(multipliers);
  f.inv_diag_ = std::move(inv_diag);
  return f;
}

void TreeFactorization::apply(std::span<const double> r,
                              std::span<double> z) const {
  const std::size_t n = dimension();
  if (r.size() != n || z.size() != n)
    throw std::invalid_argument("TreeFactorization::apply: size mismatch");
  for (std::size_t i = 0; i < n; ++i) z[i] = r[i];
  // Forward solve L v = r: reverse topological order finalizes every node
  // before scattering its contribution to the parent.
  for (std::size_t i = n; i-- > 0;) {
    const std::uint32_t u = order_[i];
    const std::uint32_t p = parent_[u];
    if (p != u) z[p] -= multiplier_[u] * z[u];
  }
  for (std::size_t i = 0; i < n; ++i) z[i] *= inv_diag_[i];
  // Backward solve Lᵀ z = w: parents finalize before their children.
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t u = order_[i];
    const std::uint32_t p = parent_[u];
    if (p != u) z[u] -= multiplier_[u] * z[p];
  }
}

}  // namespace cirstag::linalg
