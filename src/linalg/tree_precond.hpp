#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace cirstag::linalg {

/// Combinatorial (spanning-tree) preconditioner: an exact LDLᵀ factorization
/// of the Laplacian of a rooted spanning forest, optionally shifted by a
/// diagonal regularization. Elimination in leaf-to-root order is fill-free,
/// so both the factorization and each apply() are O(n).
///
/// For the ill-conditioned weighted kNN Laplacians of CirSTAG's manifolds a
/// low-stretch tree (the max-weight spanning forest — minimum data-distance
/// backbone) captures far more of the spectrum than the Jacobi diagonal,
/// cutting CG iteration counts severalfold. Singular (shift = 0) forests are
/// handled by clamping the vanishing root pivots; combined with the CG
/// driver's constant-vector deflation the operator stays SPD on the solve
/// subspace.
class TreeFactorization {
 public:
  TreeFactorization() = default;

  /// Factor the forest Laplacian + diag_shift·I.
  ///
  /// `parent[u]` is u's parent node (parent[u] == u marks a root),
  /// `parent_weight[u]` the weight of the edge to the parent (ignored for
  /// roots), and `order` a roots-first topological order (e.g. BFS) — the
  /// reverse of `order` must visit every child before its parent.
  [[nodiscard]] static TreeFactorization build(
      std::span<const std::uint32_t> parent,
      std::span<const double> parent_weight,
      std::span<const std::uint32_t> order, double diag_shift = 0.0);

  [[nodiscard]] bool empty() const { return inv_diag_.empty(); }
  [[nodiscard]] std::size_t dimension() const { return inv_diag_.size(); }

  /// z = M⁻¹ r via forward sweep (leaves→root), diagonal scaling, backward
  /// sweep (root→leaves). Deterministic and serial per call; independent
  /// calls may run concurrently (read-only state).
  void apply(std::span<const double> r, std::span<double> z) const;

  /// --- factored-state export/restore (io/snapshot) ------------------------
  /// The four arrays below fully determine the factorization; a binary
  /// snapshot stores them so a restore skips the Kruskal + BFS + LDLᵀ build.
  [[nodiscard]] std::span<const std::uint32_t> parent() const {
    return parent_;
  }
  [[nodiscard]] std::span<const std::uint32_t> order() const { return order_; }
  [[nodiscard]] std::span<const double> multipliers() const {
    return multiplier_;
  }
  [[nodiscard]] std::span<const double> inv_diag() const { return inv_diag_; }

  /// Reassemble a factorization from previously exported state verbatim.
  /// Throws std::invalid_argument when the array lengths disagree.
  [[nodiscard]] static TreeFactorization from_state(
      std::vector<std::uint32_t> parent, std::vector<std::uint32_t> order,
      std::vector<double> multipliers, std::vector<double> inv_diag);

 private:
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint32_t> order_;     // roots-first topological order
  std::vector<double> multiplier_;       // L(parent(u), u) = -w_u / d_u
  std::vector<double> inv_diag_;         // 1 / factored pivots
};

}  // namespace cirstag::linalg
