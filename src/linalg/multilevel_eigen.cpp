#include "linalg/multilevel_eigen.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "linalg/lanczos.hpp"
#include "linalg/matrix.hpp"
#include "linalg/rng.hpp"
#include "linalg/vector_ops.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"

namespace cirstag::linalg {

namespace {

/// Refinement sweeps spent across both multilevel paths; locked into the CI
/// scale-smoke baseline (counters, never wall time).
const obs::Counter& refine_sweep_counter() {
  static const obs::Counter c("eigen.ritz_refine_sweeps");
  return c;
}

/// Piecewise-constant prolongation: row i of the output copies row map[i] of
/// the coarse block. Strictly serial; the map is a pure function of the
/// graph, so this is too.
Matrix prolong(const Matrix& coarse, std::span<const std::uint32_t> map) {
  Matrix fine(map.size(), coarse.cols());
  for (std::size_t i = 0; i < map.size(); ++i) {
    const std::span<const double> src = coarse.row(map[i]);
    std::copy(src.begin(), src.end(), fine.row(i).begin());
  }
  return fine;
}

/// Modified Gram-Schmidt with rank repair, mirroring the (file-local)
/// orthonormalization of generalized_eigen.cpp: a column that collapses
/// under projection — prolonged vectors of a near-duplicate aggregate can —
/// is replaced by a fresh deterministic random draw and re-projected.
void orthonormalize_columns(Matrix& v, Rng& rng) {
  const std::size_t n = v.rows();
  const std::size_t s = v.cols();
  std::vector<double> col(n);
  std::vector<double> other(n);
  for (std::size_t j = 0; j < s; ++j) {
    for (int attempt = 0; attempt < 3; ++attempt) {
      for (std::size_t i = 0; i < n; ++i) col[i] = v(i, j);
      for (std::size_t p = 0; p < j; ++p) {
        for (std::size_t i = 0; i < n; ++i) other[i] = v(i, p);
        const double proj = dot(col, other);
        axpy(-proj, other, col);
      }
      const double nrm = norm2(col);
      if (nrm > 1e-10) {
        scale(1.0 / nrm, col);
        v.set_col(j, col);
        break;
      }
      for (std::size_t i = 0; i < n; ++i) col[i] = rng.normal();
      v.set_col(j, col);
    }
  }
}

/// Max spectrum-relative residual ‖A u_j − θ_j u_j‖ / b over the returned
/// Ritz pairs (b >= ‖A‖, u_j unit-norm), reusing the already-computed block
/// product A·W (A·V = (A·W)·Q). Normalizing by the spectrum bound instead of
/// ‖A u_j‖ keeps near-nullspace pairs (θ ≈ 0, so ‖A u‖ ≈ 0) well-defined.
double max_standard_residual(const Matrix& v, const Matrix& av,
                             std::span<const double> values, double bound) {
  double worst = 0.0;
  std::vector<double> r(v.rows());
  for (std::size_t j = 0; j < values.size(); ++j) {
    for (std::size_t i = 0; i < v.rows(); ++i)
      r[i] = av(i, j) - values[j] * v(i, j);
    worst = std::max(worst, norm2(r) / bound);
  }
  return worst;
}

void record_residual_event(double worst, double bound) {
  if (!obs::HealthMonitor::global().enabled()) return;
  char detail[96];
  std::snprintf(detail, sizeof(detail),
                "max multilevel Ritz relative residual %.3e", worst);
  obs::record_health_event("eigen.multilevel_residual", detail, worst, bound,
                           worst > bound ? obs::HealthSeverity::warning
                                         : obs::HealthSeverity::info);
}

}  // namespace

EigenDecomposition multilevel_smallest_eigenpairs(
    const SparseMatrix& fine, std::span<const SparseMatrix> coarse,
    std::span<const ProlongMap> maps, std::size_t k,
    const MultilevelSmallestOptions& opts, MultilevelStats* stats) {
  if (coarse.size() != maps.size())
    throw std::invalid_argument(
        "multilevel_smallest_eigenpairs: level/map count mismatch");
  // Degenerate hierarchies (no productive coarsening round, or a coarsest
  // level too small to carry k directions) fall through to the exact solver.
  if (coarse.empty() || coarse.back().rows() <= k + 2) {
    return smallest_eigenpairs(fine, k, opts.spectrum_upper_bound,
                               opts.lanczos_subspace, opts.seed);
  }

  EigenDecomposition cur =
      smallest_eigenpairs(coarse.back(), k, opts.spectrum_upper_bound,
                          opts.lanczos_subspace, opts.seed);
  if (stats != nullptr) {
    stats->levels = coarse.size();
    stats->coarsest_n = coarse.back().rows();
  }

  std::size_t refine_total = 0;
  const double b = opts.spectrum_upper_bound;
  // Walk the V-cycle upward: level index l counts coarse levels, l == 0 is
  // the fine operator itself.
  for (std::size_t l = coarse.size(); l-- > 0;) {
    const SparseMatrix& a = (l == 0) ? fine : coarse[l - 1];
    Matrix w = prolong(cur.vectors, maps[l]);
    Rng rng(opts.seed ^ (0x9e3779b97f4a7c15ULL * (l + 1)));
    orthonormalize_columns(w, rng);
    Matrix aw;
    for (std::size_t sweep = 0; sweep < opts.refine_sweeps; ++sweep) {
      // One shifted power sweep W <- (b·I − A)·W pulls the block toward the
      // small end of A's spectrum (b >= λ_max makes the map positive).
      aw = a.multiply(w);
      scale(b, w.data());
      axpy(-1.0, aw.data(), w.data());
      orthonormalize_columns(w, rng);
      ++refine_total;
    }
    // Dense Rayleigh-Ritz on A itself recovers ascending Ritz values with
    // the same ordering contract as smallest_eigenpairs.
    aw = a.multiply(w);
    Matrix b_small = matmul_at_b(w, aw);
    for (std::size_t r = 0; r < b_small.rows(); ++r)
      for (std::size_t c = r + 1; c < b_small.cols(); ++c) {
        const double avg = 0.5 * (b_small(r, c) + b_small(c, r));
        b_small(r, c) = avg;
        b_small(c, r) = avg;
      }
    const EigenDecomposition small = jacobi_eigen(b_small);
    cur.values = small.values;
    cur.vectors = matmul(w, small.vectors);
    if (l == 0)
      record_residual_event(
          max_standard_residual(cur.vectors, matmul(aw, small.vectors),
                                cur.values, b),
          kMultilevelResidualBound);
  }

  refine_sweep_counter().add(refine_total);
  if (stats != nullptr) stats->ritz_refine_sweeps += refine_total;
  return cur;
}

GeneralizedEigenResult multilevel_generalized_eigen(
    std::span<const SparseMatrix> lx, std::span<const SparseMatrix> ly,
    std::span<const ProlongMap> maps, const GeneralizedEigenOptions& opts,
    std::size_t refine_sweeps, const LaplacianSolver* finest_solver,
    MultilevelStats* stats) {
  if (lx.empty() || lx.size() != ly.size() || maps.size() + 1 != lx.size())
    throw std::invalid_argument(
        "multilevel_generalized_eigen: inconsistent level spans");
  if (maps.empty() || lx.back().rows() <= opts.num_pairs + 2) {
    return generalized_eigen_sparse(lx[0], ly[0], opts, finest_solver);
  }

  // Coarsest level: the full subspace-iteration budget, cold start. The
  // sweep-seed warm paths stay out of the hierarchy entirely — they belong
  // to the nearby-run (perturbation sweep) machinery.
  GeneralizedEigenOptions copts = opts;
  copts.initial_subspace = nullptr;
  copts.sweep_seed = nullptr;
  copts.sweep_capture = nullptr;
  GeneralizedEigenResult cur =
      generalized_eigen_sparse(lx.back(), ly.back(), copts, nullptr);
  if (stats != nullptr) {
    stats->levels = maps.size();
    stats->coarsest_n = lx.back().rows();
  }

  std::size_t total_sweeps = cur.sweeps_executed;
  std::size_t refine_total = 0;
  for (std::size_t l = maps.size(); l-- > 0;) {
    Matrix w = prolong(cur.vectors, maps[l]);
    GeneralizedEigenOptions ropts = copts;
    ropts.initial_subspace = &w;
    ropts.iterations = refine_sweeps;
    ropts.min_iterations = std::min(opts.min_iterations, refine_sweeps);
    cur = generalized_eigen_sparse(lx[l], ly[l], ropts,
                                   l == 0 ? finest_solver : nullptr);
    total_sweeps += cur.sweeps_executed;
    refine_total += cur.sweeps_executed;
  }

  refine_sweep_counter().add(refine_total);
  if (stats != nullptr) stats->ritz_refine_sweeps += refine_total;
  cur.sweeps_executed = total_sweeps;

  if (obs::HealthMonitor::global().enabled()) {
    // Finest-level pencil residual ‖L_X u − θ (L_Y + εI) u‖ / ‖L_X u‖ per
    // returned pair — the documented drift contract of multilevel mode.
    double worst = 0.0;
    std::vector<double> r(lx[0].rows());
    for (std::size_t j = 0; j < cur.values.size(); ++j) {
      const std::vector<double> u = cur.vectors.col(j);
      const std::vector<double> xu = lx[0].multiply(u);
      const std::vector<double> yu = ly[0].multiply(u);
      for (std::size_t i = 0; i < r.size(); ++i)
        r[i] = xu[i] -
               cur.values[j] * (yu[i] + opts.ly_regularization * u[i]);
      const double denom = norm2(xu);
      if (denom > 0.0) worst = std::max(worst, norm2(r) / denom);
    }
    record_residual_event(worst, kMultilevelPencilResidualBound);
  }
  return cur;
}

}  // namespace cirstag::linalg
