#include "linalg/sparse.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "kernels/kernels.hpp"
#include "runtime/parallel_for.hpp"
#include "util/arena.hpp"

namespace cirstag::linalg {

namespace {
/// Rows per parallel chunk for row-partitioned products. Each row's
/// accumulation order is unchanged, so results are bit-identical to the
/// serial loop at any thread count; the grain only bounds dispatch overhead.
constexpr std::size_t kSpmvGrain = 1024;
/// Below this many nonzeros a mat-vec is cheaper than waking the pool.
constexpr std::size_t kSpmvParallelMinNnz = 16384;
}  // namespace

SparseMatrix SparseMatrix::from_triplets(std::size_t rows, std::size_t cols,
                                         std::vector<Triplet> triplets) {
  // 32-bit signed gather indices bound the column count (kernels.hpp).
  if (cols > static_cast<std::size_t>(std::numeric_limits<std::int32_t>::max()))
    throw std::length_error("SparseMatrix::from_triplets: too many columns");
  for (const auto& t : triplets) {
    if (t.row >= rows || t.col >= cols)
      throw std::out_of_range("SparseMatrix::from_triplets: index out of range");
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });

  SparseMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(rows + 1, 0);
  m.col_idx_.reserve(triplets.size());
  m.values_.reserve(triplets.size());

  std::size_t i = 0;
  for (std::size_t r = 0; r < rows; ++r) {
    m.row_ptr_[r] = m.values_.size();
    while (i < triplets.size() && triplets[i].row == r) {
      const std::size_t c = triplets[i].col;
      double v = 0.0;
      while (i < triplets.size() && triplets[i].row == r &&
             triplets[i].col == c) {
        v += triplets[i].value;
        ++i;
      }
      if (v != 0.0) {
        m.col_idx_.push_back(static_cast<std::uint32_t>(c));
        m.values_.push_back(v);
      }
    }
  }
  m.row_ptr_[rows] = m.values_.size();
  return m;
}

std::vector<double> SparseMatrix::multiply(std::span<const double> x) const {
  std::vector<double> y(rows_, 0.0);
  multiply_add(x, y);
  return y;
}

void SparseMatrix::multiply_add(std::span<const double> x, std::span<double> y,
                                double alpha) const {
  if (x.size() != cols_ || y.size() != rows_)
    throw std::invalid_argument("SparseMatrix::multiply_add: size mismatch");
  const kernels::KernelTable& kt = kernels::table();
  auto row_range = [&](std::size_t lo, std::size_t hi) {
    kt.spmv_range(row_ptr_.data(), col_idx_.data(), values_.data(), x.data(),
                  alpha, y.data(), lo, hi);
  };
  if (nnz() < kSpmvParallelMinNnz) {
    row_range(0, rows_);
  } else {
    runtime::parallel_for_chunks(0, rows_, kSpmvGrain, row_range);
  }
}

void SparseMatrix::multiply_add(const Matrix& x, Matrix& y,
                                double alpha) const {
  if (x.rows() != cols_ || y.rows() != rows_ || x.cols() != y.cols())
    throw std::invalid_argument(
        "SparseMatrix::multiply_add(Matrix): shape mismatch");
  const std::size_t k = x.cols();
  if (k == 0) return;
  const kernels::KernelTable& kt = kernels::table();
  auto row_range = [&](std::size_t lo, std::size_t hi) {
    // The kernel accumulates each (row, column) in nnz order through a
    // k-wide register-blocked accumulator, so column j of the result is
    // bit-identical to the single-vector spmv on X.col(j).
    util::ArenaFrame frame;
    const auto acc = frame.alloc<double>(4 * kernels::padded_cols(k));
    kt.spmm_range(row_ptr_.data(), col_idx_.data(), values_.data(),
                  x.data().data(), x.cols(), alpha, y.data().data(), y.cols(),
                  k, acc.data(), lo, hi);
  };
  if (nnz() * k < kSpmvParallelMinNnz) {
    row_range(0, rows_);
  } else {
    runtime::parallel_for_chunks(0, rows_, kSpmvGrain / 4, row_range);
  }
}

Matrix SparseMatrix::multiply(const Matrix& b) const {
  if (b.rows() != cols_)
    throw std::invalid_argument("SparseMatrix::multiply(Matrix): shape mismatch");
  Matrix c(rows_, b.cols());
  if (b.cols() == 0) return c;
  const kernels::KernelTable& kt = kernels::table();
  auto row_range = [&](std::size_t lo, std::size_t hi) {
    util::ArenaFrame frame;
    const auto acc =
        frame.alloc<double>(4 * kernels::padded_cols(b.cols()));
    kt.spmm_range(row_ptr_.data(), col_idx_.data(), values_.data(),
                  b.data().data(), b.cols(), 1.0, c.data().data(), c.cols(),
                  b.cols(), acc.data(), lo, hi);
  };
  if (nnz() * b.cols() < kSpmvParallelMinNnz) {
    row_range(0, rows_);
  } else {
    runtime::parallel_for_chunks(0, rows_, kSpmvGrain / 4, row_range);
  }
  return c;
}

SparseMatrix SparseMatrix::transposed() const {
  std::vector<Triplet> trips;
  trips.reserve(nnz());
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
      trips.push_back({col_idx_[k], r, values_[k]});
  return from_triplets(cols_, rows_, std::move(trips));
}

std::vector<double> SparseMatrix::diagonal() const {
  std::vector<double> d(std::min(rows_, cols_), 0.0);
  for (std::size_t r = 0; r < d.size(); ++r) d[r] = coeff(r, r);
  return d;
}

double SparseMatrix::coeff(std::size_t row, std::size_t col) const {
  if (row >= rows_ || col >= cols_)
    throw std::out_of_range("SparseMatrix::coeff");
  const auto begin = col_idx_.begin() + static_cast<long>(row_ptr_[row]);
  const auto end = col_idx_.begin() + static_cast<long>(row_ptr_[row + 1]);
  const auto it = std::lower_bound(begin, end, col);
  if (it == end || *it != col) return 0.0;
  return values_[static_cast<std::size_t>(it - col_idx_.begin())];
}

std::span<const std::uint32_t> SparseMatrix::row_indices(std::size_t r) const {
  return {col_idx_.data() + row_ptr_[r], row_ptr_[r + 1] - row_ptr_[r]};
}

std::span<const double> SparseMatrix::row_values(std::size_t r) const {
  return {values_.data() + row_ptr_[r], row_ptr_[r + 1] - row_ptr_[r]};
}

Matrix SparseMatrix::to_dense() const {
  Matrix m(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
      m(r, col_idx_[k]) = values_[k];
  return m;
}

}  // namespace cirstag::linalg
