#pragma once

#include <cstddef>
#include <vector>

#include "linalg/cg.hpp"
#include "linalg/dense_eigen.hpp"
#include "linalg/rng.hpp"

namespace cirstag::linalg {

/// Options for the Lanczos extreme-eigenpair solver.
struct LanczosOptions {
  std::size_t num_eigenpairs = 8;    ///< how many pairs to return
  std::size_t max_subspace = 0;      ///< Krylov dimension (0 = auto: 4k+32)
  double tolerance = 1e-8;           ///< residual bound on Ritz pairs
  bool want_smallest = true;         ///< smallest vs largest eigenvalues
  std::uint64_t seed = 1234;         ///< start-vector seed
  /// Optional warm start (perturbation sweeps): the initial Krylov vector,
  /// normalized internally, replacing the random draw. A mix of baseline
  /// eigenvectors steers the recurrence toward the wanted invariant
  /// subspace on nearby problems. Changes results at tolerance level —
  /// bit-exact paths must leave this null. Must be length n and nonzero.
  const std::vector<double>* start_vector = nullptr;
};

/// Lanczos with full reorthogonalization for a symmetric operator.
///
/// This stands in for the paper's "fast multilevel eigensolver [31]": it
/// computes the first few eigenpairs of the normalized Laplacian needed for
/// the Phase-1 spectral embedding. Full reorthogonalization keeps the basis
/// numerically orthogonal at the modest subspace sizes CirSTAG uses
/// (tens of vectors), avoiding ghost eigenvalues.
///
/// Returns pairs sorted ascending (if want_smallest) or descending.
[[nodiscard]] EigenDecomposition lanczos_eigen(const LinearOperator& op,
                                               std::size_t n,
                                               const LanczosOptions& opts = {});

/// Smallest-k eigenpairs of a sparse symmetric matrix (e.g. a normalized
/// Laplacian). Internally runs Lanczos on (shift*I - A) so that the smallest
/// eigenvalues of A become the dominant end of the spectrum, which Lanczos
/// resolves fastest; `spectrum_upper_bound` must be >= λ_max(A)
/// (2.0 for normalized Laplacians).
[[nodiscard]] EigenDecomposition smallest_eigenpairs(
    const SparseMatrix& a, std::size_t k, double spectrum_upper_bound,
    std::size_t max_subspace = 0, std::uint64_t seed = 1234,
    const std::vector<double>* start_vector = nullptr);

}  // namespace cirstag::linalg
