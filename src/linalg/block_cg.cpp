#include "linalg/block_cg.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "kernels/kernels.hpp"
#include "obs/metrics.hpp"
#include "runtime/parallel_for.hpp"
#include "util/aligned.hpp"
#include "util/arena.hpp"

namespace cirstag::linalg {

namespace {

/// Rows per parallel chunk for element-wise block updates; fixed grain keeps
/// the decomposition (and hence every partial) thread-count independent.
constexpr std::size_t kRowGrain = 2048;
/// Below this many elements an update is cheaper than waking the pool.
constexpr std::size_t kParallelMinElems = 16384;

using Mask = std::vector<std::uint8_t>;
/// Column mask in the kernel layer's bit-pattern form, zero-padded to the
/// 4-lane multiple the masked kernels require (kernels.hpp).
using LaneMask = std::vector<double, util::AlignedAllocator<double>>;
/// Padded per-column coefficient vector (fully loaded by the kernels, so the
/// pad lanes must exist and stay finite).
using Coeffs = std::vector<double, util::AlignedAllocator<double>>;

LaneMask make_lane_mask(const Mask& active) {
  LaneMask m(kernels::padded_cols(active.size()), kernels::kMaskOff);
  for (std::size_t j = 0; j < active.size(); ++j)
    if (active[j]) m[j] = kernels::kMaskOn;
  return m;
}

/// out[j] = Σ_i A(i,j)·B(i,j) for active columns, reduced through the same
/// 8-lane row tree as the single-vector `dot` kernel — bit-identical per
/// column (serial over rows; thread-count invariant by construction).
void column_dots(const Matrix& a, const Matrix& b, const LaneMask& mask,
                 Coeffs& out) {
  const std::size_t n = a.rows(), k = a.cols();
  std::fill(out.begin(), out.end(), 0.0);
  util::ArenaFrame frame;
  const auto scratch = frame.alloc<double>(8 * kernels::padded_cols(k));
  kernels::table().col_dots(a.data().data(), b.data().data(), n, k,
                            mask.data(), out.data(), scratch.data());
}

/// Remove the mean of every active column (two-pass — the per-column
/// association of the single-vector deflate_constant, 8-lane sum tree).
void deflate_columns(Matrix& x, const LaneMask& mask) {
  const std::size_t n = x.rows(), k = x.cols();
  if (n == 0) return;
  const kernels::KernelTable& kt = kernels::table();
  util::ArenaFrame frame;
  const std::size_t kp = kernels::padded_cols(k);
  const auto mean = frame.alloc_zero<double>(kp);
  const auto scratch = frame.alloc<double>(8 * kp);
  kt.col_sums(x.data().data(), n, k, mask.data(), mean.data(), scratch.data());
  for (std::size_t j = 0; j < k; ++j) mean[j] /= static_cast<double>(n);
  kt.sub_cols(mean.data(), x.data().data(), n, k, mask.data());
}

/// Deflate one column — used exactly once per column, at retirement, so a
/// column is never double-deflated (deflation is not bitwise idempotent).
/// Strided mirror of deflate_constant: 8-lane sum tree, then subtract.
void deflate_column(Matrix& x, std::size_t j) {
  const std::size_t n = x.rows();
  if (n == 0) return;
  double acc[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  for (std::size_t i = 0; i < n; ++i) acc[i & 7] += x(i, j);
  const double mean = kernels::reduce8_tree(acc) / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) x(i, j) -= mean;
}

/// y(i,j) += c[j]·x(i,j) on active columns (element-parallel, fixed chunks).
void axpy_columns(const Coeffs& c, const Matrix& x, Matrix& y,
                  const LaneMask& mask) {
  const std::size_t n = x.rows(), k = x.cols();
  const kernels::KernelTable& kt = kernels::table();
  auto body = [&](std::size_t lo, std::size_t hi) {
    kt.axpy_cols(c.data(), x.data().data() + lo * k, y.data().data() + lo * k,
                 hi - lo, k, mask.data());
  };
  if (n * k < kParallelMinElems) {
    body(0, n);
  } else {
    runtime::parallel_for_chunks(0, n, kRowGrain, body);
  }
}

/// p(i,j) = z(i,j) + beta[j]·p(i,j) on active columns.
void update_directions(const Matrix& z, const Coeffs& beta, Matrix& p,
                       const LaneMask& mask) {
  const std::size_t n = z.rows(), k = z.cols();
  const kernels::KernelTable& kt = kernels::table();
  auto body = [&](std::size_t lo, std::size_t hi) {
    kt.xpby_cols(beta.data(), z.data().data() + lo * k,
                 p.data().data() + lo * k, hi - lo, k, mask.data());
  };
  if (n * k < kParallelMinElems) {
    body(0, n);
  } else {
    runtime::parallel_for_chunks(0, n, kRowGrain, body);
  }
}

}  // namespace

BlockCgResult block_conjugate_gradient(const BlockLinearOperator& op,
                                       const Matrix& b,
                                       const BlockLinearOperator& precond,
                                       const CgOptions& opts,
                                       const Matrix* initial_guess) {
  const std::size_t n = b.rows();
  const std::size_t k = b.cols();
  BlockCgResult res;
  res.solutions = Matrix(n, k);
  res.residuals.assign(k, 0.0);
  res.iterations.assign(k, 0);
  res.converged.assign(k, 0);
  res.breakdown.assign(k, 0);
  if (k == 0 || n == 0) return res;
  if (initial_guess &&
      (initial_guess->rows() != n || initial_guess->cols() != k))
    throw std::invalid_argument("block_conjugate_gradient: bad guess shape");

  const std::size_t kp = kernels::padded_cols(k);
  Matrix r = b;
  const LaneMask all_mask = make_lane_mask(Mask(k, 1));
  if (opts.deflate_constant) deflate_columns(r, all_mask);

  Coeffs bnorm(kp, 0.0);
  column_dots(r, r, all_mask, bnorm);
  for (auto& v : bnorm) v = std::sqrt(v);

  Mask active(k, 0);
  std::size_t num_active = 0;
  for (std::size_t j = 0; j < k; ++j) {
    if (bnorm[j] == 0.0) {
      res.converged[j] = 1;  // x stays 0 — single CG's zero-rhs early return
    } else {
      active[j] = 1;
      ++num_active;
    }
  }
  if (num_active == 0) return res;
  LaneMask amask = make_lane_mask(active);

  if (initial_guess) {
    for (std::size_t i = 0; i < n; ++i) {
      const auto g = initial_guess->row(i);
      auto x = res.solutions.row(i);
      for (std::size_t j = 0; j < k; ++j)
        if (active[j]) x[j] = g[j];
    }
    if (opts.deflate_constant) deflate_columns(res.solutions, amask);
    Matrix ax(n, k);
    op(res.solutions, ax);
    if (opts.deflate_constant) deflate_columns(ax, amask);
    Coeffs minus_one(kp, 0.0);
    std::fill_n(minus_one.begin(), k, -1.0);
    axpy_columns(minus_one, ax, r, amask);
  }

  Matrix z(n, k);
  auto apply_precond = [&](const Matrix& in, Matrix& out) {
    if (precond) {
      precond(in, out);
    } else {
      std::copy(in.data().begin(), in.data().end(), out.data().begin());
    }
    if (opts.deflate_constant) deflate_columns(out, amask);
  };

  apply_precond(r, z);
  Matrix p = z;
  Matrix ap(n, k);
  Coeffs rz(kp, 0.0);
  column_dots(r, z, amask, rz);

  Coeffs pap(kp, 0.0), alpha(kp, 0.0), neg_alpha(kp, 0.0), rnorm2(kp, 0.0),
      rz_new(kp, 0.0), beta(kp, 0.0);

  // ‖r_j‖/‖b_j‖ recomputed at breakdown / max-iteration retirement — the
  // strided mirror of the single-vector norm (8-lane tree over rows).
  auto tail_residual = [&](std::size_t j) {
    double acc[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    for (std::size_t i = 0; i < n; ++i)
      acc[i & 7] = std::fma(r(i, j), r(i, j), acc[i & 7]);
    return std::sqrt(kernels::reduce8_tree(acc)) / bnorm[j];
  };

  std::size_t sweeps = 0;
  for (std::size_t it = 0; it < opts.max_iterations && num_active > 0; ++it) {
    ++sweeps;
    ap.fill(0.0);
    op(p, ap);
    if (opts.deflate_constant) deflate_columns(ap, amask);
    column_dots(p, ap, amask, pap);
    // Indefinite directions retire before the α step — the single-vector
    // early break, but per column.
    for (std::size_t j = 0; j < k; ++j) {
      if (active[j] && pap[j] <= 0.0) {
        res.breakdown[j] = 1;
        res.residuals[j] = tail_residual(j);
        if (opts.deflate_constant) deflate_column(res.solutions, j);
        active[j] = 0;
        --num_active;
      }
    }
    if (num_active == 0) break;
    amask = make_lane_mask(active);
    for (std::size_t j = 0; j < k; ++j) {
      if (!active[j]) continue;
      alpha[j] = rz[j] / pap[j];
      neg_alpha[j] = -alpha[j];
    }
    axpy_columns(alpha, p, res.solutions, amask);
    axpy_columns(neg_alpha, ap, r, amask);
    column_dots(r, r, amask, rnorm2);
    for (std::size_t j = 0; j < k; ++j) {
      if (!active[j]) continue;
      res.iterations[j] = it + 1;
      const double rel = std::sqrt(rnorm2[j]) / bnorm[j];
      if (rel < opts.tolerance) {
        res.converged[j] = 1;
        res.residuals[j] = rel;
        if (opts.deflate_constant) deflate_column(res.solutions, j);
        active[j] = 0;
        --num_active;
      }
    }
    if (num_active == 0) break;
    amask = make_lane_mask(active);
    apply_precond(r, z);
    column_dots(r, z, amask, rz_new);
    for (std::size_t j = 0; j < k; ++j) {
      if (!active[j]) continue;
      beta[j] = rz_new[j] / rz[j];
      rz[j] = rz_new[j];
    }
    update_directions(z, beta, p, amask);
  }

  // Columns that exhausted the iteration budget.
  for (std::size_t j = 0; j < k; ++j) {
    if (!active[j]) continue;
    res.residuals[j] = tail_residual(j);
    if (opts.deflate_constant) deflate_column(res.solutions, j);
  }
  for (std::size_t j = 0; j < k; ++j) res.total_iterations += res.iterations[j];

  static const obs::Counter solves("blockcg.solves");
  static const obs::Counter block_sweeps("blockcg.sweeps");
  static const obs::Counter column_iterations("blockcg.column_iterations");
  static const obs::Counter breakdown_columns("blockcg.breakdown_columns");
  static const obs::Counter columns("blockcg.columns");
  solves.add();
  block_sweeps.add(sweeps);
  column_iterations.add(res.total_iterations);
  columns.add(k);
  std::uint64_t broken = 0;
  for (std::size_t j = 0; j < k; ++j) broken += res.breakdown[j];
  if (broken > 0) breakdown_columns.add(broken);
  return res;
}

}  // namespace cirstag::linalg
