#include "linalg/block_cg.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "runtime/parallel_for.hpp"

namespace cirstag::linalg {

namespace {

/// Rows per parallel chunk for element-wise block updates; fixed grain keeps
/// the decomposition (and hence every partial) thread-count independent.
constexpr std::size_t kRowGrain = 2048;
/// Below this many elements an update is cheaper than waking the pool.
constexpr std::size_t kParallelMinElems = 16384;

using Mask = std::vector<std::uint8_t>;

/// out[j] = Σ_i A(i,j)·B(i,j) for active columns. The i-outer serial loop
/// reproduces each column's single-vector `dot` association exactly.
void column_dots(const Matrix& a, const Matrix& b, const Mask& active,
                 std::vector<double>& out) {
  const std::size_t n = a.rows(), k = a.cols();
  std::fill(out.begin(), out.end(), 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto ra = a.row(i);
    const auto rb = b.row(i);
    for (std::size_t j = 0; j < k; ++j)
      if (active[j]) out[j] += ra[j] * rb[j];
  }
}

/// Remove the mean of every active column (two-pass, row-ascending — the
/// per-column association of the single-vector deflate_constant).
void deflate_columns(Matrix& x, const Mask& active) {
  const std::size_t n = x.rows(), k = x.cols();
  if (n == 0) return;
  std::vector<double> mean(k, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto r = x.row(i);
    for (std::size_t j = 0; j < k; ++j)
      if (active[j]) mean[j] += r[j];
  }
  for (std::size_t j = 0; j < k; ++j) mean[j] /= static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto r = x.row(i);
    for (std::size_t j = 0; j < k; ++j)
      if (active[j]) r[j] -= mean[j];
  }
}

/// Deflate one column — used exactly once per column, at retirement, so a
/// column is never double-deflated (deflation is not bitwise idempotent).
void deflate_column(Matrix& x, std::size_t j) {
  const std::size_t n = x.rows();
  if (n == 0) return;
  double mean = 0.0;
  for (std::size_t i = 0; i < n; ++i) mean += x(i, j);
  mean /= static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) x(i, j) -= mean;
}

/// y(i,j) += c[j]·x(i,j) on active columns (element-parallel, fixed chunks).
void axpy_columns(const std::vector<double>& c, const Matrix& x, Matrix& y,
                  const Mask& active) {
  const std::size_t n = x.rows(), k = x.cols();
  auto body = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      const auto rx = x.row(i);
      auto ry = y.row(i);
      for (std::size_t j = 0; j < k; ++j)
        if (active[j]) ry[j] += c[j] * rx[j];
    }
  };
  if (n * k < kParallelMinElems) {
    body(0, n);
  } else {
    runtime::parallel_for_chunks(0, n, kRowGrain, body);
  }
}

/// p(i,j) = z(i,j) + beta[j]·p(i,j) on active columns.
void update_directions(const Matrix& z, const std::vector<double>& beta,
                       Matrix& p, const Mask& active) {
  const std::size_t n = z.rows(), k = z.cols();
  auto body = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      const auto rz = z.row(i);
      auto rp = p.row(i);
      for (std::size_t j = 0; j < k; ++j)
        if (active[j]) rp[j] = rz[j] + beta[j] * rp[j];
    }
  };
  if (n * k < kParallelMinElems) {
    body(0, n);
  } else {
    runtime::parallel_for_chunks(0, n, kRowGrain, body);
  }
}

}  // namespace

BlockCgResult block_conjugate_gradient(const BlockLinearOperator& op,
                                       const Matrix& b,
                                       const BlockLinearOperator& precond,
                                       const CgOptions& opts,
                                       const Matrix* initial_guess) {
  const std::size_t n = b.rows();
  const std::size_t k = b.cols();
  BlockCgResult res;
  res.solutions = Matrix(n, k);
  res.residuals.assign(k, 0.0);
  res.iterations.assign(k, 0);
  res.converged.assign(k, 0);
  res.breakdown.assign(k, 0);
  if (k == 0 || n == 0) return res;
  if (initial_guess &&
      (initial_guess->rows() != n || initial_guess->cols() != k))
    throw std::invalid_argument("block_conjugate_gradient: bad guess shape");

  Matrix r = b;
  const Mask all(k, 1);
  if (opts.deflate_constant) deflate_columns(r, all);

  std::vector<double> bnorm(k, 0.0);
  column_dots(r, r, all, bnorm);
  for (auto& v : bnorm) v = std::sqrt(v);

  Mask active(k, 0);
  std::size_t num_active = 0;
  for (std::size_t j = 0; j < k; ++j) {
    if (bnorm[j] == 0.0) {
      res.converged[j] = 1;  // x stays 0 — single CG's zero-rhs early return
    } else {
      active[j] = 1;
      ++num_active;
    }
  }
  if (num_active == 0) return res;

  if (initial_guess) {
    for (std::size_t i = 0; i < n; ++i) {
      const auto g = initial_guess->row(i);
      auto x = res.solutions.row(i);
      for (std::size_t j = 0; j < k; ++j)
        if (active[j]) x[j] = g[j];
    }
    if (opts.deflate_constant) deflate_columns(res.solutions, active);
    Matrix ax(n, k);
    op(res.solutions, ax);
    if (opts.deflate_constant) deflate_columns(ax, active);
    const std::vector<double> minus_one(k, -1.0);
    axpy_columns(minus_one, ax, r, active);
  }

  Matrix z(n, k);
  auto apply_precond = [&](const Matrix& in, Matrix& out) {
    if (precond) {
      precond(in, out);
    } else {
      std::copy(in.data().begin(), in.data().end(), out.data().begin());
    }
    if (opts.deflate_constant) deflate_columns(out, active);
  };

  apply_precond(r, z);
  Matrix p = z;
  Matrix ap(n, k);
  std::vector<double> rz(k, 0.0);
  column_dots(r, z, active, rz);

  std::vector<double> pap(k, 0.0), alpha(k, 0.0), neg_alpha(k, 0.0),
      rnorm2(k, 0.0), rz_new(k, 0.0), beta(k, 0.0);

  // ‖r_j‖/‖b_j‖ recomputed at breakdown / max-iteration retirement, matching
  // the single-vector tail.
  auto tail_residual = [&](std::size_t j) {
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i) s += r(i, j) * r(i, j);
    return std::sqrt(s) / bnorm[j];
  };

  std::size_t sweeps = 0;
  for (std::size_t it = 0; it < opts.max_iterations && num_active > 0; ++it) {
    ++sweeps;
    ap.fill(0.0);
    op(p, ap);
    if (opts.deflate_constant) deflate_columns(ap, active);
    column_dots(p, ap, active, pap);
    // Indefinite directions retire before the α step — the single-vector
    // early break, but per column.
    for (std::size_t j = 0; j < k; ++j) {
      if (active[j] && pap[j] <= 0.0) {
        res.breakdown[j] = 1;
        res.residuals[j] = tail_residual(j);
        if (opts.deflate_constant) deflate_column(res.solutions, j);
        active[j] = 0;
        --num_active;
      }
    }
    if (num_active == 0) break;
    for (std::size_t j = 0; j < k; ++j) {
      if (!active[j]) continue;
      alpha[j] = rz[j] / pap[j];
      neg_alpha[j] = -alpha[j];
    }
    axpy_columns(alpha, p, res.solutions, active);
    axpy_columns(neg_alpha, ap, r, active);
    column_dots(r, r, active, rnorm2);
    for (std::size_t j = 0; j < k; ++j) {
      if (!active[j]) continue;
      res.iterations[j] = it + 1;
      const double rel = std::sqrt(rnorm2[j]) / bnorm[j];
      if (rel < opts.tolerance) {
        res.converged[j] = 1;
        res.residuals[j] = rel;
        if (opts.deflate_constant) deflate_column(res.solutions, j);
        active[j] = 0;
        --num_active;
      }
    }
    if (num_active == 0) break;
    apply_precond(r, z);
    column_dots(r, z, active, rz_new);
    for (std::size_t j = 0; j < k; ++j) {
      if (!active[j]) continue;
      beta[j] = rz_new[j] / rz[j];
      rz[j] = rz_new[j];
    }
    update_directions(z, beta, p, active);
  }

  // Columns that exhausted the iteration budget.
  for (std::size_t j = 0; j < k; ++j) {
    if (!active[j]) continue;
    res.residuals[j] = tail_residual(j);
    if (opts.deflate_constant) deflate_column(res.solutions, j);
  }
  for (std::size_t j = 0; j < k; ++j) res.total_iterations += res.iterations[j];

  static const obs::Counter solves("blockcg.solves");
  static const obs::Counter block_sweeps("blockcg.sweeps");
  static const obs::Counter column_iterations("blockcg.column_iterations");
  static const obs::Counter breakdown_columns("blockcg.breakdown_columns");
  static const obs::Counter columns("blockcg.columns");
  solves.add();
  block_sweeps.add(sweeps);
  column_iterations.add(res.total_iterations);
  columns.add(k);
  std::uint64_t broken = 0;
  for (std::size_t j = 0; j < k; ++j) broken += res.breakdown[j];
  if (broken > 0) breakdown_columns.add(broken);
  return res;
}

}  // namespace cirstag::linalg
