#include "linalg/matrix.hpp"

#include <cmath>
#include <stdexcept>

#include "kernels/kernels.hpp"
#include "runtime/parallel_for.hpp"

namespace cirstag::linalg {

namespace {
/// Flop threshold below which dense products stay on the calling thread,
/// and the fixed row grain used above it. Row-partitioned: each output row
/// keeps its serial accumulation order, so results are thread-count
/// invariant.
constexpr std::size_t kMatmulParallelMinFlops = 1u << 18;
constexpr std::size_t kMatmulGrain = 64;
}  // namespace

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

double& Matrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return (*this)(r, c);
}

double Matrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return (*this)(r, c);
}

std::vector<double> Matrix::col(std::size_t c) const {
  std::vector<double> v(rows_);
  for (std::size_t r = 0; r < rows_; ++r) v[r] = (*this)(r, c);
  return v;
}

void Matrix::set_col(std::size_t c, std::span<const double> v) {
  if (v.size() != rows_) throw std::invalid_argument("set_col: size mismatch");
  for (std::size_t r = 0; r < rows_; ++r) (*this)(r, c) = v[r];
}

void Matrix::fill(double v) {
  for (auto& x : data_) x = v;
}

Matrix Matrix::random_normal(std::size_t rows, std::size_t cols, Rng& rng,
                             double mean, double stddev) {
  Matrix m(rows, cols);
  for (auto& x : m.data_) x = rng.normal(mean, stddev);
  return m;
}

Matrix Matrix::glorot(std::size_t in_dim, std::size_t out_dim, Rng& rng) {
  Matrix m(in_dim, out_dim);
  const double limit =
      std::sqrt(6.0 / static_cast<double>(in_dim + out_dim));
  for (auto& x : m.data_) x = rng.uniform(-limit, limit);
  return m;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  if (rows_ != other.rows_ || cols_ != other.cols_)
    throw std::invalid_argument("Matrix+=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  if (rows_ != other.rows_ || cols_ != other.cols_)
    throw std::invalid_argument("Matrix-=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (auto& x : data_) x *= s;
  return *this;
}

double Matrix::frobenius_norm() const {
  return std::sqrt(kernels::dot_self(data_.data(), data_.size()));
}

double Matrix::row_distance2(std::size_t r1, std::size_t r2) const {
  // Canonical 4-lane distance kernel — every Euclidean distance in the
  // pipeline (kNN, kd-tree, manifold edges) must route through the same
  // kernel to stay bit-comparable.
  return kernels::distance2(row(r1).data(), row(r2).data(), cols_);
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows()) throw std::invalid_argument("matmul: shape mismatch");
  Matrix c(a.rows(), b.cols());
  const kernels::KernelTable& kt = kernels::table();
  auto row_range = [&](std::size_t lo, std::size_t hi) {
    // Row i of C accumulates fma(a_ik, b_k*, c_i*) in ascending k with the
    // zero-skip; gnn::matmul_row and the DAG incremental path mirror this
    // sequence exactly (see gnn/layers.cpp) — keep them in lockstep.
    for (std::size_t i = lo; i < hi; ++i) {
      for (std::size_t k = 0; k < a.cols(); ++k) {
        const double aik = a(i, k);
        if (aik == 0.0) continue;
        kt.axpy(aik, b.row(k).data(), c.row(i).data(), b.cols());
      }
    }
  };
  if (a.rows() * a.cols() * b.cols() < kMatmulParallelMinFlops) {
    row_range(0, a.rows());
  } else {
    runtime::parallel_for_chunks(0, a.rows(), kMatmulGrain, row_range);
  }
  return c;
}

Matrix matmul_at_b(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows())
    throw std::invalid_argument("matmul_at_b: shape mismatch");
  Matrix c(a.cols(), b.cols());
  const kernels::KernelTable& kt = kernels::table();
  for (std::size_t k = 0; k < a.rows(); ++k) {
    const auto arow = a.row(k);
    const auto brow = b.row(k);
    for (std::size_t i = 0; i < a.cols(); ++i) {
      const double aki = arow[i];
      if (aki == 0.0) continue;
      kt.axpy(aki, brow.data(), c.row(i).data(), b.cols());
    }
  }
  return c;
}

Matrix matmul_a_bt(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.cols())
    throw std::invalid_argument("matmul_a_bt: shape mismatch");
  Matrix c(a.rows(), b.rows());
  const kernels::KernelTable& kt = kernels::table();
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const auto arow = a.row(i);
    for (std::size_t j = 0; j < b.rows(); ++j)
      c(i, j) = kt.dot(arow.data(), b.row(j).data(), a.cols());
  }
  return c;
}

std::vector<double> matvec(const Matrix& a, std::span<const double> x) {
  if (a.cols() != x.size()) throw std::invalid_argument("matvec: shape mismatch");
  std::vector<double> y(a.rows(), 0.0);
  const kernels::KernelTable& kt = kernels::table();
  for (std::size_t i = 0; i < a.rows(); ++i)
    y[i] = kt.dot(a.row(i).data(), x.data(), a.cols());
  return y;
}

}  // namespace cirstag::linalg
