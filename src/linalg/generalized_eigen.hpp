#pragma once

#include <cstddef>

#include "linalg/cg.hpp"
#include "linalg/dense_eigen.hpp"

namespace cirstag::linalg {

/// Options for the sparse generalized eigensolver.
struct GeneralizedEigenOptions {
  std::size_t num_pairs = 8;        ///< s, the eigensubspace dimension
  std::size_t iterations = 40;      ///< subspace-iteration sweeps
  std::uint64_t seed = 99;
  /// Diagonal regularization applied to l_y before inversion (Θ = L + I/σ²
  /// in the paper's PGM formulation). Must be > 0 unless deflation suffices.
  double ly_regularization = 1e-6;
  double cg_tolerance = 1e-8;
  std::size_t cg_max_iterations = 1500;
  /// Apply (L_Y + εI)^{-1} to all s subspace columns in one blocked CG call
  /// per sweep instead of s sequential solves. Bit-identical per column at
  /// every thread count; off = the historical column-at-a-time loop.
  bool use_block_cg = true;
  /// Optional warm start (perturbation sweeps): the first `num_pairs`
  /// columns seed the subspace instead of the random init, after constant
  /// deflation and re-orthonormalization. Changes results at convergence-
  /// tolerance level — bit-exact paths must leave this null. Must outlive
  /// the call; needs >= num_pairs columns and matching row count. Note that
  /// on near-degenerate spectra a warm subspace does NOT converge in fewer
  /// sweeps than the random init (the rate is set by the eigengap), so
  /// reducing `iterations` alongside this moves the answer — prefer
  /// `sweep_seed` below, which accelerates each sweep without changing the
  /// iterate trajectory beyond cg_tolerance.
  const Matrix* initial_subspace = nullptr;
  /// Cross-run per-sweep CG warm start (perturbation sweeps): sweep k's
  /// solves may be seeded from (*sweep_seed)[k] — a nearby run's sweep-k
  /// solution block captured via `sweep_capture` — instead of this run's
  /// own previous-sweep chain. The seed is adopted per column only when its
  /// true residual beats the own-chain guess (one extra blocked SpMV per
  /// candidate per sweep), so the policy is deterministic and degrades to
  /// the own-chain behaviour as the two runs' trajectories diverge. Every
  /// solve still converges to cg_tolerance, so results move at tolerance
  /// level only; bit-exact paths must leave this null. Entries past
  /// `iterations` or with mismatched shapes are ignored. Must outlive the
  /// call.
  const std::vector<Matrix>* sweep_seed = nullptr;
  /// When set, the deflated solution block of every sweep is appended —
  /// the `sweep_seed` feed for subsequent nearby runs. Holds
  /// iterations × n × num_pairs doubles; clear it when done.
  std::vector<Matrix>* sweep_capture = nullptr;
  /// Adaptive early stop: after each sweep, compare the sorted Rayleigh
  /// quotients ρ_j = v_jᵀ(Mv)_j of the iterate block against the previous
  /// sweep's; stop once the largest change is ≤ ritz_tolerance·ρ_max (and at
  /// least `min_iterations` sweeps ran). The stopping decision is a pure
  /// function of the inputs — deterministic and thread-count invariant —
  /// but the executed sweep count adapts to the spectrum: well-separated
  /// eigenvalues converge in a handful of sweeps while near-degenerate
  /// spectra run to the full `iterations` budget. 0 disables (fixed count,
  /// the bit-exact historical behaviour).
  double ritz_tolerance = 0.0;
  /// Sweeps that must run before `ritz_tolerance` may stop the iteration.
  std::size_t min_iterations = 4;
};

/// Result: values[i] descending (largest generalized eigenvalues of
/// L_Y^+ L_X), vectors in columns.
struct GeneralizedEigenResult {
  std::vector<double> values;
  Matrix vectors;  // n x s
  /// Subspace sweeps actually executed — equals opts.iterations unless
  /// ritz_tolerance stopped the iteration early. Deterministic, so callers
  /// can lock it into perf-regression baselines.
  std::size_t sweeps_executed = 0;
};

/// Top-s generalized eigenpairs of L_X v = ζ L_Y v with L_X, L_Y symmetric
/// PSD graph Laplacians sharing the constant nullspace.
///
/// This is CirSTAG Phase 3's core computation: the dominant eigenpairs of
/// L_Y^+ L_X measure the largest distance-mapping distortions between the
/// input manifold (L_X) and output manifold (L_Y).
///
/// Implementation: subspace (orthogonal) iteration on the operator
/// x -> (L_Y + εI)^{-1} L_X x with constant-vector deflation, followed by a
/// dense Rayleigh-Ritz projection solving the small generalized problem
/// (Vᵀ L_X V) c = ζ (Vᵀ L_Y V) c exactly.
/// `external_solver` (optional) supplies a prebuilt solver for
/// (L_Y + ly_regularization·I) — e.g. from the pipeline's solver cache — and
/// must have been constructed with the same regularization and CG options;
/// results are then identical to the internally-built solver (same
/// construction), merely skipping reassembly.
[[nodiscard]] GeneralizedEigenResult generalized_eigen_sparse(
    const SparseMatrix& l_x, const SparseMatrix& l_y,
    const GeneralizedEigenOptions& opts = {},
    const LaplacianSolver* external_solver = nullptr);

}  // namespace cirstag::linalg
