#pragma once

#include <cstddef>

#include "linalg/cg.hpp"
#include "linalg/dense_eigen.hpp"

namespace cirstag::linalg {

/// Options for the sparse generalized eigensolver.
struct GeneralizedEigenOptions {
  std::size_t num_pairs = 8;        ///< s, the eigensubspace dimension
  std::size_t iterations = 40;      ///< subspace-iteration sweeps
  std::uint64_t seed = 99;
  /// Diagonal regularization applied to l_y before inversion (Θ = L + I/σ²
  /// in the paper's PGM formulation). Must be > 0 unless deflation suffices.
  double ly_regularization = 1e-6;
  double cg_tolerance = 1e-8;
  std::size_t cg_max_iterations = 1500;
  /// Apply (L_Y + εI)^{-1} to all s subspace columns in one blocked CG call
  /// per sweep instead of s sequential solves. Bit-identical per column at
  /// every thread count; off = the historical column-at-a-time loop.
  bool use_block_cg = true;
};

/// Result: values[i] descending (largest generalized eigenvalues of
/// L_Y^+ L_X), vectors in columns.
struct GeneralizedEigenResult {
  std::vector<double> values;
  Matrix vectors;  // n x s
};

/// Top-s generalized eigenpairs of L_X v = ζ L_Y v with L_X, L_Y symmetric
/// PSD graph Laplacians sharing the constant nullspace.
///
/// This is CirSTAG Phase 3's core computation: the dominant eigenpairs of
/// L_Y^+ L_X measure the largest distance-mapping distortions between the
/// input manifold (L_X) and output manifold (L_Y).
///
/// Implementation: subspace (orthogonal) iteration on the operator
/// x -> (L_Y + εI)^{-1} L_X x with constant-vector deflation, followed by a
/// dense Rayleigh-Ritz projection solving the small generalized problem
/// (Vᵀ L_X V) c = ζ (Vᵀ L_Y V) c exactly.
/// `external_solver` (optional) supplies a prebuilt solver for
/// (L_Y + ly_regularization·I) — e.g. from the pipeline's solver cache — and
/// must have been constructed with the same regularization and CG options;
/// results are then identical to the internally-built solver (same
/// construction), merely skipping reassembly.
[[nodiscard]] GeneralizedEigenResult generalized_eigen_sparse(
    const SparseMatrix& l_x, const SparseMatrix& l_y,
    const GeneralizedEigenOptions& opts = {},
    const LaplacianSolver* external_solver = nullptr);

}  // namespace cirstag::linalg
