#pragma once

/// Umbrella header: the full public API of the CirSTAG library.
///
/// Layering (each header can also be included individually):
///   obs     -> metrics registry, trace spans, wall timers
///   util    -> stats, tables, CSV
///   linalg  -> dense/sparse matrices, solvers, eigensolvers, RNG
///   graphs  -> graphs, Laplacians, effective resistance, sparsifiers, kNN
///   circuit -> cell library, netlists, STA, generators, variation, I/O
///   gnn     -> trainable GNN surrogates (timing predictor, RE classifier)
///   core    -> the CirSTAG pipeline (Phases 1-3) and baselines
///   io      -> binary circuit snapshots (warm-state save/restore)

#include "circuit/cell_library.hpp"   // IWYU pragma: export
#include "circuit/generator.hpp"      // IWYU pragma: export
#include "circuit/io.hpp"             // IWYU pragma: export
#include "circuit/modules.hpp"        // IWYU pragma: export
#include "circuit/netlist.hpp"        // IWYU pragma: export
#include "circuit/perturb.hpp"        // IWYU pragma: export
#include "circuit/slack.hpp"          // IWYU pragma: export
#include "circuit/sta.hpp"            // IWYU pragma: export
#include "circuit/variation.hpp"      // IWYU pragma: export
#include "circuit/views.hpp"          // IWYU pragma: export
#include "core/baselines.hpp"         // IWYU pragma: export
#include "core/cirstag.hpp"           // IWYU pragma: export
#include "core/manifold.hpp"          // IWYU pragma: export
#include "core/spectral_embedding.hpp"  // IWYU pragma: export
#include "core/stability.hpp"         // IWYU pragma: export
#include "gnn/re_gat.hpp"             // IWYU pragma: export
#include "gnn/timing_gnn.hpp"         // IWYU pragma: export
#include "graphs/effective_resistance.hpp"  // IWYU pragma: export
#include "io/snapshot.hpp"            // IWYU pragma: export
#include "graphs/graph.hpp"           // IWYU pragma: export
#include "graphs/knn.hpp"             // IWYU pragma: export
#include "graphs/laplacian.hpp"       // IWYU pragma: export
#include "graphs/sgl.hpp"             // IWYU pragma: export
#include "graphs/sparsify.hpp"        // IWYU pragma: export
#include "obs/metrics.hpp"            // IWYU pragma: export
#include "obs/timer.hpp"              // IWYU pragma: export
#include "obs/trace.hpp"              // IWYU pragma: export
#include "util/ascii.hpp"             // IWYU pragma: export
#include "util/csv.hpp"               // IWYU pragma: export
#include "util/stats.hpp"             // IWYU pragma: export
