#pragma once

#include <chrono>

namespace cirstag::obs {

/// One steady-clock epoch shared by every observability sink.
///
/// Before this existed the Logger and the Tracer each captured their own
/// construction instant, so a trace span's ts and the matching log line's ts
/// disagreed by whenever the two singletons happened to first run. Every
/// timestamp the obs layer emits — log "ts", trace "ts"/"dur", access-log
/// micros, request span trees — is now expressed on this single time base,
/// so artifacts from one run can be joined on time without skew correction.
///
/// The epoch is pinned the first time any sink asks for it (process start
/// for all practical purposes, since the global Logger construction touches
/// it). steady_clock, not wall clock: the base never jumps under NTP.
[[nodiscard]] inline std::chrono::steady_clock::time_point process_epoch() {
  // Inline-function-local static: one instance across all TUs (C++17).
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

/// Microseconds from the process epoch to `t`.
[[nodiscard]] inline double to_process_us(
    std::chrono::steady_clock::time_point t) {
  return std::chrono::duration<double, std::micro>(t - process_epoch())
      .count();
}

/// Microseconds since the process epoch, now. The epoch is resolved before
/// `now` is read — on the very first obs call in a process the lazy epoch
/// init would otherwise land *after* the sample and yield a negative value.
[[nodiscard]] inline double process_now_us() {
  const std::chrono::steady_clock::time_point epoch = process_epoch();
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

}  // namespace cirstag::obs
