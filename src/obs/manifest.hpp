#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace cirstag::obs {

// ---------------------------------------------------------------------------
// FNV-1a checksumming
//
// Per-phase checksums in the run manifest use 64-bit FNV-1a over the exact
// bit patterns of the produced doubles (bit_cast, not value rounding), so a
// checksum match certifies bitwise-identical intermediates — the same
// contract the determinism tests assert, but cheap enough to record on every
// run and diff across machines/thread counts in CI.

inline constexpr std::uint64_t kFnv1aOffset = 14695981039346656037ull;
inline constexpr std::uint64_t kFnv1aPrime = 1099511628211ull;

[[nodiscard]] inline std::uint64_t fnv1a_byte(std::uint64_t hash,
                                              std::uint8_t byte) {
  return (hash ^ byte) * kFnv1aPrime;
}

/// Fold one u64 into the hash, little-endian byte order (explicit byte
/// decomposition so the checksum is identical across host endianness).
[[nodiscard]] inline std::uint64_t fnv1a_u64(std::uint64_t hash,
                                             std::uint64_t value) {
  for (int i = 0; i < 8; ++i)
    hash = fnv1a_byte(hash, static_cast<std::uint8_t>(value >> (8 * i)));
  return hash;
}

[[nodiscard]] inline std::uint64_t fnv1a_double(std::uint64_t hash,
                                                double value) {
  return fnv1a_u64(hash, std::bit_cast<std::uint64_t>(value));
}

/// Checksum a span of doubles (bit patterns, order-sensitive).
[[nodiscard]] inline std::uint64_t fnv1a_doubles(
    std::span<const double> values, std::uint64_t hash = kFnv1aOffset) {
  for (const double v : values) hash = fnv1a_double(hash, v);
  return hash;
}

/// Fixed 16-digit lower-case hex rendering used in the manifest.
[[nodiscard]] std::string fnv1a_hex(std::uint64_t hash);

/// Checksums of every pipeline phase boundary of one analyze() run. Zero
/// means "phase not run" (e.g. `embedding` when dimension reduction is
/// disabled). Computed in core (which can see Graph/Matrix); obs only
/// defines the container and its JSON form.
struct PhaseChecksums {
  std::uint64_t input_graph = 0;   ///< nodes, edges (u, v, weight bits)
  std::uint64_t embedding = 0;     ///< augmented U_M, row-major
  std::uint64_t manifold_x = 0;
  std::uint64_t manifold_y = 0;
  std::uint64_t eigenvalues = 0;   ///< DMD spectrum
  std::uint64_t node_scores = 0;
  std::uint64_t edge_scores = 0;

  /// {"input_graph":"<16 hex>",...} — keys in pipeline order.
  [[nodiscard]] std::string to_json() const;
};

// ---------------------------------------------------------------------------
// Build provenance

/// Compile-time build provenance — the same git describe / build type /
/// compiler fields the manifest "build" section records, exposed so other
/// surfaces (`cirstag --version`, the serve /health endpoint) report the
/// identical identity.
struct BuildInfo {
  std::string git_describe;
  std::string build_type;
  std::string compiler;
  std::string cxx_flags;
};

[[nodiscard]] const BuildInfo& build_info();

// ---------------------------------------------------------------------------
// Run-provenance manifest

/// Assembles the --manifest-json document: an ordered set of named sections,
/// each an ordered set of key/value entries. Sections render in insertion
/// order so manifests are byte-stable for identical inputs and diff cleanly.
///
/// A fresh builder already carries the "build" section (git describe, build
/// type, compiler, flags — baked in at compile time) and the manifest schema
/// version; callers add "run", "config", and "checksums" sections.
class ManifestBuilder {
 public:
  ManifestBuilder();

  void set_string(const std::string& section, const std::string& key,
                  const std::string& value);
  void set_number(const std::string& section, const std::string& key,
                  double value);
  void set_uint(const std::string& section, const std::string& key,
                std::uint64_t value);
  void set_bool(const std::string& section, const std::string& key,
                bool value);
  /// `raw` must already be valid JSON (object, array, or scalar).
  void set_raw(const std::string& section, const std::string& key,
               std::string raw);

  /// Convenience: add every PhaseChecksums field under `section` as hex
  /// strings, in pipeline order.
  void set_checksums(const std::string& section,
                     const PhaseChecksums& checksums);

  [[nodiscard]] std::string to_json() const;
  /// Write to_json() to `path`; returns false on I/O failure.
  bool write(const std::string& path) const;

 private:
  struct Section {
    std::string name;
    std::vector<std::pair<std::string, std::string>> entries;  // key -> raw
  };
  Section& section(const std::string& name);

  std::vector<Section> sections_;
};

}  // namespace cirstag::obs
