#include "obs/request.hpp"

#include <atomic>
#include <cinttypes>
#include <cstdio>

#include "obs/clock.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace cirstag::obs {

namespace {

std::uint64_t next_trace_id() {
  // Process-unique, monotone, never zero. Uniqueness per process is all the
  // access log needs; the 16-hex-digit rendering leaves room for a future
  // node prefix without changing the wire format.
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

thread_local RequestRef t_request_ref;

}  // namespace

// ---------------------------------------------------------------------------
// RequestContext

RequestContext::RequestContext(std::string endpoint)
    : id_(next_trace_id()),
      endpoint_(std::move(endpoint)),
      start_us_(process_now_us()) {
  spans_.reserve(16);
}

std::string RequestContext::id_hex() const {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, id_);
  return buf;
}

void RequestContext::set_circuit(std::string circuit) {
  std::lock_guard<std::mutex> lock(mutex_);
  circuit_ = std::move(circuit);
}

void RequestContext::add_render_us(double v) {
  std::lock_guard<std::mutex> lock(mutex_);
  render_us_ += v;
}

std::uint32_t RequestContext::open_span(const char* name, double start_us,
                                        std::uint32_t parent) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (spans_.size() >= kMaxSpans) {
    ++spans_dropped_;
    return kNoParent;
  }
  spans_.push_back({name, parent, start_us, 0.0});
  return static_cast<std::uint32_t>(spans_.size() - 1);
}

void RequestContext::close_span(std::uint32_t index, double end_us) {
  if (index == kNoParent) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (index < spans_.size()) {
    spans_[index].end_us = end_us;
  }
}

std::uint32_t RequestContext::span_parent(std::uint32_t index) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return index < spans_.size() ? spans_[index].parent : kNoParent;
}

std::vector<RequestContext::SpanNode> RequestContext::spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

std::uint64_t RequestContext::spans_dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_dropped_;
}

void RequestContext::finish(int status) {
  status_ = status;
  if (end_us_ == 0.0) {
    end_us_ = process_now_us();
  }
}

double RequestContext::total_us() const {
  const double end = end_us_ != 0.0 ? end_us_ : process_now_us();
  return end - start_us_;
}

std::string RequestContext::span_tree_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "[";
  for (std::size_t i = 0; i < spans_.size(); ++i) {
    const SpanNode& n = spans_[i];
    if (i != 0) out += ',';
    out += "{\"name\":";
    out += json_quote(n.name != nullptr ? n.name : "");
    out += ",\"parent\":";
    if (n.parent == kNoParent) {
      out += "-1";
    } else {
      out += std::to_string(n.parent);
    }
    out += ",\"start_us\":";
    append_json_number(out, n.start_us - start_us_);
    out += ",\"dur_us\":";
    append_json_number(out, n.end_us != 0.0 ? n.end_us - n.start_us : 0.0);
    out += '}';
  }
  out += ']';
  return out;
}

std::string RequestContext::folded() const {
  std::vector<SpanNode> nodes;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    nodes = spans_;
  }
  // Self time per node: duration minus the summed durations of direct
  // children. Open spans (end_us == 0) contribute zero duration.
  std::vector<double> self_us(nodes.size(), 0.0);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const SpanNode& n = nodes[i];
    self_us[i] += n.end_us != 0.0 ? n.end_us - n.start_us : 0.0;
    if (n.parent != kNoParent && n.parent < nodes.size()) {
      self_us[n.parent] -= n.end_us != 0.0 ? n.end_us - n.start_us : 0.0;
    }
  }
  std::string out;
  std::vector<const char*> path;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    path.clear();
    // Walk to the root; the tree is append-ordered so parents precede
    // children and the walk terminates.
    for (std::uint32_t j = static_cast<std::uint32_t>(i); j != kNoParent;
         j = nodes[j].parent) {
      path.push_back(nodes[j].name != nullptr ? nodes[j].name : "?");
      if (nodes[j].parent != kNoParent && nodes[j].parent >= j) break;
    }
    for (std::size_t p = path.size(); p-- > 0;) {
      out += path[p];
      if (p != 0) out += ';';
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, " %.0f\n",
                  self_us[i] > 0.0 ? self_us[i] : 0.0);
    out += buf;
  }
  return out;
}

std::string RequestContext::access_log_line() const {
  std::string out = "{\"trace_id\":\"";
  out += id_hex();
  out += "\",\"ts_us\":";
  append_json_number(out, start_us_);
  out += ",\"endpoint\":";
  out += json_quote(endpoint_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out += ",\"circuit\":";
    out += json_quote(circuit_);
  }
  out += ",\"status\":";
  out += std::to_string(status_);
  out += ",\"queue_us\":";
  append_json_number(out, queue_us_);
  out += ",\"compute_us\":";
  append_json_number(out, compute_us_);
  out += ",\"render_us\":";
  append_json_number(out, render_us_);
  out += ",\"total_us\":";
  append_json_number(out, total_us());
  out += ",\"deadline_slack_us\":";
  append_json_number(out, deadline_slack_us_);
  out += ",\"spans\":";
  out += std::to_string(spans().size());
  out += '}';
  return out;
}

// ---------------------------------------------------------------------------
// Thread binding + TraceSpan hook

RequestRef current_request_ref() { return t_request_ref; }

ScopedRequestBinding::ScopedRequestBinding(RequestRef ref) {
  if (ref.ctx == nullptr) return;
  previous_ = t_request_ref;
  t_request_ref = ref;
  installed_ = true;
}

ScopedRequestBinding::ScopedRequestBinding(RequestContext* ctx,
                                           std::uint32_t parent)
    : ScopedRequestBinding(RequestRef{ctx, parent}) {}

ScopedRequestBinding::~ScopedRequestBinding() {
  if (installed_) {
    t_request_ref = previous_;
  }
}

std::uint32_t request_span_begin(const char* name) {
  RequestRef& ref = t_request_ref;
  if (ref.ctx == nullptr) return kNoRequestSpan;
  const std::uint32_t idx =
      ref.ctx->open_span(name, process_now_us(), ref.parent);
  if (idx != RequestContext::kNoParent) {
    ref.parent = idx;  // nested TraceSpans become children (RAII restores)
    return idx;
  }
  return kNoRequestSpan;
}

void request_span_end(std::uint32_t token) {
  if (token == kNoRequestSpan) return;
  RequestRef& ref = t_request_ref;
  if (ref.ctx == nullptr) return;
  ref.ctx->close_span(token, process_now_us());
  // Restore the parent to this span's parent. Spans are strictly nested per
  // thread (RAII), so the token is always the current parent here.
  ref.parent = ref.ctx->span_parent(token);
}

// ---------------------------------------------------------------------------
// RenderScope

RenderScope::RenderScope(RequestContext* ctx) : ctx_(ctx) {
  if (ctx_ == nullptr) return;
  start_us_ = process_now_us();
  span_ = ctx_->open_span("render", start_us_, RequestContext::kNoParent);
}

RenderScope::~RenderScope() {
  if (ctx_ == nullptr) return;
  const double end_us = process_now_us();
  ctx_->close_span(span_, end_us);
  ctx_->add_render_us(end_us - start_us_);
}

// ---------------------------------------------------------------------------
// RequestLog

namespace {

bool reopen(std::FILE*& file, const std::string& path) {
  if (file != nullptr) {
    std::fclose(file);
    file = nullptr;
  }
  if (path.empty()) return true;
  file = std::fopen(path.c_str(), "w");
  return file != nullptr;
}

}  // namespace

RequestLog::~RequestLog() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (access_file_ != nullptr) std::fclose(access_file_);
  if (exemplar_file_ != nullptr) std::fclose(exemplar_file_);
}

RequestLog& RequestLog::global() {
  static RequestLog* instance = new RequestLog();  // leaked, like Logger
  return *instance;
}

bool RequestLog::set_access_log_path(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  return reopen(access_file_, path);
}

bool RequestLog::set_exemplar_path(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  return reopen(exemplar_file_, path);
}

void RequestLog::set_slow_threshold_us(double threshold_us) {
  std::lock_guard<std::mutex> lock(mutex_);
  slow_threshold_us_ = threshold_us;
}

void RequestLog::configure_token_bucket(double capacity,
                                        double refill_per_second) {
  std::lock_guard<std::mutex> lock(mutex_);
  bucket_capacity_ = capacity;
  bucket_refill_per_second_ = refill_per_second;
  bucket_tokens_ = capacity;
  bucket_last_refill_us_ = process_now_us();
}

void RequestLog::record(const RequestContext& ctx) {
  static Counter access_lines_counter("obs.access_log.lines");
  static Counter exemplar_captured_counter("serve.slow_exemplars.captured");
  static Counter exemplar_dropped_counter("serve.slow_exemplars.dropped");

  const double total_us = ctx.total_us();
  std::lock_guard<std::mutex> lock(mutex_);
  if (access_file_ != nullptr) {
    const std::string line = ctx.access_log_line();
    std::fwrite(line.data(), 1, line.size(), access_file_);
    std::fputc('\n', access_file_);
    std::fflush(access_file_);
    ++access_lines_;
    access_lines_counter.add(1);
  }
  if (exemplar_file_ == nullptr || slow_threshold_us_ < 0.0 ||
      total_us < slow_threshold_us_) {
    return;
  }
  // Token bucket: refill by elapsed time, spend one per exemplar.
  const double now_us = process_now_us();
  if (bucket_last_refill_us_ > 0.0) {
    bucket_tokens_ += (now_us - bucket_last_refill_us_) / 1e6 *
                      bucket_refill_per_second_;
    if (bucket_tokens_ > bucket_capacity_) bucket_tokens_ = bucket_capacity_;
  }
  bucket_last_refill_us_ = now_us;
  if (bucket_tokens_ < 1.0) {
    ++exemplars_dropped_;
    exemplar_dropped_counter.add(1);
    return;
  }
  bucket_tokens_ -= 1.0;
  std::string doc = "{\"trace_id\":\"";
  doc += ctx.id_hex();
  doc += "\",\"endpoint\":";
  doc += json_quote(ctx.endpoint());
  doc += ",\"circuit\":";
  doc += json_quote(ctx.circuit());
  doc += ",\"status\":";
  doc += std::to_string(ctx.status());
  doc += ",\"total_us\":";
  append_json_number(doc, total_us);
  doc += ",\"threshold_us\":";
  append_json_number(doc, slow_threshold_us_);
  doc += ",\"spans\":";
  doc += ctx.span_tree_json();
  doc += ",\"folded\":";
  doc += json_quote(ctx.folded());
  doc += '}';
  std::fwrite(doc.data(), 1, doc.size(), exemplar_file_);
  std::fputc('\n', exemplar_file_);
  std::fflush(exemplar_file_);
  ++exemplars_captured_;
  exemplar_captured_counter.add(1);
}

std::uint64_t RequestLog::access_lines_written() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return access_lines_;
}

std::uint64_t RequestLog::exemplars_captured() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return exemplars_captured_;
}

std::uint64_t RequestLog::exemplars_dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return exemplars_dropped_;
}

void RequestLog::reset_for_tests() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (access_file_ != nullptr) {
    std::fclose(access_file_);
    access_file_ = nullptr;
  }
  if (exemplar_file_ != nullptr) {
    std::fclose(exemplar_file_);
    exemplar_file_ = nullptr;
  }
  slow_threshold_us_ = -1.0;
  bucket_capacity_ = 8.0;
  bucket_refill_per_second_ = 0.1;
  bucket_tokens_ = 8.0;
  bucket_last_refill_us_ = 0.0;
  access_lines_ = 0;
  exemplars_captured_ = 0;
  exemplars_dropped_ = 0;
}

}  // namespace cirstag::obs
