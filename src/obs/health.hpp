#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <vector>

namespace cirstag::obs {

/// Severity of a numerical-health event. `info` events are advisory
/// telemetry (e.g. Ritz residuals of a healthy run); `warning` flags results
/// that are usable but degraded (an unconverged CG solve); `error` flags
/// results that should not be trusted (NaN at a phase boundary, fast-mode
/// drift past its documented bound).
enum class HealthSeverity : int { info = 0, warning = 1, error = 2 };

[[nodiscard]] const char* health_severity_name(HealthSeverity severity);

/// One structured numerical-health observation.
struct HealthEvent {
  std::string kind;    ///< `subsystem.condition`, e.g. "cg.unconverged"
  std::string detail;  ///< human-readable context
  double value = 0.0;      ///< observed quantity (residual, drift, count, …)
  double threshold = 0.0;  ///< bound it was judged against (0 = none)
  HealthSeverity severity = HealthSeverity::info;
  std::uint64_t index = 0;  ///< monotonic monitor-wide sequence number
};

/// Health events collected over one scope (e.g. one analyze() call), with
/// the count of events the monitor dropped after its buffer filled.
struct HealthReport {
  std::vector<HealthEvent> events;
  std::uint64_t dropped = 0;

  /// True when no warning- or error-level event was recorded.
  [[nodiscard]] bool ok() const;
  [[nodiscard]] std::size_t count(HealthSeverity severity) const;
  /// JSON array-of-objects plus the drop count:
  /// {"events":[{...}],"dropped":N,"ok":bool}.
  [[nodiscard]] std::string to_json() const;
};

/// Process-wide collector of numerical-health events.
///
/// The solver stack and the pipeline phase boundaries record events here;
/// CirStag::analyze snapshots the monitor around each run and attaches the
/// delta to the report (CirStagReport::health), and the CLI embeds the whole
/// run's report into --metrics-json. Recording only ever reads scalars the
/// instrumented code already produced — like the metrics registry, the
/// monitor can never perturb the computation it watches.
///
/// The event buffer is bounded (kMaxEvents); once full, further events are
/// counted in dropped() instead of stored, so a pathological run (thousands
/// of unconverged solves) degrades to a counter rather than unbounded
/// memory.
class HealthMonitor {
 public:
  static constexpr std::size_t kMaxEvents = 4096;

  HealthMonitor() = default;
  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  /// Process-wide monitor used by the free record_health_event helper.
  /// Never destroyed, for the same reason as MetricsRegistry::global().
  [[nodiscard]] static HealthMonitor& global();

  /// Enabled by default; when disabled, record() is one relaxed load.
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  void record(std::string kind, std::string detail, double value,
              double threshold, HealthSeverity severity);

  /// Sequence number the next event will get — capture before a scope, then
  /// collect_since() to get exactly that scope's events.
  [[nodiscard]] std::uint64_t next_index() const;

  /// All stored events with index >= begin (plus the global drop count).
  [[nodiscard]] HealthReport collect_since(std::uint64_t begin) const;
  [[nodiscard]] HealthReport collect() const { return collect_since(0); }

  [[nodiscard]] std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Discard all stored events (sequence numbers keep increasing).
  void clear();

 private:
  std::atomic<bool> enabled_{true};
  std::atomic<std::uint64_t> dropped_{0};
  mutable std::mutex mutex_;
  std::vector<HealthEvent> events_;
  std::uint64_t next_index_ = 0;
};

/// Record into HealthMonitor::global() (no-op when disabled).
void record_health_event(std::string kind, std::string detail, double value,
                         double threshold, HealthSeverity severity);

/// NaN/Inf sentinel: scan `values` and record one error-level event naming
/// `where` if any entry is non-finite. Returns true when all finite.
/// Read-only — safe at phase boundaries of bit-identical pipelines.
bool health_check_finite(const char* where, std::span<const double> values);

}  // namespace cirstag::obs
