#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <string_view>

namespace cirstag::obs {

/// Append `s` to `out` with JSON string escaping (quotes not included).
inline void append_json_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

[[nodiscard]] inline std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  append_json_escaped(out, s);
  out += '"';
  return out;
}

/// Append a double as a JSON number (non-finite values become 0, which JSON
/// cannot represent otherwise).
inline void append_json_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += '0';
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

}  // namespace cirstag::obs
