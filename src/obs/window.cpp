#include "obs/window.hpp"

#include <algorithm>
#include <cmath>

#include "obs/clock.hpp"

namespace cirstag::obs {

namespace {

std::int64_t slot_for(double now_us, double slot_us) {
  return static_cast<std::int64_t>(std::floor(now_us / slot_us));
}

}  // namespace

// ---------------------------------------------------------------------------
// WindowedHistogram

WindowedHistogram::WindowedHistogram(std::vector<double> bounds, Config config)
    : bounds_(std::move(bounds)),
      slot_us_(config.slot_seconds * 1e6),
      num_slots_(config.num_slots == 0 ? 1 : config.num_slots),
      slots_(num_slots_) {
  for (auto& slot : slots_) {
    slot.buckets.assign(bounds_.size() + 1, 0);  // +1 overflow bucket
  }
}

double WindowedHistogram::window_seconds() const {
  return static_cast<double>(num_slots_) * slot_us_ / 1e6;
}

std::int64_t WindowedHistogram::slot_index(double now_us) const {
  return slot_for(now_us, slot_us_);
}

void WindowedHistogram::observe(double value) {
  observe_at(value, process_now_us());
}

void WindowedHistogram::observe_at(double value, double now_us) {
  const std::int64_t idx = slot_index(now_us);
  std::size_t bucket = 0;
  while (bucket < bounds_.size() && value > bounds_[bucket]) {
    ++bucket;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  Slot& slot = slots_[static_cast<std::size_t>(
      ((idx % static_cast<std::int64_t>(num_slots_)) +
       static_cast<std::int64_t>(num_slots_)) %
      static_cast<std::int64_t>(num_slots_))];
  if (slot.index != idx) {
    // The ring wrapped past this slot since it was last written: it holds
    // data older than the window. Recycle it for the current slot.
    slot.index = idx;
    std::fill(slot.buckets.begin(), slot.buckets.end(), 0);
    slot.count = 0;
    slot.sum = 0.0;
  }
  slot.buckets[bucket] += 1;
  slot.count += 1;
  slot.sum += value;
}

MetricsRegistry::HistogramSnapshot WindowedHistogram::snapshot() const {
  return snapshot_at(process_now_us());
}

MetricsRegistry::HistogramSnapshot WindowedHistogram::snapshot_at(
    double now_us) const {
  MetricsRegistry::HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.buckets.assign(bounds_.size() + 1, 0);
  const std::int64_t newest = slot_index(now_us);
  const std::int64_t oldest = newest - static_cast<std::int64_t>(num_slots_) + 1;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const Slot& slot : slots_) {
    if (slot.index < oldest || slot.index > newest) {
      continue;  // never used, or aged out of the window
    }
    for (std::size_t b = 0; b < snap.buckets.size(); ++b) {
      snap.buckets[b] += slot.buckets[b];
    }
    snap.count += slot.count;
    snap.sum += slot.sum;
  }
  return snap;
}

// ---------------------------------------------------------------------------
// WindowedCounter

WindowedCounter::WindowedCounter(Config config)
    : slot_us_(config.slot_seconds * 1e6),
      num_slots_(config.num_slots == 0 ? 1 : config.num_slots),
      slots_(num_slots_) {}

double WindowedCounter::window_seconds() const {
  return static_cast<double>(num_slots_) * slot_us_ / 1e6;
}

void WindowedCounter::add(std::uint64_t delta) {
  add_at(delta, process_now_us());
}

void WindowedCounter::add_at(std::uint64_t delta, double now_us) {
  const std::int64_t idx = slot_for(now_us, slot_us_);
  std::lock_guard<std::mutex> lock(mutex_);
  Slot& slot = slots_[static_cast<std::size_t>(
      ((idx % static_cast<std::int64_t>(num_slots_)) +
       static_cast<std::int64_t>(num_slots_)) %
      static_cast<std::int64_t>(num_slots_))];
  if (slot.index != idx) {
    slot.index = idx;
    slot.count = 0;
  }
  slot.count += delta;
}

std::uint64_t WindowedCounter::total() const {
  return total_at(process_now_us());
}

std::uint64_t WindowedCounter::total_at(double now_us) const {
  const std::int64_t newest = slot_for(now_us, slot_us_);
  const std::int64_t oldest = newest - static_cast<std::int64_t>(num_slots_) + 1;
  std::uint64_t total = 0;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const Slot& slot : slots_) {
    if (slot.index >= oldest && slot.index <= newest) {
      total += slot.count;
    }
  }
  return total;
}

double WindowedCounter::rate_per_second() const {
  return rate_per_second_at(process_now_us());
}

double WindowedCounter::rate_per_second_at(double now_us) const {
  const double span = window_seconds();
  if (span <= 0.0) {
    return 0.0;
  }
  return static_cast<double>(total_at(now_us)) / span;
}

// ---------------------------------------------------------------------------
// WindowedRegistry

WindowedRegistry& WindowedRegistry::global() {
  static WindowedRegistry* instance = new WindowedRegistry();  // leaked
  return *instance;
}

WindowedHistogram& WindowedRegistry::histogram(
    const std::string& name, std::vector<double> bounds,
    WindowedHistogram::Config config) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(name, std::make_unique<WindowedHistogram>(
                                std::move(bounds), config))
             .first;
  }
  return *it->second;
}

WindowedCounter& WindowedRegistry::counter(const std::string& name,
                                           WindowedCounter::Config config) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::make_unique<WindowedCounter>(config))
             .first;
  }
  return *it->second;
}

std::vector<WindowedRegistry::HistogramEntry>
WindowedRegistry::histogram_snapshots() const {
  const double now_us = process_now_us();
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<HistogramEntry> out;
  out.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    out.push_back({name, hist->snapshot_at(now_us), hist->window_seconds()});
  }
  return out;
}

std::vector<WindowedRegistry::CounterEntry>
WindowedRegistry::counter_snapshots() const {
  const double now_us = process_now_us();
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<CounterEntry> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.push_back({name, counter->total_at(now_us),
                   counter->rate_per_second_at(now_us),
                   counter->window_seconds()});
  }
  return out;
}

void WindowedRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  histograms_.clear();
  counters_.clear();
}

}  // namespace cirstag::obs
