#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace cirstag::obs {

/// Rolling time-windowed metrics: a ring of fixed-width time slots (default
/// 12 x 10s) so quantiles and rates describe the *recent* window and decay
/// as traffic moves on, instead of accumulating since boot the way the
/// cumulative MetricsRegistry histograms do. A /metrics scrape of a daemon
/// that has been up for a week should answer "what is p99 right now", not
/// "what was p99 averaged over the week".
///
/// Slot semantics: observation at time t lands in slot floor(t / slot_us);
/// a snapshot at time t aggregates the num_slots most recent slots, i.e.
/// indices (current - num_slots, current]. The effective window therefore
/// spans between (num_slots-1) and num_slots slot widths depending on where
/// inside the current slot the snapshot lands — document window_seconds()
/// as the nominal upper bound. Slots whose index falls out of that range
/// are lazily zeroed on the next write or snapshot that observes the clock
/// having moved past them.
///
/// Thread safety: a mutex per instance. Observations happen once per
/// *request* (scheduler completion), never inside compute loops, so a lock
/// here is far from any hot path and keeps the ring arithmetic simple.
///
/// Determinism/testing: every mutating or reading call has an `_at(now_us)`
/// variant taking an explicit timestamp (microseconds on the obs process
/// clock, see clock.hpp); the no-argument forms stamp with process_now_us().
/// Tests drive the `_at` forms with synthetic clocks so decay behaviour is
/// asserted exactly, without sleeping.
/// Ring geometry shared by the windowed metric types.
struct WindowConfig {
  double slot_seconds = 10.0;
  std::size_t num_slots = 12;
};

class WindowedHistogram {
 public:
  using Config = WindowConfig;

  /// `bounds` follow MetricsRegistry histogram semantics: strictly
  /// increasing finite upper bounds plus an implicit overflow bucket.
  explicit WindowedHistogram(std::vector<double> bounds, Config config = {});

  void observe(double value);
  void observe_at(double value, double now_us);

  /// Aggregate of the slots inside the window; quantiles via the shared
  /// HistogramSnapshot interpolation.
  [[nodiscard]] MetricsRegistry::HistogramSnapshot snapshot() const;
  [[nodiscard]] MetricsRegistry::HistogramSnapshot snapshot_at(
      double now_us) const;

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  [[nodiscard]] double window_seconds() const;

 private:
  struct Slot {
    std::int64_t index = -1;  ///< absolute slot number; -1 = never used
    std::vector<std::uint64_t> buckets;
    std::uint64_t count = 0;
    double sum = 0.0;
  };

  [[nodiscard]] std::int64_t slot_index(double now_us) const;

  std::vector<double> bounds_;
  double slot_us_;
  std::size_t num_slots_;
  mutable std::mutex mutex_;
  mutable std::vector<Slot> slots_;  ///< ring keyed by index % num_slots
};

/// Rolling event counter over the same slot ring; reports the event total
/// inside the window and the implied steady-state rate.
class WindowedCounter {
 public:
  using Config = WindowConfig;

  explicit WindowedCounter(Config config = {});

  void add(std::uint64_t delta = 1);
  void add_at(std::uint64_t delta, double now_us);

  [[nodiscard]] std::uint64_t total() const;
  [[nodiscard]] std::uint64_t total_at(double now_us) const;
  /// total / window span — events per second sustained over the window.
  [[nodiscard]] double rate_per_second() const;
  [[nodiscard]] double rate_per_second_at(double now_us) const;

  [[nodiscard]] double window_seconds() const;

 private:
  struct Slot {
    std::int64_t index = -1;
    std::uint64_t count = 0;
  };

  double slot_us_;
  std::size_t num_slots_;
  mutable std::mutex mutex_;
  mutable std::vector<Slot> slots_;
};

/// Named registry of windowed metrics, mirroring how MetricsRegistry hands
/// out ids: registration happens once per call site, snapshots walk the
/// whole table for the /metrics and /stats renderers. Lives next to (not
/// inside) MetricsRegistry because windowed state is mutex-per-instance
/// rather than sharded — the write rate is per-request, not per-task.
class WindowedRegistry {
 public:
  /// Process-wide instance used by the serving layer. Leaked like the other
  /// obs globals so late writers stay safe.
  [[nodiscard]] static WindowedRegistry& global();

  /// Register-or-fetch by name; re-registering ignores the new bounds, as
  /// MetricsRegistry does.
  WindowedHistogram& histogram(const std::string& name,
                               std::vector<double> bounds,
                               WindowedHistogram::Config config = {});
  WindowedCounter& counter(const std::string& name,
                           WindowedCounter::Config config = {});

  struct HistogramEntry {
    std::string name;
    MetricsRegistry::HistogramSnapshot snap;
    double window_seconds = 0.0;
  };
  struct CounterEntry {
    std::string name;
    std::uint64_t total = 0;
    double rate_per_second = 0.0;
    double window_seconds = 0.0;
  };

  [[nodiscard]] std::vector<HistogramEntry> histogram_snapshots() const;
  [[nodiscard]] std::vector<CounterEntry> counter_snapshots() const;

  /// Drop every registered metric (tests; references from histogram()/
  /// counter() are invalidated).
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<WindowedHistogram>> histograms_;
  std::map<std::string, std::unique_ptr<WindowedCounter>> counters_;
};

}  // namespace cirstag::obs
