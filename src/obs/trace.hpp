#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace cirstag::obs {

/// Collector of nested begin/end trace spans, serializable to the Chrome
/// "Trace Event Format" (load the JSON in chrome://tracing or Perfetto).
///
/// Spans are recorded into per-thread buffers (one short uncontended mutex
/// acquisition per completed span), so instrumenting code that runs inside
/// `parallel_for` bodies is safe and cheap. Tracing is OFF by default: an
/// inactive `TraceSpan` costs one relaxed atomic load and stores nothing.
///
/// Span names follow the same `subsystem.noun` scheme as metrics; the five
/// pipeline phases are `phase.embedding`, `phase.manifold_x`,
/// `phase.manifold_y`, `phase.dmd`, and `phase.scores` (DESIGN.md §8).
class Tracer {
 public:
  struct Event {
    std::string name;
    std::string category;
    double ts_us = 0.0;   ///< start, microseconds since the tracer epoch
    double dur_us = 0.0;  ///< duration in microseconds
    std::uint32_t tid = 0;
  };

  Tracer();
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Process-wide tracer used by the single-argument TraceSpan constructor.
  /// Never destroyed, for the same reason as MetricsRegistry::global().
  [[nodiscard]] static Tracer& global();

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Append a completed span (called by ~TraceSpan).
  void record(Event event);

  /// All recorded events, merged across threads and sorted by start time.
  [[nodiscard]] std::vector<Event> events() const;

  /// Discard all recorded events.
  void clear();

  /// Serialize to Trace Event Format: {"traceEvents":[...]} with "ph":"X"
  /// complete events (ts/dur in microseconds).
  [[nodiscard]] std::string to_chrome_json() const;
  /// Write to_chrome_json() to `path`; returns false on I/O failure.
  bool write_chrome_json(const std::string& path) const;

  /// Microseconds since this tracer's construction (the trace time base).
  [[nodiscard]] double now_us() const;

  /// Small dense id for the calling thread (stable for the thread's life).
  [[nodiscard]] static std::uint32_t current_tid();

 private:
  struct Buffer {
    std::mutex mutex;
    std::vector<Event> events;
  };

  [[nodiscard]] Buffer& buffer();
  Buffer& acquire_buffer();

  const std::uint64_t tracer_id_;  ///< process-unique, for the TLS cache
  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mutex_;  // guards the buffer list
  std::vector<std::unique_ptr<Buffer>> buffers_;
  std::map<std::thread::id, Buffer*> buffer_by_thread_;
};

/// RAII scope: records one complete trace event covering its lifetime.
/// `name` and `category` must outlive the span (string literals in
/// practice). Inactive (and free of side effects) when tracing is disabled
/// at construction time.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* category = "cirstag")
      : TraceSpan(Tracer::global(), name, category) {}
  TraceSpan(Tracer& tracer, const char* name, const char* category = "cirstag")
      : tracer_(tracer.enabled() ? &tracer : nullptr),
        name_(name),
        category_(category),
        start_us_(tracer_ != nullptr ? tracer.now_us() : 0.0) {}
  ~TraceSpan() {
    if (tracer_ == nullptr) return;
    const double end_us = tracer_->now_us();
    tracer_->record({name_, category_, start_us_, end_us - start_us_,
                     Tracer::current_tid()});
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  Tracer* tracer_;  // nullptr when tracing was disabled at construction
  const char* name_;
  const char* category_;
  double start_us_;
};

}  // namespace cirstag::obs
