#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace cirstag::obs {

// ---------------------------------------------------------------------------
// Span stacks — the sampling profiler's view of what each thread is doing.
//
// Every thread that opens a TraceSpan while span stacks are enabled keeps a
// fixed-depth stack of the currently active span names (string literals).
// Pushes/pops are single-writer relaxed-ish atomics on thread-local storage,
// so the cost per span is two stores; the profiler thread reads the stacks
// of all registered threads without stopping them (sample_span_stacks),
// using the depth counter read before and after the frame copy to discard
// torn samples.

/// Per-thread stack of active span names. The owning thread writes, the
/// profiler thread reads; `depth` counts every push (including those beyond
/// kMaxDepth, whose frames are dropped) so pops always rebalance.
struct SpanStack {
  static constexpr std::size_t kMaxDepth = 48;
  std::array<std::atomic<const char*>, kMaxDepth> frames{};
  std::atomic<std::uint32_t> depth{0};
  /// Thread is parked (pool worker waiting for a job) — the sampler skips
  /// it entirely, so idle workers don't dilute the attribution fraction.
  std::atomic<bool> parked{false};
  std::uint32_t tid = 0;  ///< Tracer::current_tid() of the owning thread
};

/// Arm/disarm span-stack maintenance process-wide. Independent of tracer
/// enablement: the profiler needs stacks without paying for event records.
void set_span_stacks_enabled(bool on);
[[nodiscard]] bool span_stacks_enabled();

/// The calling thread's span stack (registered on first use, lives for the
/// process). Push/pop helpers are what TraceSpan and the thread pool's
/// span-prefix propagation use.
[[nodiscard]] SpanStack& current_span_stack();
void span_stack_push(const char* name);
void span_stack_pop();

/// Mark the calling thread parked/unparked (ThreadPool workers call this
/// around their wait-for-work block). Parked threads are invisible to
/// sample_span_stacks: a worker blocked on the pool's condition variable is
/// not spending wall time, and counting it as "(idle)" would make the
/// profiler's attribution fraction meaningless on wide machines.
void set_current_thread_parked(bool parked);

/// Names currently on the calling thread's stack, outermost first
/// (truncated at SpanStack::kMaxDepth). Used by ThreadPool::run to capture
/// the submitting thread's context for its workers.
[[nodiscard]] std::vector<const char*> current_span_path();

/// One profiler observation of one thread's stack.
struct SpanStackSample {
  std::uint32_t tid = 0;
  std::vector<const char*> frames;  ///< outermost first; empty = idle
  bool torn = false;      ///< stack changed mid-read; frames unreliable
  bool truncated = false; ///< depth exceeded kMaxDepth
};

/// Snapshot every registered thread's span stack (profiler thread only).
[[nodiscard]] std::vector<SpanStackSample> sample_span_stacks();

/// RAII: push a sequence of span names (a parent thread's span path) onto
/// the calling thread's stack, so a pool worker's samples attribute to the
/// phase that launched its tasks. Pops exactly what it pushed.
class SpanStackPrefix {
 public:
  explicit SpanStackPrefix(const std::vector<const char*>& names);
  ~SpanStackPrefix();
  SpanStackPrefix(const SpanStackPrefix&) = delete;
  SpanStackPrefix& operator=(const SpanStackPrefix&) = delete;

 private:
  std::size_t pushed_ = 0;
};

/// Collector of nested begin/end trace spans, serializable to the Chrome
/// "Trace Event Format" (load the JSON in chrome://tracing or Perfetto).
///
/// Spans are recorded into per-thread buffers (one short uncontended mutex
/// acquisition per completed span), so instrumenting code that runs inside
/// `parallel_for` bodies is safe and cheap. Tracing is OFF by default: an
/// inactive `TraceSpan` costs one relaxed atomic load and stores nothing.
///
/// Span names follow the same `subsystem.noun` scheme as metrics; the five
/// pipeline phases are `phase.embedding`, `phase.manifold_x`,
/// `phase.manifold_y`, `phase.dmd`, and `phase.scores` (DESIGN.md §8).
class Tracer {
 public:
  struct Event {
    std::string name;
    std::string category;
    double ts_us = 0.0;   ///< start, microseconds since the tracer epoch
    double dur_us = 0.0;  ///< duration in microseconds
    std::uint32_t tid = 0;
  };

  Tracer();
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Process-wide tracer used by the single-argument TraceSpan constructor.
  /// Never destroyed, for the same reason as MetricsRegistry::global().
  [[nodiscard]] static Tracer& global();

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Append a completed span (called by ~TraceSpan).
  void record(Event event);

  /// All recorded events, merged across threads and sorted by start time.
  [[nodiscard]] std::vector<Event> events() const;

  /// Discard all recorded events.
  void clear();

  /// Serialize to Trace Event Format: {"traceEvents":[...]} with "ph":"X"
  /// complete events (ts/dur in microseconds).
  [[nodiscard]] std::string to_chrome_json() const;
  /// Write to_chrome_json() to `path`; returns false on I/O failure.
  bool write_chrome_json(const std::string& path) const;

  /// Microseconds since the shared process epoch (obs/clock.hpp) — the same
  /// time base as log "ts" fields and request span trees, so trace events
  /// join against other obs artifacts without skew correction.
  [[nodiscard]] double now_us() const;

  /// Small dense id for the calling thread (stable for the thread's life).
  [[nodiscard]] static std::uint32_t current_tid();

 private:
  struct Buffer {
    std::mutex mutex;
    std::vector<Event> events;
  };

  [[nodiscard]] Buffer& buffer();
  Buffer& acquire_buffer();

  const std::uint64_t tracer_id_;  ///< process-unique, for the TLS cache
  std::atomic<bool> enabled_{false};

  mutable std::mutex mutex_;  // guards the buffer list
  std::vector<std::unique_ptr<Buffer>> buffers_;
  std::map<std::thread::id, Buffer*> buffer_by_thread_;
};

// -- request-attribution hook (implemented in request.cpp) ------------------
// When the calling thread is bound to a RequestContext (ScopedRequestBinding
// in obs/request.hpp), every TraceSpan also lands as a node in that
// request's span tree. Cost when unbound: one TLS load + null compare.
inline constexpr std::uint32_t kNoRequestSpan = 0xffffffffu;
/// Open a node in the bound request's span tree; kNoRequestSpan if unbound
/// or the tree is full.
[[nodiscard]] std::uint32_t request_span_begin(const char* name);
void request_span_end(std::uint32_t token);

/// RAII scope: records one complete trace event covering its lifetime, and
/// (when span stacks are armed for the sampling profiler) maintains the
/// calling thread's span stack. When the thread is bound to a request
/// (ScopedRequestBinding), the span additionally lands in that request's
/// span tree. `name` and `category` must outlive the span (string literals
/// in practice). Inactive (and free of side effects) when tracing, span
/// stacks, and request binding are all off at construction time.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* category = "cirstag")
      : TraceSpan(Tracer::global(), name, category) {}
  TraceSpan(Tracer& tracer, const char* name, const char* category = "cirstag")
      : tracer_(tracer.enabled() ? &tracer : nullptr),
        name_(name),
        category_(category),
        pushed_(span_stacks_enabled()),
        req_token_(request_span_begin(name)),
        start_us_(tracer_ != nullptr ? tracer.now_us() : 0.0) {
    // pushed_ remembers whether we pushed, so a mid-span toggle of the
    // global flag never unbalances the stack.
    if (pushed_) span_stack_push(name);
  }
  ~TraceSpan() {
    if (pushed_) span_stack_pop();
    request_span_end(req_token_);
    if (tracer_ == nullptr) return;
    const double end_us = tracer_->now_us();
    tracer_->record({name_, category_, start_us_, end_us - start_us_,
                     Tracer::current_tid()});
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  Tracer* tracer_;  // nullptr when tracing was disabled at construction
  const char* name_;
  const char* category_;
  bool pushed_;
  std::uint32_t req_token_;
  double start_us_;
};

}  // namespace cirstag::obs
