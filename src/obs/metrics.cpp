#include "obs/metrics.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "obs/json.hpp"

namespace cirstag::obs {

namespace {

/// Single-writer relaxed read-modify-write: each shard cell is written only
/// by its owning thread, so a plain load+store pair is race-free and cheaper
/// than a locked fetch_add; aggregating readers see a torn-free value.
inline void shard_add_u64(std::atomic<std::uint64_t>& cell,
                          std::uint64_t delta) {
  cell.store(cell.load(std::memory_order_relaxed) + delta,
             std::memory_order_relaxed);
}

inline void shard_add_f64(std::atomic<double>& cell, double delta) {
  cell.store(cell.load(std::memory_order_relaxed) + delta,
             std::memory_order_relaxed);
}

std::uint64_t next_registry_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

// alignas(64): each shard starts on its own cache line and (being a
// multiple of 64 bytes) never straddles into a neighbour, so one thread's
// relaxed counter stores can't false-share with another shard's hot lines.
struct alignas(64) MetricsRegistry::Shard {
  std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
  std::array<std::atomic<std::uint64_t>, kMaxHistograms * kHistStride>
      hist_buckets{};
  std::array<std::atomic<std::uint64_t>, kMaxHistograms> hist_count{};
  std::array<std::atomic<double>, kMaxHistograms> hist_sum{};
};

namespace {

/// Per-thread cache of (registry id -> shard). A few slots suffice: the
/// global registry plus at most a couple of test-local ones are live at a
/// time. Stale ids from destroyed registries simply never match again.
struct TlsEntry {
  std::uint64_t registry_id = 0;
  MetricsRegistry::Shard* shard = nullptr;
};
constexpr std::size_t kTlsSlots = 4;
thread_local std::array<TlsEntry, kTlsSlots> t_shard_cache{};
thread_local std::size_t t_shard_rr = 0;

}  // namespace

MetricsRegistry::MetricsRegistry()
    : registry_id_(next_registry_id()),
      gauges_(new std::atomic<double>[kMaxGauges]) {
  for (std::size_t i = 0; i < kMaxGauges; ++i)
    gauges_[i].store(0.0, std::memory_order_relaxed);
}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* reg = new MetricsRegistry();  // intentionally leaked
  return *reg;
}

MetricsRegistry::Shard& MetricsRegistry::shard() {
  for (const TlsEntry& e : t_shard_cache)
    if (e.registry_id == registry_id_) return *e.shard;
  return acquire_shard();
}

MetricsRegistry::Shard& MetricsRegistry::acquire_shard() {
  std::lock_guard lock(mutex_);
  Shard*& slot = shard_by_thread_[std::this_thread::get_id()];
  if (slot == nullptr) {
    shards_.push_back(std::make_unique<Shard>());
    slot = shards_.back().get();
  }
  t_shard_cache[t_shard_rr] = {registry_id_, slot};
  t_shard_rr = (t_shard_rr + 1) % kTlsSlots;
  return *slot;
}

std::size_t MetricsRegistry::counter_id(const std::string& name) {
  std::lock_guard lock(mutex_);
  const auto it =
      std::find(counter_names_.begin(), counter_names_.end(), name);
  if (it != counter_names_.end())
    return static_cast<std::size_t>(it - counter_names_.begin());
  if (counter_names_.size() >= kMaxCounters)
    throw std::length_error("MetricsRegistry: counter capacity exceeded");
  counter_names_.push_back(name);
  return counter_names_.size() - 1;
}

std::size_t MetricsRegistry::gauge_id(const std::string& name) {
  std::lock_guard lock(mutex_);
  const auto it = std::find(gauge_names_.begin(), gauge_names_.end(), name);
  if (it != gauge_names_.end())
    return static_cast<std::size_t>(it - gauge_names_.begin());
  if (gauge_names_.size() >= kMaxGauges)
    throw std::length_error("MetricsRegistry: gauge capacity exceeded");
  gauge_names_.push_back(name);
  return gauge_names_.size() - 1;
}

std::size_t MetricsRegistry::histogram_id(const std::string& name,
                                          std::vector<double> bounds) {
  if (bounds.empty() || bounds.size() >= kHistStride)
    throw std::invalid_argument("MetricsRegistry: bad histogram bound count");
  for (std::size_t i = 1; i < bounds.size(); ++i)
    if (!(bounds[i - 1] < bounds[i]))
      throw std::invalid_argument(
          "MetricsRegistry: histogram bounds must be strictly increasing");
  std::lock_guard lock(mutex_);
  const auto it =
      std::find(histogram_names_.begin(), histogram_names_.end(), name);
  if (it != histogram_names_.end())
    return static_cast<std::size_t>(it - histogram_names_.begin());
  if (histogram_names_.size() >= kMaxHistograms)
    throw std::length_error("MetricsRegistry: histogram capacity exceeded");
  histogram_names_.push_back(name);
  histogram_bounds_.push_back(std::move(bounds));
  return histogram_names_.size() - 1;
}

void MetricsRegistry::counter_add(std::size_t id, std::uint64_t delta) {
  if (!enabled()) return;
  shard_add_u64(shard().counters[id], delta);
}

void MetricsRegistry::gauge_set(std::size_t id, double value) {
  if (!enabled()) return;
  gauges_[id].store(value, std::memory_order_relaxed);
}

void MetricsRegistry::histogram_observe(std::size_t id, double value) {
  if (!enabled()) return;
  // Bucket index is registry state, but bounds are immutable once
  // registered, so reading them without the mutex is safe.
  const std::vector<double>& bounds = histogram_bounds_[id];
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(bounds.begin(), bounds.end(), value) - bounds.begin());
  Shard& s = shard();
  shard_add_u64(s.hist_buckets[id * kHistStride + bucket], 1);
  shard_add_u64(s.hist_count[id], 1);
  shard_add_f64(s.hist_sum[id], value);
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  Snapshot snap;
  std::lock_guard lock(mutex_);
  snap.counters.reserve(counter_names_.size());
  for (std::size_t i = 0; i < counter_names_.size(); ++i) {
    std::uint64_t total = 0;
    for (const auto& s : shards_)
      total += s->counters[i].load(std::memory_order_relaxed);
    snap.counters.emplace_back(counter_names_[i], total);
  }
  snap.gauges.reserve(gauge_names_.size());
  for (std::size_t i = 0; i < gauge_names_.size(); ++i)
    snap.gauges.emplace_back(gauge_names_[i],
                             gauges_[i].load(std::memory_order_relaxed));
  snap.histograms.reserve(histogram_names_.size());
  for (std::size_t i = 0; i < histogram_names_.size(); ++i) {
    HistogramSnapshot h;
    h.bounds = histogram_bounds_[i];
    h.buckets.assign(h.bounds.size() + 1, 0);
    for (const auto& s : shards_) {
      for (std::size_t b = 0; b < h.buckets.size(); ++b)
        h.buckets[b] += s->hist_buckets[i * kHistStride + b].load(
            std::memory_order_relaxed);
      h.count += s->hist_count[i].load(std::memory_order_relaxed);
      h.sum += s->hist_sum[i].load(std::memory_order_relaxed);
    }
    snap.histograms.emplace_back(histogram_names_[i], std::move(h));
  }
  return snap;
}

std::uint64_t MetricsRegistry::counter_value(const std::string& name) const {
  std::lock_guard lock(mutex_);
  const auto it =
      std::find(counter_names_.begin(), counter_names_.end(), name);
  if (it == counter_names_.end()) return 0;
  const auto id = static_cast<std::size_t>(it - counter_names_.begin());
  std::uint64_t total = 0;
  for (const auto& s : shards_)
    total += s->counters[id].load(std::memory_order_relaxed);
  return total;
}

double MetricsRegistry::gauge_value(const std::string& name) const {
  std::lock_guard lock(mutex_);
  const auto it = std::find(gauge_names_.begin(), gauge_names_.end(), name);
  if (it == gauge_names_.end()) return 0.0;
  return gauges_[static_cast<std::size_t>(it - gauge_names_.begin())].load(
      std::memory_order_relaxed);
}

MetricsRegistry::HistogramSnapshot MetricsRegistry::histogram_value(
    const std::string& name) const {
  HistogramSnapshot snap;
  std::lock_guard lock(mutex_);
  const auto it =
      std::find(histogram_names_.begin(), histogram_names_.end(), name);
  if (it == histogram_names_.end()) return snap;
  const auto id = static_cast<std::size_t>(it - histogram_names_.begin());
  snap.bounds = histogram_bounds_[id];
  snap.buckets.assign(snap.bounds.size() + 1, 0);
  for (const auto& s : shards_) {
    for (std::size_t b = 0; b < snap.buckets.size(); ++b)
      snap.buckets[b] +=
          s->hist_buckets[id * kHistStride + b].load(std::memory_order_relaxed);
    snap.count += s->hist_count[id].load(std::memory_order_relaxed);
    snap.sum += s->hist_sum[id].load(std::memory_order_relaxed);
  }
  return snap;
}

double MetricsRegistry::HistogramSnapshot::quantile(double q) const {
  if (count == 0 || buckets.empty() || bounds.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation (1-based, ceil) among `count` sorted
  // observations, then walk the cumulative bucket counts to find its bucket.
  const double rank = std::max(1.0, std::ceil(q * static_cast<double>(count)));
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    const std::uint64_t in_bucket = buckets[b];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) < rank) {
      cumulative += in_bucket;
      continue;
    }
    if (b == bounds.size()) return bounds.back();  // overflow: clamp
    const double lo = b == 0 ? 0.0 : bounds[b - 1];
    const double hi = bounds[b];
    const double into =
        (rank - static_cast<double>(cumulative)) / static_cast<double>(in_bucket);
    return lo + (hi - lo) * into;
  }
  return bounds.back();
}

std::string MetricsRegistry::to_json() const { return to_json({}); }

std::string MetricsRegistry::to_json(
    std::span<const std::pair<std::string, std::string>> extra) const {
  // Render from the consistent snapshot — the exit-time dump and the live
  // /metrics scrape share one aggregation path by construction.
  const Snapshot full = snapshot();
  std::string out = "{\n  \"counters\": {";
  for (std::size_t i = 0; i < full.counters.size(); ++i) {
    out += i == 0 ? "\n    " : ",\n    ";
    out += json_quote(full.counters[i].first);
    out += ": ";
    out += std::to_string(full.counters[i].second);
  }
  out += "\n  },\n  \"gauges\": {";
  for (std::size_t i = 0; i < full.gauges.size(); ++i) {
    out += i == 0 ? "\n    " : ",\n    ";
    out += json_quote(full.gauges[i].first);
    out += ": ";
    append_json_number(out, full.gauges[i].second);
  }
  out += "\n  },\n  \"histograms\": {";
  for (std::size_t i = 0; i < full.histograms.size(); ++i) {
    const HistogramSnapshot& snap = full.histograms[i].second;
    out += i == 0 ? "\n    " : ",\n    ";
    out += json_quote(full.histograms[i].first);
    out += ": {\"bounds\": [";
    for (std::size_t b = 0; b < snap.bounds.size(); ++b) {
      if (b > 0) out += ", ";
      append_json_number(out, snap.bounds[b]);
    }
    out += "], \"buckets\": [";
    for (std::size_t b = 0; b < snap.buckets.size(); ++b) {
      if (b > 0) out += ", ";
      out += std::to_string(snap.buckets[b]);
    }
    out += "], \"count\": ";
    out += std::to_string(snap.count);
    out += ", \"sum\": ";
    append_json_number(out, snap.sum);
    out += ", \"p50\": ";
    append_json_number(out, snap.quantile(0.50));
    out += ", \"p95\": ";
    append_json_number(out, snap.quantile(0.95));
    out += ", \"p99\": ";
    append_json_number(out, snap.quantile(0.99));
    out += "}";
  }
  out += "\n  }";
  for (const auto& [name, raw] : extra) {
    out += ",\n  ";
    out += json_quote(name);
    out += ": ";
    out += raw;
  }
  out += "\n}\n";
  return out;
}

bool MetricsRegistry::write_json(const std::string& path) const {
  return write_json(path, {});
}

bool MetricsRegistry::write_json(
    const std::string& path,
    std::span<const std::pair<std::string, std::string>> extra) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = to_json(extra);
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mutex_);
  for (const auto& s : shards_) {
    for (auto& c : s->counters) c.store(0, std::memory_order_relaxed);
    for (auto& c : s->hist_buckets) c.store(0, std::memory_order_relaxed);
    for (auto& c : s->hist_count) c.store(0, std::memory_order_relaxed);
    for (auto& c : s->hist_sum) c.store(0.0, std::memory_order_relaxed);
  }
  for (std::size_t i = 0; i < kMaxGauges; ++i)
    gauges_[i].store(0.0, std::memory_order_relaxed);
}

}  // namespace cirstag::obs
