#include "obs/log.hpp"

#include <chrono>
#include <cstdlib>
#include <cstring>

#include "obs/clock.hpp"
#include "obs/json.hpp"

namespace cirstag::obs {

namespace {

double steady_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double epoch_steady_seconds() {
  // The shared process epoch (obs/clock.hpp), expressed on the same raw
  // steady-clock scale steady_seconds() uses. Using it — instead of the
  // Logger's own construction instant — puts log "ts" on exactly the time
  // base as trace spans and access-log lines: ts == process_now_us() / 1e6.
  return std::chrono::duration<double>(process_epoch().time_since_epoch())
      .count();
}

std::string vformat(const char* fmt, std::va_list args) {
  std::va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  if (needed <= 0) return {};
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  return out;
}

}  // namespace

LogLevel parse_log_level(const char* text, LogLevel fallback) {
  if (text == nullptr) return fallback;
  if (std::strcmp(text, "debug") == 0) return LogLevel::debug;
  if (std::strcmp(text, "info") == 0) return LogLevel::info;
  if (std::strcmp(text, "warn") == 0) return LogLevel::warn;
  if (std::strcmp(text, "error") == 0) return LogLevel::error;
  if (std::strcmp(text, "off") == 0) return LogLevel::off;
  return fallback;
}

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::debug: return "debug";
    case LogLevel::info: return "info";
    case LogLevel::warn: return "warn";
    case LogLevel::error: return "error";
    case LogLevel::off: return "off";
  }
  return "unknown";
}

Logger::Logger()
    : level_(static_cast<int>(
          parse_log_level(std::getenv("CIRSTAG_LOG_LEVEL"), LogLevel::info))),
      epoch_seconds_(epoch_steady_seconds()) {}

Logger::~Logger() {
  std::lock_guard lock(mutex_);
  if (json_file_ != nullptr) std::fclose(json_file_);
}

Logger& Logger::global() {
  static Logger* logger = new Logger();  // intentionally leaked
  return *logger;
}

bool Logger::set_json_path(const std::string& path) {
  std::lock_guard lock(mutex_);
  if (json_file_ != nullptr) {
    std::fclose(json_file_);
    json_file_ = nullptr;
  }
  if (path.empty()) return true;
  json_file_ = std::fopen(path.c_str(), "w");
  return json_file_ != nullptr;
}

void Logger::log(LogLevel level, const char* subsystem,
                 const std::string& message) {
  if (level == LogLevel::off || !enabled(level)) return;
  emitted_.fetch_add(1, std::memory_order_relaxed);
  if (stderr_enabled_.load(std::memory_order_relaxed)) {
    std::fprintf(stderr, "[%s] %s: %s\n", log_level_name(level), subsystem,
                 message.c_str());
  }
  std::lock_guard lock(mutex_);
  if (json_file_ != nullptr) {
    std::string line = "{\"ts\": ";
    append_json_number(line, steady_seconds() - epoch_seconds_);
    line += ", \"level\": ";
    line += json_quote(log_level_name(level));
    line += ", \"subsystem\": ";
    line += json_quote(subsystem);
    line += ", \"message\": ";
    line += json_quote(message);
    line += "}\n";
    std::fwrite(line.data(), 1, line.size(), json_file_);
    std::fflush(json_file_);
  }
}

void Logger::logf(LogLevel level, const char* subsystem, const char* fmt,
                  ...) {
  if (level == LogLevel::off || !enabled(level)) return;
  std::va_list args;
  va_start(args, fmt);
  const std::string msg = vformat(fmt, args);
  va_end(args);
  log(level, subsystem, msg);
}

void log_debug(const char* subsystem, const std::string& message) {
  Logger::global().log(LogLevel::debug, subsystem, message);
}
void log_info(const char* subsystem, const std::string& message) {
  Logger::global().log(LogLevel::info, subsystem, message);
}
void log_warn(const char* subsystem, const std::string& message) {
  Logger::global().log(LogLevel::warn, subsystem, message);
}
void log_error(const char* subsystem, const std::string& message) {
  Logger::global().log(LogLevel::error, subsystem, message);
}
void logf_info(const char* subsystem, const char* fmt, ...) {
  Logger& logger = Logger::global();
  if (!logger.enabled(LogLevel::info)) return;
  std::va_list args;
  va_start(args, fmt);
  const std::string msg = vformat(fmt, args);
  va_end(args);
  logger.log(LogLevel::info, subsystem, msg);
}
void logf_error(const char* subsystem, const char* fmt, ...) {
  Logger& logger = Logger::global();
  if (!logger.enabled(LogLevel::error)) return;
  std::va_list args;
  va_start(args, fmt);
  const std::string msg = vformat(fmt, args);
  va_end(args);
  logger.log(LogLevel::error, subsystem, msg);
}

}  // namespace cirstag::obs
