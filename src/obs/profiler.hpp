#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace cirstag::obs {

/// Aggregated result of one profiling session.
struct ProfileSnapshot {
  /// Folded call-stack counts: "outer;inner;leaf" -> samples. The
  /// flamegraph-ready form (flamegraph.pl, inferno, speedscope all read it).
  std::map<std::string, std::uint64_t> folded;
  /// Samples per leaf span name — the self-time table (samples * period
  /// ≈ wall time spent with that span innermost).
  std::map<std::string, std::uint64_t> self_samples;
  std::uint64_t total_samples = 0;      ///< thread-samples taken
  std::uint64_t attributed_samples = 0; ///< landed inside >= 1 named span
  std::uint64_t idle_samples = 0;       ///< thread had no active span
  std::uint64_t torn_samples = 0;       ///< discarded: stack moved mid-read
  double period_us = 0.0;               ///< sampling period
  double duration_seconds = 0.0;        ///< session wall time

  /// attributed / (attributed + idle): the fraction of non-discarded
  /// samples the span taxonomy accounts for.
  [[nodiscard]] double attribution_fraction() const;
  /// Folded-stack text, one "path count" line per stack, idle samples as
  /// "(idle)". Lines are sorted (map order) so output is deterministic for
  /// a given sample set.
  [[nodiscard]] std::string to_folded() const;
  /// {"period_us":…,"samples":…,"self":{name:samples,…}} for embedding in
  /// --metrics-json.
  [[nodiscard]] std::string to_json() const;
};

/// In-process sampling profiler.
///
/// A background thread wakes at the configured frequency and snapshots every
/// registered thread's TraceSpan stack (see SpanStack in trace.hpp) — the
/// worker threads are never stopped, never signalled, and never take a lock
/// the samplees contend on, so profiling cannot perturb the computation (the
/// instrumented threads' only extra work is the two atomic stores a TraceSpan
/// already pays once span stacks are armed).
///
/// start() arms span stacks; stop() disarms them (unless they were armed
/// before start), joins the sampler thread, and freezes the snapshot.
class SamplingProfiler {
 public:
  SamplingProfiler() = default;
  ~SamplingProfiler();
  SamplingProfiler(const SamplingProfiler&) = delete;
  SamplingProfiler& operator=(const SamplingProfiler&) = delete;

  /// Process-wide profiler driven by the CLI's --profile-folded flag.
  [[nodiscard]] static SamplingProfiler& global();

  /// Begin sampling at `hz` (clamped to [1, 10000]). No-op when already
  /// running.
  void start(double hz);
  /// Stop sampling and aggregate. No-op when not running.
  void stop();
  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_relaxed);
  }

  /// Snapshot of the finished (or in-flight) session.
  [[nodiscard]] ProfileSnapshot snapshot() const;

  /// Write snapshot().to_folded() to `path`; returns false on I/O failure.
  bool write_folded(const std::string& path) const;

  /// Export the sample totals ("profile.samples", "profile.samples_attributed",
  /// "profile.samples_idle", "profile.samples_torn" counters and the
  /// "profile.attribution_fraction" gauge) into the global metrics registry.
  /// The per-span self-time table is deliberately NOT exported as counters —
  /// span names are open-ended and would exhaust the fixed counter table; it
  /// travels as the "profile" extra section of --metrics-json instead
  /// (snapshot().to_json()). Call after stop().
  void export_metrics() const;

 private:
  void sampler_loop(double period_seconds);

  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  bool stacks_were_enabled_ = false;
  std::thread thread_;
  mutable std::mutex mutex_;  // guards the aggregation maps
  ProfileSnapshot snap_;
};

}  // namespace cirstag::obs
