#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace cirstag::obs {

/// Process-wide registry of named counters, gauges, and fixed-bucket
/// histograms.
///
/// Design goals, in order:
///   1. Instrumentation must never perturb the instrumented computation —
///      metrics only ever read scalars the code already produced, so scores
///      stay bit-identical with metrics on, off, or absent.
///   2. The write fast path must be safe and cheap from inside `parallel_for`
///      bodies: every thread writes its own shard (single-writer relaxed
///      atomics, no contended cache lines), and shards are summed only when a
///      snapshot is taken.
///   3. Near-zero cost when disabled: one relaxed atomic-bool load.
///
/// Metric names follow `subsystem.noun[_unit]` (see DESIGN.md §8), e.g.
/// `cg.iterations`, `solver_cache.hits`, `runtime.pool.idle_ns`.
///
/// Registration (`counter_id` etc.) takes a mutex and is expected to happen
/// once per call site (function-local `static Counter c("...")`); the write
/// path is lock-free. Capacity is fixed (see kMax* below) — exceeding it
/// throws std::length_error at registration time, never at write time.
class MetricsRegistry {
 public:
  static constexpr std::size_t kMaxCounters = 192;
  static constexpr std::size_t kMaxGauges = 64;
  static constexpr std::size_t kMaxHistograms = 32;
  /// Cells per histogram: up to kHistStride-1 finite upper bounds plus the
  /// overflow bucket.
  static constexpr std::size_t kHistStride = 20;

  /// Opaque per-thread storage block (defined in metrics.cpp; public only so
  /// the thread-local shard cache can name it).
  struct Shard;

  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry used by the convenience handle constructors.
  /// Never destroyed (leaked on purpose) so instrumented code in static
  /// destructors and detached threads can always write safely.
  [[nodiscard]] static MetricsRegistry& global();

  /// When disabled, writes become a single relaxed load + branch; reads and
  /// registration still work. Enabled by default.
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Register (or look up) a metric by name; ids are stable for the life of
  /// the registry. Re-registering a histogram name ignores the new bounds.
  std::size_t counter_id(const std::string& name);
  std::size_t gauge_id(const std::string& name);
  /// `bounds` are strictly increasing finite bucket upper bounds; bucket i
  /// counts observations v with bounds[i-1] < v <= bounds[i], and a final
  /// overflow bucket counts v > bounds.back().
  std::size_t histogram_id(const std::string& name,
                           std::vector<double> bounds);

  // -- write fast path (thread-safe, lock-free) ----------------------------
  void counter_add(std::size_t id, std::uint64_t delta);
  void gauge_set(std::size_t id, double value);
  void histogram_observe(std::size_t id, double value);

  // -- aggregated reads ----------------------------------------------------
  struct HistogramSnapshot {
    std::vector<double> bounds;
    std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1 cells
    std::uint64_t count = 0;
    double sum = 0.0;

    /// Estimate the q-quantile (q in [0,1]) by linear interpolation inside
    /// the bucket holding the q·count-th observation. Bucket 0 interpolates
    /// from 0 (all recorded quantities are non-negative: iteration counts,
    /// durations, residuals); the overflow bucket clamps to bounds.back() —
    /// an upper-bound-free bucket has no defensible interior point, so the
    /// estimate saturates rather than invents one. Returns 0 when empty.
    [[nodiscard]] double quantile(double q) const;
  };

  /// One coherent pass over every metric: each value is summed across all
  /// shards inside a single mutex hold, so a scrape taken while traffic is
  /// in flight sees a consistent registration table and torn-free totals.
  /// This is THE read path for live exposition (/metrics, /stats) and for
  /// the exit-time JSON dump alike — there is deliberately no second
  /// aggregation code path to drift from it.
  struct Snapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
  };
  [[nodiscard]] Snapshot snapshot() const;

  /// Aggregated value of a counter (0 if never registered).
  [[nodiscard]] std::uint64_t counter_value(const std::string& name) const;
  /// Last value written to a gauge (0 if never set).
  [[nodiscard]] double gauge_value(const std::string& name) const;
  [[nodiscard]] HistogramSnapshot histogram_value(
      const std::string& name) const;

  /// Every metric, aggregated across shards, as a JSON object:
  /// {"counters":{...},"gauges":{...},"histograms":{...}}. Histograms carry
  /// interpolated "p50"/"p95"/"p99" estimates alongside bounds/buckets.
  [[nodiscard]] std::string to_json() const;
  /// As to_json(), with extra top-level sections appended after
  /// "histograms": each (name, raw JSON value) pair becomes `"name": value`.
  /// This is how the CLI embeds the health report and profiler summary into
  /// one --metrics-json document.
  [[nodiscard]] std::string to_json(
      std::span<const std::pair<std::string, std::string>> extra) const;
  /// Write to_json() to `path`; returns false on I/O failure.
  bool write_json(const std::string& path) const;
  bool write_json(
      const std::string& path,
      std::span<const std::pair<std::string, std::string>> extra) const;

  /// Zero every counter, gauge, and histogram. Intended for tests and for
  /// the start of a measured region; concurrent writers may land on either
  /// side of the reset.
  void reset();

 private:
  [[nodiscard]] Shard& shard();
  Shard& acquire_shard();

  const std::uint64_t registry_id_;  ///< process-unique, for the TLS cache
  std::atomic<bool> enabled_{true};

  mutable std::mutex mutex_;  // guards names/bounds/shard list, not writes
  std::vector<std::string> counter_names_;
  std::vector<std::string> gauge_names_;
  std::vector<std::string> histogram_names_;
  std::vector<std::vector<double>> histogram_bounds_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::map<std::thread::id, Shard*> shard_by_thread_;

  // Gauges are last-write-wins scalars; no sharding needed.
  std::unique_ptr<std::atomic<double>[]> gauges_;
};

/// Lightweight handle: resolves the name to an id once, then forwards adds.
/// Intended use is a function-local static at the instrumentation site:
///
///   static obs::Counter iters("cg.iterations");
///   iters.add(result.iterations);
class Counter {
 public:
  Counter(MetricsRegistry& reg, const std::string& name)
      : reg_(&reg), id_(reg.counter_id(name)) {}
  explicit Counter(const std::string& name)
      : Counter(MetricsRegistry::global(), name) {}
  void add(std::uint64_t delta = 1) const { reg_->counter_add(id_, delta); }

 private:
  MetricsRegistry* reg_;
  std::size_t id_;
};

class Gauge {
 public:
  Gauge(MetricsRegistry& reg, const std::string& name)
      : reg_(&reg), id_(reg.gauge_id(name)) {}
  explicit Gauge(const std::string& name)
      : Gauge(MetricsRegistry::global(), name) {}
  void set(double value) const { reg_->gauge_set(id_, value); }

 private:
  MetricsRegistry* reg_;
  std::size_t id_;
};

class Histogram {
 public:
  Histogram(MetricsRegistry& reg, const std::string& name,
            std::vector<double> bounds)
      : reg_(&reg), id_(reg.histogram_id(name, std::move(bounds))) {}
  Histogram(const std::string& name, std::vector<double> bounds)
      : Histogram(MetricsRegistry::global(), name, std::move(bounds)) {}
  void observe(double value) const { reg_->histogram_observe(id_, value); }

 private:
  MetricsRegistry* reg_;
  std::size_t id_;
};

}  // namespace cirstag::obs
