#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace cirstag::obs {

/// Per-request trace: a process-unique trace ID plus a bounded span tree
/// covering the request's life from socket accept to response serialization.
///
/// A RequestContext is created by the serve layer when a request is parsed,
/// travels with the scheduler Job (shared_ptr — the connection thread and
/// the scheduler both outlive-race each other per request), and is finished
/// and flushed to the access log when the response is ready. Spans come from
/// two sources:
///   - explicit segments the scheduler opens/closes around queueing, batch
///     compute, and response rendering (open_span/close_span), and
///   - every TraceSpan that fires on a thread *bound* to this request
///     (ScopedRequestBinding below) — so the solver's internal spans nest
///     under the request's "compute" node with zero changes to solver code.
///
/// Thread safety: span allocation is mutex-guarded (span writes happen once
/// per TraceSpan, nowhere near inner loops); the per-thread *parent* pointer
/// lives in the binding's TLS slot, so sibling threads attributing into the
/// same context never race on nesting state. The tree is bounded at
/// kMaxSpans — beyond that spans are counted but not stored, so a
/// pathological request cannot grow memory without bound.
///
/// All timestamps are microseconds on the shared process epoch (clock.hpp),
/// so a span tree joins against log lines and Chrome traces without skew.
class RequestContext {
 public:
  static constexpr std::uint32_t kNoParent = 0xffffffffu;
  static constexpr std::size_t kMaxSpans = 192;

  struct SpanNode {
    const char* name = nullptr;  ///< string literal; outlives the context
    std::uint32_t parent = kNoParent;
    double start_us = 0.0;
    double end_us = 0.0;  ///< 0 while open
  };

  explicit RequestContext(std::string endpoint);

  [[nodiscard]] std::uint64_t id() const { return id_; }
  /// 16 lowercase hex digits — the wire form (X-Trace-Id, access log).
  [[nodiscard]] std::string id_hex() const;

  [[nodiscard]] const std::string& endpoint() const { return endpoint_; }
  void set_circuit(std::string circuit);
  [[nodiscard]] const std::string& circuit() const { return circuit_; }

  /// Deadline slack (deadline minus completion, micros; negative = missed).
  void set_deadline_slack_us(double v) { deadline_slack_us_ = v; }
  [[nodiscard]] double deadline_slack_us() const { return deadline_slack_us_; }
  [[nodiscard]] bool has_deadline() const { return deadline_slack_us_ != 0.0; }

  // -- coarse request segments (set by the scheduler) ----------------------
  void set_queue_us(double v) { queue_us_ = v; }
  void set_compute_us(double v) { compute_us_ = v; }
  void add_render_us(double v);
  [[nodiscard]] double queue_us() const { return queue_us_; }
  [[nodiscard]] double compute_us() const { return compute_us_; }
  [[nodiscard]] double render_us() const { return render_us_; }

  // -- span tree -----------------------------------------------------------
  /// Allocate a span node explicitly (scheduler segments). Returns the node
  /// index, or kNoParent when the tree is full.
  std::uint32_t open_span(const char* name, double start_us,
                          std::uint32_t parent);
  void close_span(std::uint32_t index, double end_us);
  /// Parent index of span `index` (kNoParent when out of range).
  [[nodiscard]] std::uint32_t span_parent(std::uint32_t index) const;

  [[nodiscard]] std::vector<SpanNode> spans() const;
  [[nodiscard]] std::uint64_t spans_dropped() const;

  /// Stamp completion: HTTP status, end time. Idempotent on the end time
  /// (first call wins) so double-finish in error paths is harmless.
  void finish(int status);
  [[nodiscard]] int status() const { return status_; }
  [[nodiscard]] double start_us() const { return start_us_; }
  [[nodiscard]] double total_us() const;
  [[nodiscard]] bool finished() const { return end_us_ != 0.0; }

  // -- rendering -----------------------------------------------------------
  /// Span tree as a JSON array of {name,parent,start_us,dur_us} nodes,
  /// indices matching the parent references.
  [[nodiscard]] std::string span_tree_json() const;
  /// Folded-stack form ("queue 812\ncompute;cg.solve 14012\n...") — self
  /// time per path, flamegraph-ready. Open spans fold with zero self time.
  [[nodiscard]] std::string folded() const;
  /// One JSONL access-log line (no trailing newline).
  [[nodiscard]] std::string access_log_line() const;

 private:
  const std::uint64_t id_;
  const std::string endpoint_;
  std::string circuit_;
  const double start_us_;
  double end_us_ = 0.0;
  int status_ = 0;
  double queue_us_ = 0.0;
  double compute_us_ = 0.0;
  double render_us_ = 0.0;
  double deadline_slack_us_ = 0.0;

  mutable std::mutex mutex_;  // guards spans_/spans_dropped_/render_us_
  std::vector<SpanNode> spans_;
  std::uint64_t spans_dropped_ = 0;
};

/// The calling thread's current request attribution: which context (if any)
/// new spans should land in, and which node is the current parent.
struct RequestRef {
  RequestContext* ctx = nullptr;
  std::uint32_t parent = RequestContext::kNoParent;
};

/// The calling thread's binding (ctx == nullptr when unbound).
[[nodiscard]] RequestRef current_request_ref();

/// RAII: bind the calling thread to a request (nullptr ctx = no-op) for the
/// scope's duration, restoring the previous binding on exit. ThreadPool
/// workers install the submitting thread's ref around each job, exactly like
/// the span-stack prefix, so solver spans from pooled tasks attribute to the
/// request that launched them.
class ScopedRequestBinding {
 public:
  explicit ScopedRequestBinding(RequestRef ref);
  ScopedRequestBinding(RequestContext* ctx, std::uint32_t parent);
  ~ScopedRequestBinding();
  ScopedRequestBinding(const ScopedRequestBinding&) = delete;
  ScopedRequestBinding& operator=(const ScopedRequestBinding&) = delete;

 private:
  RequestRef previous_;
  bool installed_ = false;
};

/// RAII: a "render" span on `ctx` (nullptr = inert) covering response
/// serialization; its duration also accumulates into the context's render
/// segment. Used per batch member, so coalesced requests each get their own
/// serialize attribution even though one thread renders all of them.
class RenderScope {
 public:
  explicit RenderScope(RequestContext* ctx);
  ~RenderScope();
  RenderScope(const RenderScope&) = delete;
  RenderScope& operator=(const RenderScope&) = delete;

 private:
  RequestContext* ctx_;
  std::uint32_t span_ = RequestContext::kNoParent;
  double start_us_ = 0.0;
};

/// Access-log + slow-request-exemplar sink.
///
/// The access log is JSONL, one line per completed request (trace ID,
/// endpoint, circuit, segment micros, status, deadline slack). The exemplar
/// sink captures the *full* span tree + folded profile of any request whose
/// total latency exceeds `slow_threshold_us`, rate-limited by a token bucket
/// (default: burst of 8, refill 0.1/s) so a latency regression under load
/// yields a handful of representative traces instead of gigabytes.
class RequestLog {
 public:
  RequestLog() = default;
  ~RequestLog();
  RequestLog(const RequestLog&) = delete;
  RequestLog& operator=(const RequestLog&) = delete;

  /// Process-wide sink, leaked like the other obs globals.
  [[nodiscard]] static RequestLog& global();

  /// Open (truncate) the access log at `path`; empty closes it.
  bool set_access_log_path(const std::string& path);
  /// Open (truncate) the slow-exemplar JSONL file; empty closes it.
  bool set_exemplar_path(const std::string& path);
  /// Requests with total_us >= threshold are exemplar candidates; negative
  /// disables capture (the default).
  void set_slow_threshold_us(double threshold_us);
  /// Token bucket bounding exemplar writes: at most `capacity` in a burst,
  /// refilled at `refill_per_second`.
  void configure_token_bucket(double capacity, double refill_per_second);

  /// Flush one finished request to the armed sinks. Safe from any thread.
  void record(const RequestContext& ctx);

  [[nodiscard]] std::uint64_t access_lines_written() const;
  [[nodiscard]] std::uint64_t exemplars_captured() const;
  [[nodiscard]] std::uint64_t exemplars_dropped() const;

  /// Close sinks and zero counters/threshold/bucket (tests).
  void reset_for_tests();

 private:
  mutable std::mutex mutex_;
  std::FILE* access_file_ = nullptr;
  std::FILE* exemplar_file_ = nullptr;
  double slow_threshold_us_ = -1.0;
  double bucket_capacity_ = 8.0;
  double bucket_refill_per_second_ = 0.1;
  double bucket_tokens_ = 8.0;
  double bucket_last_refill_us_ = 0.0;
  std::uint64_t access_lines_ = 0;
  std::uint64_t exemplars_captured_ = 0;
  std::uint64_t exemplars_dropped_ = 0;
};

}  // namespace cirstag::obs
