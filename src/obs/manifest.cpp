#include "obs/manifest.hpp"

#include <cstdio>

#include "obs/json.hpp"

// Build provenance baked in by src/obs/CMakeLists.txt; the fallbacks keep
// the file compilable outside the CMake build (e.g. editor tooling).
#ifndef CIRSTAG_GIT_DESCRIBE
#define CIRSTAG_GIT_DESCRIBE "unknown"
#endif
#ifndef CIRSTAG_BUILD_TYPE
#define CIRSTAG_BUILD_TYPE "unknown"
#endif
#ifndef CIRSTAG_CXX_COMPILER
#define CIRSTAG_CXX_COMPILER "unknown"
#endif
#ifndef CIRSTAG_CXX_FLAGS
#define CIRSTAG_CXX_FLAGS ""
#endif

namespace cirstag::obs {

std::string fnv1a_hex(std::uint64_t hash) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(hash));
  return std::string(buf, 16);
}

std::string PhaseChecksums::to_json() const {
  const std::pair<const char*, std::uint64_t> fields[] = {
      {"input_graph", input_graph}, {"embedding", embedding},
      {"manifold_x", manifold_x},   {"manifold_y", manifold_y},
      {"eigenvalues", eigenvalues}, {"node_scores", node_scores},
      {"edge_scores", edge_scores},
  };
  std::string out = "{";
  bool first = true;
  for (const auto& [name, value] : fields) {
    out += first ? "" : ", ";
    first = false;
    out += json_quote(name);
    out += ": ";
    out += json_quote(fnv1a_hex(value));
  }
  out += "}";
  return out;
}

const BuildInfo& build_info() {
  static const BuildInfo info{CIRSTAG_GIT_DESCRIBE, CIRSTAG_BUILD_TYPE,
                              CIRSTAG_CXX_COMPILER, CIRSTAG_CXX_FLAGS};
  return info;
}

ManifestBuilder::ManifestBuilder() {
  const BuildInfo& info = build_info();
  set_uint("manifest", "schema_version", 1);
  set_string("build", "git_describe", info.git_describe);
  set_string("build", "build_type", info.build_type);
  set_string("build", "compiler", info.compiler);
  set_string("build", "cxx_flags", info.cxx_flags);
}

ManifestBuilder::Section& ManifestBuilder::section(const std::string& name) {
  for (Section& s : sections_)
    if (s.name == name) return s;
  sections_.push_back({name, {}});
  return sections_.back();
}

void ManifestBuilder::set_string(const std::string& sec, const std::string& key,
                                 const std::string& value) {
  set_raw(sec, key, json_quote(value));
}

void ManifestBuilder::set_number(const std::string& sec, const std::string& key,
                                 double value) {
  std::string raw;
  append_json_number(raw, value);
  set_raw(sec, key, std::move(raw));
}

void ManifestBuilder::set_uint(const std::string& sec, const std::string& key,
                               std::uint64_t value) {
  set_raw(sec, key, std::to_string(value));
}

void ManifestBuilder::set_bool(const std::string& sec, const std::string& key,
                               bool value) {
  set_raw(sec, key, value ? "true" : "false");
}

void ManifestBuilder::set_raw(const std::string& sec, const std::string& key,
                              std::string raw) {
  Section& s = section(sec);
  for (auto& [k, v] : s.entries) {
    if (k == key) {
      v = std::move(raw);
      return;
    }
  }
  s.entries.emplace_back(key, std::move(raw));
}

void ManifestBuilder::set_checksums(const std::string& sec,
                                    const PhaseChecksums& checksums) {
  const std::pair<const char*, std::uint64_t> fields[] = {
      {"input_graph", checksums.input_graph},
      {"embedding", checksums.embedding},
      {"manifold_x", checksums.manifold_x},
      {"manifold_y", checksums.manifold_y},
      {"eigenvalues", checksums.eigenvalues},
      {"node_scores", checksums.node_scores},
      {"edge_scores", checksums.edge_scores},
  };
  for (const auto& [name, value] : fields)
    set_string(sec, name, fnv1a_hex(value));
}

std::string ManifestBuilder::to_json() const {
  std::string out = "{";
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    const Section& s = sections_[i];
    out += i == 0 ? "\n  " : ",\n  ";
    out += json_quote(s.name);
    out += ": {";
    for (std::size_t j = 0; j < s.entries.size(); ++j) {
      out += j == 0 ? "\n    " : ",\n    ";
      out += json_quote(s.entries[j].first);
      out += ": ";
      out += s.entries[j].second;
    }
    out += s.entries.empty() ? "}" : "\n  }";
  }
  out += "\n}\n";
  return out;
}

bool ManifestBuilder::write(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = to_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace cirstag::obs
