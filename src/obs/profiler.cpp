#include "obs/profiler.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace cirstag::obs {

double ProfileSnapshot::attribution_fraction() const {
  const std::uint64_t considered = attributed_samples + idle_samples;
  if (considered == 0) return 0.0;
  return static_cast<double>(attributed_samples) /
         static_cast<double>(considered);
}

std::string ProfileSnapshot::to_folded() const {
  std::string out;
  for (const auto& [path, count] : folded) {
    out += path;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  if (idle_samples > 0) {
    out += "(idle) ";
    out += std::to_string(idle_samples);
    out += '\n';
  }
  return out;
}

std::string ProfileSnapshot::to_json() const {
  std::string out = "{\"period_us\": ";
  append_json_number(out, period_us);
  out += ", \"duration_seconds\": ";
  append_json_number(out, duration_seconds);
  out += ", \"samples\": ";
  out += std::to_string(total_samples);
  out += ", \"attributed\": ";
  out += std::to_string(attributed_samples);
  out += ", \"idle\": ";
  out += std::to_string(idle_samples);
  out += ", \"torn\": ";
  out += std::to_string(torn_samples);
  out += ", \"attribution_fraction\": ";
  append_json_number(out, attribution_fraction());
  out += ", \"self\": {";
  bool first = true;
  for (const auto& [name, count] : self_samples) {
    out += first ? "\n  " : ",\n  ";
    first = false;
    out += json_quote(name);
    out += ": ";
    out += std::to_string(count);
  }
  out += first ? "}}" : "\n}}";
  return out;
}

SamplingProfiler::~SamplingProfiler() { stop(); }

SamplingProfiler& SamplingProfiler::global() {
  static SamplingProfiler* profiler =
      new SamplingProfiler();  // intentionally leaked
  return *profiler;
}

void SamplingProfiler::start(double hz) {
  if (running_.load(std::memory_order_relaxed)) return;
  const double clamped = std::clamp(hz, 1.0, 10000.0);
  const double period_seconds = 1.0 / clamped;
  {
    std::lock_guard lock(mutex_);
    snap_ = ProfileSnapshot{};
    snap_.period_us = period_seconds * 1e6;
  }
  stacks_were_enabled_ = span_stacks_enabled();
  set_span_stacks_enabled(true);
  stop_requested_.store(false, std::memory_order_relaxed);
  running_.store(true, std::memory_order_relaxed);
  thread_ = std::thread([this, period_seconds] { sampler_loop(period_seconds); });
}

void SamplingProfiler::stop() {
  if (!running_.load(std::memory_order_relaxed)) return;
  stop_requested_.store(true, std::memory_order_relaxed);
  thread_.join();
  running_.store(false, std::memory_order_relaxed);
  if (!stacks_were_enabled_) set_span_stacks_enabled(false);
}

void SamplingProfiler::sampler_loop(double period_seconds) {
  using clock = std::chrono::steady_clock;
  const auto period = std::chrono::duration_cast<clock::duration>(
      std::chrono::duration<double>(period_seconds));
  const auto start = clock::now();
  auto next_tick = start + period;
  while (!stop_requested_.load(std::memory_order_relaxed)) {
    const std::vector<SpanStackSample> samples = sample_span_stacks();
    std::lock_guard lock(mutex_);
    for (const SpanStackSample& s : samples) {
      ++snap_.total_samples;
      if (s.torn) {
        ++snap_.torn_samples;
        continue;
      }
      if (s.frames.empty()) {
        ++snap_.idle_samples;
        continue;
      }
      ++snap_.attributed_samples;
      std::string path;
      for (std::size_t i = 0; i < s.frames.size(); ++i) {
        if (i > 0) path += ';';
        path += s.frames[i];
      }
      if (s.truncated) path += ";(truncated)";
      ++snap_.folded[path];
      ++snap_.self_samples[s.frames.back()];
    }
    snap_.duration_seconds =
        std::chrono::duration<double>(clock::now() - start).count();
    // sleep_until keeps the average rate at the requested Hz even when a
    // sampling pass (registry lock + string folding) overruns a period.
    std::this_thread::sleep_until(next_tick);
    next_tick += period;
    if (next_tick < clock::now()) next_tick = clock::now() + period;
  }
}

ProfileSnapshot SamplingProfiler::snapshot() const {
  std::lock_guard lock(mutex_);
  return snap_;
}

bool SamplingProfiler::write_folded(const std::string& path) const {
  const std::string text = snapshot().to_folded();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}

void SamplingProfiler::export_metrics() const {
  const ProfileSnapshot snap = snapshot();
  static const Counter total("profile.samples");
  static const Counter attributed("profile.samples_attributed");
  static const Counter idle("profile.samples_idle");
  static const Counter torn("profile.samples_torn");
  static const Gauge fraction("profile.attribution_fraction");
  total.add(snap.total_samples);
  attributed.add(snap.attributed_samples);
  idle.add(snap.idle_samples);
  torn.add(snap.torn_samples);
  fraction.set(snap.attribution_fraction());
}

}  // namespace cirstag::obs
