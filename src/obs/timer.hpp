#pragma once

#include <chrono>

namespace cirstag::obs {

/// Simple monotonic wall-clock stopwatch. Wall timing is observability, so
/// it lives here next to TraceSpan and the metrics registry.
///
/// Starts running on construction; `elapsed_*()` reports time since the last
/// `reset()` (or construction).
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last reset().
  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or last reset().
  [[nodiscard]] double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace cirstag::obs
