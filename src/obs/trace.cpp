#include "obs/trace.hpp"

#include <algorithm>
#include <array>
#include <cstdio>

#include "obs/clock.hpp"
#include "obs/json.hpp"

namespace cirstag::obs {

namespace {

std::uint64_t next_tracer_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

struct TlsEntry {
  std::uint64_t tracer_id = 0;
  void* buffer = nullptr;
};
constexpr std::size_t kTlsSlots = 4;
thread_local std::array<TlsEntry, kTlsSlots> t_buffer_cache{};
thread_local std::size_t t_buffer_rr = 0;

}  // namespace

// ---------------------------------------------------------------------------
// Span stacks

namespace {

std::atomic<bool> g_span_stacks_enabled{false};

/// Registry of every thread's stack. Stacks are never destroyed (threads
/// come and go but the process-lifetime vector keeps them valid for the
/// profiler), mirroring the leaked global registries elsewhere in obs.
struct SpanStackRegistry {
  std::mutex mutex;
  std::vector<std::unique_ptr<SpanStack>> stacks;
};

SpanStackRegistry& span_stack_registry() {
  static SpanStackRegistry* reg = new SpanStackRegistry();
  return *reg;
}

thread_local SpanStack* t_span_stack = nullptr;

}  // namespace

void set_span_stacks_enabled(bool on) {
  g_span_stacks_enabled.store(on, std::memory_order_relaxed);
}

bool span_stacks_enabled() {
  return g_span_stacks_enabled.load(std::memory_order_relaxed);
}

SpanStack& current_span_stack() {
  if (t_span_stack != nullptr) return *t_span_stack;
  SpanStackRegistry& reg = span_stack_registry();
  std::lock_guard lock(reg.mutex);
  reg.stacks.push_back(std::make_unique<SpanStack>());
  t_span_stack = reg.stacks.back().get();
  t_span_stack->tid = Tracer::current_tid();
  return *t_span_stack;
}

void span_stack_push(const char* name) {
  SpanStack& st = current_span_stack();
  const std::uint32_t d = st.depth.load(std::memory_order_relaxed);
  if (d < SpanStack::kMaxDepth)
    st.frames[d].store(name, std::memory_order_relaxed);
  // The release on depth publishes the frame store above to the sampler.
  st.depth.store(d + 1, std::memory_order_release);
}

void span_stack_pop() {
  SpanStack& st = current_span_stack();
  const std::uint32_t d = st.depth.load(std::memory_order_relaxed);
  if (d > 0) st.depth.store(d - 1, std::memory_order_release);
}

void set_current_thread_parked(bool parked) {
  current_span_stack().parked.store(parked, std::memory_order_relaxed);
}

std::vector<const char*> current_span_path() {
  std::vector<const char*> path;
  if (t_span_stack == nullptr) return path;
  const SpanStack& st = *t_span_stack;
  const std::uint32_t d = std::min<std::uint32_t>(
      st.depth.load(std::memory_order_relaxed), SpanStack::kMaxDepth);
  path.reserve(d);
  for (std::uint32_t i = 0; i < d; ++i)
    path.push_back(st.frames[i].load(std::memory_order_relaxed));
  return path;
}

std::vector<SpanStackSample> sample_span_stacks() {
  SpanStackRegistry& reg = span_stack_registry();
  std::lock_guard lock(reg.mutex);
  std::vector<SpanStackSample> samples;
  samples.reserve(reg.stacks.size());
  for (const auto& stack : reg.stacks) {
    if (stack->parked.load(std::memory_order_relaxed)) continue;
    SpanStackSample s;
    s.tid = stack->tid;
    const std::uint32_t before = stack->depth.load(std::memory_order_acquire);
    const std::uint32_t copy =
        std::min<std::uint32_t>(before, SpanStack::kMaxDepth);
    s.truncated = before > SpanStack::kMaxDepth;
    s.frames.reserve(copy);
    for (std::uint32_t i = 0; i < copy; ++i)
      s.frames.push_back(stack->frames[i].load(std::memory_order_relaxed));
    // A depth change across the copy means the stack moved under us; the
    // frame pointers themselves are atomic (never torn), but the *path* may
    // mix two moments — mark the sample so the profiler can discard it.
    const std::uint32_t after = stack->depth.load(std::memory_order_acquire);
    s.torn = after != before;
    for (const char* f : s.frames)
      if (f == nullptr) s.torn = true;  // frame raced the depth publication
    samples.push_back(std::move(s));
  }
  return samples;
}

SpanStackPrefix::SpanStackPrefix(const std::vector<const char*>& names) {
  if (!span_stacks_enabled()) return;
  for (const char* name : names) {
    span_stack_push(name);
    ++pushed_;
  }
}

SpanStackPrefix::~SpanStackPrefix() {
  for (std::size_t i = 0; i < pushed_; ++i) span_stack_pop();
}

Tracer::Tracer() : tracer_id_(next_tracer_id()) {
  // Pin the shared epoch no later than the first tracer, so early spans
  // never see a negative timestamp.
  process_epoch();
}

Tracer::~Tracer() = default;

Tracer& Tracer::global() {
  static Tracer* tracer = new Tracer();  // intentionally leaked
  return *tracer;
}

double Tracer::now_us() const { return process_now_us(); }

std::uint32_t Tracer::current_tid() {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t tid =
      next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

Tracer::Buffer& Tracer::buffer() {
  for (const TlsEntry& e : t_buffer_cache)
    if (e.tracer_id == tracer_id_) return *static_cast<Buffer*>(e.buffer);
  return acquire_buffer();
}

Tracer::Buffer& Tracer::acquire_buffer() {
  std::lock_guard lock(mutex_);
  Buffer*& slot = buffer_by_thread_[std::this_thread::get_id()];
  if (slot == nullptr) {
    buffers_.push_back(std::make_unique<Buffer>());
    slot = buffers_.back().get();
  }
  t_buffer_cache[t_buffer_rr] = {tracer_id_, slot};
  t_buffer_rr = (t_buffer_rr + 1) % kTlsSlots;
  return *slot;
}

void Tracer::record(Event event) {
  Buffer& buf = buffer();
  std::lock_guard lock(buf.mutex);
  buf.events.push_back(std::move(event));
}

std::vector<Tracer::Event> Tracer::events() const {
  std::vector<Event> all;
  {
    std::lock_guard lock(mutex_);
    for (const auto& buf : buffers_) {
      std::lock_guard buf_lock(buf->mutex);
      all.insert(all.end(), buf->events.begin(), buf->events.end());
    }
  }
  std::sort(all.begin(), all.end(), [](const Event& a, const Event& b) {
    return a.ts_us < b.ts_us;
  });
  return all;
}

void Tracer::clear() {
  std::lock_guard lock(mutex_);
  for (const auto& buf : buffers_) {
    std::lock_guard buf_lock(buf->mutex);
    buf->events.clear();
  }
}

std::string Tracer::to_chrome_json() const {
  const std::vector<Event> all = events();
  std::string out = "{\"traceEvents\": [";
  for (std::size_t i = 0; i < all.size(); ++i) {
    const Event& e = all[i];
    out += i == 0 ? "\n  " : ",\n  ";
    out += "{\"name\": ";
    out += json_quote(e.name);
    out += ", \"cat\": ";
    out += json_quote(e.category);
    out += ", \"ph\": \"X\", \"ts\": ";
    append_json_number(out, e.ts_us);
    out += ", \"dur\": ";
    append_json_number(out, e.dur_us);
    out += ", \"pid\": 1, \"tid\": ";
    out += std::to_string(e.tid);
    out += "}";
  }
  out += "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

bool Tracer::write_chrome_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = to_chrome_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace cirstag::obs
