#pragma once

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <mutex>
#include <string>

namespace cirstag::obs {

/// Severity levels of the structured logger, ordered by verbosity.
enum class LogLevel : int {
  debug = 0,
  info = 1,
  warn = 2,
  error = 3,
  off = 4,
};

/// Parse "debug" | "info" | "warn" | "error" | "off" (case-sensitive);
/// returns `fallback` on anything else.
[[nodiscard]] LogLevel parse_log_level(const char* text, LogLevel fallback);
[[nodiscard]] const char* log_level_name(LogLevel level);

/// Minimal leveled structured logger.
///
/// Replaces the ad-hoc stderr/stdout diagnostics scattered through the CLI,
/// the GNN trainers, and the bench harnesses with one sink that supports
///   - a severity threshold (default `info`, overridable with the
///     CIRSTAG_LOG_LEVEL environment variable or `--log-level`), and
///   - an optional JSON-lines mirror (`--log-json PATH`): one
///     {"ts":…,"level":…,"subsystem":…,"message":…} object per line, so a
///     run's diagnostics are machine-parseable next to its metrics/manifest.
///
/// Human-readable output goes to stderr (never stdout — command output and
/// diagnostics must not interleave). The logger is observability only: it
/// reads scalars the caller already produced and never perturbs computation.
class Logger {
 public:
  Logger();
  ~Logger();
  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  /// Process-wide logger used by the log_* convenience functions. Never
  /// destroyed, for the same reason as MetricsRegistry::global().
  [[nodiscard]] static Logger& global();

  void set_level(LogLevel level) {
    level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  [[nodiscard]] LogLevel level() const {
    return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
  }
  [[nodiscard]] bool enabled(LogLevel level) const {
    return static_cast<int>(level) >=
           level_.load(std::memory_order_relaxed);
  }

  /// Mirror every emitted record to `path` as JSON lines (empty path closes
  /// the mirror). Returns false when the file cannot be opened.
  bool set_json_path(const std::string& path);

  /// Suppress the human-readable stderr line (JSON mirror still written).
  /// Used by tests that exercise error-level records.
  void set_stderr_enabled(bool on) {
    stderr_enabled_.store(on, std::memory_order_relaxed);
  }

  /// Emit one record if `level` passes the threshold.
  void log(LogLevel level, const char* subsystem, const std::string& message);

  /// printf-style convenience.
  void logf(LogLevel level, const char* subsystem, const char* fmt, ...)
      __attribute__((format(printf, 4, 5)));

  /// Records emitted since construction (all levels that passed the
  /// threshold); lets tests assert on sink behaviour cheaply.
  [[nodiscard]] std::uint64_t records_emitted() const {
    return emitted_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<int> level_;
  std::atomic<bool> stderr_enabled_{true};
  std::atomic<std::uint64_t> emitted_{0};
  std::mutex mutex_;  // guards the JSON sink
  std::FILE* json_file_ = nullptr;
  double epoch_seconds_ = 0.0;  // steady-clock origin for the "ts" field
};

// Convenience wrappers over Logger::global().
void log_debug(const char* subsystem, const std::string& message);
void log_info(const char* subsystem, const std::string& message);
void log_warn(const char* subsystem, const std::string& message);
void log_error(const char* subsystem, const std::string& message);
void logf_info(const char* subsystem, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));
void logf_error(const char* subsystem, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

}  // namespace cirstag::obs
