#include "obs/health.hpp"

#include <cmath>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace cirstag::obs {

const char* health_severity_name(HealthSeverity severity) {
  switch (severity) {
    case HealthSeverity::info: return "info";
    case HealthSeverity::warning: return "warning";
    case HealthSeverity::error: return "error";
  }
  return "unknown";
}

bool HealthReport::ok() const {
  for (const HealthEvent& e : events)
    if (e.severity != HealthSeverity::info) return false;
  return true;
}

std::size_t HealthReport::count(HealthSeverity severity) const {
  std::size_t n = 0;
  for (const HealthEvent& e : events)
    if (e.severity == severity) ++n;
  return n;
}

std::string HealthReport::to_json() const {
  std::string out = "{\"ok\": ";
  out += ok() ? "true" : "false";
  out += ", \"dropped\": ";
  out += std::to_string(dropped);
  out += ", \"events\": [";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const HealthEvent& e = events[i];
    out += i == 0 ? "\n  " : ",\n  ";
    out += "{\"kind\": ";
    out += json_quote(e.kind);
    out += ", \"severity\": ";
    out += json_quote(health_severity_name(e.severity));
    out += ", \"value\": ";
    append_json_number(out, e.value);
    out += ", \"threshold\": ";
    append_json_number(out, e.threshold);
    out += ", \"index\": ";
    out += std::to_string(e.index);
    out += ", \"detail\": ";
    out += json_quote(e.detail);
    out += "}";
  }
  out += events.empty() ? "]}" : "\n]}";
  return out;
}

HealthMonitor& HealthMonitor::global() {
  static HealthMonitor* monitor = new HealthMonitor();  // intentionally leaked
  return *monitor;
}

void HealthMonitor::record(std::string kind, std::string detail, double value,
                           double threshold, HealthSeverity severity) {
  if (!enabled()) return;
  static const Counter events_counter("health.events");
  static const Counter warnings_counter("health.warnings");
  static const Counter errors_counter("health.errors");
  events_counter.add();
  if (severity == HealthSeverity::warning) warnings_counter.add();
  if (severity == HealthSeverity::error) errors_counter.add();
  std::lock_guard lock(mutex_);
  const std::uint64_t index = next_index_++;
  if (events_.size() >= kMaxEvents) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  events_.push_back({std::move(kind), std::move(detail), value, threshold,
                     severity, index});
}

std::uint64_t HealthMonitor::next_index() const {
  std::lock_guard lock(mutex_);
  return next_index_;
}

HealthReport HealthMonitor::collect_since(std::uint64_t begin) const {
  HealthReport report;
  report.dropped = dropped_.load(std::memory_order_relaxed);
  std::lock_guard lock(mutex_);
  for (const HealthEvent& e : events_)
    if (e.index >= begin) report.events.push_back(e);
  return report;
}

void HealthMonitor::clear() {
  std::lock_guard lock(mutex_);
  events_.clear();
}

void record_health_event(std::string kind, std::string detail, double value,
                         double threshold, HealthSeverity severity) {
  HealthMonitor::global().record(std::move(kind), std::move(detail), value,
                                 threshold, severity);
}

bool health_check_finite(const char* where, std::span<const double> values) {
  if (!HealthMonitor::global().enabled()) return true;
  std::size_t bad = 0;
  for (const double v : values)
    if (!std::isfinite(v)) ++bad;
  if (bad == 0) return true;
  record_health_event(
      "sentinel.nonfinite",
      std::string(where) + ": " + std::to_string(bad) + " of " +
          std::to_string(values.size()) + " values non-finite",
      static_cast<double>(bad), 0.0, HealthSeverity::error);
  return false;
}

}  // namespace cirstag::obs
