#include "gnn/timing_gnn.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "circuit/views.hpp"
#include "gnn/dag_prop.hpp"
#include "gnn/loss.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/stats.hpp"

namespace cirstag::gnn {

TimingGnn::TimingGnn(const circuit::Netlist& netlist, TimingGnnOptions opts)
    : netlist_(&netlist), opts_(opts) {
  if (!netlist.finalized())
    throw std::invalid_argument("TimingGnn: netlist must be finalized");
  features_ = circuit::pin_features(netlist);

  const circuit::PinArcs arcs = circuit::pin_arcs(netlist);
  const std::size_t n = netlist.num_pins();
  std::vector<linalg::SparseMatrix> ops;
  ops.push_back(normalized_arc_operator(n, arcs.net_arcs, false));
  ops.push_back(normalized_arc_operator(n, arcs.cell_arcs, false));
  ops.push_back(normalized_arc_operator(n, arcs.net_arcs, true));
  ops.push_back(normalized_arc_operator(n, arcs.cell_arcs, true));

  // Fit the feature scaler up front so embed()/predict() work on an
  // untrained model (used for runtime benchmarking of the pipeline).
  feature_scaler_.fit(features_);

  linalg::Rng rng(opts_.seed);
  std::size_t in_dim = features_.cols();
  for (std::size_t l = 0; l < opts_.num_conv_layers; ++l) {
    conv_stack_.push_back(std::make_unique<TypedGraphConv>(
        ops, in_dim, opts_.hidden_dim, rng));
    conv_stack_.push_back(std::make_unique<ReLU>());
    in_dim = opts_.hidden_dim;
  }
  if (opts_.use_dag_propagation) {
    conv_stack_.push_back(
        std::make_unique<DagPropagation>(netlist, in_dim, opts_.hidden_dim, rng));
  }
  head_ = std::make_unique<Linear>(opts_.hidden_dim, 1, rng);
}

std::pair<Matrix, Matrix> TimingGnn::forward(const Matrix& standardized) {
  Matrix h = standardized;
  for (auto& layer : conv_stack_) h = layer->forward(h);
  Matrix pred = head_->forward(h);
  return {std::move(h), std::move(pred)};
}

TrainStats TimingGnn::train(const circuit::StaOptions& sta_opts) {
  const obs::TraceSpan trace_span("gnn.train", "gnn");
  static const obs::Counter train_runs("gnn.train_runs");
  static const obs::Counter train_epochs("gnn.train_epochs");
  train_runs.add();
  train_epochs.add(opts_.epochs);
  const circuit::TimingReport golden = circuit::run_sta(*netlist_, sta_opts);

  // Normalize targets to zero-mean/unit-std for conditioning.
  target_mean_ = util::mean(golden.arrival);
  const double sd = util::stdev(golden.arrival);
  target_scale_ = sd > 1e-12 ? sd : 1.0;
  std::vector<double> target(golden.arrival.size());
  for (std::size_t i = 0; i < target.size(); ++i)
    target[i] = (golden.arrival[i] - target_mean_) / target_scale_;

  const Matrix x = feature_scaler_.transform(features_);

  std::vector<Param*> params = trainable_params();
  AdamOptions aopts;
  aopts.learning_rate = opts_.learning_rate;
  aopts.grad_clip = opts_.grad_clip;
  Adam optimizer(params, aopts);

  TrainStats stats;
  stats.loss_history.reserve(opts_.epochs);
  for (std::size_t epoch = 0; epoch < opts_.epochs; ++epoch) {
    auto [h, pred] = forward(x);
    const LossResult loss = mse_loss(pred, target);
    stats.loss_history.push_back(loss.value);

    Matrix grad = head_->backward(loss.grad);
    for (std::size_t i = conv_stack_.size(); i-- > 0;)
      grad = conv_stack_[i]->backward(grad);
    optimizer.step();

    if (opts_.verbose && epoch % 50 == 0)
      obs::logf_info("timing-gnn", "epoch %zu loss %.6f", epoch, loss.value);
  }

  const std::vector<double> pred = predict(features_);
  stats.r2 = util::r2_score(golden.arrival, pred);
  stats.final_loss = stats.loss_history.empty() ? 0.0
                                                : stats.loss_history.back();
  return stats;
}

std::vector<double> TimingGnn::predict(const linalg::Matrix& raw_features) {
  auto [h, pred] = forward(feature_scaler_.transform(raw_features));
  std::vector<double> out(pred.rows());
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = pred(i, 0) * target_scale_ + target_mean_;
  return out;
}

GnnSnapshot TimingGnn::snapshot(const linalg::Matrix& raw_features) {
  const obs::TraceSpan trace_span("gnn.snapshot", "gnn");
  GnnSnapshot snap;
  snap.std_features = feature_scaler_.transform(raw_features);
  Matrix h = snap.std_features;
  snap.layer_outputs.reserve(conv_stack_.size());
  for (auto& layer : conv_stack_) {
    h = layer->forward(h);
    snap.layer_outputs.push_back(h);
  }
  snap.head_output = head_->forward(h);
  snap.prediction.resize(snap.head_output.rows());
  for (std::size_t i = 0; i < snap.prediction.size(); ++i)
    snap.prediction[i] = snap.head_output(i, 0) * target_scale_ + target_mean_;
  return snap;
}

GnnIncrementalResult TimingGnn::forward_incremental(
    const GnnSnapshot& snap, const linalg::Matrix& raw_features,
    GnnIncrementalStats* stats) const {
  if (snap.layer_outputs.size() != conv_stack_.size())
    throw std::invalid_argument(
        "TimingGnn::forward_incremental: snapshot/model layer mismatch");
  const obs::TraceSpan trace_span("gnn.incremental_forward", "gnn");
  static const obs::Counter inc_forwards("gnn.incremental_forwards");
  static const obs::Counter inc_rows("gnn.incremental_rows");
  inc_forwards.add();

  GnnIncrementalStats local;
  Matrix x = feature_scaler_.transform(raw_features);
  if (x.rows() != snap.std_features.rows() ||
      x.cols() != snap.std_features.cols())
    throw std::invalid_argument(
        "TimingGnn::forward_incremental: feature shape mismatch");

  // Seed: feature rows that differ from the snapshot (the transform is
  // row-local, so identical raw rows standardize to identical rows).
  std::vector<std::uint32_t> dirty;
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto a = x.row(r);
    const auto bse = snap.std_features.row(r);
    for (std::size_t c = 0; c < a.size(); ++c)
      if (a[c] != bse[c]) {
        dirty.push_back(static_cast<std::uint32_t>(r));
        break;
      }
  }
  local.dirty_input_rows = dirty.size();
  local.total_rows = x.rows() * (conv_stack_.size() + 1);

  Matrix cur = std::move(x);
  for (std::size_t i = 0; i < conv_stack_.size(); ++i) {
    Matrix y = snap.layer_outputs[i];
    std::vector<std::uint32_t> dirty_out;
    local.recomputed_rows +=
        conv_stack_[i]->forward_incremental(cur, y, dirty, dirty_out);
    cur = std::move(y);
    dirty = std::move(dirty_out);
  }

  GnnIncrementalResult out;
  out.changed_rows = dirty;

  // Head: de-normalize only the rows whose hidden state moved.
  Matrix head = snap.head_output;
  std::vector<std::uint32_t> head_dirty;
  local.recomputed_rows +=
      head_->forward_incremental(cur, head, dirty, head_dirty);
  out.prediction = snap.prediction;
  for (const std::uint32_t r : head_dirty)
    out.prediction[r] = head(r, 0) * target_scale_ + target_mean_;
  out.embedding = std::move(cur);

  inc_rows.add(local.recomputed_rows);
  if (stats) *stats = local;
  return out;
}

std::vector<Param*> TimingGnn::trainable_params() {
  std::vector<Param*> params = head_->params();
  for (auto& layer : conv_stack_)
    for (Param* p : layer->params()) params.push_back(p);
  return params;
}

void TimingGnn::restore_trained_state(std::span<const linalg::Matrix> params,
                                      std::vector<double> scaler_mean,
                                      std::vector<double> scaler_inv_std,
                                      double target_mean, double target_scale) {
  const std::vector<Param*> slots = trainable_params();
  if (params.size() != slots.size())
    throw std::invalid_argument(
        "TimingGnn::restore_trained_state: parameter count mismatch");
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (params[i].rows() != slots[i]->value.rows() ||
        params[i].cols() != slots[i]->value.cols())
      throw std::invalid_argument(
          "TimingGnn::restore_trained_state: parameter shape mismatch");
  }
  if (scaler_mean.size() != features_.cols())
    throw std::invalid_argument(
        "TimingGnn::restore_trained_state: scaler dimension mismatch");
  for (std::size_t i = 0; i < slots.size(); ++i) slots[i]->value = params[i];
  feature_scaler_.restore(std::move(scaler_mean), std::move(scaler_inv_std));
  target_mean_ = target_mean;
  target_scale_ = target_scale;
}

linalg::Matrix TimingGnn::embed(const linalg::Matrix& raw_features) {
  const obs::TraceSpan trace_span("gnn.embed", "gnn");
  auto [h, pred] = forward(feature_scaler_.transform(raw_features));
  (void)pred;
  return std::move(h);
}

}  // namespace cirstag::gnn
