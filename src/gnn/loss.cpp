#include "gnn/loss.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cirstag::gnn {

LossResult mse_loss(const linalg::Matrix& pred, std::span<const double> target,
                    std::span<const std::size_t> mask) {
  if (pred.cols() != 1)
    throw std::invalid_argument("mse_loss: predictions must be n x 1");
  if (pred.rows() != target.size())
    throw std::invalid_argument("mse_loss: target size mismatch");

  LossResult out;
  out.grad = linalg::Matrix(pred.rows(), 1);

  std::vector<std::size_t> all;
  std::span<const std::size_t> rows = mask;
  if (rows.empty()) {
    all.resize(pred.rows());
    for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
    rows = all;
  }
  const double inv_n = 1.0 / static_cast<double>(rows.size());
  for (std::size_t r : rows) {
    const double diff = pred(r, 0) - target[r];
    out.value += diff * diff * inv_n;
    out.grad(r, 0) = 2.0 * diff * inv_n;
  }
  return out;
}

linalg::Matrix softmax_rows(const linalg::Matrix& logits) {
  linalg::Matrix p = logits;
  for (std::size_t r = 0; r < p.rows(); ++r) {
    auto row = p.row(r);
    double peak = row[0];
    for (double v : row) peak = std::max(peak, v);
    double denom = 0.0;
    for (auto& v : row) {
      v = std::exp(v - peak);
      denom += v;
    }
    for (auto& v : row) v /= denom;
  }
  return p;
}

LossResult cross_entropy_loss(const linalg::Matrix& logits,
                              std::span<const std::uint32_t> labels) {
  if (logits.rows() != labels.size())
    throw std::invalid_argument("cross_entropy_loss: label size mismatch");
  LossResult out;
  out.grad = softmax_rows(logits);
  const double inv_n = 1.0 / static_cast<double>(logits.rows());
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    const std::uint32_t y = labels[r];
    if (y >= logits.cols())
      throw std::out_of_range("cross_entropy_loss: label out of range");
    const double p = std::max(out.grad(r, y), 1e-300);
    out.value -= std::log(p) * inv_n;
    out.grad(r, y) -= 1.0;
  }
  for (auto& v : out.grad.data()) v *= inv_n;
  return out;
}

std::vector<std::uint32_t> argmax_rows(const linalg::Matrix& logits) {
  std::vector<std::uint32_t> out(logits.rows(), 0);
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    const auto row = logits.row(r);
    std::size_t best = 0;
    for (std::size_t c = 1; c < row.size(); ++c)
      if (row[c] > row[best]) best = c;
    out[r] = static_cast<std::uint32_t>(best);
  }
  return out;
}

}  // namespace cirstag::gnn
