#pragma once

#include <memory>
#include <vector>

#include "gnn/param.hpp"
#include "linalg/rng.hpp"
#include "linalg/sparse.hpp"

namespace cirstag::gnn {

using linalg::Matrix;

/// Base class for differentiable layers operating on node-feature matrices
/// (rows = nodes). `forward` caches whatever `backward` needs; `backward`
/// accumulates parameter gradients and returns the gradient w.r.t. input.
class Layer {
 public:
  virtual ~Layer() = default;
  virtual Matrix forward(const Matrix& x) = 0;
  virtual Matrix backward(const Matrix& grad_out) = 0;
  virtual std::vector<Param*> params() { return {}; }

  /// Incremental re-forward for perturbation sweeps. `x` is the full variant
  /// input; `dirty_in` lists (sorted, unique) the rows of `x` that differ
  /// from the input of the baseline forward whose output `y` holds on entry.
  /// On exit `y` is the variant output and `dirty_out` the (sorted, unique)
  /// output rows that moved. Row arithmetic replicates forward() exactly, so
  /// the result is byte-identical to forward(x) — only unchanged rows are
  /// skipped. Const: training caches are untouched. Returns the number of
  /// rows recomputed. Base implementation throws (layer not sweep-capable).
  virtual std::size_t forward_incremental(
      const Matrix& x, Matrix& y, const std::vector<std::uint32_t>& dirty_in,
      std::vector<std::uint32_t>& dirty_out) const;
};

/// Dense affine layer: Y = X W + 1 bᵀ.
class Linear : public Layer {
 public:
  Linear(std::size_t in_dim, std::size_t out_dim, linalg::Rng& rng);

  Matrix forward(const Matrix& x) override;
  Matrix backward(const Matrix& grad_out) override;
  std::vector<Param*> params() override { return {&weight_, &bias_}; }
  std::size_t forward_incremental(
      const Matrix& x, Matrix& y, const std::vector<std::uint32_t>& dirty_in,
      std::vector<std::uint32_t>& dirty_out) const override;

  [[nodiscard]] const Param& weight() const { return weight_; }

 private:
  Param weight_;
  Param bias_;  // 1 x out_dim
  Matrix cached_input_;
};

/// Elementwise max(x, 0).
class ReLU : public Layer {
 public:
  Matrix forward(const Matrix& x) override;
  Matrix backward(const Matrix& grad_out) override;
  std::size_t forward_incremental(
      const Matrix& x, Matrix& y, const std::vector<std::uint32_t>& dirty_in,
      std::vector<std::uint32_t>& dirty_out) const override;

 private:
  Matrix cached_input_;
};

/// Elementwise tanh (bounded embeddings help manifold construction).
class Tanh : public Layer {
 public:
  Matrix forward(const Matrix& x) override;
  Matrix backward(const Matrix& grad_out) override;
  std::size_t forward_incremental(
      const Matrix& x, Matrix& y, const std::vector<std::uint32_t>& dirty_in,
      std::vector<std::uint32_t>& dirty_out) const override;

 private:
  Matrix cached_output_;
};

/// Edge-typed graph convolution (R-GCN-lite):
///
///   H' = H W_self + Σ_t Â_t H W_t
///
/// with one propagation operator Â_t per arc type (e.g. net arcs vs. cell
/// arcs, forward and backward). The operators are fixed (built from the
/// circuit), so backward only needs their transposes.
class TypedGraphConv : public Layer {
 public:
  /// `operators` are row-normalized adjacency matrices (target-row,
  /// source-column); all must be n x n.
  TypedGraphConv(std::vector<linalg::SparseMatrix> operators,
                 std::size_t in_dim, std::size_t out_dim, linalg::Rng& rng);

  Matrix forward(const Matrix& x) override;
  Matrix backward(const Matrix& grad_out) override;
  std::vector<Param*> params() override;
  std::size_t forward_incremental(
      const Matrix& x, Matrix& y, const std::vector<std::uint32_t>& dirty_in,
      std::vector<std::uint32_t>& dirty_out) const override;

 private:
  std::vector<linalg::SparseMatrix> ops_;
  std::vector<linalg::SparseMatrix> ops_t_;  // transposes for backward
  Param w_self_;
  std::vector<std::unique_ptr<Param>> w_type_;
  Param bias_;
  Matrix cached_input_;
  std::vector<Matrix> cached_propagated_;  // Â_t X per type
};

/// Build the row-normalized propagation operator for a directed arc list:
/// entry (dst, src) = 1 / indegree(dst). Self-loops are NOT added; compose
/// with W_self in TypedGraphConv instead.
[[nodiscard]] linalg::SparseMatrix normalized_arc_operator(
    std::size_t num_nodes,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& arcs,
    bool reverse = false);

}  // namespace cirstag::gnn
