#pragma once

#include <vector>

#include "gnn/param.hpp"

namespace cirstag::gnn {

/// Hyper-parameters for Adam.
struct AdamOptions {
  double learning_rate = 1e-2;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
  double weight_decay = 0.0;  ///< decoupled (AdamW-style) if nonzero
  double grad_clip = 0.0;     ///< global-norm clip; 0 disables
};

/// Adam optimizer over an externally-owned parameter list.
class Adam {
 public:
  explicit Adam(std::vector<Param*> params, AdamOptions opts = {});

  /// Apply one update from the accumulated gradients, then zero them.
  void step();

  void zero_grad();

  [[nodiscard]] const AdamOptions& options() const { return opts_; }
  void set_learning_rate(double lr) { opts_.learning_rate = lr; }

 private:
  std::vector<Param*> params_;
  AdamOptions opts_;
  std::vector<linalg::Matrix> m_;
  std::vector<linalg::Matrix> v_;
  std::size_t t_ = 0;
};

}  // namespace cirstag::gnn
