#pragma once

#include <cstdint>
#include <span>

#include "linalg/matrix.hpp"

namespace cirstag::gnn {

/// Classification accuracy.
[[nodiscard]] double accuracy(std::span<const std::uint32_t> pred,
                              std::span<const std::uint32_t> truth);

/// Macro-averaged F1 over `num_classes` classes (the Case-B metric),
/// averaged only over classes present in the ground truth.
[[nodiscard]] double f1_macro(std::span<const std::uint32_t> pred,
                              std::span<const std::uint32_t> truth,
                              std::size_t num_classes);

/// Mean row-wise cosine similarity between two embedding matrices of the
/// same shape (Case-B embedding-drift metric). Zero rows count as
/// similarity 0 against non-zero rows and 1 against zero rows.
[[nodiscard]] double mean_cosine_similarity(const linalg::Matrix& a,
                                            const linalg::Matrix& b);

/// Per-row cosine similarities.
[[nodiscard]] std::vector<double> row_cosine_similarities(
    const linalg::Matrix& a, const linalg::Matrix& b);

}  // namespace cirstag::gnn
