#include "gnn/dag_prop.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "kernels/kernels.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/parallel_for.hpp"
#include "util/arena.hpp"

namespace cirstag::gnn {

namespace {
constexpr double kLeakySlope = 0.1;
/// Pins per parallel chunk inside one topological level.
constexpr std::size_t kLevelGrain = 64;
}  // namespace

DagPropagation::DagPropagation(const circuit::Netlist& nl, std::size_t in_dim,
                               std::size_t out_dim, linalg::Rng& rng)
    : w_x_(Matrix::glorot(in_dim, out_dim, rng)),
      w_h_(Matrix::glorot(out_dim, out_dim, rng)),
      bias_(Matrix(1, out_dim)) {
  if (!nl.finalized())
    throw std::invalid_argument("DagPropagation: netlist must be finalized");
  const std::size_t n = nl.num_pins();
  // Fan-in arcs: net arcs (driver -> sink) and cell arcs (input -> output).
  // Built as vector-of-vectors, then flattened to CSR for the hot sweeps.
  std::vector<std::vector<std::uint32_t>> fanin(n);
  for (const circuit::Net& net : nl.nets())
    for (circuit::PinId sink : net.sinks) fanin[sink].push_back(net.driver);
  for (const circuit::Gate& gate : nl.gates())
    for (circuit::PinId in : gate.inputs) fanin[gate.output].push_back(in);
  std::vector<std::vector<std::uint32_t>> fanout(n);
  for (std::size_t p = 0; p < n; ++p)
    for (const std::uint32_t q : fanin[p])
      fanout[q].push_back(static_cast<std::uint32_t>(p));
  auto flatten = [n](const std::vector<std::vector<std::uint32_t>>& lists,
                     std::vector<std::size_t>& offsets,
                     std::vector<std::uint32_t>& arcs) {
    offsets.assign(n + 1, 0);
    for (std::size_t p = 0; p < n; ++p)
      offsets[p + 1] = offsets[p] + lists[p].size();
    arcs.reserve(offsets[n]);
    for (const auto& l : lists) arcs.insert(arcs.end(), l.begin(), l.end());
  };
  flatten(fanin, fanin_offsets_, fanin_arcs_);
  flatten(fanout, fanout_offsets_, fanout_arcs_);

  // Processing order: PI pins, then per gate (in topological order) its
  // input pins then its output pin; net sinks always follow their driver,
  // which the gate order guarantees. PO pins go last.
  order_.reserve(n);
  for (circuit::PinId pi : nl.primary_inputs()) order_.push_back(pi);
  for (circuit::GateId gid : nl.topological_order()) {
    const circuit::Gate& gate = nl.gate(gid);
    for (circuit::PinId in : gate.inputs) order_.push_back(in);
    order_.push_back(gate.output);
  }
  for (circuit::PinId po : nl.primary_outputs()) order_.push_back(po);
  if (order_.size() != n)
    throw std::logic_error("DagPropagation: order does not cover all pins");

  // Levelize: level(p) = 1 + max level over fan-in (0 at sources). Pins in
  // one level have no dependencies among themselves, so forward can process
  // a level in parallel with a barrier before the next (TopoBarrier shape).
  std::vector<std::size_t> level(n, 0);
  std::size_t max_level = 0;
  for (const std::uint32_t p : order_) {
    std::size_t lv = 0;
    for (const std::uint32_t q : fanin[p]) lv = std::max(lv, level[q] + 1);
    level[p] = lv;
    max_level = std::max(max_level, lv);
  }
  level_offsets_.assign(max_level + 2, 0);
  for (std::size_t p = 0; p < n; ++p) ++level_offsets_[level[p] + 1];
  for (std::size_t l = 1; l < level_offsets_.size(); ++l)
    level_offsets_[l] += level_offsets_[l - 1];
  level_pins_.resize(n);
  std::vector<std::size_t> cursor(level_offsets_.begin(),
                                  level_offsets_.end() - 1);
  for (const std::uint32_t p : order_)  // stable within each level
    level_pins_[cursor[level[p]]++] = p;
}

Matrix DagPropagation::forward(const Matrix& x) {
  const std::size_t n = order_.size();
  if (x.rows() != n)
    throw std::invalid_argument("DagPropagation::forward: pin count mismatch");
  const std::size_t d = w_x_.value.cols();

  const obs::TraceSpan trace_span("gnn.dag_forward", "gnn");
  static const obs::Counter forwards("gnn.dag_forwards");
  static const obs::Counter pins("gnn.dag_pins");
  forwards.add();
  pins.add(n);

  cached_x_ = x;
  cached_agg_ = Matrix(n, d);
  cached_pre_ = Matrix(n, d);
  cached_h_ = Matrix(n, d);

  const Matrix xw = linalg::matmul(x, w_x_.value);  // local term, batched

  // Each pin reads only strictly-lower-level hidden states and writes only
  // its own rows, so a level can run fully parallel; results are identical
  // to the serial topological sweep at any thread count.
  auto process_pin = [&](std::uint32_t p) {
    auto agg = cached_agg_.row(p);
    const auto fan = this->fanin(p);
    if (!fan.empty()) {
      const double inv = 1.0 / static_cast<double>(fan.size());
      for (const std::uint32_t q : fan)
        kernels::axpy(inv, cached_h_.row(q).data(), agg.data(), d);
    }
    auto pre = cached_pre_.row(p);
    const auto local = xw.row(p);
    const auto b = bias_.value.row(0);
    // pre = local + agg * W_h + b
    for (std::size_t c = 0; c < d; ++c) pre[c] = local[c] + b[c];
    for (std::size_t k = 0; k < d; ++k) {
      const double a = agg[k];
      if (a == 0.0) continue;
      kernels::axpy(a, w_h_.value.row(k).data(), pre.data(), d);
    }
    auto h = cached_h_.row(p);
    // LeakyReLU: a hard ReLU can go fully dead at one pin and sever the
    // entire downstream cone's sensitivity to upstream features.
    for (std::size_t c = 0; c < d; ++c)
      h[c] = pre[c] > 0.0 ? pre[c] : kLeakySlope * pre[c];
  };
  for (std::size_t l = 0; l + 1 < level_offsets_.size(); ++l) {
    const std::size_t lo = level_offsets_[l];
    const std::size_t hi = level_offsets_[l + 1];
    runtime::parallel_for(lo, hi, kLevelGrain, [&](std::size_t idx) {
      process_pin(level_pins_[idx]);
    });
  }
  return cached_h_;
}

std::size_t DagPropagation::forward_incremental(
    const Matrix& x, Matrix& y, const std::vector<std::uint32_t>& dirty_in,
    std::vector<std::uint32_t>& dirty_out) const {
  const std::size_t n = order_.size();
  const std::size_t d = w_x_.value.cols();
  if (x.rows() != n || y.rows() != n || y.cols() != d)
    throw std::invalid_argument(
        "DagPropagation::forward_incremental: shape mismatch");

  static const obs::Counter inc_forwards("gnn.dag_incremental_forwards");
  static const obs::Counter inc_pins("gnn.dag_incremental_pins");
  inc_forwards.add();

  // A pin needs recomputation when its own feature row changed or a fan-in
  // hidden state moved; the flag cascades downstream through fanout_ as
  // changes commit, level by level (fanout pins sit at strictly higher
  // levels).
  std::vector<char> recompute(n, 0);
  for (const std::uint32_t p : dirty_in) recompute[p] = 1;

  std::size_t evaluated = 0;
  util::ArenaFrame frame;
  std::span<double> agg = frame.alloc<double>(d);
  std::span<double> pre = frame.alloc<double>(d);
  std::span<double> fresh = frame.alloc<double>(d);
  std::span<double> xw = frame.alloc<double>(d);
  const auto b = bias_.value.row(0);
  for (std::size_t l = 0; l + 1 < level_offsets_.size(); ++l) {
    for (std::size_t idx = level_offsets_[l]; idx < level_offsets_[l + 1];
         ++idx) {
      const std::uint32_t p = level_pins_[idx];
      if (!recompute[p]) continue;
      ++evaluated;
      // Same per-pin arithmetic as process_pin in forward(), reading hidden
      // states out of y (non-recomputed rows still hold the exact values a
      // full forward would produce, by induction over levels).
      std::fill(agg.begin(), agg.end(), 0.0);
      const auto fan = fanin(p);
      if (!fan.empty()) {
        const double inv = 1.0 / static_cast<double>(fan.size());
        for (const std::uint32_t q : fan)
          kernels::axpy(inv, y.row(q).data(), agg.data(), d);
      }
      // Local term: row p of matmul(x, w_x) — ascending k, zero-skip,
      // exactly the batched product's row arithmetic.
      std::fill(xw.begin(), xw.end(), 0.0);
      const auto xr = x.row(p);
      for (std::size_t k = 0; k < xr.size(); ++k) {
        const double aik = xr[k];
        if (aik == 0.0) continue;
        kernels::axpy(aik, w_x_.value.row(k).data(), xw.data(), d);
      }
      for (std::size_t c = 0; c < d; ++c) pre[c] = xw[c] + b[c];
      for (std::size_t k = 0; k < d; ++k) {
        const double a = agg[k];
        if (a == 0.0) continue;
        kernels::axpy(a, w_h_.value.row(k).data(), pre.data(), d);
      }
      for (std::size_t c = 0; c < d; ++c)
        fresh[c] = pre[c] > 0.0 ? pre[c] : kLeakySlope * pre[c];

      auto hrow = y.row(p);
      bool same = true;
      for (std::size_t c = 0; c < d; ++c)
        if (hrow[c] != fresh[c]) { same = false; break; }
      if (same) continue;
      std::copy(fresh.begin(), fresh.end(), hrow.begin());
      dirty_out.push_back(p);
      for (const std::uint32_t q : fanout(p)) recompute[q] = 1;
    }
  }
  std::sort(dirty_out.begin(), dirty_out.end());
  inc_pins.add(evaluated);
  return evaluated;
}

Matrix DagPropagation::backward(const Matrix& grad_out) {
  const std::size_t n = order_.size();
  const std::size_t d = w_x_.value.cols();
  if (grad_out.rows() != n || grad_out.cols() != d)
    throw std::invalid_argument("DagPropagation::backward: shape mismatch");

  Matrix dh = grad_out;            // accumulates downstream contributions
  Matrix dpre_all(n, d);           // per-pin pre-activation grads

  for (std::size_t idx = n; idx-- > 0;) {
    const std::uint32_t p = order_[idx];
    auto dpre = dpre_all.row(p);
    const auto pre = cached_pre_.row(p);
    const auto dhp = dh.row(p);
    for (std::size_t c = 0; c < d; ++c)
      dpre[c] = pre[c] > 0.0 ? dhp[c] : kLeakySlope * dhp[c];

    // Parameter grads: dW_h += aggᵀ dpre, db += dpre.
    const auto agg = cached_agg_.row(p);
    auto db = bias_.grad.row(0);
    for (std::size_t c = 0; c < d; ++c) db[c] += dpre[c];
    for (std::size_t k = 0; k < d; ++k) {
      const double a = agg[k];
      if (a == 0.0) continue;
      auto gw = w_h_.grad.row(k);
      for (std::size_t c = 0; c < d; ++c) gw[c] += a * dpre[c];
    }

    // Push gradient to fan-in hidden states: dagg = dpre W_hᵀ, split evenly.
    const auto fan = fanin(p);
    if (!fan.empty()) {
      const double inv = 1.0 / static_cast<double>(fan.size());
      for (std::size_t k = 0; k < d; ++k) {
        const auto wrow = w_h_.value.row(k);
        double dagg_k = 0.0;
        for (std::size_t c = 0; c < d; ++c) dagg_k += dpre[c] * wrow[c];
        dagg_k *= inv;
        if (dagg_k == 0.0) continue;
        for (const std::uint32_t q : fan) dh(q, k) += dagg_k;
      }
    }
  }

  // Batched local-term grads: dW_x += Xᵀ dPre, dX = dPre W_xᵀ.
  w_x_.grad += linalg::matmul_at_b(cached_x_, dpre_all);
  return linalg::matmul_a_bt(dpre_all, w_x_.value);
}

}  // namespace cirstag::gnn
