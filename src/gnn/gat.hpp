#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "gnn/layers.hpp"

namespace cirstag::gnn {

/// Single-head graph attention layer (Veličković et al.), the building block
/// of the Case-B reverse-engineering model [4]:
///
///   z_i   = x_i W
///   e_ij  = LeakyReLU(a_dstᵀ z_i + a_srcᵀ z_j)   for j ∈ N(i) ∪ {i}
///   α_ij  = softmax_j(e_ij)
///   out_i = Σ_j α_ij z_j
///
/// Self-loops are added internally so every node attends to itself. The
/// backward pass is hand-derived (softmax + LeakyReLU + bilinear score) and
/// validated against finite differences in the test suite.
class GatConv : public Layer {
 public:
  /// `edges` are undirected adjacency pairs; attention runs over both
  /// directions plus self-loops.
  GatConv(std::size_t num_nodes,
          std::vector<std::pair<std::uint32_t, std::uint32_t>> edges,
          std::size_t in_dim, std::size_t out_dim, linalg::Rng& rng,
          double leaky_slope = 0.2);

  Matrix forward(const Matrix& x) override;
  Matrix backward(const Matrix& grad_out) override;
  std::vector<Param*> params() override {
    return {&weight_, &attn_src_, &attn_dst_};
  }

  /// Attention coefficients of the last forward pass, parallel to the
  /// internal directed arc list (diagnostics / tests).
  [[nodiscard]] const std::vector<double>& last_attention() const {
    return alpha_;
  }

 private:
  std::size_t num_nodes_;
  double leaky_slope_;
  // Directed arcs grouped by destination: arc k = (src_[k] -> dst of group).
  std::vector<std::uint32_t> src_;
  std::vector<std::size_t> dst_ptr_;  // CSR-style: arcs of node i are
                                      // [dst_ptr_[i], dst_ptr_[i+1])
  Param weight_;    // in x out
  Param attn_src_;  // 1 x out
  Param attn_dst_;  // 1 x out

  // Forward caches.
  Matrix cached_x_;
  Matrix cached_z_;
  std::vector<double> pre_;    // pre-activation scores per arc
  std::vector<double> alpha_;  // attention per arc
};

/// Multi-head graph attention: `num_heads` independent GatConv heads whose
/// outputs are concatenated (the standard GAT formulation). out_dim must be
/// divisible by num_heads; each head produces out_dim/num_heads features.
class MultiHeadGat : public Layer {
 public:
  MultiHeadGat(std::size_t num_nodes,
               std::vector<std::pair<std::uint32_t, std::uint32_t>> edges,
               std::size_t in_dim, std::size_t out_dim, std::size_t num_heads,
               linalg::Rng& rng, double leaky_slope = 0.2);

  Matrix forward(const Matrix& x) override;
  Matrix backward(const Matrix& grad_out) override;
  std::vector<Param*> params() override;

  [[nodiscard]] std::size_t num_heads() const { return heads_.size(); }

 private:
  std::vector<std::unique_ptr<GatConv>> heads_;
  std::size_t head_dim_ = 0;
};

}  // namespace cirstag::gnn
