#pragma once

#include <memory>
#include <vector>

#include "circuit/netlist.hpp"
#include "gnn/gat.hpp"
#include "graphs/graph.hpp"
#include "gnn/normalize.hpp"
#include "gnn/timing_gnn.hpp"  // TrainStats

namespace cirstag::gnn {

/// Hyper-parameters of the reverse-engineering GAT classifier.
struct ReGatOptions {
  std::size_t hidden_dim = 32;
  /// Attention heads per layer (hidden_dim must be divisible by it).
  std::size_t num_heads = 1;
  std::size_t epochs = 300;
  double learning_rate = 1e-2;
  double grad_clip = 5.0;
  std::uint64_t seed = 7;
  bool verbose = false;
};

/// Classification diagnostics.
struct ReGatEval {
  double accuracy = 0.0;
  double f1_macro = 0.0;
};

/// Gate-level GAT sub-circuit classifier standing in for GNN-RE [4]
/// (Case Study B): two stacked attention layers over the gate graph,
/// predicting each gate's module class from its type + neighborhood
/// features. `embed()` exposes the last attention layer's activations —
/// the output manifold for CirSTAG's topology-stability analysis.
///
/// Because attention runs over an explicit edge list, the model can be
/// re-instantiated on a *perturbed* topology while keeping trained weights
/// (`clone_for_topology`), which is exactly the Case-B protocol.
class ReGat {
 public:
  ReGat(const circuit::Netlist& netlist, const graphs::Graph& topology,
        ReGatOptions opts = {});

  /// Train against the netlist's per-gate module labels.
  TrainStats train();

  /// Logits for raw (unstandardized) gate features.
  [[nodiscard]] linalg::Matrix logits(const linalg::Matrix& raw_features);

  /// Hidden embeddings for raw gate features.
  [[nodiscard]] linalg::Matrix embed(const linalg::Matrix& raw_features);

  /// Predicted classes.
  [[nodiscard]] std::vector<std::uint32_t> predict(
      const linalg::Matrix& raw_features);

  /// Accuracy/F1 against the netlist labels for given features.
  [[nodiscard]] ReGatEval evaluate(const linalg::Matrix& raw_features);

  /// A model with the same trained weights but attention edges from a
  /// different topology (nodes must match). Used to measure embedding
  /// drift under topology perturbations.
  [[nodiscard]] std::unique_ptr<ReGat> clone_for_topology(
      const graphs::Graph& topology) const;

  [[nodiscard]] const linalg::Matrix& base_features() const {
    return features_;
  }

 private:
  struct Weights;  // trained parameter snapshot for cloning
  ReGat(const ReGat& other, const graphs::Graph& topology);

  std::pair<Matrix, Matrix> forward(const Matrix& standardized);

  const circuit::Netlist* netlist_;
  ReGatOptions opts_;
  linalg::Matrix features_;
  Standardizer feature_scaler_;
  std::size_t num_classes_;

  std::unique_ptr<Layer> gat1_;  // GatConv or MultiHeadGat
  std::unique_ptr<ReLU> act1_;
  std::unique_ptr<Layer> gat2_;
  std::unique_ptr<ReLU> act2_;
  std::unique_ptr<Linear> head_;
};

}  // namespace cirstag::gnn
