#pragma once

#include <memory>
#include <span>
#include <vector>

#include "circuit/netlist.hpp"
#include "circuit/sta.hpp"
#include "gnn/adam.hpp"
#include "gnn/layers.hpp"
#include "gnn/normalize.hpp"

namespace cirstag::gnn {

/// Hyper-parameters of the pin-level timing GNN.
struct TimingGnnOptions {
  std::size_t hidden_dim = 32;
  std::size_t num_conv_layers = 2;
  /// Append a levelized DAG-propagation layer (TimingGCN-style) after the
  /// convolution stack, giving every pin a full fan-in-cone receptive field
  /// like real STA. Strongly recommended; without it the surrogate cannot
  /// respond to capacitance changes more than num_conv_layers hops upstream.
  bool use_dag_propagation = true;
  std::size_t epochs = 400;
  double learning_rate = 8e-3;
  double grad_clip = 5.0;
  std::uint64_t seed = 42;
  bool verbose = false;
};

/// Training diagnostics.
struct TrainStats {
  std::vector<double> loss_history;
  double final_loss = 0.0;
  double r2 = 0.0;  ///< against the golden STA labels
};

/// Frozen full forward pass of one feature matrix — the baseline that
/// forward_incremental() patches for nearby (perturbed) feature matrices.
struct GnnSnapshot {
  linalg::Matrix std_features;                ///< standardized input
  std::vector<linalg::Matrix> layer_outputs;  ///< after each conv-stack layer
  linalg::Matrix head_output;                 ///< raw head output (n x 1)
  std::vector<double> prediction;             ///< de-normalized arrivals
};

/// Reuse accounting of one incremental forward.
struct GnnIncrementalStats {
  std::size_t dirty_input_rows = 0;  ///< feature rows that differed
  std::size_t recomputed_rows = 0;   ///< row evaluations summed over layers
  std::size_t total_rows = 0;        ///< pins x layers (full-forward cost)

  /// Fraction of per-layer row work actually done (1.0 on an empty model).
  [[nodiscard]] double row_fraction() const {
    return total_rows == 0 ? 1.0
                           : static_cast<double>(recomputed_rows) /
                                 static_cast<double>(total_rows);
  }
};

/// Output of an incremental forward: full variant embedding/prediction plus
/// the embedding rows that actually moved (the kNN delta set).
struct GnnIncrementalResult {
  linalg::Matrix embedding;                ///< variant hidden states (n x d)
  std::vector<double> prediction;          ///< variant de-normalized arrivals
  std::vector<std::uint32_t> changed_rows; ///< embedding rows that moved
};

/// Pre-routing timing predictor standing in for the GNN of [17]
/// (Case Study A). Nodes are cell pins; message passing runs over four
/// typed arc sets (net/cell arcs, forward/backward) so arrival information
/// can flow along and against the signal direction, as in TimingGCN.
///
/// The model regresses per-pin arrival times from the Phase-0 pin features
/// (capacitances etc.); the golden STA engine provides training labels.
/// `embed()` exposes the last hidden representation — the output manifold Y
/// that CirSTAG consumes.
class TimingGnn {
 public:
  TimingGnn(const circuit::Netlist& netlist, TimingGnnOptions opts = {});

  /// Full-batch Adam training against golden-STA arrival times.
  TrainStats train(const circuit::StaOptions& sta_opts = {});

  /// Per-pin arrival predictions (de-normalized) for raw (unstandardized)
  /// feature matrices — pass perturbed copies of `base_features()`.
  [[nodiscard]] std::vector<double> predict(const linalg::Matrix& raw_features);

  /// Hidden node embeddings for raw features (rows = pins).
  [[nodiscard]] linalg::Matrix embed(const linalg::Matrix& raw_features);

  /// Capture a full forward pass as the baseline for incremental variants.
  /// The snapshot's embedding/prediction are byte-identical to embed() /
  /// predict() on the same features.
  [[nodiscard]] GnnSnapshot snapshot(const linalg::Matrix& raw_features);

  /// Forward a perturbed feature matrix by recomputing only the rows that
  /// differ from `snap` (plus their graph-propagated fanout, with equality
  /// pruning at every layer). Byte-identical to a full embed()/predict() on
  /// `raw_features`; thread-safe (const, no training caches touched).
  [[nodiscard]] GnnIncrementalResult forward_incremental(
      const GnnSnapshot& snap, const linalg::Matrix& raw_features,
      GnnIncrementalStats* stats = nullptr) const;

  /// The unperturbed feature matrix the model was built from.
  [[nodiscard]] const linalg::Matrix& base_features() const { return features_; }

  [[nodiscard]] const circuit::Netlist& netlist() const { return *netlist_; }

  /// --- trained-state export/restore (io/snapshot) -------------------------
  /// The constructor is cheap and deterministic (layer shapes + seeded init
  /// from the netlist); train() is the expensive part. A binary snapshot
  /// therefore stores only the trained state below and restores it onto a
  /// freshly constructed model with the same options — predictions and
  /// embeddings are then bit-identical to the original trained model's.
  [[nodiscard]] const TimingGnnOptions& options() const { return opts_; }
  [[nodiscard]] double target_mean() const { return target_mean_; }
  [[nodiscard]] double target_scale() const { return target_scale_; }
  [[nodiscard]] const Standardizer& feature_scaler() const {
    return feature_scaler_;
  }
  /// Trainable parameters in the fixed serialization order train() hands
  /// them to the optimizer: head first, then the conv stack front to back.
  [[nodiscard]] std::vector<Param*> trainable_params();
  /// Overwrite the trainable parameters (same order and shapes as
  /// trainable_params()), the feature-scaler state, and the target
  /// normalization. Throws std::invalid_argument on any shape mismatch.
  void restore_trained_state(std::span<const linalg::Matrix> params,
                             std::vector<double> scaler_mean,
                             std::vector<double> scaler_inv_std,
                             double target_mean, double target_scale);

 private:
  /// Forward through conv stack; returns (embedding, prediction).
  std::pair<Matrix, Matrix> forward(const Matrix& standardized);

  const circuit::Netlist* netlist_;
  TimingGnnOptions opts_;
  linalg::Matrix features_;
  Standardizer feature_scaler_;
  double target_mean_ = 0.0;
  double target_scale_ = 1.0;

  std::vector<std::unique_ptr<Layer>> conv_stack_;
  std::unique_ptr<Linear> head_;
};

}  // namespace cirstag::gnn
