#include "gnn/re_gat.hpp"

#include <cstdio>
#include <stdexcept>

#include "circuit/modules.hpp"
#include "circuit/views.hpp"
#include "gnn/loss.hpp"
#include "gnn/metrics.hpp"
#include "obs/log.hpp"

namespace cirstag::gnn {

namespace {

std::vector<std::pair<std::uint32_t, std::uint32_t>> edge_pairs(
    const graphs::Graph& g) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
  pairs.reserve(g.num_edges());
  for (const auto& e : g.edges()) pairs.emplace_back(e.u, e.v);
  return pairs;
}

/// Copy parameter values between structurally-identical layers.
void copy_params(Layer& dst, const Layer& src) {
  auto dp = dst.params();
  auto sp = const_cast<Layer&>(src).params();  // params() is logically const
  if (dp.size() != sp.size())
    throw std::logic_error("copy_params: layer structure mismatch");
  for (std::size_t i = 0; i < dp.size(); ++i) dp[i]->value = sp[i]->value;
}

}  // namespace

ReGat::ReGat(const circuit::Netlist& netlist, const graphs::Graph& topology,
             ReGatOptions opts)
    : netlist_(&netlist),
      opts_(opts),
      features_(circuit::gate_features(netlist, topology)),
      num_classes_(circuit::kNumModuleClasses) {
  if (topology.num_nodes() != netlist.num_gates())
    throw std::invalid_argument("ReGat: topology/netlist size mismatch");
  feature_scaler_.fit(features_);
  linalg::Rng rng(opts_.seed);
  const auto edges = edge_pairs(topology);
  auto make_gat = [&](std::size_t in_dim) -> std::unique_ptr<Layer> {
    if (opts_.num_heads > 1)
      return std::make_unique<MultiHeadGat>(netlist.num_gates(), edges,
                                            in_dim, opts_.hidden_dim,
                                            opts_.num_heads, rng);
    return std::make_unique<GatConv>(netlist.num_gates(), edges, in_dim,
                                     opts_.hidden_dim, rng);
  };
  gat1_ = make_gat(features_.cols());
  act1_ = std::make_unique<ReLU>();
  gat2_ = make_gat(opts_.hidden_dim);
  act2_ = std::make_unique<ReLU>();
  head_ = std::make_unique<Linear>(opts_.hidden_dim, num_classes_, rng);
}

ReGat::ReGat(const ReGat& other, const graphs::Graph& topology)
    : netlist_(other.netlist_),
      opts_(other.opts_),
      features_(circuit::gate_features(*other.netlist_, topology)),
      feature_scaler_(other.feature_scaler_),
      num_classes_(other.num_classes_) {
  linalg::Rng rng(opts_.seed);
  const auto edges = edge_pairs(topology);
  auto make_gat = [&](std::size_t in_dim) -> std::unique_ptr<Layer> {
    if (opts_.num_heads > 1)
      return std::make_unique<MultiHeadGat>(netlist_->num_gates(), edges,
                                            in_dim, opts_.hidden_dim,
                                            opts_.num_heads, rng);
    return std::make_unique<GatConv>(netlist_->num_gates(), edges, in_dim,
                                     opts_.hidden_dim, rng);
  };
  gat1_ = make_gat(features_.cols());
  act1_ = std::make_unique<ReLU>();
  gat2_ = make_gat(opts_.hidden_dim);
  act2_ = std::make_unique<ReLU>();
  head_ = std::make_unique<Linear>(opts_.hidden_dim, num_classes_, rng);
  copy_params(*gat1_, *other.gat1_);
  copy_params(*gat2_, *other.gat2_);
  copy_params(*head_, *other.head_);
}

std::unique_ptr<ReGat> ReGat::clone_for_topology(
    const graphs::Graph& topology) const {
  return std::unique_ptr<ReGat>(new ReGat(*this, topology));
}

std::pair<Matrix, Matrix> ReGat::forward(const Matrix& standardized) {
  Matrix h = gat1_->forward(standardized);
  h = act1_->forward(h);
  h = gat2_->forward(h);
  h = act2_->forward(h);
  Matrix out = head_->forward(h);
  return {std::move(h), std::move(out)};
}

TrainStats ReGat::train() {
  const std::vector<std::uint32_t> labels = circuit::gate_labels(*netlist_);
  const Matrix x = feature_scaler_.transform(features_);

  std::vector<Param*> params;
  for (Param* p : gat1_->params()) params.push_back(p);
  for (Param* p : gat2_->params()) params.push_back(p);
  for (Param* p : head_->params()) params.push_back(p);
  AdamOptions aopts;
  aopts.learning_rate = opts_.learning_rate;
  aopts.grad_clip = opts_.grad_clip;
  Adam optimizer(params, aopts);

  TrainStats stats;
  stats.loss_history.reserve(opts_.epochs);
  for (std::size_t epoch = 0; epoch < opts_.epochs; ++epoch) {
    auto [h, out] = forward(x);
    const LossResult loss = cross_entropy_loss(out, labels);
    stats.loss_history.push_back(loss.value);

    Matrix grad = head_->backward(loss.grad);
    grad = act2_->backward(grad);
    grad = gat2_->backward(grad);
    grad = act1_->backward(grad);
    grad = gat1_->backward(grad);
    optimizer.step();

    if (opts_.verbose && epoch % 50 == 0)
      obs::logf_info("re-gat", "epoch %zu loss %.6f", epoch, loss.value);
  }
  stats.final_loss =
      stats.loss_history.empty() ? 0.0 : stats.loss_history.back();
  const ReGatEval ev = evaluate(features_);
  stats.r2 = ev.f1_macro;  // repurposed: classification quality
  return stats;
}

linalg::Matrix ReGat::logits(const linalg::Matrix& raw_features) {
  auto [h, out] = forward(feature_scaler_.transform(raw_features));
  (void)h;
  return std::move(out);
}

linalg::Matrix ReGat::embed(const linalg::Matrix& raw_features) {
  auto [h, out] = forward(feature_scaler_.transform(raw_features));
  (void)out;
  return std::move(h);
}

std::vector<std::uint32_t> ReGat::predict(const linalg::Matrix& raw_features) {
  return argmax_rows(logits(raw_features));
}

ReGatEval ReGat::evaluate(const linalg::Matrix& raw_features) {
  const std::vector<std::uint32_t> labels = circuit::gate_labels(*netlist_);
  const std::vector<std::uint32_t> pred = predict(raw_features);
  ReGatEval ev;
  ev.accuracy = accuracy(pred, labels);
  ev.f1_macro = f1_macro(pred, labels, num_classes_);
  return ev;
}

}  // namespace cirstag::gnn
