#include "gnn/normalize.hpp"

#include <cmath>
#include <stdexcept>

namespace cirstag::gnn {

void Standardizer::fit(const linalg::Matrix& x) {
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  if (n == 0) throw std::invalid_argument("Standardizer::fit: empty matrix");
  mean_.assign(d, 0.0);
  inv_std_.assign(d, 1.0);
  for (std::size_t r = 0; r < n; ++r) {
    const auto row = x.row(r);
    for (std::size_t c = 0; c < d; ++c) mean_[c] += row[c];
  }
  for (auto& m : mean_) m /= static_cast<double>(n);
  std::vector<double> var(d, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    const auto row = x.row(r);
    for (std::size_t c = 0; c < d; ++c) {
      const double dlt = row[c] - mean_[c];
      var[c] += dlt * dlt;
    }
  }
  for (std::size_t c = 0; c < d; ++c) {
    const double sd = std::sqrt(var[c] / static_cast<double>(n));
    inv_std_[c] = sd > 1e-12 ? 1.0 / sd : 1.0;
    if (sd <= 1e-12) mean_[c] = 0.0;  // constant column: pass through
  }
}

linalg::Matrix Standardizer::transform(const linalg::Matrix& x) const {
  if (!fitted()) throw std::runtime_error("Standardizer: not fitted");
  if (x.cols() != mean_.size())
    throw std::invalid_argument("Standardizer::transform: dim mismatch");
  linalg::Matrix out = x;
  for (std::size_t r = 0; r < out.rows(); ++r) {
    auto row = out.row(r);
    for (std::size_t c = 0; c < row.size(); ++c)
      row[c] = (row[c] - mean_[c]) * inv_std_[c];
  }
  return out;
}

linalg::Matrix Standardizer::fit_transform(const linalg::Matrix& x) {
  fit(x);
  return transform(x);
}

void Standardizer::restore(std::vector<double> mean,
                           std::vector<double> inv_std) {
  if (mean.empty() || mean.size() != inv_std.size())
    throw std::invalid_argument("Standardizer::restore: shape mismatch");
  mean_ = std::move(mean);
  inv_std_ = std::move(inv_std);
}

}  // namespace cirstag::gnn
