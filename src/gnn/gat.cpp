#include "gnn/gat.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace cirstag::gnn {

GatConv::GatConv(std::size_t num_nodes,
                 std::vector<std::pair<std::uint32_t, std::uint32_t>> edges,
                 std::size_t in_dim, std::size_t out_dim, linalg::Rng& rng,
                 double leaky_slope)
    : num_nodes_(num_nodes),
      leaky_slope_(leaky_slope),
      weight_(Matrix::glorot(in_dim, out_dim, rng)),
      attn_src_(Matrix::random_normal(1, out_dim, rng, 0.0,
                                      1.0 / std::sqrt(double(out_dim)))),
      attn_dst_(Matrix::random_normal(1, out_dim, rng, 0.0,
                                      1.0 / std::sqrt(double(out_dim)))) {
  // Build directed arc list grouped by destination: both directions of each
  // undirected edge, plus one self-loop per node.
  std::vector<std::vector<std::uint32_t>> in_nbrs(num_nodes_);
  for (const auto& [u, v] : edges) {
    if (u >= num_nodes_ || v >= num_nodes_)
      throw std::out_of_range("GatConv: edge endpoint out of range");
    in_nbrs[v].push_back(u);
    in_nbrs[u].push_back(v);
  }
  for (std::uint32_t i = 0; i < num_nodes_; ++i) in_nbrs[i].push_back(i);

  dst_ptr_.assign(num_nodes_ + 1, 0);
  for (std::size_t i = 0; i < num_nodes_; ++i)
    dst_ptr_[i + 1] = dst_ptr_[i] + in_nbrs[i].size();
  src_.resize(dst_ptr_[num_nodes_]);
  for (std::size_t i = 0; i < num_nodes_; ++i)
    std::copy(in_nbrs[i].begin(), in_nbrs[i].end(),
              src_.begin() + static_cast<long>(dst_ptr_[i]));
}

Matrix GatConv::forward(const Matrix& x) {
  if (x.rows() != num_nodes_)
    throw std::invalid_argument("GatConv::forward: node count mismatch");
  cached_x_ = x;
  cached_z_ = linalg::matmul(x, weight_.value);
  const Matrix& z = cached_z_;
  const std::size_t d = z.cols();

  // Per-node score halves: s_j = a_src . z_j, t_i = a_dst . z_i.
  std::vector<double> s(num_nodes_, 0.0), t(num_nodes_, 0.0);
  for (std::size_t i = 0; i < num_nodes_; ++i) {
    const auto zi = z.row(i);
    double ss = 0.0, tt = 0.0;
    for (std::size_t c = 0; c < d; ++c) {
      ss += attn_src_.value(0, c) * zi[c];
      tt += attn_dst_.value(0, c) * zi[c];
    }
    s[i] = ss;
    t[i] = tt;
  }

  const std::size_t num_arcs = src_.size();
  pre_.assign(num_arcs, 0.0);
  alpha_.assign(num_arcs, 0.0);

  Matrix out(num_nodes_, d);
  for (std::size_t i = 0; i < num_nodes_; ++i) {
    const std::size_t begin = dst_ptr_[i];
    const std::size_t end = dst_ptr_[i + 1];
    double peak = -std::numeric_limits<double>::infinity();
    for (std::size_t k = begin; k < end; ++k) {
      const double raw = t[i] + s[src_[k]];
      pre_[k] = raw;
      const double act = raw > 0.0 ? raw : leaky_slope_ * raw;
      alpha_[k] = act;  // reuse storage for activations pre-softmax
      peak = std::max(peak, act);
    }
    double denom = 0.0;
    for (std::size_t k = begin; k < end; ++k) {
      alpha_[k] = std::exp(alpha_[k] - peak);
      denom += alpha_[k];
    }
    auto orow = out.row(i);
    for (std::size_t k = begin; k < end; ++k) {
      alpha_[k] /= denom;
      const auto zj = z.row(src_[k]);
      for (std::size_t c = 0; c < d; ++c) orow[c] += alpha_[k] * zj[c];
    }
  }
  return out;
}

Matrix GatConv::backward(const Matrix& grad_out) {
  const Matrix& z = cached_z_;
  const std::size_t d = z.cols();
  Matrix dz(num_nodes_, d);

  // Arc-level gradients through the attention-weighted aggregation.
  std::vector<double> dalpha(src_.size(), 0.0);
  for (std::size_t i = 0; i < num_nodes_; ++i) {
    const auto gi = grad_out.row(i);
    for (std::size_t k = dst_ptr_[i]; k < dst_ptr_[i + 1]; ++k) {
      const auto zj = z.row(src_[k]);
      double g = 0.0;
      for (std::size_t c = 0; c < d; ++c) g += gi[c] * zj[c];
      dalpha[k] = g;
      // dz_j += alpha * dOut_i
      auto dzj = dz.row(src_[k]);
      for (std::size_t c = 0; c < d; ++c) dzj[c] += alpha_[k] * gi[c];
    }
  }

  // Softmax backward per destination group, then LeakyReLU.
  std::vector<double> dpre(src_.size(), 0.0);
  for (std::size_t i = 0; i < num_nodes_; ++i) {
    const std::size_t begin = dst_ptr_[i];
    const std::size_t end = dst_ptr_[i + 1];
    double inner = 0.0;
    for (std::size_t k = begin; k < end; ++k) inner += alpha_[k] * dalpha[k];
    for (std::size_t k = begin; k < end; ++k) {
      const double de = alpha_[k] * (dalpha[k] - inner);
      dpre[k] = de * (pre_[k] > 0.0 ? 1.0 : leaky_slope_);
    }
  }

  // Score halves: pre = a_dst.z_i + a_src.z_j.
  for (std::size_t i = 0; i < num_nodes_; ++i) {
    const auto zi = z.row(i);
    auto dzi = dz.row(i);
    for (std::size_t k = dst_ptr_[i]; k < dst_ptr_[i + 1]; ++k) {
      const double g = dpre[k];
      if (g == 0.0) continue;
      const std::uint32_t j = src_[k];
      const auto zj = z.row(j);
      auto dzj = dz.row(j);
      for (std::size_t c = 0; c < d; ++c) {
        attn_dst_.grad(0, c) += g * zi[c];
        attn_src_.grad(0, c) += g * zj[c];
        dzi[c] += g * attn_dst_.value(0, c);
        dzj[c] += g * attn_src_.value(0, c);
      }
    }
  }

  // Through z = x W.
  weight_.grad += linalg::matmul_at_b(cached_x_, dz);
  return linalg::matmul_a_bt(dz, weight_.value);
}

// ------------------------------------------------------------ MultiHeadGat

MultiHeadGat::MultiHeadGat(
    std::size_t num_nodes,
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges,
    std::size_t in_dim, std::size_t out_dim, std::size_t num_heads,
    linalg::Rng& rng, double leaky_slope) {
  if (num_heads == 0 || out_dim % num_heads != 0)
    throw std::invalid_argument(
        "MultiHeadGat: out_dim must be a positive multiple of num_heads");
  head_dim_ = out_dim / num_heads;
  heads_.reserve(num_heads);
  for (std::size_t h = 0; h < num_heads; ++h) {
    heads_.push_back(std::make_unique<GatConv>(num_nodes, edges, in_dim,
                                               head_dim_, rng, leaky_slope));
  }
}

Matrix MultiHeadGat::forward(const Matrix& x) {
  Matrix out(x.rows(), head_dim_ * heads_.size());
  for (std::size_t h = 0; h < heads_.size(); ++h) {
    const Matrix part = heads_[h]->forward(x);
    for (std::size_t r = 0; r < x.rows(); ++r) {
      const auto src = part.row(r);
      auto dst = out.row(r);
      for (std::size_t c = 0; c < head_dim_; ++c)
        dst[h * head_dim_ + c] = src[c];
    }
  }
  return out;
}

Matrix MultiHeadGat::backward(const Matrix& grad_out) {
  Matrix grad_in;
  for (std::size_t h = 0; h < heads_.size(); ++h) {
    Matrix part(grad_out.rows(), head_dim_);
    for (std::size_t r = 0; r < grad_out.rows(); ++r) {
      const auto src = grad_out.row(r);
      auto dst = part.row(r);
      for (std::size_t c = 0; c < head_dim_; ++c)
        dst[c] = src[h * head_dim_ + c];
    }
    Matrix gi = heads_[h]->backward(part);
    if (h == 0) grad_in = std::move(gi);
    else grad_in += gi;
  }
  return grad_in;
}

std::vector<Param*> MultiHeadGat::params() {
  std::vector<Param*> ps;
  for (auto& head : heads_)
    for (Param* p : head->params()) ps.push_back(p);
  return ps;
}

}  // namespace cirstag::gnn
