#include "gnn/adam.hpp"

#include <cmath>

namespace cirstag::gnn {

Adam::Adam(std::vector<Param*> params, AdamOptions opts)
    : params_(std::move(params)), opts_(opts) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Param* p : params_) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Adam::step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(opts_.beta1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(opts_.beta2, static_cast<double>(t_));

  if (opts_.grad_clip > 0.0) {
    double total = 0.0;
    for (const Param* p : params_)
      for (double g : p->grad.data()) total += g * g;
    total = std::sqrt(total);
    if (total > opts_.grad_clip) {
      const double scale = opts_.grad_clip / total;
      for (Param* p : params_)
        for (auto& g : p->grad.data()) g *= scale;
    }
  }

  for (std::size_t i = 0; i < params_.size(); ++i) {
    Param& p = *params_[i];
    auto pv = p.value.data();
    auto pg = p.grad.data();
    auto mv = m_[i].data();
    auto vv = v_[i].data();
    for (std::size_t k = 0; k < pv.size(); ++k) {
      mv[k] = opts_.beta1 * mv[k] + (1.0 - opts_.beta1) * pg[k];
      vv[k] = opts_.beta2 * vv[k] + (1.0 - opts_.beta2) * pg[k] * pg[k];
      const double mhat = mv[k] / bc1;
      const double vhat = vv[k] / bc2;
      double update = mhat / (std::sqrt(vhat) + opts_.epsilon);
      if (opts_.weight_decay > 0.0) update += opts_.weight_decay * pv[k];
      pv[k] -= opts_.learning_rate * update;
    }
  }
  zero_grad();
}

void Adam::zero_grad() {
  for (Param* p : params_) p->zero_grad();
}

}  // namespace cirstag::gnn
