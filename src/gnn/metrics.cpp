#include "gnn/metrics.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace cirstag::gnn {

double accuracy(std::span<const std::uint32_t> pred,
                std::span<const std::uint32_t> truth) {
  if (pred.size() != truth.size())
    throw std::invalid_argument("accuracy: size mismatch");
  if (pred.empty()) return 0.0;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < pred.size(); ++i)
    if (pred[i] == truth[i]) ++hits;
  return static_cast<double>(hits) / static_cast<double>(pred.size());
}

double f1_macro(std::span<const std::uint32_t> pred,
                std::span<const std::uint32_t> truth,
                std::size_t num_classes) {
  if (pred.size() != truth.size())
    throw std::invalid_argument("f1_macro: size mismatch");
  std::vector<double> tp(num_classes, 0), fp(num_classes, 0),
      fn(num_classes, 0), present(num_classes, 0);
  for (std::size_t i = 0; i < pred.size(); ++i) {
    if (truth[i] >= num_classes || pred[i] >= num_classes)
      throw std::out_of_range("f1_macro: class out of range");
    present[truth[i]] = 1;
    if (pred[i] == truth[i]) ++tp[truth[i]];
    else {
      ++fp[pred[i]];
      ++fn[truth[i]];
    }
  }
  double sum = 0.0;
  double count = 0.0;
  for (std::size_t c = 0; c < num_classes; ++c) {
    if (!present[c]) continue;
    const double denom = 2 * tp[c] + fp[c] + fn[c];
    sum += denom > 0 ? 2 * tp[c] / denom : 0.0;
    count += 1.0;
  }
  return count > 0 ? sum / count : 0.0;
}

std::vector<double> row_cosine_similarities(const linalg::Matrix& a,
                                            const linalg::Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols())
    throw std::invalid_argument("row_cosine_similarities: shape mismatch");
  std::vector<double> sims(a.rows(), 0.0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const auto ra = a.row(r);
    const auto rb = b.row(r);
    double ab = 0.0, aa = 0.0, bb = 0.0;
    for (std::size_t c = 0; c < ra.size(); ++c) {
      ab += ra[c] * rb[c];
      aa += ra[c] * ra[c];
      bb += rb[c] * rb[c];
    }
    if (aa == 0.0 && bb == 0.0) sims[r] = 1.0;
    else if (aa == 0.0 || bb == 0.0) sims[r] = 0.0;
    else sims[r] = ab / std::sqrt(aa * bb);
  }
  return sims;
}

double mean_cosine_similarity(const linalg::Matrix& a, const linalg::Matrix& b) {
  const auto sims = row_cosine_similarities(a, b);
  if (sims.empty()) return 0.0;
  double s = 0.0;
  for (double v : sims) s += v;
  return s / static_cast<double>(sims.size());
}

}  // namespace cirstag::gnn
