#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace cirstag::gnn {

/// Loss value plus gradient w.r.t. the predictions.
struct LossResult {
  double value = 0.0;
  linalg::Matrix grad;
};

/// Mean squared error over selected rows (mask empty = all rows). The
/// timing model's objective: predictions and targets are n x 1.
[[nodiscard]] LossResult mse_loss(const linalg::Matrix& pred,
                                  std::span<const double> target,
                                  std::span<const std::size_t> mask = {});

/// Softmax cross-entropy over logits (n x C) against integer labels, with
/// gradient = (softmax - onehot)/n. Returns the mean loss.
[[nodiscard]] LossResult cross_entropy_loss(
    const linalg::Matrix& logits, std::span<const std::uint32_t> labels);

/// Row-wise softmax of logits (prediction utility).
[[nodiscard]] linalg::Matrix softmax_rows(const linalg::Matrix& logits);

/// Argmax per row.
[[nodiscard]] std::vector<std::uint32_t> argmax_rows(
    const linalg::Matrix& logits);

}  // namespace cirstag::gnn
