#pragma once

#include <span>
#include <vector>

#include "circuit/netlist.hpp"
#include "gnn/layers.hpp"

namespace cirstag::gnn {

/// Levelized DAG propagation layer, the TimingGCN-style core of the timing
/// surrogate: hidden states are computed pin by pin in topological order,
///
///   h_p = LeakyReLU( x_p W_x + mean_{q ∈ fanin(p)} h_q · W_h + b ),
///
/// so each pin's state depends on its *entire* fan-in cone — exactly like
/// arrival times in static timing analysis — rather than on a fixed k-hop
/// neighborhood. Backward runs the reverse order (backprop through the DAG,
/// an RNN-over-topological-order). This is what lets the surrogate respond
/// to capacitance changes arbitrarily far upstream of an output.
class DagPropagation : public Layer {
 public:
  /// Builds the pin-level fan-in lists and processing order from a
  /// finalized netlist. `in_dim` is the per-pin input feature width,
  /// `out_dim` the hidden width.
  DagPropagation(const circuit::Netlist& netlist, std::size_t in_dim,
                 std::size_t out_dim, linalg::Rng& rng);

  Matrix forward(const Matrix& x) override;
  Matrix backward(const Matrix& grad_out) override;
  std::vector<Param*> params() override { return {&w_x_, &w_h_, &bias_}; }
  /// Incremental DAG re-propagation: recomputes a pin when its feature row
  /// changed or any fan-in hidden state moved, cascading level by level with
  /// equality pruning — the GNN analogue of incremental STA.
  std::size_t forward_incremental(
      const Matrix& x, Matrix& y, const std::vector<std::uint32_t>& dirty_in,
      std::vector<std::uint32_t>& dirty_out) const override;

  [[nodiscard]] std::size_t num_pins() const { return order_.size(); }
  /// Number of topological levels (pins in the same level have all fan-in
  /// strictly below them, so forward processes levels with a barrier between
  /// them and full parallelism inside — Tatum's TopoBarrier traversal).
  [[nodiscard]] std::size_t num_levels() const {
    return level_offsets_.empty() ? 0 : level_offsets_.size() - 1;
  }

 private:
  std::vector<std::uint32_t> order_;                 // topological pin order
  /// Pins regrouped by topological level (stable within order_): level l is
  /// level_pins_[level_offsets_[l] .. level_offsets_[l+1]). Used by the
  /// level-parallel forward; backward keeps the exact order_ traversal.
  std::vector<std::uint32_t> level_pins_;
  std::vector<std::size_t> level_offsets_;
  // Fan-in / fan-out arcs in flat CSR form (offsets into one contiguous arc
  // array): one allocation each instead of a vector-of-vectors, so the
  // level-parallel sweep streams arcs from adjacent cache lines.
  std::vector<std::size_t> fanin_offsets_;   // size num_pins + 1
  std::vector<std::uint32_t> fanin_arcs_;
  std::vector<std::size_t> fanout_offsets_;  // size num_pins + 1
  std::vector<std::uint32_t> fanout_arcs_;

  [[nodiscard]] std::span<const std::uint32_t> fanin(std::uint32_t p) const {
    return {fanin_arcs_.data() + fanin_offsets_[p],
            fanin_offsets_[p + 1] - fanin_offsets_[p]};
  }
  [[nodiscard]] std::span<const std::uint32_t> fanout(std::uint32_t p) const {
    return {fanout_arcs_.data() + fanout_offsets_[p],
            fanout_offsets_[p + 1] - fanout_offsets_[p]};
  }
  Param w_x_;   // in x out
  Param w_h_;   // out x out
  Param bias_;  // 1 x out

  // Forward caches.
  Matrix cached_x_;
  Matrix cached_agg_;  // mean fan-in state per pin
  Matrix cached_pre_;  // pre-activation
  Matrix cached_h_;    // output
};

}  // namespace cirstag::gnn
