#pragma once

#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace cirstag::gnn {

/// Column-wise standardizer (zero mean, unit variance), fit on training
/// features and reused on perturbed features so the GNN sees consistent
/// scaling. Constant columns pass through unchanged.
class Standardizer {
 public:
  void fit(const linalg::Matrix& x);
  [[nodiscard]] linalg::Matrix transform(const linalg::Matrix& x) const;
  [[nodiscard]] linalg::Matrix fit_transform(const linalg::Matrix& x);

  [[nodiscard]] bool fitted() const { return !mean_.empty(); }

  /// Fitted state, exposed for binary snapshots (io/snapshot).
  [[nodiscard]] std::span<const double> mean() const { return mean_; }
  [[nodiscard]] std::span<const double> inv_std() const { return inv_std_; }

  /// Adopt previously fitted state verbatim (snapshot restore). Both vectors
  /// must have the same (non-zero) length.
  void restore(std::vector<double> mean, std::vector<double> inv_std);

 private:
  std::vector<double> mean_;
  std::vector<double> inv_std_;
};

}  // namespace cirstag::gnn
