#pragma once

#include "linalg/matrix.hpp"

namespace cirstag::gnn {

/// A trainable tensor: value plus accumulated gradient of the same shape.
struct Param {
  linalg::Matrix value;
  linalg::Matrix grad;

  explicit Param(linalg::Matrix v)
      : value(std::move(v)), grad(value.rows(), value.cols()) {}

  void zero_grad() { grad.fill(0.0); }
};

}  // namespace cirstag::gnn
