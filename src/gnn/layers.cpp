#include "gnn/layers.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "kernels/kernels.hpp"
#include "util/arena.hpp"

namespace cirstag::gnn {

namespace {
/// Row r of matmul(x, w): the exact per-row arithmetic of linalg::matmul
/// (ascending k, zero-skip, kernel axpy), so incremental row recomputes are
/// byte-equal to the batched product.
void matmul_row(std::span<const double> xrow, const Matrix& w,
                std::span<double> out) {
  std::fill(out.begin(), out.end(), 0.0);
  for (std::size_t k = 0; k < xrow.size(); ++k) {
    const double aik = xrow[k];
    if (aik == 0.0) continue;
    kernels::axpy(aik, w.row(k).data(), out.data(), out.size());
  }
}

/// Compare-and-commit: write `fresh` into y.row(r) only when it moved,
/// recording r in dirty_out. Equality pruning is what keeps the incremental
/// cone from flooding the whole graph.
bool commit_row(Matrix& y, std::size_t r, std::span<const double> fresh,
                std::vector<std::uint32_t>& dirty_out) {
  auto row = y.row(r);
  bool same = true;
  for (std::size_t c = 0; c < row.size(); ++c)
    if (row[c] != fresh[c]) { same = false; break; }
  if (same) return false;
  std::copy(fresh.begin(), fresh.end(), row.begin());
  dirty_out.push_back(static_cast<std::uint32_t>(r));
  return true;
}
}  // namespace

std::size_t Layer::forward_incremental(const Matrix&, Matrix&,
                                       const std::vector<std::uint32_t>&,
                                       std::vector<std::uint32_t>&) const {
  throw std::logic_error("Layer::forward_incremental: unsupported layer type");
}

// ---------------------------------------------------------------- Linear

Linear::Linear(std::size_t in_dim, std::size_t out_dim, linalg::Rng& rng)
    : weight_(Matrix::glorot(in_dim, out_dim, rng)),
      bias_(Matrix(1, out_dim)) {}

Matrix Linear::forward(const Matrix& x) {
  cached_input_ = x;
  Matrix y = linalg::matmul(x, weight_.value);
  for (std::size_t r = 0; r < y.rows(); ++r) {
    auto row = y.row(r);
    const auto b = bias_.value.row(0);
    for (std::size_t c = 0; c < row.size(); ++c) row[c] += b[c];
  }
  return y;
}

std::size_t Linear::forward_incremental(
    const Matrix& x, Matrix& y, const std::vector<std::uint32_t>& dirty_in,
    std::vector<std::uint32_t>& dirty_out) const {
  std::vector<double> fresh(weight_.value.cols());
  const auto b = bias_.value.row(0);
  for (const std::uint32_t r : dirty_in) {
    matmul_row(x.row(r), weight_.value, fresh);
    for (std::size_t c = 0; c < fresh.size(); ++c) fresh[c] += b[c];
    commit_row(y, r, fresh, dirty_out);
  }
  return dirty_in.size();
}

Matrix Linear::backward(const Matrix& grad_out) {
  weight_.grad += linalg::matmul_at_b(cached_input_, grad_out);
  for (std::size_t r = 0; r < grad_out.rows(); ++r) {
    const auto g = grad_out.row(r);
    auto b = bias_.grad.row(0);
    for (std::size_t c = 0; c < g.size(); ++c) b[c] += g[c];
  }
  return linalg::matmul_a_bt(grad_out, weight_.value);
}

// ---------------------------------------------------------------- ReLU

Matrix ReLU::forward(const Matrix& x) {
  cached_input_ = x;
  Matrix y = x;
  for (auto& v : y.data()) v = v > 0.0 ? v : 0.0;
  return y;
}

std::size_t ReLU::forward_incremental(
    const Matrix& x, Matrix& y, const std::vector<std::uint32_t>& dirty_in,
    std::vector<std::uint32_t>& dirty_out) const {
  std::vector<double> fresh(x.cols());
  for (const std::uint32_t r : dirty_in) {
    const auto xr = x.row(r);
    for (std::size_t c = 0; c < fresh.size(); ++c)
      fresh[c] = xr[c] > 0.0 ? xr[c] : 0.0;
    commit_row(y, r, fresh, dirty_out);
  }
  return dirty_in.size();
}

Matrix ReLU::backward(const Matrix& grad_out) {
  Matrix g = grad_out;
  const auto in = cached_input_.data();
  auto out = g.data();
  for (std::size_t i = 0; i < out.size(); ++i)
    if (in[i] <= 0.0) out[i] = 0.0;
  return g;
}

// ---------------------------------------------------------------- Tanh

Matrix Tanh::forward(const Matrix& x) {
  Matrix y = x;
  for (auto& v : y.data()) v = std::tanh(v);
  cached_output_ = y;
  return y;
}

std::size_t Tanh::forward_incremental(
    const Matrix& x, Matrix& y, const std::vector<std::uint32_t>& dirty_in,
    std::vector<std::uint32_t>& dirty_out) const {
  std::vector<double> fresh(x.cols());
  for (const std::uint32_t r : dirty_in) {
    const auto xr = x.row(r);
    for (std::size_t c = 0; c < fresh.size(); ++c) fresh[c] = std::tanh(xr[c]);
    commit_row(y, r, fresh, dirty_out);
  }
  return dirty_in.size();
}

Matrix Tanh::backward(const Matrix& grad_out) {
  Matrix g = grad_out;
  const auto out = cached_output_.data();
  auto gd = g.data();
  for (std::size_t i = 0; i < gd.size(); ++i) gd[i] *= 1.0 - out[i] * out[i];
  return g;
}

// ------------------------------------------------------- TypedGraphConv

TypedGraphConv::TypedGraphConv(std::vector<linalg::SparseMatrix> operators,
                               std::size_t in_dim, std::size_t out_dim,
                               linalg::Rng& rng)
    : ops_(std::move(operators)),
      w_self_(Matrix::glorot(in_dim, out_dim, rng)),
      bias_(Matrix(1, out_dim)) {
  if (ops_.empty())
    throw std::invalid_argument("TypedGraphConv: need at least one operator");
  ops_t_.reserve(ops_.size());
  for (const auto& op : ops_) {
    if (op.rows() != op.cols())
      throw std::invalid_argument("TypedGraphConv: operator not square");
    ops_t_.push_back(op.transposed());
    w_type_.push_back(
        std::make_unique<Param>(Matrix::glorot(in_dim, out_dim, rng)));
  }
}

Matrix TypedGraphConv::forward(const Matrix& x) {
  cached_input_ = x;
  cached_propagated_.clear();
  cached_propagated_.reserve(ops_.size());

  Matrix y = linalg::matmul(x, w_self_.value);
  for (std::size_t t = 0; t < ops_.size(); ++t) {
    Matrix px = ops_[t].multiply(x);  // Â_t X
    y += linalg::matmul(px, w_type_[t]->value);
    cached_propagated_.push_back(std::move(px));
  }
  for (std::size_t r = 0; r < y.rows(); ++r) {
    auto row = y.row(r);
    const auto b = bias_.value.row(0);
    for (std::size_t c = 0; c < row.size(); ++c) row[c] += b[c];
  }
  return y;
}

std::size_t TypedGraphConv::forward_incremental(
    const Matrix& x, Matrix& y, const std::vector<std::uint32_t>& dirty_in,
    std::vector<std::uint32_t>& dirty_out) const {
  // Candidate output rows: the dirty rows themselves (self path) plus every
  // row whose operators reference a dirty column — read off the stored
  // transposes (ops_t_[t] row q holds exactly {r : Â_t(r, q) != 0}).
  std::vector<std::uint32_t> cand(dirty_in.begin(), dirty_in.end());
  for (const auto& opt : ops_t_)
    for (const std::uint32_t q : dirty_in)
      for (const std::size_t r : opt.row_indices(q))
        cand.push_back(static_cast<std::uint32_t>(r));
  std::sort(cand.begin(), cand.end());
  cand.erase(std::unique(cand.begin(), cand.end()), cand.end());

  const std::size_t d = w_self_.value.cols();
  const std::size_t xc = x.cols();
  util::ArenaFrame frame;
  std::span<double> fresh = frame.alloc<double>(d);
  std::span<double> px = frame.alloc<double>(xc);
  std::span<double> tmp = frame.alloc<double>(d);
  // Single-row SpMM scratch: forward() computes Â_t X through the kernel
  // layer's 4-lane nnz reduction tree, so the recompute must run the very
  // same kernel on the one row to stay byte-equal.
  std::span<double> acc =
      frame.alloc<double>(4 * kernels::padded_cols(xc));
  const auto& kt = kernels::table();
  const auto b = bias_.value.row(0);
  for (const std::uint32_t r : cand) {
    // Same element-wise sequence as forward(): self product, then += each
    // typed product (itself a fresh zero-initialized accumulation), then
    // bias.
    matmul_row(x.row(r), w_self_.value, fresh);
    for (std::size_t t = 0; t < ops_.size(); ++t) {
      std::fill(px.begin(), px.end(), 0.0);
      const auto idx = ops_[t].row_indices(r);
      const auto val = ops_[t].row_values(r);
      const std::size_t row_ptr[2] = {0, idx.size()};
      kt.spmm_range(row_ptr, idx.data(), val.data(), x.data().data(), xc,
                    /*alpha=*/1.0, px.data(), xc, xc, acc.data(), 0, 1);
      matmul_row(px, w_type_[t]->value, tmp);
      for (std::size_t c = 0; c < d; ++c) fresh[c] += tmp[c];
    }
    for (std::size_t c = 0; c < d; ++c) fresh[c] += b[c];
    commit_row(y, r, fresh, dirty_out);
  }
  return cand.size();
}

Matrix TypedGraphConv::backward(const Matrix& grad_out) {
  // Bias.
  for (std::size_t r = 0; r < grad_out.rows(); ++r) {
    const auto g = grad_out.row(r);
    auto b = bias_.grad.row(0);
    for (std::size_t c = 0; c < g.size(); ++c) b[c] += g[c];
  }
  // Self path.
  w_self_.grad += linalg::matmul_at_b(cached_input_, grad_out);
  Matrix grad_in = linalg::matmul_a_bt(grad_out, w_self_.value);
  // Typed paths: d(Â X W) / dX = Âᵀ (dY Wᵀ), dW = (Â X)ᵀ dY.
  for (std::size_t t = 0; t < ops_.size(); ++t) {
    w_type_[t]->grad += linalg::matmul_at_b(cached_propagated_[t], grad_out);
    const Matrix tmp = linalg::matmul_a_bt(grad_out, w_type_[t]->value);
    grad_in += ops_t_[t].multiply(tmp);
  }
  return grad_in;
}

std::vector<Param*> TypedGraphConv::params() {
  std::vector<Param*> ps{&w_self_, &bias_};
  for (auto& p : w_type_) ps.push_back(p.get());
  return ps;
}

linalg::SparseMatrix normalized_arc_operator(
    std::size_t num_nodes,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& arcs,
    bool reverse) {
  std::vector<double> indeg(num_nodes, 0.0);
  for (const auto& [src, dst] : arcs) {
    const std::uint32_t d = reverse ? src : dst;
    indeg[d] += 1.0;
  }
  std::vector<linalg::Triplet> trips;
  trips.reserve(arcs.size());
  for (const auto& [src, dst] : arcs) {
    const std::uint32_t s = reverse ? dst : src;
    const std::uint32_t d = reverse ? src : dst;
    trips.push_back({d, s, 1.0 / indeg[d]});
  }
  return linalg::SparseMatrix::from_triplets(num_nodes, num_nodes,
                                             std::move(trips));
}

}  // namespace cirstag::gnn
