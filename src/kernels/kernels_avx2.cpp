// AVX2 + FMA kernel table. Compiled with -mavx2 -mfma (see CMakeLists); the
// dispatcher only installs it when __builtin_cpu_supports confirms both
// features at runtime.
//
// Every loop reproduces the canonical lane shapes from kernels_scalar.cpp
// bit for bit:
//   * 8-lane reductions = two 4-wide accumulators; 4-lane = one.
//   * Tail and masked lanes use maskload + blendv/maskstore so suppressed
//     lanes contribute nothing at all (a multiply-by-zero tail would flip
//     signed zeros: fma(0, x, -0.0) = +0.0).
//   * Horizontal folds are the fixed trees documented in kernels.hpp.

#include "kernels/kernels.hpp"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <cmath>

namespace cirstag::kernels {
namespace {

/// Load mask enabling the first r lanes (r in [0, 4]); MSB-driven, so it
/// works for VMASKMOVPD, VBLENDVPD and VPMASKMOV alike.
inline __m256i lane_mask(std::size_t r) {
  static const __m256i kMasks[5] = {
      _mm256_setzero_si256(),
      _mm256_set_epi64x(0, 0, 0, -1),
      _mm256_set_epi64x(0, 0, -1, -1),
      _mm256_set_epi64x(0, -1, -1, -1),
      _mm256_set_epi64x(-1, -1, -1, -1),
  };
  return kMasks[r];
}

/// (l0 + l2) + (l1 + l3) — the canonical 4-lane horizontal tree.
inline double hfold4(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);       // l0 l1
  const __m128d hi = _mm256_extractf128_pd(v, 1);     // l2 l3
  const __m128d s = _mm_add_pd(lo, hi);               // l0+l2, l1+l3
  return _mm_cvtsd_f64(s) + _mm_cvtsd_f64(_mm_unpackhi_pd(s, s));
}

/// Fold the 8-lane accumulator pair: vertical add, then the 4-lane tree.
inline double hfold8(__m256d acc0, __m256d acc1) {
  return hfold4(_mm256_add_pd(acc0, acc1));
}

/// Accumulate the final 0–7 elements of an 8-lane reduction at `a+base`,
/// splitting lanes exactly like the scalar (i & 7) mapping.
template <typename LoadFma>
inline void tail8(std::size_t rem, __m256d& acc0, __m256d& acc1,
                  LoadFma&& step) {
  const std::size_t r0 = rem < 4 ? rem : 4;
  const std::size_t r1 = rem - r0;
  if (r0 != 0) acc0 = step(0, lane_mask(r0), acc0);
  if (r1 != 0) acc1 = step(4, lane_mask(r1), acc1);
}

double dot_avx2(const double* a, const double* b, std::size_t n) {
  __m256d acc0 = _mm256_setzero_pd(), acc1 = _mm256_setzero_pd();
  const std::size_t main = n & ~std::size_t{7};
  for (std::size_t i = 0; i < main; i += 8) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i),
                           acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 4),
                           _mm256_loadu_pd(b + i + 4), acc1);
  }
  tail8(n - main, acc0, acc1,
        [&](std::size_t off, __m256i m, __m256d acc) {
          const __m256d av = _mm256_maskload_pd(a + main + off, m);
          const __m256d bv = _mm256_maskload_pd(b + main + off, m);
          const __m256d t = _mm256_fmadd_pd(av, bv, acc);
          return _mm256_blendv_pd(acc, t, _mm256_castsi256_pd(m));
        });
  return hfold8(acc0, acc1);
}

double dot_self_avx2(const double* a, std::size_t n) {
  __m256d acc0 = _mm256_setzero_pd(), acc1 = _mm256_setzero_pd();
  const std::size_t main = n & ~std::size_t{7};
  for (std::size_t i = 0; i < main; i += 8) {
    const __m256d v0 = _mm256_loadu_pd(a + i);
    const __m256d v1 = _mm256_loadu_pd(a + i + 4);
    acc0 = _mm256_fmadd_pd(v0, v0, acc0);
    acc1 = _mm256_fmadd_pd(v1, v1, acc1);
  }
  tail8(n - main, acc0, acc1,
        [&](std::size_t off, __m256i m, __m256d acc) {
          const __m256d v = _mm256_maskload_pd(a + main + off, m);
          const __m256d t = _mm256_fmadd_pd(v, v, acc);
          return _mm256_blendv_pd(acc, t, _mm256_castsi256_pd(m));
        });
  return hfold8(acc0, acc1);
}

double sum_avx2(const double* a, std::size_t n) {
  __m256d acc0 = _mm256_setzero_pd(), acc1 = _mm256_setzero_pd();
  const std::size_t main = n & ~std::size_t{7};
  for (std::size_t i = 0; i < main; i += 8) {
    acc0 = _mm256_add_pd(acc0, _mm256_loadu_pd(a + i));
    acc1 = _mm256_add_pd(acc1, _mm256_loadu_pd(a + i + 4));
  }
  tail8(n - main, acc0, acc1,
        [&](std::size_t off, __m256i m, __m256d acc) {
          const __m256d v = _mm256_maskload_pd(a + main + off, m);
          const __m256d t = _mm256_add_pd(acc, v);
          return _mm256_blendv_pd(acc, t, _mm256_castsi256_pd(m));
        });
  return hfold8(acc0, acc1);
}

double distance2_avx2(const double* a, const double* b, std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  const std::size_t main = n & ~std::size_t{3};
  for (std::size_t i = 0; i < main; i += 4) {
    const __m256d d = _mm256_sub_pd(_mm256_loadu_pd(a + i),
                                    _mm256_loadu_pd(b + i));
    acc = _mm256_fmadd_pd(d, d, acc);
  }
  if (const std::size_t rem = n - main; rem != 0) {
    const __m256i m = lane_mask(rem);
    const __m256d d = _mm256_sub_pd(_mm256_maskload_pd(a + main, m),
                                    _mm256_maskload_pd(b + main, m));
    const __m256d t = _mm256_fmadd_pd(d, d, acc);
    acc = _mm256_blendv_pd(acc, t, _mm256_castsi256_pd(m));
  }
  return hfold4(acc);
}

void axpy_avx2(double alpha, const double* x, double* y, std::size_t n) {
  const __m256d av = _mm256_set1_pd(alpha);
  const std::size_t main = n & ~std::size_t{3};
  for (std::size_t i = 0; i < main; i += 4)
    _mm256_storeu_pd(
        y + i, _mm256_fmadd_pd(av, _mm256_loadu_pd(x + i),
                               _mm256_loadu_pd(y + i)));
  if (const std::size_t rem = n - main; rem != 0) {
    const __m256i m = lane_mask(rem);
    const __m256d t = _mm256_fmadd_pd(av, _mm256_maskload_pd(x + main, m),
                                      _mm256_maskload_pd(y + main, m));
    _mm256_maskstore_pd(y + main, m, t);
  }
}

void scale_avx2(double alpha, double* x, std::size_t n) {
  const __m256d av = _mm256_set1_pd(alpha);
  const std::size_t main = n & ~std::size_t{3};
  for (std::size_t i = 0; i < main; i += 4)
    _mm256_storeu_pd(x + i, _mm256_mul_pd(av, _mm256_loadu_pd(x + i)));
  if (const std::size_t rem = n - main; rem != 0) {
    const __m256i m = lane_mask(rem);
    _mm256_maskstore_pd(
        x + main, m, _mm256_mul_pd(av, _mm256_maskload_pd(x + main, m)));
  }
}

void sub_scalar_avx2(double s, double* x, std::size_t n) {
  const __m256d sv = _mm256_set1_pd(s);
  const std::size_t main = n & ~std::size_t{3};
  for (std::size_t i = 0; i < main; i += 4)
    _mm256_storeu_pd(x + i, _mm256_sub_pd(_mm256_loadu_pd(x + i), sv));
  if (const std::size_t rem = n - main; rem != 0) {
    const __m256i m = lane_mask(rem);
    _mm256_maskstore_pd(
        x + main, m, _mm256_sub_pd(_mm256_maskload_pd(x + main, m), sv));
  }
}

void xpby_avx2(double beta, const double* z, double* p, std::size_t n) {
  const __m256d bv = _mm256_set1_pd(beta);
  const std::size_t main = n & ~std::size_t{3};
  for (std::size_t i = 0; i < main; i += 4)
    _mm256_storeu_pd(
        p + i, _mm256_fmadd_pd(bv, _mm256_loadu_pd(p + i),
                               _mm256_loadu_pd(z + i)));
  if (const std::size_t rem = n - main; rem != 0) {
    const __m256i m = lane_mask(rem);
    const __m256d t = _mm256_fmadd_pd(bv, _mm256_maskload_pd(p + main, m),
                                      _mm256_maskload_pd(z + main, m));
    _mm256_maskstore_pd(p + main, m, t);
  }
}

void spmv_range_avx2(const std::size_t* row_ptr, const std::uint32_t* col_idx,
                     const double* values, const double* x, double alpha,
                     double* y, std::size_t lo, std::size_t hi) {
  // Sparse row dots are gather-bound, and vgatherdpd loses to plain scalar
  // loads on typical CSR rows (~10 nnz): four independent scalar fma chains
  // keep the exact 4-lane tree shape — lane (t - b) & 3, same fold — while
  // the loads pipeline instead of serializing through the gather unit.
  for (std::size_t r = lo; r < hi; ++r) {
    const std::size_t b = row_ptr[r], e = row_ptr[r + 1];
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
    std::size_t t = b;
    for (; t + 4 <= e; t += 4) {
      _mm_prefetch(reinterpret_cast<const char*>(values + t + 16),
                   _MM_HINT_T0);
      a0 = std::fma(values[t], x[col_idx[t]], a0);
      a1 = std::fma(values[t + 1], x[col_idx[t + 1]], a1);
      a2 = std::fma(values[t + 2], x[col_idx[t + 2]], a2);
      a3 = std::fma(values[t + 3], x[col_idx[t + 3]], a3);
    }
    // Ragged tail continues the lane assignment: lanes 0, 1, 2.
    if (t < e) a0 = std::fma(values[t], x[col_idx[t]], a0), ++t;
    if (t < e) a1 = std::fma(values[t], x[col_idx[t]], a1), ++t;
    if (t < e) a2 = std::fma(values[t], x[col_idx[t]], a2);
    y[r] = std::fma(alpha, (a0 + a2) + (a1 + a3), y[r]);
  }
}

/// spmm rows for kp == 4 (k <= 4): the whole 4-lane accumulator block fits in
/// four ymm registers, so the generic path's scratch round-trip per nnz
/// disappears. Lane assignment — nnz position (t - b) & 3 — and the fold are
/// unchanged, so results stay bit-identical. KFull selects plain loads/stores
/// when k == 4; otherwise `km` masks the live columns.
template <bool KFull>
void spmm_rows_kp4(const std::size_t* row_ptr, const std::uint32_t* col_idx,
                   const double* values, const double* x, std::size_t ldx,
                   double alpha, double* y, std::size_t ldy, __m256i km,
                   std::size_t lo, std::size_t hi) {
  const __m256d av = _mm256_set1_pd(alpha);
  const __m256d zero = _mm256_setzero_pd();
  for (std::size_t r = lo; r < hi; ++r) {
    const std::size_t b = row_ptr[r], e = row_ptr[r + 1];
    __m256d a0 = zero, a1 = zero, a2 = zero, a3 = zero;
    const auto xrow = [&](std::size_t t) {
      const double* p = x + static_cast<std::size_t>(col_idx[t]) * ldx;
      return KFull ? _mm256_loadu_pd(p) : _mm256_maskload_pd(p, km);
    };
    std::size_t t = b;
    for (; t + 4 <= e; t += 4) {
      if (t + 4 < e)
        _mm_prefetch(reinterpret_cast<const char*>(
                         x + static_cast<std::size_t>(col_idx[t + 4]) * ldx),
                     _MM_HINT_T0);
      a0 = _mm256_fmadd_pd(_mm256_set1_pd(values[t]), xrow(t), a0);
      a1 = _mm256_fmadd_pd(_mm256_set1_pd(values[t + 1]), xrow(t + 1), a1);
      a2 = _mm256_fmadd_pd(_mm256_set1_pd(values[t + 2]), xrow(t + 2), a2);
      a3 = _mm256_fmadd_pd(_mm256_set1_pd(values[t + 3]), xrow(t + 3), a3);
    }
    // Ragged tail continues the lane assignment: lanes 0, 1, 2.
    if (t < e) a0 = _mm256_fmadd_pd(_mm256_set1_pd(values[t]), xrow(t), a0), ++t;
    if (t < e) a1 = _mm256_fmadd_pd(_mm256_set1_pd(values[t]), xrow(t), a1), ++t;
    if (t < e) a2 = _mm256_fmadd_pd(_mm256_set1_pd(values[t]), xrow(t), a2);
    const __m256d fold =
        _mm256_add_pd(_mm256_add_pd(a0, a2), _mm256_add_pd(a1, a3));
    double* yrow = y + r * ldy;
    if (KFull) {
      _mm256_storeu_pd(yrow,
                       _mm256_fmadd_pd(av, fold, _mm256_loadu_pd(yrow)));
    } else {
      const __m256d upd =
          _mm256_fmadd_pd(av, fold, _mm256_maskload_pd(yrow, km));
      _mm256_maskstore_pd(yrow, km, upd);
    }
  }
}

/// spmm rows for kp == 8 (5 <= k <= 8): eight register accumulators, two per
/// lane. The low j-block is always full (k >= 5); KFull selects plain
/// loads/stores for the high block when k == 8, else `km` masks it.
template <bool KFull>
void spmm_rows_kp8(const std::size_t* row_ptr, const std::uint32_t* col_idx,
                   const double* values, const double* x, std::size_t ldx,
                   double alpha, double* y, std::size_t ldy, __m256i km,
                   std::size_t lo, std::size_t hi) {
  const __m256d av = _mm256_set1_pd(alpha);
  const __m256d zero = _mm256_setzero_pd();
  for (std::size_t r = lo; r < hi; ++r) {
    const std::size_t b = row_ptr[r], e = row_ptr[r + 1];
    __m256d a0l = zero, a1l = zero, a2l = zero, a3l = zero;
    __m256d a0h = zero, a1h = zero, a2h = zero, a3h = zero;
    const auto step = [&](std::size_t t, __m256d& al, __m256d& ah) {
      const double* p = x + static_cast<std::size_t>(col_idx[t]) * ldx;
      const __m256d v = _mm256_set1_pd(values[t]);
      al = _mm256_fmadd_pd(v, _mm256_loadu_pd(p), al);
      ah = _mm256_fmadd_pd(
          v, KFull ? _mm256_loadu_pd(p + 4) : _mm256_maskload_pd(p + 4, km),
          ah);
    };
    std::size_t t = b;
    for (; t + 4 <= e; t += 4) {
      if (t + 4 < e)
        _mm_prefetch(reinterpret_cast<const char*>(
                         x + static_cast<std::size_t>(col_idx[t + 4]) * ldx),
                     _MM_HINT_T0);
      step(t, a0l, a0h);
      step(t + 1, a1l, a1h);
      step(t + 2, a2l, a2h);
      step(t + 3, a3l, a3h);
    }
    if (t < e) step(t, a0l, a0h), ++t;
    if (t < e) step(t, a1l, a1h), ++t;
    if (t < e) step(t, a2l, a2h);
    const __m256d foldl =
        _mm256_add_pd(_mm256_add_pd(a0l, a2l), _mm256_add_pd(a1l, a3l));
    const __m256d foldh =
        _mm256_add_pd(_mm256_add_pd(a0h, a2h), _mm256_add_pd(a1h, a3h));
    double* yrow = y + r * ldy;
    _mm256_storeu_pd(yrow,
                     _mm256_fmadd_pd(av, foldl, _mm256_loadu_pd(yrow)));
    if (KFull) {
      _mm256_storeu_pd(yrow + 4,
                       _mm256_fmadd_pd(av, foldh, _mm256_loadu_pd(yrow + 4)));
    } else {
      const __m256d upd =
          _mm256_fmadd_pd(av, foldh, _mm256_maskload_pd(yrow + 4, km));
      _mm256_maskstore_pd(yrow + 4, km, upd);
    }
  }
}

void spmm_range_avx2(const std::size_t* row_ptr, const std::uint32_t* col_idx,
                     const double* values, const double* x, std::size_t ldx,
                     double alpha, double* y, std::size_t ldy, std::size_t k,
                     double* acc, std::size_t lo, std::size_t hi) {
  const std::size_t kp = padded_cols(k);
  const std::size_t kmain = k & ~std::size_t{3};
  const std::size_t krem = k - kmain;
  const __m256i ktail = lane_mask(krem);
  if (kp == 4) {
    if (krem == 0)
      spmm_rows_kp4<true>(row_ptr, col_idx, values, x, ldx, alpha, y, ldy,
                          ktail, lo, hi);
    else
      spmm_rows_kp4<false>(row_ptr, col_idx, values, x, ldx, alpha, y, ldy,
                           ktail, lo, hi);
    return;
  }
  if (kp == 8) {
    if (krem == 0)
      spmm_rows_kp8<true>(row_ptr, col_idx, values, x, ldx, alpha, y, ldy,
                          ktail, lo, hi);
    else
      spmm_rows_kp8<false>(row_ptr, col_idx, values, x, ldx, alpha, y, ldy,
                           ktail, lo, hi);
    return;
  }
  const __m256d zero = _mm256_setzero_pd();
  for (std::size_t r = lo; r < hi; ++r) {
    const std::size_t b = row_ptr[r], e = row_ptr[r + 1];
    for (std::size_t j = 0; j < 4 * kp; j += 4) _mm256_store_pd(acc + j, zero);
    // nnz position (t - b) & 3 selects the accumulator lane — four
    // independent fma chains per column (same tree as spmv_range), which is
    // also what hides the fma latency.
    for (std::size_t t = b; t < e; ++t) {
      if (t + 2 < e)
        _mm_prefetch(reinterpret_cast<const char*>(
                         x + static_cast<std::size_t>(col_idx[t + 2]) * ldx),
                     _MM_HINT_T0);
      const __m256d v = _mm256_set1_pd(values[t]);
      const double* xrow = x + static_cast<std::size_t>(col_idx[t]) * ldx;
      double* lane = acc + ((t - b) & 3) * kp;
      for (std::size_t j = 0; j < kmain; j += 4)
        _mm256_store_pd(
            lane + j, _mm256_fmadd_pd(v, _mm256_loadu_pd(xrow + j),
                                      _mm256_load_pd(lane + j)));
      if (krem != 0)
        _mm256_store_pd(
            lane + kmain,
            _mm256_fmadd_pd(v, _mm256_maskload_pd(xrow + kmain, ktail),
                            _mm256_load_pd(lane + kmain)));
    }
    const __m256d av = _mm256_set1_pd(alpha);
    double* yrow = y + r * ldy;
    for (std::size_t j = 0; j < kmain; j += 4) {
      const __m256d fold = _mm256_add_pd(
          _mm256_add_pd(_mm256_load_pd(acc + j),
                        _mm256_load_pd(acc + 2 * kp + j)),
          _mm256_add_pd(_mm256_load_pd(acc + kp + j),
                        _mm256_load_pd(acc + 3 * kp + j)));
      _mm256_storeu_pd(
          yrow + j, _mm256_fmadd_pd(av, fold, _mm256_loadu_pd(yrow + j)));
    }
    if (krem != 0) {
      const __m256d fold = _mm256_add_pd(
          _mm256_add_pd(_mm256_load_pd(acc + kmain),
                        _mm256_load_pd(acc + 2 * kp + kmain)),
          _mm256_add_pd(_mm256_load_pd(acc + kp + kmain),
                        _mm256_load_pd(acc + 3 * kp + kmain)));
      const __m256d t = _mm256_fmadd_pd(
          av, fold, _mm256_maskload_pd(yrow + kmain, ktail));
      _mm256_maskstore_pd(yrow + kmain, ktail, t);
    }
  }
}

// Masked column-block kernels: mask arrays are zero-padded to 4 lanes, so
// every j-block is processed uniformly — maskload suppresses out-of-range
// and inactive lanes, maskstore leaves them untouched.

void col_dots_avx2(const double* a, const double* b, std::size_t n,
                   std::size_t k, const double* mask, double* out,
                   double* scratch) {
  const std::size_t kp = padded_cols(k);
  const __m256d zero = _mm256_setzero_pd();
  for (std::size_t j = 0; j < 8 * kp; j += 4) _mm256_store_pd(scratch + j, zero);
  for (std::size_t i = 0; i < n; ++i) {
    const double* ar = a + i * k;
    const double* br = b + i * k;
    double* lane = scratch + (i & 7) * kp;
    for (std::size_t j = 0; j < kp; j += 4) {
      const __m256i m = _mm256_castpd_si256(_mm256_loadu_pd(mask + j));
      // Suppressed lanes load 0 and add fma(0, 0, acc) — the lane stays +0
      // because it starts at +0 and is only ever written back masked below.
      _mm256_store_pd(
          lane + j, _mm256_fmadd_pd(_mm256_maskload_pd(ar + j, m),
                                    _mm256_maskload_pd(br + j, m),
                                    _mm256_load_pd(lane + j)));
    }
  }
  for (std::size_t j = 0; j < kp; j += 4) {
    const __m256i m = _mm256_castpd_si256(_mm256_loadu_pd(mask + j));
    const __m256d l0 = _mm256_add_pd(_mm256_load_pd(scratch + j),
                                     _mm256_load_pd(scratch + 4 * kp + j));
    const __m256d l1 = _mm256_add_pd(_mm256_load_pd(scratch + kp + j),
                                     _mm256_load_pd(scratch + 5 * kp + j));
    const __m256d l2 = _mm256_add_pd(_mm256_load_pd(scratch + 2 * kp + j),
                                     _mm256_load_pd(scratch + 6 * kp + j));
    const __m256d l3 = _mm256_add_pd(_mm256_load_pd(scratch + 3 * kp + j),
                                     _mm256_load_pd(scratch + 7 * kp + j));
    const __m256d fold =
        _mm256_add_pd(_mm256_add_pd(l0, l2), _mm256_add_pd(l1, l3));
    _mm256_maskstore_pd(out + j, m, fold);
  }
}

void col_sums_avx2(const double* a, std::size_t n, std::size_t k,
                   const double* mask, double* out, double* scratch) {
  const std::size_t kp = padded_cols(k);
  const __m256d zero = _mm256_setzero_pd();
  for (std::size_t j = 0; j < 8 * kp; j += 4) _mm256_store_pd(scratch + j, zero);
  for (std::size_t i = 0; i < n; ++i) {
    const double* ar = a + i * k;
    double* lane = scratch + (i & 7) * kp;
    for (std::size_t j = 0; j < kp; j += 4) {
      const __m256i m = _mm256_castpd_si256(_mm256_loadu_pd(mask + j));
      _mm256_store_pd(lane + j,
                      _mm256_add_pd(_mm256_load_pd(lane + j),
                                    _mm256_maskload_pd(ar + j, m)));
    }
  }
  for (std::size_t j = 0; j < kp; j += 4) {
    const __m256i m = _mm256_castpd_si256(_mm256_loadu_pd(mask + j));
    const __m256d l0 = _mm256_add_pd(_mm256_load_pd(scratch + j),
                                     _mm256_load_pd(scratch + 4 * kp + j));
    const __m256d l1 = _mm256_add_pd(_mm256_load_pd(scratch + kp + j),
                                     _mm256_load_pd(scratch + 5 * kp + j));
    const __m256d l2 = _mm256_add_pd(_mm256_load_pd(scratch + 2 * kp + j),
                                     _mm256_load_pd(scratch + 6 * kp + j));
    const __m256d l3 = _mm256_add_pd(_mm256_load_pd(scratch + 3 * kp + j),
                                     _mm256_load_pd(scratch + 7 * kp + j));
    const __m256d fold =
        _mm256_add_pd(_mm256_add_pd(l0, l2), _mm256_add_pd(l1, l3));
    _mm256_maskstore_pd(out + j, m, fold);
  }
}

void axpy_cols_avx2(const double* c, const double* x, double* y, std::size_t n,
                    std::size_t k, const double* mask) {
  const std::size_t kp = padded_cols(k);
  for (std::size_t i = 0; i < n; ++i) {
    const double* xr = x + i * k;
    double* yr = y + i * k;
    for (std::size_t j = 0; j < kp; j += 4) {
      const __m256i m = _mm256_castpd_si256(_mm256_loadu_pd(mask + j));
      const __m256d t = _mm256_fmadd_pd(_mm256_loadu_pd(c + j),
                                        _mm256_maskload_pd(xr + j, m),
                                        _mm256_maskload_pd(yr + j, m));
      _mm256_maskstore_pd(yr + j, m, t);
    }
  }
}

void xpby_cols_avx2(const double* beta, const double* z, double* p,
                    std::size_t n, std::size_t k, const double* mask) {
  const std::size_t kp = padded_cols(k);
  for (std::size_t i = 0; i < n; ++i) {
    const double* zr = z + i * k;
    double* pr = p + i * k;
    for (std::size_t j = 0; j < kp; j += 4) {
      const __m256i m = _mm256_castpd_si256(_mm256_loadu_pd(mask + j));
      const __m256d t = _mm256_fmadd_pd(_mm256_loadu_pd(beta + j),
                                        _mm256_maskload_pd(pr + j, m),
                                        _mm256_maskload_pd(zr + j, m));
      _mm256_maskstore_pd(pr + j, m, t);
    }
  }
}

void sub_cols_avx2(const double* s, double* x, std::size_t n, std::size_t k,
                   const double* mask) {
  const std::size_t kp = padded_cols(k);
  for (std::size_t i = 0; i < n; ++i) {
    double* xr = x + i * k;
    for (std::size_t j = 0; j < kp; j += 4) {
      const __m256i m = _mm256_castpd_si256(_mm256_loadu_pd(mask + j));
      const __m256d t = _mm256_sub_pd(_mm256_maskload_pd(xr + j, m),
                                      _mm256_loadu_pd(s + j));
      _mm256_maskstore_pd(xr + j, m, t);
    }
  }
}

void diag_scale_cols_avx2(const double* d, const double* x, double* y,
                          std::size_t n, std::size_t k) {
  const std::size_t kmain = k & ~std::size_t{3};
  for (std::size_t i = 0; i < n; ++i) {
    const __m256d dv = _mm256_set1_pd(d[i]);
    const double* xr = x + i * k;
    double* yr = y + i * k;
    std::size_t j = 0;
    for (; j < kmain; j += 4)
      _mm256_storeu_pd(yr + j, _mm256_mul_pd(dv, _mm256_loadu_pd(xr + j)));
    for (; j < k; ++j) yr[j] = d[i] * xr[j];
  }
}

}  // namespace

const KernelTable* avx2_kernel_table() {
  static const KernelTable t{
      "avx2",          dot_avx2,        dot_self_avx2,
      sum_avx2,        distance2_avx2,  axpy_avx2,
      scale_avx2,      sub_scalar_avx2, xpby_avx2,
      spmv_range_avx2, spmm_range_avx2, col_dots_avx2,
      col_sums_avx2,   axpy_cols_avx2,  xpby_cols_avx2,
      sub_cols_avx2,   diag_scale_cols_avx2,
  };
  return &t;
}

}  // namespace cirstag::kernels

#else  // !(__AVX2__ && __FMA__)

namespace cirstag::kernels {
const KernelTable* avx2_kernel_table() { return nullptr; }
}  // namespace cirstag::kernels

#endif
