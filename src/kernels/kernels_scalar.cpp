// Portable kernel table: the canonical arithmetic, spelled as plain C++.
//
// This TU *defines* the bit-exact semantics the AVX2 TU must reproduce —
// fixed-shape lane trees for reductions, std::fma for contracted updates,
// branch-suppressed masked lanes (see kernels.hpp). Keep the two files in
// lockstep: any shape change here is a numerical change everywhere.

#include "kernels/kernels.hpp"

#include <cmath>

namespace cirstag::kernels {
namespace {

using kernels::reduce4_tree;
using kernels::reduce8_tree;

double dot_scalar(const double* a, const double* b, std::size_t n) {
  double acc[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  for (std::size_t i = 0; i < n; ++i)
    acc[i & 7] = std::fma(a[i], b[i], acc[i & 7]);
  return reduce8_tree(acc);
}

double dot_self_scalar(const double* a, std::size_t n) {
  double acc[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  for (std::size_t i = 0; i < n; ++i)
    acc[i & 7] = std::fma(a[i], a[i], acc[i & 7]);
  return reduce8_tree(acc);
}

double sum_scalar(const double* a, std::size_t n) {
  double acc[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  for (std::size_t i = 0; i < n; ++i) acc[i & 7] += a[i];
  return reduce8_tree(acc);
}

double distance2_scalar(const double* a, const double* b, std::size_t n) {
  double acc[4] = {0, 0, 0, 0};
  for (std::size_t i = 0; i < n; ++i) {
    const double d = a[i] - b[i];
    acc[i & 3] = std::fma(d, d, acc[i & 3]);
  }
  return reduce4_tree(acc);
}

void axpy_scalar(double alpha, const double* x, double* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] = std::fma(alpha, x[i], y[i]);
}

void scale_scalar(double alpha, double* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] *= alpha;
}

void sub_scalar_scalar(double m, double* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] -= m;
}

void xpby_scalar(double beta, const double* z, double* p, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) p[i] = std::fma(beta, p[i], z[i]);
}

void spmv_range_scalar(const std::size_t* row_ptr, const std::uint32_t* col_idx,
                       const double* values, const double* x, double alpha,
                       double* y, std::size_t lo, std::size_t hi) {
  for (std::size_t r = lo; r < hi; ++r) {
    double acc[4] = {0, 0, 0, 0};
    const std::size_t b = row_ptr[r], e = row_ptr[r + 1];
    for (std::size_t t = b; t < e; ++t)
      acc[(t - b) & 3] = std::fma(values[t], x[col_idx[t]], acc[(t - b) & 3]);
    y[r] = std::fma(alpha, reduce4_tree(acc), y[r]);
  }
}

void spmm_range_scalar(const std::size_t* row_ptr, const std::uint32_t* col_idx,
                       const double* values, const double* x, std::size_t ldx,
                       double alpha, double* y, std::size_t ldy, std::size_t k,
                       double* acc, std::size_t lo, std::size_t hi) {
  const std::size_t kp = padded_cols(k);
  for (std::size_t r = lo; r < hi; ++r) {
    const std::size_t b = row_ptr[r], e = row_ptr[r + 1];
    for (std::size_t j = 0; j < 4 * kp; ++j) acc[j] = 0.0;
    for (std::size_t t = b; t < e; ++t) {
      const double v = values[t];
      const double* xrow = x + static_cast<std::size_t>(col_idx[t]) * ldx;
      double* lane = acc + ((t - b) & 3) * kp;
      for (std::size_t j = 0; j < k; ++j)
        lane[j] = std::fma(v, xrow[j], lane[j]);
    }
    double* yrow = y + r * ldy;
    for (std::size_t j = 0; j < k; ++j) {
      const double fold =
          (acc[j] + acc[2 * kp + j]) + (acc[kp + j] + acc[3 * kp + j]);
      yrow[j] = std::fma(alpha, fold, yrow[j]);
    }
  }
}

void col_dots_scalar(const double* a, const double* b, std::size_t n,
                     std::size_t k, const double* mask, double* out,
                     double* scratch) {
  const std::size_t kp = padded_cols(k);
  for (std::size_t j = 0; j < 8 * kp; ++j) scratch[j] = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double* ar = a + i * k;
    const double* br = b + i * k;
    double* lane = scratch + (i & 7) * kp;
    for (std::size_t j = 0; j < k; ++j)
      if (mask_on(mask[j])) lane[j] = std::fma(ar[j], br[j], lane[j]);
  }
  for (std::size_t j = 0; j < k; ++j) {
    if (!mask_on(mask[j])) continue;
    const double acc[8] = {scratch[j],          scratch[kp + j],
                           scratch[2 * kp + j], scratch[3 * kp + j],
                           scratch[4 * kp + j], scratch[5 * kp + j],
                           scratch[6 * kp + j], scratch[7 * kp + j]};
    out[j] = reduce8_tree(acc);
  }
}

void col_sums_scalar(const double* a, std::size_t n, std::size_t k,
                     const double* mask, double* out, double* scratch) {
  const std::size_t kp = padded_cols(k);
  for (std::size_t j = 0; j < 8 * kp; ++j) scratch[j] = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double* ar = a + i * k;
    double* lane = scratch + (i & 7) * kp;
    for (std::size_t j = 0; j < k; ++j)
      if (mask_on(mask[j])) lane[j] += ar[j];
  }
  for (std::size_t j = 0; j < k; ++j) {
    if (!mask_on(mask[j])) continue;
    const double acc[8] = {scratch[j],          scratch[kp + j],
                           scratch[2 * kp + j], scratch[3 * kp + j],
                           scratch[4 * kp + j], scratch[5 * kp + j],
                           scratch[6 * kp + j], scratch[7 * kp + j]};
    out[j] = reduce8_tree(acc);
  }
}

void axpy_cols_scalar(const double* c, const double* x, double* y,
                      std::size_t n, std::size_t k, const double* mask) {
  for (std::size_t i = 0; i < n; ++i) {
    const double* xr = x + i * k;
    double* yr = y + i * k;
    for (std::size_t j = 0; j < k; ++j)
      if (mask_on(mask[j])) yr[j] = std::fma(c[j], xr[j], yr[j]);
  }
}

void xpby_cols_scalar(const double* beta, const double* z, double* p,
                      std::size_t n, std::size_t k, const double* mask) {
  for (std::size_t i = 0; i < n; ++i) {
    const double* zr = z + i * k;
    double* pr = p + i * k;
    for (std::size_t j = 0; j < k; ++j)
      if (mask_on(mask[j])) pr[j] = std::fma(beta[j], pr[j], zr[j]);
  }
}

void sub_cols_scalar(const double* m, double* x, std::size_t n, std::size_t k,
                     const double* mask) {
  for (std::size_t i = 0; i < n; ++i) {
    double* xr = x + i * k;
    for (std::size_t j = 0; j < k; ++j)
      if (mask_on(mask[j])) xr[j] -= m[j];
  }
}

void diag_scale_cols_scalar(const double* d, const double* x, double* y,
                            std::size_t n, std::size_t k) {
  for (std::size_t i = 0; i < n; ++i) {
    const double di = d[i];
    const double* xr = x + i * k;
    double* yr = y + i * k;
    for (std::size_t j = 0; j < k; ++j) yr[j] = di * xr[j];
  }
}

}  // namespace

const KernelTable& scalar_kernel_table() {
  static const KernelTable t{
      "scalar",          dot_scalar,        dot_self_scalar,
      sum_scalar,        distance2_scalar,  axpy_scalar,
      scale_scalar,      sub_scalar_scalar, xpby_scalar,
      spmv_range_scalar, spmm_range_scalar, col_dots_scalar,
      col_sums_scalar,   axpy_cols_scalar,  xpby_cols_scalar,
      sub_cols_scalar,   diag_scale_cols_scalar,
  };
  return t;
}

}  // namespace cirstag::kernels
