// Kernel-table dispatch: pick scalar vs AVX2 once, cache the choice in an
// atomic pointer. Resolution order: explicit set_simd_mode() (the CLI's
// --simd flag) wins, otherwise the CIRSTAG_SIMD environment variable,
// otherwise "auto" (AVX2+FMA when the CPU reports both).

#include "kernels/kernels.hpp"

#include <cstdlib>

namespace cirstag::kernels {

namespace detail {
std::atomic<const KernelTable*> g_table{nullptr};
}  // namespace detail

bool avx2_available() {
  if (avx2_kernel_table() == nullptr) return false;
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

namespace {

const KernelTable* pick(const std::string& mode, bool& known) {
  known = true;
  if (mode == "off" || mode == "scalar") return &scalar_kernel_table();
  if (mode == "auto" || mode == "on" || mode == "avx2") {
    if (avx2_available()) return avx2_kernel_table();
    return &scalar_kernel_table();
  }
  known = false;
  return nullptr;
}

}  // namespace

namespace detail {
const KernelTable& resolve_table() {
  const char* env = std::getenv("CIRSTAG_SIMD");
  bool known = false;
  const KernelTable* t = env != nullptr ? pick(env, known) : nullptr;
  if (t == nullptr) {
    bool ignored = false;
    t = pick("auto", ignored);
  }
  // Benign race: concurrent first calls resolve to the same table.
  g_table.store(t, std::memory_order_release);
  return *t;
}
}  // namespace detail

bool set_simd_mode(const std::string& mode) {
  bool known = false;
  const KernelTable* t = pick(mode, known);
  if (!known) return false;
  detail::g_table.store(t, std::memory_order_release);
  // "avx2" asked for the vector table explicitly; report whether it stuck.
  if (mode == "avx2") return avx2_available();
  return true;
}

}  // namespace cirstag::kernels
