// Runtime-dispatched SIMD kernel layer.
//
// Every hot elementwise/reduction loop in linalg, graphs, circuit and gnn
// routes through the function table below. Two implementations exist:
//
//   * scalar  — portable C++, always available,
//   * avx2    — AVX2 + FMA, compiled in its own TU with -mavx2 -mfma and
//               selected at startup only when the CPU supports both.
//
// The table is resolved once (CIRSTAG_SIMD env var, overridable via
// set_simd_mode(), surfaced as the --simd CLI flag) and cached in an atomic
// pointer; per-call overhead is one relaxed load plus an indirect call.
//
// ## Bit-identity contract
//
// Both implementations compute the *same* floating-point result for every
// input, bit for bit. That is only possible because the canonical arithmetic
// is defined in SIMD-friendly terms and the scalar path mirrors it exactly:
//
//   * Reductions use a fixed-shape lane tree, independent of n and of the
//     implementation. An 8-lane reduction accumulates element i into lane
//     (i & 7) with fma, then folds lanes as
//         l[j] = acc[j] + acc[j + 4]   (j = 0..3)
//         result = (l[0] + l[2]) + (l[1] + l[3])
//     which is precisely what two 4-wide vector accumulators produce after
//     a vertical add and the standard hadd-free horizontal fold. A 4-lane
//     reduction (sparse row dots, small-dimension distances) accumulates
//     into lane (i & 3) and folds (acc[0] + acc[2]) + (acc[1] + acc[3]).
//   * Elementwise updates contract multiply-add: y[i] = fma(a, x[i], y[i]).
//     The scalar path spells std::fma so it matches vfmadd exactly.
//   * Masked/tail lanes are *suppressed*, never multiplied by zero: the AVX2
//     path uses maskload + blend/maskstore, the scalar path branches. (A
//     multiply-by-zero tail would differ on signed zeros and NaN payloads:
//     fma(0, x, -0.0) = +0.0.)
//
// Consequently `--simd auto` and `--simd off` are byte-identical, and both
// are independent of thread count (the runtime layer's fixed-grain chunking
// handles the rest). The lane-tree result *does* differ from the pre-kernel
// scalar seed (sequential left fold, no contraction); bench/MANIFEST_baseline
// was re-baselined once for that change — see DESIGN.md §11.
//
// ## Masked column-block kernels
//
// The *_cols kernels operate on row-major n x k blocks (block-CG multivectors)
// with a per-column mask. Masks are arrays of double bit patterns: kMaskOn
// (all bits set — MSB drives VMASKMOVPD/VBLENDVPD) for active columns, 0.0
// for inactive ones. Mask arrays and the small k-length vectors they gate
// (coefficients, outputs) must be padded to a multiple of 4 doubles with
// zero/inactive lanes, so the vector loop never reads past them; the big
// n x k operands need no padding (tail lanes are masked off).

#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <cstddef>
#include <string>

namespace cirstag::kernels {

/// Mask element for an active column: all bits set (MSB included).
inline constexpr std::uint64_t kMaskOnBits = ~std::uint64_t{0};
inline const double kMaskOn = std::bit_cast<double>(kMaskOnBits);
/// Mask element for an inactive column.
inline constexpr double kMaskOff = 0.0;

/// True if a mask element enables its lane (MSB set, matching VBLENDVPD).
inline bool mask_on(double m) {
  return (std::bit_cast<std::uint64_t>(m) >> 63) != 0;
}

/// Round k up to the 4-lane padding the masked column kernels require.
inline std::size_t padded_cols(std::size_t k) { return (k + 3) & ~std::size_t{3}; }

/// The canonical 8-lane horizontal fold: vertical add of the two 4-wide
/// halves, then the 4-lane tree. Exposed so strided mirrors (e.g. per-column
/// residual tails in block-CG) can reproduce the reduction shape in plain
/// code.
inline double reduce8_tree(const double acc[8]) {
  const double l0 = acc[0] + acc[4];
  const double l1 = acc[1] + acc[5];
  const double l2 = acc[2] + acc[6];
  const double l3 = acc[3] + acc[7];
  return (l0 + l2) + (l1 + l3);
}

/// The canonical 4-lane horizontal fold.
inline double reduce4_tree(const double acc[4]) {
  return (acc[0] + acc[2]) + (acc[1] + acc[3]);
}

struct KernelTable {
  const char* isa;  // "avx2" or "scalar"

  // 8-lane reductions.
  double (*dot)(const double* a, const double* b, std::size_t n);
  double (*dot_self)(const double* a, std::size_t n);
  double (*sum)(const double* a, std::size_t n);
  // 4-lane reduction (small dimensions: embedding distances).
  double (*distance2)(const double* a, const double* b, std::size_t n);

  // Elementwise.
  void (*axpy)(double alpha, const double* x, double* y, std::size_t n);
  void (*scale)(double alpha, double* x, std::size_t n);
  void (*sub_scalar)(double m, double* x, std::size_t n);
  //   p[i] = fma(beta, p[i], z[i]) — the CG direction update.
  void (*xpby)(double beta, const double* z, double* p, std::size_t n);

  // CSR rows [lo, hi): y[r] = fma(alpha, row_dot(r), y[r]); row dots use the
  // 4-lane tree over nnz position (t - row_begin) & 3.
  void (*spmv_range)(const std::size_t* row_ptr, const std::uint32_t* col_idx,
                     const double* values, const double* x, double alpha,
                     double* y, std::size_t lo, std::size_t hi);
  // Multi-RHS CSR rows [lo, hi). Each column j reduces its row dot through
  // the SAME 4-lane nnz tree as spmv_range (lane = nnz position & 3), so
  // column j of the result is bit-identical to spmv on X.col(j). `acc` is
  // caller scratch of 4 * padded_cols(k) doubles (lane-major).
  void (*spmm_range)(const std::size_t* row_ptr, const std::uint32_t* col_idx,
                     const double* values, const double* x, std::size_t ldx,
                     double alpha, double* y, std::size_t ldy, std::size_t k,
                     double* acc, std::size_t lo, std::size_t hi);

  // Row-major n x k column-block kernels; `mask`/`out`/coefficient arrays are
  // padded_cols(k) long (see header comment).
  //
  // The reductions assign row i to virtual lane (i & 7) and fold with the
  // 8-lane tree — the same shape as dot/dot_self/sum over a contiguous
  // vector — so each column's result is bit-identical to the single-vector
  // kernel on that column. `scratch` is caller-provided, 8 * padded_cols(k)
  // doubles, lane-major.
  //   out[j] = dot-tree_i(a[i*k+j] * b[i*k+j]) for masked j (overwritten)
  void (*col_dots)(const double* a, const double* b, std::size_t n,
                   std::size_t k, const double* mask, double* out,
                   double* scratch);
  //   out[j] = sum-tree_i(a[i*k+j]) for masked j (overwritten)
  void (*col_sums)(const double* a, std::size_t n, std::size_t k,
                   const double* mask, double* out, double* scratch);
  //   y[i*k+j] = fma(c[j], x[i*k+j], y[i*k+j]) for masked j
  void (*axpy_cols)(const double* c, const double* x, double* y, std::size_t n,
                    std::size_t k, const double* mask);
  //   p[i*k+j] = fma(beta[j], p[i*k+j], z[i*k+j]) for masked j
  void (*xpby_cols)(const double* beta, const double* z, double* p,
                    std::size_t n, std::size_t k, const double* mask);
  //   x[i*k+j] -= m[j] for masked j
  void (*sub_cols)(const double* m, double* x, std::size_t n, std::size_t k,
                   const double* mask);

  // Row-scaled block copy, y[i*k+j] = d[i] * x[i*k+j] — the Jacobi block
  // preconditioner. Unmasked and a plain multiply (not fma), matching the
  // single-vector apply y[i] = d[i] * x[i] bit for bit. No padding needed.
  void (*diag_scale_cols)(const double* d, const double* x, double* y,
                          std::size_t n, std::size_t k);
};

namespace detail {
extern std::atomic<const KernelTable*> g_table;
const KernelTable& resolve_table();
}  // namespace detail

/// The active kernel table (resolved on first use from CIRSTAG_SIMD).
inline const KernelTable& table() {
  const KernelTable* t = detail::g_table.load(std::memory_order_acquire);
  return t != nullptr ? *t : detail::resolve_table();
}

/// Select the dispatch mode: "auto" (use AVX2/FMA when the CPU has it),
/// "off"/"scalar" (force the portable path), "avx2" (force AVX2; falls back
/// to scalar with a false return when unsupported). Returns false on an
/// unknown mode string. Callable at any time; the CLI applies --simd /
/// CIRSTAG_SIMD through here before any work runs.
bool set_simd_mode(const std::string& mode);

/// ISA of the active table: "avx2" or "scalar".
inline const char* active_isa() { return table().isa; }

/// True when the running CPU (and this build) can dispatch the AVX2 table.
bool avx2_available();

/// The implementation tables themselves, exposed for the scalar-vs-SIMD
/// parity tests (every kernel must agree bit for bit across the two).
const KernelTable& scalar_kernel_table();
/// nullptr when this build carries no AVX2 TU (non-x86 targets).
const KernelTable* avx2_kernel_table();

// ---- Convenience wrappers -------------------------------------------------

inline double dot(const double* a, const double* b, std::size_t n) {
  return table().dot(a, b, n);
}
inline double dot_self(const double* a, std::size_t n) {
  return table().dot_self(a, n);
}
inline double sum(const double* a, std::size_t n) { return table().sum(a, n); }
inline double distance2(const double* a, const double* b, std::size_t n) {
  return table().distance2(a, b, n);
}
inline void axpy(double alpha, const double* x, double* y, std::size_t n) {
  table().axpy(alpha, x, y, n);
}
inline void scale(double alpha, double* x, std::size_t n) {
  table().scale(alpha, x, n);
}
inline void sub_scalar(double m, double* x, std::size_t n) {
  table().sub_scalar(m, x, n);
}
inline void xpby(double beta, const double* z, double* p, std::size_t n) {
  table().xpby(beta, z, p, n);
}

}  // namespace cirstag::kernels
