#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "circuit/netlist.hpp"
#include "core/sweep.hpp"
#include "gnn/timing_gnn.hpp"

namespace cirstag::serve {

/// Options of one /load request.
struct LoadOptions {
  std::size_t gnn_epochs = 300;
  std::size_t gnn_hidden = 24;
  /// Engine mode for analyze/sweep requests on this circuit: exact keeps
  /// every served report byte-identical to CirStag::analyze on the same
  /// variant; fast trades kFastScoreDriftTolerance score drift for
  /// throughput (see core/sweep.hpp).
  bool exact = true;
};

/// One resident circuit: netlist + trained GNN surrogate + batched sweep
/// engine whose captured baseline holds the warm state every request wants —
/// baseline spectral embedding, baseline CirSTAG report, incremental-STA and
/// GNN snapshots, and the fingerprint-keyed LaplacianSolverCache.
///
/// Thread contract: after load() publishes a record, `netlist`, `options`,
/// scalar stats, and `engine->baseline()` are immutable — any number of
/// threads may read them without synchronization (the serving layer's
/// top-k / score-region paths do exactly that, via the const helpers in
/// core/query.hpp). `engine->run()` mutates engine-internal caches and must
/// be serialized per record: hold `run_mutex` around it.
struct CircuitRecord {
  /// Netlist has no default constructor (it must be born pointing at a cell
  /// library), so records are created from a fully parsed netlist.
  explicit CircuitRecord(circuit::Netlist parsed) : netlist(std::move(parsed)) {}

  std::string name;
  circuit::Netlist netlist;
  std::unique_ptr<gnn::TimingGnn> model;
  std::unique_ptr<core::SweepEngine> engine;
  LoadOptions options;
  double train_r2 = 0.0;
  double train_seconds = 0.0;
  double baseline_seconds = 0.0;
  std::mutex run_mutex;  ///< serializes engine->run() across requests
};

/// Name-keyed registry of resident circuits.
///
/// load() does the expensive build (netlist parse, GNN training, baseline
/// capture) outside the registry lock, so lookups and other loads proceed
/// while a circuit warms up; the name is reserved first so concurrent loads
/// of the same name fail fast with "already loaded". Records are handed out
/// as shared_ptr: an unload() only drops the registry's reference, requests
/// already holding the record finish safely against live state.
class CircuitRegistry {
 public:
  struct LoadResult {
    std::shared_ptr<CircuitRecord> record;  ///< null on failure
    std::string error;                      ///< reason when null
    bool name_conflict = false;             ///< 409 vs 422 discrimination
  };

  /// Load from a netlist file path ("cirstag-netlist 1" format).
  [[nodiscard]] LoadResult load_from_path(const std::string& name,
                                          const std::string& path,
                                          const LoadOptions& options);
  /// Load from inline netlist text (the /load {"netlist": "..."} form).
  [[nodiscard]] LoadResult load_from_text(const std::string& name,
                                          const std::string& netlist_text,
                                          const LoadOptions& options);

  /// Restore a resident circuit from a binary snapshot (io/snapshot, the
  /// /load {"snapshot": "..."} form). No GNN training and no eigensolves
  /// run — the trained weights and warm sweep baseline are adopted from the
  /// file; LoadOptions (mode, epochs, hidden) come from the snapshot too.
  [[nodiscard]] LoadResult load_from_snapshot(const std::string& name,
                                              const std::string& path);

  /// Resident record by name, or null. Counts serve.registry.hits/misses;
  /// circuits still warming up count as misses.
  [[nodiscard]] std::shared_ptr<CircuitRecord> lookup(
      const std::string& name) const;

  /// Drop the registry's reference; false when the name is not resident.
  bool unload(const std::string& name);

  /// Names of fully loaded circuits, sorted.
  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] std::size_t size() const;

  /// Summary of every fully loaded circuit (the /health payload). Unlike
  /// lookup(), this never touches the hit/miss counters — health probes must
  /// not perturb the deterministic registry accounting the bench gate pins.
  struct CircuitInfo {
    std::string name;
    std::size_t pins = 0;
    std::size_t gates = 0;
    bool exact = true;
    double train_r2 = 0.0;
  };
  [[nodiscard]] std::vector<CircuitInfo> infos() const;

 private:
  LoadResult load_impl(const std::string& name,
                       const std::string& path_or_text, bool is_path,
                       const LoadOptions& options);

  mutable std::mutex mutex_;
  /// nullptr value = name reserved by an in-flight load.
  std::map<std::string, std::shared_ptr<CircuitRecord>> circuits_;
};

}  // namespace cirstag::serve
