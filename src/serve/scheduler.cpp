#include "serve/scheduler.hpp"

#include <algorithm>
#include <exception>
#include <map>

#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/request.hpp"
#include "obs/window.hpp"

namespace cirstag::serve {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

const std::vector<double>& latency_bounds_ms() {
  static const std::vector<double> bounds{1,   2,   5,    10,   20,    50,
                                          100, 200, 500,  1000, 2000,  5000,
                                          15000, 60000};
  return bounds;
}

/// Per-endpoint latency histogram, registered on first use. Endpoint names
/// come from the fixed routing table, so the map stays tiny.
obs::Histogram& latency_histogram(const std::string& endpoint) {
  static std::mutex mutex;
  static std::map<std::string, std::unique_ptr<obs::Histogram>> histograms;
  std::lock_guard<std::mutex> lock(mutex);
  auto& slot = histograms[endpoint];
  if (!slot) {
    slot = std::make_unique<obs::Histogram>("serve.latency_ms." + endpoint,
                                            latency_bounds_ms());
  }
  return *slot;
}

/// Rolling-window twins of the cumulative per-endpoint telemetry: the
/// /metrics summary quantiles and /stats QPS read these, so they describe
/// the last ~2 minutes rather than the process lifetime.
obs::WindowedHistogram& windowed_latency(const std::string& endpoint) {
  return obs::WindowedRegistry::global().histogram(
      "serve.window.latency_ms." + endpoint, latency_bounds_ms());
}

obs::WindowedCounter& windowed_requests(const std::string& endpoint) {
  return obs::WindowedRegistry::global().counter("serve.window.requests." +
                                                 endpoint);
}

obs::Gauge& queue_depth_gauge() {
  static obs::Gauge gauge("serve.scheduler.queue_depth");
  return gauge;
}

}  // namespace

Scheduler::Scheduler(Options options) : options_(options) {
  options_.workers = std::max<std::size_t>(1, options_.workers);
  options_.max_batch_size = std::max<std::size_t>(1, options_.max_batch_size);
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

Scheduler::~Scheduler() { stop(); }

void Scheduler::complete(Job& job, JobResponse response) {
  static obs::Counter served("serve.requests_served");
  const int status = response.status;
  // All telemetry lands before the promise resolves: a client that has its
  // response (and immediately reads /metrics) must see this job counted.
  served.add();
  const double latency_ms = ms_since(job.enqueued);
  latency_histogram(job.endpoint).observe(latency_ms);
  windowed_latency(job.endpoint).observe(latency_ms);
  windowed_requests(job.endpoint).add(1);
  if (status == 504) {
    static obs::Counter expired("serve.expired_504");
    expired.add();
  } else if (status >= 500) {
    static obs::Counter failed("serve.failed_5xx");
    failed.add();
  }
  if (job.trace) {
    job.trace->set_deadline_slack_us(
        std::chrono::duration<double, std::micro>(job.deadline - Clock::now())
            .count());
    job.trace->finish(status);
    obs::RequestLog::global().record(*job.trace);
  }
  job.promise.set_value(std::move(response));
}

Scheduler::SubmitResult Scheduler::submit(Job job) {
  SubmitResult result;
  if (job.deadline == Clock::time_point{})
    job.deadline = Clock::now() +
                   std::chrono::milliseconds(options_.default_deadline_ms);
  job.enqueued = Clock::now();
  result.future = job.promise.get_future();

  std::unique_lock<std::mutex> lock(mutex_);
  if (draining_ || stopping_) {
    static obs::Counter rejected("serve.rejected_503");
    rejected.add();
    result.reject_status = 503;
    result.reject_detail = "server is draining";
    return result;
  }
  if (queue_.size() >= options_.queue_capacity) {
    static obs::Counter rejected("serve.rejected_429");
    rejected.add();
    result.reject_status = 429;
    result.reject_detail =
        "admission queue full (" + std::to_string(options_.queue_capacity) +
        " requests queued)";
    return result;
  }
  queue_.push_back(std::move(job));
  queue_depth_gauge().set(static_cast<double>(queue_.size()));
  result.accepted = true;
  lock.unlock();
  cv_work_.notify_one();
  return result;
}

void Scheduler::dispatch(std::unique_lock<std::mutex>& lock) {
  static obs::Counter batches("serve.scheduler.batches_formed");
  static obs::Counter batched_requests("serve.scheduler.batched_requests");
  static obs::Histogram batch_size(
      "serve.scheduler.batch_size",
      std::vector<double>{1, 2, 3, 4, 6, 8, 12, 16, 24, 32});

  std::vector<Job> group;
  group.push_back(std::move(queue_.front()));
  queue_.pop_front();
  const bool batchable =
      !group.front().batch_key.empty() && group.front().run_batch != nullptr;
  if (batchable) {
    // Pull every queued job with the same key (up to the batch cap),
    // preserving the relative order of everything left behind. The key is
    // copied: push_back below reallocates `group`, which would dangle a
    // reference into its front element.
    const std::string key = group.front().batch_key;
    for (auto it = queue_.begin();
         it != queue_.end() && group.size() < options_.max_batch_size;) {
      if (it->batch_key == key && it->run_batch != nullptr) {
        group.push_back(std::move(*it));
        it = queue_.erase(it);
      } else {
        ++it;
      }
    }
  }
  queue_depth_gauge().set(static_cast<double>(queue_.size()));
  ++active_;
  lock.unlock();

  // Expire lapsed deadlines without executing them; survivors execute.
  // Every traced group member — expired or live — gets its queue segment
  // closed here: time from enqueue to the moment a worker picked it up.
  std::vector<Job*> live;
  live.reserve(group.size());
  const auto now = Clock::now();
  const double dispatch_us = obs::to_process_us(now);
  for (Job& job : group) {
    if (job.trace) {
      const double enqueued_us = obs::to_process_us(job.enqueued);
      const std::uint32_t span = job.trace->open_span(
          "queue", enqueued_us, obs::RequestContext::kNoParent);
      job.trace->close_span(span, dispatch_us);
      job.trace->set_queue_us(dispatch_us - enqueued_us);
    }
    if (job.deadline < now) {
      complete(job, {504, "{\"error\": \"deadline expired before "
                          "execution\"}"});
    } else {
      live.push_back(&job);
    }
  }

  if (!live.empty()) {
    // Each live member gets a "compute" span covering the (possibly shared)
    // execution. The batch leader's context is bound to this thread with the
    // leader's compute node as parent, so TraceSpans inside the solver nest
    // under it — including from pool workers, via the Job handoff in
    // runtime/thread_pool. compute_us excludes whatever the executor
    // attributed to rendering (RenderScope per batch member).
    const double exec_start_us = obs::process_now_us();
    std::vector<std::uint32_t> compute_spans(live.size(),
                                             obs::RequestContext::kNoParent);
    for (std::size_t i = 0; i < live.size(); ++i) {
      if (live[i]->trace) {
        compute_spans[i] = live[i]->trace->open_span(
            "compute", exec_start_us, obs::RequestContext::kNoParent);
      }
    }
    const auto close_compute = [&](std::size_t i) {
      Job& job = *live[i];
      if (!job.trace) return;
      const double end_us = obs::process_now_us();
      job.trace->close_span(compute_spans[i], end_us);
      job.trace->set_compute_us(end_us - exec_start_us -
                                job.trace->render_us());
    };
    try {
      if (batchable) {
        batches.add();
        batched_requests.add(live.size());
        batch_size.observe(static_cast<double>(live.size()));
        std::vector<JobResponse> responses;
        {
          const obs::ScopedRequestBinding binding(live.front()->trace.get(),
                                                  compute_spans.front());
          responses = live.front()->run_batch(live);
        }
        for (std::size_t i = 0; i < live.size(); ++i) {
          close_compute(i);
          complete(*live[i], i < responses.size()
                                 ? std::move(responses[i])
                                 : JobResponse{500,
                                               "{\"error\": \"batch executor "
                                               "returned too few responses\"}"});
        }
      } else {
        JobResponse response;
        {
          const obs::ScopedRequestBinding binding(live.front()->trace.get(),
                                                  compute_spans.front());
          response = live.front()->run();
        }
        close_compute(0);
        complete(*live.front(), std::move(response));
      }
    } catch (const std::exception& e) {
      std::string body = "{\"error\": \"internal error\", \"detail\": \"";
      for (const char c : std::string(e.what())) {
        if (c == '"' || c == '\\') body += '\\';
        if (c >= 0x20) body += c;
      }
      body += "\"}";
      for (std::size_t i = 0; i < live.size(); ++i) {
        // complete() is idempotent-unsafe (promise single-set); jobs the
        // batch path already completed cannot reach here because the
        // exception aborts before any complete() call in run_batch's loop —
        // responses are only assigned after the executor returns.
        close_compute(i);
        complete(*live[i], {500, body});
      }
    }
  }

  lock.lock();
  --active_;
}

void Scheduler::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    cv_work_.wait(lock, [this] {
      return stopping_ || (!paused_ && !queue_.empty());
    });
    if (queue_.empty() || paused_) {
      if (stopping_) return;
      continue;
    }
    dispatch(lock);
    if (queue_.empty() && active_ == 0) cv_idle_.notify_all();
  }
}

void Scheduler::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  draining_ = true;
  paused_ = false;  // a paused scheduler must still finish queued work
  cv_work_.notify_all();
  cv_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void Scheduler::stop() {
  drain();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
}

void Scheduler::pause() {
  std::lock_guard<std::mutex> lock(mutex_);
  paused_ = true;
}

void Scheduler::resume() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = false;
  }
  cv_work_.notify_all();
}

std::size_t Scheduler::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

bool Scheduler::draining() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return draining_ || stopping_;
}

}  // namespace cirstag::serve
