#include "serve/scheduler.hpp"

#include <algorithm>
#include <exception>
#include <map>

#include "obs/metrics.hpp"

namespace cirstag::serve {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// Per-endpoint latency histogram, registered on first use. Endpoint names
/// come from the fixed routing table, so the map stays tiny.
obs::Histogram& latency_histogram(const std::string& endpoint) {
  static std::mutex mutex;
  static std::map<std::string, std::unique_ptr<obs::Histogram>> histograms;
  std::lock_guard<std::mutex> lock(mutex);
  auto& slot = histograms[endpoint];
  if (!slot) {
    slot = std::make_unique<obs::Histogram>(
        "serve.latency_ms." + endpoint,
        std::vector<double>{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000,
                            5000, 15000, 60000});
  }
  return *slot;
}

obs::Gauge& queue_depth_gauge() {
  static obs::Gauge gauge("serve.scheduler.queue_depth");
  return gauge;
}

}  // namespace

Scheduler::Scheduler(Options options) : options_(options) {
  options_.workers = std::max<std::size_t>(1, options_.workers);
  options_.max_batch_size = std::max<std::size_t>(1, options_.max_batch_size);
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

Scheduler::~Scheduler() { stop(); }

void Scheduler::complete(Job& job, JobResponse response) {
  static obs::Counter served("serve.requests_served");
  const int status = response.status;
  // All telemetry lands before the promise resolves: a client that has its
  // response (and immediately reads /metrics) must see this job counted.
  served.add();
  latency_histogram(job.endpoint).observe(ms_since(job.enqueued));
  if (status == 504) {
    static obs::Counter expired("serve.expired_504");
    expired.add();
  } else if (status >= 500) {
    static obs::Counter failed("serve.failed_5xx");
    failed.add();
  }
  job.promise.set_value(std::move(response));
}

Scheduler::SubmitResult Scheduler::submit(Job job) {
  SubmitResult result;
  if (job.deadline == Clock::time_point{})
    job.deadline = Clock::now() +
                   std::chrono::milliseconds(options_.default_deadline_ms);
  job.enqueued = Clock::now();
  result.future = job.promise.get_future();

  std::unique_lock<std::mutex> lock(mutex_);
  if (draining_ || stopping_) {
    static obs::Counter rejected("serve.rejected_503");
    rejected.add();
    result.reject_status = 503;
    result.reject_detail = "server is draining";
    return result;
  }
  if (queue_.size() >= options_.queue_capacity) {
    static obs::Counter rejected("serve.rejected_429");
    rejected.add();
    result.reject_status = 429;
    result.reject_detail =
        "admission queue full (" + std::to_string(options_.queue_capacity) +
        " requests queued)";
    return result;
  }
  queue_.push_back(std::move(job));
  queue_depth_gauge().set(static_cast<double>(queue_.size()));
  result.accepted = true;
  lock.unlock();
  cv_work_.notify_one();
  return result;
}

void Scheduler::dispatch(std::unique_lock<std::mutex>& lock) {
  static obs::Counter batches("serve.scheduler.batches_formed");
  static obs::Counter batched_requests("serve.scheduler.batched_requests");
  static obs::Histogram batch_size(
      "serve.scheduler.batch_size",
      std::vector<double>{1, 2, 3, 4, 6, 8, 12, 16, 24, 32});

  std::vector<Job> group;
  group.push_back(std::move(queue_.front()));
  queue_.pop_front();
  const bool batchable =
      !group.front().batch_key.empty() && group.front().run_batch != nullptr;
  if (batchable) {
    // Pull every queued job with the same key (up to the batch cap),
    // preserving the relative order of everything left behind. The key is
    // copied: push_back below reallocates `group`, which would dangle a
    // reference into its front element.
    const std::string key = group.front().batch_key;
    for (auto it = queue_.begin();
         it != queue_.end() && group.size() < options_.max_batch_size;) {
      if (it->batch_key == key && it->run_batch != nullptr) {
        group.push_back(std::move(*it));
        it = queue_.erase(it);
      } else {
        ++it;
      }
    }
  }
  queue_depth_gauge().set(static_cast<double>(queue_.size()));
  ++active_;
  lock.unlock();

  // Expire lapsed deadlines without executing them; survivors execute.
  std::vector<Job*> live;
  live.reserve(group.size());
  const auto now = Clock::now();
  for (Job& job : group) {
    if (job.deadline < now) {
      complete(job, {504, "{\"error\": \"deadline expired before "
                          "execution\"}"});
    } else {
      live.push_back(&job);
    }
  }

  if (!live.empty()) {
    try {
      if (batchable) {
        batches.add();
        batched_requests.add(live.size());
        batch_size.observe(static_cast<double>(live.size()));
        std::vector<JobResponse> responses = live.front()->run_batch(live);
        for (std::size_t i = 0; i < live.size(); ++i) {
          complete(*live[i], i < responses.size()
                                 ? std::move(responses[i])
                                 : JobResponse{500,
                                               "{\"error\": \"batch executor "
                                               "returned too few responses\"}"});
        }
      } else {
        complete(*live.front(), live.front()->run());
      }
    } catch (const std::exception& e) {
      std::string body = "{\"error\": \"internal error\", \"detail\": \"";
      for (const char c : std::string(e.what())) {
        if (c == '"' || c == '\\') body += '\\';
        if (c >= 0x20) body += c;
      }
      body += "\"}";
      for (Job* job : live) {
        // complete() is idempotent-unsafe (promise single-set); jobs the
        // batch path already completed cannot reach here because the
        // exception aborts before any complete() call in run_batch's loop —
        // responses are only assigned after the executor returns.
        complete(*job, {500, body});
      }
    }
  }

  lock.lock();
  --active_;
}

void Scheduler::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    cv_work_.wait(lock, [this] {
      return stopping_ || (!paused_ && !queue_.empty());
    });
    if (queue_.empty() || paused_) {
      if (stopping_) return;
      continue;
    }
    dispatch(lock);
    if (queue_.empty() && active_ == 0) cv_idle_.notify_all();
  }
}

void Scheduler::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  draining_ = true;
  paused_ = false;  // a paused scheduler must still finish queued work
  cv_work_.notify_all();
  cv_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void Scheduler::stop() {
  drain();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
}

void Scheduler::pause() {
  std::lock_guard<std::mutex> lock(mutex_);
  paused_ = true;
}

void Scheduler::resume() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = false;
  }
  cv_work_.notify_all();
}

std::size_t Scheduler::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

bool Scheduler::draining() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return draining_ || stopping_;
}

}  // namespace cirstag::serve
