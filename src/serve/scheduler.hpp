#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace cirstag::obs {
class RequestContext;
}  // namespace cirstag::obs

namespace cirstag::serve {

/// Completed job outcome: an HTTP status plus a body. Almost everything is
/// JSON; /metrics answers in OpenMetrics text, hence the content type rides
/// along (defaulted so two-element aggregate inits keep working).
struct JobResponse {
  int status = 500;
  std::string body;
  std::string content_type = "application/json";
};

/// One unit of admitted work.
///
/// `run` executes a lone job. A job with a non-empty `batch_key` AND a
/// `run_batch` callback is *coalescable*: when a worker pops it, every other
/// queued job with the same key is pulled along (up to max_batch_size) and
/// the group executes through one `run_batch` call — the cross-request
/// batching that turns N compatible Case-A analyze requests into a single
/// SweepEngine::run. `payload` carries the per-job data the batch executor
/// reads (e.g. the parsed SweepVariant); it is opaque to the scheduler.
struct Job {
  std::string endpoint;   ///< metrics label, e.g. "analyze"
  std::string batch_key;  ///< empty = never coalesced
  std::shared_ptr<void> payload;
  std::function<JobResponse()> run;
  /// Executes a coalesced group; must return exactly jobs.size() responses,
  /// in order. All jobs in a group share the same batch_key (and, by
  /// construction in the handler layer, the same executor).
  std::function<std::vector<JobResponse>(std::vector<Job*>&)> run_batch;
  std::chrono::steady_clock::time_point deadline;
  std::chrono::steady_clock::time_point enqueued;
  std::promise<JobResponse> promise;
  /// Request trace (nullable). The scheduler attributes queue/compute
  /// segments into it and flushes it to the access log at completion; the
  /// connection thread keeps its own reference for the X-Trace-Id header.
  std::shared_ptr<obs::RequestContext> trace;
};

/// Bounded-admission request scheduler over its own worker threads.
///
/// Admission: the queue holds at most queue_capacity jobs; submit() on a
/// full queue rejects with 429 immediately (backpressure to the client)
/// and a draining scheduler rejects with 503. Deadlines: a job whose
/// deadline passed while queued is answered 504 without executing.
/// Batching: see Job. Telemetry: per-endpoint latency histograms
/// (serve.latency_ms.<endpoint>, p50/p95/p99 via --metrics-json), queue
/// depth gauge, batch-size histogram, and the served/rejected/expired/
/// batches-formed counters the CI gate pins.
///
/// Workers run analysis code that parallelizes through the global
/// runtime::ThreadPool; concurrent pool use from several workers is safe
/// (the pool serializes external run() calls), so scheduler workers provide
/// request-level concurrency while the pool provides data parallelism
/// within each batch.
class Scheduler {
 public:
  struct Options {
    std::size_t queue_capacity = 256;
    std::size_t workers = 2;
    /// Max jobs coalesced into one batch execution (1 disables batching).
    std::size_t max_batch_size = 8;
    /// Deadline applied when a request names none.
    int default_deadline_ms = 60000;
  };

  // GCC cannot evaluate a nested aggregate's member initializers in a
  // default argument here, so the no-options form is a separate constructor.
  Scheduler() : Scheduler(Options()) {}
  explicit Scheduler(Options options);
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  struct SubmitResult {
    bool accepted = false;
    /// Valid only when accepted: resolves when the job completes/expires.
    std::future<JobResponse> future;
    /// Suggested rejection status (429 full, 503 draining) + detail.
    int reject_status = 0;
    std::string reject_detail;
  };

  /// Thread-safe; never blocks on queue space (bounded admission rejects).
  [[nodiscard]] SubmitResult submit(Job job);

  /// Stop admitting, execute everything already queued, and wait for the
  /// workers to go idle. Safe to call more than once.
  void drain();

  /// drain() then join the workers; the destructor calls this.
  void stop();

  /// Deterministic-batching support (bench/tests): while paused, workers
  /// pop nothing, so a caller can enqueue a wave of requests and resume —
  /// batch formation then depends only on queue content, not on arrival
  /// timing. With one worker the batch count per wave is exactly
  /// ceil(compatible / max_batch_size).
  void pause();
  void resume();

  [[nodiscard]] std::size_t queue_depth() const;
  [[nodiscard]] bool draining() const;
  [[nodiscard]] const Options& options() const { return options_; }

 private:
  void worker_loop();
  /// Pop one job (plus coalesced peers) and execute; assumes lock held on
  /// entry, returns with lock held.
  void dispatch(std::unique_lock<std::mutex>& lock);
  static void complete(Job& job, JobResponse response);

  Options options_;
  mutable std::mutex mutex_;
  std::condition_variable cv_work_;   ///< workers wait for jobs / stop
  std::condition_variable cv_idle_;   ///< drain() waits for empty + idle
  std::deque<Job> queue_;
  std::size_t active_ = 0;  ///< jobs currently executing
  bool draining_ = false;
  bool stopping_ = false;
  bool paused_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace cirstag::serve
