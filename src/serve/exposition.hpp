#pragma once

#include <string>

namespace cirstag::serve {

struct Service;

/// Prometheus/OpenMetrics text-format rendering of the live telemetry.
///
/// Mapping from the obs registries to exposition families:
///   - counters  -> `cirstag_<name>_total` (TYPE counter)
///   - gauges    -> `cirstag_<name>` (TYPE gauge)
///   - histograms -> `_bucket{le=...}` cumulative series + `+Inf`, plus
///     `_sum`/`_count` (TYPE histogram)
///   - per-endpoint `serve.latency_ms.<ep>` histograms fold into ONE family
///     `cirstag_serve_latency_ms{endpoint="<ep>"}` — the label carries the
///     endpoint, as a scrape consumer expects
///   - windowed `serve.window.latency_ms.<ep>` render as a summary family
///     `cirstag_serve_window_latency_ms{endpoint,quantile}` (p50/p95/p99
///     over the rolling window) plus `_sum`/`_count`
///   - windowed request counters render as the gauges
///     `cirstag_serve_window_requests{endpoint}` and
///     `cirstag_serve_window_qps{endpoint}` (gauges, not counters — a
///     rolling-window total can decrease)
/// Metric names are sanitized to [a-zA-Z0-9_:]; label values are escaped
/// per the exposition spec (backslash, quote, newline).
[[nodiscard]] std::string render_metrics_exposition(Service& service);

/// Operator-facing JSON snapshot: per-endpoint windowed p50/p95/p99 + QPS,
/// queue depth, batch occupancy, registry residency, arena/cache reuse, and
/// the full counter/gauge tables. This is also the structured counter
/// source bench_serve's socket mode reads (the JSON twin of /metrics).
[[nodiscard]] std::string render_stats_json(Service& service);

/// Escape a label value per the text exposition format: backslash, double
/// quote, and newline get backslash escapes.
[[nodiscard]] std::string prom_escape_label(const std::string& value);

/// Sanitize a metric name: every byte outside [a-zA-Z0-9_:] becomes '_'
/// (so "serve.latency_ms" -> "serve_latency_ms"); a leading digit gets a
/// '_' prefix.
[[nodiscard]] std::string prom_sanitize_name(const std::string& name);

}  // namespace cirstag::serve
