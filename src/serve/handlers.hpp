#pragma once

#include <chrono>
#include <future>
#include <memory>
#include <string>

#include "serve/http.hpp"
#include "serve/registry.hpp"
#include "serve/scheduler.hpp"

namespace cirstag::obs {
class RequestContext;
}  // namespace cirstag::obs

namespace cirstag::serve {

/// The serving application: resident circuits plus the request scheduler.
/// One Service backs one daemon; bench/tests also drive it in-process
/// (no sockets), which is what makes the scheduler counters deterministic
/// enough to gate in CI.
struct Service {
  explicit Service(Scheduler::Options scheduler_options = {})
      : scheduler(scheduler_options),
        started(std::chrono::steady_clock::now()) {}

  CircuitRegistry registry;
  Scheduler scheduler;
  std::chrono::steady_clock::time_point started;
};

/// Outcome of routing one request: either an immediate response (control
/// plane: health/metrics, routing/parse errors, scheduler rejections) or an
/// admitted job whose future resolves with the response.
struct Dispatch {
  bool immediate = false;
  JobResponse response;             ///< valid when immediate
  std::future<JobResponse> future;  ///< valid when !immediate
  /// The request's trace, always set by dispatch_request: the server reads
  /// id_hex() for the X-Trace-Id response header. Immediate dispatches
  /// arrive already finished and flushed to the access log; scheduled ones
  /// are finished by the scheduler at completion.
  std::shared_ptr<obs::RequestContext> trace;
};

/// Route a parsed request to its endpoint. Data-plane endpoints (load,
/// unload, analyze, sweep, score-region, top-k) go through the scheduler —
/// bounded admission (429), deadlines (504), analyze batching; health and
/// metrics answer inline so observability survives a saturated queue.
[[nodiscard]] Dispatch dispatch_request(Service& service,
                                        const HttpRequest& request);

/// dispatch_request + block for the response (connection-thread form).
[[nodiscard]] JobResponse handle_request(Service& service,
                                         const HttpRequest& request);

}  // namespace cirstag::serve
