#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "serve/socket.hpp"

namespace cirstag::serve {

/// One parsed HTTP/1.1 request. Header names are lower-cased on parse
/// (HTTP headers are case-insensitive); values keep their bytes minus
/// surrounding whitespace.
struct HttpRequest {
  std::string method;  ///< upper-case token, e.g. "POST"
  std::string path;    ///< path only — the query string is split off
  std::string query;   ///< bytes after '?', empty when absent
  std::map<std::string, std::string> headers;
  std::string body;

  [[nodiscard]] const std::string* header(const std::string& lower_name) const {
    const auto it = headers.find(lower_name);
    return it == headers.end() ? nullptr : &it->second;
  }

  /// True when the client asked to keep the connection open (HTTP/1.1
  /// default, overridden by "Connection: close").
  [[nodiscard]] bool keep_alive() const;
};

/// Outcome of reading one request off a connection.
struct HttpReadResult {
  enum class Status {
    ok,            ///< `request` is valid
    closed,        ///< orderly end-of-stream before any request byte
    timeout,       ///< idle past the deadline before any request byte
    bad_request,   ///< malformed request — respond 400 and close
    too_large,     ///< headers or body past the limits — respond 413/431
    io_error,      ///< socket error mid-request
  };
  Status status = Status::io_error;
  HttpRequest request;
  /// Suggested status code + detail for the error statuses.
  int error_code = 0;
  std::string error_detail;
};

/// Byte limits of the reader. The defaults fit the serving protocol: bodies
/// carry netlist text on /load, so the body cap is generous; headers are
/// protocol-controlled and stay small.
struct HttpLimits {
  std::size_t max_header_bytes = 16 * 1024;
  std::size_t max_body_bytes = 64 * 1024 * 1024;
};

/// Blocking HTTP/1.1 request reader over a TcpSocket.
///
/// Buffers between calls so pipelined requests on one connection parse
/// correctly. `idle_timeout_ms` bounds the wait for the *first* byte of a
/// request (keep-alive idling); once a request has started, reads block
/// until it completes or the peer vanishes.
class HttpReader {
 public:
  explicit HttpReader(const TcpSocket& socket, HttpLimits limits = {})
      : socket_(&socket), limits_(limits) {}

  [[nodiscard]] HttpReadResult read_request(int idle_timeout_ms);

 private:
  /// Ensure buffer_ holds at least `need` bytes; false on EOF/error.
  bool fill(std::size_t need, HttpReadResult& out, bool first_byte,
            int idle_timeout_ms);

  const TcpSocket* socket_;
  HttpLimits limits_;
  std::string buffer_;
};

/// Parse request line + headers from a raw header block (no body). Used by
/// HttpReader and directly fuzz-tested. Returns nullopt on malformed input
/// with `error` set.
[[nodiscard]] std::optional<HttpRequest> parse_http_head(
    const std::string& head, std::string& error);

/// Serialize an HTTP/1.1 response with Content-Length framing.
[[nodiscard]] std::string format_http_response(
    int status, const std::string& content_type, const std::string& body,
    bool keep_alive);

/// As above, with extra response headers (name, value) appended before the
/// blank line — the server uses this to attach X-Trace-Id. Names/values are
/// emitted verbatim; callers supply protocol-safe bytes.
[[nodiscard]] std::string format_http_response(
    int status, const std::string& content_type, const std::string& body,
    bool keep_alive,
    const std::vector<std::pair<std::string, std::string>>& extra_headers);

/// Reason phrase of the status codes the serving layer emits.
[[nodiscard]] const char* http_status_reason(int status);

/// Client-side helper (bench / tests): send one request and block for the
/// response. Returns nullopt on transport failure; `status`/`body` are
/// filled from the response.
struct HttpResponse {
  int status = 0;
  std::map<std::string, std::string> headers;
  std::string body;
};
[[nodiscard]] std::optional<HttpResponse> http_roundtrip(
    const TcpSocket& socket, const std::string& method,
    const std::string& path, const std::string& body);

}  // namespace cirstag::serve
