#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace cirstag::serve {

/// Move-only owner of a connected TCP socket fd (blocking I/O).
///
/// All methods retry on EINTR so the CLI's signal handlers (which only set a
/// flag) never surface as spurious I/O errors; writes use MSG_NOSIGNAL so a
/// peer hanging up yields an error return instead of SIGPIPE.
class TcpSocket {
 public:
  TcpSocket() = default;
  explicit TcpSocket(int fd) : fd_(fd) {}
  ~TcpSocket();
  TcpSocket(TcpSocket&& other) noexcept;
  TcpSocket& operator=(TcpSocket&& other) noexcept;
  TcpSocket(const TcpSocket&) = delete;
  TcpSocket& operator=(const TcpSocket&) = delete;

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }

  /// Read up to `size` bytes; returns bytes read, 0 on orderly shutdown,
  /// -1 on error.
  [[nodiscard]] long read_some(char* data, std::size_t size) const;

  /// Block until `size` bytes are written or the peer is gone; returns
  /// false on any error.
  [[nodiscard]] bool write_all(const char* data, std::size_t size) const;
  [[nodiscard]] bool write_all(const std::string& data) const {
    return write_all(data.data(), data.size());
  }

  /// Wait until the socket is readable; false on timeout/error. Lets the
  /// server's connection loop wake up periodically to observe a drain
  /// request instead of parking forever in read().
  [[nodiscard]] bool wait_readable(int timeout_ms) const;

  /// Half-close the write side (client end-of-requests signal).
  void shutdown_write() const;

  void close();

 private:
  int fd_ = -1;
};

/// Listening TCP socket bound to the loopback interface (the serving daemon
/// is an in-rack analysis service, not an internet-facing one; anything
/// else belongs behind a real proxy).
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener() { close(); }
  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Bind + listen on 127.0.0.1:`port` (port 0 = kernel-assigned, see
  /// port()). Returns an invalid listener on failure; error() explains.
  [[nodiscard]] static TcpListener open(std::uint16_t port,
                                        int backlog = 128);

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  /// The bound port (resolves kernel-assigned port 0).
  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] const std::string& error() const { return error_; }

  /// Wait up to `timeout_ms` for a connection; nullopt on timeout or when
  /// the listener was closed from another thread.
  [[nodiscard]] std::optional<TcpSocket> accept(int timeout_ms) const;

  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::string error_;
};

/// Blocking connect to 127.0.0.1:`port`; invalid socket on failure.
[[nodiscard]] TcpSocket tcp_connect(std::uint16_t port);

}  // namespace cirstag::serve
