#include "serve/handlers.hpp"

#include <cmath>
#include <map>
#include <memory>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/query.hpp"
#include "core/sweep.hpp"
#include "obs/json.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/request.hpp"
#include "serve/exposition.hpp"
#include "serve/json.hpp"

namespace cirstag::serve {

namespace {

JobResponse error_response(int status, const std::string& message) {
  std::string body = "{\"error\": ";
  body += obs::json_quote(message);
  body += "}";
  return {status, std::move(body)};
}

Dispatch immediate(JobResponse response) {
  Dispatch d;
  d.immediate = true;
  d.response = std::move(response);
  return d;
}

Dispatch immediate_error(int status, const std::string& message) {
  return immediate(error_response(status, message));
}

void append_double_array(std::string& out, std::span<const double> values) {
  out += '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ", ";
    obs::append_json_number(out, values[i]);
  }
  out += ']';
}

/// Report payload shared by the analyze and sweep responses. The score
/// arrays render through %.17g (obs::append_json_number), which round-trips
/// IEEE doubles exactly — the socket byte-identity contract the e2e test
/// asserts rests on this.
void append_report(std::string& out, const core::CirStagReport& report) {
  out += "{\"node_scores\": ";
  append_double_array(out, report.node_scores);
  out += ", \"edge_scores\": ";
  append_double_array(out, report.edge_scores);
  out += ", \"eigenvalues\": ";
  append_double_array(out, report.eigenvalues);
  out += ", \"checksums\": ";
  out += report.checksums.to_json();
  out += ", \"health_ok\": ";
  out += report.health.ok() ? "true" : "false";
  out += ", \"total_seconds\": ";
  obs::append_json_number(out, report.timings.total());
  out += '}';
}

// -- request payloads -------------------------------------------------------

struct AnalyzePayload {
  std::string circuit;
  std::shared_ptr<CircuitRecord> record;
  core::SweepVariant variant;
};

struct SweepPayload {
  std::string circuit;
  std::shared_ptr<CircuitRecord> record;
  std::vector<core::SweepVariant> variants;
};

struct LoadPayload {
  std::string name;
  std::string source;  ///< path, inline netlist text, or snapshot path
  bool is_path = false;
  bool is_snapshot = false;  ///< restore a binary snapshot (io/snapshot)
  LoadOptions options;
};

/// Parse one [{"pin": id, "factor": f}, ...] array into Case-A cap
/// scalings. Returns false with `error` set on malformed entries.
bool parse_cap_scalings(const JsonValue& array, const CircuitRecord& record,
                        std::vector<core::CapScaling>& out,
                        std::string& error) {
  if (!array.is_array()) {
    error = "'cap_scalings' must be an array";
    return false;
  }
  const std::size_t num_pins = record.netlist.num_pins();
  for (const JsonValue& entry : array.as_array()) {
    if (!entry.is_object()) {
      error = "each cap scaling must be an object with 'pin' and 'factor'";
      return false;
    }
    const JsonValue* pin = entry.find("pin");
    const JsonValue* factor = entry.find("factor");
    if (pin == nullptr || !pin->is_number() || factor == nullptr ||
        !factor->is_number()) {
      error = "each cap scaling must carry numeric 'pin' and 'factor'";
      return false;
    }
    const double pin_value = pin->as_number();
    if (pin_value < 0 || pin_value != std::floor(pin_value) ||
        pin_value >= static_cast<double>(num_pins)) {
      error = "cap scaling pin out of range (circuit has " +
              std::to_string(num_pins) + " pins)";
      return false;
    }
    const double factor_value = factor->as_number();
    if (!(factor_value > 0.0) || !std::isfinite(factor_value)) {
      error = "cap scaling factor must be finite and positive";
      return false;
    }
    out.push_back({static_cast<circuit::PinId>(pin_value), factor_value});
  }
  return true;
}

JobResponse format_variant_response(const AnalyzePayload& payload,
                                    const core::SweepVariantResult& result) {
  std::string body = "{\"circuit\": ";
  body += obs::json_quote(payload.circuit);
  body += ", \"baseline\": false, \"report\": ";
  append_report(body, result.report);
  body += ", \"worst_arrival\": ";
  obs::append_json_number(body, result.worst_arrival);
  body += ", \"subspace_sweeps\": ";
  body += std::to_string(result.stats.subspace_sweeps);
  body += "}";
  return {200, std::move(body)};
}

/// Batch executor: every job shares the analyze batch key (same circuit
/// name), so normally the whole group is one engine->run call. Records are
/// still grouped by identity — an unload/reload between submissions may
/// leave two generations of the same name in one batch.
std::vector<JobResponse> run_analyze_batch(std::vector<Job*>& jobs) {
  std::vector<JobResponse> out(jobs.size());
  std::map<CircuitRecord*, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    auto* payload = static_cast<AnalyzePayload*>(jobs[i]->payload.get());
    groups[payload->record.get()].push_back(i);
  }
  for (auto& [record, indices] : groups) {
    std::vector<core::SweepVariant> variants;
    variants.reserve(indices.size());
    for (const std::size_t i : indices) {
      variants.push_back(
          static_cast<AnalyzePayload*>(jobs[i]->payload.get())->variant);
    }
    std::lock_guard<std::mutex> lock(record->run_mutex);
    const std::vector<core::SweepVariantResult> results =
        record->engine->run(variants);
    for (std::size_t j = 0; j < indices.size(); ++j) {
      const std::size_t i = indices[j];
      // Per-member render attribution: one thread serializes the whole
      // coalesced batch, but each member's trace gets its own render span
      // and render_us covering exactly its response.
      const obs::RenderScope render(jobs[i]->trace.get());
      out[i] = format_variant_response(
          *static_cast<AnalyzePayload*>(jobs[i]->payload.get()), results[j]);
    }
  }
  return out;
}

// -- endpoint dispatchers ---------------------------------------------------

Dispatch submit_or_reject(Service& service, Job job) {
  Scheduler::SubmitResult submitted = service.scheduler.submit(std::move(job));
  if (!submitted.accepted)
    return immediate_error(submitted.reject_status, submitted.reject_detail);
  Dispatch d;
  d.future = std::move(submitted.future);
  return d;
}

/// Shared body-field plumbing: optional "deadline_ms" (0 < ms) applied to
/// the job, else the scheduler default.
bool apply_deadline(const JsonValue& body, Job& job, std::string& error) {
  const JsonValue* deadline = body.find("deadline_ms");
  if (deadline == nullptr) return true;
  if (!deadline->is_number() || !(deadline->as_number() > 0)) {
    error = "'deadline_ms' must be a positive number";
    return false;
  }
  job.deadline = std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(
                     static_cast<long>(deadline->as_number()));
  return true;
}

using TracePtr = std::shared_ptr<obs::RequestContext>;

Dispatch dispatch_load(Service& service, const JsonValue& body,
                       const TracePtr& trace) {
  auto payload = std::make_shared<LoadPayload>();
  payload->name = body.string_or("name", "");
  if (payload->name.empty())
    return immediate_error(422, "missing 'name'");
  const JsonValue* path = body.find("path");
  const JsonValue* netlist = body.find("netlist");
  const JsonValue* snapshot = body.find("snapshot");
  const int sources = (path != nullptr ? 1 : 0) + (netlist != nullptr ? 1 : 0) +
                      (snapshot != nullptr ? 1 : 0);
  if (sources != 1)
    return immediate_error(
        422, "provide exactly one of 'path', 'netlist' or 'snapshot'");
  if (snapshot != nullptr) {
    // Binary-snapshot restore: the file itself records mode/epochs/hidden,
    // so overriding them here can only produce an engine whose options
    // disagree with the adopted warm state — reject instead of ignoring.
    if (!snapshot->is_string() || snapshot->as_string().empty())
      return immediate_error(400, "'snapshot' must be a non-empty path string");
    if (body.find("epochs") != nullptr || body.find("hidden") != nullptr ||
        body.find("mode") != nullptr)
      return immediate_error(
          422,
          "'epochs'/'hidden'/'mode' are recorded in the snapshot and cannot "
          "be overridden");
    payload->source = snapshot->as_string();
    payload->is_snapshot = true;
  } else {
    const JsonValue* source = path != nullptr ? path : netlist;
    if (!source->is_string())
      return immediate_error(422, "'path'/'netlist' must be a string");
    payload->source = source->as_string();
    payload->is_path = path != nullptr;

    const double epochs = body.number_or("epochs", 300);
    const double hidden = body.number_or("hidden", 24);
    if (!(epochs >= 1) || !(hidden >= 1))
      return immediate_error(422, "'epochs' and 'hidden' must be >= 1");
    payload->options.gnn_epochs = static_cast<std::size_t>(epochs);
    payload->options.gnn_hidden = static_cast<std::size_t>(hidden);
    const std::string mode = body.string_or("mode", "exact");
    if (mode != "exact" && mode != "fast")
      return immediate_error(422, "'mode' must be \"exact\" or \"fast\"");
    payload->options.exact = mode == "exact";
  }

  Job job;
  job.endpoint = "load";
  job.payload = payload;
  job.trace = trace;
  trace->set_circuit(payload->name);
  std::string error;
  if (!apply_deadline(body, job, error)) return immediate_error(422, error);
  CircuitRegistry* registry = &service.registry;
  job.run = [registry, payload, trace]() -> JobResponse {
    const CircuitRegistry::LoadResult loaded =
        payload->is_snapshot
            ? registry->load_from_snapshot(payload->name, payload->source)
        : payload->is_path
            ? registry->load_from_path(payload->name, payload->source,
                                       payload->options)
            : registry->load_from_text(payload->name, payload->source,
                                       payload->options);
    if (loaded.record == nullptr) {
      // A snapshot that fails to open/validate is a bad request artifact:
      // 400 (vs 422 for semantic errors in textual netlist loads).
      const int status = loaded.name_conflict        ? 409
                         : payload->is_snapshot      ? 400
                                                     : 422;
      return error_response(status, loaded.error);
    }
    const CircuitRecord& record = *loaded.record;
    const obs::RenderScope render(trace.get());
    std::string out = "{\"name\": ";
    out += obs::json_quote(record.name);
    out += ", \"pins\": " + std::to_string(record.netlist.num_pins());
    out += ", \"gates\": " + std::to_string(record.netlist.num_gates());
    out += ", \"mode\": ";
    out += obs::json_quote(record.options.exact ? "exact" : "fast");
    out += ", \"restored\": ";
    out += payload->is_snapshot ? "true" : "false";
    out += ", \"train_r2\": ";
    obs::append_json_number(out, record.train_r2);
    out += ", \"train_seconds\": ";
    obs::append_json_number(out, record.train_seconds);
    out += ", \"baseline_seconds\": ";
    obs::append_json_number(out, record.baseline_seconds);
    out += "}";
    return {200, std::move(out)};
  };
  return submit_or_reject(service, std::move(job));
}

Dispatch dispatch_unload(Service& service, const JsonValue& body,
                         const TracePtr& trace) {
  const std::string name = body.string_or("name", "");
  if (name.empty()) return immediate_error(422, "missing 'name'");
  Job job;
  job.endpoint = "unload";
  job.trace = trace;
  trace->set_circuit(name);
  std::string error;
  if (!apply_deadline(body, job, error)) return immediate_error(422, error);
  CircuitRegistry* registry = &service.registry;
  job.run = [registry, name, trace]() -> JobResponse {
    if (!registry->unload(name))
      return error_response(404, "circuit '" + name + "' is not loaded");
    const obs::RenderScope render(trace.get());
    return {200, "{\"unloaded\": " + obs::json_quote(name) + "}"};
  };
  return submit_or_reject(service, std::move(job));
}

Dispatch dispatch_analyze(Service& service, const JsonValue& body,
                          const TracePtr& trace) {
  auto payload = std::make_shared<AnalyzePayload>();
  payload->circuit = body.string_or("circuit", "");
  if (payload->circuit.empty())
    return immediate_error(422, "missing 'circuit'");
  payload->record = service.registry.lookup(payload->circuit);
  if (payload->record == nullptr)
    return immediate_error(404,
                           "circuit '" + payload->circuit + "' is not loaded");
  if (const JsonValue* scalings = body.find("cap_scalings")) {
    std::string error;
    if (!parse_cap_scalings(*scalings, *payload->record,
                            payload->variant.cap_scalings, error))
      return immediate_error(422, error);
  }

  Job job;
  job.endpoint = "analyze";
  job.payload = payload;
  job.trace = trace;
  trace->set_circuit(payload->circuit);
  std::string error;
  if (!apply_deadline(body, job, error)) return immediate_error(422, error);
  if (payload->variant.cap_scalings.empty()) {
    // Unperturbed request: serve the resident baseline (immutable after
    // load, byte-identical to CirStag::analyze) — a const read, no
    // run_mutex, no batching.
    job.run = [payload, trace]() -> JobResponse {
      const obs::RenderScope render(trace.get());
      std::string out = "{\"circuit\": ";
      out += obs::json_quote(payload->circuit);
      out += ", \"baseline\": true, \"report\": ";
      append_report(out, payload->record->engine->baseline());
      out += "}";
      return {200, std::move(out)};
    };
  } else {
    job.batch_key = "analyze:" + payload->circuit;
    job.run_batch = run_analyze_batch;
  }
  return submit_or_reject(service, std::move(job));
}

Dispatch dispatch_sweep(Service& service, const JsonValue& body,
                        const TracePtr& trace) {
  auto payload = std::make_shared<SweepPayload>();
  payload->circuit = body.string_or("circuit", "");
  if (payload->circuit.empty())
    return immediate_error(422, "missing 'circuit'");
  payload->record = service.registry.lookup(payload->circuit);
  if (payload->record == nullptr)
    return immediate_error(404,
                           "circuit '" + payload->circuit + "' is not loaded");
  const JsonValue* variants = body.find("variants");
  if (variants == nullptr || !variants->is_array() ||
      variants->as_array().empty())
    return immediate_error(422, "'variants' must be a non-empty array");
  for (const JsonValue& entry : variants->as_array()) {
    // Each variant is an object ({"cap_scalings": [...]}) so the shape can
    // grow Case-B fields later without breaking clients.
    if (!entry.is_object())
      return immediate_error(422,
                             "each variant must be an object with "
                             "'cap_scalings'");
    const JsonValue* scalings = entry.find("cap_scalings");
    if (scalings == nullptr)
      return immediate_error(422,
                             "each variant must carry a 'cap_scalings' array");
    core::SweepVariant variant;
    std::string error;
    if (!parse_cap_scalings(*scalings, *payload->record, variant.cap_scalings,
                            error))
      return immediate_error(422, error);
    payload->variants.push_back(std::move(variant));
  }

  Job job;
  job.endpoint = "sweep";
  job.payload = payload;
  job.trace = trace;
  trace->set_circuit(payload->circuit);
  std::string error;
  if (!apply_deadline(body, job, error)) return immediate_error(422, error);
  job.run = [payload, trace]() -> JobResponse {
    CircuitRecord& record = *payload->record;
    std::lock_guard<std::mutex> lock(record.run_mutex);
    const std::vector<core::SweepVariantResult> results =
        record.engine->run(payload->variants);
    const core::SweepStats& stats = record.engine->stats();
    const obs::RenderScope render(trace.get());
    std::string out = "{\"circuit\": ";
    out += obs::json_quote(payload->circuit);
    out += ", \"results\": [";
    for (std::size_t i = 0; i < results.size(); ++i) {
      if (i != 0) out += ", ";
      out += "{\"report\": ";
      append_report(out, results[i].report);
      out += ", \"worst_arrival\": ";
      obs::append_json_number(out, results[i].worst_arrival);
      out += ", \"subspace_sweeps\": ";
      out += std::to_string(results[i].stats.subspace_sweeps);
      out += "}";
    }
    out += "], \"stats\": {\"variants\": ";
    out += std::to_string(stats.variants);
    out += ", \"sweep_seconds\": ";
    obs::append_json_number(out, stats.sweep_seconds);
    out += ", \"solver_cache_hits\": ";
    out += std::to_string(stats.solver_cache_hits);
    out += ", \"eigen_warm_starts\": ";
    out += std::to_string(stats.eigen_warm_starts);
    out += "}}";
    return {200, std::move(out)};
  };
  return submit_or_reject(service, std::move(job));
}

Dispatch dispatch_top_k(Service& service, const JsonValue& body,
                        const TracePtr& trace) {
  const std::string name = body.string_or("circuit", "");
  if (name.empty()) return immediate_error(422, "missing 'circuit'");
  std::shared_ptr<CircuitRecord> record = service.registry.lookup(name);
  if (record == nullptr)
    return immediate_error(404, "circuit '" + name + "' is not loaded");
  const double k_value = body.number_or("k", 10);
  if (!(k_value >= 1) || k_value != std::floor(k_value))
    return immediate_error(422, "'k' must be a positive integer");
  const auto k = static_cast<std::size_t>(k_value);

  Job job;
  job.endpoint = "top-k";
  job.trace = trace;
  trace->set_circuit(name);
  std::string error;
  if (!apply_deadline(body, job, error)) return immediate_error(422, error);
  job.run = [record, name, k, trace]() -> JobResponse {
    const std::vector<core::NodeScore> nodes =
        core::top_k_nodes(record->engine->baseline(), k);
    const obs::RenderScope render(trace.get());
    std::string out = "{\"circuit\": ";
    out += obs::json_quote(name);
    out += ", \"k\": " + std::to_string(k);
    out += ", \"nodes\": [";
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (i != 0) out += ", ";
      out += "{\"node\": " + std::to_string(nodes[i].node) + ", \"score\": ";
      obs::append_json_number(out, nodes[i].score);
      out += "}";
    }
    out += "]}";
    return {200, std::move(out)};
  };
  return submit_or_reject(service, std::move(job));
}

Dispatch dispatch_score_region(Service& service, const JsonValue& body,
                               const TracePtr& trace) {
  const std::string name = body.string_or("circuit", "");
  if (name.empty()) return immediate_error(422, "missing 'circuit'");
  std::shared_ptr<CircuitRecord> record = service.registry.lookup(name);
  if (record == nullptr)
    return immediate_error(404, "circuit '" + name + "' is not loaded");
  const JsonValue* nodes = body.find("nodes");
  if (nodes == nullptr || !nodes->is_array())
    return immediate_error(422, "'nodes' must be an array of node ids");
  auto ids = std::make_shared<std::vector<std::size_t>>();
  ids->reserve(nodes->as_array().size());
  for (const JsonValue& entry : nodes->as_array()) {
    if (!entry.is_number() || entry.as_number() < 0 ||
        entry.as_number() != std::floor(entry.as_number()))
      return immediate_error(422, "'nodes' entries must be non-negative ids");
    ids->push_back(static_cast<std::size_t>(entry.as_number()));
  }

  // Optional cone expansion: "hops": h scores the h-ring fan-in/fan-out
  // cone of the listed seed nodes instead of the exact node set — the
  // localized sub-linear query path (needs the pin-level graph, so it is
  // unavailable for circuits loaded in graph mode).
  std::size_t hops = 0;
  bool cone = false;
  if (const JsonValue* h = body.find("hops"); h != nullptr) {
    if (!h->is_number() || h->as_number() < 0 ||
        h->as_number() != std::floor(h->as_number()) ||
        h->as_number() > 1e6)
      return immediate_error(422, "'hops' must be a small non-negative count");
    hops = static_cast<std::size_t>(h->as_number());
    cone = true;
    if (record->engine->pin_graph().num_nodes() == 0)
      return immediate_error(
          422, "cone queries need a pin graph (circuit loaded in graph mode)");
  }

  Job job;
  job.endpoint = "score-region";
  job.trace = trace;
  trace->set_circuit(name);
  std::string error;
  if (!apply_deadline(body, job, error)) return immediate_error(422, error);
  job.run = [record, name, ids, hops, cone, trace]() -> JobResponse {
    core::RegionScore region;
    try {
      if (cone) {
        static const obs::Counter cone_requests("serve.region_cone_requests");
        cone_requests.add();
        region = core::score_cone(record->engine->baseline(),
                                  record->engine->pin_graph(), *ids, hops);
      } else {
        region = core::score_region(record->engine->baseline(), *ids);
      }
    } catch (const std::out_of_range& e) {
      return error_response(422, e.what());
    }
    const obs::RenderScope render(trace.get());
    std::string out = "{\"circuit\": ";
    out += obs::json_quote(name);
    out += ", \"count\": " + std::to_string(region.nodes.size());
    out += ", \"mean\": ";
    obs::append_json_number(out, region.mean);
    out += ", \"max\": ";
    obs::append_json_number(out, region.max);
    out += ", \"argmax\": " + std::to_string(region.argmax);
    out += ", \"design_mean\": ";
    obs::append_json_number(out, region.design_mean);
    out += ", \"nodes\": [";
    for (std::size_t i = 0; i < region.nodes.size(); ++i) {
      if (i != 0) out += ", ";
      out += "{\"node\": " + std::to_string(region.nodes[i].node) +
             ", \"score\": ";
      obs::append_json_number(out, region.nodes[i].score);
      out += "}";
    }
    out += "]}";
    return {200, std::move(out)};
  };
  return submit_or_reject(service, std::move(job));
}

JobResponse handle_health(Service& service) {
  const double uptime = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - service.started)
                            .count();
  const obs::BuildInfo& build = obs::build_info();
  std::string out = "{\"status\": ";
  out += obs::json_quote(service.scheduler.draining() ? "draining" : "ok");
  out += ", \"uptime_seconds\": ";
  obs::append_json_number(out, uptime);
  out += ", \"queue_depth\": " +
         std::to_string(service.scheduler.queue_depth());
  out += ", \"circuits\": [";
  const auto infos = service.registry.infos();
  for (std::size_t i = 0; i < infos.size(); ++i) {
    if (i != 0) out += ", ";
    out += "{\"name\": ";
    out += obs::json_quote(infos[i].name);
    out += ", \"pins\": " + std::to_string(infos[i].pins);
    out += ", \"gates\": " + std::to_string(infos[i].gates);
    out += ", \"mode\": ";
    out += obs::json_quote(infos[i].exact ? "exact" : "fast");
    out += ", \"train_r2\": ";
    obs::append_json_number(out, infos[i].train_r2);
    out += "}";
  }
  out += "], \"build\": {\"git_describe\": ";
  out += obs::json_quote(build.git_describe);
  out += ", \"build_type\": ";
  out += obs::json_quote(build.build_type);
  out += ", \"compiler\": ";
  out += obs::json_quote(build.compiler);
  out += "}}";
  return {200, std::move(out)};
}

}  // namespace

namespace {

/// Inner routing; the public wrapper owns trace creation and finalization.
Dispatch route_request(Service& service, const HttpRequest& request,
                       const TracePtr& trace) {
  const std::string& path = request.path;
  if (path == "/health" || path == "/metrics" || path == "/stats") {
    if (request.method != "GET")
      return immediate_error(405, "use GET for " + path);
    if (path == "/health") return immediate(handle_health(service));
    if (path == "/stats") return immediate({200, render_stats_json(service)});
    return immediate({200, render_metrics_exposition(service),
                      "text/plain; version=0.0.4; charset=utf-8"});
  }

  const bool known_post = path == "/load" || path == "/unload" ||
                          path == "/analyze" || path == "/sweep" ||
                          path == "/score-region" || path == "/top-k";
  if (!known_post) return immediate_error(404, "unknown endpoint " + path);
  if (request.method != "POST")
    return immediate_error(405, "use POST for " + path);

  JsonValue body;
  try {
    body = parse_json(request.body);
  } catch (const JsonError& e) {
    return immediate_error(400, std::string("malformed JSON body: ") +
                                    e.what());
  }
  if (!body.is_object())
    return immediate_error(400, "request body must be a JSON object");

  if (path == "/load") return dispatch_load(service, body, trace);
  if (path == "/unload") return dispatch_unload(service, body, trace);
  if (path == "/analyze") return dispatch_analyze(service, body, trace);
  if (path == "/sweep") return dispatch_sweep(service, body, trace);
  if (path == "/top-k") return dispatch_top_k(service, body, trace);
  return dispatch_score_region(service, body, trace);
}

}  // namespace

Dispatch dispatch_request(Service& service, const HttpRequest& request) {
  // Every request — control plane included — gets a trace: the endpoint name
  // is the path minus its leading slash ("unknown" paths keep the raw path,
  // so the access log shows what was probed).
  auto trace = std::make_shared<obs::RequestContext>(
      !request.path.empty() && request.path.front() == '/'
          ? request.path.substr(1)
          : request.path);
  Dispatch d = route_request(service, request, trace);
  d.trace = trace;
  if (d.immediate) {
    // Immediate responses (control plane, parse errors, rejections) never
    // reach the scheduler, so they are finished and logged here.
    trace->finish(d.response.status);
    obs::RequestLog::global().record(*trace);
  }
  return d;
}

JobResponse handle_request(Service& service, const HttpRequest& request) {
  Dispatch d = dispatch_request(service, request);
  if (d.immediate) return std::move(d.response);
  return d.future.get();
}

}  // namespace cirstag::serve
