#include "serve/server.hpp"

#include <utility>
#include <vector>

#include "obs/json.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/request.hpp"

namespace cirstag::serve {

namespace {

/// Poll granularity of the accept loop and of idle keep-alive connections:
/// the longest a stop request waits before being observed.
constexpr int kStopTickMs = 200;

}  // namespace

Server::Server(ServerOptions options)
    : options_(options), service_(options.scheduler) {}

Server::~Server() {
  request_stop();
  drain_and_join();
}

bool Server::start(std::string& error) {
  listener_ = TcpListener::open(options_.port);
  if (!listener_.valid()) {
    error = listener_.error();
    return false;
  }
  return true;
}

void Server::serve_forever(const std::function<bool()>& should_stop) {
  static obs::Counter accepted("serve.connections");
  obs::logf_info("serve", "listening on 127.0.0.1:%u",
                 static_cast<unsigned>(port()));
  while (!stop_.load(std::memory_order_relaxed)) {
    if (should_stop && should_stop()) break;
    std::optional<TcpSocket> socket = listener_.accept(kStopTickMs);
    if (!socket.has_value()) continue;
    accepted.add();
    std::lock_guard<std::mutex> lock(threads_mutex_);
    // One thread per connection; clients are few (bench workers, curl) and
    // the threads idle in poll() between requests. Joined at drain.
    threads_.emplace_back(&Server::connection_loop, this, std::move(*socket));
  }
  drain_and_join();
}

void Server::drain_and_join() {
  stop_.store(true, std::memory_order_relaxed);
  listener_.close();
  obs::logf_info("serve", "draining: %zu queued requests",
                 service_.scheduler.queue_depth());
  // Finish everything already admitted; connection threads waiting on
  // futures get their responses, late submissions are answered 503.
  service_.scheduler.drain();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(threads_mutex_);
    threads.swap(threads_);
  }
  for (std::thread& t : threads) t.join();
  if (!threads.empty()) obs::logf_info("serve", "drain complete");
}

void Server::connection_loop(TcpSocket socket) {
  static obs::Counter http_errors("serve.http_errors");
  HttpReader reader(socket, options_.limits);
  while (true) {
    HttpReadResult read = reader.read_request(kStopTickMs);
    if (read.status == HttpReadResult::Status::timeout) {
      if (stop_.load(std::memory_order_relaxed)) break;
      continue;
    }
    if (read.status == HttpReadResult::Status::closed ||
        read.status == HttpReadResult::Status::io_error)
      break;
    if (read.status != HttpReadResult::Status::ok) {
      // Malformed / oversized: answer with the reader's suggested status
      // and close — framing may be lost, so the connection cannot continue.
      http_errors.add();
      const std::string body =
          "{\"error\": " + obs::json_quote(read.error_detail) + "}";
      (void)socket.write_all(format_http_response(
          read.error_code == 0 ? 400 : read.error_code, "application/json",
          body, /*keep_alive=*/false));
      break;
    }

    Dispatch dispatch = dispatch_request(service_, read.request);
    const JobResponse response = dispatch.immediate
                                     ? std::move(dispatch.response)
                                     : dispatch.future.get();
    const bool keep_alive =
        read.request.keep_alive() && !stop_.load(std::memory_order_relaxed);
    // The trace ID rides in a header, not the body: response bodies stay
    // byte-identical to the in-process path (which the tests gate on).
    std::vector<std::pair<std::string, std::string>> extra_headers;
    if (dispatch.trace)
      extra_headers.emplace_back("X-Trace-Id", dispatch.trace->id_hex());
    if (!socket.write_all(format_http_response(response.status,
                                               response.content_type,
                                               response.body, keep_alive,
                                               extra_headers)))
      break;
    if (!keep_alive) break;
  }
}

}  // namespace cirstag::serve
