#pragma once

#include <cstddef>
#include <exception>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cirstag::serve {

/// Minimal immutable JSON document tree for request bodies.
///
/// The obs layer only ever *writes* JSON; the serving protocol is the first
/// consumer, so this is deliberately the smallest correct reader: objects,
/// arrays, strings (with \uXXXX escapes decoded to UTF-8), doubles, bools,
/// null. Parsing is recursive descent with an explicit depth limit so a
/// malicious body ("[[[[[…") cannot blow the stack. Numbers are held as
/// doubles — every quantity in the protocol (pin ids, factors, counts) fits
/// exactly in a double's 53-bit mantissa.
class JsonValue {
 public:
  enum class Kind { null, boolean, number, string, array, object };

  JsonValue() = default;

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::null; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::boolean; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::number; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::string; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::array; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::object; }

  /// Typed accessors; throw JsonError when the kind does not match.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<JsonValue>& as_array() const;

  /// Object member by key, or nullptr when absent (throws on non-objects).
  [[nodiscard]] const JsonValue* find(const std::string& key) const;

  // -- convenience lookups with fallbacks (object kind only) ---------------
  [[nodiscard]] double number_or(const std::string& key, double fallback) const;
  [[nodiscard]] bool bool_or(const std::string& key, bool fallback) const;
  [[nodiscard]] std::string string_or(const std::string& key,
                                      const std::string& fallback) const;

  /// Member keys in document order (objects keep insertion order so error
  /// messages and tests are stable).
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>& members()
      const;

 private:
  friend class Parser;
  Kind kind_ = Kind::null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Thrown on malformed documents and kind mismatches; `what()` carries the
/// byte offset of the problem so protocol errors are debuggable from logs.
class JsonError : public std::exception {
 public:
  explicit JsonError(std::string message) : message_(std::move(message)) {}
  [[nodiscard]] const char* what() const noexcept override {
    return message_.c_str();
  }

 private:
  std::string message_;
};

/// Parse one complete JSON document (trailing whitespace allowed, trailing
/// garbage is an error). Throws JsonError on malformed input.
[[nodiscard]] JsonValue parse_json(std::string_view text,
                                   std::size_t max_depth = 64);

}  // namespace cirstag::serve
