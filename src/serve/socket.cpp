#include "serve/socket.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#include <utility>

namespace cirstag::serve {

// ---------------------------------------------------------------------------
// TcpSocket

TcpSocket::~TcpSocket() { close(); }

TcpSocket::TcpSocket(TcpSocket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

TcpSocket& TcpSocket::operator=(TcpSocket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

long TcpSocket::read_some(char* data, std::size_t size) const {
  while (true) {
    const ssize_t n = ::recv(fd_, data, size, 0);
    if (n >= 0) return n;
    if (errno != EINTR) return -1;
  }
}

bool TcpSocket::write_all(const char* data, std::size_t size) const {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n =
        ::send(fd_, data + written, size - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

bool TcpSocket::wait_readable(int timeout_ms) const {
  pollfd pfd{fd_, POLLIN, 0};
  while (true) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc > 0) return (pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0;
    if (rc == 0) return false;
    if (errno != EINTR) return false;
  }
}

void TcpSocket::shutdown_write() const {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void TcpSocket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

// ---------------------------------------------------------------------------
// TcpListener

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      port_(std::exchange(other.port_, 0)),
      error_(std::move(other.error_)) {}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    port_ = std::exchange(other.port_, 0);
    error_ = std::move(other.error_);
  }
  return *this;
}

TcpListener TcpListener::open(std::uint16_t port, int backlog) {
  TcpListener listener;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    listener.error_ = std::string("socket: ") + std::strerror(errno);
    return listener;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    listener.error_ = std::string("bind: ") + std::strerror(errno);
    ::close(fd);
    return listener;
  }
  if (::listen(fd, backlog) < 0) {
    listener.error_ = std::string("listen: ") + std::strerror(errno);
    ::close(fd);
    return listener;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0)
    listener.port_ = ntohs(bound.sin_port);
  listener.fd_ = fd;
  return listener;
}

std::optional<TcpSocket> TcpListener::accept(int timeout_ms) const {
  pollfd pfd{fd_, POLLIN, 0};
  while (true) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc == 0) return std::nullopt;
    if (rc < 0) {
      if (errno == EINTR) return std::nullopt;  // let the caller check flags
      return std::nullopt;
    }
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      return TcpSocket(fd);
    }
    if (errno != EINTR && errno != ECONNABORTED) return std::nullopt;
  }
}

void TcpListener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpSocket tcp_connect(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return TcpSocket{};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  while (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof addr) < 0) {
    if (errno == EINTR) continue;
    ::close(fd);
    return TcpSocket{};
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return TcpSocket(fd);
}

}  // namespace cirstag::serve
