#include "serve/registry.hpp"

#include <chrono>
#include <sstream>
#include <stdexcept>

#include "circuit/cell_library.hpp"
#include "circuit/io.hpp"
#include "io/snapshot.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"

namespace cirstag::serve {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

CircuitRegistry::LoadResult CircuitRegistry::load_from_path(
    const std::string& name, const std::string& path,
    const LoadOptions& options) {
  return load_impl(name, path, /*is_path=*/true, options);
}

CircuitRegistry::LoadResult CircuitRegistry::load_from_text(
    const std::string& name, const std::string& netlist_text,
    const LoadOptions& options) {
  return load_impl(name, netlist_text, /*is_path=*/false, options);
}

CircuitRegistry::LoadResult CircuitRegistry::load_from_snapshot(
    const std::string& name, const std::string& path) {
  static obs::Counter loads("serve.registry.snapshot_loads");
  static obs::Counter load_failures("serve.registry.load_failures");
  static obs::Gauge resident("serve.registry.circuits");

  LoadResult result;
  if (name.empty()) {
    result.error = "circuit name must be non-empty";
    load_failures.add();
    return result;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto [it, inserted] = circuits_.emplace(name, nullptr);
    (void)it;
    if (!inserted) {
      result.error = "circuit '" + name + "' is already loaded or loading";
      result.name_conflict = true;
      load_failures.add();
      return result;
    }
  }

  std::shared_ptr<CircuitRecord> record;
  try {
    static const circuit::CellLibrary lib = circuit::CellLibrary::standard();
    const auto t0 = std::chrono::steady_clock::now();
    io::SnapshotData data = io::read_snapshot(path, lib);
    record = std::make_shared<CircuitRecord>(std::move(data.netlist));
    record->name = name;
    record->options.gnn_epochs = data.gnn_options.epochs;
    record->options.gnn_hidden = data.gnn_options.hidden_dim;
    record->options.exact = data.meta.exact;
    record->train_r2 = data.meta.train_r2;
    record->train_seconds = 0.0;  // nothing trained — that is the point
    // The model must be constructed against the netlist's FINAL address
    // (the record's member), never the temporary SnapshotData field.
    record->model = io::restore_model(record->netlist, data);
    core::SweepOptions sopts;
    sopts.exact = data.meta.exact;
    record->engine = std::make_unique<core::SweepEngine>(
        record->netlist, *record->model, sopts, std::move(data.state));
    record->baseline_seconds = seconds_since(t0);
  } catch (const std::exception& e) {
    std::lock_guard<std::mutex> lock(mutex_);
    circuits_.erase(name);
    result.error = e.what();
    load_failures.add();
    return result;
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    circuits_[name] = record;
    resident.set(static_cast<double>(circuits_.size()));
  }
  loads.add();
  obs::logf_info("serve",
                 "restored circuit '%s' from snapshot: %zu pins, %zu gates, "
                 "R2 %.4f (restore %.2fs, %s mode)",
                 name.c_str(), record->netlist.num_pins(),
                 record->netlist.num_gates(), record->train_r2,
                 record->baseline_seconds,
                 record->options.exact ? "exact" : "fast");
  result.record = std::move(record);
  return result;
}

CircuitRegistry::LoadResult CircuitRegistry::load_impl(
    const std::string& name, const std::string& path_or_text, bool is_path,
    const LoadOptions& options) {
  static obs::Counter loads("serve.registry.loads");
  static obs::Counter load_failures("serve.registry.load_failures");
  static obs::Gauge resident("serve.registry.circuits");

  LoadResult result;
  if (name.empty()) {
    result.error = "circuit name must be non-empty";
    load_failures.add();
    return result;
  }

  // Reserve the name so a concurrent duplicate load fails immediately
  // instead of training a second GNN it can never publish.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto [it, inserted] = circuits_.emplace(name, nullptr);
    (void)it;
    if (!inserted) {
      result.error = "circuit '" + name + "' is already loaded or loading";
      result.name_conflict = true;
      load_failures.add();
      return result;
    }
  }

  std::shared_ptr<CircuitRecord> record;
  try {
    // The netlist keeps a pointer to its cell library, and analyze/sweep
    // requests walk it long after this load returns — the library must have
    // static storage duration.
    static const circuit::CellLibrary lib = circuit::CellLibrary::standard();
    if (is_path) {
      record = std::make_shared<CircuitRecord>(
          circuit::load_netlist(path_or_text, lib));
    } else {
      std::istringstream in(path_or_text);
      record = std::make_shared<CircuitRecord>(circuit::read_netlist(in, lib));
    }
    record->name = name;
    record->options = options;

    gnn::TimingGnnOptions gopts;
    gopts.epochs = options.gnn_epochs;
    gopts.hidden_dim = options.gnn_hidden;
    const auto t_train = std::chrono::steady_clock::now();
    record->model =
        std::make_unique<gnn::TimingGnn>(record->netlist, gopts);
    record->train_r2 = record->model->train().r2;
    record->train_seconds = seconds_since(t_train);

    core::SweepOptions sopts;
    sopts.exact = options.exact;
    const auto t_base = std::chrono::steady_clock::now();
    record->engine = std::make_unique<core::SweepEngine>(
        record->netlist, *record->model, sopts);
    record->baseline_seconds = seconds_since(t_base);
  } catch (const std::exception& e) {
    std::lock_guard<std::mutex> lock(mutex_);
    circuits_.erase(name);
    result.error = e.what();
    load_failures.add();
    return result;
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    circuits_[name] = record;
    resident.set(static_cast<double>(circuits_.size()));
  }
  loads.add();
  obs::logf_info("serve", "loaded circuit '%s': %zu pins, %zu gates, "
                 "R2 %.4f (train %.2fs, baseline %.2fs, %s mode)",
                 name.c_str(), record->netlist.num_pins(),
                 record->netlist.num_gates(), record->train_r2,
                 record->train_seconds, record->baseline_seconds,
                 options.exact ? "exact" : "fast");
  result.record = std::move(record);
  return result;
}

std::shared_ptr<CircuitRecord> CircuitRegistry::lookup(
    const std::string& name) const {
  static obs::Counter hits("serve.registry.hits");
  static obs::Counter misses("serve.registry.misses");
  std::shared_ptr<CircuitRecord> record;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = circuits_.find(name);
    if (it != circuits_.end()) record = it->second;
  }
  if (record == nullptr) {
    misses.add();
    return nullptr;
  }
  hits.add();
  return record;
}

bool CircuitRegistry::unload(const std::string& name) {
  static obs::Counter unloads("serve.registry.unloads");
  static obs::Gauge resident("serve.registry.circuits");
  std::shared_ptr<CircuitRecord> dropped;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = circuits_.find(name);
    if (it == circuits_.end() || it->second == nullptr) return false;
    dropped = std::move(it->second);
    circuits_.erase(it);
    resident.set(static_cast<double>(circuits_.size()));
  }
  unloads.add();
  obs::logf_info("serve", "unloaded circuit '%s'", name.c_str());
  // `dropped` may carry the last reference; the record (engine, model,
  // solver cache) is destroyed here, outside the registry lock.
  return true;
}

std::vector<std::string> CircuitRegistry::names() const {
  std::vector<std::string> out;
  std::lock_guard<std::mutex> lock(mutex_);
  out.reserve(circuits_.size());
  for (const auto& [name, record] : circuits_)
    if (record != nullptr) out.push_back(name);
  return out;
}

std::vector<CircuitRegistry::CircuitInfo> CircuitRegistry::infos() const {
  std::vector<CircuitInfo> out;
  std::lock_guard<std::mutex> lock(mutex_);
  out.reserve(circuits_.size());
  for (const auto& [name, record] : circuits_) {
    if (record == nullptr) continue;
    out.push_back({name, record->netlist.num_pins(),
                   record->netlist.num_gates(), record->options.exact,
                   record->train_r2});
  }
  return out;
}

std::size_t CircuitRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& [name, record] : circuits_)
    if (record != nullptr) ++n;
  return n;
}

}  // namespace cirstag::serve
