#include "serve/json.hpp"

#include <cmath>
#include <cstdlib>
#include <string_view>

namespace cirstag::serve {

namespace {

[[noreturn]] void fail(std::size_t offset, const std::string& what) {
  throw JsonError("json: " + what + " at offset " + std::to_string(offset));
}

}  // namespace

/// Recursive-descent parser over a string_view with an explicit cursor.
/// Lives in the enclosing namespace (not the anonymous one) so the header's
/// friend declaration can name it.
class Parser {
 public:
  Parser(std::string_view text, std::size_t max_depth)
      : text_(text), max_depth_(max_depth) {}

  JsonValue parse_document() {
    JsonValue v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail(pos_, "trailing characters after document");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail(pos_, "unexpected end of document");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c)
      fail(pos_, std::string("expected '") + c + "', got '" + peek() + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value(std::size_t depth) {
    if (depth > max_depth_) fail(pos_, "nesting deeper than the depth limit");
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return make_string(parse_string());
      case 't':
        if (consume_literal("true")) return make_bool(true);
        fail(pos_, "invalid literal");
      case 'f':
        if (consume_literal("false")) return make_bool(false);
        fail(pos_, "invalid literal");
      case 'n':
        if (consume_literal("null")) return JsonValue{};
        fail(pos_, "invalid literal");
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
        fail(pos_, std::string("unexpected character '") + c + "'");
    }
  }

  JsonValue parse_object(std::size_t depth) {
    JsonValue v;
    v.kind_ = JsonValue::Kind::object;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      if (peek() != '"') fail(pos_, "object key must be a string");
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object_.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail(pos_ - 1, "expected ',' or '}' in object");
    }
  }

  JsonValue parse_array(std::size_t depth) {
    JsonValue v;
    v.kind_ = JsonValue::Kind::array;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array_.push_back(parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail(pos_ - 1, "expected ',' or ']' in array");
    }
  }

  /// Parse a quoted string with escape handling; cursor on the open quote.
  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail(pos_, "unterminated string");
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c < 0x20) fail(pos_, "unescaped control character in string");
      if (c != '\\') {
        out += static_cast<char>(c);
        ++pos_;
        continue;
      }
      ++pos_;  // consume backslash
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': append_unicode_escape(out); break;
        default: fail(pos_ - 1, "invalid escape sequence");
      }
    }
  }

  unsigned parse_hex4() {
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = peek();
      ++pos_;
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<unsigned>(c - 'A' + 10);
      else fail(pos_ - 1, "invalid \\u escape digit");
    }
    return value;
  }

  /// \uXXXX (cursor past the 'u'), including surrogate pairs, to UTF-8.
  void append_unicode_escape(std::string& out) {
    unsigned cp = parse_hex4();
    if (cp >= 0xD800 && cp <= 0xDBFF) {
      if (!consume_literal("\\u")) fail(pos_, "lone high surrogate");
      const unsigned low = parse_hex4();
      if (low < 0xDC00 || low > 0xDFFF) fail(pos_, "invalid low surrogate");
      cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
      fail(pos_, "lone low surrogate");
    }
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!std::isdigit(static_cast<unsigned char>(peek())))
      fail(pos_, "invalid number");
    // JSON forbids leading zeros ("01"); strtod would accept them.
    if (peek() == '0' && pos_ + 1 < text_.size() &&
        std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])))
      fail(pos_, "leading zero in number");
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_])))
        fail(pos_, "digit required after decimal point");
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_])))
        fail(pos_, "digit required in exponent");
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail(start, "invalid number");
    if (!std::isfinite(value)) fail(start, "number out of double range");
    JsonValue v;
    v.kind_ = JsonValue::Kind::number;
    v.number_ = value;
    return v;
  }

  static JsonValue make_string(std::string s) {
    JsonValue v;
    v.kind_ = JsonValue::Kind::string;
    v.string_ = std::move(s);
    return v;
  }

  static JsonValue make_bool(bool b) {
    JsonValue v;
    v.kind_ = JsonValue::Kind::boolean;
    v.bool_ = b;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t max_depth_;
};

namespace {

[[noreturn]] void kind_mismatch(const char* wanted) {
  throw JsonError(std::string("json: value is not ") + wanted);
}

}  // namespace

bool JsonValue::as_bool() const {
  if (kind_ != Kind::boolean) kind_mismatch("a boolean");
  return bool_;
}

double JsonValue::as_number() const {
  if (kind_ != Kind::number) kind_mismatch("a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::string) kind_mismatch("a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  if (kind_ != Kind::array) kind_mismatch("an array");
  return array_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind_ != Kind::object) kind_mismatch("an object");
  for (const auto& [k, v] : object_)
    if (k == key) return &v;
  return nullptr;
}

double JsonValue::number_or(const std::string& key, double fallback) const {
  const JsonValue* v = find(key);
  return v == nullptr ? fallback : v->as_number();
}

bool JsonValue::bool_or(const std::string& key, bool fallback) const {
  const JsonValue* v = find(key);
  return v == nullptr ? fallback : v->as_bool();
}

std::string JsonValue::string_or(const std::string& key,
                                 const std::string& fallback) const {
  const JsonValue* v = find(key);
  return v == nullptr ? fallback : v->as_string();
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  if (kind_ != Kind::object) kind_mismatch("an object");
  return object_;
}

JsonValue parse_json(std::string_view text, std::size_t max_depth) {
  return Parser(text, max_depth).parse_document();
}

}  // namespace cirstag::serve
