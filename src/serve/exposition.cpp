#include "serve/exposition.hpp"

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/window.hpp"
#include "serve/handlers.hpp"

namespace cirstag::serve {

namespace {

constexpr std::string_view kLatencyPrefix = "serve.latency_ms.";
constexpr std::string_view kWindowLatencyPrefix = "serve.window.latency_ms.";
constexpr std::string_view kWindowRequestsPrefix = "serve.window.requests.";

bool has_prefix(const std::string& name, std::string_view prefix) {
  return name.size() > prefix.size() &&
         name.compare(0, prefix.size(), prefix) == 0;
}

void append_value(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void append_bound(std::string& out, double v) {
  // Bucket bounds are human-chosen round numbers; %g keeps them readable
  // ("le=\"500\"", not "le=\"500.00000000000000\"").
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  out += buf;
}

std::string endpoint_label(const std::string& endpoint) {
  return "{endpoint=\"" + prom_escape_label(endpoint) + "\"}";
}

/// One histogram family in classic text-exposition shape: cumulative
/// `_bucket` series ending at +Inf, then `_sum` and `_count`. `labels` is
/// either empty or a single rendered `name="value"` pair (no braces).
void append_histogram_samples(std::string& out, const std::string& family,
                              const std::string& labels,
                              const obs::MetricsRegistry::HistogramSnapshot&
                                  snap) {
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < snap.buckets.size(); ++b) {
    cumulative += snap.buckets[b];
    out += family + "_bucket{";
    if (!labels.empty()) out += labels + ",";
    out += "le=\"";
    if (b < snap.bounds.size()) {
      append_bound(out, snap.bounds[b]);
    } else {
      out += "+Inf";
    }
    out += "\"} " + std::to_string(cumulative) + "\n";
  }
  out += family + "_sum";
  if (!labels.empty()) out += "{" + labels + "}";
  out += " ";
  append_value(out, snap.sum);
  out += "\n";
  out += family + "_count";
  if (!labels.empty()) out += "{" + labels + "}";
  out += " " + std::to_string(snap.count) + "\n";
}

}  // namespace

std::string prom_escape_label(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string prom_sanitize_name(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (!out.empty() && out.front() >= '0' && out.front() <= '9')
    out.insert(out.begin(), '_');
  return out;
}

std::string render_metrics_exposition(Service& service) {
  const obs::MetricsRegistry::Snapshot snap =
      obs::MetricsRegistry::global().snapshot();
  std::string out;
  out.reserve(16 * 1024);

  for (const auto& [name, value] : snap.counters) {
    const std::string family = "cirstag_" + prom_sanitize_name(name) +
                               "_total";
    out += "# TYPE " + family + " counter\n";
    out += family + " " + std::to_string(value) + "\n";
  }

  for (const auto& [name, value] : snap.gauges) {
    const std::string family = "cirstag_" + prom_sanitize_name(name);
    out += "# TYPE " + family + " gauge\n";
    out += family + " ";
    append_value(out, value);
    out += "\n";
  }

  // Per-endpoint latency histograms fold into one labeled family; every
  // other histogram renders under its own sanitized name.
  bool latency_type_emitted = false;
  for (const auto& [name, hist] : snap.histograms) {
    if (has_prefix(name, kLatencyPrefix)) {
      if (!latency_type_emitted) {
        out += "# TYPE cirstag_serve_latency_ms histogram\n";
        latency_type_emitted = true;
      }
      const std::string endpoint = name.substr(kLatencyPrefix.size());
      append_histogram_samples(out, "cirstag_serve_latency_ms",
                               "endpoint=\"" + prom_escape_label(endpoint) +
                                   "\"",
                               hist);
    } else {
      const std::string family = "cirstag_" + prom_sanitize_name(name);
      out += "# TYPE " + family + " histogram\n";
      append_histogram_samples(out, family, "", hist);
    }
  }

  // Rolling-window quantiles as a summary family: the "live p99" a scrape
  // is after, decaying with traffic instead of averaging over the uptime.
  const auto window_hists = obs::WindowedRegistry::global()
                                .histogram_snapshots();
  bool window_type_emitted = false;
  for (const auto& entry : window_hists) {
    if (!has_prefix(entry.name, kWindowLatencyPrefix)) continue;
    if (!window_type_emitted) {
      out += "# TYPE cirstag_serve_window_latency_ms summary\n";
      window_type_emitted = true;
    }
    const std::string endpoint = entry.name.substr(kWindowLatencyPrefix.size());
    const std::string labels =
        "endpoint=\"" + prom_escape_label(endpoint) + "\"";
    for (const double q : {0.5, 0.95, 0.99}) {
      out += "cirstag_serve_window_latency_ms{" + labels + ",quantile=\"";
      append_bound(out, q);
      out += "\"} ";
      append_value(out, entry.snap.quantile(q));
      out += "\n";
    }
    out += "cirstag_serve_window_latency_ms_sum{" + labels + "} ";
    append_value(out, entry.snap.sum);
    out += "\n";
    out += "cirstag_serve_window_latency_ms_count{" + labels + "} " +
           std::to_string(entry.snap.count) + "\n";
  }

  // Windowed request totals and rates: gauges, not counters — a rolling
  // total can decrease as slots age out.
  const auto window_counters = obs::WindowedRegistry::global()
                                   .counter_snapshots();
  bool requests_type_emitted = false;
  for (const auto& entry : window_counters) {
    if (!has_prefix(entry.name, kWindowRequestsPrefix)) continue;
    if (!requests_type_emitted) {
      out += "# TYPE cirstag_serve_window_requests gauge\n";
      requests_type_emitted = true;
    }
    const std::string endpoint =
        entry.name.substr(kWindowRequestsPrefix.size());
    out += "cirstag_serve_window_requests" + endpoint_label(endpoint) + " " +
           std::to_string(entry.total) + "\n";
  }
  bool qps_type_emitted = false;
  for (const auto& entry : window_counters) {
    if (!has_prefix(entry.name, kWindowRequestsPrefix)) continue;
    if (!qps_type_emitted) {
      out += "# TYPE cirstag_serve_window_qps gauge\n";
      qps_type_emitted = true;
    }
    const std::string endpoint =
        entry.name.substr(kWindowRequestsPrefix.size());
    out += "cirstag_serve_window_qps" + endpoint_label(endpoint) + " ";
    append_value(out, entry.rate_per_second);
    out += "\n";
  }

  out += "# TYPE cirstag_serve_registry_resident_circuits gauge\n";
  out += "cirstag_serve_registry_resident_circuits " +
         std::to_string(service.registry.size()) + "\n";
  out += "# TYPE cirstag_serve_scheduler_queue_depth_live gauge\n";
  out += "cirstag_serve_scheduler_queue_depth_live " +
         std::to_string(service.scheduler.queue_depth()) + "\n";
  return out;
}

std::string render_stats_json(Service& service) {
  const obs::MetricsRegistry::Snapshot snap =
      obs::MetricsRegistry::global().snapshot();
  const auto window_hists = obs::WindowedRegistry::global()
                                .histogram_snapshots();
  const auto window_counters = obs::WindowedRegistry::global()
                                   .counter_snapshots();

  const auto counter = [&snap](std::string_view name) -> std::uint64_t {
    for (const auto& [n, v] : snap.counters)
      if (n == name) return v;
    return 0;
  };

  std::string out = "{\"uptime_seconds\": ";
  obs::append_json_number(
      out, std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         service.started)
               .count());
  out += ", \"queue_depth\": " +
         std::to_string(service.scheduler.queue_depth());
  out += ", \"draining\": ";
  out += service.scheduler.draining() ? "true" : "false";

  // Per-endpoint rolling-window latency + rate. The window total can lag
  // the matching histogram count by a scrape race; both come from the same
  // registry walk here, so within this document they agree.
  out += ", \"window\": {\"endpoints\": {";
  bool first = true;
  for (const auto& entry : window_hists) {
    if (!has_prefix(entry.name, kWindowLatencyPrefix)) continue;
    const std::string endpoint = entry.name.substr(kWindowLatencyPrefix.size());
    if (!first) out += ", ";
    first = false;
    out += obs::json_quote(endpoint);
    out += ": {\"count\": " + std::to_string(entry.snap.count);
    out += ", \"p50_ms\": ";
    obs::append_json_number(out, entry.snap.quantile(0.50));
    out += ", \"p95_ms\": ";
    obs::append_json_number(out, entry.snap.quantile(0.95));
    out += ", \"p99_ms\": ";
    obs::append_json_number(out, entry.snap.quantile(0.99));
    double qps = 0.0;
    for (const auto& c : window_counters) {
      if (has_prefix(c.name, kWindowRequestsPrefix) &&
          c.name.substr(kWindowRequestsPrefix.size()) == endpoint) {
        qps = c.rate_per_second;
        break;
      }
    }
    out += ", \"qps\": ";
    obs::append_json_number(out, qps);
    out += "}";
  }
  out += "}, \"window_seconds\": ";
  obs::append_json_number(
      out, window_hists.empty() ? 0.0 : window_hists.front().window_seconds);
  out += "}";

  // Batch occupancy from the cumulative batch-size histogram.
  const std::uint64_t batches = counter("serve.scheduler.batches_formed");
  const std::uint64_t batched = counter("serve.scheduler.batched_requests");
  out += ", \"batch\": {\"batches_formed\": " + std::to_string(batches);
  out += ", \"batched_requests\": " + std::to_string(batched);
  out += ", \"mean_occupancy\": ";
  obs::append_json_number(out, batches == 0
                                   ? 0.0
                                   : static_cast<double>(batched) /
                                         static_cast<double>(batches));
  out += "}";

  out += ", \"registry\": {\"resident\": " +
         std::to_string(service.registry.size());
  out += ", \"hits\": " + std::to_string(counter("serve.registry.hits"));
  out += ", \"misses\": " + std::to_string(counter("serve.registry.misses"));
  out += ", \"circuits\": [";
  const auto infos = service.registry.infos();
  for (std::size_t i = 0; i < infos.size(); ++i) {
    if (i != 0) out += ", ";
    out += "{\"name\": ";
    out += obs::json_quote(infos[i].name);
    out += ", \"pins\": " + std::to_string(infos[i].pins);
    out += ", \"gates\": " + std::to_string(infos[i].gates);
    out += "}";
  }
  out += "]}";

  // Arena / cache / warm-state reuse counters, surfaced as one section so
  // an operator sees the memory+compute reuse story in a glance.
  out += ", \"reuse\": {";
  first = true;
  for (const auto& [name, value] : snap.counters) {
    if (name.find("arena") == std::string::npos &&
        name.find("cache") == std::string::npos &&
        name.find("reuse") == std::string::npos &&
        name.find("warm_start") == std::string::npos)
      continue;
    if (!first) out += ", ";
    first = false;
    out += obs::json_quote(name);
    out += ": " + std::to_string(value);
  }
  out += "}";

  out += ", \"counters\": {";
  first = true;
  for (const auto& [name, value] : snap.counters) {
    if (!first) out += ", ";
    first = false;
    out += obs::json_quote(name);
    out += ": " + std::to_string(value);
  }
  out += "}, \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    if (!first) out += ", ";
    first = false;
    out += obs::json_quote(name);
    out += ": ";
    obs::append_json_number(out, value);
  }
  out += "}}";
  return out;
}

}  // namespace cirstag::serve
