#include "serve/http.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace cirstag::serve {

namespace {

std::string to_lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t')) --e;
  return s.substr(b, e - b);
}

bool is_token(const std::string& s) {
  if (s.empty()) return false;
  for (const char c : s) {
    if (c <= 0x20 || c >= 0x7f) return false;
  }
  return true;
}

}  // namespace

bool HttpRequest::keep_alive() const {
  const std::string* conn = header("connection");
  if (conn == nullptr) return true;  // HTTP/1.1 default
  return to_lower(*conn) != "close";
}

std::optional<HttpRequest> parse_http_head(const std::string& head,
                                           std::string& error) {
  HttpRequest req;
  std::size_t pos = 0;
  const auto next_line = [&](std::string& line) {
    const std::size_t eol = head.find("\r\n", pos);
    if (eol == std::string::npos) return false;
    line = head.substr(pos, eol - pos);
    pos = eol + 2;
    return true;
  };

  std::string line;
  if (!next_line(line) || line.empty()) {
    error = "missing request line";
    return std::nullopt;
  }
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = sp1 == std::string::npos
                              ? std::string::npos
                              : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos ||
      line.find(' ', sp2 + 1) != std::string::npos) {
    error = "malformed request line";
    return std::nullopt;
  }
  req.method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string version = line.substr(sp2 + 1);
  if (req.method.empty() ||
      !std::all_of(req.method.begin(), req.method.end(), [](unsigned char c) {
        return std::isupper(c) || c == '-';
      })) {
    error = "invalid method token";
    return std::nullopt;
  }
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    error = "unsupported HTTP version '" + version + "'";
    return std::nullopt;
  }
  if (target.empty() || target[0] != '/') {
    error = "request target must be origin-form";
    return std::nullopt;
  }
  const std::size_t q = target.find('?');
  if (q != std::string::npos) {
    req.query = target.substr(q + 1);
    target.resize(q);
  }
  req.path = std::move(target);

  while (next_line(line)) {
    if (line.empty()) {  // end of headers
      if (pos != head.size()) {
        error = "bytes after header terminator";
        return std::nullopt;
      }
      return req;
    }
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos || colon == 0) {
      error = "malformed header line";
      return std::nullopt;
    }
    const std::string name = line.substr(0, colon);
    if (!is_token(name)) {
      error = "malformed header name";
      return std::nullopt;
    }
    req.headers[to_lower(name)] = trim(line.substr(colon + 1));
  }
  error = "headers not terminated";
  return std::nullopt;
}

bool HttpReader::fill(std::size_t need, HttpReadResult& out, bool first_byte,
                      int idle_timeout_ms) {
  char chunk[8192];
  while (buffer_.size() < need) {
    if (first_byte && buffer_.empty() && idle_timeout_ms >= 0) {
      if (!socket_->wait_readable(idle_timeout_ms)) {
        out.status = HttpReadResult::Status::timeout;
        return false;
      }
    }
    const long n = socket_->read_some(chunk, sizeof chunk);
    if (n == 0) {
      out.status = buffer_.empty() && first_byte
                       ? HttpReadResult::Status::closed
                       : HttpReadResult::Status::io_error;
      return false;
    }
    if (n < 0) {
      out.status = HttpReadResult::Status::io_error;
      return false;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
  return true;
}

HttpReadResult HttpReader::read_request(int idle_timeout_ms) {
  HttpReadResult out;

  // Grow the buffer until the header terminator appears (or limits trip).
  std::size_t head_end;
  while ((head_end = buffer_.find("\r\n\r\n")) == std::string::npos) {
    if (buffer_.size() > limits_.max_header_bytes) {
      out.status = HttpReadResult::Status::too_large;
      out.error_code = 431;
      out.error_detail = "header block larger than " +
                         std::to_string(limits_.max_header_bytes) + " bytes";
      return out;
    }
    if (!fill(buffer_.size() + 1, out, /*first_byte=*/true, idle_timeout_ms))
      return out;
  }
  // The terminator may land in the same read that blew the limit — an
  // oversized head that arrives in one chunk must still be rejected.
  if (head_end + 4 > limits_.max_header_bytes) {
    out.status = HttpReadResult::Status::too_large;
    out.error_code = 431;
    out.error_detail = "header block larger than " +
                       std::to_string(limits_.max_header_bytes) + " bytes";
    return out;
  }

  std::string error;
  auto parsed = parse_http_head(buffer_.substr(0, head_end + 4), error);
  if (!parsed) {
    out.status = HttpReadResult::Status::bad_request;
    out.error_code = 400;
    out.error_detail = error;
    return out;
  }
  out.request = std::move(*parsed);

  std::size_t body_len = 0;
  if (const std::string* cl = out.request.header("content-length")) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(cl->c_str(), &end, 10);
    if (end != cl->c_str() + cl->size() || cl->empty()) {
      out.status = HttpReadResult::Status::bad_request;
      out.error_code = 400;
      out.error_detail = "invalid Content-Length";
      return out;
    }
    body_len = static_cast<std::size_t>(v);
  } else if (out.request.header("transfer-encoding") != nullptr) {
    out.status = HttpReadResult::Status::bad_request;
    out.error_code = 400;
    out.error_detail = "chunked transfer encoding not supported";
    return out;
  }
  if (body_len > limits_.max_body_bytes) {
    out.status = HttpReadResult::Status::too_large;
    out.error_code = 413;
    out.error_detail = "body larger than " +
                       std::to_string(limits_.max_body_bytes) + " bytes";
    return out;
  }

  const std::size_t total = head_end + 4 + body_len;
  if (!fill(total, out, /*first_byte=*/false, -1)) return out;
  out.request.body = buffer_.substr(head_end + 4, body_len);
  buffer_.erase(0, total);
  out.status = HttpReadResult::Status::ok;
  return out;
}

const char* http_status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 422: return "Unprocessable Entity";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

std::string format_http_response(int status, const std::string& content_type,
                                 const std::string& body, bool keep_alive) {
  return format_http_response(status, content_type, body, keep_alive, {});
}

std::string format_http_response(
    int status, const std::string& content_type, const std::string& body,
    bool keep_alive,
    const std::vector<std::pair<std::string, std::string>>& extra_headers) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " +
                    http_status_reason(status) + "\r\n";
  out += "Content-Type: " + content_type + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  for (const auto& [name, value] : extra_headers)
    out += name + ": " + value + "\r\n";
  out += "\r\n";
  out += body;
  return out;
}

std::optional<HttpResponse> http_roundtrip(const TcpSocket& socket,
                                           const std::string& method,
                                           const std::string& path,
                                           const std::string& body) {
  std::string req = method + " " + path + " HTTP/1.1\r\n";
  req += "Host: 127.0.0.1\r\n";
  if (!body.empty()) req += "Content-Type: application/json\r\n";
  req += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  req += "\r\n";
  req += body;
  if (!socket.write_all(req)) return std::nullopt;

  // Read the status line + headers.
  std::string buf;
  char chunk[8192];
  std::size_t head_end;
  while ((head_end = buf.find("\r\n\r\n")) == std::string::npos) {
    const long n = socket.read_some(chunk, sizeof chunk);
    if (n <= 0) return std::nullopt;
    buf.append(chunk, static_cast<std::size_t>(n));
  }
  HttpResponse resp;
  const std::size_t line_end = buf.find("\r\n");
  const std::string status_line = buf.substr(0, line_end);
  if (status_line.size() < 12 || status_line.compare(0, 5, "HTTP/") != 0)
    return std::nullopt;
  resp.status = std::atoi(status_line.c_str() + 9);

  std::size_t pos = line_end + 2;
  while (pos < head_end) {
    const std::size_t eol = buf.find("\r\n", pos);
    const std::string line = buf.substr(pos, eol - pos);
    pos = eol + 2;
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    resp.headers[to_lower(line.substr(0, colon))] =
        trim(line.substr(colon + 1));
  }

  std::size_t body_len = 0;
  const auto it = resp.headers.find("content-length");
  if (it != resp.headers.end())
    body_len = static_cast<std::size_t>(std::strtoull(it->second.c_str(),
                                                      nullptr, 10));
  const std::size_t total = head_end + 4 + body_len;
  while (buf.size() < total) {
    const long n = socket.read_some(chunk, sizeof chunk);
    if (n <= 0) return std::nullopt;
    buf.append(chunk, static_cast<std::size_t>(n));
  }
  resp.body = buf.substr(head_end + 4, body_len);
  return resp;
}

}  // namespace cirstag::serve
