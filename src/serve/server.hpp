#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/handlers.hpp"
#include "serve/http.hpp"
#include "serve/socket.hpp"

namespace cirstag::serve {

struct ServerOptions {
  std::uint16_t port = 8437;  ///< 0 = kernel-assigned (tests)
  HttpLimits limits;
  Scheduler::Options scheduler;
};

/// The serving daemon: a loopback HTTP/1.1 listener in front of a Service.
///
/// Threading model: blocking sockets, one connection thread per accepted
/// client (keep-alive, pipelining-capable), all request execution delegated
/// to the Service's scheduler — connection threads only parse, submit, and
/// wait. The accept loop polls in short ticks so a stop request (SIGINT /
/// SIGTERM via the CLI, request_stop() from tests) is observed promptly and
/// turns into a graceful drain: stop accepting, finish every admitted
/// request, answer late arrivals 503, join connection threads, return.
class Server {
 public:
  explicit Server(ServerOptions options = {});
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen; false (with `error` set) when the port is taken.
  [[nodiscard]] bool start(std::string& error);

  /// Bound port; valid after start() (resolves a kernel-assigned port 0).
  [[nodiscard]] std::uint16_t port() const { return listener_.port(); }

  [[nodiscard]] Service& service() { return service_; }

  /// Accept loop; returns after a graceful drain once request_stop() is
  /// called or `should_stop` returns true (checked every accept tick,
  /// ~200ms — the CLI passes a signal-flag probe here).
  void serve_forever(const std::function<bool()>& should_stop = {});

  /// Ask serve_forever to drain and return. Thread-safe (one atomic store).
  void request_stop() { stop_.store(true, std::memory_order_relaxed); }

 private:
  void connection_loop(TcpSocket socket);
  void drain_and_join();

  ServerOptions options_;
  Service service_;
  TcpListener listener_;
  std::atomic<bool> stop_{false};
  std::mutex threads_mutex_;
  std::vector<std::thread> threads_;
};

}  // namespace cirstag::serve
