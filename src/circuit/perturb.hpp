#pragma once

#include <vector>

#include "circuit/netlist.hpp"
#include "graphs/graph.hpp"
#include "linalg/matrix.hpp"
#include "linalg/rng.hpp"

namespace cirstag::circuit {

/// --- score-driven node selection (Table I / Table II protocol) -----------

/// Indices of the `fraction` highest-scoring entries, excluding any index in
/// `excluded` (the paper excludes output pins "as they do not directly
/// affect internal timing dynamics").
[[nodiscard]] std::vector<std::size_t> select_top_fraction(
    std::span<const double> scores, double fraction,
    std::span<const std::size_t> excluded = {});

/// Indices of the `fraction` lowest-scoring entries (the "stable" cohort).
[[nodiscard]] std::vector<std::size_t> select_bottom_fraction(
    std::span<const double> scores, double fraction,
    std::span<const std::size_t> excluded = {});

/// --- Case A: node-feature (capacitance) perturbation ----------------------

/// Copy of `nl` with the capacitance of every pin in `pins` scaled by
/// `factor` (the paper's "scale factor = 5x / 10x").
[[nodiscard]] Netlist perturb_pin_capacitances(
    const Netlist& nl, std::span<const std::size_t> pins, double factor);

/// Copy of `features` with the capacitance column scaled by `factor` on the
/// selected rows — the narrow GNN-input view of the perturbation (only the
/// cap column moves).
[[nodiscard]] linalg::Matrix perturb_capacitance_features(
    const linalg::Matrix& features, std::span<const std::size_t> pins,
    double factor, std::size_t cap_column);

/// Physically-consistent feature perturbation: apply the capacitance scaling
/// to the netlist and re-derive the full pin-feature matrix, so dependent
/// features (net loads) move together with the caps — what a timing GNN
/// would actually see after an ECO. This is the Table-I protocol.
[[nodiscard]] linalg::Matrix perturbed_pin_features(
    const Netlist& nl, std::span<const std::size_t> pins, double factor);

/// Relative changes |y' - y| / max(|y|, eps) elementwise.
[[nodiscard]] std::vector<double> relative_changes(
    std::span<const double> base, std::span<const double> perturbed,
    double eps = 1e-9);

/// --- Case B: topology perturbation ----------------------------------------

/// Copy of `g` where, for each selected node, one random incident edge is
/// rewired: the far endpoint is replaced with a uniformly random node
/// (avoiding self-loops and duplicate rewires of the same edge).
[[nodiscard]] graphs::Graph rewire_around_nodes(
    const graphs::Graph& g, std::span<const std::size_t> nodes,
    linalg::Rng& rng);

/// Copy of `g` with the listed edges rewired (one endpoint randomized).
[[nodiscard]] graphs::Graph rewire_edges(const graphs::Graph& g,
                                         std::span<const graphs::EdgeId> edges,
                                         linalg::Rng& rng);

}  // namespace cirstag::circuit
