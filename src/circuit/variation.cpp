#include "circuit/variation.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cirstag::circuit {

MonteCarloResult monte_carlo_sta(const Netlist& nl,
                                 const VariationModel& model,
                                 std::size_t samples, const StaOptions& opts) {
  if (!nl.finalized())
    throw std::invalid_argument("monte_carlo_sta: netlist must be finalized");
  if (samples == 0)
    throw std::invalid_argument("monte_carlo_sta: need at least one sample");

  linalg::Rng rng(model.seed);
  const std::size_t n = nl.num_pins();

  MonteCarloResult res;
  res.samples = samples;
  res.arrival_mean.assign(n, 0.0);
  res.arrival_std.assign(n, 0.0);
  std::vector<double> m2(n, 0.0);  // Welford accumulators
  std::vector<double> worst_samples;
  worst_samples.reserve(samples);

  std::vector<double> gate_scale(nl.num_gates(), 1.0);
  Netlist working = nl;

  for (std::size_t s = 0; s < samples; ++s) {
    const double global = std::exp(rng.normal(0.0, model.global_sigma));
    for (auto& g : gate_scale)
      g = global * std::exp(rng.normal(0.0, model.local_sigma));
    for (PinId p = 0; p < n; ++p) {
      const double base = nl.pin(p).capacitance;
      if (base <= 0.0) continue;
      working.set_pin_capacitance(
          p, base * std::exp(rng.normal(0.0, model.cap_sigma)));
    }

    const TimingReport rep = run_sta(working, opts, gate_scale);
    worst_samples.push_back(rep.worst_arrival);
    const double count = static_cast<double>(s + 1);
    for (PinId p = 0; p < n; ++p) {
      const double delta = rep.arrival[p] - res.arrival_mean[p];
      res.arrival_mean[p] += delta / count;
      m2[p] += delta * (rep.arrival[p] - res.arrival_mean[p]);
    }
  }

  for (PinId p = 0; p < n; ++p)
    res.arrival_std[p] =
        samples > 1 ? std::sqrt(m2[p] / static_cast<double>(samples - 1)) : 0.0;

  double mean = 0.0;
  for (double w : worst_samples) mean += w;
  mean /= static_cast<double>(samples);
  double var = 0.0;
  for (double w : worst_samples) var += (w - mean) * (w - mean);
  res.worst_mean = mean;
  res.worst_std =
      samples > 1 ? std::sqrt(var / static_cast<double>(samples - 1)) : 0.0;

  std::sort(worst_samples.begin(), worst_samples.end());
  const auto p95_idx = static_cast<std::size_t>(
      0.95 * static_cast<double>(worst_samples.size() - 1));
  res.worst_p95 = worst_samples[p95_idx];
  return res;
}

std::vector<Corner> standard_corners() {
  return {{"fast", 0.85}, {"typical", 1.0}, {"slow", 1.25}};
}

std::vector<double> corner_analysis(const Netlist& nl,
                                    std::span<const Corner> corners,
                                    const StaOptions& opts) {
  std::vector<double> out;
  out.reserve(corners.size());
  for (const Corner& c : corners) {
    const std::vector<double> scale(nl.num_gates(), c.delay_scale);
    out.push_back(run_sta(nl, opts, scale).worst_arrival);
  }
  return out;
}

}  // namespace cirstag::circuit
