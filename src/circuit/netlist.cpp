#include "circuit/netlist.hpp"

#include <queue>
#include <stdexcept>

namespace cirstag::circuit {

PinId Netlist::add_primary_input() {
  Pin pin;
  pin.kind = PinKind::PrimaryInput;
  pin.capacitance = 0.0;  // port itself carries no pin load
  const auto pid = static_cast<PinId>(pins_.size());
  pins_.push_back(pin);

  Net net;
  net.driver = pid;
  net.wire_resistance = 0.08;
  net.wire_capacitance = 0.4;
  const auto nid = static_cast<NetId>(nets_.size());
  nets_.push_back(net);
  pins_[pid].net = nid;

  primary_inputs_.push_back(pid);
  finalized_ = false;
  return pid;
}

GateId Netlist::add_gate(CellTypeId type, std::uint32_t module_label) {
  const CellType& ct = lib_->cell(type);
  const auto gid = static_cast<GateId>(gates_.size());

  Gate gate;
  gate.type = type;
  gate.module_label = module_label;
  gate.inputs.assign(ct.num_inputs, kInvalidId);

  // Input pins.
  for (std::size_t i = 0; i < ct.num_inputs; ++i) {
    Pin pin;
    pin.kind = PinKind::CellInput;
    pin.gate = gid;
    pin.capacitance = ct.input_capacitance;
    gate.inputs[i] = static_cast<PinId>(pins_.size());
    pins_.push_back(pin);
  }

  // Output pin + the net it drives.
  Pin out;
  out.kind = PinKind::CellOutput;
  out.gate = gid;
  out.capacitance = 0.2;  // small output diffusion cap
  const auto out_pid = static_cast<PinId>(pins_.size());
  pins_.push_back(out);
  gate.output = out_pid;

  Net net;
  net.driver = out_pid;
  const auto nid = static_cast<NetId>(nets_.size());
  nets_.push_back(net);
  pins_[out_pid].net = nid;

  gates_.push_back(std::move(gate));
  finalized_ = false;
  return gid;
}

void Netlist::connect_input(GateId gate, std::size_t slot, PinId driver_pin) {
  if (gate >= gates_.size()) throw std::out_of_range("connect_input: gate");
  Gate& g = gates_[gate];
  if (slot >= g.inputs.size()) throw std::out_of_range("connect_input: slot");
  if (driver_pin >= pins_.size())
    throw std::out_of_range("connect_input: driver pin");
  const Pin& drv = pins_[driver_pin];
  if (drv.kind != PinKind::PrimaryInput && drv.kind != PinKind::CellOutput)
    throw std::invalid_argument("connect_input: driver must be PI or cell output");

  const PinId in_pid = g.inputs[slot];
  Pin& in_pin = pins_[in_pid];
  if (in_pin.net != kInvalidId)
    throw std::invalid_argument("connect_input: slot already connected");
  in_pin.net = drv.net;
  nets_[drv.net].sinks.push_back(in_pid);
  finalized_ = false;
}

PinId Netlist::add_primary_output(PinId driver_pin, double load_capacitance) {
  if (driver_pin >= pins_.size())
    throw std::out_of_range("add_primary_output: driver pin");
  const Pin& drv = pins_[driver_pin];
  if (drv.kind != PinKind::PrimaryInput && drv.kind != PinKind::CellOutput)
    throw std::invalid_argument("add_primary_output: driver must be PI or cell output");

  Pin pin;
  pin.kind = PinKind::PrimaryOutput;
  pin.capacitance = load_capacitance;
  pin.net = drv.net;
  const auto pid = static_cast<PinId>(pins_.size());
  pins_.push_back(pin);
  nets_[drv.net].sinks.push_back(pid);
  primary_outputs_.push_back(pid);
  finalized_ = false;
  return pid;
}

Netlist Netlist::from_parts(const CellLibrary& lib, std::vector<Pin> pins,
                            std::vector<Gate> gates, std::vector<Net> nets,
                            std::vector<PinId> primary_inputs,
                            std::vector<PinId> primary_outputs) {
  const std::size_t np = pins.size(), ng = gates.size(), nn = nets.size();
  for (const Pin& p : pins) {
    if (p.gate != kInvalidId && p.gate >= ng)
      throw std::invalid_argument("Netlist::from_parts: pin gate out of range");
    if (p.net != kInvalidId && p.net >= nn)
      throw std::invalid_argument("Netlist::from_parts: pin net out of range");
    if (!(p.capacitance >= 0.0))
      throw std::invalid_argument("Netlist::from_parts: negative capacitance");
  }
  for (const Gate& g : gates) {
    if (g.type >= lib.size())
      throw std::invalid_argument("Netlist::from_parts: cell type out of range");
    if (g.output == kInvalidId || g.output >= np)
      throw std::invalid_argument("Netlist::from_parts: gate output invalid");
    for (PinId in : g.inputs)
      if (in == kInvalidId || in >= np)
        throw std::invalid_argument("Netlist::from_parts: gate input invalid");
  }
  for (const Net& n : nets) {
    if (n.driver == kInvalidId || n.driver >= np)
      throw std::invalid_argument("Netlist::from_parts: net driver invalid");
    for (PinId s : n.sinks)
      if (s >= np)
        throw std::invalid_argument("Netlist::from_parts: net sink invalid");
    if (!(n.wire_resistance >= 0.0) || !(n.wire_capacitance >= 0.0))
      throw std::invalid_argument("Netlist::from_parts: negative wire RC");
  }
  for (PinId p : primary_inputs)
    if (p >= np || pins[p].kind != PinKind::PrimaryInput)
      throw std::invalid_argument("Netlist::from_parts: bad primary input");
  for (PinId p : primary_outputs)
    if (p >= np || pins[p].kind != PinKind::PrimaryOutput)
      throw std::invalid_argument("Netlist::from_parts: bad primary output");

  Netlist nl(lib);
  nl.pins_ = std::move(pins);
  nl.gates_ = std::move(gates);
  nl.nets_ = std::move(nets);
  nl.primary_inputs_ = std::move(primary_inputs);
  nl.primary_outputs_ = std::move(primary_outputs);
  nl.finalize();
  return nl;
}

void Netlist::finalize() {
  // Every gate input must be connected.
  for (const Gate& g : gates_) {
    for (PinId in : g.inputs) {
      if (pins_[in].net == kInvalidId)
        throw std::runtime_error("Netlist::finalize: unconnected gate input");
    }
  }

  // Kahn topological sort over gates (gate -> gates fed by its output net).
  std::vector<std::uint32_t> indegree(gates_.size(), 0);
  for (std::size_t gi = 0; gi < gates_.size(); ++gi) {
    for (PinId in : gates_[gi].inputs) {
      const Pin& drv = pins_[nets_[pins_[in].net].driver];
      if (drv.kind == PinKind::CellOutput) ++indegree[gi];
    }
  }

  std::queue<GateId> ready;
  for (std::size_t gi = 0; gi < gates_.size(); ++gi)
    if (indegree[gi] == 0) ready.push(static_cast<GateId>(gi));

  topo_order_.clear();
  topo_order_.reserve(gates_.size());
  while (!ready.empty()) {
    const GateId gid = ready.front();
    ready.pop();
    topo_order_.push_back(gid);
    const Net& out_net = nets_[pins_[gates_[gid].output].net];
    for (PinId sink : out_net.sinks) {
      const Pin& sp = pins_[sink];
      if (sp.kind == PinKind::CellInput) {
        if (--indegree[sp.gate] == 0) ready.push(sp.gate);
      }
    }
  }
  if (topo_order_.size() != gates_.size())
    throw std::runtime_error("Netlist::finalize: combinational cycle detected");

  // Levelize the gate DAG: level(g) = 1 + max level over fan-in gates
  // (0 when fed only by primary inputs). Gates sharing a level have no
  // dependencies among themselves, which the level-parallel STA exploits.
  std::vector<std::size_t> level(gates_.size(), 0);
  std::size_t max_level = 0;
  for (const GateId gid : topo_order_) {
    std::size_t lv = 0;
    for (PinId in : gates_[gid].inputs) {
      const Pin& drv = pins_[nets_[pins_[in].net].driver];
      if (drv.kind == PinKind::CellOutput) lv = std::max(lv, level[drv.gate] + 1);
    }
    level[gid] = lv;
    max_level = std::max(max_level, lv);
  }
  level_offsets_.assign(gates_.empty() ? 1 : max_level + 2, 0);
  for (std::size_t gi = 0; gi < gates_.size(); ++gi)
    ++level_offsets_[level[gi] + 1];
  for (std::size_t l = 1; l < level_offsets_.size(); ++l)
    level_offsets_[l] += level_offsets_[l - 1];
  level_order_.resize(gates_.size());
  std::vector<std::size_t> cursor(level_offsets_.begin(),
                                  level_offsets_.end() - 1);
  for (const GateId gid : topo_order_)  // stable within each level
    level_order_[cursor[level[gid]]++] = gid;

  finalized_ = true;
  build_soa_mirrors();
}

void Netlist::build_soa_mirrors() {
  const std::size_t np = pins_.size(), ng = gates_.size(), nn = nets_.size();
  pin_cap_.resize(np);
  for (std::size_t p = 0; p < np; ++p) pin_cap_[p] = pins_[p].capacitance;

  cell_intrinsic_.resize(ng);
  cell_drive_res_.resize(ng);
  cell_slew_intrinsic_.resize(ng);
  cell_slew_factor_.resize(ng);
  gate_output_.resize(ng);
  gate_out_net_.resize(ng);
  gate_input_offsets_.assign(ng + 1, 0);
  for (std::size_t g = 0; g < ng; ++g)
    gate_input_offsets_[g + 1] = gate_input_offsets_[g] + gates_[g].inputs.size();
  gate_input_pins_.clear();
  gate_input_pins_.reserve(gate_input_offsets_[ng]);
  for (std::size_t g = 0; g < ng; ++g) {
    const Gate& gate = gates_[g];
    const CellType& ct = lib_->cell(gate.type);
    cell_intrinsic_[g] = ct.intrinsic_delay;
    cell_drive_res_[g] = ct.drive_resistance;
    cell_slew_intrinsic_[g] = ct.slew_intrinsic;
    cell_slew_factor_[g] = ct.slew_factor;
    gate_output_[g] = gate.output;
    gate_out_net_[g] = pins_[gate.output].net;
    gate_input_pins_.insert(gate_input_pins_.end(), gate.inputs.begin(),
                            gate.inputs.end());
  }

  net_load_.resize(nn);
  for (std::size_t n = 0; n < nn; ++n)
    refresh_net_load(static_cast<NetId>(n));
}

void Netlist::refresh_net_load(NetId n) {
  // Full ascending recompute — the exact sum order of the pre-cache
  // net_load(), so cached and on-demand values are bit-identical and a
  // perturb/restore cycle lands back on the original double.
  const Net& net = nets_[n];
  double load = net.wire_capacitance;
  for (PinId sink : net.sinks) load += pin_cap_[sink];
  net_load_[n] = load;
}

std::size_t Netlist::num_gate_levels() const {
  if (!finalized_)
    throw std::runtime_error("Netlist: call finalize() before num_gate_levels()");
  return level_offsets_.size() - 1;
}

std::span<const GateId> Netlist::gates_at_level(std::size_t l) const {
  if (!finalized_)
    throw std::runtime_error("Netlist: call finalize() before gates_at_level()");
  if (l + 1 >= level_offsets_.size())
    throw std::out_of_range("Netlist::gates_at_level");
  return {level_order_.data() + level_offsets_[l],
          level_offsets_[l + 1] - level_offsets_[l]};
}

std::span<const GateId> Netlist::topological_order() const {
  if (!finalized_)
    throw std::runtime_error("Netlist: call finalize() before topological_order()");
  return topo_order_;
}

double Netlist::net_load(NetId n) const {
  if (finalized_) return net_load_[n];
  const Net& net = nets_.at(n);
  double load = net.wire_capacitance;
  for (PinId sink : net.sinks) load += pins_[sink].capacitance;
  return load;
}

void Netlist::scale_pin_capacitance(PinId p, double factor) {
  if (!(factor > 0.0))
    throw std::invalid_argument("scale_pin_capacitance: factor must be > 0");
  Pin& pin = pins_.at(p);
  pin.capacitance *= factor;
  if (finalized_) {
    pin_cap_[p] = pin.capacitance;
    if (pin.net != kInvalidId) refresh_net_load(pin.net);
  }
}

void Netlist::set_pin_capacitance(PinId p, double value) {
  if (value < 0.0)
    throw std::invalid_argument("set_pin_capacitance: negative capacitance");
  Pin& pin = pins_.at(p);
  pin.capacitance = value;
  if (finalized_) {
    pin_cap_[p] = value;
    if (pin.net != kInvalidId) refresh_net_load(pin.net);
  }
}

void Netlist::set_net_wire(NetId n, double resistance, double capacitance) {
  if (resistance < 0.0 || capacitance < 0.0)
    throw std::invalid_argument("set_net_wire: negative RC");
  nets_.at(n).wire_resistance = resistance;
  nets_.at(n).wire_capacitance = capacitance;
  if (finalized_) refresh_net_load(n);
}

}  // namespace cirstag::circuit
