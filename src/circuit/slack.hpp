#pragma once

#include <vector>

#include "circuit/sta.hpp"

namespace cirstag::circuit {

/// Required-time / slack view of a timing run.
///
/// Given the forward arrival times of `run_sta`, the backward pass asserts a
/// required time at every primary output (the clock period, or the worst
/// arrival when none is given) and propagates requirements backwards:
/// slack(p) = required(p) - arrival(p). Negative slack marks violating
/// logic; the minimum-slack pins trace the critical path.
struct SlackReport {
  std::vector<double> required;  ///< per pin
  std::vector<double> slack;     ///< per pin
  double worst_slack = 0.0;
  PinId worst_pin = kInvalidId;
};

/// Compute per-pin required times and slacks.
/// `clock_period` <= 0 uses the worst output arrival (zero worst slack).
[[nodiscard]] SlackReport compute_slack(const Netlist& nl,
                                        const TimingReport& timing,
                                        const StaOptions& opts = {},
                                        double clock_period = 0.0);

/// One extracted timing path: pins from a primary input to a primary
/// output, with the arrival at its endpoint.
struct TimingPath {
  std::vector<PinId> pins;
  double arrival = 0.0;
  double slack = 0.0;
};

/// Extract the K most critical paths (largest endpoint arrival), each
/// traced backwards through the worst-arrival fan-in at every pin.
/// Paths are endpoint-disjoint (one path per endpoint), ranked by arrival.
[[nodiscard]] std::vector<TimingPath> critical_paths(
    const Netlist& nl, const TimingReport& timing, const StaOptions& opts,
    std::size_t k);

}  // namespace cirstag::circuit
