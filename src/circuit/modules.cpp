#include "circuit/modules.hpp"

#include <stdexcept>

namespace cirstag::circuit {

namespace {

/// Cyclic accessor over the provided input signals.
class InputFeed {
 public:
  explicit InputFeed(std::span<const PinId> inputs) : inputs_(inputs) {
    if (inputs_.empty())
      throw std::invalid_argument("module generator: no input signals");
  }
  PinId next() {
    const PinId p = inputs_[pos_ % inputs_.size()];
    ++pos_;
    return p;
  }

 private:
  std::span<const PinId> inputs_;
  std::size_t pos_ = 0;
};

/// Create a gate of `type_name`, connect all inputs, return its output pin.
PinId emit(Netlist& nl, const char* type_name, ModuleClass label,
           std::initializer_list<PinId> drivers) {
  const CellTypeId type = nl.library().id_of(type_name);
  const GateId gid =
      nl.add_gate(type, static_cast<std::uint32_t>(label));
  std::size_t slot = 0;
  for (PinId d : drivers) nl.connect_input(gid, slot++, d);
  if (slot != nl.library().cell(type).num_inputs)
    throw std::invalid_argument("emit: wrong driver count for cell");
  return nl.gate(gid).output;
}

}  // namespace

const char* module_class_name(ModuleClass c) {
  switch (c) {
    case ModuleClass::Adder: return "adder";
    case ModuleClass::Multiplier: return "multiplier";
    case ModuleClass::Mux: return "mux";
    case ModuleClass::Counter: return "counter";
    case ModuleClass::Comparator: return "comparator";
    case ModuleClass::Glue: return "glue";
  }
  return "unknown";
}

std::vector<PinId> make_ripple_adder(Netlist& nl,
                                     std::span<const PinId> inputs,
                                     std::size_t bits) {
  InputFeed feed(inputs);
  constexpr auto L = ModuleClass::Adder;
  std::vector<PinId> sums;
  PinId carry = feed.next();
  for (std::size_t b = 0; b < bits; ++b) {
    const PinId a = feed.next();
    const PinId bb = feed.next();
    const PinId p = emit(nl, "XOR2_X1", L, {a, bb});
    const PinId g = emit(nl, "AND2_X1", L, {a, bb});
    const PinId sum = emit(nl, "XOR2_X1", L, {p, carry});
    const PinId pc = emit(nl, "AND2_X1", L, {p, carry});
    carry = emit(nl, "OR2_X1", L, {g, pc});
    sums.push_back(sum);
  }
  sums.push_back(carry);
  return sums;
}

std::vector<PinId> make_array_multiplier(Netlist& nl,
                                         std::span<const PinId> inputs,
                                         std::size_t bits) {
  InputFeed feed(inputs);
  constexpr auto L = ModuleClass::Multiplier;
  std::vector<PinId> a(bits), b(bits);
  for (auto& p : a) p = feed.next();
  for (auto& p : b) p = feed.next();

  // Partial products row by row, accumulated with carry-save adders.
  std::vector<PinId> acc;  // running sum bits
  for (std::size_t i = 0; i < bits; ++i) {
    std::vector<PinId> row;
    for (std::size_t j = 0; j < bits; ++j)
      row.push_back(emit(nl, "AND2_X1", L, {a[j], b[i]}));
    if (acc.empty()) {
      acc = row;
      continue;
    }
    // Add row into acc with a ripple of XOR/AND/OR (full-adder per bit).
    PinId carry = row[0];
    std::vector<PinId> next_acc;
    const std::size_t width = std::min(acc.size(), row.size());
    for (std::size_t j = 0; j + 1 < width; ++j) {
      const PinId x = emit(nl, "XOR2_X1", L, {acc[j + 1], row[j + 1]});
      const PinId s = emit(nl, "XOR2_X1", L, {x, carry});
      const PinId c1 = emit(nl, "AND2_X1", L, {acc[j + 1], row[j + 1]});
      const PinId c2 = emit(nl, "AND2_X1", L, {x, carry});
      carry = emit(nl, "OR2_X1", L, {c1, c2});
      next_acc.push_back(s);
    }
    next_acc.push_back(carry);
    acc = std::move(next_acc);
  }
  return acc;
}

std::vector<PinId> make_mux_tree(Netlist& nl, std::span<const PinId> inputs,
                                 std::size_t select_bits) {
  InputFeed feed(inputs);
  constexpr auto L = ModuleClass::Mux;
  const std::size_t width = std::size_t{1} << select_bits;
  std::vector<PinId> data(width);
  for (auto& p : data) p = feed.next();
  std::vector<PinId> selects(select_bits);
  for (auto& p : selects) p = feed.next();

  std::vector<PinId> layer = data;
  for (std::size_t s = 0; s < select_bits; ++s) {
    std::vector<PinId> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2)
      next.push_back(emit(nl, "MUX2_X1", L, {layer[i], layer[i + 1], selects[s]}));
    layer = std::move(next);
  }
  return layer;  // single output
}

std::vector<PinId> make_counter(Netlist& nl, std::span<const PinId> inputs,
                                std::size_t bits) {
  InputFeed feed(inputs);
  constexpr auto L = ModuleClass::Counter;
  // Combinational increment: sum_b = state_b XOR carry_b, carry chains AND.
  std::vector<PinId> out;
  PinId carry = feed.next();  // "enable"
  for (std::size_t b = 0; b < bits; ++b) {
    const PinId state = feed.next();
    out.push_back(emit(nl, "XOR2_X1", L, {state, carry}));
    carry = emit(nl, "AND2_X1", L, {state, carry});
  }
  out.push_back(carry);  // overflow
  return out;
}

std::vector<PinId> make_comparator(Netlist& nl, std::span<const PinId> inputs,
                                   std::size_t bits) {
  InputFeed feed(inputs);
  constexpr auto L = ModuleClass::Comparator;
  // Equality comparator: per-bit XNOR folded with an AND chain.
  PinId acc = kInvalidId;
  for (std::size_t b = 0; b < bits; ++b) {
    const PinId a = feed.next();
    const PinId bb = feed.next();
    const PinId eq = emit(nl, "XNOR2_X1", L, {a, bb});
    acc = (acc == kInvalidId) ? eq : emit(nl, "AND2_X1", L, {acc, eq});
  }
  return {acc};
}

Netlist make_re_netlist(const CellLibrary& lib, const ReDesignSpec& spec) {
  linalg::Rng rng(spec.seed);
  Netlist nl(lib);

  std::vector<PinId> signals;
  for (std::size_t i = 0; i < spec.num_primary_inputs; ++i)
    signals.push_back(nl.add_primary_input());

  auto sample_inputs = [&](std::size_t count) {
    std::vector<PinId> picks(count);
    for (auto& p : picks) p = signals[rng.index(signals.size())];
    return picks;
  };
  auto glue = [&](std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      const char* type = rng.chance(0.5) ? "INV_X1" : "BUF_X1";
      const PinId in = signals[rng.index(signals.size())];
      signals.push_back(emit(nl, type, ModuleClass::Glue, {in}));
    }
  };

  const std::size_t glue_batches =
      spec.adders + spec.multipliers + spec.muxes + spec.counters +
      spec.comparators;
  const std::size_t glue_per_batch =
      glue_batches > 0 ? std::max<std::size_t>(1, spec.glue_gates / glue_batches)
                       : 0;

  auto absorb = [&](std::vector<PinId> outs) {
    for (PinId p : outs) signals.push_back(p);
  };

  for (std::size_t i = 0; i < spec.adders; ++i) {
    auto ins = sample_inputs(2 * spec.module_bits + 1);
    absorb(make_ripple_adder(nl, ins, spec.module_bits));
    glue(glue_per_batch);
  }
  for (std::size_t i = 0; i < spec.multipliers; ++i) {
    auto ins = sample_inputs(2 * spec.module_bits);
    absorb(make_array_multiplier(nl, ins, spec.module_bits));
    glue(glue_per_batch);
  }
  for (std::size_t i = 0; i < spec.muxes; ++i) {
    const std::size_t sel = 2;
    auto ins = sample_inputs((std::size_t{1} << sel) + sel);
    absorb(make_mux_tree(nl, ins, sel));
    glue(glue_per_batch);
  }
  for (std::size_t i = 0; i < spec.counters; ++i) {
    auto ins = sample_inputs(spec.module_bits + 1);
    absorb(make_counter(nl, ins, spec.module_bits));
    glue(glue_per_batch);
  }
  for (std::size_t i = 0; i < spec.comparators; ++i) {
    auto ins = sample_inputs(2 * spec.module_bits);
    absorb(make_comparator(nl, ins, spec.module_bits));
    glue(glue_per_batch);
  }

  // Expose a handful of deep signals as primary outputs.
  const std::size_t num_pos = std::max<std::size_t>(4, signals.size() / 20);
  for (std::size_t i = 0; i < num_pos && i < signals.size(); ++i)
    nl.add_primary_output(signals[signals.size() - 1 - i]);

  nl.finalize();
  return nl;
}

}  // namespace cirstag::circuit
