#pragma once

#include <iosfwd>
#include <string>

#include "circuit/netlist.hpp"

namespace cirstag::circuit {

/// Plain-text netlist serialization (format "cirstag-netlist 1").
///
/// The format replays the construction API, so pin/gate/net ids are stable
/// across a save/load round trip:
///
///   cirstag-netlist 1
///   inputs <N>
///   gate <cell-name> <module-label|->          # one per gate, in id order
///   conn <gate-id> <slot> i<pi-id>|g<gate-id>  # driver reference
///   po i<pi-id>|g<gate-id> <load-cap>
///   pincap <pin-id> <capacitance>              # preserves jittered caps
///   net <net-id> <wire-R> <wire-C>
///
/// Lines starting with '#' are comments.
void write_netlist(std::ostream& out, const Netlist& nl);
void save_netlist(const std::string& path, const Netlist& nl);

/// Parse a netlist written by write_netlist. The returned netlist is
/// finalized. Throws std::runtime_error on malformed input.
[[nodiscard]] Netlist read_netlist(std::istream& in, const CellLibrary& lib);
[[nodiscard]] Netlist load_netlist(const std::string& path,
                                   const CellLibrary& lib);

}  // namespace cirstag::circuit
