#include "circuit/io.hpp"

#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace cirstag::circuit {

namespace {

/// Driver reference: primary input k -> "i<k>", gate k's output -> "g<k>".
std::string driver_ref(const Netlist& nl, PinId driver) {
  const Pin& pin = nl.pin(driver);
  if (pin.kind == PinKind::PrimaryInput) {
    for (std::size_t i = 0; i < nl.primary_inputs().size(); ++i)
      if (nl.primary_inputs()[i] == driver) return "i" + std::to_string(i);
    throw std::logic_error("driver_ref: PI pin not in primary_inputs");
  }
  if (pin.kind == PinKind::CellOutput) return "g" + std::to_string(pin.gate);
  throw std::logic_error("driver_ref: pin cannot drive");
}

PinId resolve_ref(const Netlist& nl, const std::string& ref) {
  if (ref.size() < 2)
    throw std::runtime_error("netlist parse: bad driver ref '" + ref + "'");
  const auto idx = static_cast<std::size_t>(std::stoull(ref.substr(1)));
  if (ref[0] == 'i') {
    if (idx >= nl.primary_inputs().size())
      throw std::runtime_error("netlist parse: PI index out of range");
    return nl.primary_inputs()[idx];
  }
  if (ref[0] == 'g') {
    if (idx >= nl.num_gates())
      throw std::runtime_error("netlist parse: gate index out of range");
    return nl.gate(static_cast<GateId>(idx)).output;
  }
  throw std::runtime_error("netlist parse: bad driver ref '" + ref + "'");
}

}  // namespace

void write_netlist(std::ostream& out, const Netlist& nl) {
  // max_digits10 guarantees doubles survive the text round trip bit-exactly.
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  out << "cirstag-netlist 1\n";
  out << "# gates=" << nl.num_gates() << " pins=" << nl.num_pins()
      << " nets=" << nl.num_nets() << "\n";
  out << "inputs " << nl.primary_inputs().size() << "\n";

  for (GateId g = 0; g < nl.num_gates(); ++g) {
    const Gate& gate = nl.gate(g);
    out << "gate " << nl.library().cell(gate.type).name << " ";
    if (gate.module_label == kInvalidId) out << "-";
    else out << gate.module_label;
    out << "\n";
  }
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    const Gate& gate = nl.gate(g);
    for (std::size_t slot = 0; slot < gate.inputs.size(); ++slot) {
      const PinId driver = nl.net(nl.pin(gate.inputs[slot]).net).driver;
      out << "conn " << g << " " << slot << " " << driver_ref(nl, driver)
          << "\n";
    }
  }
  for (PinId po : nl.primary_outputs()) {
    const PinId driver = nl.net(nl.pin(po).net).driver;
    out << "po " << driver_ref(nl, driver) << " " << nl.pin(po).capacitance
        << "\n";
  }
  for (PinId p = 0; p < nl.num_pins(); ++p)
    out << "pincap " << p << " " << nl.pin(p).capacitance << "\n";
  for (NetId n = 0; n < nl.num_nets(); ++n)
    out << "net " << n << " " << nl.net(n).wire_resistance << " "
        << nl.net(n).wire_capacitance << "\n";
}

Netlist read_netlist(std::istream& in, const CellLibrary& lib) {
  std::string header;
  std::getline(in, header);
  if (header.rfind("cirstag-netlist 1", 0) != 0)
    throw std::runtime_error("netlist parse: bad header '" + header + "'");

  Netlist nl(lib);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string cmd;
    ls >> cmd;
    if (cmd == "inputs") {
      std::size_t count = 0;
      ls >> count;
      for (std::size_t i = 0; i < count; ++i) nl.add_primary_input();
    } else if (cmd == "gate") {
      std::string cell, label;
      ls >> cell >> label;
      const std::uint32_t mod =
          label == "-" ? kInvalidId
                       : static_cast<std::uint32_t>(std::stoul(label));
      nl.add_gate(lib.id_of(cell), mod);
    } else if (cmd == "conn") {
      GateId g = 0;
      std::size_t slot = 0;
      std::string ref;
      ls >> g >> slot >> ref;
      nl.connect_input(g, slot, resolve_ref(nl, ref));
    } else if (cmd == "po") {
      std::string ref;
      double cap = 0.0;
      ls >> ref >> cap;
      nl.add_primary_output(resolve_ref(nl, ref), cap);
    } else if (cmd == "pincap") {
      PinId p = 0;
      double cap = 0.0;
      ls >> p >> cap;
      nl.set_pin_capacitance(p, cap);
    } else if (cmd == "net") {
      NetId n = 0;
      double r = 0.0, c = 0.0;
      ls >> n >> r >> c;
      nl.set_net_wire(n, r, c);
    } else {
      throw std::runtime_error("netlist parse: unknown directive '" + cmd +
                               "'");
    }
    if (!ls && !ls.eof())
      throw std::runtime_error("netlist parse: malformed line '" + line + "'");
  }
  nl.finalize();
  return nl;
}

void save_netlist(const std::string& path, const Netlist& nl) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_netlist: cannot open " + path);
  write_netlist(out, nl);
  if (!out) throw std::runtime_error("save_netlist: write failed " + path);
}

Netlist load_netlist(const std::string& path, const CellLibrary& lib) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_netlist: cannot open " + path);
  return read_netlist(in, lib);
}

}  // namespace cirstag::circuit
