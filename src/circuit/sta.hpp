#pragma once

#include <vector>

#include "circuit/netlist.hpp"

namespace cirstag::circuit {

/// Per-pin results of a static timing analysis run.
struct TimingReport {
  std::vector<double> arrival;  ///< arrival time at every pin
  std::vector<double> slew;     ///< transition time at every pin
  double worst_arrival = 0.0;   ///< max arrival over primary outputs
  /// Arrival times at the primary outputs, in primary_outputs() order.
  std::vector<double> output_arrivals;
};

/// Options for the golden STA engine.
struct StaOptions {
  /// Arrival time asserted at every primary input.
  double input_arrival = 0.0;
  /// Input driver resistance (models the external driver of each PI).
  double input_drive_resistance = 0.6;
  double input_slew = 0.4;
  /// Slew-to-delay coupling: fraction of input slew added to each cell arc
  /// (first-order slew degradation, keeps the model monotone in caps).
  double slew_delay_fraction = 0.35;
};

/// Golden pre-routing static timing analysis.
///
/// This engine plays the role of the signoff STA tool whose predictions the
/// paper's GNN [17] mimics. Delay model per cell arc (input pin -> output
/// pin): intrinsic + drive_resistance * C_load + slew coupling; per net arc
/// (driver -> sink): Elmore wire_resistance * C_sink. Arrival times
/// propagate with max() through the gate-level DAG in topological order.
///
/// The netlist must be finalized. Complexity O(pins + nets).
[[nodiscard]] TimingReport run_sta(const Netlist& netlist,
                                   const StaOptions& opts = {});

/// STA with per-gate delay derating: every cell arc of gate g is multiplied
/// by `gate_delay_scale[g]` (process/voltage/temperature corners and
/// Monte-Carlo variation samples). An empty span means all ones.
[[nodiscard]] TimingReport run_sta(const Netlist& netlist,
                                   const StaOptions& opts,
                                   std::span<const double> gate_delay_scale);

/// Reuse statistics of one IncrementalSta::run call.
struct IncrementalStaStats {
  std::size_t gates_evaluated = 0;  ///< gates re-evaluated (the dirty cone)
  std::size_t total_gates = 0;      ///< gate count of the netlist
  std::size_t pis_evaluated = 0;    ///< primary inputs re-evaluated
  std::size_t pins_changed = 0;     ///< pins whose arrival or slew moved

  /// Fraction of gates actually re-evaluated (1.0 on an empty netlist).
  [[nodiscard]] double cone_fraction() const {
    return total_gates == 0
               ? 1.0
               : static_cast<double>(gates_evaluated) /
                     static_cast<double>(total_gates);
  }
};

/// Incremental STA for perturbation sweeps: captures one full baseline
/// report, then re-times capacitance-edited variants by re-propagating only
/// the fanout cone of the touched pins.
///
/// Bit-identity: run() shares the exact per-PI / per-gate / per-net-arc
/// arithmetic with run_sta, and a gate is re-evaluated whenever its output
/// load or any input arrival/slew differs from the baseline, so the returned
/// report is byte-identical to run_sta(variant, opts) — the reuse is pure
/// work-skipping, not approximation.
///
/// The variant must share the baseline's structure (same pins, gates, nets,
/// levels); only pin capacitances may differ, and every edited pin must be
/// listed in `touched_pins`. Topology edits need a fresh run_sta.
class IncrementalSta {
 public:
  explicit IncrementalSta(const Netlist& baseline, const StaOptions& opts = {});

  [[nodiscard]] const TimingReport& baseline_report() const { return base_; }
  [[nodiscard]] const StaOptions& options() const { return opts_; }

  /// Re-time `variant` given the pins whose capacitance changed. Thread-safe
  /// (const; all state is per-call). `stats`, when non-null, receives the
  /// cone-size accounting for this run.
  [[nodiscard]] TimingReport run(const Netlist& variant,
                                 std::span<const PinId> touched_pins,
                                 IncrementalStaStats* stats = nullptr) const;

 private:
  StaOptions opts_;
  TimingReport base_;
  std::size_t num_pins_ = 0;
  std::size_t num_gates_ = 0;
};

/// Ground-truth per-pin delay sensitivity: relative change of the worst
/// output arrival when pin p's capacitance is scaled by `factor`. The
/// expensive oracle that CirSTAG replaces; used for rank-validation
/// experiments. Internally runs IncrementalSta per pin (bit-identical to
/// one full STA per pin, but only the pin's fanout cone is re-timed).
[[nodiscard]] std::vector<double> exhaustive_sensitivity(
    const Netlist& netlist, double factor, const StaOptions& opts = {});

}  // namespace cirstag::circuit
