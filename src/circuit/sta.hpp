#pragma once

#include <vector>

#include "circuit/netlist.hpp"

namespace cirstag::circuit {

/// Per-pin results of a static timing analysis run.
struct TimingReport {
  std::vector<double> arrival;  ///< arrival time at every pin
  std::vector<double> slew;     ///< transition time at every pin
  double worst_arrival = 0.0;   ///< max arrival over primary outputs
  /// Arrival times at the primary outputs, in primary_outputs() order.
  std::vector<double> output_arrivals;
};

/// Options for the golden STA engine.
struct StaOptions {
  /// Arrival time asserted at every primary input.
  double input_arrival = 0.0;
  /// Input driver resistance (models the external driver of each PI).
  double input_drive_resistance = 0.6;
  double input_slew = 0.4;
  /// Slew-to-delay coupling: fraction of input slew added to each cell arc
  /// (first-order slew degradation, keeps the model monotone in caps).
  double slew_delay_fraction = 0.35;
};

/// Golden pre-routing static timing analysis.
///
/// This engine plays the role of the signoff STA tool whose predictions the
/// paper's GNN [17] mimics. Delay model per cell arc (input pin -> output
/// pin): intrinsic + drive_resistance * C_load + slew coupling; per net arc
/// (driver -> sink): Elmore wire_resistance * C_sink. Arrival times
/// propagate with max() through the gate-level DAG in topological order.
///
/// The netlist must be finalized. Complexity O(pins + nets).
[[nodiscard]] TimingReport run_sta(const Netlist& netlist,
                                   const StaOptions& opts = {});

/// STA with per-gate delay derating: every cell arc of gate g is multiplied
/// by `gate_delay_scale[g]` (process/voltage/temperature corners and
/// Monte-Carlo variation samples). An empty span means all ones.
[[nodiscard]] TimingReport run_sta(const Netlist& netlist,
                                   const StaOptions& opts,
                                   std::span<const double> gate_delay_scale);

/// Ground-truth per-pin delay sensitivity: relative change of the worst
/// output arrival when pin p's capacitance is scaled by `factor`, computed
/// by exhaustive re-simulation (one STA per pin). The expensive oracle that
/// CirSTAG replaces; used for rank-validation experiments.
[[nodiscard]] std::vector<double> exhaustive_sensitivity(
    const Netlist& netlist, double factor, const StaOptions& opts = {});

}  // namespace cirstag::circuit
