#include "circuit/perturb.hpp"

#include "circuit/views.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <unordered_set>

namespace cirstag::circuit {

namespace {

std::vector<std::size_t> select_fraction(std::span<const double> scores,
                                         double fraction, bool top,
                                         std::span<const std::size_t> excluded) {
  if (fraction < 0.0 || fraction > 1.0)
    throw std::invalid_argument("select_fraction: fraction out of [0,1]");
  const std::unordered_set<std::size_t> skip(excluded.begin(), excluded.end());
  std::vector<std::size_t> order;
  order.reserve(scores.size());
  for (std::size_t i = 0; i < scores.size(); ++i)
    if (!skip.count(i)) order.push_back(i);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return top ? scores[a] > scores[b] : scores[a] < scores[b];
  });
  const auto count = static_cast<std::size_t>(
      fraction * static_cast<double>(order.size()) + 0.5);
  order.resize(std::min(count, order.size()));
  return order;
}

}  // namespace

std::vector<std::size_t> select_top_fraction(
    std::span<const double> scores, double fraction,
    std::span<const std::size_t> excluded) {
  return select_fraction(scores, fraction, /*top=*/true, excluded);
}

std::vector<std::size_t> select_bottom_fraction(
    std::span<const double> scores, double fraction,
    std::span<const std::size_t> excluded) {
  return select_fraction(scores, fraction, /*top=*/false, excluded);
}

Netlist perturb_pin_capacitances(const Netlist& nl,
                                 std::span<const std::size_t> pins,
                                 double factor) {
  Netlist out = nl;
  for (std::size_t p : pins)
    out.scale_pin_capacitance(static_cast<PinId>(p), factor);
  return out;
}

linalg::Matrix perturb_capacitance_features(const linalg::Matrix& features,
                                            std::span<const std::size_t> pins,
                                            double factor,
                                            std::size_t cap_column) {
  if (cap_column >= features.cols())
    throw std::out_of_range("perturb_capacitance_features: column");
  linalg::Matrix out = features;
  for (std::size_t p : pins) {
    if (p >= out.rows())
      throw std::out_of_range("perturb_capacitance_features: row");
    out(p, cap_column) *= factor;
  }
  return out;
}

linalg::Matrix perturbed_pin_features(const Netlist& nl,
                                      std::span<const std::size_t> pins,
                                      double factor) {
  return pin_features(perturb_pin_capacitances(nl, pins, factor));
}

std::vector<double> relative_changes(std::span<const double> base,
                                     std::span<const double> perturbed,
                                     double eps) {
  if (base.size() != perturbed.size())
    throw std::invalid_argument("relative_changes: size mismatch");
  std::vector<double> out(base.size());
  for (std::size_t i = 0; i < base.size(); ++i)
    out[i] = std::abs(perturbed[i] - base[i]) / std::max(std::abs(base[i]), eps);
  return out;
}

graphs::Graph rewire_edges(const graphs::Graph& g,
                           std::span<const graphs::EdgeId> edges,
                           linalg::Rng& rng) {
  const std::unordered_set<graphs::EdgeId> chosen(edges.begin(), edges.end());
  graphs::Graph out(g.num_nodes());
  for (graphs::EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& ed = g.edge(e);
    if (!chosen.count(e)) {
      out.add_edge(ed.u, ed.v, ed.weight);
      continue;
    }
    // Keep u, redirect v to a random distinct node.
    graphs::NodeId nv = ed.v;
    for (int attempt = 0; attempt < 16; ++attempt) {
      nv = static_cast<graphs::NodeId>(rng.index(g.num_nodes()));
      if (nv != ed.u) break;
    }
    if (nv == ed.u) nv = ed.v;  // pathological tiny graph; keep original
    out.add_edge(ed.u, nv, ed.weight);
  }
  return out;
}

graphs::Graph rewire_around_nodes(const graphs::Graph& g,
                                  std::span<const std::size_t> nodes,
                                  linalg::Rng& rng) {
  std::unordered_set<graphs::EdgeId> picked;
  for (std::size_t n : nodes) {
    const auto nbrs = g.neighbors(static_cast<graphs::NodeId>(n));
    if (nbrs.empty()) continue;
    // Pick one incident edge not already selected (best effort).
    for (int attempt = 0; attempt < 8; ++attempt) {
      const auto& inc = nbrs[rng.index(nbrs.size())];
      if (picked.insert(inc.edge).second) break;
    }
  }
  std::vector<graphs::EdgeId> edges(picked.begin(), picked.end());
  return rewire_edges(g, edges, rng);
}

}  // namespace cirstag::circuit
