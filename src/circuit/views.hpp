#pragma once

#include "circuit/netlist.hpp"
#include "graphs/graph.hpp"
#include "linalg/matrix.hpp"

namespace cirstag::circuit {

/// Undirected pin-level connectivity graph (Case Study A convention):
/// nodes = pins, edges = net connections (driver pin <-> each sink pin) plus
/// internal cell connections (each input pin <-> the output pin). This is
/// the graph the timing GNN propagates over and CirSTAG's input graph G.
[[nodiscard]] graphs::Graph pin_graph(const Netlist& nl);

/// Directed pin-level arcs split by type, for edge-typed GNN layers:
/// net arcs (driver -> sink) and cell arcs (input -> output).
struct PinArcs {
  std::vector<std::pair<PinId, PinId>> net_arcs;
  std::vector<std::pair<PinId, PinId>> cell_arcs;
};
[[nodiscard]] PinArcs pin_arcs(const Netlist& nl);

/// Undirected gate-level graph (Case Study B convention): nodes = gates,
/// edges between driver gate and the gates its output net feeds. Primary
/// ports are not nodes.
[[nodiscard]] graphs::Graph gate_graph(const Netlist& nl);

/// Per-pin feature matrix for the timing GNN (Case A). Columns:
///   0: pin capacitance
///   1: is primary input
///   2: is primary output
///   3: is cell input
///   4: is cell output
///   5: owner-cell drive resistance (0 for ports / input pins)
///   6: owner-cell intrinsic delay (0 for ports / input pins)
///   7: fanout of the pin's net
///   8: net wire resistance
///   9: net total load
///  10: topological depth (normalized to [0,1])
[[nodiscard]] linalg::Matrix pin_features(const Netlist& nl);
constexpr std::size_t kPinFeatureDim = 11;
/// Column index of the pin-capacitance feature (the perturbed one).
constexpr std::size_t kPinCapFeature = 0;

/// Per-gate feature matrix for the RE-GAT (Case B): one-hot of own cell type
/// followed by the normalized histogram of neighboring gate types — the
/// "surrounding gate information, detailing Boolean functionalities ... in
/// the local neighborhood" of the paper.
[[nodiscard]] linalg::Matrix gate_features(const Netlist& nl);

/// Same, but with the neighborhood histogram computed over an explicit
/// (possibly perturbed) gate-level graph instead of the netlist's own
/// connectivity — used for the Case-B topology-perturbation study.
[[nodiscard]] linalg::Matrix gate_features(const Netlist& nl,
                                           const graphs::Graph& topology);

/// Per-gate module labels (Case B classification targets); throws if any
/// gate lacks a label.
[[nodiscard]] std::vector<std::uint32_t> gate_labels(const Netlist& nl);

/// Normalized topological depth per pin (0 at PIs, 1 at the deepest pin).
[[nodiscard]] std::vector<double> pin_depths(const Netlist& nl);

}  // namespace cirstag::circuit
