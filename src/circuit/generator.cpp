#include "circuit/generator.hpp"

#include <algorithm>
#include <stdexcept>

namespace cirstag::circuit {

namespace {

/// A driver pin available for new gate inputs, tagged with its level.
struct Signal {
  PinId pin;
  std::size_t level;
  std::size_t fanout = 0;
};

CellTypeId pick_cell(const CellLibrary& lib, linalg::Rng& rng) {
  // Favor 1-2 input cells (as technology mappers do); occasionally pick a
  // 3-input complex cell.
  const double roll = rng.uniform();
  std::uint8_t arity;
  if (roll < 0.35) arity = 1;
  else if (roll < 0.85) arity = 2;
  else arity = 3;
  const auto candidates = lib.cells_with_arity(arity);
  if (candidates.empty())
    throw std::runtime_error("pick_cell: library lacks arity");
  return candidates[rng.index(candidates.size())];
}

}  // namespace

Netlist generate_random_logic(const CellLibrary& lib,
                              const RandomCircuitSpec& spec) {
  if (spec.num_inputs == 0 || spec.num_gates == 0 || spec.num_levels == 0)
    throw std::invalid_argument("generate_random_logic: empty spec");

  linalg::Rng rng(spec.seed);
  Netlist nl(lib);

  std::vector<Signal> signals;
  signals.reserve(spec.num_inputs + spec.num_gates);
  for (std::size_t i = 0; i < spec.num_inputs; ++i)
    signals.push_back({nl.add_primary_input(), 0});

  const std::size_t per_level =
      std::max<std::size_t>(1, spec.num_gates / spec.num_levels);

  std::size_t made = 0;
  std::size_t prev_level_start = 0;  // first signal index of previous level
  std::size_t prev_level_end = signals.size();
  for (std::size_t level = 1; made < spec.num_gates; ++level) {
    const std::size_t level_start = signals.size();
    const std::size_t count =
        std::min(per_level, spec.num_gates - made);
    for (std::size_t g = 0; g < count; ++g) {
      const CellTypeId type = pick_cell(lib, rng);
      const GateId gid = nl.add_gate(type);
      const std::size_t arity = lib.cell(type).num_inputs;
      for (std::size_t slot = 0; slot < arity; ++slot) {
        std::size_t pick;
        if (rng.uniform() < spec.locality && prev_level_end > prev_level_start) {
          pick = prev_level_start +
                 rng.index(prev_level_end - prev_level_start);
        } else {
          pick = rng.index(prev_level_end);  // any earlier signal
        }
        nl.connect_input(gid, slot, signals[pick].pin);
        ++signals[pick].fanout;
      }
      signals.push_back({nl.gate(gid).output, level});
      ++made;
    }
    prev_level_start = level_start;
    prev_level_end = signals.size();
  }

  // Primary outputs: prefer signals nobody consumed (dangling cones), then
  // the deepest signals.
  std::vector<std::size_t> order(signals.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if ((signals[a].fanout == 0) != (signals[b].fanout == 0))
      return signals[a].fanout == 0;
    return signals[a].level > signals[b].level;
  });
  const std::size_t num_pos = std::min(spec.num_outputs, signals.size());
  for (std::size_t i = 0; i < num_pos; ++i) {
    const double load = 2.0 * rng.uniform(0.7, 1.3);
    nl.add_primary_output(signals[order[i]].pin, load);
  }

  // Jitter pin capacitances and wire RC for feature diversity.
  for (PinId p = 0; p < nl.num_pins(); ++p) {
    const double cap = nl.pin(p).capacitance;
    if (cap > 0.0 && spec.cap_jitter > 0.0) {
      nl.set_pin_capacitance(
          p, cap * rng.uniform(1.0 - spec.cap_jitter, 1.0 + spec.cap_jitter));
    }
  }
  for (NetId n = 0; n < nl.num_nets(); ++n) {
    const double fanout = static_cast<double>(nl.net(n).sinks.size());
    const double r = 0.1 * (1.0 + 0.15 * fanout) *
                     rng.uniform(1.0 - spec.wire_jitter, 1.0 + spec.wire_jitter);
    const double c = 0.5 * (1.0 + 0.25 * fanout) *
                     rng.uniform(1.0 - spec.wire_jitter, 1.0 + spec.wire_jitter);
    nl.set_net_wire(n, std::max(r, 1e-3), std::max(c, 1e-3));
  }

  nl.finalize();
  return nl;
}

std::vector<RandomCircuitSpec> benchmark_suite() {
  // Names mirror the TimingGCN benchmark set the paper evaluates on; sizes
  // are chosen to span the same relative range.
  std::vector<RandomCircuitSpec> suite;
  auto mk = [&suite](const char* name, std::size_t gates, std::size_t ins,
                     std::size_t outs, std::size_t levels, std::uint64_t seed) {
    RandomCircuitSpec s;
    s.name = name;
    s.num_gates = gates;
    s.num_inputs = ins;
    s.num_outputs = outs;
    s.num_levels = levels;
    s.seed = seed;
    suite.push_back(s);
  };
  mk("blabla", 2200, 48, 24, 16, 101);
  mk("usb_cdc_core", 1300, 40, 20, 12, 102);
  mk("BM64", 3800, 64, 32, 20, 103);
  mk("salsa20", 4400, 64, 32, 22, 104);
  mk("aes128", 5200, 96, 48, 18, 105);
  mk("aes192", 6100, 96, 48, 20, 106);
  mk("aes256", 7000, 96, 48, 22, 107);
  mk("wbqspiflash", 900, 32, 16, 10, 108);
  mk("cic_decimator", 700, 24, 12, 10, 109);
  return suite;
}

std::vector<RandomCircuitSpec> scalability_suite(std::size_t num_sizes,
                                                 std::size_t base_gates,
                                                 double growth) {
  std::vector<RandomCircuitSpec> suite;
  double gates = static_cast<double>(base_gates);
  for (std::size_t i = 0; i < num_sizes; ++i) {
    RandomCircuitSpec s;
    s.name = "scale_" + std::to_string(static_cast<std::size_t>(gates));
    s.num_gates = static_cast<std::size_t>(gates);
    s.num_inputs = std::max<std::size_t>(16, s.num_gates / 40);
    s.num_outputs = std::max<std::size_t>(8, s.num_gates / 80);
    s.num_levels = 10 + 2 * i;
    s.seed = 1000 + i;
    suite.push_back(s);
    gates *= growth;
  }
  return suite;
}

}  // namespace cirstag::circuit
