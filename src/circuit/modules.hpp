#pragma once

#include <string>
#include <vector>

#include "circuit/netlist.hpp"
#include "linalg/rng.hpp"

namespace cirstag::circuit {

/// Sub-circuit classes of the reverse-engineering case study (Case B).
/// These mirror the arithmetic/control module taxonomy of GNN-RE [4].
enum class ModuleClass : std::uint32_t {
  Adder = 0,
  Multiplier = 1,
  Mux = 2,
  Counter = 3,
  Comparator = 4,
  Glue = 5,
};
constexpr std::size_t kNumModuleClasses = 6;

[[nodiscard]] const char* module_class_name(ModuleClass c);

/// Gate-level structural generators. Each appends one module instance to
/// `nl`, wiring its inputs from `inputs` (reused cyclically if short), labels
/// every created gate with the module's class, and returns the module's
/// output driver pins. The netlist is left un-finalized.
[[nodiscard]] std::vector<PinId> make_ripple_adder(Netlist& nl,
                                                   std::span<const PinId> inputs,
                                                   std::size_t bits);
[[nodiscard]] std::vector<PinId> make_array_multiplier(
    Netlist& nl, std::span<const PinId> inputs, std::size_t bits);
[[nodiscard]] std::vector<PinId> make_mux_tree(Netlist& nl,
                                               std::span<const PinId> inputs,
                                               std::size_t select_bits);
[[nodiscard]] std::vector<PinId> make_counter(Netlist& nl,
                                              std::span<const PinId> inputs,
                                              std::size_t bits);
[[nodiscard]] std::vector<PinId> make_comparator(Netlist& nl,
                                                 std::span<const PinId> inputs,
                                                 std::size_t bits);

/// Spec for an interconnected multi-module design (the paper's
/// "interconnected dataset").
struct ReDesignSpec {
  std::string name = "re_design";
  std::size_t num_primary_inputs = 24;
  /// How many instances of each module class to stitch in.
  std::size_t adders = 3;
  std::size_t multipliers = 2;
  std::size_t muxes = 3;
  std::size_t counters = 3;
  std::size_t comparators = 3;
  std::size_t module_bits = 4;  ///< bit width of arithmetic modules
  /// Glue gates inserted between modules (labelled Glue).
  std::size_t glue_gates = 60;
  std::uint64_t seed = 17;
};

/// Build a finalized module-stitched netlist with per-gate labels: the
/// Case-B workload. Modules consume a mix of primary inputs and previous
/// modules' outputs, with Glue buffers/inverters sprinkled between.
[[nodiscard]] Netlist make_re_netlist(const CellLibrary& lib,
                                      const ReDesignSpec& spec);

}  // namespace cirstag::circuit
