#include "circuit/sta.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/parallel_for.hpp"

namespace cirstag::circuit {

namespace {
/// Gates (or primary inputs) per parallel chunk within one topological
/// level. Every gate writes only its own output pin and its net's sink
/// pins (each pin has exactly one driving net), so levels are data-race
/// free and the traversal is bit-identical to the serial sweep.
constexpr std::size_t kStaLevelGrain = 64;
/// Pins per chunk for the perturbation sweep; each chunk clones the
/// netlist once and reuses the clone across its pins.
constexpr std::size_t kSensitivityGrain = 16;
}  // namespace

TimingReport run_sta(const Netlist& nl, const StaOptions& opts) {
  return run_sta(nl, opts, {});
}

TimingReport run_sta(const Netlist& nl, const StaOptions& opts,
                     std::span<const double> gate_delay_scale) {
  if (!nl.finalized())
    throw std::runtime_error("run_sta: netlist must be finalized");
  if (!gate_delay_scale.empty() && gate_delay_scale.size() != nl.num_gates())
    throw std::invalid_argument("run_sta: gate_delay_scale size mismatch");

  const obs::TraceSpan trace_span("sta.run", "circuit");
  static const obs::Counter runs("sta.runs");
  static const obs::Counter gates("sta.gates");
  static const obs::Counter levels("sta.levels");
  runs.add();
  gates.add(nl.num_gates());
  levels.add(nl.num_gate_levels());

  TimingReport rep;
  rep.arrival.assign(nl.num_pins(), 0.0);
  rep.slew.assign(nl.num_pins(), 0.0);

  auto propagate_net = [&](PinId driver) {
    const Net& net = nl.net(nl.pin(driver).net);
    for (PinId sink : net.sinks) {
      const double wire_delay = net.wire_resistance * nl.pin(sink).capacitance;
      rep.arrival[sink] = rep.arrival[driver] + wire_delay;
      // Wire RC degrades the slew slightly.
      rep.slew[sink] = rep.slew[driver] + 0.5 * wire_delay;
    }
  };

  // Primary inputs: external driver sees the whole net load. Each PI owns
  // its pin and its net's sinks, so the sweep is embarrassingly parallel.
  const auto pis = nl.primary_inputs();
  runtime::parallel_for(0, pis.size(), kStaLevelGrain, [&](std::size_t i) {
    const PinId pi = pis[i];
    const double load = nl.net_load(nl.pin(pi).net);
    rep.arrival[pi] = opts.input_arrival + opts.input_drive_resistance * load;
    rep.slew[pi] = opts.input_slew;
    propagate_net(pi);
  });

  // Levelized traversal: parallel within a level, barrier between levels
  // (Tatum's TopoBarrier shape). Gate inputs live in strictly lower levels.
  auto eval_gate = [&](GateId gid) {
    const Gate& g = nl.gate(gid);
    const CellType& ct = nl.library().cell(g.type);
    const double load = nl.net_load(nl.pin(g.output).net);
    const double derate =
        gate_delay_scale.empty() ? 1.0 : gate_delay_scale[gid];

    double out_arrival = 0.0;
    double out_slew = 0.0;
    for (PinId in : g.inputs) {
      const double arc_delay = derate * (ct.intrinsic_delay +
                                         ct.drive_resistance * load +
                                         opts.slew_delay_fraction * rep.slew[in]);
      out_arrival = std::max(out_arrival, rep.arrival[in] + arc_delay);
      out_slew = std::max(out_slew, ct.slew_intrinsic + ct.slew_factor * load);
    }
    rep.arrival[g.output] = out_arrival;
    rep.slew[g.output] = out_slew;
    propagate_net(g.output);
  };
  for (std::size_t l = 0; l < nl.num_gate_levels(); ++l) {
    const auto gates = nl.gates_at_level(l);
    runtime::parallel_for(0, gates.size(), kStaLevelGrain,
                          [&](std::size_t i) { eval_gate(gates[i]); });
  }

  rep.output_arrivals.reserve(nl.primary_outputs().size());
  for (PinId po : nl.primary_outputs()) {
    rep.output_arrivals.push_back(rep.arrival[po]);
    rep.worst_arrival = std::max(rep.worst_arrival, rep.arrival[po]);
  }
  return rep;
}

std::vector<double> exhaustive_sensitivity(const Netlist& netlist,
                                           double factor,
                                           const StaOptions& opts) {
  const TimingReport base = run_sta(netlist, opts);
  const double base_worst = std::max(base.worst_arrival, 1e-12);

  std::vector<double> sensitivity(netlist.num_pins(), 0.0);
  // One netlist clone per chunk; within a chunk one pin is perturbed at a
  // time and restored, exactly like the serial sweep. Each pin's score is
  // independent, so chunking does not affect the result.
  runtime::parallel_for_chunks(
      0, netlist.num_pins(), kSensitivityGrain,
      [&](std::size_t lo, std::size_t hi) {
        Netlist working = netlist;
        for (std::size_t p = lo; p < hi; ++p) {
          const auto pin = static_cast<PinId>(p);
          const double original = netlist.pin(pin).capacitance;
          if (original <= 0.0) continue;
          working.set_pin_capacitance(pin, original * factor);
          const TimingReport rep = run_sta(working, opts);
          sensitivity[p] =
              std::abs(rep.worst_arrival - base.worst_arrival) / base_worst;
          working.set_pin_capacitance(pin, original);
        }
      });
  return sensitivity;
}

}  // namespace cirstag::circuit
