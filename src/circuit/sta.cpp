#include "circuit/sta.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/parallel_for.hpp"

namespace cirstag::circuit {

namespace {
/// Gates (or primary inputs) per parallel chunk within one topological
/// level. Every gate writes only its own output pin and its net's sink
/// pins (each pin has exactly one driving net), so levels are data-race
/// free and the traversal is bit-identical to the serial sweep.
constexpr std::size_t kStaLevelGrain = 64;
/// Pins per chunk for the perturbation sweep; each chunk clones the
/// netlist once and reuses the clone across its pins.
constexpr std::size_t kSensitivityGrain = 16;

// The arithmetic below is shared between run_sta and IncrementalSta::run so
// the incremental engine is bit-identical by construction, not by accident.

/// Arrival/slew pair of a single pin.
struct PinTiming {
  double arrival = 0.0;
  double slew = 0.0;
};

/// Timing of one net-arc sink given its driver's timing (Elmore wire RC).
inline PinTiming eval_sink(const Netlist& nl, const Net& net, PinId sink,
                           const PinTiming& driver) {
  const double wire_delay = net.wire_resistance * nl.pin_capacitances()[sink];
  // Wire RC degrades the slew slightly.
  return {driver.arrival + wire_delay, driver.slew + 0.5 * wire_delay};
}

/// Timing asserted at a primary input (external driver sees the net load).
inline PinTiming eval_pi(const Netlist& nl, const StaOptions& opts, PinId pi) {
  const double load = nl.net_load(nl.pin(pi).net);
  return {opts.input_arrival + opts.input_drive_resistance * load,
          opts.input_slew};
}

/// Timing of a gate's output pin from its input pins' timing.
inline PinTiming eval_gate(const Netlist& nl, const StaOptions& opts,
                           GateId gid, double derate,
                           const std::vector<double>& arrival,
                           const std::vector<double>& slew) {
  // SoA fast path: cell parameters, input pins and the output net load all
  // come from the flat per-gate arrays built at finalize() — no Gate/Pin/
  // CellType chasing inside the level loop. Same doubles, same arithmetic.
  const double load = nl.net_load(nl.gate_output_net(gid));
  const double intrinsic = nl.gate_intrinsic_delay(gid);
  const double drive_res = nl.gate_drive_resistance(gid);
  const double slew_intrinsic = nl.gate_slew_intrinsic(gid);
  const double slew_factor = nl.gate_slew_factor(gid);

  PinTiming out;
  for (PinId in : nl.gate_inputs_flat(gid)) {
    const double arc_delay = derate * (intrinsic + drive_res * load +
                                       opts.slew_delay_fraction * slew[in]);
    out.arrival = std::max(out.arrival, arrival[in] + arc_delay);
    out.slew = std::max(out.slew, slew_intrinsic + slew_factor * load);
  }
  return out;
}

/// Collect output arrivals / worst arrival from the finished pin arrays.
void finish_report(const Netlist& nl, TimingReport& rep) {
  rep.output_arrivals.clear();
  rep.output_arrivals.reserve(nl.primary_outputs().size());
  rep.worst_arrival = 0.0;
  for (PinId po : nl.primary_outputs()) {
    rep.output_arrivals.push_back(rep.arrival[po]);
    rep.worst_arrival = std::max(rep.worst_arrival, rep.arrival[po]);
  }
}
}  // namespace

TimingReport run_sta(const Netlist& nl, const StaOptions& opts) {
  return run_sta(nl, opts, {});
}

TimingReport run_sta(const Netlist& nl, const StaOptions& opts,
                     std::span<const double> gate_delay_scale) {
  if (!nl.finalized())
    throw std::runtime_error("run_sta: netlist must be finalized");
  if (!gate_delay_scale.empty() && gate_delay_scale.size() != nl.num_gates())
    throw std::invalid_argument("run_sta: gate_delay_scale size mismatch");

  const obs::TraceSpan trace_span("sta.run", "circuit");
  static const obs::Counter runs("sta.runs");
  static const obs::Counter gates("sta.gates");
  static const obs::Counter levels("sta.levels");
  runs.add();
  gates.add(nl.num_gates());
  levels.add(nl.num_gate_levels());

  TimingReport rep;
  rep.arrival.assign(nl.num_pins(), 0.0);
  rep.slew.assign(nl.num_pins(), 0.0);

  auto propagate_net = [&](PinId driver) {
    const Net& net = nl.net(nl.pin(driver).net);
    const PinTiming dt{rep.arrival[driver], rep.slew[driver]};
    for (PinId sink : net.sinks) {
      const PinTiming st = eval_sink(nl, net, sink, dt);
      rep.arrival[sink] = st.arrival;
      rep.slew[sink] = st.slew;
    }
  };

  // Primary inputs: external driver sees the whole net load. Each PI owns
  // its pin and its net's sinks, so the sweep is embarrassingly parallel.
  const auto pis = nl.primary_inputs();
  runtime::parallel_for(0, pis.size(), kStaLevelGrain, [&](std::size_t i) {
    const PinId pi = pis[i];
    const PinTiming t = eval_pi(nl, opts, pi);
    rep.arrival[pi] = t.arrival;
    rep.slew[pi] = t.slew;
    propagate_net(pi);
  });

  // Levelized traversal: parallel within a level, barrier between levels
  // (Tatum's TopoBarrier shape). Gate inputs live in strictly lower levels.
  for (std::size_t l = 0; l < nl.num_gate_levels(); ++l) {
    const auto level_gates = nl.gates_at_level(l);
    runtime::parallel_for(0, level_gates.size(), kStaLevelGrain,
                          [&](std::size_t i) {
      const GateId gid = level_gates[i];
      const double derate =
          gate_delay_scale.empty() ? 1.0 : gate_delay_scale[gid];
      const PinTiming t =
          eval_gate(nl, opts, gid, derate, rep.arrival, rep.slew);
      const PinId out = nl.gate_output(gid);
      rep.arrival[out] = t.arrival;
      rep.slew[out] = t.slew;
      propagate_net(out);
    });
  }

  finish_report(nl, rep);
  return rep;
}

IncrementalSta::IncrementalSta(const Netlist& baseline, const StaOptions& opts)
    : opts_(opts),
      base_(run_sta(baseline, opts)),
      num_pins_(baseline.num_pins()),
      num_gates_(baseline.num_gates()) {}

TimingReport IncrementalSta::run(const Netlist& variant,
                                 std::span<const PinId> touched_pins,
                                 IncrementalStaStats* stats) const {
  if (!variant.finalized())
    throw std::runtime_error("IncrementalSta: netlist must be finalized");
  if (variant.num_pins() != num_pins_ || variant.num_gates() != num_gates_)
    throw std::invalid_argument(
        "IncrementalSta: variant structure differs from baseline");

  const obs::TraceSpan trace_span("sta.incremental", "circuit");
  static const obs::Counter runs("sta.incremental_runs");
  static const obs::Counter evaluated("sta.incremental_gates_evaluated");
  static const obs::Counter skipped("sta.incremental_gates_skipped");
  runs.add();

  TimingReport rep;
  rep.arrival = base_.arrival;
  rep.slew = base_.slew;

  IncrementalStaStats local;
  local.total_gates = variant.num_gates();

  // Seed the dirty set: a touched pin's capacitance enters the timing model
  // only through its net — the net load seen by the net's producer and the
  // Elmore wire delay of the touched sink itself — so re-evaluating the
  // producer (PI or driving gate) covers every first-order effect.
  std::vector<char> gate_dirty(variant.num_gates(), 0);
  std::vector<PinId> dirty_pis;
  for (PinId p : touched_pins) {
    const NetId n = variant.pin(p).net;
    if (n == kInvalidId) continue;
    const PinId driver = variant.net(n).driver;
    if (driver == kInvalidId) continue;
    const Pin& dp = variant.pin(driver);
    if (dp.kind == PinKind::PrimaryInput) {
      dirty_pis.push_back(driver);
    } else if (dp.gate != kInvalidId) {
      gate_dirty[dp.gate] = 1;
    }
  }
  std::sort(dirty_pis.begin(), dirty_pis.end());
  dirty_pis.erase(std::unique(dirty_pis.begin(), dirty_pis.end()),
                  dirty_pis.end());

  // Write `t` to pin p; when the value moved, wake the pin's consumer gate.
  auto commit = [&](PinId p, const PinTiming& t) {
    if (rep.arrival[p] == t.arrival && rep.slew[p] == t.slew) return;
    rep.arrival[p] = t.arrival;
    rep.slew[p] = t.slew;
    ++local.pins_changed;
    const Pin& pin = variant.pin(p);
    if (pin.kind == PinKind::CellInput && pin.gate != kInvalidId)
      gate_dirty[pin.gate] = 1;
  };

  auto propagate_net = [&](PinId driver) {
    const Net& net = variant.net(variant.pin(driver).net);
    const PinTiming dt{rep.arrival[driver], rep.slew[driver]};
    for (PinId sink : net.sinks) commit(sink, eval_sink(variant, net, sink, dt));
  };

  for (PinId pi : dirty_pis) {
    ++local.pis_evaluated;
    const PinTiming t = eval_pi(variant, opts_, pi);
    rep.arrival[pi] = t.arrival;
    rep.slew[pi] = t.slew;
    propagate_net(pi);
  }

  // Levelized sweep over dirty gates only. Inputs live in strictly lower
  // levels, so by induction every non-dirty pin still holds exactly the
  // value a full run_sta on the variant would produce.
  for (std::size_t l = 0; l < variant.num_gate_levels(); ++l) {
    for (GateId gid : variant.gates_at_level(l)) {
      if (!gate_dirty[gid]) continue;
      ++local.gates_evaluated;
      const PinTiming t =
          eval_gate(variant, opts_, gid, /*derate=*/1.0, rep.arrival, rep.slew);
      const PinId out = variant.gate_output(gid);
      rep.arrival[out] = t.arrival;
      rep.slew[out] = t.slew;
      propagate_net(out);
    }
  }

  finish_report(variant, rep);

  evaluated.add(local.gates_evaluated);
  skipped.add(local.total_gates - local.gates_evaluated);
  if (stats) *stats = local;
  return rep;
}

std::vector<double> exhaustive_sensitivity(const Netlist& netlist,
                                           double factor,
                                           const StaOptions& opts) {
  const IncrementalSta inc(netlist, opts);
  const TimingReport& base = inc.baseline_report();
  const double base_worst = std::max(base.worst_arrival, 1e-12);

  std::vector<double> sensitivity(netlist.num_pins(), 0.0);
  // One netlist clone per chunk; within a chunk one pin is perturbed at a
  // time and restored, exactly like the serial sweep. Each pin's score is
  // independent, so chunking does not affect the result. Per pin only the
  // fanout cone is re-timed (bit-identical to a full STA; see
  // IncrementalSta).
  runtime::parallel_for_chunks(
      0, netlist.num_pins(), kSensitivityGrain,
      [&](std::size_t lo, std::size_t hi) {
        Netlist working = netlist;
        for (std::size_t p = lo; p < hi; ++p) {
          const auto pin = static_cast<PinId>(p);
          const double original = netlist.pin(pin).capacitance;
          if (original <= 0.0) continue;
          working.set_pin_capacitance(pin, original * factor);
          const PinId touched[] = {pin};
          const TimingReport rep = inc.run(working, touched);
          sensitivity[p] =
              std::abs(rep.worst_arrival - base.worst_arrival) / base_worst;
          working.set_pin_capacitance(pin, original);
        }
      });
  return sensitivity;
}

}  // namespace cirstag::circuit
