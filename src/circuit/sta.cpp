#include "circuit/sta.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cirstag::circuit {

TimingReport run_sta(const Netlist& nl, const StaOptions& opts) {
  return run_sta(nl, opts, {});
}

TimingReport run_sta(const Netlist& nl, const StaOptions& opts,
                     std::span<const double> gate_delay_scale) {
  if (!nl.finalized())
    throw std::runtime_error("run_sta: netlist must be finalized");
  if (!gate_delay_scale.empty() && gate_delay_scale.size() != nl.num_gates())
    throw std::invalid_argument("run_sta: gate_delay_scale size mismatch");

  TimingReport rep;
  rep.arrival.assign(nl.num_pins(), 0.0);
  rep.slew.assign(nl.num_pins(), 0.0);

  auto propagate_net = [&](PinId driver) {
    const Net& net = nl.net(nl.pin(driver).net);
    for (PinId sink : net.sinks) {
      const double wire_delay = net.wire_resistance * nl.pin(sink).capacitance;
      rep.arrival[sink] = rep.arrival[driver] + wire_delay;
      // Wire RC degrades the slew slightly.
      rep.slew[sink] = rep.slew[driver] + 0.5 * wire_delay;
    }
  };

  // Primary inputs: external driver sees the whole net load.
  for (PinId pi : nl.primary_inputs()) {
    const double load = nl.net_load(nl.pin(pi).net);
    rep.arrival[pi] = opts.input_arrival + opts.input_drive_resistance * load;
    rep.slew[pi] = opts.input_slew;
    propagate_net(pi);
  }

  // Gates in topological order.
  for (GateId gid : nl.topological_order()) {
    const Gate& g = nl.gate(gid);
    const CellType& ct = nl.library().cell(g.type);
    const double load = nl.net_load(nl.pin(g.output).net);
    const double derate =
        gate_delay_scale.empty() ? 1.0 : gate_delay_scale[gid];

    double out_arrival = 0.0;
    double out_slew = 0.0;
    for (PinId in : g.inputs) {
      const double arc_delay = derate * (ct.intrinsic_delay +
                                         ct.drive_resistance * load +
                                         opts.slew_delay_fraction * rep.slew[in]);
      out_arrival = std::max(out_arrival, rep.arrival[in] + arc_delay);
      out_slew = std::max(out_slew, ct.slew_intrinsic + ct.slew_factor * load);
    }
    rep.arrival[g.output] = out_arrival;
    rep.slew[g.output] = out_slew;
    propagate_net(g.output);
  }

  rep.output_arrivals.reserve(nl.primary_outputs().size());
  for (PinId po : nl.primary_outputs()) {
    rep.output_arrivals.push_back(rep.arrival[po]);
    rep.worst_arrival = std::max(rep.worst_arrival, rep.arrival[po]);
  }
  return rep;
}

std::vector<double> exhaustive_sensitivity(const Netlist& netlist,
                                           double factor,
                                           const StaOptions& opts) {
  const TimingReport base = run_sta(netlist, opts);
  const double base_worst = std::max(base.worst_arrival, 1e-12);

  std::vector<double> sensitivity(netlist.num_pins(), 0.0);
  Netlist working = netlist;  // value copy; we mutate one pin at a time
  for (PinId p = 0; p < netlist.num_pins(); ++p) {
    const double original = netlist.pin(p).capacitance;
    if (original <= 0.0) continue;
    working.set_pin_capacitance(p, original * factor);
    const TimingReport rep = run_sta(working, opts);
    sensitivity[p] = std::abs(rep.worst_arrival - base.worst_arrival) / base_worst;
    working.set_pin_capacitance(p, original);
  }
  return sensitivity;
}

}  // namespace cirstag::circuit
