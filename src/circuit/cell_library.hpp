#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace cirstag::circuit {

using CellTypeId = std::uint16_t;

/// A combinational standard cell characterized with a logical-effort style
/// linear delay model:
///
///   arc delay = intrinsic_delay + drive_resistance * C_load
///   output slew = slew_intrinsic + slew_factor * C_load
///
/// Units are normalized (FO4-ish delays, femtofarad-ish caps); absolute
/// scale is irrelevant to CirSTAG, which only consumes relative changes.
struct CellType {
  std::string name;
  std::uint8_t num_inputs = 1;
  double input_capacitance = 1.0;   ///< per input pin
  double intrinsic_delay = 1.0;     ///< parasitic delay p
  double drive_resistance = 1.0;    ///< effort slope (1/drive strength)
  double slew_intrinsic = 0.5;
  double slew_factor = 0.3;
};

/// The default technology library used by the synthetic benchmark suite:
/// inverters/buffers in multiple drive strengths plus the usual 2-3 input
/// gates, MUX, and AOI/OAI complex cells.
class CellLibrary {
 public:
  /// Library with the builtin cell set.
  static CellLibrary standard();

  /// Empty library for custom construction.
  CellLibrary() = default;

  CellTypeId add_cell(CellType cell);

  [[nodiscard]] const CellType& cell(CellTypeId id) const;
  [[nodiscard]] std::size_t size() const { return cells_.size(); }
  [[nodiscard]] std::span<const CellType> cells() const { return cells_; }

  /// Lookup by name; throws std::out_of_range if absent.
  [[nodiscard]] CellTypeId id_of(const std::string& name) const;

  /// Ids of cells with exactly `num_inputs` inputs.
  [[nodiscard]] std::vector<CellTypeId> cells_with_arity(
      std::uint8_t num_inputs) const;

 private:
  std::vector<CellType> cells_;
};

}  // namespace cirstag::circuit
