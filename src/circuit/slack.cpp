#include "circuit/slack.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace cirstag::circuit {

namespace {

/// Forward cell-arc delay, identical to the run_sta model.
double arc_delay(const Netlist& nl, const TimingReport& timing,
                 const StaOptions& opts, const Gate& gate, PinId input) {
  const CellType& ct = nl.library().cell(gate.type);
  const double load = nl.net_load(nl.pin(gate.output).net);
  return ct.intrinsic_delay + ct.drive_resistance * load +
         opts.slew_delay_fraction * timing.slew[input];
}

double wire_delay(const Netlist& nl, PinId sink) {
  const Net& net = nl.net(nl.pin(sink).net);
  return net.wire_resistance * nl.pin(sink).capacitance;
}

}  // namespace

SlackReport compute_slack(const Netlist& nl, const TimingReport& timing,
                          const StaOptions& opts, double clock_period) {
  if (!nl.finalized())
    throw std::invalid_argument("compute_slack: netlist must be finalized");
  if (timing.arrival.size() != nl.num_pins())
    throw std::invalid_argument("compute_slack: timing report size mismatch");

  const double target =
      clock_period > 0.0 ? clock_period : timing.worst_arrival;
  constexpr double kInf = std::numeric_limits<double>::infinity();

  SlackReport rep;
  rep.required.assign(nl.num_pins(), kInf);
  for (PinId po : nl.primary_outputs()) rep.required[po] = target;

  auto pull_from_net = [&](PinId driver) {
    const Net& net = nl.net(nl.pin(driver).net);
    for (PinId sink : net.sinks) {
      rep.required[driver] = std::min(
          rep.required[driver], rep.required[sink] - wire_delay(nl, sink));
    }
  };

  // Reverse topological order over gates.
  const auto topo = nl.topological_order();
  for (std::size_t i = topo.size(); i-- > 0;) {
    const Gate& gate = nl.gate(topo[i]);
    pull_from_net(gate.output);
    for (PinId in : gate.inputs) {
      rep.required[in] =
          std::min(rep.required[in], rep.required[gate.output] -
                                         arc_delay(nl, timing, opts, gate, in));
    }
  }
  for (PinId pi : nl.primary_inputs()) pull_from_net(pi);

  rep.slack.assign(nl.num_pins(), 0.0);
  rep.worst_slack = kInf;
  for (PinId p = 0; p < nl.num_pins(); ++p) {
    // Unconstrained pins (no path to any primary output — dangling cones)
    // carry no timing requirement: clamp their slack at >= 0 like a signoff
    // tool reporting "untested" endpoints, instead of inventing violations.
    if (rep.required[p] == kInf)
      rep.required[p] = std::max(target, timing.arrival[p]);
    rep.slack[p] = rep.required[p] - timing.arrival[p];
    if (rep.slack[p] < rep.worst_slack) {
      rep.worst_slack = rep.slack[p];
      rep.worst_pin = p;
    }
  }
  return rep;
}

std::vector<TimingPath> critical_paths(const Netlist& nl,
                                       const TimingReport& timing,
                                       const StaOptions& opts, std::size_t k) {
  if (!nl.finalized())
    throw std::invalid_argument("critical_paths: netlist must be finalized");

  // Rank endpoints by arrival, descending.
  std::vector<PinId> endpoints(nl.primary_outputs().begin(),
                               nl.primary_outputs().end());
  std::sort(endpoints.begin(), endpoints.end(), [&](PinId a, PinId b) {
    return timing.arrival[a] > timing.arrival[b];
  });
  endpoints.resize(std::min(k, endpoints.size()));

  std::vector<TimingPath> paths;
  paths.reserve(endpoints.size());
  for (PinId po : endpoints) {
    TimingPath path;
    path.arrival = timing.arrival[po];
    path.slack = timing.worst_arrival - timing.arrival[po];

    PinId cursor = po;
    path.pins.push_back(cursor);
    // Walk back: sink pin -> its net driver; cell output -> worst input.
    while (true) {
      const Pin& pin = nl.pin(cursor);
      if (pin.kind == PinKind::PrimaryInput) break;
      if (pin.kind == PinKind::CellOutput) {
        const Gate& gate = nl.gate(pin.gate);
        PinId worst = gate.inputs.front();
        double worst_arr = -std::numeric_limits<double>::infinity();
        for (PinId in : gate.inputs) {
          const double a =
              timing.arrival[in] + arc_delay(nl, timing, opts, gate, in);
          if (a > worst_arr) {
            worst_arr = a;
            worst = in;
          }
        }
        cursor = worst;
      } else {
        // Sink pin (cell input or primary output): jump to the net driver.
        cursor = nl.net(pin.net).driver;
      }
      path.pins.push_back(cursor);
    }
    std::reverse(path.pins.begin(), path.pins.end());
    paths.push_back(std::move(path));
  }
  return paths;
}

}  // namespace cirstag::circuit
