#include "circuit/views.hpp"

#include <algorithm>
#include <stdexcept>

namespace cirstag::circuit {

graphs::Graph pin_graph(const Netlist& nl) {
  graphs::Graph g(nl.num_pins());
  // Net connections: driver to each sink.
  for (const Net& net : nl.nets()) {
    for (PinId sink : net.sinks) g.add_edge(net.driver, sink, 1.0);
  }
  // Internal cell connections: each input to the output.
  for (const Gate& gate : nl.gates()) {
    for (PinId in : gate.inputs) g.add_edge(in, gate.output, 1.0);
  }
  return g;
}

PinArcs pin_arcs(const Netlist& nl) {
  PinArcs arcs;
  for (const Net& net : nl.nets())
    for (PinId sink : net.sinks) arcs.net_arcs.emplace_back(net.driver, sink);
  for (const Gate& gate : nl.gates())
    for (PinId in : gate.inputs) arcs.cell_arcs.emplace_back(in, gate.output);
  return arcs;
}

graphs::Graph gate_graph(const Netlist& nl) {
  graphs::Graph g(nl.num_gates());
  std::vector<std::pair<GateId, GateId>> seen;
  for (const Net& net : nl.nets()) {
    const Pin& drv = nl.pin(net.driver);
    if (drv.kind != PinKind::CellOutput) continue;
    for (PinId sink : net.sinks) {
      const Pin& sp = nl.pin(sink);
      if (sp.kind != PinKind::CellInput) continue;
      const GateId a = std::min(drv.gate, sp.gate);
      const GateId b = std::max(drv.gate, sp.gate);
      if (a == b) continue;
      seen.emplace_back(a, b);
    }
  }
  std::sort(seen.begin(), seen.end());
  seen.erase(std::unique(seen.begin(), seen.end()), seen.end());
  for (const auto& [a, b] : seen) g.add_edge(a, b, 1.0);
  return g;
}

std::vector<double> pin_depths(const Netlist& nl) {
  std::vector<double> depth(nl.num_pins(), 0.0);
  for (PinId pi : nl.primary_inputs()) depth[pi] = 0.0;

  auto spread_net = [&](PinId driver) {
    const Net& net = nl.net(nl.pin(driver).net);
    for (PinId sink : net.sinks) depth[sink] = depth[driver] + 1.0;
  };
  for (PinId pi : nl.primary_inputs()) spread_net(pi);
  for (GateId gid : nl.topological_order()) {
    const Gate& g = nl.gate(gid);
    double d = 0.0;
    for (PinId in : g.inputs) d = std::max(d, depth[in]);
    depth[g.output] = d + 1.0;
    spread_net(g.output);
  }
  const double max_d =
      std::max(1.0, *std::max_element(depth.begin(), depth.end()));
  for (auto& d : depth) d /= max_d;
  return depth;
}

linalg::Matrix pin_features(const Netlist& nl) {
  linalg::Matrix x(nl.num_pins(), kPinFeatureDim);
  const std::vector<double> depth = pin_depths(nl);
  for (PinId p = 0; p < nl.num_pins(); ++p) {
    const Pin& pin = nl.pin(p);
    x(p, 0) = pin.capacitance;
    x(p, 1) = pin.kind == PinKind::PrimaryInput ? 1.0 : 0.0;
    x(p, 2) = pin.kind == PinKind::PrimaryOutput ? 1.0 : 0.0;
    x(p, 3) = pin.kind == PinKind::CellInput ? 1.0 : 0.0;
    x(p, 4) = pin.kind == PinKind::CellOutput ? 1.0 : 0.0;
    if (pin.kind == PinKind::CellOutput) {
      const CellType& ct = nl.library().cell(nl.gate(pin.gate).type);
      x(p, 5) = ct.drive_resistance;
      x(p, 6) = ct.intrinsic_delay;
    }
    if (pin.net != kInvalidId) {
      const Net& net = nl.net(pin.net);
      x(p, 7) = static_cast<double>(net.sinks.size());
      x(p, 8) = net.wire_resistance;
      x(p, 9) = nl.net_load(pin.net);
    }
    x(p, 10) = depth[p];
  }
  return x;
}

linalg::Matrix gate_features(const Netlist& nl) {
  return gate_features(nl, gate_graph(nl));
}

linalg::Matrix gate_features(const Netlist& nl, const graphs::Graph& topology) {
  const std::size_t num_types = nl.library().size();
  if (topology.num_nodes() != nl.num_gates())
    throw std::invalid_argument("gate_features: topology size mismatch");
  linalg::Matrix x(nl.num_gates(), 2 * num_types);
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    x(g, nl.gate(g).type) = 1.0;
    const auto nbrs = topology.neighbors(g);
    if (nbrs.empty()) continue;
    const double inv = 1.0 / static_cast<double>(nbrs.size());
    for (const auto& inc : nbrs)
      x(g, num_types + nl.gate(inc.neighbor).type) += inv;
  }
  return x;
}

std::vector<std::uint32_t> gate_labels(const Netlist& nl) {
  std::vector<std::uint32_t> labels(nl.num_gates());
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    const std::uint32_t lab = nl.gate(g).module_label;
    if (lab == kInvalidId)
      throw std::runtime_error("gate_labels: gate without module label");
    labels[g] = lab;
  }
  return labels;
}

}  // namespace cirstag::circuit
