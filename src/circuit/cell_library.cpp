#include "circuit/cell_library.hpp"

#include <stdexcept>

namespace cirstag::circuit {

CellTypeId CellLibrary::add_cell(CellType cell) {
  if (cell.num_inputs == 0)
    throw std::invalid_argument("CellLibrary: cell must have inputs");
  cells_.push_back(std::move(cell));
  return static_cast<CellTypeId>(cells_.size() - 1);
}

const CellType& CellLibrary::cell(CellTypeId id) const {
  if (id >= cells_.size()) throw std::out_of_range("CellLibrary::cell");
  return cells_[id];
}

CellTypeId CellLibrary::id_of(const std::string& name) const {
  for (std::size_t i = 0; i < cells_.size(); ++i)
    if (cells_[i].name == name) return static_cast<CellTypeId>(i);
  throw std::out_of_range("CellLibrary::id_of: unknown cell " + name);
}

std::vector<CellTypeId> CellLibrary::cells_with_arity(
    std::uint8_t num_inputs) const {
  std::vector<CellTypeId> out;
  for (std::size_t i = 0; i < cells_.size(); ++i)
    if (cells_[i].num_inputs == num_inputs)
      out.push_back(static_cast<CellTypeId>(i));
  return out;
}

CellLibrary CellLibrary::standard() {
  CellLibrary lib;
  // name, inputs, Cin, p, Rdrive, slew_p, slew_k
  lib.add_cell({"INV_X1", 1, 1.0, 0.60, 1.00, 0.30, 0.25});
  lib.add_cell({"INV_X2", 1, 1.8, 0.65, 0.55, 0.30, 0.15});
  lib.add_cell({"INV_X4", 1, 3.4, 0.70, 0.30, 0.30, 0.09});
  lib.add_cell({"BUF_X1", 1, 1.0, 1.10, 0.95, 0.35, 0.22});
  lib.add_cell({"BUF_X2", 1, 1.8, 1.15, 0.52, 0.35, 0.13});
  lib.add_cell({"NAND2_X1", 2, 1.2, 0.80, 1.05, 0.40, 0.26});
  lib.add_cell({"NAND2_X2", 2, 2.2, 0.85, 0.58, 0.40, 0.16});
  lib.add_cell({"NOR2_X1", 2, 1.3, 0.95, 1.25, 0.45, 0.30});
  lib.add_cell({"AND2_X1", 2, 1.2, 1.35, 1.00, 0.45, 0.24});
  lib.add_cell({"OR2_X1", 2, 1.3, 1.45, 1.10, 0.48, 0.26});
  lib.add_cell({"XOR2_X1", 2, 1.9, 1.80, 1.30, 0.55, 0.32});
  lib.add_cell({"XNOR2_X1", 2, 1.9, 1.85, 1.32, 0.55, 0.32});
  lib.add_cell({"MUX2_X1", 3, 1.5, 1.60, 1.15, 0.50, 0.28});
  lib.add_cell({"AOI21_X1", 3, 1.4, 1.05, 1.20, 0.48, 0.29});
  lib.add_cell({"OAI21_X1", 3, 1.4, 1.10, 1.22, 0.48, 0.29});
  lib.add_cell({"NAND3_X1", 3, 1.3, 1.00, 1.15, 0.45, 0.28});
  lib.add_cell({"NOR3_X1", 3, 1.4, 1.20, 1.45, 0.50, 0.33});
  return lib;
}

}  // namespace cirstag::circuit
