#pragma once

#include <string>
#include <vector>

#include "circuit/netlist.hpp"
#include "linalg/rng.hpp"

namespace cirstag::circuit {

/// Specification of one synthetic combinational benchmark.
///
/// The generator emits layered random logic: gates are placed level by
/// level, each drawing its inputs from earlier signals with a locality bias,
/// which reproduces the fanout/depth statistics of technology-mapped
/// netlists well enough for timing-GNN training.
struct RandomCircuitSpec {
  std::string name = "random";
  std::size_t num_inputs = 32;
  std::size_t num_outputs = 16;
  std::size_t num_gates = 1000;
  std::size_t num_levels = 12;
  /// Probability that an input is drawn from the immediately preceding
  /// level (vs. uniformly from all earlier signals).
  double locality = 0.7;
  /// Multiplicative pin-capacitance jitter: each cap is scaled by
  /// U(1-jitter, 1+jitter) to diversify features across instances.
  double cap_jitter = 0.2;
  /// Wire RC randomization span (multiplier on nominal values).
  double wire_jitter = 0.5;
  std::uint64_t seed = 1;
};

/// Generate a finalized random combinational netlist.
[[nodiscard]] Netlist generate_random_logic(const CellLibrary& lib,
                                            const RandomCircuitSpec& spec);

/// The nine-design suite standing in for the paper's Table-I benchmarks
/// (names mirror the TimingGCN set; sizes span ~0.7k to ~7k gates).
[[nodiscard]] std::vector<RandomCircuitSpec> benchmark_suite();

/// Scaled suite for the Fig. 5 scalability sweep: same topology recipe at
/// geometrically growing gate counts.
[[nodiscard]] std::vector<RandomCircuitSpec> scalability_suite(
    std::size_t num_sizes, std::size_t base_gates = 1000,
    double growth = 2.0);

}  // namespace cirstag::circuit
