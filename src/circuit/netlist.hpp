#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "circuit/cell_library.hpp"

namespace cirstag::circuit {

using PinId = std::uint32_t;
using GateId = std::uint32_t;
using NetId = std::uint32_t;
constexpr std::uint32_t kInvalidId = 0xFFFFFFFFu;

/// Role of a pin in the pin-level timing graph.
enum class PinKind : std::uint8_t {
  PrimaryInput,   ///< design input port (drives a net)
  PrimaryOutput,  ///< design output port (sinks a net)
  CellInput,      ///< standard-cell input pin
  CellOutput,     ///< standard-cell output pin
};

/// A pin node: the atomic unit of the pre-routing timing model.
/// Nodes of the GNN graph in Case Study A are exactly these pins (matching
/// the TimingGCN convention: "nodes represent cell pins").
struct Pin {
  PinKind kind = PinKind::CellInput;
  GateId gate = kInvalidId;       ///< owner gate (invalid for ports)
  NetId net = kInvalidId;         ///< net this pin connects to
  double capacitance = 1.0;       ///< pin load (the perturbed feature)
};

/// A standard-cell instance.
struct Gate {
  CellTypeId type = 0;
  std::vector<PinId> inputs;
  PinId output = kInvalidId;
  /// Sub-circuit/module label for the reverse-engineering case study
  /// (kInvalidId when the netlist has no module annotation).
  std::uint32_t module_label = kInvalidId;
};

/// A net: one driver pin fanning out to sink pins through a lumped wire.
struct Net {
  PinId driver = kInvalidId;
  std::vector<PinId> sinks;
  double wire_resistance = 0.1;   ///< Elmore resistance to each sink
  double wire_capacitance = 0.5;  ///< lumped wire load seen by the driver
};

/// A gate-level netlist with an explicit pin-level view.
///
/// Construction flow: add primary inputs, add gates (each produces its
/// output pin and a net), connect gate inputs / primary outputs to nets,
/// then `finalize()` validates the structure and computes the topological
/// order used by the STA engine.
class Netlist {
 public:
  explicit Netlist(const CellLibrary& lib) : lib_(&lib) {}

  /// --- construction -----------------------------------------------------
  PinId add_primary_input();
  /// Creates gate + its output pin + the net driven by that pin.
  GateId add_gate(CellTypeId type,
                  std::uint32_t module_label = kInvalidId);
  /// Connects input slot `slot` of `gate` to the net driven by `driver_pin`
  /// (a primary input pin or another gate's output pin).
  void connect_input(GateId gate, std::size_t slot, PinId driver_pin);
  /// Creates a primary-output pin sinking `driver_pin`'s net.
  PinId add_primary_output(PinId driver_pin, double load_capacitance = 2.0);

  /// Validates (all inputs connected, acyclic) and freezes topology.
  /// Throws std::runtime_error on malformed netlists.
  void finalize();

  /// Reassemble a finalized netlist from previously exported structure —
  /// the binary-snapshot restore path (io/snapshot). The arrays are the
  /// exact contents of pins()/gates()/nets()/primary_inputs()/
  /// primary_outputs(); cross-references are range-checked here and the
  /// deeper structural invariants (connected inputs, acyclicity) by the
  /// finalize() call this performs. `lib` must outlive the netlist.
  [[nodiscard]] static Netlist from_parts(const CellLibrary& lib,
                                          std::vector<Pin> pins,
                                          std::vector<Gate> gates,
                                          std::vector<Net> nets,
                                          std::vector<PinId> primary_inputs,
                                          std::vector<PinId> primary_outputs);

  /// --- accessors ----------------------------------------------------------
  [[nodiscard]] const CellLibrary& library() const { return *lib_; }
  [[nodiscard]] std::size_t num_pins() const { return pins_.size(); }
  [[nodiscard]] std::size_t num_gates() const { return gates_.size(); }
  [[nodiscard]] std::size_t num_nets() const { return nets_.size(); }
  [[nodiscard]] bool finalized() const { return finalized_; }

  [[nodiscard]] const Pin& pin(PinId p) const { return pins_.at(p); }
  [[nodiscard]] const Gate& gate(GateId g) const { return gates_.at(g); }
  [[nodiscard]] const Net& net(NetId n) const { return nets_.at(n); }
  [[nodiscard]] std::span<const Pin> pins() const { return pins_; }
  [[nodiscard]] std::span<const Gate> gates() const { return gates_; }
  [[nodiscard]] std::span<const Net> nets() const { return nets_; }

  [[nodiscard]] std::span<const PinId> primary_inputs() const {
    return primary_inputs_;
  }
  [[nodiscard]] std::span<const PinId> primary_outputs() const {
    return primary_outputs_;
  }
  /// Gate evaluation order (defined after finalize()).
  [[nodiscard]] std::span<const GateId> topological_order() const;

  /// Number of topological gate levels (defined after finalize()). A gate's
  /// level is 1 + the max level of the gates feeding it (0 when fed only by
  /// primary inputs), so gates within one level are mutually independent —
  /// the unit of parallelism for the levelized STA traversal.
  [[nodiscard]] std::size_t num_gate_levels() const;
  /// Gates of one topological level, in topological-order-stable order.
  [[nodiscard]] std::span<const GateId> gates_at_level(std::size_t level) const;

  /// Total capacitive load seen by a net's driver: wire + sink pins.
  /// O(1) after finalize() — served from a per-net cache the mutators keep
  /// fresh by full ascending recomputation (bit-identical to the on-demand
  /// sum, and restore-idempotent under perturb/restore cycles).
  [[nodiscard]] double net_load(NetId n) const;

  /// --- hot-path SoA view (valid after finalize()) -------------------------
  /// Flat mirrors of the AoS structures above, laid out for the levelized
  /// STA sweep: per-pin capacitances, per-gate cell timing parameters and a
  /// flat input-pin CSR, so the inner loop touches dense double arrays
  /// instead of chasing Pin/Gate/CellType objects.
  [[nodiscard]] std::span<const double> pin_capacitances() const {
    return pin_cap_;
  }
  [[nodiscard]] std::span<const PinId> gate_inputs_flat(GateId g) const {
    return {gate_input_pins_.data() + gate_input_offsets_[g],
            gate_input_offsets_[g + 1] - gate_input_offsets_[g]};
  }
  [[nodiscard]] PinId gate_output(GateId g) const { return gate_output_[g]; }
  [[nodiscard]] NetId gate_output_net(GateId g) const {
    return gate_out_net_[g];
  }
  [[nodiscard]] double gate_intrinsic_delay(GateId g) const {
    return cell_intrinsic_[g];
  }
  [[nodiscard]] double gate_drive_resistance(GateId g) const {
    return cell_drive_res_[g];
  }
  [[nodiscard]] double gate_slew_intrinsic(GateId g) const {
    return cell_slew_intrinsic_[g];
  }
  [[nodiscard]] double gate_slew_factor(GateId g) const {
    return cell_slew_factor_[g];
  }

  /// --- mutation for perturbation studies ----------------------------------
  /// Scale the capacitance of one pin (keeps topology; no re-finalize needed).
  void scale_pin_capacitance(PinId p, double factor);
  void set_pin_capacitance(PinId p, double value);
  void set_net_wire(NetId n, double resistance, double capacitance);

 private:
  const CellLibrary* lib_;
  std::vector<Pin> pins_;
  std::vector<Gate> gates_;
  std::vector<Net> nets_;
  std::vector<PinId> primary_inputs_;
  std::vector<PinId> primary_outputs_;
  std::vector<GateId> topo_order_;
  std::vector<GateId> level_order_;        // topo_order_ regrouped by level
  std::vector<std::size_t> level_offsets_; // level l = [l, l+1) slice above
  bool finalized_ = false;

  // SoA mirrors (see accessors above); rebuilt in finalize(), kept in sync
  // by the capacitance/wire mutators.
  std::vector<double> pin_cap_;
  std::vector<double> net_load_;
  std::vector<double> cell_intrinsic_;
  std::vector<double> cell_drive_res_;
  std::vector<double> cell_slew_intrinsic_;
  std::vector<double> cell_slew_factor_;
  std::vector<PinId> gate_output_;
  std::vector<NetId> gate_out_net_;
  std::vector<std::size_t> gate_input_offsets_;
  std::vector<PinId> gate_input_pins_;

  void build_soa_mirrors();
  void refresh_net_load(NetId n);
};

}  // namespace cirstag::circuit
