#pragma once

#include <vector>

#include "circuit/sta.hpp"
#include "linalg/rng.hpp"

namespace cirstag::circuit {

/// Statistical process/voltage/temperature variation model.
///
/// Each Monte-Carlo sample applies a lognormal derate to every cell arc:
///   scale(g) = exp(N(0, global_sigma)) · exp(N(0, local_sigma))
/// (one shared die-level draw plus an independent per-gate draw) and a
/// multiplicative jitter exp(N(0, cap_sigma)) to every pin capacitance.
/// This is the standard D2D + WID decomposition used in statistical STA.
struct VariationModel {
  double global_sigma = 0.05;  ///< die-to-die (systematic) delay spread
  double local_sigma = 0.08;   ///< within-die (random) per-gate spread
  double cap_sigma = 0.04;     ///< per-pin capacitance spread
  std::uint64_t seed = 1234;
};

/// Statistics of a Monte-Carlo STA campaign.
struct MonteCarloResult {
  std::size_t samples = 0;
  std::vector<double> arrival_mean;  ///< per pin
  std::vector<double> arrival_std;   ///< per pin
  double worst_mean = 0.0;           ///< mean of worst output arrival
  double worst_std = 0.0;
  double worst_p95 = 0.0;            ///< 95th percentile of worst arrival
};

/// Run `samples` variation-sampled STA analyses and accumulate per-pin
/// arrival statistics (Welford). The expensive "numerous repeated circuit
/// simulations" of the paper's introduction — the procedure CirSTAG's
/// one-shot spectral analysis is designed to avoid.
[[nodiscard]] MonteCarloResult monte_carlo_sta(const Netlist& nl,
                                               const VariationModel& model,
                                               std::size_t samples,
                                               const StaOptions& opts = {});

/// One PVT corner: a uniform derate applied to every gate.
struct Corner {
  const char* name;
  double delay_scale;
};

/// Classic 3-corner set (fast / typical / slow).
[[nodiscard]] std::vector<Corner> standard_corners();

/// Worst output arrival at each corner.
[[nodiscard]] std::vector<double> corner_analysis(const Netlist& nl,
                                                  std::span<const Corner> corners,
                                                  const StaOptions& opts = {});

}  // namespace cirstag::circuit
