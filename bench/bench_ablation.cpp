// Ablation benches for the design choices DESIGN.md calls out:
//   (a) PGM sparsification on/off and off-tree keep fraction,
//   (b) kNN neighborhood size k,
//   (c) input embedding dimension M,
//   (d) eigensubspace dimension s.
// The quality metric is the Table-I separation ratio
// (unstable mean change / stable mean change, top 10% @ 10x) on one
// mid-size benchmark — higher is better.

#include <cstdio>

#include "common.hpp"
#include "util/ascii.hpp"

namespace {

using namespace cirstag;
using namespace cirstag::bench;

double separation(CaseA& c) {
  const ChangeStats u = po_change(c, unstable_pins(c, 0.10), 10.0);
  const ChangeStats s = po_change(c, stable_pins(c, 0.10), 10.0);
  return u.mean / std::max(s.mean, 1e-9);
}

}  // namespace

int main() {
  const circuit::CellLibrary lib = circuit::CellLibrary::standard();
  // Probe design: the smallest Table-I benchmark (keeps the sweep fast
  // while measuring knob effects on a circuit from the evaluated suite).
  circuit::RandomCircuitSpec spec = circuit::benchmark_suite().back();

  std::printf("=== Ablation sweeps (separation = unstable/stable mean change,"
              " top 10%% @ 10x) ===\n\n");
  util::AsciiTable table({"knob", "value", "separation"});

  auto run = [&](const char* knob, const std::string& value,
                 const CaseAOptions& opts) {
    CaseA c = prepare_case_a(lib, spec, opts);
    const double sep = separation(c);
    table.add_row({knob, value, util::fmt(sep, 2)});
    std::printf("  %-22s %-8s separation %8.2fx (R2 %.3f)\n", knob,
                value.c_str(), sep, c.r2);
  };

  {
    CaseAOptions opts;
    run("baseline", "-", opts);
  }
  {
    CaseAOptions opts;
    opts.config.manifold.apply_sparsification = false;
    run("sparsification", "off", opts);
  }
  for (double frac : {0.05, 0.5}) {
    CaseAOptions opts;
    opts.config.manifold.sparsify.offtree_keep_fraction = frac;
    run("offtree_keep_fraction", util::fmt(frac, 2), opts);
  }
  for (std::size_t k : {5ul, 20ul}) {
    CaseAOptions opts;
    opts.config.manifold.knn.k = k;
    run("knn_k", std::to_string(k), opts);
  }
  for (std::size_t m : {4ul, 24ul}) {
    CaseAOptions opts;
    opts.config.embedding.dimensions = m;
    run("embedding_dims_M", std::to_string(m), opts);
  }
  for (std::size_t s : {2ul, 16ul}) {
    CaseAOptions opts;
    opts.config.stability.eigensubspace_dim = s;
    run("eigensubspace_s", std::to_string(s), opts);
  }
  {
    CaseAOptions opts;
    opts.config.use_dimension_reduction = false;
    run("dimension_reduction", "off", opts);
  }
  for (double fw : {0.0, 8.0}) {
    CaseAOptions opts;
    opts.config.feature_weight = fw;
    run("feature_weight", util::fmt(fw, 1), opts);
  }

  std::printf("\n%s\n", table.to_string().c_str());
  std::printf("(CirSTAG is GNN-agnostic: see bench_table2 for the GAT-based "
              "Case-B pipeline on the same core.)\n");
  return 0;
}
