// bench_serve — load generator for the serving layer (src/serve).
//
// Three modes over one deterministic request mix (fixed RNG seed; per 8
// requests: 6 single-pin Case-A /analyze, one /top-k, one /score-region):
//
//   --mode inproc   (default) drives a Service directly — no sockets, one
//                   scheduler worker, wave submission through pause()/
//                   resume() — so every gated counter is a pure function of
//                   the request mix: requests_served, registry_hits, and
//                   batches_formed (= ceil(analyzes-per-wave / max-batch)
//                   summed over waves). This is the row CI pins tightly.
//   --mode socket   drives a running daemon (cirstag_cli serve) over
//                   HTTP/1.1 with open-loop arrivals: request i is sent at
//                   start + i * --arrival-us regardless of completions,
//                   across --connections keep-alive connections. Counters
//                   are read back from the daemon's /metrics endpoint;
//                   requests_served / registry_hits stay deterministic,
//                   batches_formed depends on arrival timing (gated only by
//                   its worst-case upper bound: one batch per analyze).
//   --mode speedup  the acceptance comparison: per-request wall clock of a
//                   warm resident registry (the mix submitted as one wave,
//                   so compatible analyzes coalesce into one engine batch)
//                   vs a cold stateless caller that re-pays parse + GNN
//                   training + baseline capture for every request. Both
//                   sides use the same engine mode (--engine-mode, default
//                   fast) so the ratio isolates resident state, and the
//                   cold side alternates perturbed analyzes with baseline
//                   queries — under-weighting the expensive variant path
//                   relative to the 6/8 warm mix, which keeps the reported
//                   speedup conservative. Emits wall_* fields and the
//                   warm_speedup ratio; --require-speedup X asserts it.
//   --mode snapshot cold /load vs binary-snapshot restore (DESIGN.md §13):
//                   one full cold load, write_snapshot of the resident
//                   record, then /load {"snapshot": ...} under a second
//                   name. Gated counters eigen_runs_restore /
//                   train_epochs_restore are the deltas across the restore
//                   and must be exactly 0; the cold/restore wall ratio is
//                   emitted as wall_restore_speedup and asserted by
//                   --require-speedup X. A /top-k cross-check proves the
//                   restored resident answers byte-identically.
//
// --perf-json writes a google-benchmark-shaped report (name + counters per
// row) that tools/check_bench_regression.py consumes; wall_* fields ride
// along ungated.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "circuit/generator.hpp"
#include "circuit/io.hpp"
#include "core/query.hpp"
#include "core/sweep.hpp"
#include "gnn/timing_gnn.hpp"
#include "io/snapshot.hpp"
#include "linalg/rng.hpp"
#include "obs/clock.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/request.hpp"
#include "obs/window.hpp"
#include "serve/handlers.hpp"
#include "serve/http.hpp"
#include "serve/json.hpp"
#include "serve/socket.hpp"

namespace {

using namespace cirstag;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// -- tiny option parser (same "--key value" convention as cirstag_cli) ------

std::map<std::string, std::string> parse_options(int argc, char** argv) {
  std::map<std::string, std::string> opts;
  for (int i = 1; i < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) != 0 || i + 1 >= argc) {
      std::fprintf(stderr, "bench_serve: bad option '%s'\n", argv[i]);
      std::exit(2);
    }
    opts[argv[i] + 2] = argv[i + 1];
  }
  return opts;
}

std::size_t opt_size(const std::map<std::string, std::string>& o,
                     const std::string& k, std::size_t fallback) {
  const auto it = o.find(k);
  return it == o.end() ? fallback : std::stoull(it->second);
}

double opt_double(const std::map<std::string, std::string>& o,
                  const std::string& k, double fallback) {
  const auto it = o.find(k);
  return it == o.end() ? fallback : std::stod(it->second);
}

std::string opt_str(const std::map<std::string, std::string>& o,
                    const std::string& k, const std::string& fallback) {
  const auto it = o.find(k);
  return it == o.end() ? fallback : it->second;
}

// -- report emission --------------------------------------------------------

struct BenchRow {
  std::string name;
  double real_time_ms = 0.0;
  std::vector<std::pair<std::string, double>> counters;
};

void write_report(const std::string& path, const std::vector<BenchRow>& rows,
                  std::uint64_t seed) {
  std::string out = "{\n  \"context\": {\"executable\": \"bench_serve\", "
                    "\"seed\": " + std::to_string(seed) + "},\n"
                    "  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const BenchRow& row = rows[i];
    out += "    {\"name\": " + obs::json_quote(row.name) +
           ", \"run_type\": \"iteration\", \"iterations\": 1, "
           "\"time_unit\": \"ms\", \"real_time\": ";
    obs::append_json_number(out, row.real_time_ms);
    for (const auto& [key, value] : row.counters) {
      out += ", " + obs::json_quote(key) + ": ";
      obs::append_json_number(out, value);
    }
    out += i + 1 < rows.size() ? "},\n" : "}\n";
  }
  out += "  ]\n}\n";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_serve: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  std::printf("report written to %s\n", path.c_str());
}

// -- per-request latency timeline (--latency-csv) ---------------------------

struct LatencyRow {
  std::size_t index = 0;
  std::string endpoint;
  double enqueued_offset_us = 0.0;  ///< since the load phase started
  double latency_us = 0.0;
  int status = 0;
  std::string trace_id;
};

void write_latency_csv(const std::string& path,
                       const std::vector<LatencyRow>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_serve: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fputs("index,endpoint,enqueued_offset_us,latency_us,status,trace_id\n",
             f);
  for (const LatencyRow& r : rows)
    std::fprintf(f, "%zu,%s,%.1f,%.1f,%d,%s\n", r.index, r.endpoint.c_str(),
                 r.enqueued_offset_us, r.latency_us, r.status,
                 r.trace_id.c_str());
  std::fclose(f);
  std::printf("latency timeline written to %s (%zu rows)\n", path.c_str(),
              rows.size());
}

/// Nearest-rank percentile over the observed latencies (ms). Returns 0 when
/// empty — these ride in the report as informational wall_* fields only.
double percentile_ms(std::vector<double> latencies_us, double q) {
  if (latencies_us.empty()) return 0.0;
  std::sort(latencies_us.begin(), latencies_us.end());
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(latencies_us.size() - 1) + 0.5);
  return latencies_us[std::min(rank, latencies_us.size() - 1)] / 1e3;
}

void append_window_quantiles(BenchRow& row,
                             const std::vector<LatencyRow>& latencies) {
  std::vector<double> us;
  us.reserve(latencies.size());
  for (const LatencyRow& r : latencies) us.push_back(r.latency_us);
  row.counters.emplace_back("wall_window_p50_ms", percentile_ms(us, 0.50));
  row.counters.emplace_back("wall_window_p95_ms", percentile_ms(us, 0.95));
  row.counters.emplace_back("wall_window_p99_ms", percentile_ms(us, 0.99));
}

/// Arm the process-wide access-log / slow-exemplar sinks from the bench
/// flags (inproc modes; socket mode arms them on the daemon side instead).
void arm_request_log(const std::map<std::string, std::string>& opts) {
  auto& rlog = cirstag::obs::RequestLog::global();
  rlog.set_access_log_path(opt_str(opts, "access-log", ""));
  rlog.set_exemplar_path(opt_str(opts, "slow-trace", ""));
  rlog.set_slow_threshold_us(opt_double(opts, "slow-us", -1.0));
  rlog.configure_token_bucket(opt_double(opts, "slow-budget", 8.0), 0.1);
}

/// Validate a /metrics scrape: must be text exposition (TYPE lines) and must
/// already carry the rolling-window latency summary while traffic is in
/// flight. Optionally saved to --metrics-out for offline conformance checks.
void check_exposition_scrape(const std::string& text,
                             const std::string& metrics_out) {
  if (text.find("# TYPE ") == std::string::npos ||
      text.find("cirstag_serve_window_latency_ms") == std::string::npos) {
    std::fprintf(stderr,
                 "bench_serve: /metrics scrape is not valid exposition or "
                 "lacks windowed latency:\n%.512s\n",
                 text.c_str());
    std::exit(1);
  }
  if (metrics_out.empty()) return;
  std::FILE* f = std::fopen(metrics_out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_serve: cannot write %s\n",
                 metrics_out.c_str());
    std::exit(1);
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
}

/// Sum of the rolling-window per-endpoint request counters — the gated
/// windowed row. Deterministic because the run is far shorter than the
/// window: every scheduler-completed request is still in-window at readout.
double window_requests_total() {
  double total = 0.0;
  for (const auto& entry :
       cirstag::obs::WindowedRegistry::global().counter_snapshots()) {
    if (entry.name.rfind("serve.window.requests.", 0) == 0)
      total += static_cast<double>(entry.total);
  }
  return total;
}

// -- deterministic workload -------------------------------------------------

std::string netlist_text(std::size_t gates, std::uint64_t seed) {
  circuit::RandomCircuitSpec spec;
  spec.name = "bench_serve";
  spec.num_gates = gates;
  spec.num_inputs = std::max<std::size_t>(16, gates / 40);
  spec.num_outputs = std::max<std::size_t>(8, gates / 80);
  spec.seed = seed;
  static const circuit::CellLibrary lib = circuit::CellLibrary::standard();
  const circuit::Netlist nl = circuit::generate_random_logic(lib, spec);
  std::ostringstream out;
  circuit::write_netlist(out, nl);
  return out.str();
}

struct RequestSpec {
  std::string path;
  std::string body;
};

/// The fixed request mix: per 8 requests, 6 batchable single-pin analyzes,
/// one top-k, one score-region. Identical across modes (same RNG draws).
std::vector<RequestSpec> make_mix(const std::string& circuit,
                                  std::size_t requests, std::size_t num_pins,
                                  std::uint64_t seed) {
  std::vector<RequestSpec> mix;
  mix.reserve(requests);
  linalg::Rng rng(seed + 1000);
  const std::string quoted = obs::json_quote(circuit);
  for (std::size_t i = 0; i < requests; ++i) {
    const std::size_t kind = i % 8;
    if (kind <= 5) {
      mix.push_back({"/analyze",
                     "{\"circuit\": " + quoted + ", \"cap_scalings\": "
                     "[{\"pin\": " + std::to_string(rng.index(num_pins)) +
                     ", \"factor\": 5.0}]}"});
    } else if (kind == 6) {
      mix.push_back({"/top-k", "{\"circuit\": " + quoted + ", \"k\": 10}"});
    } else {
      std::string nodes;
      for (std::size_t n = 0; n < 8; ++n) {
        if (n != 0) nodes += ", ";
        nodes += std::to_string(rng.index(num_pins));
      }
      mix.push_back({"/score-region",
                     "{\"circuit\": " + quoted + ", \"nodes\": [" + nodes +
                     "]}"});
    }
  }
  return mix;
}

serve::HttpRequest make_request(const std::string& path,
                                const std::string& body) {
  serve::HttpRequest req;
  req.method = "POST";
  req.path = path;
  req.body = body;
  return req;
}

[[noreturn]] void die(const std::string& what, int status,
                      const std::string& body) {
  std::fprintf(stderr, "bench_serve: %s failed (HTTP %d): %s\n", what.c_str(),
               status, body.c_str());
  std::exit(1);
}

double counter(const std::string& name) {
  return static_cast<double>(
      obs::MetricsRegistry::global().counter_value(name));
}

// -- inproc mode ------------------------------------------------------------

int run_inproc(const std::map<std::string, std::string>& opts,
               std::vector<BenchRow>& rows) {
  const std::size_t gates = opt_size(opts, "gates", 300);
  const std::size_t requests = opt_size(opts, "requests", 48);
  const std::size_t wave = opt_size(opts, "wave", 16);
  const std::uint64_t seed = opt_size(opts, "seed", 1);

  serve::Scheduler::Options sopts;
  sopts.workers = 1;  // single worker => deterministic batch formation
  sopts.max_batch_size = opt_size(opts, "max-batch", 8);
  sopts.queue_capacity = std::max<std::size_t>(wave + 1, 256);
  serve::Service service(sopts);
  arm_request_log(opts);

  std::printf("inproc: loading %zu-gate circuit...\n", gates);
  const std::string load_body =
      "{\"name\": \"bench\", \"netlist\": " +
      obs::json_quote(netlist_text(gates, seed)) +
      ", \"epochs\": " + std::to_string(opt_size(opts, "epochs", 60)) +
      ", \"hidden\": 16, \"mode\": \"exact\"}";
  const serve::JobResponse loaded =
      serve::handle_request(service, make_request("/load", load_body));
  if (loaded.status != 200) die("/load", loaded.status, loaded.body);
  const serve::JsonValue load_info = serve::parse_json(loaded.body);
  const auto num_pins =
      static_cast<std::size_t>(load_info.number_or("pins", 0));

  const std::vector<RequestSpec> mix =
      make_mix("bench", requests, num_pins, seed);
  std::printf("inproc: %zu requests in waves of %zu (max batch %zu)...\n",
              requests, wave, sopts.max_batch_size);
  std::vector<LatencyRow> timeline;
  timeline.reserve(mix.size());
  bool scraped_midrun = false;
  const auto t0 = Clock::now();
  const double run_start_us = obs::process_now_us();
  for (std::size_t start = 0; start < mix.size(); start += wave) {
    // Wave submission: with the worker paused, batch formation depends only
    // on queue content — ceil(analyzes / max_batch) batches per wave.
    service.scheduler.pause();
    std::vector<std::future<serve::JobResponse>> futures;
    std::vector<std::shared_ptr<obs::RequestContext>> traces;
    const std::size_t end = std::min(mix.size(), start + wave);
    for (std::size_t i = start; i < end; ++i) {
      serve::Dispatch d = serve::dispatch_request(
          service, make_request(mix[i].path, mix[i].body));
      if (d.immediate) die(mix[i].path, d.response.status, d.response.body);
      futures.push_back(std::move(d.future));
      traces.push_back(std::move(d.trace));
    }
    service.scheduler.resume();
    for (std::size_t i = 0; i < futures.size(); ++i) {
      const serve::JobResponse response = futures[i].get();
      if (response.status != 200)
        die(mix[start + i].path, response.status, response.body);
      // Server-side timing from the finished trace: what the access log and
      // the windowed histograms saw, not the client's observation skew.
      const obs::RequestContext& trace = *traces[i];
      timeline.push_back({start + i, trace.endpoint(),
                          trace.start_us() - run_start_us, trace.total_us(),
                          trace.status(), trace.id_hex()});
    }
    if (!scraped_midrun) {
      // Mid-run scrape: telemetry must be servable *while* traffic is in
      // flight (later waves are still unsubmitted), and the windowed
      // summary must already cover the first wave.
      scraped_midrun = true;
      const serve::JobResponse metrics = serve::handle_request(
          service, [] {
            serve::HttpRequest r;
            r.method = "GET";
            r.path = "/metrics";
            return r;
          }());
      if (metrics.status != 200) die("/metrics", metrics.status, metrics.body);
      check_exposition_scrape(metrics.body, opt_str(opts, "metrics-out", ""));
      const serve::JobResponse stats = serve::handle_request(
          service, [] {
            serve::HttpRequest r;
            r.method = "GET";
            r.path = "/stats";
            return r;
          }());
      if (stats.status != 200) die("/stats", stats.status, stats.body);
      const serve::JsonValue stats_doc = serve::parse_json(stats.body);
      if (stats_doc.find("window") == nullptr)
        die("/stats", 500, "no 'window' object in " + stats.body);
    }
  }
  const double wall = seconds_since(t0);
  service.scheduler.stop();

  BenchRow row;
  row.name = "BM_ServeInproc/" + std::to_string(gates) + "/" +
             std::to_string(requests);
  row.real_time_ms = wall * 1e3;
  row.counters = {
      {"requests_served", counter("serve.requests_served")},
      {"batches_formed", counter("serve.scheduler.batches_formed")},
      {"batched_requests", counter("serve.scheduler.batched_requests")},
      {"registry_hits", counter("serve.registry.hits")},
      {"registry_misses", counter("serve.registry.misses")},
      {"rejected_429", counter("serve.rejected_429")},
      {"expired_504", counter("serve.expired_504")},
      {"window_requests", window_requests_total()},
      {"wall_total_seconds", wall},
      {"wall_per_request_seconds", wall / static_cast<double>(requests)},
      {"wall_ms", wall * 1e3},
  };
  append_window_quantiles(row, timeline);
  rows.push_back(row);
  const std::string latency_csv = opt_str(opts, "latency-csv", "");
  if (!latency_csv.empty()) write_latency_csv(latency_csv, timeline);
  std::printf("inproc: served %.0f requests, %.0f batches, %.0f registry "
              "hits in %.2fs\n",
              row.counters[0].second, row.counters[1].second,
              row.counters[3].second, wall);
  return 0;
}

// -- socket mode ------------------------------------------------------------

serve::HttpResponse roundtrip_or_die(const serve::TcpSocket& socket,
                                     const std::string& method,
                                     const std::string& path,
                                     const std::string& body) {
  const auto response = serve::http_roundtrip(socket, method, path, body);
  if (!response.has_value()) {
    std::fprintf(stderr, "bench_serve: transport failure on %s\n",
                 path.c_str());
    std::exit(1);
  }
  return *response;
}

double metrics_counter(const serve::JsonValue& metrics,
                       const std::string& name) {
  const serve::JsonValue* counters = metrics.find("counters");
  if (counters == nullptr || !counters->is_object()) return 0.0;
  return counters->number_or(name, 0.0);
}

int run_socket(const std::map<std::string, std::string>& opts,
               std::vector<BenchRow>& rows) {
  const auto port =
      static_cast<std::uint16_t>(opt_size(opts, "port", 8437));
  const std::size_t requests = opt_size(opts, "requests", 48);
  const std::size_t connections = opt_size(opts, "connections", 4);
  const std::uint64_t seed = opt_size(opts, "seed", 1);
  const auto arrival_us =
      static_cast<long>(opt_size(opts, "arrival-us", 2000));
  const std::string circuit = opt_str(opts, "circuit", "preload");

  serve::TcpSocket probe = serve::tcp_connect(port);
  if (!probe.valid()) {
    std::fprintf(stderr, "bench_serve: cannot connect to 127.0.0.1:%u\n",
                 static_cast<unsigned>(port));
    return 1;
  }
  const serve::HttpResponse health =
      roundtrip_or_die(probe, "GET", "/health", "");
  if (health.status != 200) die("/health", health.status, health.body);
  const serve::JsonValue health_doc = serve::parse_json(health.body);
  std::size_t num_pins = 0, circuit_gates = 0;
  if (const serve::JsonValue* circuits = health_doc.find("circuits")) {
    for (const serve::JsonValue& info : circuits->as_array()) {
      if (info.string_or("name", "") == circuit) {
        num_pins = static_cast<std::size_t>(info.number_or("pins", 0));
        circuit_gates = static_cast<std::size_t>(info.number_or("gates", 0));
      }
    }
  }
  if (num_pins == 0) {
    std::fprintf(stderr,
                 "bench_serve: circuit '%s' is not loaded on the daemon "
                 "(start it with --preload, or /load it first)\n",
                 circuit.c_str());
    return 1;
  }

  const std::vector<RequestSpec> mix =
      make_mix(circuit, requests, num_pins, seed);
  std::printf("socket: %zu requests over %zu connections, one every %ldus "
              "(open loop)...\n",
              requests, connections, arrival_us);

  // Open-loop arrival: request i is due at start + i*gap, whether or not
  // earlier requests finished. Each connection owns the requests with
  // i % connections == its index, so per-connection order is stable (and
  // each timeline slot is written by exactly one worker — no locking).
  const auto start = Clock::now() + std::chrono::milliseconds(50);
  std::vector<std::thread> workers;
  std::vector<int> failures(connections, 0);
  std::vector<LatencyRow> timeline(mix.size());
  for (std::size_t c = 0; c < connections; ++c) {
    workers.emplace_back([&, c] {
      serve::TcpSocket socket = serve::tcp_connect(port);
      if (!socket.valid()) {
        failures[c] = -1;
        return;
      }
      for (std::size_t i = c; i < mix.size(); i += connections) {
        std::this_thread::sleep_until(
            start + std::chrono::microseconds(arrival_us *
                                              static_cast<long>(i)));
        const auto sent = Clock::now();
        const auto response = serve::http_roundtrip(socket, "POST",
                                                    mix[i].path, mix[i].body);
        if (!response.has_value() || response->status != 200) ++failures[c];
        LatencyRow& row = timeline[i];
        row.index = i;
        row.endpoint = mix[i].path.substr(1);
        row.enqueued_offset_us = std::chrono::duration<double, std::micro>(
                                     sent - start).count();
        row.latency_us = std::chrono::duration<double, std::micro>(
                             Clock::now() - sent).count();
        if (response.has_value()) {
          row.status = response->status;
          const auto tid = response->headers.find("x-trace-id");
          if (tid != response->headers.end()) row.trace_id = tid->second;
        }
      }
    });
  }

  // Mid-run scrape from a separate connection while the workers are still
  // driving load: the daemon must serve exposition under traffic. (The
  // windowed families appear with the first *completed* request, which the
  // open loop cannot guarantee by mid-run, so those are asserted on the
  // final scrape below.)
  std::this_thread::sleep_until(
      start + std::chrono::microseconds(arrival_us *
                                        static_cast<long>(requests / 2)));
  const serve::HttpResponse midrun =
      roundtrip_or_die(probe, "GET", "/metrics", "");
  if (midrun.status != 200) die("/metrics", midrun.status, midrun.body);
  if (midrun.body.find("# TYPE ") == std::string::npos)
    die("/metrics", 500, "mid-run scrape is not text exposition");

  for (std::thread& t : workers) t.join();
  const double wall = seconds_since(start);
  const serve::HttpResponse final_scrape =
      roundtrip_or_die(probe, "GET", "/metrics", "");
  if (final_scrape.status != 200)
    die("/metrics", final_scrape.status, final_scrape.body);
  check_exposition_scrape(final_scrape.body, opt_str(opts, "metrics-out", ""));
  int failed = 0;
  for (const int f : failures) {
    if (f < 0) {
      std::fprintf(stderr, "bench_serve: a connection could not be opened\n");
      return 1;
    }
    failed += f;
  }
  if (failed != 0) {
    std::fprintf(stderr, "bench_serve: %d request(s) failed\n", failed);
    return 1;
  }

  // Counter readback moved from /metrics (now text exposition) to /stats,
  // its JSON twin; the windowed row sums the per-endpoint in-window counts.
  const serve::HttpResponse stats =
      roundtrip_or_die(probe, "GET", "/stats", "");
  if (stats.status != 200) die("/stats", stats.status, stats.body);
  const serve::JsonValue stats_doc = serve::parse_json(stats.body);
  double window_requests = 0.0;
  if (const serve::JsonValue* window = stats_doc.find("window")) {
    if (const serve::JsonValue* endpoints = window->find("endpoints")) {
      for (const auto& [endpoint, entry] : endpoints->members()) {
        (void)endpoint;
        window_requests += entry.number_or("count", 0.0);
      }
    }
  }

  BenchRow row;
  row.name = "BM_ServeSocket/" + std::to_string(circuit_gates) + "/" +
             std::to_string(requests);
  row.real_time_ms = wall * 1e3;
  row.counters = {
      {"requests_served", metrics_counter(stats_doc,
                                          "serve.requests_served")},
      {"batches_formed",
       metrics_counter(stats_doc, "serve.scheduler.batches_formed")},
      {"registry_hits", metrics_counter(stats_doc, "serve.registry.hits")},
      {"registry_misses",
       metrics_counter(stats_doc, "serve.registry.misses")},
      {"rejected_429", metrics_counter(stats_doc, "serve.rejected_429")},
      {"expired_504", metrics_counter(stats_doc, "serve.expired_504")},
      {"window_requests", window_requests},
      {"wall_total_seconds", wall},
      {"wall_per_request_seconds", wall / static_cast<double>(requests)},
      {"wall_ms", wall * 1e3},
  };
  append_window_quantiles(row, timeline);
  rows.push_back(row);
  const std::string latency_csv = opt_str(opts, "latency-csv", "");
  if (!latency_csv.empty()) write_latency_csv(latency_csv, timeline);
  std::printf("socket: daemon served %.0f requests (%.0f batches, %.0f "
              "registry hits) in %.2fs\n",
              row.counters[0].second, row.counters[1].second,
              row.counters[2].second, wall);
  return 0;
}

// -- speedup mode -----------------------------------------------------------

int run_speedup(const std::map<std::string, std::string>& opts,
                std::vector<BenchRow>& rows) {
  const std::size_t gates = opt_size(opts, "gates", 1500);
  const std::size_t warm_requests = opt_size(opts, "warm-requests", 8);
  const std::size_t cold_requests = opt_size(opts, "cold-requests", 2);
  const std::size_t epochs = opt_size(opts, "epochs", 120);
  const std::uint64_t seed = opt_size(opts, "seed", 1);
  const double required = opt_double(opts, "require-speedup", 0.0);
  const bool engine_exact = opt_str(opts, "engine-mode", "fast") == "exact";

  const std::string text = netlist_text(gates, seed);
  std::printf("speedup: %zu gates, %zu warm vs %zu cold requests...\n",
              gates, warm_requests, cold_requests);

  serve::Scheduler::Options sopts;
  sopts.workers = 1;
  sopts.max_batch_size = std::max<std::size_t>(1, warm_requests);
  serve::Service service(sopts);
  const std::string load_body =
      "{\"name\": \"bench\", \"netlist\": " + obs::json_quote(text) +
      ", \"epochs\": " + std::to_string(epochs) + ", \"hidden\": 16, " +
      "\"mode\": " + (engine_exact ? "\"exact\"" : "\"fast\"") + "}";
  const auto t_load = Clock::now();
  const serve::JobResponse loaded =
      serve::handle_request(service, make_request("/load", load_body));
  if (loaded.status != 200) die("/load", loaded.status, loaded.body);
  const double load_seconds = seconds_since(t_load);
  const auto num_pins = static_cast<std::size_t>(
      serve::parse_json(loaded.body).number_or("pins", 0));

  // Warm: the resident engine answers the requests as the daemon would
  // under concurrent load — submitted together so the scheduler coalesces
  // the compatible analyzes into one batched engine run (queries ride along
  // as immediate const reads of the resident baseline).
  const std::vector<RequestSpec> mix =
      make_mix("bench", warm_requests, num_pins, seed);
  const auto t_warm = Clock::now();
  service.scheduler.pause();
  std::vector<std::future<serve::JobResponse>> futures;
  futures.reserve(mix.size());
  for (const RequestSpec& request : mix) {
    serve::Dispatch d = serve::dispatch_request(
        service, make_request(request.path, request.body));
    if (d.immediate) die(request.path, d.response.status, d.response.body);
    futures.push_back(std::move(d.future));
  }
  service.scheduler.resume();
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const serve::JobResponse response = futures[i].get();
    if (response.status != 200)
      die(mix[i].path, response.status, response.body);
  }
  const double warm_seconds = seconds_since(t_warm);
  service.scheduler.stop();

  // Cold: what a stateless caller pays per request — parse the netlist,
  // train the surrogate, capture the baseline, then answer the request.
  // Even iterations analyze one perturbed variant, odd iterations answer a
  // baseline query (top-k), mirroring the warm mix's two request classes.
  linalg::Rng rng(seed + 2000);
  const auto t_cold = Clock::now();
  for (std::size_t i = 0; i < cold_requests; ++i) {
    std::istringstream in(text);
    static const circuit::CellLibrary lib = circuit::CellLibrary::standard();
    const circuit::Netlist nl = circuit::read_netlist(in, lib);
    gnn::TimingGnnOptions gopts;
    gopts.epochs = epochs;
    gopts.hidden_dim = 16;
    gnn::TimingGnn model(nl, gopts);
    (void)model.train();
    core::SweepOptions cold_sopts;
    cold_sopts.exact = engine_exact;
    core::SweepEngine engine(nl, model, cold_sopts);
    if (i % 2 == 0) {
      core::SweepVariant variant;
      variant.cap_scalings.push_back(
          {static_cast<circuit::PinId>(rng.index(nl.num_pins())), 5.0});
      const std::vector<core::SweepVariant> variants{variant};
      const auto results = engine.run(variants);
      if (results.size() != 1) die("cold analyze", 500, "no result");
    } else {
      const auto top = core::top_k_nodes(engine.baseline(), 10);
      if (top.empty()) die("cold top-k", 500, "no result");
    }
  }
  const double cold_seconds = seconds_since(t_cold);

  const double warm_avg = warm_seconds / static_cast<double>(warm_requests);
  const double cold_avg = cold_seconds / static_cast<double>(cold_requests);
  const double speedup = warm_avg > 0 ? cold_avg / warm_avg : 0.0;

  BenchRow row;
  row.name = "BM_ServeSpeedup/" + std::to_string(gates);
  row.real_time_ms = (warm_seconds + cold_seconds) * 1e3;
  row.counters = {
      {"warm_speedup", speedup},
      {"wall_load_seconds", load_seconds},
      {"wall_warm_request_seconds", warm_avg},
      {"wall_cold_request_seconds", cold_avg},
  };
  rows.push_back(row);
  std::printf("speedup: load %.2fs once; warm %.3fs/request vs cold "
              "%.2fs/request => %.1fx\n",
              load_seconds, warm_avg, cold_avg, speedup);
  if (required > 0.0 && speedup < required) {
    std::fprintf(stderr,
                 "bench_serve: warm speedup %.1fx below required %.1fx\n",
                 speedup, required);
    return 1;
  }
  return 0;
}

// -- snapshot mode ----------------------------------------------------------

/// Cold-vs-restore acceptance row (DESIGN.md §13): pay one full cold /load
/// (parse + GNN training + baseline eigensolves), write the resident record
/// to a binary snapshot, then restore it under a second name via
/// /load {"snapshot": ...}. The gated proof is in the counters —
/// eigen_runs_restore and train_epochs_restore are the *deltas across the
/// restore* and must be exactly 0 (the BENCH_baseline rows pin them with the
/// exact-zero gate) — while the wall-clock advantage rides along as wall_*
/// fields and is optionally asserted with --require-speedup X. A /top-k
/// cross-check proves the restored circuit answers byte-identically to the
/// cold-loaded one.
int run_snapshot(const std::map<std::string, std::string>& opts,
                 std::vector<BenchRow>& rows) {
  const std::size_t gates = opt_size(opts, "gates", 1500);
  const std::size_t epochs = opt_size(opts, "epochs", 120);
  const std::uint64_t seed = opt_size(opts, "seed", 1);
  const double required = opt_double(opts, "require-speedup", 0.0);
  const std::string snap_path =
      opt_str(opts, "snapshot-path", "bench_serve_snapshot.bin");
  const bool engine_exact = opt_str(opts, "engine-mode", "fast") == "exact";

  serve::Scheduler::Options sopts;
  sopts.workers = 1;
  serve::Service service(sopts);

  const std::string text = netlist_text(gates, seed);
  std::printf("snapshot: cold /load of %zu gates (%s mode)...\n", gates,
              engine_exact ? "exact" : "fast");
  const std::string load_body =
      "{\"name\": \"bench\", \"netlist\": " + obs::json_quote(text) +
      ", \"epochs\": " + std::to_string(epochs) + ", \"hidden\": 16, " +
      "\"mode\": " + (engine_exact ? "\"exact\"" : "\"fast\"") + "}";
  const auto t_cold = Clock::now();
  const serve::JobResponse loaded =
      serve::handle_request(service, make_request("/load", load_body));
  if (loaded.status != 200) die("/load", loaded.status, loaded.body);
  const double cold_seconds = seconds_since(t_cold);

  const std::shared_ptr<serve::CircuitRecord> record =
      service.registry.lookup("bench");
  if (record == nullptr) die("lookup", 500, "'bench' not resident");
  io::SnapshotMeta meta;
  meta.exact = record->options.exact;
  meta.train_r2 = record->train_r2;
  const auto t_write = Clock::now();
  io::write_snapshot(snap_path, *record->model, *record->engine, meta);
  const double write_seconds = seconds_since(t_write);
  std::printf("snapshot: wrote %s in %.2fs\n", snap_path.c_str(),
              write_seconds);

  // The restore must re-solve and re-train nothing: snapshot the global
  // counters around it and gate the deltas at exactly zero.
  const double eigen_before = counter("eigen.runs");
  const double train_before = counter("gnn.train_epochs");
  const std::string restore_body =
      "{\"name\": \"restored\", \"snapshot\": " + obs::json_quote(snap_path) +
      "}";
  const auto t_restore = Clock::now();
  const serve::JobResponse restored =
      serve::handle_request(service, make_request("/load", restore_body));
  if (restored.status != 200) die("/load snapshot", restored.status,
                                  restored.body);
  const double restore_seconds = seconds_since(t_restore);
  const double eigen_delta = counter("eigen.runs") - eigen_before;
  const double train_delta = counter("gnn.train_epochs") - train_before;

  // Cross-check: both residents must give byte-identical /top-k answers
  // (the bodies differ only in the echoed circuit name).
  const auto top_k_nodes_json = [&](const char* name) {
    const std::string body =
        std::string("{\"circuit\": \"") + name + "\", \"k\": 10}";
    const serve::JobResponse response =
        serve::handle_request(service, make_request("/top-k", body));
    if (response.status != 200) die("/top-k", response.status, response.body);
    const std::size_t at = response.body.find("\"nodes\"");
    if (at == std::string::npos) die("/top-k", 500, "no 'nodes' in body");
    return response.body.substr(at);
  };
  if (top_k_nodes_json("bench") != top_k_nodes_json("restored"))
    die("/top-k cross-check", 500,
        "restored circuit disagrees with the cold-loaded one");

  const double speedup =
      restore_seconds > 0.0 ? cold_seconds / restore_seconds : 0.0;
  BenchRow row;
  row.name = "BM_SnapshotRestore/" + std::to_string(gates);
  row.real_time_ms = restore_seconds * 1e3;
  row.counters = {
      {"eigen_runs_restore", eigen_delta},
      {"train_epochs_restore", train_delta},
      {"snapshot_reads", counter("snapshot.reads")},
      {"registry_snapshot_loads", counter("serve.registry.snapshot_loads")},
      {"wall_cold_load_seconds", cold_seconds},
      {"wall_snapshot_write_seconds", write_seconds},
      {"wall_restore_seconds", restore_seconds},
      {"wall_restore_speedup", speedup},
      {"wall_ms", restore_seconds * 1e3},
  };
  rows.push_back(row);
  std::printf("snapshot: cold load %.2fs vs restore %.3fs => %.1fx "
              "(restore ran %.0f eigensolves, %.0f training epochs)\n",
              cold_seconds, restore_seconds, speedup, eigen_delta,
              train_delta);
  if (eigen_delta != 0.0 || train_delta != 0.0) {
    std::fprintf(stderr,
                 "bench_serve: snapshot restore ran %.0f eigensolver runs "
                 "and %.0f training epochs — the warm path is broken\n",
                 eigen_delta, train_delta);
    return 1;
  }
  if (required > 0.0 && speedup < required) {
    std::fprintf(stderr,
                 "bench_serve: restore speedup %.1fx below required %.1fx\n",
                 speedup, required);
    return 1;
  }
  return 0;
}

// -- region mode ------------------------------------------------------------

/// Localized-query acceptance row: load once, then answer R cone-expanded
/// /score-region requests. The gated proof is in the counters — eigen_runs
/// stays at its load-time value (no full-chip solve per query) while every
/// request takes the cone path.
int run_region(const std::map<std::string, std::string>& opts,
               std::vector<BenchRow>& rows) {
  const std::size_t gates = opt_size(opts, "gates", 300);
  const std::size_t requests = opt_size(opts, "requests", 32);
  const std::size_t hops = opt_size(opts, "hops", 2);
  const std::uint64_t seed = opt_size(opts, "seed", 1);

  serve::Scheduler::Options sopts;
  sopts.workers = 1;
  serve::Service service(sopts);

  std::printf("region: loading %zu-gate circuit...\n", gates);
  const std::string load_body =
      "{\"name\": \"bench\", \"netlist\": " +
      obs::json_quote(netlist_text(gates, seed)) +
      ", \"epochs\": " + std::to_string(opt_size(opts, "epochs", 60)) +
      ", \"hidden\": 16, \"mode\": \"exact\"}";
  const serve::JobResponse loaded =
      serve::handle_request(service, make_request("/load", load_body));
  if (loaded.status != 200) die("/load", loaded.status, loaded.body);
  const serve::JsonValue load_info = serve::parse_json(loaded.body);
  const auto num_pins =
      static_cast<std::size_t>(load_info.number_or("pins", 0));
  const double eigen_runs_at_load = counter("eigen.runs");

  std::printf("region: %zu cone queries (%zu hops)...\n", requests, hops);
  linalg::Rng rng(seed + 2000);
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < requests; ++i) {
    const std::string body =
        "{\"circuit\": \"bench\", \"hops\": " + std::to_string(hops) +
        ", \"nodes\": [" + std::to_string(rng.index(num_pins)) + "]}";
    const serve::JobResponse response =
        serve::handle_request(service, make_request("/score-region", body));
    if (response.status != 200)
      die("/score-region", response.status, response.body);
  }
  const double wall = seconds_since(t0);
  service.scheduler.stop();

  const double eigen_runs = counter("eigen.runs");
  BenchRow row;
  row.name = "BM_ServeRegion/" + std::to_string(gates) + "/" +
             std::to_string(requests);
  row.real_time_ms = wall * 1e3;
  row.counters = {
      {"requests_served", counter("serve.requests_served")},
      {"region_cone_requests", counter("serve.region_cone_requests")},
      {"eigen_runs", eigen_runs},
      {"registry_hits", counter("serve.registry.hits")},
      {"wall_total_seconds", wall},
      {"wall_per_request_seconds", wall / static_cast<double>(requests)},
      {"wall_ms", wall * 1e3},
  };
  rows.push_back(row);
  std::printf("region: %zu queries in %.3fs (%.2f ms each); eigen runs "
              "%.0f -> %.0f (no per-query solves)\n",
              requests, wall, wall * 1e3 / static_cast<double>(requests),
              eigen_runs_at_load, eigen_runs);
  if (eigen_runs != eigen_runs_at_load) {
    std::fprintf(stderr,
                 "bench_serve: region queries triggered %.0f eigensolver "
                 "runs — localized path is broken\n",
                 eigen_runs - eigen_runs_at_load);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = parse_options(argc, argv);
  const std::string mode = opt_str(opts, "mode", "inproc");
  std::vector<BenchRow> rows;
  int rc = 2;
  if (mode == "inproc") rc = run_inproc(opts, rows);
  else if (mode == "socket") rc = run_socket(opts, rows);
  else if (mode == "speedup") rc = run_speedup(opts, rows);
  else if (mode == "snapshot") rc = run_snapshot(opts, rows);
  else if (mode == "region") rc = run_region(opts, rows);
  else std::fprintf(stderr, "bench_serve: unknown mode '%s'\n", mode.c_str());
  const std::string report = opt_str(opts, "perf-json", "");
  if (rc == 0 && !report.empty())
    write_report(report, rows, opt_size(opts, "seed", 1));
  return rc;
}
