// Reproduces Fig. 4: the ablation WITHOUT graph dimensionality reduction.
// The raw circuit graph is used directly as the input manifold
// (CirStagConfig::use_dimension_reduction = false); the paper observes the
// resulting instability ranking becomes "more random", i.e. the separation
// between the unstable and stable cohorts largely collapses.
//
// We run the same protocol as Fig. 3 twice (with / without reduction) and
// report both distributions plus the separation ratio, which should drop
// sharply in the ablated configuration.

#include <cstdio>

#include "common.hpp"
#include "util/ascii.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"

namespace {

struct SeriesStats {
  std::vector<double> unstable;
  std::vector<double> stable;
  [[nodiscard]] double separation() const {
    using cirstag::util::mean;
    return mean(unstable) / std::max(mean(stable), 1e-9);
  }
};

}  // namespace

int main() {
  using namespace cirstag;
  using namespace cirstag::bench;

  const circuit::CellLibrary lib = circuit::CellLibrary::standard();
  auto suite = circuit::benchmark_suite();
  suite.resize(3);

  util::CsvWriter csv(
      {"design", "dimension_reduction", "cohort", "relative_change"});

  std::printf("=== Fig. 4 reproduction: ablation of the spectral dimension "
              "reduction (top 10%% pins, scale 10x) ===\n\n");

  SeriesStats with_dr, without_dr;
  for (const auto& spec : suite) {
    for (bool use_dr : {true, false}) {
      CaseAOptions opts;
      opts.config.use_dimension_reduction = use_dr;
      CaseA c = prepare_case_a(lib, spec, opts);
      const auto uns = po_changes(c, unstable_pins(c, 0.10), 10.0);
      const auto stb = po_changes(c, stable_pins(c, 0.10), 10.0);
      SeriesStats& dst = use_dr ? with_dr : without_dr;
      for (double v : uns) {
        dst.unstable.push_back(v);
        csv.add_row({c.name, use_dr ? "yes" : "no", "unstable",
                     util::fmt(v, 6)});
      }
      for (double v : stb) {
        dst.stable.push_back(v);
        csv.add_row({c.name, use_dr ? "yes" : "no", "stable",
                     util::fmt(v, 6)});
      }
      std::printf("[%s] %s reduction: unstable mean %.4f | stable mean %.4f\n",
                  spec.name.c_str(), use_dr ? "WITH   " : "WITHOUT",
                  util::mean(uns), util::mean(stb));
    }
  }

  const double hi = std::max(
      {1.25 * util::quantile(with_dr.unstable, 0.95),
       1.25 * util::quantile(without_dr.unstable, 0.95), 1e-3});
  const auto h_u = util::make_histogram(without_dr.unstable, 0.0, hi, 16);
  const auto h_s = util::make_histogram(without_dr.stable, 0.0, hi, 16);
  std::printf("\n%s\n",
              util::render_histogram_pair(
                  h_u, "unstable", h_s, "stable",
                  "Fig. 4: distribution WITHOUT dimension reduction").c_str());

  std::printf("separation (unstable mean / stable mean):\n");
  std::printf("  with dimension reduction    : %8.2fx\n", with_dr.separation());
  std::printf("  without dimension reduction : %8.2fx\n",
              without_dr.separation());
  std::printf("  (paper's Fig. 4: the no-reduction ranking becomes 'more "
              "random'. In our substrate the effect is design-dependent — "
              "see bench_ablation, where the no-reduction separation "
              "collapses on the smallest suite design, and EXPERIMENTS.md "
              "for the honest aggregate.)\n");
  csv.save("fig4.csv");
  std::printf("series written to fig4.csv\n");
  return 0;
}
