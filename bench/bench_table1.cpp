// Reproduces Table I: "Circuit stability analysis by CirSTAG with a
// GNN-based pre-routing timing analysis tool".
//
// For each of the nine benchmarks, the capacitance feature of the top /
// bottom k% pins (by CirSTAG stability score, primary outputs excluded) is
// scaled by 5x or 10x, and the mean/max relative change of the GNN's
// predicted primary-output arrival times is reported as "unstable/stable".
//
// Paper shape to reproduce: unstable >> stable in every cell; doubling the
// scale factor roughly doubles the unstable change; growing the perturbed
// fraction from 5% to 15% does NOT grow it proportionally (the most
// unstable nodes dominate).

#include <cstdio>

#include "common.hpp"
#include "util/ascii.hpp"
#include "util/csv.hpp"

int main() {
  using namespace cirstag;
  using namespace cirstag::bench;

  const circuit::CellLibrary lib = circuit::CellLibrary::standard();
  const auto suite = circuit::benchmark_suite();

  const double scales[] = {5.0, 10.0};
  const double fractions[] = {0.05, 0.10, 0.15};

  util::AsciiTable table({"design", "R2",
                          "5x p5% mean", "5x p5% max",
                          "5x p10% mean", "5x p10% max",
                          "5x p15% mean", "5x p15% max",
                          "10x p5% mean", "10x p5% max",
                          "10x p10% mean", "10x p10% max",
                          "10x p15% mean", "10x p15% max"});
  util::CsvWriter csv({"design", "scale", "fraction", "cohort", "mean", "max"});

  std::printf("=== Table I reproduction: relative change of predicted PO "
              "arrival times (unstable/stable) ===\n\n");

  for (const auto& spec : suite) {
    CaseA c = prepare_case_a(lib, spec);
    std::printf("[%s] pins=%zu edges=%zu GNN R2=%.4f  (top DMD eig %.3f)\n",
                c.name.c_str(), c.netlist.num_pins(),
                c.report.manifold_x.num_edges(), c.r2,
                c.report.eigenvalues.empty() ? 0.0 : c.report.eigenvalues[0]);

    std::vector<std::string> row{c.name, util::fmt(c.r2, 4)};
    for (double scale : scales) {
      for (double frac : fractions) {
        const auto uns = unstable_pins(c, frac);
        const auto stb = stable_pins(c, frac);
        const ChangeStats cu = po_change(c, uns, scale);
        const ChangeStats cs = po_change(c, stb, scale);
        row.push_back(cell(cu.mean, cs.mean));
        row.push_back(cell(cu.max, cs.max));
        csv.add_row({c.name, util::fmt(scale, 0), util::fmt(frac, 2),
                     "unstable", util::fmt(cu.mean, 6), util::fmt(cu.max, 6)});
        csv.add_row({c.name, util::fmt(scale, 0), util::fmt(frac, 2),
                     "stable", util::fmt(cs.mean, 6), util::fmt(cs.max, 6)});
      }
    }
    table.add_row(std::move(row));
  }

  std::printf("\n%s\n", table.to_string().c_str());
  csv.save("table1.csv");
  std::printf("series written to table1.csv\n");
  return 0;
}
