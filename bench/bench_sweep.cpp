// Sweep-engine benchmarks (google-benchmark): wall-clock of a Table-I-style
// capacitance sweep through three harnesses over the same variant list —
//
//   BM_SweepNaive  per-variant full pipeline (copy netlist, full STA, full
//                  GNN forward, CirStag::analyze from scratch),
//   BM_SweepExact  SweepEngine in exact mode (byte-identical reports,
//                  bit-identical reuse only),
//   BM_SweepFast   SweepEngine in fast mode (kNN delta, tree-preconditioned
//                  relaxed-tolerance Phase 3, adaptive Ritz early stop).
//
// Each timed iteration includes the engine's baseline capture, so the
// headline comparison is end-to-end: naive N-variant loop vs engine
// construction + run. The `subspace_sweeps` counter is the summed Phase-3
// sweep count across variants — a pure function of the inputs (deterministic
// at any thread count), which is what BENCH_baseline.json locks into the CI
// regression gate: fast mode's adaptive stop must keep cutting sweeps
// relative to the exact arm's fixed budget.
//
// The acceptance configuration is {1500 gates, 64 variants} (fast ≥ 3x
// naive at equal thread count); CI smoke runs only {300, 6}.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "circuit/generator.hpp"
#include "circuit/sta.hpp"
#include "circuit/views.hpp"
#include "common.hpp"
#include "obs/log.hpp"
#include "core/cirstag.hpp"
#include "core/sweep.hpp"
#include "gnn/timing_gnn.hpp"
#include "linalg/rng.hpp"

namespace {

using namespace cirstag;

/// One trained benchmark circuit, cached per size: GNN training is identical
/// setup cost for every harness, so it stays outside the timed loops.
struct Fixture {
  circuit::Netlist netlist;
  std::unique_ptr<gnn::TimingGnn> model;
};

Fixture& fixture(std::size_t gates) {
  static std::map<std::size_t, std::unique_ptr<Fixture>> cache;
  auto& slot = cache[gates];
  if (!slot) {
    circuit::RandomCircuitSpec spec;
    spec.num_gates = gates;
    spec.num_inputs = std::max<std::size_t>(16, gates / 40);
    spec.num_outputs = std::max<std::size_t>(8, gates / 80);
    spec.seed = 7;
    static const circuit::CellLibrary lib = circuit::CellLibrary::standard();
    // The netlist must reach its final (heap) address before the model
    // captures a pointer to it.
    slot = std::make_unique<Fixture>(
        Fixture{circuit::generate_random_logic(lib, spec), nullptr});
    gnn::TimingGnnOptions gopts;
    gopts.epochs = gates >= 1000 ? 120 : 60;  // quality is irrelevant here
    gopts.hidden_dim = 16;
    slot->model = std::make_unique<gnn::TimingGnn>(slot->netlist, gopts);
    (void)slot->model->train();
  }
  return *slot;
}

/// Deterministic Table-I-style variant list: each variant scales the
/// capacitance of a small random pin cohort by 5x.
std::vector<core::SweepVariant> make_variants(const circuit::Netlist& nl,
                                              std::size_t count) {
  constexpr std::size_t kPinsPerVariant = 4;
  constexpr double kFactor = 5.0;
  std::vector<core::SweepVariant> variants(count);
  linalg::Rng rng(1000);
  for (auto& v : variants) {
    for (std::size_t p = 0; p < kPinsPerVariant; ++p)
      v.cap_scalings.push_back(
          {static_cast<circuit::PinId>(rng.index(nl.num_pins())), kFactor});
  }
  return variants;
}

/// The reference harness the engine is measured against: everything from
/// scratch per variant, exactly what a caller without the engine would write.
void BM_SweepNaive(benchmark::State& state) {
  Fixture& f = fixture(static_cast<std::size_t>(state.range(0)));
  const auto variants =
      make_variants(f.netlist, static_cast<std::size_t>(state.range(1)));
  const core::CirStagConfig cfg = bench::default_config();
  const auto pin_graph = circuit::pin_graph(f.netlist);
  double wall_total = 0.0;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    const core::CirStag analyzer(cfg);
    for (const auto& v : variants) {
      circuit::Netlist nlv = f.netlist;
      for (const auto& cs : v.cap_scalings)
        nlv.scale_pin_capacitance(cs.pin, cs.factor);
      const linalg::Matrix fv = circuit::pin_features(nlv);
      const circuit::TimingReport sta = circuit::run_sta(nlv);
      benchmark::DoNotOptimize(sta.worst_arrival);
      const linalg::Matrix emb = f.model->embed(fv);
      benchmark::DoNotOptimize(analyzer.analyze(pin_graph, fv, emb));
    }
    wall_total = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(variants.size()));
  state.counters["subspace_sweeps"] = static_cast<double>(
      variants.size() * cfg.stability.subspace_iterations);
  // wall_* counters are informational wall-clock (machine-dependent); the
  // regression gate never reads them, check_bench_regression.py only
  // carries them through for side-by-side --perf-json comparisons and the
  // wall-time trajectory artifact (which keys on wall_ms).
  state.counters["wall_total_seconds"] = wall_total;
  state.counters["wall_ms"] = wall_total * 1e3;
}
BENCHMARK(BM_SweepNaive)->Args({300, 6})->Args({1500, 64})
    ->Unit(benchmark::kMillisecond);

void sweep_engine_bench(benchmark::State& state, bool exact) {
  Fixture& f = fixture(static_cast<std::size_t>(state.range(0)));
  const auto variants =
      make_variants(f.netlist, static_cast<std::size_t>(state.range(1)));
  std::size_t sweeps = 0, requeried = 0, cache_hits = 0;
  double baseline_seconds = 0.0, sweep_seconds = 0.0;
  for (auto _ : state) {
    core::SweepOptions opts;
    opts.config = bench::default_config();
    opts.exact = exact;
    core::SweepEngine engine(f.netlist, *f.model, opts);
    const auto results = engine.run(variants);
    benchmark::DoNotOptimize(results.data());
    sweeps = 0;
    requeried = 0;
    for (const auto& r : results) {
      sweeps += r.stats.subspace_sweeps;
      requeried +=
          r.stats.knn_x.requeried_points + r.stats.knn_y.requeried_points;
    }
    cache_hits = engine.stats().solver_cache_hits;
    baseline_seconds = engine.stats().baseline_seconds;
    sweep_seconds = engine.stats().sweep_seconds;
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(variants.size()));
  // Deterministic (pure functions of the inputs): the regression gate pins
  // subspace_sweeps, the others are diagnostics.
  state.counters["subspace_sweeps"] = static_cast<double>(sweeps);
  state.counters["knn_requeried"] = static_cast<double>(requeried);
  state.counters["solver_cache_hits"] = static_cast<double>(cache_hits);
  // Per-phase wall clock of the last iteration — informational only, never
  // gated (see check_bench_regression.py's wall-time section).
  state.counters["wall_baseline_seconds"] = baseline_seconds;
  state.counters["wall_sweep_seconds"] = sweep_seconds;
  state.counters["wall_total_seconds"] = baseline_seconds + sweep_seconds;
  state.counters["wall_ms"] = (baseline_seconds + sweep_seconds) * 1e3;
}

/// Exact mode: every report byte-identical to the naive loop's.
void BM_SweepExact(benchmark::State& state) {
  sweep_engine_bench(state, /*exact=*/true);
}
BENCHMARK(BM_SweepExact)->Args({300, 6})->Args({1500, 64})
    ->Unit(benchmark::kMillisecond);

/// Fast mode: node scores within kFastScoreDriftTolerance of the naive loop.
void BM_SweepFast(benchmark::State& state) {
  sweep_engine_bench(state, /*exact=*/false);
}
BENCHMARK(BM_SweepFast)->Args({300, 6})->Args({1500, 64})
    ->Unit(benchmark::kMillisecond);

}  // namespace

// Same --perf-json shorthand as bench_micro: rewrites to google-benchmark's
// --benchmark_out JSON, the schema tools/check_bench_regression.py consumes.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::vector<std::string> rewritten;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (std::string(args[i]) == "--perf-json") {
      if (i + 1 >= args.size()) {
        cirstag::obs::log_error("bench", "missing path after --perf-json");
        return 2;
      }
      rewritten.push_back("--benchmark_out=" + std::string(args[i + 1]));
      rewritten.push_back("--benchmark_out_format=json");
      args.erase(args.begin() + static_cast<long>(i),
                 args.begin() + static_cast<long>(i) + 2);
      for (std::string& s : rewritten) args.push_back(s.data());
      break;
    }
  }
  int rewritten_argc = static_cast<int>(args.size());
  benchmark::Initialize(&rewritten_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(rewritten_argc, args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
