#pragma once

#include <string>
#include <vector>

#include "circuit/generator.hpp"
#include "circuit/netlist.hpp"
#include "circuit/sta.hpp"
#include "core/cirstag.hpp"
#include "core/sweep.hpp"
#include "gnn/timing_gnn.hpp"

/// Shared experiment protocol for the Table-I / Fig. 3-5 benches (Case A):
/// build a synthetic benchmark, train the timing GNN on golden STA, run
/// CirSTAG on (pin graph, GNN embedding), then measure the relative change
/// of GNN-predicted primary-output arrival times when the capacitances of a
/// score-selected pin cohort are scaled — exactly the paper's protocol.
namespace cirstag::bench {

/// Everything produced for one benchmark circuit.
struct CaseA {
  std::string name;
  circuit::Netlist netlist;
  std::unique_ptr<gnn::TimingGnn> model;
  /// Batched perturbation-sweep engine over the trained model: its captured
  /// baseline is `report` below (byte-identical to CirStag::analyze), and
  /// every per-variant perturbation in the benches goes through it — the
  /// GNN forward is incremental (changed-row re-propagation) instead of a
  /// full predict per cohort.
  std::unique_ptr<core::SweepEngine> engine;
  double r2 = 0.0;
  core::CirStagReport report;        ///< full pipeline (with dim reduction)
  std::vector<double> base_po_pred;  ///< unperturbed PO predictions
  std::vector<std::size_t> excluded; ///< PO pins (excluded from selection)
};

/// Default pipeline configuration used by all Case-A benches.
[[nodiscard]] core::CirStagConfig default_config();

/// Smaller GNN/pipeline settings so the full 9-circuit sweep stays fast.
struct CaseAOptions {
  std::size_t gnn_epochs = 250;
  std::size_t gnn_hidden = 24;
  core::CirStagConfig config = default_config();
  /// Run the sweep engine in exact (byte-identical) mode. The benches'
  /// per-cohort work is the incremental GNN forward, which is exact in both
  /// modes, so this only matters when a bench calls engine->run().
  bool exact_sweep = false;
};

/// Build + train + analyze one benchmark.
[[nodiscard]] CaseA prepare_case_a(const circuit::CellLibrary& lib,
                                   const circuit::RandomCircuitSpec& spec,
                                   const CaseAOptions& opts = {});

/// Mean/max relative change of predicted PO arrivals after scaling the
/// capacitance feature of `pins` by `factor`.
struct ChangeStats {
  double mean = 0.0;
  double max = 0.0;
};
[[nodiscard]] ChangeStats po_change(CaseA& c, const std::vector<std::size_t>& pins,
                                    double factor);

/// Per-PO relative changes (Fig. 3/4 distributions).
[[nodiscard]] std::vector<double> po_changes(CaseA& c,
                                             const std::vector<std::size_t>& pins,
                                             double factor);

/// Select the unstable (top) or stable (bottom) cohort by CirSTAG score,
/// excluding PO pins.
[[nodiscard]] std::vector<std::size_t> unstable_pins(const CaseA& c,
                                                     double fraction);
[[nodiscard]] std::vector<std::size_t> stable_pins(const CaseA& c,
                                                   double fraction);

/// "u.uuuu/s.ssss" cell formatting used by the Table-I reproduction.
[[nodiscard]] std::string cell(double unstable, double stable);

}  // namespace cirstag::bench
