// Extension experiment: CirSTAG vs Monte-Carlo statistical STA.
//
// The paper's introduction motivates CirSTAG as a replacement for
// "numerous repeated circuit simulations after perturbing underlying
// parameters". Here we run that expensive baseline — a Monte-Carlo STA
// campaign under a D2D+WID process-variation model — and check how well a
// single CirSTAG pass predicts which pins' arrival times vary the most.
//
// Reported: Spearman/Kendall rank correlation and top-10% overlap between
// CirSTAG node scores and the per-pin Monte-Carlo arrival spread, against
// the usual baselines, plus the wall-clock of both approaches.

#include <cstdio>

#include "circuit/variation.hpp"
#include "circuit/views.hpp"
#include "common.hpp"
#include "core/baselines.hpp"
#include "util/ascii.hpp"
#include "util/stats.hpp"
#include "obs/timer.hpp"

int main() {
  using namespace cirstag;
  using namespace cirstag::bench;

  const circuit::CellLibrary lib = circuit::CellLibrary::standard();
  circuit::RandomCircuitSpec spec;
  spec.name = "mc_probe";
  spec.num_gates = 600;
  spec.num_inputs = 32;
  spec.num_outputs = 16;
  spec.num_levels = 12;
  spec.seed = 31337;

  std::printf("=== Variation study: CirSTAG vs Monte-Carlo statistical STA "
              "===\n\n");

  CaseAOptions opts;
  obs::WallTimer timer;
  CaseA c = prepare_case_a(lib, spec, opts);
  const double cirstag_seconds = timer.elapsed_seconds();
  std::printf("[%s] pins=%zu R2=%.4f (GNN training + CirSTAG: %.1fs)\n",
              c.name.c_str(), c.netlist.num_pins(), c.r2, cirstag_seconds);

  circuit::VariationModel model;
  model.seed = 4242;
  const std::size_t samples = 300;
  timer.reset();
  const auto mc = circuit::monte_carlo_sta(c.netlist, model, samples);
  const double mc_seconds = timer.elapsed_seconds();
  std::printf("Monte-Carlo campaign: %zu samples in %.1fs "
              "(worst arrival mean %.3f, std %.3f, p95 %.3f)\n\n",
              samples, mc_seconds, mc.worst_mean, mc.worst_std, mc.worst_p95);

  // Rank-compare against the per-pin arrival spread.
  const auto graph = circuit::pin_graph(c.netlist);
  const auto features = circuit::pin_features(c.netlist);
  const auto embedding = c.model->embed(c.model->base_features());
  linalg::Rng rng(3);

  struct Row {
    const char* name;
    std::vector<double> scores;
  };
  std::vector<Row> rows;
  rows.push_back({"CirSTAG", c.report.node_scores});
  rows.push_back({"random", core::random_scores(c.netlist.num_pins(), rng)});
  rows.push_back({"degree", core::degree_scores(graph)});
  rows.push_back({"capacitance",
                  core::feature_magnitude_scores(features,
                                                 circuit::kPinCapFeature)});
  rows.push_back({"emb-roughness",
                  core::embedding_roughness_scores(graph, embedding)});

  util::AsciiTable table({"method", "spearman", "kendall", "top10% overlap"});
  const std::size_t k = c.netlist.num_pins() / 10;
  for (const auto& row : rows) {
    table.add_row({row.name,
                   util::fmt(util::spearman(row.scores, mc.arrival_std), 4),
                   util::fmt(util::kendall_tau(row.scores, mc.arrival_std), 4),
                   util::fmt(util::top_k_overlap(row.scores, mc.arrival_std, k),
                             4)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("(target = per-pin arrival std over %zu MC samples; CirSTAG "
              "needs one pass, the campaign needs %zu full STA runs)\n",
              samples, samples);
  return 0;
}
