// Extension experiment: validate CirSTAG's ranking against the ground-truth
// sensitivity oracle (exhaustive per-pin STA re-simulation — exactly the
// expensive procedure the paper says CirSTAG replaces), and against simple
// baselines (random, degree, raw capacitance, embedding roughness).
//
// Metrics: Spearman rank correlation with the oracle and top-10% overlap.
// CirSTAG should clearly beat random, and be competitive with or better
// than the structural baselines.

#include <cstdio>

#include "circuit/perturb.hpp"
#include "circuit/views.hpp"
#include "common.hpp"
#include "core/baselines.hpp"
#include "util/ascii.hpp"
#include "util/stats.hpp"

int main() {
  using namespace cirstag;
  using namespace cirstag::bench;

  const circuit::CellLibrary lib = circuit::CellLibrary::standard();

  circuit::RandomCircuitSpec spec;
  spec.name = "gt_probe";
  spec.num_gates = 400;
  spec.num_inputs = 24;
  spec.num_outputs = 12;
  spec.num_levels = 10;
  spec.seed = 777;

  std::printf("=== Ground-truth validation: CirSTAG vs exhaustive STA "
              "sensitivity ===\n\n");

  CaseAOptions opts;
  opts.gnn_epochs = 400;
  CaseA c = prepare_case_a(lib, spec, opts);
  std::printf("[%s] pins=%zu GNN R2=%.4f\n", c.name.c_str(),
              c.netlist.num_pins(), c.r2);

  std::printf("running exhaustive oracle (%zu STA re-simulations)...\n",
              c.netlist.num_pins());
  const auto oracle = circuit::exhaustive_sensitivity(c.netlist, 10.0);

  // Restrict comparison to pins with nonzero oracle response (pins that can
  // affect timing at all) minus POs.
  std::vector<std::size_t> keep;
  for (std::size_t p = 0; p < oracle.size(); ++p) {
    if (std::find(c.excluded.begin(), c.excluded.end(), p) !=
        c.excluded.end())
      continue;
    keep.push_back(p);
  }
  auto restrict = [&](const std::vector<double>& xs) {
    std::vector<double> out;
    out.reserve(keep.size());
    for (std::size_t p : keep) out.push_back(xs[p]);
    return out;
  };
  const auto gt = restrict(oracle);

  linalg::Rng rng(11);
  const auto graph = circuit::pin_graph(c.netlist);
  const auto features = circuit::pin_features(c.netlist);
  const auto embedding = c.model->embed(c.model->base_features());

  struct Row {
    const char* name;
    std::vector<double> scores;
  };
  std::vector<Row> rows;
  rows.push_back({"CirSTAG", restrict(c.report.node_scores)});
  rows.push_back({"random", restrict(core::random_scores(
                                c.netlist.num_pins(), rng))});
  rows.push_back({"degree", restrict(core::degree_scores(graph))});
  rows.push_back({"capacitance", restrict(core::feature_magnitude_scores(
                                     features, circuit::kPinCapFeature))});
  rows.push_back({"emb-roughness",
                  restrict(core::embedding_roughness_scores(graph, embedding))});

  util::AsciiTable table({"method", "spearman", "kendall", "top10% overlap"});
  const std::size_t k = keep.size() / 10;
  for (const auto& row : rows) {
    table.add_row({row.name, util::fmt(util::spearman(row.scores, gt), 4),
                   util::fmt(util::kendall_tau(row.scores, gt), 4),
                   util::fmt(util::top_k_overlap(row.scores, gt, k), 4)});
  }
  std::printf("\n%s\n", table.to_string().c_str());
  return 0;
}
