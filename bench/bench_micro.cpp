// Substrate micro-benchmarks (google-benchmark): throughput of the building
// blocks whose near-linear scaling underpins the Fig. 5 claim — Laplacian
// CG solves, Lanczos spectral embedding, kNN construction, effective-
// resistance sketching, PGM sparsification, golden STA, and GNN forwards.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "circuit/generator.hpp"
#include "circuit/sta.hpp"
#include "circuit/views.hpp"
#include "core/spectral_embedding.hpp"
#include "graphs/effective_resistance.hpp"
#include "graphs/knn.hpp"
#include "graphs/laplacian.hpp"
#include "graphs/sparsify.hpp"
#include "gnn/timing_gnn.hpp"
#include "linalg/cg.hpp"
#include "linalg/rng.hpp"
#include "linalg/vector_ops.hpp"
#include "runtime/thread_pool.hpp"

namespace {

using namespace cirstag;

graphs::Graph random_graph(std::size_t n, std::size_t extra,
                           std::uint64_t seed) {
  linalg::Rng rng(seed);
  graphs::Graph g(n);
  for (std::size_t i = 0; i + 1 < n; ++i)
    g.add_edge(static_cast<graphs::NodeId>(i),
               static_cast<graphs::NodeId>(i + 1), rng.uniform(0.5, 2.0));
  for (std::size_t i = 0; i < extra; ++i) {
    const auto u = static_cast<graphs::NodeId>(rng.index(n));
    const auto v = static_cast<graphs::NodeId>(rng.index(n));
    if (u != v) g.add_edge(u, v, rng.uniform(0.5, 2.0));
  }
  return g;
}

void BM_LaplacianCgSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto g = random_graph(n, 3 * n, 1);
  linalg::LaplacianSolver solver(graphs::laplacian(g));
  linalg::Rng rng(2);
  std::vector<double> b(n);
  for (auto& v : b) v = rng.normal();
  linalg::deflate_constant(b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(b));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_LaplacianCgSolve)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_SpectralEmbedding(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto g = random_graph(n, 2 * n, 3);
  core::SpectralEmbeddingOptions opts;
  opts.dimensions = 12;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::spectral_embedding(g, opts));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_SpectralEmbedding)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_KnnGraph(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  linalg::Rng rng(4);
  const auto pts = linalg::Matrix::random_normal(n, 12, rng);
  graphs::KnnGraphOptions opts;
  opts.k = 10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(graphs::build_knn_graph(pts, opts));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_KnnGraph)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_ResistanceSketch(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto g = random_graph(n, 4 * n, 5);
  graphs::ResistanceSketchOptions opts;
  opts.num_probes = 16;
  for (auto _ : state) {
    benchmark::DoNotOptimize(graphs::edge_effective_resistances(g, opts));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(g.num_edges()));
}
BENCHMARK(BM_ResistanceSketch)->Arg(1000)->Arg(4000);

void BM_SparsifyPgm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto g = random_graph(n, 6 * n, 6);
  graphs::SparsifyOptions opts;
  opts.resistance.num_probes = 12;
  for (auto _ : state) {
    benchmark::DoNotOptimize(graphs::sparsify_pgm(g, opts));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(g.num_edges()));
}
BENCHMARK(BM_SparsifyPgm)->Arg(1000)->Arg(4000);

const circuit::CellLibrary& bench_lib() {
  static const circuit::CellLibrary lib = circuit::CellLibrary::standard();
  return lib;
}

circuit::Netlist bench_netlist(std::size_t gates) {
  circuit::RandomCircuitSpec spec;
  spec.num_gates = gates;
  spec.num_inputs = std::max<std::size_t>(16, gates / 40);
  spec.num_outputs = std::max<std::size_t>(8, gates / 80);
  spec.seed = 7;
  return circuit::generate_random_logic(bench_lib(), spec);
}

void BM_GoldenSta(benchmark::State& state) {
  const auto nl = bench_netlist(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(circuit::run_sta(nl));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(nl.num_pins()));
}
BENCHMARK(BM_GoldenSta)->Arg(1000)->Arg(8000);

/// Thread counts for the scaling sweeps: 1, 2, 4, and the full machine.
/// Each (size, threads) pair emits its own benchmark row, so BENCH_*.json
/// captures the per-thread-count scaling curve for Fig. 5.
void thread_sweep(benchmark::internal::Benchmark* b) {
  const auto hw = static_cast<long>(runtime::default_thread_count());
  std::vector<long> threads{1, 2, 4};
  if (std::find(threads.begin(), threads.end(), hw) == threads.end())
    threads.push_back(hw);
  for (long n : {4000L, 16000L})
    for (long t : threads) b->Args({n, t});
}

void BM_KnnGraphThreads(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  runtime::set_global_threads(static_cast<std::size_t>(state.range(1)));
  linalg::Rng rng(4);
  const auto pts = linalg::Matrix::random_normal(n, 12, rng);
  graphs::KnnGraphOptions opts;
  opts.k = 10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(graphs::build_knn_graph(pts, opts));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
  state.counters["threads"] = static_cast<double>(state.range(1));
  runtime::set_global_threads(0);
}
BENCHMARK(BM_KnnGraphThreads)->Apply(thread_sweep);

void BM_ResistanceSketchThreads(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  runtime::set_global_threads(static_cast<std::size_t>(state.range(1)));
  const auto g = random_graph(n, 4 * n, 5);
  graphs::ResistanceSketchOptions opts;
  opts.num_probes = 16;
  for (auto _ : state) {
    benchmark::DoNotOptimize(graphs::edge_effective_resistances(g, opts));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(g.num_edges()));
  state.counters["threads"] = static_cast<double>(state.range(1));
  runtime::set_global_threads(0);
}
BENCHMARK(BM_ResistanceSketchThreads)->Apply(thread_sweep);

void BM_TimingGnnForward(benchmark::State& state) {
  const auto nl = bench_netlist(static_cast<std::size_t>(state.range(0)));
  gnn::TimingGnnOptions opts;
  opts.hidden_dim = 24;
  gnn::TimingGnn model(nl, opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.embed(model.base_features()));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(nl.num_pins()));
}
BENCHMARK(BM_TimingGnnForward)->Arg(1000)->Arg(4000);

}  // namespace

BENCHMARK_MAIN();
