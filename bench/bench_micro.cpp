// Substrate micro-benchmarks (google-benchmark): throughput of the building
// blocks whose near-linear scaling underpins the Fig. 5 claim — Laplacian
// CG solves, Lanczos spectral embedding, kNN construction, effective-
// resistance sketching, PGM sparsification, golden STA, and GNN forwards.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "circuit/generator.hpp"
#include "circuit/sta.hpp"
#include "circuit/views.hpp"
#include "core/spectral_embedding.hpp"
#include "graphs/coarsen.hpp"
#include "graphs/components.hpp"
#include "graphs/effective_resistance.hpp"
#include "graphs/knn.hpp"
#include "graphs/laplacian.hpp"
#include "graphs/sparsify.hpp"
#include "gnn/timing_gnn.hpp"
#include "linalg/cg.hpp"
#include "linalg/rng.hpp"
#include "linalg/vector_ops.hpp"
#include "kernels/kernels.hpp"
#include "linalg/sparse.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "runtime/thread_pool.hpp"

namespace {

using namespace cirstag;

/// Per-entry wall clock, echoed (never gated) by check_bench_regression.py
/// and collected into the wall-time trajectory artifact: mean milliseconds
/// per benchmark iteration, measured across the whole hot loop.
class WallClock {
 public:
  void finish(benchmark::State& state) {
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0_)
                          .count();
    const auto iters = static_cast<double>(state.iterations());
    state.counters["wall_ms"] = iters > 0 ? ms / iters : 0.0;
  }

 private:
  std::chrono::steady_clock::time_point t0_ =
      std::chrono::steady_clock::now();
};

graphs::Graph random_graph(std::size_t n, std::size_t extra,
                           std::uint64_t seed) {
  linalg::Rng rng(seed);
  graphs::Graph g(n);
  for (std::size_t i = 0; i + 1 < n; ++i)
    g.add_edge(static_cast<graphs::NodeId>(i),
               static_cast<graphs::NodeId>(i + 1), rng.uniform(0.5, 2.0));
  for (std::size_t i = 0; i < extra; ++i) {
    const auto u = static_cast<graphs::NodeId>(rng.index(n));
    const auto v = static_cast<graphs::NodeId>(rng.index(n));
    if (u != v) g.add_edge(u, v, rng.uniform(0.5, 2.0));
  }
  return g;
}

void BM_LaplacianCgSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto g = random_graph(n, 3 * n, 1);
  linalg::LaplacianSolver solver(graphs::laplacian(g));
  linalg::Rng rng(2);
  std::vector<double> b(n);
  for (auto& v : b) v = rng.normal();
  linalg::deflate_constant(b);
  WallClock wall;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(b));
  }
  wall.finish(state);
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_LaplacianCgSolve)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_SpectralEmbedding(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto g = random_graph(n, 2 * n, 3);
  core::SpectralEmbeddingOptions opts;
  opts.dimensions = 12;
  WallClock wall;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::spectral_embedding(g, opts));
  }
  wall.finish(state);
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_SpectralEmbedding)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_KnnGraph(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  linalg::Rng rng(4);
  const auto pts = linalg::Matrix::random_normal(n, 12, rng);
  graphs::KnnGraphOptions opts;
  opts.k = 10;
  WallClock wall;
  for (auto _ : state) {
    benchmark::DoNotOptimize(graphs::build_knn_graph(pts, opts));
  }
  wall.finish(state);
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_KnnGraph)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_ResistanceSketch(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto g = random_graph(n, 4 * n, 5);
  graphs::ResistanceSketchOptions opts;
  opts.num_probes = 16;
  WallClock wall;
  for (auto _ : state) {
    benchmark::DoNotOptimize(graphs::edge_effective_resistances(g, opts));
  }
  wall.finish(state);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(g.num_edges()));
}
BENCHMARK(BM_ResistanceSketch)->Arg(1000)->Arg(4000);

void BM_SparsifyPgm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto g = random_graph(n, 6 * n, 6);
  graphs::SparsifyOptions opts;
  opts.resistance.num_probes = 12;
  WallClock wall;
  for (auto _ : state) {
    benchmark::DoNotOptimize(graphs::sparsify_pgm(g, opts));
  }
  wall.finish(state);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(g.num_edges()));
}
BENCHMARK(BM_SparsifyPgm)->Arg(1000)->Arg(4000);

const circuit::CellLibrary& bench_lib() {
  static const circuit::CellLibrary lib = circuit::CellLibrary::standard();
  return lib;
}

circuit::Netlist bench_netlist(std::size_t gates) {
  circuit::RandomCircuitSpec spec;
  spec.num_gates = gates;
  spec.num_inputs = std::max<std::size_t>(16, gates / 40);
  spec.num_outputs = std::max<std::size_t>(8, gates / 80);
  spec.seed = 7;
  return circuit::generate_random_logic(bench_lib(), spec);
}

void BM_GoldenSta(benchmark::State& state) {
  const auto nl = bench_netlist(static_cast<std::size_t>(state.range(0)));
  WallClock wall;
  for (auto _ : state) {
    benchmark::DoNotOptimize(circuit::run_sta(nl));
  }
  wall.finish(state);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(nl.num_pins()));
}
BENCHMARK(BM_GoldenSta)->Arg(1000)->Arg(8000);

/// Thread counts for the scaling sweeps: 1, 2, 4, and the full machine.
/// Each (size, threads) pair emits its own benchmark row, so BENCH_*.json
/// captures the per-thread-count scaling curve for Fig. 5.
void thread_sweep(benchmark::internal::Benchmark* b) {
  const auto hw = static_cast<long>(runtime::default_thread_count());
  std::vector<long> threads{1, 2, 4};
  if (std::find(threads.begin(), threads.end(), hw) == threads.end())
    threads.push_back(hw);
  for (long n : {4000L, 16000L})
    for (long t : threads) b->Args({n, t});
}

void BM_KnnGraphThreads(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  runtime::set_global_threads(static_cast<std::size_t>(state.range(1)));
  linalg::Rng rng(4);
  const auto pts = linalg::Matrix::random_normal(n, 12, rng);
  graphs::KnnGraphOptions opts;
  opts.k = 10;
  WallClock wall;
  for (auto _ : state) {
    benchmark::DoNotOptimize(graphs::build_knn_graph(pts, opts));
  }
  wall.finish(state);
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
  state.counters["threads"] = static_cast<double>(state.range(1));
  runtime::set_global_threads(0);
}
BENCHMARK(BM_KnnGraphThreads)->Apply(thread_sweep);

void BM_ResistanceSketchThreads(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  runtime::set_global_threads(static_cast<std::size_t>(state.range(1)));
  const auto g = random_graph(n, 4 * n, 5);
  graphs::ResistanceSketchOptions opts;
  opts.num_probes = 16;
  WallClock wall;
  for (auto _ : state) {
    benchmark::DoNotOptimize(graphs::edge_effective_resistances(g, opts));
  }
  wall.finish(state);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(g.num_edges()));
  state.counters["threads"] = static_cast<double>(state.range(1));
  runtime::set_global_threads(0);
}
BENCHMARK(BM_ResistanceSketchThreads)->Apply(thread_sweep);

/// Coarsening only engages above CoarsenOptions::auto_threshold, so its
/// thread sweep runs a single large size (well past 100k nodes) instead of
/// the {4000, 16000} pair the other sweeps use. The hierarchy is
/// bit-identical at every thread count (tests/test_coarsen.cpp gates that);
/// this row records the non-gated wall_ms payoff of the parallel
/// propose/resolve matching and chunked Galerkin fill.
void coarsen_thread_sweep(benchmark::internal::Benchmark* b) {
  const auto hw = static_cast<long>(runtime::default_thread_count());
  std::vector<long> threads{1, 2, 4};
  if (std::find(threads.begin(), threads.end(), hw) == threads.end())
    threads.push_back(hw);
  for (long t : threads) b->Args({120000L, t});
}

void BM_CoarsenThreads(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  runtime::set_global_threads(static_cast<std::size_t>(state.range(1)));
  const auto g = random_graph(n, 3 * n, 9);
  graphs::CoarsenOptions opts;
  WallClock wall;
  std::size_t coarsest = 0;
  for (auto _ : state) {
    const auto hier = graphs::coarsen_graph(g, opts);
    coarsest = hier.coarsest_n();
    benchmark::DoNotOptimize(coarsest);
  }
  wall.finish(state);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(g.num_edges()));
  state.counters["threads"] = static_cast<double>(state.range(1));
  state.counters["coarsest_n"] = static_cast<double>(coarsest);
  runtime::set_global_threads(0);
}
BENCHMARK(BM_CoarsenThreads)->Apply(coarsen_thread_sweep);

/// (size, threads) sweep at 1 thread and the full machine only — the two
/// points the solver-engine acceptance compares.
void solver_sweep(benchmark::internal::Benchmark* b) {
  const auto hw = static_cast<long>(runtime::default_thread_count());
  for (long n : {4000L, 16000L}) {
    b->Args({n, 1});
    if (hw != 1) b->Args({n, hw});
  }
}

/// Manifold-like kNN graph: a noisy 1-D filament winding through 6-D space
/// with sampling density that drifts over ~2 decades. The kNN backbone is a
/// long path whose w = 1/dist² weights span orders of magnitude — the
/// diameter-limited, ill-conditioned regime low-dimensional embeddings put
/// the probe solves in (a uniform random graph is expander-like and
/// flattering to Jacobi, hence unrepresentative).
graphs::Graph manifold_like_graph(std::size_t n, std::uint64_t seed) {
  linalg::Rng rng(seed);
  // Unit-speed curve on three incommensurate circles: revisits of any one
  // circle stay far apart on the others, so kNN never shortcuts the filament.
  constexpr double ka = 1.0 / 40.0, kb = 1.0 / 97.0, kc = 1.0 / 233.0;
  const double amp = 1.0 / std::sqrt(ka * ka + kb * kb + kc * kc);
  linalg::Matrix pts(n, 6);
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double u = static_cast<double>(i) / static_cast<double>(n);
    // Arc-length step drifts smoothly through [1e-3, 1e-1].
    const double step = 1e-3 * std::pow(10.0, 1.0 + std::sin(6.0 * u));
    s += step;
    const double noise = 0.05 * step;
    pts(i, 0) = amp * std::cos(ka * s) + noise * rng.normal();
    pts(i, 1) = amp * std::sin(ka * s) + noise * rng.normal();
    pts(i, 2) = amp * std::cos(kb * s) + noise * rng.normal();
    pts(i, 3) = amp * std::sin(kb * s) + noise * rng.normal();
    pts(i, 4) = amp * std::cos(kc * s) + noise * rng.normal();
    pts(i, 5) = amp * std::sin(kc * s) + noise * rng.normal();
  }
  graphs::KnnGraphOptions ko;
  ko.k = 10;
  return graphs::connect_components(graphs::build_knn_graph(pts, ko), 1e-3);
}

/// Shared body of the k=24 probe-sketch solver benches: one full resistance
/// sketch per iteration, reporting wall time plus the summed CG iteration
/// count across probes (the `cg_iters` counter).
void sketch_solver_bench(benchmark::State& state,
                         graphs::SolverPreconditioner precond,
                         bool use_block_cg) {
  const auto n = static_cast<std::size_t>(state.range(0));
  runtime::set_global_threads(static_cast<std::size_t>(state.range(1)));
  const auto g = manifold_like_graph(n, 5);
  graphs::ResistanceSketchOptions opts;
  opts.num_probes = 24;
  opts.preconditioner = precond;
  opts.use_block_cg = use_block_cg;
  // Let every configuration run to convergence so the reported iteration
  // counts compare converged solves, not budget caps.
  opts.cg_max_iterations = 20000;
  graphs::ResistanceSketchStats stats;
  std::size_t iters = 0;
  WallClock wall;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        graphs::edge_effective_resistances(g, opts, nullptr, &stats));
    iters = stats.cg_iterations;
  }
  wall.finish(state);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(g.num_edges()));
  state.counters["threads"] = static_cast<double>(state.range(1));
  state.counters["cg_iters"] = static_cast<double>(iters);
  runtime::set_global_threads(0);
}

/// Pre-PR baseline: one Jacobi-CG task per probe.
void BM_SketchSingleJacobi(benchmark::State& state) {
  sketch_solver_bench(state, graphs::SolverPreconditioner::jacobi,
                      /*use_block_cg=*/false);
}
BENCHMARK(BM_SketchSingleJacobi)->Apply(solver_sweep);

/// Blocked multi-RHS CG, same Jacobi preconditioner (bit-identical results).
void BM_SketchBlockJacobi(benchmark::State& state) {
  sketch_solver_bench(state, graphs::SolverPreconditioner::jacobi,
                      /*use_block_cg=*/true);
}
BENCHMARK(BM_SketchBlockJacobi)->Apply(solver_sweep);

/// Blocked multi-RHS CG with the spanning-tree preconditioner.
void BM_SketchBlockTree(benchmark::State& state) {
  sketch_solver_bench(state, graphs::SolverPreconditioner::spanning_tree,
                      /*use_block_cg=*/true);
}
BENCHMARK(BM_SketchBlockTree)->Apply(solver_sweep);

/// Raw CSR SpMV through the kernel layer: y += A x on a Laplacian of a
/// random graph. Reports spmv_rows_per_s, the kernel-level throughput
/// counter the --perf-json artifact carries.
void BM_Spmv(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto g = random_graph(n, 4 * n, 11);
  const linalg::SparseMatrix a = graphs::laplacian(g);
  linalg::Rng rng(12);
  std::vector<double> x(n), y(n, 0.0);
  for (auto& v : x) v = rng.normal();
  WallClock wall;
  for (auto _ : state) {
    a.multiply_add(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  wall.finish(state);
  const auto rows = static_cast<double>(state.iterations()) *
                    static_cast<double>(n);
  state.counters["spmv_rows_per_s"] =
      benchmark::Counter(rows, benchmark::Counter::kIsRate);
  state.SetItemsProcessed(state.iterations() * static_cast<long>(a.nnz()));
}
BENCHMARK(BM_Spmv)->Arg(4000)->Arg(16000);

/// Register-blocked multi-RHS SpMM (the block-CG operator): Y += A X with
/// k = 24 columns, one CSR traversal amortized across the block.
void BM_SpmmMultiRhs(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto g = random_graph(n, 4 * n, 11);
  const linalg::SparseMatrix a = graphs::laplacian(g);
  linalg::Rng rng(13);
  const auto x = linalg::Matrix::random_normal(n, 24, rng);
  linalg::Matrix y(n, 24);
  WallClock wall;
  for (auto _ : state) {
    a.multiply_add(x, y);
    benchmark::DoNotOptimize(y.data().data());
  }
  wall.finish(state);
  const auto rows = static_cast<double>(state.iterations()) *
                    static_cast<double>(n);
  state.counters["spmv_rows_per_s"] =
      benchmark::Counter(rows, benchmark::Counter::kIsRate);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(a.nnz() * 24));
}
BENCHMARK(BM_SpmmMultiRhs)->Arg(4000)->Arg(16000);

/// Fused block-CG solve (k = 24 right-hand sides) on the manifold-like
/// graph. cg_iters pins the deterministic iteration count;
/// arena_bytes_reused shows the per-solve temporaries being served from the
/// thread-local arena's retained blocks instead of the heap.
void BM_BlockCgSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto g = manifold_like_graph(n, 5);
  linalg::LaplacianSolver solver(graphs::laplacian(g));
  linalg::Rng rng(14);
  linalg::Matrix rhs = linalg::Matrix::random_normal(n, 24, rng);
  linalg::BlockSolveStats stats;
  const auto& reg = obs::MetricsRegistry::global();
  const std::uint64_t reused_before = reg.counter_value("arena.bytes_reused");
  WallClock wall;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve_block(rhs, nullptr, &stats));
  }
  wall.finish(state);
  state.counters["cg_iters"] = static_cast<double>(stats.total_iterations);
  state.counters["arena_bytes_reused"] = static_cast<double>(
      reg.counter_value("arena.bytes_reused") - reused_before);
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n) * 24);
}
BENCHMARK(BM_BlockCgSolve)->Arg(4000);

/// Metrics-shard contention: every thread hammers the same counter. The
/// 64-byte shard padding keeps per-thread cache lines private, so ops/s
/// should scale near-linearly from 1 to 4 threads instead of collapsing
/// under false sharing.
void BM_MetricsContention(benchmark::State& state) {
  static const obs::Counter counter("bench.metrics_contention");
  for (auto _ : state) counter.add();
  state.SetItemsProcessed(state.iterations());
  state.counters["counter_adds_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MetricsContention)->Threads(1)->Threads(4);

void BM_TimingGnnForward(benchmark::State& state) {
  const auto nl = bench_netlist(static_cast<std::size_t>(state.range(0)));
  gnn::TimingGnnOptions opts;
  opts.hidden_dim = 24;
  gnn::TimingGnn model(nl, opts);
  WallClock wall;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.embed(model.base_features()));
  }
  wall.finish(state);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(nl.num_pins()));
}
BENCHMARK(BM_TimingGnnForward)->Arg(1000)->Arg(4000);

}  // namespace

// Custom main so CI can say `bench_micro --perf-json out.json`: shorthand
// for google-benchmark's --benchmark_out=<path> in JSON format, the schema
// tools/check_bench_regression.py and BENCH_baseline.json consume.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::vector<std::string> rewritten;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (std::string(args[i]) == "--perf-json") {
      if (i + 1 >= args.size()) {
        cirstag::obs::log_error("bench", "missing path after --perf-json");
        return 2;
      }
      rewritten.push_back("--benchmark_out=" + std::string(args[i + 1]));
      rewritten.push_back("--benchmark_out_format=json");
      args.erase(args.begin() + static_cast<long>(i),
                 args.begin() + static_cast<long>(i) + 2);
      for (std::string& s : rewritten) args.push_back(s.data());
      break;
    }
  }
  int rewritten_argc = static_cast<int>(args.size());
  benchmark::Initialize(&rewritten_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(rewritten_argc, args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
