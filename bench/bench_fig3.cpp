// Reproduces Fig. 3: distribution of circuit-delay variations (relative
// changes of predicted PO arrival times) when perturbing the top 10% of
// nodes with scale factor 10x, WITH the spectral dimension reduction —
// contrasting the unstable cohort against the stable cohort.
//
// Paper shape: the unstable distribution sits far to the right of the
// stable one (which is concentrated near zero).

#include <cstdio>

#include "common.hpp"
#include "util/ascii.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"

int main() {
  using namespace cirstag;
  using namespace cirstag::bench;

  const circuit::CellLibrary lib = circuit::CellLibrary::standard();
  auto suite = circuit::benchmark_suite();
  // Fig. 3 uses the whole suite; we aggregate PO-level changes over three
  // representative designs to keep the run quick, then show one per-design
  // histogram pair each.
  suite.resize(3);

  std::vector<double> all_unstable, all_stable;
  util::CsvWriter csv({"design", "cohort", "relative_change"});

  std::printf("=== Fig. 3 reproduction: delay-variation distribution "
              "(top 10%% pins, scale 10x, WITH dimension reduction) ===\n\n");

  for (const auto& spec : suite) {
    CaseA c = prepare_case_a(lib, spec);
    const auto uns = po_changes(c, unstable_pins(c, 0.10), 10.0);
    const auto stb = po_changes(c, stable_pins(c, 0.10), 10.0);
    for (double v : uns) {
      all_unstable.push_back(v);
      csv.add_row({c.name, "unstable", util::fmt(v, 6)});
    }
    for (double v : stb) {
      all_stable.push_back(v);
      csv.add_row({c.name, "stable", util::fmt(v, 6)});
    }
    std::printf("[%s] R2=%.4f unstable mean %.4f | stable mean %.4f\n",
                c.name.c_str(), c.r2, util::mean(uns), util::mean(stb));
  }

  // Clip the display range at the unstable 95th percentile so a single
  // outlier cannot flatten the histogram (outliers clamp into the top bin).
  const double hi =
      std::max(1.25 * util::quantile(all_unstable, 0.95), 1e-3);
  const auto h_u = util::make_histogram(all_unstable, 0.0, hi, 16);
  const auto h_s = util::make_histogram(all_stable, 0.0, hi, 16);
  std::printf("\n%s\n",
              util::render_histogram_pair(
                  h_u, "unstable", h_s, "stable",
                  "Fig. 3: relative PO-delay change distribution").c_str());

  std::printf("summary: unstable mean %.4f / max %.4f ; stable mean %.4f / "
              "max %.4f ; separation %.1fx\n",
              util::mean(all_unstable), util::max_value(all_unstable),
              util::mean(all_stable), util::max_value(all_stable),
              util::mean(all_unstable) /
                  std::max(util::mean(all_stable), 1e-9));
  csv.save("fig3.csv");
  std::printf("series written to fig3.csv\n");
  return 0;
}
