#include "common.hpp"

#include "circuit/perturb.hpp"
#include "circuit/views.hpp"
#include "util/ascii.hpp"
#include "util/stats.hpp"

namespace cirstag::bench {

core::CirStagConfig default_config() {
  core::CirStagConfig cfg;
  cfg.embedding.dimensions = 12;
  cfg.manifold.knn.k = 10;
  cfg.manifold.sparsify.offtree_keep_fraction = 0.25;
  cfg.manifold.sparsify.resistance.num_probes = 16;
  cfg.stability.eigensubspace_dim = 8;
  cfg.stability.subspace_iterations = 30;
  return cfg;
}

CaseA prepare_case_a(const circuit::CellLibrary& lib,
                     const circuit::RandomCircuitSpec& spec,
                     const CaseAOptions& opts) {
  CaseA c{spec.name, circuit::generate_random_logic(lib, spec), nullptr, 0.0, {}, {}, {}};

  gnn::TimingGnnOptions gopts;
  gopts.epochs = opts.gnn_epochs;
  gopts.hidden_dim = opts.gnn_hidden;
  c.model = std::make_unique<gnn::TimingGnn>(c.netlist, gopts);
  c.r2 = c.model->train().r2;

  const core::CirStag analyzer(opts.config);
  c.report = analyzer.analyze(circuit::pin_graph(c.netlist),
                              c.model->base_features(),
                              c.model->embed(c.model->base_features()));

  const auto pred = c.model->predict(c.model->base_features());
  for (circuit::PinId po : c.netlist.primary_outputs()) {
    c.base_po_pred.push_back(pred[po]);
    c.excluded.push_back(po);
  }
  return c;
}

std::vector<double> po_changes(CaseA& c, const std::vector<std::size_t>& pins,
                               double factor) {
  const auto feats = circuit::perturbed_pin_features(c.netlist, pins, factor);
  const auto pred = c.model->predict(feats);
  std::vector<double> po;
  po.reserve(c.base_po_pred.size());
  for (circuit::PinId p : c.netlist.primary_outputs()) po.push_back(pred[p]);
  return circuit::relative_changes(c.base_po_pred, po);
}

ChangeStats po_change(CaseA& c, const std::vector<std::size_t>& pins,
                      double factor) {
  const auto rel = po_changes(c, pins, factor);
  return {util::mean(rel), util::max_value(rel)};
}

std::vector<std::size_t> unstable_pins(const CaseA& c, double fraction) {
  return circuit::select_top_fraction(c.report.node_scores, fraction,
                                      c.excluded);
}

std::vector<std::size_t> stable_pins(const CaseA& c, double fraction) {
  return circuit::select_bottom_fraction(c.report.node_scores, fraction,
                                         c.excluded);
}

std::string cell(double unstable, double stable) {
  return util::fmt(unstable, 4) + "/" + util::fmt(stable, 4);
}

}  // namespace cirstag::bench
