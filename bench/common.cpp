#include "common.hpp"

#include "circuit/perturb.hpp"
#include "circuit/views.hpp"
#include "util/ascii.hpp"
#include "util/stats.hpp"

namespace cirstag::bench {

core::CirStagConfig default_config() {
  core::CirStagConfig cfg;
  cfg.embedding.dimensions = 12;
  cfg.manifold.knn.k = 10;
  cfg.manifold.sparsify.offtree_keep_fraction = 0.25;
  cfg.manifold.sparsify.resistance.num_probes = 16;
  cfg.stability.eigensubspace_dim = 8;
  cfg.stability.subspace_iterations = 30;
  return cfg;
}

CaseA prepare_case_a(const circuit::CellLibrary& lib,
                     const circuit::RandomCircuitSpec& spec,
                     const CaseAOptions& opts) {
  CaseA c{spec.name, circuit::generate_random_logic(lib, spec),
          nullptr, nullptr, 0.0, {}, {}, {}};

  gnn::TimingGnnOptions gopts;
  gopts.epochs = opts.gnn_epochs;
  gopts.hidden_dim = opts.gnn_hidden;
  c.model = std::make_unique<gnn::TimingGnn>(c.netlist, gopts);
  c.r2 = c.model->train().r2;

  // The engine captures the baseline analysis once (byte-identical to
  // CirStag::analyze on the unperturbed circuit); every cohort perturbation
  // below rides its incremental GNN forward.
  core::SweepOptions sopts;
  sopts.config = opts.config;
  sopts.exact = opts.exact_sweep;
  c.engine = std::make_unique<core::SweepEngine>(c.netlist, *c.model, sopts);
  c.report = c.engine->baseline();

  const auto pred = c.model->predict(c.model->base_features());
  for (circuit::PinId po : c.netlist.primary_outputs()) {
    c.base_po_pred.push_back(pred[po]);
    c.excluded.push_back(po);
  }
  return c;
}

std::vector<double> po_changes(CaseA& c, const std::vector<std::size_t>& pins,
                               double factor) {
  const auto pred = c.engine->predict_case_a(pins, factor);
  std::vector<double> po;
  po.reserve(c.base_po_pred.size());
  for (circuit::PinId p : c.netlist.primary_outputs()) po.push_back(pred[p]);
  return circuit::relative_changes(c.base_po_pred, po);
}

ChangeStats po_change(CaseA& c, const std::vector<std::size_t>& pins,
                      double factor) {
  const auto rel = po_changes(c, pins, factor);
  return {util::mean(rel), util::max_value(rel)};
}

std::vector<std::size_t> unstable_pins(const CaseA& c, double fraction) {
  return circuit::select_top_fraction(c.report.node_scores, fraction,
                                      c.excluded);
}

std::vector<std::size_t> stable_pins(const CaseA& c, double fraction) {
  return circuit::select_bottom_fraction(c.report.node_scores, fraction,
                                         c.excluded);
}

std::string cell(double unstable, double stable) {
  return util::fmt(unstable, 4) + "/" + util::fmt(stable, 4);
}

}  // namespace cirstag::bench
